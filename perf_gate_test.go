package dynahist_test

// Throughput gate for the flat-storage rewrite: the flat-arena batch
// path must sustain at least 2× the single-writer InsertBatch
// throughput of the previous per-bucket storage layout at equal
// accuracy. The reference implementation below is the pre-rewrite
// DADO batch path carried verbatim as a test-only shim — per-bucket
// heap-allocated Subs slices, fresh Count() re-sums in every deviation
// probe, binary-search FindBucket — so the comparison is against the
// real old cost model, measured on the same machine in the same
// process, rather than against a recorded number that only holds on
// one CPU.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dynahist"
)

// refBucket is the old per-bucket storage unit: a half-open interval
// with its own heap-allocated sub-counter slice.
type refBucket struct {
	Left  float64
	Right float64
	Subs  []float64
}

func (b *refBucket) Count() float64 {
	s := 0.0
	for _, c := range b.Subs {
		s += c
	}
	return s
}

func (b *refBucket) Width() float64 { return b.Right - b.Left }

func (b *refBucket) Contains(x float64) bool { return x >= b.Left && x < b.Right }

func (b *refBucket) SubIndex(x float64) int {
	k := len(b.Subs)
	if k == 1 {
		return 0
	}
	i := int(float64(k) * (x - b.Left) / b.Width())
	if i < 0 {
		i = 0
	}
	if i >= k {
		i = k - 1
	}
	return i
}

func (b *refBucket) MassBelow(x float64) float64 {
	if x <= b.Left {
		return 0
	}
	if x >= b.Right {
		return b.Count()
	}
	k := len(b.Subs)
	subW := b.Width() / float64(k)
	mass := 0.0
	for i, c := range b.Subs {
		lo := b.Left + float64(i)*subW
		hi := lo + subW
		switch {
		case x >= hi:
			mass += c
		case x > lo:
			mass += c * (x - lo) / subW
		}
	}
	return mass
}

func (b *refBucket) Mass(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return b.MassBelow(hi) - b.MassBelow(lo)
}

func newRefBucket(left, right float64, k int) refBucket {
	return refBucket{Left: left, Right: right, Subs: make([]float64, k)}
}

// refDVO is the pre-rewrite DADO/DVO insert machinery on per-bucket
// storage: the PR 4 batch path.
type refDVO struct {
	abs        bool // AbsDeviation (DADO) vs Variance (DVO)
	subBuckets int
	maxBuckets int
	buckets    []refBucket
	devs       []float64
	pairDevs   []float64
	total      float64
	reorgs     int
}

func newRefDADO(maxBuckets int) *refDVO {
	return &refDVO{abs: true, subBuckets: 2, maxBuckets: maxBuckets}
}

func (h *refDVO) findBucket(x float64) int {
	i := sort.Search(len(h.buckets), func(j int) bool { return h.buckets[j].Right > x })
	if i < len(h.buckets) && h.buckets[i].Contains(x) {
		return i
	}
	return -1
}

func (h *refDVO) CDF(x float64) float64 {
	if h.total <= 0 {
		return 0
	}
	mass := 0.0
	for i := range h.buckets {
		if h.buckets[i].Right <= x {
			mass += h.buckets[i].Count()
			continue
		}
		if h.buckets[i].Left >= x {
			break
		}
		mass += h.buckets[i].MassBelow(x)
	}
	return mass / h.total
}

func (h *refDVO) InsertBatch(vs []float64) {
	for _, v := range vs {
		h.total++
		if i := h.findBucket(v); i >= 0 {
			b := &h.buckets[i]
			b.Subs[b.SubIndex(v)]++
			h.devs[i] = h.deviation(b)
			h.refreshPairsAround(i)
			continue
		}
		h.insertSingleton(v, 1)
		if len(h.buckets) > h.maxBuckets {
			h.mergeAt(h.bestMergePair(-1))
		}
	}
	h.settle(len(vs))
}

func (h *refDVO) settle(maxReorgs int) {
	for range maxReorgs {
		before := h.reorgs
		h.maybeSplitMerge()
		if h.reorgs == before {
			return
		}
	}
}

func (h *refDVO) refreshPairsAround(i int) {
	h.ensurePairCache()
	if i > 0 {
		h.pairDevs[i-1] = h.mergedDeviation(&h.buckets[i-1], &h.buckets[i])
	}
	if i+1 < len(h.buckets) {
		h.pairDevs[i] = h.mergedDeviation(&h.buckets[i], &h.buckets[i+1])
	}
}

func (h *refDVO) ensurePairCache() {
	want := len(h.buckets) - 1
	if want < 0 {
		want = 0
	}
	if len(h.pairDevs) == want {
		return
	}
	h.pairDevs = make([]float64, want)
	for m := range h.pairDevs {
		h.pairDevs[m] = h.mergedDeviation(&h.buckets[m], &h.buckets[m+1])
	}
}

func (h *refDVO) insertSingleton(v, count float64) {
	left := math.Floor(v)
	right := left + 1
	pos := sort.Search(len(h.buckets), func(j int) bool { return h.buckets[j].Left > v })
	if pos > 0 && h.buckets[pos-1].Right > left {
		left = h.buckets[pos-1].Right
	}
	if pos < len(h.buckets) && h.buckets[pos].Left < right {
		right = h.buckets[pos].Left
	}
	if right <= left {
		i := pos
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		b := &h.buckets[i]
		x := math.Min(math.Max(v, b.Left), b.Right-1e-9)
		b.Subs[b.SubIndex(x)] += count
		h.devs[i] = h.deviation(b)
		h.refreshPairsAround(i)
		return
	}
	nb := newRefBucket(left, right, h.subBuckets)
	for j := range nb.Subs {
		nb.Subs[j] = count / float64(h.subBuckets)
	}
	h.buckets = append(h.buckets, refBucket{})
	copy(h.buckets[pos+1:], h.buckets[pos:])
	h.buckets[pos] = nb
	h.devs = append(h.devs, 0)
	copy(h.devs[pos+1:], h.devs[pos:])
	h.devs[pos] = h.deviation(&h.buckets[pos])
	if len(h.buckets) > 1 {
		h.pairDevs = append(h.pairDevs, 0)
		if pos < len(h.pairDevs) {
			copy(h.pairDevs[pos+1:], h.pairDevs[pos:])
		}
	}
	h.refreshPairsAround(pos)
}

func (h *refDVO) deviation(b *refBucket) float64 {
	w := b.Width()
	if w <= 0 {
		return 0
	}
	k := float64(len(b.Subs))
	subW := w / k
	mean := b.Count() / w
	dev := 0.0
	for _, c := range b.Subs {
		d := c/subW - mean
		if h.abs {
			dev += subW * math.Abs(d)
		} else {
			dev += subW * d * d
		}
	}
	return dev
}

func (h *refDVO) mergedDeviation(a, b *refBucket) float64 {
	w := b.Right - a.Left
	if w <= 0 {
		return 0
	}
	mean := (a.Count() + b.Count()) / w
	dev := 0.0
	addSegs := func(bk *refBucket) {
		subW := bk.Width() / float64(len(bk.Subs))
		for _, c := range bk.Subs {
			d := c/subW - mean
			if h.abs {
				dev += subW * math.Abs(d)
			} else {
				dev += subW * d * d
			}
		}
	}
	addSegs(a)
	addSegs(b)
	if gap := b.Left - a.Right; gap > 0 {
		if h.abs {
			dev += gap * mean
		} else {
			dev += gap * mean * mean
		}
	}
	return dev
}

func (h *refDVO) bestSplit() int {
	best, bestDev := -1, 0.0
	for i := range h.buckets {
		if h.buckets[i].Width() <= 1+1e-9 {
			continue
		}
		if h.devs[i] > bestDev {
			best, bestDev = i, h.devs[i]
		}
	}
	return best
}

func (h *refDVO) bestMergePair(exclude int) int {
	h.ensurePairCache()
	best, bestDev := -1, math.Inf(1)
	for m := 0; m+1 < len(h.buckets); m++ {
		if m == exclude || m+1 == exclude {
			continue
		}
		if d := h.pairDevs[m]; d < bestDev {
			best, bestDev = m, d
		}
	}
	return best
}

func (h *refDVO) maybeSplitMerge() {
	if len(h.buckets) < 3 {
		return
	}
	s := h.bestSplit()
	if s < 0 {
		return
	}
	m := h.bestMergePair(s)
	if m < 0 {
		return
	}
	h.ensurePairCache()
	if h.pairDevs[m] >= h.devs[s]-1e-12 {
		return
	}
	h.mergeAt(m)
	if s > m+1 {
		s--
	}
	h.splitAt(s)
	h.reorgs++
}

func (h *refDVO) mergeAt(m int) {
	a, b := &h.buckets[m], &h.buckets[m+1]
	nb := newRefBucket(a.Left, b.Right, h.subBuckets)
	subW := nb.Width() / float64(h.subBuckets)
	for j := range nb.Subs {
		lo := nb.Left + float64(j)*subW
		hi := lo + subW
		nb.Subs[j] = a.Mass(lo, hi) + b.Mass(lo, hi)
	}
	h.buckets[m] = nb
	h.buckets = append(h.buckets[:m+1], h.buckets[m+2:]...)
	h.devs[m] = h.deviation(&h.buckets[m])
	h.devs = append(h.devs[:m+1], h.devs[m+2:]...)
	if len(h.pairDevs) == len(h.buckets) {
		h.pairDevs = append(h.pairDevs[:m], h.pairDevs[m+1:]...)
	}
	h.refreshPairsAround(m)
}

func (h *refDVO) splitAt(s int) {
	old := h.buckets[s]
	old.Subs = append([]float64(nil), old.Subs...)
	mid := (old.Left + old.Right) / 2
	left := newRefBucket(old.Left, mid, h.subBuckets)
	right := newRefBucket(mid, old.Right, h.subBuckets)
	fill := func(nb *refBucket) {
		subW := nb.Width() / float64(h.subBuckets)
		for j := range nb.Subs {
			lo := nb.Left + float64(j)*subW
			nb.Subs[j] = old.Mass(lo, lo+subW)
		}
	}
	fill(&left)
	fill(&right)
	h.buckets[s] = left
	h.buckets = append(h.buckets, refBucket{})
	copy(h.buckets[s+2:], h.buckets[s+1:])
	h.buckets[s+1] = right
	h.devs[s] = h.deviation(&h.buckets[s])
	h.devs = append(h.devs, 0)
	copy(h.devs[s+2:], h.devs[s+1:])
	h.devs[s+1] = h.deviation(&h.buckets[s+1])
	if len(h.pairDevs) == len(h.buckets)-2 {
		h.pairDevs = append(h.pairDevs, 0)
		copy(h.pairDevs[s+1:], h.pairDevs[s:])
	}
	h.refreshPairsAround(s)
	h.refreshPairsAround(s + 1)
}

// gateValues returns the deterministic workload both sides ingest.
func gateValues(n int) []float64 {
	rng := rand.New(rand.NewSource(11))
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = float64(rng.Intn(5001))
	}
	return vs
}

// TestInsertBatchThroughputGate enforces the rewrite's headline
// criterion: ≥2× single-writer InsertBatch throughput over the
// per-bucket reference, measured back to back in-process. Skipped
// under the race detector and -short — instrumented or truncated
// timing says nothing about the real ratio.
func TestInsertBatchThroughputGate(t *testing.T) {
	if raceEnabled {
		t.Skip("timing gate is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in short mode")
	}

	const batchSize = 256
	vs := gateValues(batchSize * 40)

	flatBench := func(b *testing.B) {
		h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
		if err != nil {
			b.Fatal(err)
		}
		bw := h.(dynahist.BatchWriter)
		for i := 0; i < len(vs); i += batchSize {
			if err := bw.InsertBatch(vs[i : i+batchSize]); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := vs[(i*batchSize)%len(vs):]
			if err := bw.InsertBatch(batch[:batchSize]); err != nil {
				b.Fatal(err)
			}
		}
	}

	refBench := func(b *testing.B) {
		h := newRefDADO(85) // same bucket budget WithMemory(1024) yields
		for i := 0; i < len(vs); i += batchSize {
			h.InsertBatch(vs[i : i+batchSize])
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := vs[(i*batchSize)%len(vs):]
			h.InsertBatch(batch[:batchSize])
		}
	}

	// Timing gates flake under load; pass on the best of a few
	// back-to-back attempts rather than one noisy sample.
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		flatNs := float64(testing.Benchmark(flatBench).NsPerOp())
		refNs := float64(testing.Benchmark(refBench).NsPerOp())
		ratio := refNs / flatNs
		t.Logf("attempt %d: flat %.0f ns/batch, reference %.0f ns/batch, speedup %.2fx",
			attempt+1, flatNs, refNs, ratio)
		if ratio > best {
			best = ratio
		}
		if best >= 2 {
			break
		}
	}
	if best < 2 {
		t.Errorf("flat InsertBatch is %.2fx the per-bucket reference, want >= 2x", best)
	}
}

// TestThroughputGateEqualAccuracy pins the other half of the
// criterion: the speedup must not come from a cheaper-but-different
// structure. Both sides ingest the same workload and their CDFs must
// agree within 0.02 everywhere on the value range.
func TestThroughputGateEqualAccuracy(t *testing.T) {
	vs := gateValues(20000)

	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	if err != nil {
		t.Fatal(err)
	}
	bw := h.(dynahist.BatchWriter)
	ref := newRefDADO(85)
	for i := 0; i < len(vs); i += 256 {
		end := i + 256
		if end > len(vs) {
			end = len(vs)
		}
		if err := bw.InsertBatch(vs[i:end]); err != nil {
			t.Fatal(err)
		}
		ref.InsertBatch(vs[i:end])
	}

	worst := 0.0
	for x := 0.0; x <= 5000; x += 25 {
		d := math.Abs(h.CDF(x) - ref.CDF(x))
		if d > worst {
			worst = d
		}
	}
	t.Logf("max |CDF_flat - CDF_ref| = %.3g", worst)
	if worst > 0.02 {
		t.Errorf("flat and reference CDFs diverge by %.3g, want <= 0.02", worst)
	}
}
