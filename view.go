package dynahist

import (
	"dynahist/internal/histogram"
)

// View is an immutable snapshot of a histogram's distribution — the
// package's one read plane. Pinning a view costs one consistent
// capture of the bucket state (one lock acquisition on Concurrent, one
// cached merged-union materialisation on Sharded, a plain copy on the
// single-threaded kinds); afterwards every statistic — Total, CDF,
// PDF, Quantile, EstimateRange, Buckets and the batch queries — is
// answered lock-free off the pinned state, with precomputed prefix
// sums making CDF and Quantile O(log n) in the bucket count.
//
// A View never changes: writes to the source histogram after the pin
// are invisible to it, which is exactly what a dashboard or optimizer
// wants when it asks many questions that must be mutually consistent.
// Pin a fresh view (a cheap cache hit when nothing was written) to see
// newer data. Views are safe for concurrent use by any number of
// readers.
type View struct {
	v *histogram.View
}

// emptyView is the fail-soft stand-in the convenience read methods
// fall back to if a view cannot be pinned (possible only for
// histograms whose state comes from outside this package).
var emptyView = &View{v: histogram.EmptyView()}

// newViewOwned wraps an internal bucket list the caller hands over
// (it must not be modified afterwards) together with the total the
// source histogram normalises its CDF by.
func newViewOwned(bs []histogram.Bucket, total float64) (*View, error) {
	iv, err := histogram.NewView(bs, total)
	if err != nil {
		return nil, err
	}
	return &View{v: iv}, nil
}

// newViewOfStore pins a view straight off a flat bucket arena — no
// re-validation, prefix sums off the running totals (see
// histogram.ViewOfStore).
func newViewOfStore(st *histogram.Store, total float64) *View {
	return &View{v: histogram.ViewOfStore(st, total)}
}

// Total returns the number of points the histogram summarised at pin
// time.
func (v *View) Total() float64 { return v.v.Total() }

// NumBuckets returns the number of buckets in the pinned state.
func (v *View) NumBuckets() int { return v.v.NumBuckets() }

// Buckets returns a copy of the pinned bucket list, sorted by Left.
func (v *View) Buckets() []Bucket { return toPublic(v.v.RawBuckets()) }

// CDF returns the approximate fraction of points ≤ x in O(log n).
func (v *View) CDF(x float64) float64 { return v.v.CDF(x) }

// PDF returns the approximate probability density at x under the
// paper's uniform-within-sub-bucket assumption; it is 0 outside every
// bucket.
func (v *View) PDF(x float64) float64 { return v.v.PDF(x) }

// Quantile returns the smallest x such that approximately a fraction
// q of the pinned points are ≤ x, for q in (0, 1], in O(log n). It
// errors with ErrEmptyHistogram when the view holds no mass.
func (v *View) Quantile(q float64) (float64, error) { return v.v.Quantile(q) }

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (v *View) EstimateRange(lo, hi float64) float64 { return v.v.EstimateRange(lo, hi) }

// Estimator is the read plane every public histogram in this package
// implements: the maintained Histogram behaviour plus pinned-snapshot
// reads. Code that answers statistical queries should accept an
// Estimator and pin one View per batch of related questions instead of
// paying the per-call capture (a lock, or a merged-union epoch check)
// once per statistic.
type Estimator interface {
	Histogram
	// View pins the current state as an immutable snapshot. On Sharded
	// it returns the merged-union build error directly (no MergeErr
	// side channel); for the other kinds it only fails when the bucket
	// state is structurally invalid, which package-built histograms
	// never are.
	View() (*View, error)
	// Quantile returns the smallest x with CDF(x) ≥ q, q in (0, 1] —
	// one pinned statistic, for callers that need just one. It errors
	// with ErrEmptyHistogram when the histogram holds no mass.
	Quantile(q float64) (float64, error)
}

// Every public histogram satisfies the read plane.
var (
	_ Estimator = (*Dynamic)(nil)
	_ Estimator = (*DC)(nil)
	_ Estimator = (*AC)(nil)
	_ Estimator = (*Static)(nil)
	_ Estimator = (*Concurrent)(nil)
	_ Estimator = (*Sharded)(nil)
	_ Estimator = (*EDDado)(nil)
)

// viewer is the View capability checked by the generic helpers.
type viewer interface {
	View() (*View, error)
}

// viewOf pins a view of any histogram: through its own View method
// when it has one (cached, consistent), and through a Buckets/Total
// capture otherwise.
func viewOf(h Histogram) (*View, error) {
	if e, ok := h.(viewer); ok {
		return e.View()
	}
	return newViewOwned(toInternal(h.Buckets()), h.Total())
}

// readView is the fail-soft pin behind the convenience read methods:
// a histogram whose state cannot be pinned (impossible for
// package-built ones) reads as empty.
func readView(h viewer) *View {
	v, err := h.View()
	if err != nil {
		return emptyView
	}
	return v
}

// quantileOf answers one quantile off a fresh pin.
func quantileOf(h viewer, q float64) (float64, error) {
	v, err := h.View()
	if err != nil {
		return 0, err
	}
	return v.Quantile(q)
}
