package dynahist

import "dynahist/internal/histerr"

// Typed sentinel errors. Every layer of the package wraps these, so a
// caller can classify a failure with errors.Is no matter which layer
// produced it:
//
//	if errors.Is(err, dynahist.ErrEmptyHistogram) { ... }
var (
	// ErrEmptyHistogram reports an operation that needs at least one
	// summarised point: deleting from an empty histogram, or asking an
	// empty histogram for a quantile.
	ErrEmptyHistogram = histerr.ErrEmpty

	// ErrBadBudget reports an unusable bucket or memory budget — too
	// small to hold a single bucket, negative, or (in New) specified
	// both as buckets and as bytes, or not at all.
	ErrBadBudget = histerr.ErrBudget

	// ErrBadKind reports a Kind that New or ParseKind does not know.
	ErrBadKind = histerr.ErrKind

	// ErrBadOption reports a New option that is invalid or does not
	// apply to the kind being built (WithGamma on a DC, say).
	ErrBadOption = histerr.ErrOption

	// ErrBadSnapshot reports a snapshot or envelope blob that Restore
	// rejected: truncated, foreign magic, unknown kind, or an internal
	// inconsistency.
	ErrBadSnapshot = histerr.ErrSnapshot
)
