package dynahist

import (
	"errors"
	"fmt"

	"dynahist/internal/shard"
)

// Snapshotter is implemented by every histogram in this package whose
// complete state can be serialized: the maintained families (DC,
// DADO/DVO, AC), the static constructions, and the Sharded engine.
// Every Snapshot produces a self-describing kind-tagged envelope that
// the single Restore door rebuilds; the serving layer's checkpoint
// loop feeds on it.
type Snapshotter interface {
	Snapshot() ([]byte, error)
}

// Snapshot serializes the histogram's complete maintainable state —
// configuration, counters, singular flags and phase — wrapped in the
// package's kind-tagged envelope, so a database can checkpoint its
// statistics and keep maintaining them after Restore.
// (MarshalBuckets, by contrast, captures only the approximation.)
func (h *DC) Snapshot() ([]byte, error) {
	payload, err := h.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	return encodeEnvelope(KindDC, payload), nil
}

// Snapshot serializes the histogram's complete maintainable state in
// the kind-tagged envelope; the tag distinguishes DADO from DVO by the
// deviation measure in use. See (*DC).Snapshot.
func (h *Dynamic) Snapshot() ([]byte, error) {
	payload, err := h.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	return encodeEnvelope(KindOf(h), payload), nil
}

// Snapshot serializes the AC histogram's complete maintainable state:
// its backing reservoir sample, live count and maintenance parameters,
// in the kind-tagged envelope. The in-memory bucket list is
// recomputable from the sample and is not stored; the reservoir's RNG
// stream is re-seeded on restore, so the restored AC is a
// statistically equivalent continuation rather than a bit-identical
// replay (Algorithm R's acceptance probability depends only on the
// capacity and seen count, which round-trip exactly).
func (h *AC) Snapshot() ([]byte, error) {
	payload, err := h.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	return encodeEnvelope(KindAC, payload), nil
}

// Snapshot serializes the static histogram's bucket list in the
// kind-tagged envelope; the tag records which construction built it,
// so Restore returns a Static that KindOf still attributes correctly.
func (h *Static) Snapshot() ([]byte, error) {
	payload, err := MarshalBuckets(h.Buckets())
	if err != nil {
		return nil, err
	}
	kind := h.kind
	if !kind.Valid() {
		kind = KindStatic
	}
	return encodeEnvelope(kind, payload), nil
}

// Snapshot serializes the whole sharded engine — its striping policy,
// merge budget, and every shard's own envelope — as one kind-tagged
// blob that Restore rebuilds into a *Sharded. Shards are locked one at
// a time, so under concurrent writes the checkpoint is fuzzy: each
// shard internally consistent, the set not necessarily one global
// instant — the right trade-off for statistics that tolerate being a
// few inserts askew.
func (s *Sharded) Snapshot() ([]byte, error) {
	blobs, err := s.e.SnapshotShards()
	if err != nil {
		return nil, err
	}
	payload := encodeShardedPayload(ShardPolicy(s.e.Policy()), s.e.MergeBudget(), blobs)
	return encodeEnvelope(KindSharded, payload), nil
}

// RestoreDC rebuilds a DC histogram from a blob produced by
// (*DC).Snapshot.
//
// Deprecated: use Restore, which reads the envelope's kind tag and
// works for every family.
func RestoreDC(data []byte) (*DC, error) {
	h, err := Restore(data)
	if err != nil {
		return nil, err
	}
	dc, ok := h.(*DC)
	if !ok {
		return nil, fmt.Errorf("%w: blob holds a %v, not a %v", ErrBadSnapshot, KindOf(h), KindDC)
	}
	return dc, nil
}

// RestoreDADO rebuilds a DADO/DVO histogram from a blob produced by
// (*Dynamic).Snapshot.
//
// Deprecated: use Restore, which reads the envelope's kind tag and
// works for every family.
func RestoreDADO(data []byte) (*Dynamic, error) {
	h, err := Restore(data)
	if err != nil {
		return nil, err
	}
	d, ok := h.(*Dynamic)
	if !ok {
		return nil, fmt.Errorf("%w: blob holds a %v, not a %v or %v",
			ErrBadSnapshot, KindOf(h), KindDADO, KindDVO)
	}
	return d, nil
}

// RestoreAC rebuilds an AC histogram from a blob produced by
// (*AC).Snapshot.
//
// Deprecated: use Restore, which reads the envelope's kind tag and
// works for every family.
func RestoreAC(data []byte) (*AC, error) {
	h, err := Restore(data)
	if err != nil {
		return nil, err
	}
	ac, ok := h.(*AC)
	if !ok {
		return nil, fmt.Errorf("%w: blob holds a %v, not an %v", ErrBadSnapshot, KindOf(h), KindAC)
	}
	return ac, nil
}

// SnapshotShards serializes every shard of a Sharded histogram and
// returns one blob per shard, in shard order.
//
// Deprecated: use (*Sharded).Snapshot, which frames the shard blobs
// and the engine configuration as one self-describing envelope that
// Restore rebuilds without a caller-supplied restorer.
func (s *Sharded) SnapshotShards() ([][]byte, error) { return s.e.SnapshotShards() }

// RestoreSharded rebuilds a Sharded histogram from per-shard blobs
// produced by SnapshotShards. restore is the family's blob restorer,
// adapted to return a Histogram. The shard count is len(blobs);
// WithShards options are ignored, the other options apply as in
// NewSharded.
//
// Deprecated: snapshot with (*Sharded).Snapshot and rebuild with
// Restore; the envelope carries the family and the engine
// configuration, so no restorer argument is needed.
func RestoreSharded(blobs [][]byte, restore func([]byte) (Histogram, error), opts ...ShardOption) (*Sharded, error) {
	if restore == nil {
		return nil, errors.New("dynahist: nil restore function")
	}
	var cfg shard.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	members := make([]shard.Member, len(blobs))
	var memberKind Kind
	for i, blob := range blobs {
		h, err := restore(blob)
		if err != nil {
			return nil, err
		}
		if h == nil {
			return nil, errors.New("dynahist: restore returned nil histogram")
		}
		if i == 0 {
			memberKind = KindOf(h)
		}
		members[i] = memberAdapter{h: h}
	}
	e, err := shard.NewFromMembers(cfg, members)
	if err != nil {
		return nil, err
	}
	return &Sharded{e: e, memberKind: memberKind}, nil
}
