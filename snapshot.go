package dynahist

import (
	"errors"

	"dynahist/internal/approx"
	"dynahist/internal/core"
	"dynahist/internal/shard"
)

// Snapshotter is implemented by every histogram in this package whose
// complete maintainable state can be serialized: DC, DADO/DVO and AC.
// The serving layer's checkpoint loop feeds on it.
type Snapshotter interface {
	Snapshot() ([]byte, error)
}

// Snapshot serializes the histogram's complete maintainable state —
// configuration, counters, singular flags and phase — so a database can
// checkpoint its statistics and keep maintaining them after a restart.
// (MarshalBuckets, by contrast, captures only the approximation.)
func (h *DC) Snapshot() ([]byte, error) { return h.inner.Snapshot() }

// RestoreDC rebuilds a DC histogram from a blob produced by
// (*DC).Snapshot. The restored histogram continues exactly where the
// snapshot left off.
func RestoreDC(data []byte) (*DC, error) {
	inner, err := core.RestoreDC(data)
	if err != nil {
		return nil, err
	}
	return &DC{inner: inner}, nil
}

// Snapshot serializes the histogram's complete maintainable state; see
// (*DC).Snapshot.
func (h *DADO) Snapshot() ([]byte, error) { return h.inner.Snapshot() }

// RestoreDADO rebuilds a DADO/DVO histogram from a blob produced by
// (*DADO).Snapshot.
func RestoreDADO(data []byte) (*DADO, error) {
	inner, err := core.RestoreDVO(data)
	if err != nil {
		return nil, err
	}
	return &DADO{inner: inner}, nil
}

// Snapshot serializes the AC histogram's complete maintainable state:
// its backing reservoir sample, live count and maintenance parameters.
// The in-memory bucket list is recomputable from the sample and is not
// stored; the reservoir's RNG stream is re-seeded on restore, so the
// restored AC is a statistically equivalent continuation rather than a
// bit-identical replay (Algorithm R's acceptance probability depends
// only on the capacity and seen count, which round-trip exactly).
func (h *AC) Snapshot() ([]byte, error) { return h.inner.Snapshot() }

// RestoreAC rebuilds an AC histogram from a blob produced by
// (*AC).Snapshot.
func RestoreAC(data []byte) (*AC, error) {
	inner, err := approx.Restore(data)
	if err != nil {
		return nil, err
	}
	return &AC{inner: inner}, nil
}

// SnapshotShards serializes every shard of a Sharded histogram and
// returns one blob per shard, in shard order. It errors if the shard
// members were built from a constructor without snapshot support.
// Shards are locked one at a time, so under concurrent writes the
// checkpoint is fuzzy — each shard internally consistent, the set not
// necessarily one global instant — which is the right trade-off for
// statistics that tolerate being a few inserts askew.
//
// Restore the result with RestoreSharded, passing the restorer that
// matches the family the shards were built from.
func (s *Sharded) SnapshotShards() ([][]byte, error) { return s.e.SnapshotShards() }

// RestoreSharded rebuilds a Sharded histogram from per-shard blobs
// produced by SnapshotShards. restore is the family's blob restorer —
// RestoreDC, RestoreDADO or RestoreAC, adapted to return a Histogram:
//
//	s, _ := dynahist.RestoreSharded(blobs, func(b []byte) (dynahist.Histogram, error) {
//	    return dynahist.RestoreDADO(b)
//	})
//
// The shard count is len(blobs); WithShards options are ignored, the
// other options apply as in NewSharded.
func RestoreSharded(blobs [][]byte, restore func([]byte) (Histogram, error), opts ...ShardOption) (*Sharded, error) {
	if restore == nil {
		return nil, errors.New("dynahist: nil restore function")
	}
	var cfg shard.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	members := make([]shard.Member, len(blobs))
	for i, blob := range blobs {
		h, err := restore(blob)
		if err != nil {
			return nil, err
		}
		if h == nil {
			return nil, errors.New("dynahist: restore returned nil histogram")
		}
		members[i] = memberAdapter{h: h}
	}
	e, err := shard.NewFromMembers(cfg, members)
	if err != nil {
		return nil, err
	}
	return &Sharded{e: e}, nil
}
