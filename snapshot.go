package dynahist

import "dynahist/internal/core"

// Snapshot serializes the histogram's complete maintainable state —
// configuration, counters, singular flags and phase — so a database can
// checkpoint its statistics and keep maintaining them after a restart.
// (MarshalBuckets, by contrast, captures only the approximation.)
func (h *DC) Snapshot() ([]byte, error) { return h.inner.Snapshot() }

// RestoreDC rebuilds a DC histogram from a blob produced by
// (*DC).Snapshot. The restored histogram continues exactly where the
// snapshot left off.
func RestoreDC(data []byte) (*DC, error) {
	inner, err := core.RestoreDC(data)
	if err != nil {
		return nil, err
	}
	return &DC{inner: inner}, nil
}

// Snapshot serializes the histogram's complete maintainable state; see
// (*DC).Snapshot.
func (h *DADO) Snapshot() ([]byte, error) { return h.inner.Snapshot() }

// RestoreDADO rebuilds a DADO/DVO histogram from a blob produced by
// (*DADO).Snapshot.
func RestoreDADO(data []byte) (*DADO, error) {
	inner, err := core.RestoreDVO(data)
	if err != nil {
		return nil, err
	}
	return &DADO{inner: inner}, nil
}
