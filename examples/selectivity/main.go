// Selectivity estimation for a query optimizer: the scenario that
// motivates the paper's introduction. A cost-based optimizer must
// decide between an index scan and a full scan for predicates like
// `WHERE amount BETWEEN a AND b`; that decision is only as good as the
// selectivity estimate behind it. This example keeps a dynamic
// histogram in sync with a mutating table and shows how the plan
// choice tracks reality, including after the data distribution shifts
// — exactly where a stale static histogram goes wrong.
//
// Run with:
//
//	go run ./examples/selectivity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynahist"
)

// indexScanThreshold is the classic rule of thumb: below ~10%
// selectivity an index scan wins, above it a sequential scan does.
const indexScanThreshold = 0.10

type table struct {
	rows map[int]int // value -> count
	n    int
}

func (t *table) insert(v int) { t.rows[v]++; t.n++ }
func (t *table) delete(v int) bool {
	if t.rows[v] == 0 {
		return false
	}
	t.rows[v]--
	t.n--
	return true
}

func (t *table) countRange(lo, hi int) int {
	c := 0
	for v, n := range t.rows {
		if v >= lo && v <= hi {
			c += n
		}
	}
	return c
}

func main() {
	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	if err != nil {
		log.Fatal(err)
	}
	stats := dynahist.NewConcurrent(h) // share with planner goroutines if desired
	tbl := &table{rows: map[int]int{}}
	rng := rand.New(rand.NewSource(7))

	apply := func(v int, del bool) {
		if del {
			if tbl.delete(v) {
				if err := stats.Delete(float64(v)); err != nil {
					log.Fatal(err)
				}
			}
			return
		}
		tbl.insert(v)
		if err := stats.Insert(float64(v)); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 1: order amounts cluster at the low end.
	for range 200_000 {
		v := int(rng.ExpFloat64() * 120)
		if v > 4999 {
			v = 4999
		}
		apply(v, false)
	}
	plan(stats, tbl, "after initial load", 1000, 4999)

	// Phase 2: the business changes — premium orders arrive and old
	// small orders are archived (deleted). A static histogram built in
	// phase 1 would still claim the [1000, 4999] band is nearly empty.
	for range 150_000 {
		v := int(rng.NormFloat64()*300 + 3000)
		if v < 0 {
			v = 0
		}
		if v > 4999 {
			v = 4999
		}
		apply(v, false)
		if rng.Intn(2) == 0 {
			apply(int(rng.ExpFloat64()*120), true)
		}
	}
	plan(stats, tbl, "after the distribution shifted", 1000, 4999)
	plan(stats, tbl, "narrow premium band", 2800, 3200)
}

func plan(stats dynahist.Histogram, tbl *table, label string, lo, hi int) {
	est := stats.EstimateRange(float64(lo), float64(hi))
	estSel := est / stats.Total()
	exact := tbl.countRange(lo, hi)
	exactSel := float64(exact) / float64(tbl.n)

	choice := "seq scan"
	if estSel < indexScanThreshold {
		choice = "index scan"
	}
	correct := "correct"
	if (estSel < indexScanThreshold) != (exactSel < indexScanThreshold) {
		correct = "WRONG PLAN"
	}
	fmt.Printf("%s:\n", label)
	fmt.Printf("  predicate amount BETWEEN %d AND %d over %d rows\n", lo, hi, tbl.n)
	fmt.Printf("  estimated selectivity %.4f (exact %.4f) -> %s (%s)\n\n",
		estSel, exactSel, choice, correct)
}
