// Sharded: high-throughput concurrent ingest with union-backed reads
// (paper §8 applied to a serving system). A Sharded histogram stripes
// inserts across P shared-nothing shards — each a private histogram
// behind its own lock — and merges them losslessly on read, so many
// writer goroutines ingest in parallel where the single-mutex
// Concurrent wrapper would serialise them.
//
// The shards each get budget/P bytes: same total memory as one big
// histogram, 1/P the split-merge work per insert, and the merged view
// recovers the full resolution.
//
// Run with:
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"dynahist"
)

const (
	writers   = 8
	perWriter = 51_200 // a multiple of batchSize so counts come out exact
	domain    = 5000
	memTotal  = 8192 // bytes across all shards
	batchSize = 512
)

func ingest(label string, ins func(chunk []float64) error) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	for w := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			chunk := make([]float64, batchSize)
			for sent := 0; sent < perWriter; sent += len(chunk) {
				for i := range chunk {
					// Two regimes per writer: a bulk uniform load plus a
					// hot band, so the histogram has structure to capture.
					if rng.Intn(4) == 0 {
						chunk[i] = float64(2000 + rng.Intn(200))
					} else {
						chunk[i] = float64(rng.Intn(domain + 1))
					}
				}
				if err := ins(chunk); err != nil {
					log.Fatalf("%s: %v", label, err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	rate := float64(writers*perWriter) / elapsed.Seconds() / 1e6
	fmt.Printf("%-22s %8.2f M inserts/sec  (%v for %d rows, %d writers)\n",
		label, rate, elapsed.Round(time.Millisecond), writers*perWriter, writers)
	return elapsed
}

func main() {
	fmt.Printf("GOMAXPROCS = %d\n\n", runtime.GOMAXPROCS(0))

	// Baseline: one DADO behind one mutex.
	single, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(memTotal))
	if err != nil {
		log.Fatal(err)
	}
	conc := dynahist.NewConcurrent(single)
	tMutex := ingest("Concurrent (mutex)", func(chunk []float64) error {
		for _, v := range chunk {
			if err := conc.Insert(v); err != nil {
				return err
			}
		}
		return nil
	})

	// Sharded: same total budget split across GOMAXPROCS-defaulted
	// shards, fed through the batched hot path.
	sharded, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(memTotal/writers))
	}, dynahist.WithShards(writers))
	if err != nil {
		log.Fatal(err)
	}
	tSharded := ingest("Sharded (batched)", sharded.InsertBatch)

	fmt.Printf("\nspeedup: %.1fx\n", tMutex.Seconds()/tSharded.Seconds())

	// Reads pin the union-superposed merged view once (View also
	// surfaces any merge error directly — no MergeErr polling) and
	// answer every statistic lock-free off the pinned snapshot.
	view, err := sharded.View()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged view: %d buckets over %d shards, %.0f points\n",
		view.NumBuckets(), sharded.NumShards(), view.Total())
	fmt.Printf("shard balance: ")
	for _, tot := range sharded.ShardTotals() {
		fmt.Printf("%.0f ", tot)
	}
	fmt.Println()

	for _, q := range [][2]float64{{0, 999}, {2000, 2199}, {4000, 5000}} {
		fmt.Printf("rows in [%4.0f, %4.0f]: sharded %8.0f, mutex-wrapped %8.0f\n",
			q[0], q[1], view.EstimateRange(q[0], q[1]), conc.EstimateRange(q[0], q[1]))
	}
	ps := []float64{0.25, 0.5, 0.9, 0.99}
	qs, err := view.QuantileAll(ps)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range ps {
		fmt.Printf("p%-4.0f ≈ %6.0f\n", p*100, qs[i])
	}
}
