// Streaming: track an evolving data set through inserts and deletes
// and watch the approximation error of three maintained summaries over
// time — the paper's Figs. 16–18 scenario in miniature. The data
// distribution drifts (a moving Gaussian), so a frozen histogram decays
// while the dynamic ones keep tracking.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynahist"
)

const (
	domain     = 2000
	streamLen  = 400_000
	deleteProb = 0.25
	checkEvery = 50_000
)

func main() {
	dado, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	if err != nil {
		log.Fatal(err)
	}
	dc, err := dynahist.New(dynahist.KindDC, dynahist.WithMemory(1024))
	if err != nil {
		log.Fatal(err)
	}
	ac, err := dynahist.New(dynahist.KindAC, dynahist.WithMemory(1024), dynahist.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	summaries := []struct {
		name string
		h    dynahist.Histogram
	}{{"DADO", dado}, {"DC", dc}, {"AC", ac}}

	rng := rand.New(rand.NewSource(99))
	var live []int // the current multiset, for ground truth and deletes

	fmt.Printf("%-10s %10s %10s %10s\n", "processed", "DADO", "DC", "AC")
	for i := 1; i <= streamLen; i++ {
		// The cluster center drifts across the domain as the stream
		// progresses: the distribution at the end looks nothing like
		// the beginning.
		center := float64(domain) * float64(i) / float64(streamLen)
		v := int(rng.NormFloat64()*40 + center)
		if v < 0 {
			v = 0
		}
		if v > domain {
			v = domain
		}
		live = append(live, v)
		for _, s := range summaries {
			if err := s.h.Insert(float64(v)); err != nil {
				log.Fatal(err)
			}
		}
		// Random deletions keep the live set bounded and exercise the
		// §7.3 delete paths.
		if len(live) > 1 && rng.Float64() < deleteProb {
			pick := rng.Intn(len(live))
			dv := live[pick]
			live[pick] = live[len(live)-1]
			live = live[:len(live)-1]
			for _, s := range summaries {
				if err := s.h.Delete(float64(dv)); err != nil {
					log.Fatal(err)
				}
			}
		}
		if i%checkEvery == 0 {
			fmt.Printf("%-10d", i)
			for _, s := range summaries {
				ks, err := dynahist.KS(s.h, live)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %10.4f", ks)
			}
			fmt.Println()
		}
	}
	fmt.Printf("\nlive rows at end: %d\n", len(live))
	fmt.Println("DADO and DC keep tracking the drift; AC decays because its reservoir")
	fmt.Println("over-represents deleted history (the paper's Fig. 17 effect).")
	fmt.Printf("DADO reorganisations: %d, DC border relocations: %d\n",
		dado.(*dynahist.Dynamic).Reorganisations(), dc.(*dynahist.DC).Repartitions())
}
