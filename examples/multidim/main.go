// Multidim: two-dimensional selectivity estimation — the paper's
// future-work direction. A query optimizer facing conjunctive
// predicates like `WHERE price BETWEEN a AND b AND quantity BETWEEN c
// AND d` cannot multiply per-column selectivities when the columns are
// correlated; a 2D histogram captures the joint distribution.
//
// Run with:
//
//	go run ./examples/multidim
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynahist"
)

func main() {
	domain := dynahist.Rect2D{X0: 0, X1: 1000, Y0: 0, Y1: 100}
	h, err := dynahist.New2D(domain, 128)
	if err != nil {
		log.Fatal(err)
	}

	// Orders: price and quantity are strongly anti-correlated (cheap
	// items sell in bulk, expensive ones individually) — the case where
	// the independence assumption fails worst.
	rng := rand.New(rand.NewSource(21))
	var points []dynahist.Point2D
	for range 300_000 {
		price := rng.Float64() * 1000
		qty := 90*(1-price/1000) + rng.NormFloat64()*5
		if qty < 0 {
			qty = 0
		}
		if qty > 99 {
			qty = 99
		}
		p := dynahist.Point2D{X: price, Y: qty}
		points = append(points, p)
		if err := h.Insert(p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("summarised %.0f rows in %d rectangular buckets\n\n", h.Total(), h.NumLeaves())

	queries := []struct {
		name string
		q    dynahist.Rect2D
	}{
		{"cheap bulk (price<200, qty>70)", dynahist.Rect2D{X0: 0, X1: 200, Y0: 70, Y1: 100}},
		{"expensive bulk (price>800, qty>70)", dynahist.Rect2D{X0: 800, X1: 1000, Y0: 70, Y1: 100}},
		{"mid band (300..500 × 30..60)", dynahist.Rect2D{X0: 300, X1: 500, Y0: 30, Y1: 60}},
	}
	fmt.Printf("%-38s %10s %10s %12s\n", "predicate", "estimate", "exact", "independence")
	for _, q := range queries {
		est := h.EstimateRect(q.q)
		exact := 0
		for _, p := range points {
			if q.q.Contains(p) {
				exact++
			}
		}
		// What the 1D independence assumption would predict.
		indep := float64(len(points)) *
			((q.q.X1 - q.q.X0) / 1000) * marginalQtyFraction(points, q.q.Y0, q.q.Y1)
		fmt.Printf("%-38s %10.0f %10d %12.0f\n", q.name, est, exact, indep)
	}
	fmt.Println("\nthe 2D histogram tracks the correlation; independence does not")
}

// marginalQtyFraction returns the fraction of rows with qty in [lo, hi).
func marginalQtyFraction(points []dynahist.Point2D, lo, hi float64) float64 {
	n := 0
	for _, p := range points {
		if p.Y >= lo && p.Y < hi {
			n++
		}
	}
	return float64(n) / float64(len(points))
}
