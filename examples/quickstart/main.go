// Quickstart: build a DADO histogram over a stream of values, ask it
// for selectivity estimates, and compare against the truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynahist"
)

func main() {
	// A 1 KB summary of a million-row column, built through the
	// package's one front door: pick a kind, size the budget.
	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	if err != nil {
		log.Fatal(err)
	}
	dado := h.(*dynahist.Dynamic) // for the family-specific diagnostics

	// Simulated column: order totals concentrated around two price
	// bands, 0..999.
	rng := rand.New(rand.NewSource(42))
	var values []int
	for range 1_000_000 {
		v := 0
		if rng.Intn(3) == 0 {
			v = int(rng.NormFloat64()*30 + 250) // budget tier
		} else {
			v = int(rng.NormFloat64()*80 + 700) // premium tier
		}
		if v < 0 {
			v = 0
		}
		if v > 999 {
			v = 999
		}
		values = append(values, v)
		if err := h.Insert(float64(v)); err != nil {
			log.Fatal(err)
		}
	}

	// Reads go through the pinned read plane: one View captures a
	// consistent snapshot, then every statistic — range estimates,
	// quantiles, the whole Describe batch — answers off it without
	// touching the maintained state again.
	view, err := dado.View()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summarised %.0f rows in %d buckets (%d-bucket budget)\n\n",
		view.Total(), view.NumBuckets(), dado.MaxBuckets())

	// Range estimates vs the exact answer.
	queries := [][2]int{{0, 300}, {200, 299}, {650, 750}, {900, 999}}
	fmt.Printf("%-14s %12s %12s %10s\n", "range", "estimate", "exact", "rel.err")
	for _, q := range queries {
		est := view.EstimateRange(float64(q[0]), float64(q[1]))
		exact := 0
		for _, v := range values {
			if v >= q[0] && v <= q[1] {
				exact++
			}
		}
		relErr := 0.0
		if exact > 0 {
			relErr = (est - float64(exact)) / float64(exact)
		}
		fmt.Printf("[%4d, %4d]   %12.0f %12d %9.2f%%\n", q[0], q[1], est, exact, 100*relErr)
	}

	// Percentiles of the summarised distribution, batched off the same
	// pinned view.
	ps := []float64{0.25, 0.5, 0.75, 0.95}
	qv, err := view.QuantileAll(ps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for i, p := range ps {
		fmt.Printf("p%-3.0f ≈ %4.0f\n", p*100, qv[i])
	}

	// The paper's quality metric: max CDF error against the data.
	ks, err := dynahist.KS(h, values)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nKS statistic (max selectivity error): %.4f\n", ks)
	fmt.Printf("split-merge reorganisations performed: %d\n", dado.Reorganisations())
}
