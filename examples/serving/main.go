// Serving: dynamic histograms behind HTTP, with snapshot-backed
// recovery. This walkthrough runs the histserved serving layer
// in-process, drives it purely through the public client package —
// create a histogram, stream batches over the wire (JSON and the
// binary batch format), answer a dashboard's whole statistics panel
// with one batched query against one pinned view — then kills
// the server and restarts it from its catalog directory to show the
// registry recover with its statistics intact and keep maintaining.
//
// In production the server side is the standalone binary:
//
//	histserved -addr :8080 -catalog /var/lib/histserved -checkpoint 30s
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"dynahist/client"
	"dynahist/internal/server"
)

const (
	histName = "rpc-latency-us"
	writers  = 4
	batches  = 40
	batch    = 512
)

// boot starts a serving layer over dir and returns its client plus a
// shutdown function (the "kill").
func boot(dir string) (*client.Client, func()) {
	srv, err := server.New(server.Config{CatalogDir: dir, CheckpointEvery: time.Second})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := client.New(ts.URL, &http.Client{Timeout: 10 * time.Second})
	return c, func() {
		ts.Close()
		if err := srv.Close(); err != nil { // final checkpoint
			log.Fatal(err)
		}
	}
}

func report(ctx context.Context, c *client.Client, header string) {
	// One batched query answers everything the dashboard shows — the
	// total, three percentiles and a range count — from one pinned
	// server-side view in one round trip, instead of five GETs that
	// each rebuild the read state.
	ps := []float64{0.5, 0.9, 0.99}
	sum, err := c.Query(ctx, histName, client.QuerySpec{
		Quantiles: ps,
		Ranges:    []client.Range{{Lo: 10_000, Hi: 50_000}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.0f points\n", header, sum.Total)
	for i, p := range ps {
		fmt.Printf("  p%-4.0f ≈ %7.0f µs\n", p*100, sum.Quantiles[i])
	}
	fmt.Printf("  requests in [10ms, 50ms]: ≈%.0f\n", sum.Ranges[0])
}

func main() {
	dir, err := os.MkdirTemp("", "histserved-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	c, kill := boot(dir)

	// One histogram, four shards: each write contends only on its
	// stripe, so concurrent clients scale.
	info, err := c.Create(ctx, client.CreateOptions{
		Name: histName, Family: client.FamilyDADO, MemBytes: 2048, Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %q (%s, %d shards, %dB/shard)\n\n",
		info.Name, info.Family, info.Shards, info.MemBytes)

	// Concurrent writers stream a long-tailed latency workload; half
	// use the JSON body, half the binary batch format (the dense fast
	// path).
	var wg sync.WaitGroup
	for w := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			vs := make([]float64, batch)
			for range batches {
				for i := range vs {
					// ~95% fast requests around 100–2000µs, a slow tail out
					// to 50ms.
					if rng.Intn(20) == 0 {
						vs[i] = float64(5000 + rng.Intn(45_000))
					} else {
						vs[i] = float64(100 + rng.Intn(1900))
					}
				}
				var err error
				if w%2 == 0 {
					_, err = c.InsertBinary(ctx, histName, vs)
				} else {
					_, err = c.Insert(ctx, histName, vs)
				}
				if err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()

	report(ctx, c, "before restart")

	// Kill the server. Close takes a final checkpoint, so everything
	// acknowledged above is in the catalog.
	kill()
	fmt.Println("\nserver killed; restarting from catalog …")

	// A fresh server over the same catalog recovers the registry.
	c2, kill2 := boot(dir)
	defer kill2()
	report(ctx, c2, "\nafter restart")

	// …and the recovered histogram keeps maintaining.
	if _, err := c2.InsertBinary(ctx, histName, []float64{123, 456}); err != nil {
		log.Fatal(err)
	}
	total, err := c2.Total(ctx, histName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter two more inserts: %.0f points — recovered and live\n", total)
}
