// Persistence: checkpoint a maintained histogram to the catalog and
// continue maintaining it after a "restart" — the operational loop a
// database needs for statistics that survive process lifecycle without
// a rebuild scan.
//
// Run with:
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"dynahist"
)

func main() {
	catalog := filepath.Join(os.TempDir(), "dynahist-stats.bin")
	defer os.Remove(catalog)

	// ---- process 1: build statistics from the live update stream ----
	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for range 200_000 {
		if err := h.Insert(float64(rng.Intn(3000))); err != nil {
			log.Fatal(err)
		}
	}
	before := h.EstimateRange(1000, 1999)
	fmt.Printf("process 1: %.0f rows summarised, estimate[1000,1999] = %.0f\n",
		h.Total(), before)

	// Checkpoint: the snapshot carries the full maintainable state
	// (counters, borders, configuration), not just the approximation,
	// inside a self-describing envelope that records the kind.
	blob, err := h.(dynahist.Snapshotter).Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(catalog, blob, 0o600); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed %d bytes to %s\n\n", len(blob), catalog)

	// ---- process 2: restart, restore, keep maintaining ----
	raw, err := os.ReadFile(catalog)
	if err != nil {
		log.Fatal(err)
	}
	// One Restore door for every family: the envelope's kind tag says
	// what the blob is, so process 2 never records it out of band.
	restored, err := dynahist.Restore(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process 2: restored a %v: %.0f rows, estimate[1000,1999] = %.0f (identical)\n",
		dynahist.KindOf(restored), restored.Total(), restored.EstimateRange(1000, 1999))

	// The restored histogram is not a frozen copy — it keeps absorbing
	// the update stream exactly where the old process stopped.
	for range 100_000 {
		if err := restored.Insert(float64(rng.Intn(1000))); err != nil {
			log.Fatal(err)
		}
	}
	for range 50_000 {
		if err := restored.Delete(float64(rng.Intn(3000))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after more updates: %.0f rows, estimate[0,999] = %.0f\n",
		restored.Total(), restored.EstimateRange(0, 999))
	fmt.Printf("reorganisations continued across the restart: %d\n",
		restored.(*dynahist.Dynamic).Reorganisations())
}
