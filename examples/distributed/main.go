// Distributed: global histograms in a shared-nothing system (paper
// §8). Each node maintains its own histogram over its partition; a
// coordinator superposes them losslessly and reduces the result back
// to the memory budget, producing a global summary without ever
// moving the data.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynahist"
)

const (
	nodes   = 6
	perNode = 50_000
	domain  = 5000
	mem     = 512 // bytes per histogram, local and global
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Each node owns a hash partition of the table, but its values
	// concentrate on a node-specific range (think: regional shards with
	// regional price levels).
	var members []dynahist.Histogram
	var allValues []int
	for n := range nodes {
		h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(mem))
		if err != nil {
			log.Fatal(err)
		}
		center := float64(domain) * (float64(n) + 0.5) / float64(nodes)
		for range perNode {
			v := int(rng.NormFloat64()*200 + center)
			if v < 0 {
				v = 0
			}
			if v > domain {
				v = domain
			}
			if err := h.Insert(float64(v)); err != nil {
				log.Fatal(err)
			}
			allValues = append(allValues, v)
		}
		ksLocal, err := dynahist.KS(h, allValues[len(allValues)-perNode:])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %d: %6d rows, %2d buckets, local KS %.4f\n",
			n, perNode, len(h.Buckets()), ksLocal)
		members = append(members, h)
	}

	// Coordinator: superpose (lossless), then reduce to the budget.
	super, err := dynahist.Superpose(members...)
	if err != nil {
		log.Fatal(err)
	}
	budget, err := dynahist.BucketsForMemory(mem, 1)
	if err != nil {
		log.Fatal(err)
	}
	reduced, err := dynahist.Reduce(super, budget)
	if err != nil {
		log.Fatal(err)
	}
	global, err := dynahist.NewStaticFromBuckets(reduced)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsuperposed: %d buckets (lossless union of all members)\n", len(super))
	fmt.Printf("reduced:    %d buckets (back under the %dB budget)\n", len(reduced), mem)

	ks, err := dynahist.KS(global, allValues)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global KS vs all %d rows: %.4f\n\n", len(allValues), ks)

	// The global summary answers cross-partition questions no single
	// node could.
	for _, q := range [][2]float64{{0, 999}, {2000, 2999}, {4500, 5000}} {
		est := global.EstimateRange(q[0], q[1])
		exact := 0
		for _, v := range allValues {
			if float64(v) >= q[0] && float64(v) <= q[1] {
				exact++
			}
		}
		fmt.Printf("rows in [%4.0f, %4.0f]: estimate %8.0f, exact %8d\n", q[0], q[1], est, exact)
	}

	// Persist the global histogram to the catalog.
	blob, err := dynahist.MarshalBuckets(reduced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserialized global histogram: %d bytes\n", len(blob))
}
