// Distributed: multi-node scatter-gather serving on the paper's §8
// superposition. Three live histserved nodes each ingest one keyspace
// slice; a client-side Fanout answers global questions by fetching one
// snapshot envelope per site, superposing them losslessly and reducing
// back to a bucket budget — the data itself never moves. The demo then
// kills a node (global reads degrade to a flagged partial answer, not
// an error), boots a replacement on empty state, and watches snapshot
// anti-entropy restore the lost slice from a surviving peer's replica
// without re-ingesting a single raw value.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"dynahist/client"
	"dynahist/internal/dist"
	"dynahist/internal/server"
)

const (
	nodes  = 3
	rows   = 60_000
	domain = 5000
)

// node is one in-process histserved peer.
type node struct {
	srv  *server.Server
	http *http.Server
	ln   net.Listener
	url  string
}

// startNode boots a peer-role histserved on ln.
func startNode(ln net.Listener, siteID string, peers []string) (*node, error) {
	srv, err := server.New(server.Config{
		SiteID:           siteID,
		Peers:            peers,
		AntiEntropyEvery: 50 * time.Millisecond,
		Logger:           log.New(io.Discard, "", 0),
	})
	if err != nil {
		return nil, err
	}
	n := &node{
		srv:  srv,
		http: &http.Server{Handler: srv.Handler()},
		ln:   ln,
		url:  "http://" + ln.Addr().String(),
	}
	go func() { _ = n.http.Serve(ln) }()
	return n, nil
}

func (n *node) stop() {
	_ = n.http.Close()
	_ = n.srv.Close()
}

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))

	// Reserve the listeners first: every node names its peers at boot,
	// so all addresses must exist before any node does.
	lns := make([]net.Listener, nodes)
	urls := make([]string, nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	cluster := make([]*node, nodes)
	for i := range cluster {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		n, err := startNode(lns[i], fmt.Sprintf("s%d", i), peers)
		if err != nil {
			log.Fatal(err)
		}
		cluster[i] = n
		fmt.Printf("node s%d serving %s\n", i, urls[i])
	}

	// One logical histogram, sharded by keyspace: value mod 3 picks the
	// owning site. An exact tracker rides along for the audit.
	f := client.NewFanout(urls, nil)
	if err := f.CreateAll(ctx, client.CreateOptions{Name: "price", Family: client.FamilyDADO, MemBytes: 2048}); err != nil {
		log.Fatal(err)
	}
	tracker := dist.New(domain)
	slices := make([][]float64, nodes)
	for range rows {
		v := int(rng.NormFloat64()*700 + float64(domain)/2)
		if v < 0 {
			v = 0
		}
		if v > domain {
			v = domain
		}
		slices[v%nodes] = append(slices[v%nodes], float64(v))
		if err := tracker.Insert(v); err != nil {
			log.Fatal(err)
		}
	}
	for i, vs := range slices {
		if _, err := client.New(urls[i], nil).InsertBinary(ctx, "price", vs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node s%d ingested %d rows of its slice\n", i, len(vs))
	}

	// Global read: one envelope per site, superposed, reduced, answered.
	spec := client.QuerySpec{
		Quantiles: []float64{0.5, 0.99},
		Ranges:    []client.Range{{Lo: 2000, Hi: 2999}},
	}
	report := func(g client.GlobalSummary) {
		status := "complete"
		if g.Partial {
			status = "PARTIAL"
		}
		exactMedian := 0
		for cum, v := int64(0), 0; v <= domain; v++ {
			cum += tracker.Count(v)
			if cum*2 >= tracker.Total() {
				exactMedian = v
				break
			}
		}
		fmt.Printf("  global total %8.0f (%s)  median ≈ %6.0f (exact %d)  p99 ≈ %6.0f  rows in [2000,2999] ≈ %8.0f (exact %d)\n",
			g.Total, status, g.Quantiles[0], exactMedian, g.Quantiles[1],
			g.Ranges[0], tracker.RangeCount(2000, 2999))
		for _, sr := range g.Sites {
			if sr.Err != nil {
				fmt.Printf("  site %s: DOWN (%v)\n", sr.BaseURL, sr.Err)
			}
		}
	}

	fmt.Println("\nscatter-gather over 3 healthy sites (64-bucket budget):")
	g, err := f.Describe(ctx, "price", spec, client.DescribeOptions{MaxBuckets: 64})
	if err != nil {
		log.Fatal(err)
	}
	report(g)

	// Let anti-entropy replicate every slice across the mesh, then kill
	// a node. Reads degrade, they do not fail.
	time.Sleep(300 * time.Millisecond)
	fmt.Println("\nkilling node s2 — reads degrade to a flagged partial answer:")
	victimLn := cluster[2].ln.Addr().String()
	cluster[2].stop()
	g, err = f.Describe(ctx, "price", spec, client.DescribeOptions{MaxBuckets: 64})
	if err != nil {
		log.Fatal(err)
	}
	report(g)

	// A replacement node boots EMPTY on the same address and converges
	// from a surviving peer's replica — no raw data is re-ingested.
	fmt.Println("\nbooting an empty replacement on the same address — anti-entropy restores the slice:")
	ln, err := net.Listen("tcp", victimLn)
	if err != nil {
		log.Fatal(err)
	}
	replacement, err := startNode(ln, "s2", []string{urls[0], urls[1]})
	if err != nil {
		log.Fatal(err)
	}
	cluster[2] = replacement
	c2 := client.New(urls[2], nil)
	for deadline := time.Now().Add(10 * time.Second); ; {
		if total, err := c2.Total(ctx, "price"); err == nil && int(total) == len(slices[2]) {
			fmt.Printf("  replacement adopted %d rows from a peer replica\n", int(total))
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("replacement never converged")
		}
		time.Sleep(20 * time.Millisecond)
	}
	g, err = f.Describe(ctx, "price", spec, client.DescribeOptions{MaxBuckets: 64})
	if err != nil {
		log.Fatal(err)
	}
	report(g)

	for _, n := range cluster {
		n.stop()
	}
}
