package dynahist

import (
	"fmt"

	"dynahist/internal/histogram"
)

// Range is one inclusive integer-value range query [Lo, Hi].
type Range struct {
	Lo, Hi float64
}

// QuerySpec names the statistics one batch evaluation answers — many
// questions, one pinned view. The zero spec still reports Total.
type QuerySpec struct {
	// Quantiles are the q arguments, each in (0, 1].
	Quantiles []float64
	// CDF are the x arguments of the CDF curve points.
	CDF []float64
	// PDF are the x arguments of the density points.
	PDF []float64
	// Ranges are the EstimateRange arguments.
	Ranges []Range
	// Buckets asks for the pinned bucket list itself.
	Buckets bool
}

// Summary is the result of a batch evaluation: every answer computed
// from one pinned view, so the statistics are mutually consistent —
// no write can land between the total and the quantiles it normalises.
type Summary struct {
	// Total is the pinned point count (always filled).
	Total float64
	// Quantiles, CDF, PDF and Ranges hold one answer per corresponding
	// QuerySpec argument, in order.
	Quantiles []float64
	CDF       []float64
	PDF       []float64
	Ranges    []float64
	// Buckets is the pinned bucket list when the spec asked for it.
	Buckets []Bucket
}

// Describe answers every statistic in the spec from this one pinned
// view. It errors (without a partial result) when a quantile argument
// is outside (0, 1] or quantiles are requested of an empty histogram;
// the other statistics are total functions.
func (v *View) Describe(spec QuerySpec) (*Summary, error) {
	sum := &Summary{Total: v.Total()}
	if len(spec.Quantiles) > 0 {
		qs, err := v.QuantileAll(spec.Quantiles)
		if err != nil {
			return nil, err
		}
		sum.Quantiles = qs
	}
	if len(spec.CDF) > 0 {
		sum.CDF = v.CDFAll(spec.CDF)
	}
	if len(spec.PDF) > 0 {
		sum.PDF = make([]float64, len(spec.PDF))
		for i, x := range spec.PDF {
			sum.PDF[i] = v.PDF(x)
		}
	}
	if len(spec.Ranges) > 0 {
		sum.Ranges = make([]float64, len(spec.Ranges))
		for i, r := range spec.Ranges {
			sum.Ranges[i] = v.EstimateRange(r.Lo, r.Hi)
		}
	}
	if spec.Buckets {
		sum.Buckets = v.Buckets()
	}
	return sum, nil
}

// QuantileAll answers one quantile per argument off the pinned view —
// each in O(log n), with no re-capture between them.
func (v *View) QuantileAll(qs []float64) ([]float64, error) {
	out := make([]float64, len(qs))
	for i, q := range qs {
		x, err := v.Quantile(q)
		if err != nil {
			return nil, fmt.Errorf("quantile %d of %d: %w", i+1, len(qs), err)
		}
		out[i] = x
	}
	return out, nil
}

// CDFAll answers one CDF point per argument off the pinned view.
func (v *View) CDFAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = v.CDF(x)
	}
	return out
}

// Describe pins one view of h and answers every statistic in the spec
// from it — the one-call form of View().Describe(spec) for callers
// that do not need to hold the pin.
func Describe(h Histogram, spec QuerySpec) (*Summary, error) {
	v, err := viewOf(h)
	if err != nil {
		return nil, err
	}
	return v.Describe(spec)
}

// Quantile returns the smallest value x such that approximately a
// fraction q of the summarised points are ≤ x, for q in (0, 1]. It
// works for any histogram via its bucket list.
//
// Deprecated: use the Quantile method every Estimator in this package
// has (or pin a View for several quantiles) — it answers off the
// pinned read plane instead of walking a fresh Buckets() copy per
// call.
func Quantile(h Histogram, q float64) (float64, error) {
	return histogram.Quantile(toInternal(h.Buckets()), q)
}
