package dynahist

import "sync"

// Concurrent wraps a Histogram with a read-write mutex so it can be
// shared between goroutines — typically one writer applying the
// table's insert/delete stream and many readers asking for
// selectivity estimates.
type Concurrent struct {
	mu sync.RWMutex
	h  Histogram
}

// NewConcurrent returns a thread-safe view of h. The caller must stop
// using h directly.
func NewConcurrent(h Histogram) *Concurrent {
	return &Concurrent{h: h}
}

// Insert adds one occurrence of v.
func (c *Concurrent) Insert(v float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.h.Insert(v)
}

// Delete removes one occurrence of v.
func (c *Concurrent) Delete(v float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.h.Delete(v)
}

// Total returns the number of points currently summarised.
func (c *Concurrent) Total() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.h.Total()
}

// View pins the current state as an immutable snapshot under one lock
// acquisition; afterwards every statistic on the view runs lock-free,
// so a batch of related questions pays the contended mutex once
// instead of once per statistic. See Estimator.
func (c *Concurrent) View() (*View, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return viewOf(c.h)
}

// Quantile returns the smallest x with CDF(x) ≥ q, q in (0, 1].
func (c *Concurrent) Quantile(q float64) (float64, error) { return quantileOf(c, q) }

// CDF returns the approximate fraction of points ≤ x.
//
// Estimation methods take the full write lock rather than a read lock:
// some implementations (AC) rebuild an internal cache lazily on first
// read after an update, so concurrent "reads" may mutate state.
func (c *Concurrent) CDF(x float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.h.CDF(x)
}

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (c *Concurrent) EstimateRange(lo, hi float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.h.EstimateRange(lo, hi)
}

// Buckets returns a copy of the current bucket list.
func (c *Concurrent) Buckets() []Bucket {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.h.Buckets()
}
