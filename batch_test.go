package dynahist_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dynahist"
)

// TestBatchMatchesPerValue checks that every native InsertBatch and
// DeleteBatch produces the state the per-value loop produces — exactly
// for the kinds whose batch is a plain loop (DC, AC, static), and up
// to a small CDF tolerance for DADO/DVO, whose batch path defers the
// split-merge settle to the end of each batch (the counters are
// identical; only which borders moved when can differ).
func TestBatchMatchesPerValue(t *testing.T) {
	fs, is := kindValues(3000)
	for _, kind := range matrixKinds {
		one := newOfKind(t, kind, is)
		two := newOfKind(t, kind, is)
		bw, ok := two.(dynahist.BatchWriter)
		if !ok {
			t.Fatalf("%v does not implement BatchWriter", kind)
		}
		deferred := kind == dynahist.KindDADO || kind == dynahist.KindDVO
		if kind.Maintained() {
			for off := 0; off < len(fs); off += 250 {
				if err := bw.InsertBatch(fs[off:min(off+250, len(fs))]); err != nil {
					t.Fatal(err)
				}
			}
			for _, v := range fs {
				if err := one.Insert(v); err != nil {
					t.Fatal(err)
				}
			}
		}
		if deferred {
			assertCloseHistogram(t, kind.String()+" insert", one, two, 0.05)
		} else {
			assertSameHistogram(t, kind.String()+" insert", one, two)
		}

		del := fs[:500]
		for _, v := range del {
			if err := one.Delete(v); err != nil {
				t.Fatal(err)
			}
		}
		if err := bw.DeleteBatch(del); err != nil {
			t.Fatal(err)
		}
		if deferred {
			assertCloseHistogram(t, kind.String()+" delete", one, two, 0.05)
		} else {
			assertSameHistogram(t, kind.String()+" delete", one, two)
		}
	}
}

// assertCloseHistogram checks identical totals and CDFs within tol at
// a grid of points.
func assertCloseHistogram(t *testing.T, label string, a, b dynahist.Histogram, tol float64) {
	t.Helper()
	if at, bt := a.Total(), b.Total(); math.Abs(at-bt) > 0.5 {
		t.Errorf("%s: totals %v vs %v", label, at, bt)
	}
	for x := 0.0; x <= 2000; x += 50 {
		if ac, bc := a.CDF(x), b.CDF(x); math.Abs(ac-bc) > tol {
			t.Errorf("%s: CDF(%v) %v vs %v (tol %v)", label, x, ac, bc, tol)
		}
	}
}

// TestConcurrentBatch checks the single-lock batch path of the
// Concurrent wrapper under racing writers.
func TestConcurrentBatch(t *testing.T) {
	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	if err != nil {
		t.Fatal(err)
	}
	c := dynahist.NewConcurrent(h)
	if err := c.InsertBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	for w := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			chunk := make([]float64, 100)
			for sent := 0; sent < perWriter; sent += len(chunk) {
				for i := range chunk {
					chunk[i] = float64(rng.Intn(5000))
				}
				if err := c.InsertBatch(chunk); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := c.Total(), float64(writers*perWriter); math.Abs(got-want) > 0.5 {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	if err := c.DeleteBatch(make([]float64, 100)); err != nil {
		t.Fatalf("DeleteBatch: %v", err)
	}
	if got, want := c.Total(), float64(writers*perWriter-100); math.Abs(got-want) > 0.5 {
		t.Fatalf("Total after DeleteBatch = %v, want %v", got, want)
	}
}

// TestInsertAllFallback checks the generic helpers on a histogram type
// from outside the package (no BatchWriter).
type plainHistogram struct{ dynahist.Histogram }

func TestInsertAllFallback(t *testing.T) {
	inner, err := dynahist.New(dynahist.KindDC, dynahist.WithMemory(512))
	if err != nil {
		t.Fatal(err)
	}
	h := plainHistogram{inner}
	fs, _ := kindValues(500)
	if err := dynahist.InsertAll(h, fs); err != nil {
		t.Fatal(err)
	}
	if got := h.Total(); got != 500 {
		t.Fatalf("Total = %v, want 500", got)
	}
	if err := dynahist.DeleteAll(h, fs[:100]); err != nil {
		t.Fatal(err)
	}
	if got := h.Total(); got != 400 {
		t.Fatalf("Total = %v, want 400", got)
	}
}

// TestBatchThroughputGate is the acceptance gate for the batch-first
// write path: at 8 writer goroutines on a Sharded engine, feeding the
// same values through InsertBatch must reach at least 1.5× the
// per-value Insert throughput — one striping pass and one lock
// acquisition per shard per batch, against one atomic-epoch bump and
// one lock round-trip per value. The real gap is well above 3×;
// interleaved best-of-3 keeps a noisy scheduler from inverting the
// comparison.
func TestBatchThroughputGate(t *testing.T) {
	const (
		writers   = 8
		perWriter = 24000
		batchSize = 256
		domain    = 5000
		mem       = 8192
	)
	rng := rand.New(rand.NewSource(31))
	values := make([]float64, writers*perWriter)
	for i := range values {
		values[i] = float64(rng.Intn(domain + 1))
	}
	newEngine := func() *dynahist.Sharded {
		s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
			return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(mem/writers))
		}, dynahist.WithShards(writers))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	run := func(s *dynahist.Sharded, batch int) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for w := range writers {
			wg.Add(1)
			go func() {
				defer wg.Done()
				mine := values[w*perWriter : (w+1)*perWriter]
				for off := 0; off < len(mine); off += batch {
					end := min(off+batch, len(mine))
					var err error
					if batch == 1 {
						err = s.Insert(mine[off])
					} else {
						err = s.InsertBatch(mine[off:end])
					}
					if err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}

	perValue := time.Duration(math.MaxInt64)
	batched := time.Duration(math.MaxInt64)
	var s *dynahist.Sharded
	for range 3 {
		if d := run(newEngine(), 1); d < perValue {
			perValue = d
		}
		s = newEngine()
		if d := run(s, batchSize); d < batched {
			batched = d
		}
		if t.Failed() {
			return
		}
	}
	n := float64(len(values))
	perValueRate := n / perValue.Seconds()
	batchedRate := n / batched.Seconds()
	speedup := batchedRate / perValueRate
	t.Logf("8-writer sharded ingest: per-value %.0f ops/s (%v), batched(%d) %.0f ops/s (%v), speedup %.2fx",
		perValueRate, perValue, batchSize, batchedRate, batched, speedup)
	if speedup < 1.5 {
		t.Errorf("batched ingest %.2fx per-value throughput, want ≥ 1.5x", speedup)
	}
	if got, want := s.Total(), n; math.Abs(got-want) > 0.5 {
		t.Fatalf("Total = %v, want %v", got, want)
	}
}
