package dynahist_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dynahist"
)

// shardedFanOut streams the values into ins from `writers` goroutines
// over contiguous chunks and returns the elapsed wall time.
func shardedFanOut(t *testing.T, writers int, values []float64, ins func(v float64) error) time.Duration {
	t.Helper()
	per := (len(values) + writers - 1) / writers
	var wg sync.WaitGroup
	start := time.Now()
	for off := 0; off < len(values); off += per {
		end := min(off+per, len(values))
		chunk := values[off:end]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, v := range chunk {
				if err := ins(v); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func uniformValues(seed int64, n, domain int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(rng.Intn(domain + 1))
	}
	return values
}

// TestShardedMatchesUnsharded asserts the §8 superposition claim at
// the API level: a sharded histogram over P shards of mem/P bytes each
// answers Total and CDF like a single histogram with the whole budget,
// within merge tolerance.
func TestShardedMatchesUnsharded(t *testing.T) {
	const (
		n      = 40000
		domain = 5000
		mem    = 8192
		shards = 8
	)
	values := uniformValues(17, n, domain)

	single, err := dynahist.NewDADOMemory(mem)
	if err != nil {
		t.Fatal(err)
	}
	shardedH, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.NewDADOMemory(mem / shards)
	}, dynahist.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if err := single.Insert(v); err != nil {
			t.Fatal(err)
		}
		if err := shardedH.Insert(v); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := shardedH.Total(), single.Total(); math.Abs(got-want) > 1 {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	maxDiff := 0.0
	for x := 0.0; x <= domain; x += 10 {
		if d := math.Abs(shardedH.CDF(x) - single.CDF(x)); d > maxDiff {
			maxDiff = d
		}
	}
	// Both histograms approximate the same distribution under the same
	// total budget; their CDFs must stay within a small merge tolerance.
	if maxDiff > 0.02 {
		t.Fatalf("max |CDF_sharded − CDF_single| = %v, want ≤ 0.02", maxDiff)
	}
	lo, hi := float64(domain)/4, float64(domain)/2
	se, ue := shardedH.EstimateRange(lo, hi), single.EstimateRange(lo, hi)
	if math.Abs(se-ue) > 0.05*float64(n) {
		t.Fatalf("EstimateRange(%v,%v) = %v, unsharded %v", lo, hi, se, ue)
	}
}

// TestShardedHistogramInterface pins Sharded (and Concurrent) to the
// Histogram interface.
func TestShardedHistogramInterface(t *testing.T) {
	var _ dynahist.Histogram = (*dynahist.Sharded)(nil)
	var _ dynahist.Histogram = (*dynahist.Concurrent)(nil)
}

func TestShardedBatchAndDelete(t *testing.T) {
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.NewDCMemory(512)
	}, dynahist.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	values := uniformValues(23, 10000, 1000)
	if err := s.InsertBatch(values); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Total(), float64(len(values)); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Total after InsertBatch = %v, want %v", got, want)
	}
	if err := s.DeleteBatch(values[:5000]); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Total(), float64(len(values)-5000); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Total after DeleteBatch = %v, want %v", got, want)
	}
	// Drain most of the remainder one value at a time. DC repartitioning
	// leaves fractional per-bucket counts, so the last few points may
	// not be removable as whole units — stop short of empty.
	for _, v := range values[5000:9500] {
		if err := s.Delete(v); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := s.Total(), 500.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("Total after draining = %v, want %v", got, want)
	}
}

func TestShardedOptions(t *testing.T) {
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.NewDCMemory(512)
	}, dynahist.WithShards(3), dynahist.WithShardPolicy(dynahist.ShardRoundRobin),
		dynahist.WithMergeBudget(16))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NumShards(); got != 3 {
		t.Fatalf("NumShards = %d, want 3", got)
	}
	for range 3000 {
		if err := s.Insert(42); err != nil {
			t.Fatal(err)
		}
	}
	for i, tot := range s.ShardTotals() {
		if tot != 1000 {
			t.Fatalf("round-robin shard %d holds %v, want 1000", i, tot)
		}
	}
	if got := len(s.Buckets()); got > 16 {
		t.Fatalf("merged view has %d buckets, budget 16", got)
	}
}

// TestShardedThroughputVsConcurrent is the acceptance gate for the
// sharded engine: at 8 writer goroutines and equal total memory, the
// sharded histogram must ingest at least as fast as the single-mutex
// Concurrent wrapper. Each of the P shards maintains a histogram of
// mem/P bytes, so DADO's O(buckets) per-insert work shrinks by the
// shard count — the engine wins even on a single core, and by more
// once writers run truly in parallel.
func TestShardedThroughputVsConcurrent(t *testing.T) {
	const (
		writers = 8
		n       = 24000
		domain  = 5000
		mem     = 8192
	)
	values := uniformValues(29, n, domain)

	// Interleaved best-of-3 so a noisy scheduler moment on a shared CI
	// runner cannot invert the comparison (the real gap is ~5×).
	var s *dynahist.Sharded
	concurrentElapsed := time.Duration(math.MaxInt64)
	shardedElapsed := time.Duration(math.MaxInt64)
	for range 3 {
		h, err := dynahist.NewDADOMemory(mem)
		if err != nil {
			t.Fatal(err)
		}
		c := dynahist.NewConcurrent(h)
		if d := shardedFanOut(t, writers, values, c.Insert); d < concurrentElapsed {
			concurrentElapsed = d
		}
		s, err = dynahist.NewSharded(func() (dynahist.Histogram, error) {
			return dynahist.NewDADOMemory(mem / writers)
		}, dynahist.WithShards(writers))
		if err != nil {
			t.Fatal(err)
		}
		if d := shardedFanOut(t, writers, values, s.Insert); d < shardedElapsed {
			shardedElapsed = d
		}
		if t.Failed() {
			return
		}
	}
	concurrentRate := float64(n) / concurrentElapsed.Seconds()
	shardedRate := float64(n) / shardedElapsed.Seconds()
	t.Logf("8-writer ingest: concurrent %.0f ops/s (%v), sharded %.0f ops/s (%v), speedup %.2fx",
		concurrentRate, concurrentElapsed, shardedRate, shardedElapsed,
		shardedRate/concurrentRate)
	if shardedRate < concurrentRate {
		t.Errorf("sharded ingest %.0f ops/s slower than single-mutex %.0f ops/s at %d writers",
			shardedRate, concurrentRate, writers)
	}
	if got, want := s.Total(), float64(n); math.Abs(got-want) > 1 {
		t.Fatalf("sharded Total = %v, want %v", got, want)
	}
}

// TestShardedConcurrentReads exercises the epoch-cached merged view
// under racing writers and readers.
func TestShardedConcurrentReads(t *testing.T) {
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.NewDCMemory(512)
	})
	if err != nil {
		t.Fatal(err)
	}
	const perWorker = 3000
	var wg sync.WaitGroup
	for w := range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for range perWorker {
				if err := s.Insert(float64(rng.Intn(1000))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range perWorker {
				if tot := s.Total(); tot < 0 {
					t.Error("negative total")
					return
				}
				if cdf := s.CDF(500); cdf < 0 || cdf > 1+1e-9 {
					t.Errorf("CDF out of range: %v", cdf)
					return
				}
				_ = s.Buckets()
			}
		}()
	}
	wg.Wait()
	if got, want := s.Total(), float64(4*perWorker); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Total = %v, want %v", got, want)
	}
}

// noSnapHistogram wraps a Histogram and hides its Snapshot method.
type noSnapHistogram struct{ dynahist.Histogram }

// TestShardedSnapshotRestore round-trips a Sharded histogram of each
// snapshottable family through SnapshotShards/RestoreSharded and
// asserts the recovered engine answers Total and CDF identically, then
// keeps maintaining.
func TestShardedSnapshotRestore(t *testing.T) {
	families := []struct {
		name    string
		factory func() (dynahist.Histogram, error)
		restore func([]byte) (dynahist.Histogram, error)
	}{
		{"dado",
			func() (dynahist.Histogram, error) { return dynahist.NewDADOMemory(1024) },
			func(b []byte) (dynahist.Histogram, error) { return dynahist.RestoreDADO(b) }},
		{"dc",
			func() (dynahist.Histogram, error) { return dynahist.NewDCMemory(1024) },
			func(b []byte) (dynahist.Histogram, error) { return dynahist.RestoreDC(b) }},
		{"ac",
			func() (dynahist.Histogram, error) { return dynahist.NewACBuckets(16, 500, 42) },
			func(b []byte) (dynahist.Histogram, error) { return dynahist.RestoreAC(b) }},
	}
	values := uniformValues(23, 20000, 2000)
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			s, err := dynahist.NewSharded(fam.factory, dynahist.WithShards(4))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.InsertBatch(values); err != nil {
				t.Fatal(err)
			}
			blobs, err := s.SnapshotShards()
			if err != nil {
				t.Fatal(err)
			}
			r, err := dynahist.RestoreSharded(blobs, fam.restore)
			if err != nil {
				t.Fatal(err)
			}
			if r.NumShards() != s.NumShards() {
				t.Fatalf("NumShards = %d, want %d", r.NumShards(), s.NumShards())
			}
			if got, want := r.Total(), s.Total(); math.Abs(got-want) > 1e-6 {
				t.Fatalf("Total = %v, want %v", got, want)
			}
			for x := 0.0; x <= 2000; x += 100 {
				if got, want := r.CDF(x), s.CDF(x); math.Abs(got-want) > 1e-9 {
					t.Fatalf("CDF(%v) = %v, want %v", x, got, want)
				}
			}
			if err := r.Insert(1000); err != nil {
				t.Fatal(err)
			}
			if got, want := r.Total(), s.Total()+1; math.Abs(got-want) > 1e-6 {
				t.Fatalf("Total after insert = %v, want %v", got, want)
			}
		})
	}
}

func TestShardedSnapshotErrors(t *testing.T) {
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		h, err := dynahist.NewDADOMemory(512)
		return noSnapHistogram{h}, err
	}, dynahist.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SnapshotShards(); err == nil {
		t.Error("snapshot over non-snapshottable members accepted")
	}

	if _, err := dynahist.RestoreSharded(nil, func(b []byte) (dynahist.Histogram, error) {
		return dynahist.RestoreDADO(b)
	}); err == nil {
		t.Error("restore of zero blobs accepted")
	}
	if _, err := dynahist.RestoreSharded([][]byte{{1, 2, 3}}, nil); err == nil {
		t.Error("nil restorer accepted")
	}
	if _, err := dynahist.RestoreSharded([][]byte{{1, 2, 3}}, func(b []byte) (dynahist.Histogram, error) {
		return dynahist.RestoreDADO(b)
	}); err == nil {
		t.Error("garbage blob accepted")
	}
}
