package dynahist

import (
	"dynahist/internal/histogram"
	"dynahist/internal/union"
)

// Superpose builds the lossless union of the given histograms' bucket
// lists (paper §8): a border wherever any member has one, counts
// summed. Use Reduce to bring the result back to a memory budget, and
// NewStaticFromBuckets to query it.
func Superpose(members ...Histogram) ([]Bucket, error) {
	lists := make([][]histogram.Bucket, 0, len(members))
	for _, m := range members {
		lists = append(lists, toInternal(m.Buckets()))
	}
	u, err := union.Superpose(lists...)
	if err != nil {
		return nil, err
	}
	return toPublic(u), nil
}

// Reduce merges a bucket list down to at most n buckets by repeatedly
// merging the most similar adjacent pair (the SSBM technique applied to
// an existing histogram).
func Reduce(buckets []Bucket, n int) ([]Bucket, error) {
	r, err := union.Reduce(toInternal(buckets), n)
	if err != nil {
		return nil, err
	}
	return toPublic(r), nil
}

// MarshalBuckets serializes a bucket list to the package's stable
// binary catalog format.
func MarshalBuckets(buckets []Bucket) ([]byte, error) {
	return histogram.MarshalBuckets(toInternal(buckets))
}

// UnmarshalBuckets parses a bucket list serialized by MarshalBuckets.
func UnmarshalBuckets(data []byte) ([]Bucket, error) {
	bs, err := histogram.UnmarshalBuckets(data)
	if err != nil {
		return nil, err
	}
	return toPublic(bs), nil
}
