package dynahist

import (
	"dynahist/internal/approx"
	"dynahist/internal/histogram"
)

// AC is the Approximate Compressed histogram of Gibbons, Matias and
// Poosala (VLDB'97): a compressed histogram maintained from a reservoir
// "backing sample". It is the baseline the paper evaluates dynamic
// histograms against. It is not safe for concurrent use; wrap it with
// NewConcurrent if needed.
type AC struct {
	inner *approx.AC
	// rv is the cached read view; nil after any write (or a gamma
	// change, which swaps the maintenance mode's current histogram).
	rv *View
}

// ACDefaultDiskFactor is the default backing-sample budget relative to
// main memory (20×), following the AC authors' suggestion adopted by
// the paper.
const ACDefaultDiskFactor = approx.DefaultDiskFactor

// ACRecomputeAlways is the γ setting (−1) that recomputes the histogram
// from the backing sample at every update — the paper's configuration.
const ACRecomputeAlways = approx.RecomputeAlways

// NewAC returns an AC histogram with the given in-memory byte budget,
// backing-sample disk factor, and reservoir seed.
//
// Deprecated: use New(KindAC, WithMemory(memBytes),
// WithDiskFactor(diskFactor), WithSeed(seed)).
func NewAC(memBytes, diskFactor int, seed int64) (*AC, error) {
	h, err := approx.New(memBytes, diskFactor, seed)
	if err != nil {
		return nil, err
	}
	return &AC{inner: h}, nil
}

// NewACBuckets returns an AC histogram with explicit bucket and sample
// capacities.
//
// Deprecated: use New(KindAC, WithBuckets(buckets),
// WithSampleCapacity(sampleCapacity), WithSeed(seed)).
func NewACBuckets(buckets, sampleCapacity int, seed int64) (*AC, error) {
	h, err := approx.NewBuckets(buckets, sampleCapacity, seed)
	if err != nil {
		return nil, err
	}
	return &AC{inner: h}, nil
}

// Insert adds one occurrence of v.
func (h *AC) Insert(v float64) error { h.rv = nil; return h.inner.Insert(v) }

// Delete removes one occurrence of v (also evicting it from the
// backing sample when present; the sample is not refilled).
func (h *AC) Delete(v float64) error { h.rv = nil; return h.inner.Delete(v) }

// Total returns the number of points currently summarised.
func (h *AC) Total() float64 { return h.inner.Total() }

// View pins the current state as an immutable snapshot (triggering
// the lazy rebuild from the backing sample when one is pending); see
// Estimator. The view's Total is the rebuilt bucket mass — the count
// AC's own CDF normalises by — which can sit a scaling hair away from
// the live count Total() reports.
func (h *AC) View() (*View, error) {
	if h.rv == nil {
		bs := h.inner.Buckets()
		v, err := newViewOwned(bs, histogram.TotalCount(bs))
		if err != nil {
			return nil, err
		}
		h.rv = v
	}
	return h.rv, nil
}

// Quantile returns the smallest x with CDF(x) ≥ q, q in (0, 1].
func (h *AC) Quantile(q float64) (float64, error) { return quantileOf(h, q) }

// CDF returns the approximate fraction of points ≤ x.
func (h *AC) CDF(x float64) float64 { return readView(h).CDF(x) }

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *AC) EstimateRange(lo, hi float64) float64 { return readView(h).EstimateRange(lo, hi) }

// Buckets returns a copy of the current bucket list (possibly
// rebuilding from the backing sample first), straight off the
// maintained state (see Dynamic.Buckets).
func (h *AC) Buckets() []Bucket { return toPublic(h.inner.Buckets()) }

// SetGamma sets the maintenance threshold: ACRecomputeAlways (−1)
// recomputes per update; γ > 0 maintains incrementally with a
// recompute fallback.
func (h *AC) SetGamma(gamma float64) error { h.rv = nil; return h.inner.SetGamma(gamma) }

// SampleSize returns the current backing-sample size.
func (h *AC) SampleSize() int { return h.inner.SampleSize() }

// SampleCapacity returns the backing-sample capacity.
func (h *AC) SampleCapacity() int { return h.inner.SampleCapacity() }
