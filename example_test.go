package dynahist_test

import (
	"fmt"

	"dynahist"
)

// ExampleNewDADOMemory shows the core workflow: size a histogram for a
// memory budget, stream values, estimate a range predicate.
func ExampleNewDADOMemory() {
	h, err := dynahist.NewDADOMemory(1024) // 1 KB ≈ 85 buckets
	if err != nil {
		panic(err)
	}
	for v := range 10000 {
		_ = h.Insert(float64(v % 100))
	}
	sel := h.EstimateRange(0, 49) / h.Total()
	fmt.Printf("selectivity of [0,49]: %.2f\n", sel)
	// Output: selectivity of [0,49]: 0.50
}

// ExampleBuildStatic builds the paper's SSBM static histogram from a
// complete data set.
func ExampleBuildStatic() {
	values := make([]int, 0, 1000)
	for v := range 1000 {
		values = append(values, v%50)
	}
	h, err := dynahist.BuildStatic(dynahist.SSBM, values, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d buckets summarising %.0f rows\n", h.NumBuckets(), h.Total())
	// Output: 10 buckets summarising 1000 rows
}

// ExampleQuantile computes percentiles from any histogram.
func ExampleQuantile() {
	h, err := dynahist.NewDADO(32)
	if err != nil {
		panic(err)
	}
	for v := range 1000 {
		_ = h.Insert(float64(v))
	}
	median, err := dynahist.Quantile(h, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("median ≈ %.0f\n", median)
	// Output: median ≈ 500
}

// ExampleSuperpose combines per-node histograms into a global one
// (paper §8).
func ExampleSuperpose() {
	node1, _ := dynahist.NewDADO(8)
	node2, _ := dynahist.NewDADO(8)
	for v := range 100 {
		_ = node1.Insert(float64(v))
		_ = node2.Insert(float64(v + 500))
	}
	union, err := dynahist.Superpose(node1, node2)
	if err != nil {
		panic(err)
	}
	global, err := dynahist.Reduce(union, 8)
	if err != nil {
		panic(err)
	}
	total := 0.0
	for _, b := range global {
		total += b.Count()
	}
	fmt.Printf("global histogram: %d buckets, %.0f rows\n", len(global), total)
	// Output: global histogram: 8 buckets, 200 rows
}
