package dynahist_test

import (
	"fmt"

	"dynahist"
)

// ExampleNew shows the core workflow: pick a kind, size the histogram
// for a memory budget, stream values, estimate a range predicate.
func ExampleNew() {
	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024)) // 1 KB ≈ 85 buckets
	if err != nil {
		panic(err)
	}
	for v := range 10000 {
		_ = h.Insert(float64(v % 100))
	}
	sel := h.EstimateRange(0, 49) / h.Total()
	fmt.Printf("selectivity of [0,49]: %.2f\n", sel)
	// Output: selectivity of [0,49]: 0.50
}

// ExampleNew_static builds the paper's SSBM static histogram from a
// complete data set through the same front door.
func ExampleNew_static() {
	values := make([]int, 0, 1000)
	for v := range 1000 {
		values = append(values, v%50)
	}
	h, err := dynahist.New(dynahist.KindSSBM,
		dynahist.WithValues(values), dynahist.WithBuckets(10))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d buckets summarising %.0f rows\n",
		len(h.Buckets()), h.Total())
	// Output: 10 buckets summarising 1000 rows
}

// ExampleRestore round-trips a histogram through the self-describing
// snapshot envelope: one restore door for every kind.
func ExampleRestore() {
	h, err := dynahist.New(dynahist.KindDC, dynahist.WithMemory(512))
	if err != nil {
		panic(err)
	}
	for v := range 1000 {
		_ = h.Insert(float64(v % 40))
	}
	blob, err := h.(dynahist.Snapshotter).Snapshot()
	if err != nil {
		panic(err)
	}
	restored, err := dynahist.Restore(blob) // no family named anywhere
	if err != nil {
		panic(err)
	}
	fmt.Printf("restored a %v with %.0f rows\n",
		dynahist.KindOf(restored), restored.Total())
	// Output: restored a dc with 1000 rows
}

// ExampleEstimator computes percentiles from any histogram through
// the read plane every public kind implements.
func ExampleEstimator() {
	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithBuckets(32))
	if err != nil {
		panic(err)
	}
	for v := range 1000 {
		_ = h.Insert(float64(v))
	}
	e := h.(dynahist.Estimator)
	median, err := e.Quantile(0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("median ≈ %.0f\n", median)
	// Output: median ≈ 500
}

// ExampleView answers a whole batch of statistics from one pinned,
// mutually consistent snapshot.
func ExampleView() {
	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithBuckets(32))
	if err != nil {
		panic(err)
	}
	for v := range 1000 {
		_ = h.Insert(float64(v))
	}
	view, err := h.(dynahist.Estimator).View()
	if err != nil {
		panic(err)
	}
	sum, err := view.Describe(dynahist.QuerySpec{
		Quantiles: []float64{0.5, 0.9},
		Ranges:    []dynahist.Range{{Lo: 0, Hi: 499}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("n=%.0f p50≈%.0f p90≈%.0f rows[0,499]≈%.0f\n",
		sum.Total, sum.Quantiles[0], sum.Quantiles[1], sum.Ranges[0])
	// Output: n=1000 p50≈500 p90≈900 rows[0,499]≈500
}

// ExampleSuperpose combines per-node histograms into a global one
// (paper §8).
func ExampleSuperpose() {
	node1, _ := dynahist.New(dynahist.KindDADO, dynahist.WithBuckets(8))
	node2, _ := dynahist.New(dynahist.KindDADO, dynahist.WithBuckets(8))
	for v := range 100 {
		_ = node1.Insert(float64(v))
		_ = node2.Insert(float64(v + 500))
	}
	union, err := dynahist.Superpose(node1, node2)
	if err != nil {
		panic(err)
	}
	global, err := dynahist.Reduce(union, 8)
	if err != nil {
		panic(err)
	}
	total := 0.0
	for _, b := range global {
		total += b.Count()
	}
	fmt.Printf("global histogram: %d buckets, %.0f rows\n", len(global), total)
	// Output: global histogram: 8 buckets, 200 rows
}
