package dynahist_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"dynahist"
)

func insertStream(t *testing.T, h dynahist.Histogram, values []int) {
	t.Helper()
	for _, v := range values {
		if err := h.Insert(float64(v)); err != nil {
			t.Fatal(err)
		}
	}
}

func randomValues(seed int64, n, domain int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(domain + 1)
	}
	return out
}

func TestPublicConstructors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (dynahist.Histogram, error)
	}{
		{"DADO", func() (dynahist.Histogram, error) { return dynahist.NewDADO(16) }},
		{"DADOMemory", func() (dynahist.Histogram, error) { return dynahist.NewDADOMemory(1024) }},
		{"DVO", func() (dynahist.Histogram, error) { return dynahist.NewDVO(16) }},
		{"DVOMemory", func() (dynahist.Histogram, error) { return dynahist.NewDVOMemory(1024) }},
		{"Dynamic-K3", func() (dynahist.Histogram, error) {
			return dynahist.NewDynamic(dynahist.AbsDeviation, 16, 3)
		}},
		{"DC", func() (dynahist.Histogram, error) { return dynahist.NewDC(16) }},
		{"DCMemory", func() (dynahist.Histogram, error) { return dynahist.NewDCMemory(1024) }},
		{"AC", func() (dynahist.Histogram, error) { return dynahist.NewAC(1024, 20, 1) }},
		{"ACBuckets", func() (dynahist.Histogram, error) { return dynahist.NewACBuckets(16, 500, 1) }},
	}
	values := randomValues(1, 5000, 400)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h, err := c.build()
			if err != nil {
				t.Fatal(err)
			}
			insertStream(t, h, values)
			if h.Total() != 5000 {
				t.Fatalf("Total = %v, want 5000", h.Total())
			}
			if got := h.EstimateRange(0, 400); math.Abs(got-5000) > 1 {
				t.Fatalf("whole-range estimate %v, want ≈5000", got)
			}
			prev := 0.0
			for x := -1.0; x <= 402; x += 1 {
				cdf := h.CDF(x)
				if cdf < prev-1e-9 || cdf < 0 || cdf > 1+1e-9 {
					t.Fatalf("CDF not monotone at %v", x)
				}
				prev = cdf
			}
			if len(h.Buckets()) == 0 {
				t.Fatal("no buckets")
			}
			ks, err := dynahist.KS(h, values)
			if err != nil {
				t.Fatal(err)
			}
			if ks > 0.2 {
				t.Fatalf("KS = %v, implausibly bad", ks)
			}
		})
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := dynahist.NewDADO(1); err == nil {
		t.Error("NewDADO(1): want error")
	}
	if _, err := dynahist.NewDCMemory(2); err == nil {
		t.Error("NewDCMemory(2): want error")
	}
	if _, err := dynahist.NewAC(1024, 0, 1); err == nil {
		t.Error("NewAC disk factor 0: want error")
	}
	if _, err := dynahist.NewDynamic(dynahist.AbsDeviation, 8, 1); err == nil {
		t.Error("subBuckets 1: want error")
	}
	if _, err := dynahist.BuildStatic(dynahist.StaticKind(42), []int{1}, 4); err == nil {
		t.Error("unknown static kind: want error")
	}
	if _, err := dynahist.BuildStatic(dynahist.EquiDepth, nil, 4); err == nil {
		t.Error("no values: want error")
	}
	if _, err := dynahist.BuildStatic(dynahist.EquiDepth, []int{-1}, 4); err == nil {
		t.Error("negative value: want error")
	}
}

func TestBucketAccessors(t *testing.T) {
	b := dynahist.Bucket{Left: 2, Right: 8, Counters: []float64{3, 5}}
	if b.Count() != 8 || b.Width() != 6 {
		t.Errorf("Count/Width = %v/%v", b.Count(), b.Width())
	}
}

func TestBucketsForMemory(t *testing.T) {
	n, err := dynahist.BucketsForMemory(1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 85 {
		t.Errorf("1KB with 2 counters = %d, want 85", n)
	}
}

func TestStaticKinds(t *testing.T) {
	values := randomValues(2, 4000, 300)
	kinds := []dynahist.StaticKind{
		dynahist.EquiWidth, dynahist.EquiDepth, dynahist.Compressed,
		dynahist.VOptimal, dynahist.SADO, dynahist.SSBM,
	}
	for _, kind := range kinds {
		h, err := dynahist.BuildStatic(kind, values, 20)
		if err != nil {
			t.Fatalf("kind %d: %v", int(kind), err)
		}
		if h.Total() != 4000 {
			t.Fatalf("kind %d: Total %v", int(kind), h.Total())
		}
		if h.NumBuckets() > 20 {
			t.Fatalf("kind %d: over budget", int(kind))
		}
		ks, err := dynahist.KS(h, values)
		if err != nil {
			t.Fatal(err)
		}
		if ks > 0.25 {
			t.Fatalf("kind %d: KS %v implausibly bad", int(kind), ks)
		}
	}
	if _, err := dynahist.BuildStaticMemory(dynahist.SSBM, values, 256); err != nil {
		t.Fatal(err)
	}
}

func TestDADOBeatsStaticBaselineClaim(t *testing.T) {
	// The paper's headline: DADO (dynamic, one pass, bounded memory)
	// comes close to the best static construction on skewed data.
	values := randomValues(3, 30000, 2000)
	dado, err := dynahist.NewDADOMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	insertStream(t, dado, values)
	ksDADO, err := dynahist.KS(dado, values)
	if err != nil {
		t.Fatal(err)
	}
	if ksDADO > 0.05 {
		t.Errorf("DADO KS %v too large on uniform-ish data", ksDADO)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	values := randomValues(4, 3000, 500)
	h, err := dynahist.NewDADO(24)
	if err != nil {
		t.Fatal(err)
	}
	insertStream(t, h, values)
	data, err := dynahist.MarshalBuckets(h.Buckets())
	if err != nil {
		t.Fatal(err)
	}
	buckets, err := dynahist.UnmarshalBuckets(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := dynahist.NewStaticFromBuckets(buckets)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 501; x += 10 {
		if math.Abs(restored.CDF(x)-h.CDF(x)) > 1e-9 {
			t.Fatalf("restored CDF differs at %v", x)
		}
	}
	if _, err := dynahist.UnmarshalBuckets(data[:5]); err == nil {
		t.Error("truncated data: want error")
	}
}

func TestSuperposeAndReduce(t *testing.T) {
	h1, err := dynahist.NewDADO(16)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := dynahist.NewDADO(16)
	if err != nil {
		t.Fatal(err)
	}
	insertStream(t, h1, randomValues(5, 2000, 300))
	insertStream(t, h2, randomValues(6, 3000, 600))
	u, err := dynahist.Superpose(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, b := range u {
		total += b.Count()
	}
	if math.Abs(total-5000) > 1e-6 {
		t.Fatalf("union mass %v, want 5000", total)
	}
	r, err := dynahist.Reduce(u, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) > 16 {
		t.Fatalf("reduced to %d buckets", len(r))
	}
	g, err := dynahist.NewStaticFromBuckets(r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Total()-5000) > 1e-6 {
		t.Fatalf("global total %v", g.Total())
	}
}

func TestConcurrentWrapper(t *testing.T) {
	inner, err := dynahist.NewDADO(32)
	if err != nil {
		t.Fatal(err)
	}
	h := dynahist.NewConcurrent(inner)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := range 4 {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for range 2000 {
				if err := h.Insert(float64(rng.Intn(1000))); err != nil {
					errs <- err
					return
				}
			}
		}(int64(w))
	}
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 2000 {
				_ = h.CDF(500)
				_ = h.EstimateRange(100, 300)
				_ = h.Total()
				_ = h.Buckets()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if h.Total() != 8000 {
		t.Fatalf("Total = %v, want 8000", h.Total())
	}
}

func TestDiagnosticsExposed(t *testing.T) {
	dc, err := dynahist.NewDC(8)
	if err != nil {
		t.Fatal(err)
	}
	for v := range 8 {
		if err := dc.Insert(float64(v * 5)); err != nil {
			t.Fatal(err)
		}
	}
	for range 3000 {
		if err := dc.Insert(17); err != nil {
			t.Fatal(err)
		}
	}
	if dc.Repartitions() == 0 {
		t.Error("DC diagnostics: expected repartitions under skew")
	}
	dado, err := dynahist.NewDADO(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range randomValues(7, 3000, 500) {
		if err := dado.Insert(float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	if dado.Kind() != dynahist.AbsDeviation {
		t.Error("Kind() wrong")
	}
	if dado.TotalDeviation() < 0 {
		t.Error("TotalDeviation negative")
	}
	if dado.Reorganisations() == 0 {
		t.Error("expected some reorganisations on random data")
	}
}

func TestInterfaceCompliance(t *testing.T) {
	var _ dynahist.Histogram = (*dynahist.DADO)(nil)
	var _ dynahist.Histogram = (*dynahist.DC)(nil)
	var _ dynahist.Histogram = (*dynahist.AC)(nil)
	var _ dynahist.Histogram = (*dynahist.Static)(nil)
	var _ dynahist.Histogram = (*dynahist.Concurrent)(nil)
}

func TestSnapshotRestorePublic(t *testing.T) {
	dado, err := dynahist.NewDADOMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	values := randomValues(13, 10000, 2000)
	insertStream(t, dado, values)
	blob, err := dado.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := dynahist.RestoreDADO(blob)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Total() != dado.Total() || restored.MaxBuckets() != dado.MaxBuckets() {
		t.Fatal("restored DADO differs")
	}
	for x := 0.0; x <= 2001; x += 25 {
		if math.Abs(restored.CDF(x)-dado.CDF(x)) > 1e-12 {
			t.Fatalf("CDF differs at %v", x)
		}
	}
	dc, err := dynahist.NewDCMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	insertStream(t, dc, values)
	blob, err = dc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restoredDC, err := dynahist.RestoreDC(blob)
	if err != nil {
		t.Fatal(err)
	}
	if restoredDC.Total() != dc.Total() || restoredDC.SingularCount() != dc.SingularCount() {
		t.Fatal("restored DC differs")
	}
	if _, err := dynahist.RestoreDADO(blob); err == nil {
		t.Error("DC blob into RestoreDADO: want error")
	}
	if _, err := dynahist.RestoreDC(nil); err == nil {
		t.Error("nil blob: want error")
	}
}

func TestQuantilePublic(t *testing.T) {
	h, err := dynahist.NewDADO(32)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform data over [0, 1000): the median should be near 500.
	for v := range 10000 {
		if err := h.Insert(float64(v % 1000)); err != nil {
			t.Fatal(err)
		}
	}
	med, err := dynahist.Quantile(h, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med < 400 || med > 600 {
		t.Errorf("median = %v, want ≈500", med)
	}
	p99, err := dynahist.Quantile(h, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p99 < 900 {
		t.Errorf("p99 = %v, want ≥900", p99)
	}
	if _, err := dynahist.Quantile(h, 0); err == nil {
		t.Error("q=0: want error")
	}
}
