package dynahist

import (
	"encoding/binary"
	"fmt"

	"dynahist/internal/approx"
	"dynahist/internal/binenc"
	"dynahist/internal/core"
	"dynahist/internal/histogram"
	"dynahist/internal/shard"
)

// The snapshot envelope is the package's one self-describing
// serialization: every Snapshot method wraps its family payload in it
// and the single Restore reads the tag to pick the decoder, so callers
// never record out-of-band which family a blob came from.
//
// Layout (integers little-endian):
//
//	u32  magic 0x56454844 ("DHEV")
//	u16  version (1)
//	u8   kind (the Kind constants; part of the format, never renumber)
//	…    family payload (the rest of the blob)
//
// Payloads: the maintained families carry their full-state snapshots
// from internal/core and internal/approx; the static kinds carry a
// MarshalBuckets bucket list; KindSharded carries
//
//	u8   shard policy
//	u32  merge budget
//	u32  shard count n
//	n ×  (u32 blob length, blob) — each itself a complete envelope
//
// Restore also accepts the pre-envelope raw blobs of internal/core and
// internal/approx (magic "DYNS"), so catalogs written before the
// envelope existed stay restorable.
const (
	envMagic      = 0x56454844 // "DHEV"
	envVersion    = 1
	envHeaderSize = 7

	// legacyMagic is the shared magic of the raw internal/core and
	// internal/approx snapshot blobs ("DYNS"); their kind byte sits at
	// the same offset as the envelope's.
	legacyMagic = 0x44594e53
)

// legacy kind bytes inside a "DYNS" blob.
const (
	legacyKindDC  = 1
	legacyKindDVO = 2
	legacyKindAC  = 3
)

// encodeEnvelope wraps a family payload in the kind-tagged envelope.
func encodeEnvelope(kind Kind, payload []byte) []byte {
	out := make([]byte, 0, envHeaderSize+len(payload))
	out = binary.LittleEndian.AppendUint32(out, envMagic)
	out = binary.LittleEndian.AppendUint16(out, envVersion)
	out = append(out, byte(kind))
	return append(out, payload...)
}

// decodeEnvelope splits an envelope into its kind tag and payload.
func decodeEnvelope(data []byte) (Kind, []byte, error) {
	if len(data) < envHeaderSize {
		return KindUnknown, nil, fmt.Errorf("%w: %d bytes, envelope header needs %d",
			ErrBadSnapshot, len(data), envHeaderSize)
	}
	if magic := binary.LittleEndian.Uint32(data); magic != envMagic {
		return KindUnknown, nil, fmt.Errorf("%w: bad magic %#x", ErrBadSnapshot, magic)
	}
	if version := binary.LittleEndian.Uint16(data[4:]); version != envVersion {
		return KindUnknown, nil, fmt.Errorf("%w: unsupported envelope version %d", ErrBadSnapshot, version)
	}
	return Kind(data[6]), data[envHeaderSize:], nil
}

// maxShardedNesting caps how deep sharded envelopes may nest inside
// each other. Real engines are one level (maintained members inside
// one Sharded); the cap only exists so a crafted blob of
// envelopes-all-the-way-down cannot recurse the decoder into a stack
// overflow.
const maxShardedNesting = 4

// Restore is the package's one restore door: it rebuilds any histogram
// from a blob produced by any Snapshot method in this package — the
// envelope's kind tag says which family the payload belongs to, so the
// caller never has to remember. The concrete type matches the kind
// (inspect it with KindOf or a type assertion); a restored maintained
// histogram continues exactly where the snapshot left off.
//
// Garbage of any sort — truncated input, foreign magic, an unknown or
// lying kind tag, corrupt payloads — is rejected with ErrBadSnapshot,
// never a panic.
func Restore(data []byte) (Histogram, error) {
	return restoreAtDepth(data, 0)
}

// restoreAtDepth is Restore with the sharded-nesting level threaded
// through.
func restoreAtDepth(data []byte, depth int) (Histogram, error) {
	if len(data) >= 4 && binary.LittleEndian.Uint32(data) == legacyMagic {
		return restoreLegacy(data)
	}
	kind, payload, err := decodeEnvelope(data)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KindDADO, KindDVO:
		inner, err := core.RestoreDVO(payload)
		if err != nil {
			return nil, err
		}
		h := &Dynamic{inner: inner}
		if got := KindOf(h); got != kind {
			return nil, fmt.Errorf("%w: envelope tagged %v but payload deviation makes it %v",
				ErrBadSnapshot, kind, got)
		}
		return h, nil
	case KindDC:
		inner, err := core.RestoreDC(payload)
		if err != nil {
			return nil, err
		}
		return &DC{inner: inner}, nil
	case KindAC:
		inner, err := approx.Restore(payload)
		if err != nil {
			return nil, err
		}
		return &AC{inner: inner}, nil
	case KindSharded:
		if depth >= maxShardedNesting {
			return nil, fmt.Errorf("%w: sharded envelopes nested deeper than %d",
				ErrBadSnapshot, maxShardedNesting)
		}
		return restoreShardedPayload(payload, depth)
	case KindStatic, KindEquiWidth, KindEquiDepth, KindCompressed, KindVOptimal, KindSADO, KindSSBM:
		bs, err := histogram.UnmarshalBuckets(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		p, err := histogram.NewPiecewise(bs)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		return &Static{inner: p, kind: kind}, nil
	default:
		return nil, fmt.Errorf("%w: unknown envelope kind %d", ErrBadSnapshot, int(kind))
	}
}

// restoreLegacy rebuilds a histogram from a pre-envelope raw snapshot
// blob; the "DYNS" header carries its own kind byte at the envelope's
// offset.
func restoreLegacy(data []byte) (Histogram, error) {
	if len(data) < envHeaderSize {
		return nil, fmt.Errorf("%w: truncated legacy snapshot", ErrBadSnapshot)
	}
	switch data[6] {
	case legacyKindDC:
		inner, err := core.RestoreDC(data)
		if err != nil {
			return nil, err
		}
		return &DC{inner: inner}, nil
	case legacyKindDVO:
		inner, err := core.RestoreDVO(data)
		if err != nil {
			return nil, err
		}
		return &Dynamic{inner: inner}, nil
	case legacyKindAC:
		inner, err := approx.Restore(data)
		if err != nil {
			return nil, err
		}
		return &AC{inner: inner}, nil
	default:
		return nil, fmt.Errorf("%w: unknown legacy snapshot kind %d", ErrBadSnapshot, data[6])
	}
}

// encodeShardedPayload frames the per-shard envelopes with the engine
// configuration.
func encodeShardedPayload(policy ShardPolicy, mergeBudget int, blobs [][]byte) []byte {
	size := 9
	for _, b := range blobs {
		size += 4 + len(b)
	}
	out := make([]byte, 0, size)
	out = append(out, byte(policy))
	out = binary.LittleEndian.AppendUint32(out, uint32(mergeBudget))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blobs)))
	for _, b := range blobs {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out
}

// restoreShardedPayload rebuilds a Sharded engine from its envelope
// payload: configuration plus one member envelope per shard, each
// restored through the same Restore door.
func restoreShardedPayload(payload []byte, depth int) (*Sharded, error) {
	r := binenc.Reader{Data: payload, Err: ErrBadSnapshot}
	policy, err := r.U8()
	if err != nil {
		return nil, err
	}
	budget, err := r.U32()
	if err != nil {
		return nil, err
	}
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if n == 0 || uint64(n)*4 > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrBadSnapshot, n)
	}
	members := make([]shard.Member, n)
	var memberKind Kind
	for i := range members {
		size, err := r.U32()
		if err != nil {
			return nil, err
		}
		blob, err := r.Bytes(int(size))
		if err != nil {
			return nil, err
		}
		h, err := restoreAtDepth(blob, depth+1)
		if err != nil {
			return nil, fmt.Errorf("%w: shard %d: %v", ErrBadSnapshot, i, err)
		}
		if i == 0 {
			memberKind = KindOf(h)
		}
		members[i] = memberAdapter{h: h}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, r.Remaining())
	}
	cfg := shard.Config{Policy: shard.Policy(policy), MergeBudget: int(budget)}
	e, err := shard.NewFromMembers(cfg, members)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &Sharded{e: e, memberKind: memberKind}, nil
}
