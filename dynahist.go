// Package dynahist is a from-scratch Go implementation of the dynamic
// histograms of Donjerkovic, Ioannidis and Ramakrishnan, "Dynamic
// Histograms: Capturing Evolving Data Sets" (ICDE 2000), together with
// every substrate the paper's evaluation depends on.
//
// A histogram approximates the distribution of a numeric column within
// a fixed memory budget, so a query optimizer can estimate predicate
// selectivities without touching the data. Classic histograms are
// static: rebuilt periodically from a full scan, stale in between. The
// dynamic histograms in this package are maintained incrementally —
// every insert and delete updates the summary in microseconds — while
// staying close to the best static constructions in accuracy.
//
// Every histogram is built through one front door — a Kind plus
// functional options:
//
//   - KindDADO — the Dynamic Average-Deviation Optimal histogram, the
//     paper's best performer and the recommended default.
//   - KindDVO — the Dynamic V-Optimal variant (variance-driven; the
//     same split-merge machinery, shared type Dynamic).
//   - KindDC — the Dynamic Compressed histogram with a chi-square
//     repartitioning trigger.
//   - KindAC — the Approximate Compressed histogram of Gibbons, Matias
//     and Poosala (VLDB'97), backed by a reservoir sample; the baseline
//     the paper compares against.
//   - KindEquiWidth … KindSSBM — the static constructions (Equi-Width,
//     Equi-Depth, Compressed, V-Optimal, SADO, SSBM) built from
//     complete data supplied with WithValues.
//
// Around them the package provides shared-nothing utilities (lossless
// superposition and SSBM reduction, paper §8), a sharded concurrent
// ingest engine (Sharded) that stripes writes across per-shard
// histograms and serves reads from an epoch-cached lossless union, a
// single-mutex wrapper (Concurrent), a batch-first write path
// (BatchWriter, implemented by everything here), and self-describing
// snapshots: every Snapshot wraps its payload in a kind-tagged
// envelope that the one Restore door rebuilds, so persistence never
// records a histogram's family out of band.
//
// Reads have one plane too: every public histogram is an Estimator,
// whose View method pins the current state as an immutable snapshot —
// one lock acquisition on Concurrent, one merged-union
// materialisation on Sharded — off which Total, CDF, PDF, Quantile,
// EstimateRange, Buckets and the batch queries (Describe,
// QuantileAll, CDFAll) answer lock-free, with prefix sums making CDF
// and Quantile O(log n).
//
// Quickstart:
//
//	h, _ := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024)) // 1 KB budget
//	_ = dynahist.InsertAll(h, values)
//	sel := h.EstimateRange(100, 200) / h.Total()
//
//	v, _ := h.(dynahist.Estimator).View() // pin once …
//	sum, _ := v.Describe(dynahist.QuerySpec{Quantiles: []float64{0.5, 0.99}})
//	_ = sum // … answer many statistics consistently
//
// Errors throughout classify with errors.Is against the typed
// sentinels (ErrEmptyHistogram, ErrBadBudget, ErrBadKind,
// ErrBadOption, ErrBadSnapshot).
package dynahist

import (
	"dynahist/internal/histogram"
)

// Bucket is one histogram bucket covering the half-open value interval
// [Left, Right). Counters may hold more than one value when the bucket
// keeps sub-bucket structure (DVO/DADO); Count is their sum.
type Bucket struct {
	// Left and Right bound the bucket's value range [Left, Right).
	Left, Right float64
	// Counters are the sub-bucket point counts over equal-width slices
	// of the range. Plain histograms have exactly one counter.
	Counters []float64
}

// Count returns the total number of points in the bucket.
func (b Bucket) Count() float64 {
	s := 0.0
	for _, c := range b.Counters {
		s += c
	}
	return s
}

// Width returns Right − Left.
func (b Bucket) Width() float64 { return b.Right - b.Left }

// Histogram is the behaviour shared by every maintained histogram in
// this package.
type Histogram interface {
	// Insert adds one occurrence of the value.
	Insert(v float64) error
	// Delete removes one occurrence of the value. Deleting from an
	// empty histogram is an error; deleting a value the summary cannot
	// locate exactly falls back to the paper's nearest-bucket spill
	// policy.
	Delete(v float64) error
	// Total returns the number of points currently summarised.
	Total() float64
	// CDF returns the approximate fraction of points ≤ x.
	CDF(x float64) float64
	// EstimateRange returns the approximate number of points with
	// integer value in [lo, hi] inclusive — the range-predicate
	// selectivity estimate times Total().
	EstimateRange(lo, hi float64) float64
	// Buckets returns a copy of the current bucket list, sorted by
	// Left border.
	Buckets() []Bucket
}

// toPublic converts internal buckets to the public representation.
func toPublic(bs []histogram.Bucket) []Bucket {
	out := make([]Bucket, len(bs))
	for i := range bs {
		subs := make([]float64, len(bs[i].Subs))
		copy(subs, bs[i].Subs)
		out[i] = Bucket{Left: bs[i].Left, Right: bs[i].Right, Counters: subs}
	}
	return out
}

// toInternal converts public buckets to the internal representation.
func toInternal(bs []Bucket) []histogram.Bucket {
	out := make([]histogram.Bucket, len(bs))
	for i := range bs {
		subs := make([]float64, len(bs[i].Counters))
		copy(subs, bs[i].Counters)
		out[i] = histogram.Bucket{Left: bs[i].Left, Right: bs[i].Right, Subs: subs}
	}
	return out
}

// BucketsForMemory returns how many buckets a histogram with
// countersPerBucket counters per bucket fits in memBytes under the
// paper's space accounting (4-byte borders and counters).
func BucketsForMemory(memBytes, countersPerBucket int) (int, error) {
	return histogram.BucketsForMemory(memBytes, countersPerBucket)
}
