package dynahist

import (
	"fmt"

	"dynahist/internal/approx"
	"dynahist/internal/core"
	"dynahist/internal/histogram"
)

// Option configures New. Options that do not apply to the kind being
// built are rejected with ErrBadOption rather than silently ignored,
// so a misplaced knob is caught at construction time.
type Option func(*builderConfig)

// builderConfig accumulates the options before New validates them
// against the requested kind.
type builderConfig struct {
	buckets  int
	memBytes int

	subBuckets int

	seed    int64
	seedSet bool

	alphaMin float64
	alphaSet bool

	gamma    float64
	gammaSet bool

	diskFactor int
	sampleCap  int

	values    []int
	valuesSet bool

	damping    bool
	dampingSet bool
}

// WithBuckets sets the budget as an explicit bucket count. Exactly one
// of WithBuckets and WithMemory must be given.
func WithBuckets(n int) Option {
	return func(c *builderConfig) { c.buckets = n }
}

// WithMemory sets the budget as a byte count under the paper's space
// accounting (4-byte borders and counters). Exactly one of WithBuckets
// and WithMemory must be given.
func WithMemory(bytes int) Option {
	return func(c *builderConfig) { c.memBytes = bytes }
}

// WithSubBuckets sets the per-bucket sub-bucket count of the DADO/DVO
// family (default 2, the paper's recommendation; §4 found 2–3
// comparable and finer subdivisions worse).
func WithSubBuckets(n int) Option {
	return func(c *builderConfig) { c.subBuckets = n }
}

// WithSeed seeds the AC family's backing reservoir (default 0).
func WithSeed(seed int64) Option {
	return func(c *builderConfig) { c.seed = seed; c.seedSet = true }
}

// WithAlphaMin sets the DC family's chi-square significance threshold
// in [0,1] (default 1e-6; 0 freezes the partition, 1 repartitions on
// every insert).
func WithAlphaMin(alpha float64) Option {
	return func(c *builderConfig) { c.alphaMin = alpha; c.alphaSet = true }
}

// WithDamping toggles the DC family's futility floor on the
// repartition trigger (default on).
func WithDamping(on bool) Option {
	return func(c *builderConfig) { c.damping = on; c.dampingSet = true }
}

// WithGamma sets the AC family's maintenance threshold: γ = −1
// (ACRecomputeAlways, the default and the paper's configuration)
// recomputes from the backing sample on every update; γ > 0 maintains
// incrementally with a recompute fallback.
func WithGamma(gamma float64) Option {
	return func(c *builderConfig) { c.gamma = gamma; c.gammaSet = true }
}

// WithDiskFactor sets the AC family's backing-sample budget relative
// to main memory (default ACDefaultDiskFactor = 20, the AC authors'
// suggestion adopted by the paper).
func WithDiskFactor(factor int) Option {
	return func(c *builderConfig) { c.diskFactor = factor }
}

// WithSampleCapacity sets the AC family's backing-sample capacity
// explicitly instead of deriving it from the disk factor.
func WithSampleCapacity(n int) Option {
	return func(c *builderConfig) { c.sampleCap = n }
}

// WithValues supplies the complete data set a static construction is
// built from. Values must be non-negative integers (the paper's
// workloads are integer-valued; quantise real-valued data first).
// Required for the static kinds, rejected for the maintained families.
func WithValues(values []int) Option {
	return func(c *builderConfig) { c.values = values; c.valuesSet = true }
}

// New is the package's front door: it constructs a histogram of any
// maintained family or static construction behind one builder,
//
//	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
//	s, err := dynahist.New(dynahist.KindSADO,
//	        dynahist.WithValues(data), dynahist.WithBuckets(32))
//
// replacing the per-family constructors (NewDADO, NewDC, NewAC,
// BuildStatic, …), which remain as deprecated wrappers. Exactly one of
// WithBuckets and WithMemory must be given; options that do not apply
// to the kind are rejected with ErrBadOption. The returned Histogram
// also implements BatchWriter and Snapshotter, and Restore rebuilds it
// from its Snapshot without the caller naming the kind again.
//
// KindSharded cannot be built here — a sharded engine needs a member
// factory; use NewSharded. KindStatic carries no construction
// algorithm; wrap an explicit bucket list with NewStaticFromBuckets.
func New(kind Kind, opts ...Option) (Histogram, error) {
	var c builderConfig
	for _, opt := range opts {
		opt(&c)
	}
	if err := c.validate(kind); err != nil {
		return nil, err
	}
	switch kind {
	case KindDADO, KindDVO:
		return c.buildDynamic(kind)
	case KindDC:
		return c.buildDC()
	case KindAC:
		return c.buildAC()
	default:
		sk, _ := kind.staticKind()
		return c.buildStatic(kind, sk)
	}
}

// validate cross-checks the accumulated options against the kind.
func (c *builderConfig) validate(kind Kind) error {
	switch {
	case kind == KindSharded:
		return fmt.Errorf("%w: %v needs a member factory; use NewSharded", ErrBadKind, kind)
	case kind == KindStatic:
		return fmt.Errorf("%w: %v has no construction; use NewStaticFromBuckets", ErrBadKind, kind)
	case !kind.Valid():
		return fmt.Errorf("%w: %d", ErrBadKind, int(kind))
	}
	if (c.buckets != 0) == (c.memBytes != 0) {
		return fmt.Errorf("%w: give exactly one of WithBuckets and WithMemory", ErrBadBudget)
	}
	if c.buckets < 0 || c.memBytes < 0 {
		return fmt.Errorf("%w: negative budget", ErrBadBudget)
	}

	dynamic := kind == KindDADO || kind == KindDVO
	if c.subBuckets != 0 && !dynamic {
		return fmt.Errorf("%w: WithSubBuckets applies only to KindDADO and KindDVO, not %v", ErrBadOption, kind)
	}
	if kind != KindDC {
		if c.alphaSet {
			return fmt.Errorf("%w: WithAlphaMin applies only to KindDC, not %v", ErrBadOption, kind)
		}
		if c.dampingSet {
			return fmt.Errorf("%w: WithDamping applies only to KindDC, not %v", ErrBadOption, kind)
		}
	}
	if kind != KindAC {
		switch {
		case c.seedSet:
			return fmt.Errorf("%w: WithSeed applies only to KindAC, not %v", ErrBadOption, kind)
		case c.gammaSet:
			return fmt.Errorf("%w: WithGamma applies only to KindAC, not %v", ErrBadOption, kind)
		case c.diskFactor != 0:
			return fmt.Errorf("%w: WithDiskFactor applies only to KindAC, not %v", ErrBadOption, kind)
		case c.sampleCap != 0:
			return fmt.Errorf("%w: WithSampleCapacity applies only to KindAC, not %v", ErrBadOption, kind)
		}
	} else {
		switch {
		case c.diskFactor < 0:
			return fmt.Errorf("%w: disk factor %d < 1", ErrBadOption, c.diskFactor)
		case c.diskFactor != 0 && c.sampleCap != 0:
			return fmt.Errorf("%w: WithSampleCapacity already fixes the backing sample; drop WithDiskFactor", ErrBadOption)
		case c.sampleCap < 0:
			return fmt.Errorf("%w: sample capacity %d < 1", ErrBadOption, c.sampleCap)
		}
	}
	if _, isStatic := kind.staticKind(); isStatic {
		if !c.valuesSet {
			return fmt.Errorf("%w: static construction %v needs WithValues", ErrBadOption, kind)
		}
	} else if c.valuesSet {
		return fmt.Errorf("%w: WithValues applies only to the static kinds, not %v", ErrBadOption, kind)
	}
	return nil
}

func (c *builderConfig) buildDynamic(kind Kind) (Histogram, error) {
	dev := AbsDeviation
	if kind == KindDVO {
		dev = Variance
	}
	sub := c.subBuckets
	if sub == 0 {
		sub = 2
	}
	var (
		inner *core.DVO
		err   error
	)
	if c.buckets > 0 {
		inner, err = core.NewDynamic(core.Deviation(dev), c.buckets, sub)
	} else {
		inner, err = core.NewDynamicMemory(core.Deviation(dev), c.memBytes, sub)
	}
	if err != nil {
		return nil, err
	}
	return &Dynamic{inner: inner}, nil
}

func (c *builderConfig) buildDC() (Histogram, error) {
	var (
		inner *core.DC
		err   error
	)
	if c.buckets > 0 {
		inner, err = core.NewDC(c.buckets)
	} else {
		inner, err = core.NewDCMemory(c.memBytes)
	}
	if err != nil {
		return nil, err
	}
	h := &DC{inner: inner}
	if c.alphaSet {
		if err := h.SetAlphaMin(c.alphaMin); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadOption, err)
		}
	}
	if c.dampingSet {
		h.SetDamping(c.damping)
	}
	return h, nil
}

func (c *builderConfig) buildAC() (Histogram, error) {
	diskFactor := c.diskFactor
	if diskFactor == 0 {
		diskFactor = ACDefaultDiskFactor
	}
	var (
		inner *approx.AC
		err   error
	)
	switch {
	case c.memBytes > 0 && c.sampleCap == 0:
		inner, err = approx.New(c.memBytes, diskFactor, c.seed)
	default:
		buckets := c.buckets
		memBytes := c.memBytes
		if buckets == 0 {
			if buckets, err = histogram.BucketsForMemory(memBytes, 1); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadBudget, err)
			}
		} else {
			memBytes = histogram.MemoryForBuckets(buckets, 1)
		}
		sampleCap := c.sampleCap
		if sampleCap == 0 {
			// Mirror approx.New's derivation: the backing sample gets
			// diskFactor× the histogram's memory, one 4-byte value per
			// slot.
			sampleCap = max(diskFactor*memBytes/4, 1)
		}
		inner, err = approx.NewBuckets(buckets, sampleCap, c.seed)
	}
	if err != nil {
		return nil, err
	}
	h := &AC{inner: inner}
	if c.gammaSet {
		if err := h.SetGamma(c.gamma); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadOption, err)
		}
	}
	return h, nil
}

func (c *builderConfig) buildStatic(kind Kind, sk StaticKind) (Histogram, error) {
	n := c.buckets
	if n == 0 {
		var err error
		if n, err = histogram.BucketsForMemory(c.memBytes, 1); err != nil {
			return nil, err
		}
	}
	h, err := BuildStatic(sk, c.values, n)
	if err != nil {
		return nil, err
	}
	h.kind = kind
	return h, nil
}
