package dynahist

// BatchWriter is the batch-first write path: one call applies a whole
// slice of values, so wrappers that pay per-call costs — a lock
// acquisition (Concurrent), a shard striping pass (Sharded), an HTTP
// round-trip (the serving layer) — pay them once per batch instead of
// once per value. Every histogram in this package implements it; feed
// workloads through it whenever values arrive in groups, which is how
// the self-tuning-histogram literature assumes summaries are fed.
//
// On a member error the batch stops there and the error is returned;
// values before the failing one stay applied (a histogram is an
// approximation — there is no transactional rollback).
type BatchWriter interface {
	// InsertBatch adds every value in vs.
	InsertBatch(vs []float64) error
	// DeleteBatch removes every value in vs.
	DeleteBatch(vs []float64) error
}

// insertSeq is the plain per-value loop behind the batch methods of
// the kinds with no maintenance to defer (DC, AC, Static): their
// batch win is amortising the caller's per-call costs, not the loop
// itself.
func insertSeq(ins func(float64) error, vs []float64) error {
	for _, v := range vs {
		if err := ins(v); err != nil {
			return err
		}
	}
	return nil
}

// InsertBatch adds every value in vs through the core's native batch
// path: counter increments are applied value by value, but the
// split-merge maintenance — whose per-insert trigger scan dominates
// the insert cost — runs once at the end of the batch, repeated to
// quiescence and capped at one reorganisation per value. The settled
// result tracks the per-value path's quality (the trigger sees the
// same counters, just batched); it is the package's fast ingest path.
func (h *Dynamic) InsertBatch(vs []float64) error { h.rv = nil; return h.inner.InsertBatch(vs) }

// DeleteBatch removes every value in vs with the same deferred
// maintenance as InsertBatch.
func (h *Dynamic) DeleteBatch(vs []float64) error { h.rv = nil; return h.inner.DeleteBatch(vs) }

// InsertBatch adds every value in vs.
func (h *DC) InsertBatch(vs []float64) error { return insertSeq(h.Insert, vs) }

// DeleteBatch removes every value in vs.
func (h *DC) DeleteBatch(vs []float64) error { return insertSeq(h.Delete, vs) }

// InsertBatch adds every value in vs.
func (h *AC) InsertBatch(vs []float64) error { return insertSeq(h.Insert, vs) }

// DeleteBatch removes every value in vs.
func (h *AC) DeleteBatch(vs []float64) error { return insertSeq(h.Delete, vs) }

// InsertBatch adds every value in vs (counters only; borders never
// move).
func (h *Static) InsertBatch(vs []float64) error { return insertSeq(h.Insert, vs) }

// DeleteBatch removes every value in vs.
func (h *Static) DeleteBatch(vs []float64) error { return insertSeq(h.Delete, vs) }

// InsertBatch adds every value in vs under one lock acquisition — the
// batch-first path through the single-mutex wrapper, amortising the
// contended lock the way Sharded.InsertBatch amortises its per-shard
// locks.
func (c *Concurrent) InsertBatch(vs []float64) error {
	if len(vs) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if bw, ok := c.h.(BatchWriter); ok {
		return bw.InsertBatch(vs)
	}
	return insertSeq(c.h.Insert, vs)
}

// DeleteBatch removes every value in vs under one lock acquisition.
func (c *Concurrent) DeleteBatch(vs []float64) error {
	if len(vs) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if bw, ok := c.h.(BatchWriter); ok {
		return bw.DeleteBatch(vs)
	}
	return insertSeq(c.h.Delete, vs)
}

// InsertAll feeds vs to any histogram, through its native batch path
// when it has one and value-by-value otherwise — the helper for code
// generic over Histogram.
func InsertAll(h Histogram, vs []float64) error {
	if bw, ok := h.(BatchWriter); ok {
		return bw.InsertBatch(vs)
	}
	return insertSeq(h.Insert, vs)
}

// DeleteAll removes vs from any histogram; see InsertAll.
func DeleteAll(h Histogram, vs []float64) error {
	if bw, ok := h.(BatchWriter); ok {
		return bw.DeleteBatch(vs)
	}
	return insertSeq(h.Delete, vs)
}
