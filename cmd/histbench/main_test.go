package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestListFlag(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out, io.Discard); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	got := out.String()
	for _, id := range []string{"fig5", "fig23", "concurrency", "serving"} {
		if !strings.Contains(got, id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestSingleFigureTable(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-fig", "serving", "-quick", "-seeds", "1", "-points", "4000"}, &out, io.Discard)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	got := out.String()
	if !strings.Contains(got, "# serving") || !strings.Contains(got, "http-binary") {
		t.Errorf("table output missing headers:\n%s", got)
	}
}

func TestSingleFigureCSV(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-fig", "concurrency", "-quick", "-seeds", "1", "-points", "4000", "-format", "csv"}, &out, io.Discard)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "writers,") {
		t.Errorf("csv output malformed:\n%s", out.String())
	}
}

func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		{"-fig", "fig999"},
		{"-format", "yaml", "-fig", "concurrency", "-quick"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		if code := run(args, io.Discard, io.Discard); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code := run([]string{"-h"}, io.Discard, io.Discard); code != 0 {
		t.Fatalf("run(-h) = %d, want 0", code)
	}
}
