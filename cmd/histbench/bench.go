package main

// The -json / -compare modes: a fixed micro-benchmark smoke suite over
// the ingest and serving spines, emitted as machine-readable JSON so CI
// can record one point per PR of the performance trajectory and diff a
// fresh run against the committed baseline (BENCH_PR10.json at the
// repo root).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	"dynahist"
	"dynahist/internal/server"
	"dynahist/internal/wal"
	"dynahist/internal/wire"
)

// BenchPoint is one benchmark's result in the trajectory file.
type BenchPoint struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the whole trajectory point: the suite's results plus
// enough provenance to interpret them.
type BenchReport struct {
	Suite      string       `json:"suite"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	Benchmarks []BenchPoint `json:"benchmarks"`
}

// benchSuite is the fixed smoke suite. Names are stable identifiers:
// the compare mode matches baseline to fresh run by name, so renaming
// one breaks the trajectory for that series.
var benchSuite = []struct {
	name string
	run  func(b *testing.B)
}{
	{"dado_insert_batch_256", benchDADOInsertBatch},
	{"dc_insert", benchDCInsert},
	{"wire_decode_batch_512", benchWireDecode},
	{"sharded_insert_batch_256", benchShardedInsertBatch},
	{"wal_append_256", benchWALAppend},
	{"cached_query_hit", benchCachedQueryHit},
	{"metrics_scrape", benchMetricsScrape},
}

func benchDADOInsertBatch(b *testing.B) {
	hh, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	if err != nil {
		b.Fatal(err)
	}
	h := hh.(dynahist.BatchWriter)
	rng := rand.New(rand.NewSource(1))
	batch := make([]float64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = float64(rng.Intn(5001))
		}
		if err := h.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDCInsert(b *testing.B) {
	h, err := dynahist.New(dynahist.KindDC, dynahist.WithMemory(1024))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Insert(float64(rng.Intn(5001))); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWireDecode(b *testing.B) {
	vs := make([]float64, 512)
	rng := rand.New(rand.NewSource(1))
	for i := range vs {
		vs[i] = rng.Float64() * 1000
	}
	data, err := wire.EncodeBatch(vs)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]float64, 0, len(vs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := wire.DecodeBatchInto(buf, data)
		if err != nil || len(out) != len(vs) {
			b.Fatalf("decode: len %d err %v", len(out), err)
		}
	}
}

func benchShardedInsertBatch(b *testing.B) {
	h, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	}, dynahist.WithShards(4))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	batch := make([]float64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = float64(rng.Intn(5001))
		}
		if err := h.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWALAppend measures the durable-ingest append path: framing,
// CRC and the file write for a 256-value batch. SyncNone keeps fsync
// latency (pure device cost, wildly machine-dependent) out of the
// series; the huge segment threshold keeps rotation out of the loop.
func benchWALAppend(b *testing.B) {
	l, err := wal.Open(wal.Options{Dir: b.TempDir(), Sync: wal.SyncNone, SegmentBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	vs := make([]float64, 256)
	rng := rand.New(rand.NewSource(1))
	for i := range vs {
		vs[i] = float64(rng.Intn(5001))
	}
	data, err := wire.EncodeBatch(vs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(wal.OpInsert, "bench", data); err != nil {
			b.Fatal(err)
		}
	}
}

// discardResponseWriter sinks handler output without allocating, so
// the cached-query benchmark measures the handler and nothing else.
type discardResponseWriter struct {
	h http.Header
	n int
}

func (w *discardResponseWriter) Header() http.Header         { return w.h }
func (w *discardResponseWriter) WriteHeader(int)             {}
func (w *discardResponseWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

// benchCachedQueryHit measures the hot repeated-query serving path
// through the real router: body read into a pooled buffer, epoch load,
// cache lookup, cached summary bytes written back. The handler's
// steady state is allocation-free (internal/server's alloc gate pins
// that); the single small allocation here is the mux's route-match
// state.
func benchCachedQueryHit(b *testing.B) {
	s, err := server.New(server.Config{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Registry().Create(wire.CreateRequest{
		Name: "bench", Family: server.FamilyDADO, MemBytes: 1024, Shards: 2,
	}); err != nil {
		b.Fatal(err)
	}
	h, err := s.Registry().Histogram("bench")
	if err != nil {
		b.Fatal(err)
	}
	vs := make([]float64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range vs {
		vs[i] = float64(rng.Intn(5001))
	}
	if err := h.InsertBatch(vs); err != nil {
		b.Fatal(err)
	}

	body := bytes.NewReader([]byte(`{"quantiles":[0.5,0.9],"cdf":[2500],"ranges":[{"lo":100,"hi":4000}]}`))
	req := httptest.NewRequest("POST", "/v1/h/bench/query", nil)
	req.Body = io.NopCloser(body)
	handler := s.Handler()
	w := &discardResponseWriter{h: make(http.Header)}
	serve := func() {
		if _, err := body.Seek(0, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		handler.ServeHTTP(w, req)
	}
	serve() // warm: first call evaluates and populates the cache
	if w.n == 0 {
		b.Fatal("warm query wrote nothing")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serve()
	}
}

// benchMetricsScrape measures GET /metrics on a metrics-enabled server
// carrying realistic state: a populated registry, endpoint latency
// trackers warmed by traffic, cache counters past zero. The scrape is
// off every request path, so its cost is allowed to be allocation-
// heavy — this series exists to catch it growing superlinearly as
// metrics are added.
func benchMetricsScrape(b *testing.B) {
	s, err := server.New(server.Config{Logger: log.New(io.Discard, "", 0), Metrics: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	handler := s.Handler()
	w := &discardResponseWriter{h: make(http.Header)}

	// Traffic so the scrape covers live series, not an empty registry.
	createBody := bytes.NewReader([]byte(`{"name":"bench","family":"dado","mem_bytes":1024}`))
	createReq := httptest.NewRequest("POST", "/v1/h", io.NopCloser(createBody))
	handler.ServeHTTP(w, createReq)
	insertBody := bytes.NewReader([]byte(`{"values":[1,2,3,4,5,6,7,8]}`))
	queryBody := bytes.NewReader([]byte(`{"quantiles":[0.5]}`))
	insertReq := httptest.NewRequest("POST", "/v1/h/bench/insert", nil)
	queryReq := httptest.NewRequest("POST", "/v1/h/bench/query", nil)
	for i := 0; i < 64; i++ {
		if _, err := insertBody.Seek(0, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		insertReq.Body = io.NopCloser(insertBody)
		handler.ServeHTTP(w, insertReq)
		if _, err := queryBody.Seek(0, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		queryReq.Body = io.NopCloser(queryBody)
		handler.ServeHTTP(w, queryReq)
	}

	scrapeReq := httptest.NewRequest("GET", "/metrics", nil)
	w.n = 0
	handler.ServeHTTP(w, scrapeReq)
	if w.n == 0 {
		b.Fatal("warm scrape wrote nothing")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handler.ServeHTTP(w, scrapeReq)
	}
}

// runBenchSuite executes the smoke suite once and collects the report.
func runBenchSuite() BenchReport {
	rep := BenchReport{
		Suite:     "ingest-smoke-v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, bench := range benchSuite {
		r := testing.Benchmark(bench.run)
		rep.Benchmarks = append(rep.Benchmarks, BenchPoint{
			Name:        bench.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return rep
}

// writeBenchJSON runs the suite and writes the JSON report.
func writeBenchJSON(stdout io.Writer) error {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(runBenchSuite())
}

// compareBench runs the suite and diffs it against the baseline file,
// benchstat-style. Slowdowns beyond warnFactor print a WARN line; the
// comparison never fails the build (micro-benchmarks on shared CI
// runners are too noisy for a hard gate), it exists to make a real
// regression loud in the log.
func compareBench(baselinePath string, stdout, stderr io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base BenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	baseBy := make(map[string]BenchPoint, len(base.Benchmarks))
	for _, p := range base.Benchmarks {
		baseBy[p.Name] = p
	}

	const warnFactor = 1.20
	fresh := runBenchSuite()
	fmt.Fprintf(stdout, "%-28s %14s %14s %8s\n", "benchmark", "base ns/op", "now ns/op", "delta")
	for _, p := range fresh.Benchmarks {
		b, ok := baseBy[p.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-28s %14s %14.1f %8s\n", p.Name, "(new)", p.NsPerOp, "")
			continue
		}
		delta := p.NsPerOp/b.NsPerOp - 1
		fmt.Fprintf(stdout, "%-28s %14.1f %14.1f %+7.1f%%\n", p.Name, b.NsPerOp, p.NsPerOp, delta*100)
		if p.NsPerOp > b.NsPerOp*warnFactor {
			fmt.Fprintf(stderr, "WARN: %s slowed by %.1f%% (>%.0f%% threshold)\n",
				p.Name, delta*100, (warnFactor-1)*100)
		}
		if b.AllocsPerOp == 0 && p.AllocsPerOp > 0 {
			fmt.Fprintf(stderr, "WARN: %s now allocates (%d allocs/op, baseline 0)\n",
				p.Name, p.AllocsPerOp)
		}
	}
	return nil
}
