// Command histbench regenerates the paper's evaluation figures as text
// tables.
//
// Usage:
//
//	histbench [-fig id] [-seeds n] [-points n] [-quick] [-list] [-format table|csv]
//	histbench -json                 # ingest bench smoke suite as JSON
//	histbench -compare BENCH.json   # diff a fresh run against a baseline (warn-only)
//
// Without -fig it runs every registered experiment in order. IDs match
// the paper's figure numbers (fig5 … fig23) plus sec731, the ablations
// (ablation-subbucket, ablation-alphamin, …) and the repo's own
// systems experiments ("concurrency": single-thread vs mutex-wrapped
// vs sharded ingest throughput; "serving": HTTP ingest throughput,
// JSON vs binary batches); see DESIGN.md for the experiment index.
//
// The default settings are the paper's (100,000 points, 10 seeds per
// configuration); -quick caps them for a fast smoke run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dynahist/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("histbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		figID   = fs.String("fig", "", "single figure to run (default: all)")
		seeds   = fs.Int("seeds", 10, "random seeds averaged per configuration")
		points  = fs.Int("points", 100000, "data points per run")
		quick   = fs.Bool("quick", false, "cap seeds and points for a fast smoke run")
		list    = fs.Bool("list", false, "list available figure IDs and exit")
		format  = fs.String("format", "table", "output format: table or csv")
		jsonOut = fs.Bool("json", false, "run the ingest bench smoke suite and emit JSON (the perf-trajectory format)")
		compare = fs.String("compare", "", "run the bench smoke suite and diff against a baseline JSON file (warn-only)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	if *jsonOut {
		if err := writeBenchJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", err)
			return 1
		}
		return 0
	}
	if *compare != "" {
		if err := compareBench(*compare, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", err)
			return 1
		}
		return 0
	}

	opts := experiments.Options{Seeds: *seeds, Points: *points, Quick: *quick}

	ids := experiments.IDs()
	if *figID != "" {
		if _, ok := experiments.Registry[*figID]; !ok {
			fmt.Fprintf(stderr, "histbench: unknown figure %q (use -list)\n", *figID)
			return 2
		}
		ids = []string{*figID}
	}
	for _, id := range ids {
		start := time.Now()
		fig, err := experiments.Registry[id](opts)
		if err != nil {
			fmt.Fprintf(stderr, "histbench: %s: %v\n", id, err)
			return 1
		}
		var werr error
		switch *format {
		case "table":
			werr = fig.WriteTable(stdout)
		case "csv":
			werr = fig.WriteCSV(stdout)
		default:
			fmt.Fprintf(stderr, "histbench: unknown format %q\n", *format)
			return 2
		}
		if werr != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", werr)
			return 1
		}
		if *format == "table" {
			fmt.Fprintf(stdout, "# elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	return 0
}
