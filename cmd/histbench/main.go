// Command histbench regenerates the paper's evaluation figures as text
// tables.
//
// Usage:
//
//	histbench [-fig id] [-seeds n] [-points n] [-quick] [-list] [-format table|csv]
//
// Without -fig it runs every registered experiment in order. IDs match
// the paper's figure numbers (fig5 … fig23) plus sec731, the ablations
// (ablation-subbucket, ablation-alphamin, …) and the repo's own
// concurrency experiment ("concurrency": single-thread vs mutex-wrapped
// vs sharded ingest throughput); see DESIGN.md for the experiment
// index.
//
// The default settings are the paper's (100,000 points, 10 seeds per
// configuration); -quick caps them for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dynahist/internal/experiments"
)

func main() {
	var (
		figID  = flag.String("fig", "", "single figure to run (default: all)")
		seeds  = flag.Int("seeds", 10, "random seeds averaged per configuration")
		points = flag.Int("points", 100000, "data points per run")
		quick  = flag.Bool("quick", false, "cap seeds and points for a fast smoke run")
		list   = flag.Bool("list", false, "list available figure IDs and exit")
		format = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Options{Seeds: *seeds, Points: *points, Quick: *quick}

	ids := experiments.IDs()
	if *figID != "" {
		if _, ok := experiments.Registry[*figID]; !ok {
			fmt.Fprintf(os.Stderr, "histbench: unknown figure %q (use -list)\n", *figID)
			os.Exit(2)
		}
		ids = []string{*figID}
	}
	for _, id := range ids {
		start := time.Now()
		fig, err := experiments.Registry[id](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "histbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		var werr error
		switch *format {
		case "table":
			werr = fig.WriteTable(os.Stdout)
		case "csv":
			werr = fig.WriteCSV(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "histbench: unknown format %q\n", *format)
			os.Exit(2)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "histbench: %v\n", werr)
			os.Exit(1)
		}
		if *format == "table" {
			fmt.Printf("# elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
}
