// Command histcli streams numeric values from stdin (or a file) into a
// chosen histogram and answers range queries against the summary —
// the end-to-end "selectivity estimation from a maintained histogram"
// workflow.
//
// Usage:
//
//	histcli [-algo dado|dvo|dc|ac] [-mem bytes] [-seed n]
//	        [-query lo:hi ...] [-quantile q ...] [-dump] [file]
//
// Input: one value per line; lines beginning with '-' delete the value
// instead of inserting it (e.g. "-42" deletes one occurrence of 42).
// After the stream ends the tool pins one read View of the summary and
// answers everything from it — the summary statistics, the -query
// ranges, the -quantile percentiles, and with -dump the serialized
// bucket list in hex.
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dynahist"
)

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ",") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	var (
		algo      = flag.String("algo", "dado", "histogram: dado, dvo, dc or ac")
		mem       = flag.Int("mem", 1024, "memory budget in bytes")
		seed      = flag.Int64("seed", 1, "seed for the AC backing sample")
		dump      = flag.Bool("dump", false, "print the serialized bucket list in hex")
		queries   queryList
		quantiles queryList
	)
	flag.Var(&queries, "query", "range query lo:hi (repeatable)")
	flag.Var(&quantiles, "quantile", "quantile q in (0,1] (repeatable)")
	flag.Parse()

	h, err := buildHistogram(*algo, *mem, *seed)
	if err != nil {
		fatal(err)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	inserted, deleted, skipped := 0, 0, 0
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "-") {
			v, err := strconv.ParseFloat(line[1:], 64)
			if err != nil {
				skipped++
				continue
			}
			if err := h.Delete(v); err != nil {
				skipped++
				continue
			}
			deleted++
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			skipped++
			continue
		}
		if err := h.Insert(v); err != nil {
			skipped++
			continue
		}
		inserted++
	}
	if err := scanner.Err(); err != nil {
		fatal(err)
	}

	// Everything after the stream answers off one pinned read view:
	// the summary line, every range query and every quantile see the
	// same consistent state.
	view, err := h.View()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("algorithm   %s\n", *algo)
	fmt.Printf("memory      %d bytes\n", *mem)
	fmt.Printf("inserted    %d\n", inserted)
	fmt.Printf("deleted     %d\n", deleted)
	if skipped > 0 {
		fmt.Printf("skipped     %d (unparseable or failed)\n", skipped)
	}
	fmt.Printf("total       %.0f\n", view.Total())
	fmt.Printf("buckets     %d\n", view.NumBuckets())

	for _, q := range queries {
		lo, hi, err := parseRange(q)
		if err != nil {
			fatal(err)
		}
		est := view.EstimateRange(lo, hi)
		sel := 0.0
		if view.Total() > 0 {
			sel = est / view.Total()
		}
		fmt.Printf("query [%g, %g]: estimate %.1f rows (selectivity %.4f)\n", lo, hi, est, sel)
	}

	for _, s := range quantiles {
		q, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fatal(fmt.Errorf("bad quantile %q: %v", s, err))
		}
		v, err := view.Quantile(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("quantile %g: %.2f\n", q, v)
	}

	if *dump {
		data, err := dynahist.MarshalBuckets(view.Buckets())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot    %d bytes\n%s\n", len(data), hex.EncodeToString(data))
	}
}

func buildHistogram(algo string, mem int, seed int64) (dynahist.Estimator, error) {
	kind, err := dynahist.ParseKind(algo)
	if err != nil || !kind.Maintained() {
		return nil, fmt.Errorf("unknown algorithm %q (want dado, dvo, dc or ac)", algo)
	}
	opts := []dynahist.Option{dynahist.WithMemory(mem)}
	if kind == dynahist.KindAC {
		opts = append(opts, dynahist.WithSeed(seed))
	}
	h, err := dynahist.New(kind, opts...)
	if err != nil {
		return nil, err
	}
	// Every kind New builds implements the read plane.
	return h.(dynahist.Estimator), nil
}

func parseRange(s string) (lo, hi float64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad query %q, want lo:hi", s)
	}
	if lo, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return 0, 0, fmt.Errorf("bad query %q: %v", s, err)
	}
	if hi, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return 0, 0, fmt.Errorf("bad query %q: %v", s, err)
	}
	return lo, hi, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "histcli: %v\n", err)
	os.Exit(1)
}
