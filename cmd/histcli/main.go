// Command histcli streams numeric values from stdin (or a file) into a
// chosen histogram and answers range queries against the summary —
// the end-to-end "selectivity estimation from a maintained histogram"
// workflow.
//
// Usage:
//
//	histcli [-algo dado|dvo|dc|ac] [-mem bytes] [-seed n]
//	        [-query lo:hi ...] [-quantile q ...]
//	        [-feedback lo,hi,observed ...] [-dump] [file]
//	histcli -server URL -stats
//
// The second form talks to a running histserved instead of streaming
// locally: -stats fetches GET /v1/stats (requires the server to run
// with -metrics) and prints an operator table — uptime, cache hit
// ratio, WAL digest lag, anti-entropy counters and per-endpoint
// request counts with latency quantiles.
//
// Input: one value per line; lines beginning with '-' delete the value
// instead of inserting it (e.g. "-42" deletes one occurrence of 42).
// After the stream ends the tool pins one read View of the summary and
// answers everything from it — the summary statistics, the -query
// ranges, the -quantile percentiles, and with -dump the serialized
// bucket list in hex.
//
// Each -feedback lo,hi,observed record reports the true row count for
// the inclusive range [lo, hi]; the records drive one pass of the
// internal/tuner feedback loop over the pinned view, and every query
// after that answers from the tuned view — the same loop histserved
// runs online under -tuning, drivable from the shell.
package main

import (
	"bufio"
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dynahist"
	"dynahist/client"
	"dynahist/internal/histogram"
	"dynahist/internal/tuner"
)

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ",") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main's testable body: it parses args, runs the stream-ingest
// and query workflow against in/out, and returns the exit code.
func run(args []string, stdin io.Reader, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("histcli", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		algo      = fs.String("algo", "dado", "histogram: dado, dvo, dc or ac")
		mem       = fs.Int("mem", 1024, "memory budget in bytes")
		seed      = fs.Int64("seed", 1, "seed for the AC backing sample")
		dump      = fs.Bool("dump", false, "print the serialized bucket list in hex")
		serverURL = fs.String("server", "", "histserved base URL for remote commands (e.g. http://localhost:8080)")
		stats     = fs.Bool("stats", false, "fetch /v1/stats from -server and print an operator table (server needs -metrics)")
		queries   queryList
		quantiles queryList
		feedbacks queryList
	)
	fs.Var(&queries, "query", "range query lo:hi (repeatable)")
	fs.Var(&quantiles, "quantile", "quantile q in (0,1] (repeatable)")
	fs.Var(&feedbacks, "feedback", "feedback record lo,hi,observed — true row count for [lo,hi]; tunes the view before queries (repeatable)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(errOut, "histcli: %v\n", err)
		return 1
	}

	if *stats {
		if *serverURL == "" {
			fmt.Fprintln(errOut, "histcli: -stats needs -server URL")
			return 2
		}
		if err := printStats(*serverURL, out); err != nil {
			return fail(err)
		}
		return 0
	}

	h, err := buildHistogram(*algo, *mem, *seed)
	if err != nil {
		return fail(err)
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		in = f
	}

	inserted, deleted, skipped := 0, 0, 0
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "-") {
			v, err := strconv.ParseFloat(line[1:], 64)
			if err != nil {
				skipped++
				continue
			}
			if err := h.Delete(v); err != nil {
				skipped++
				continue
			}
			deleted++
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			skipped++
			continue
		}
		if err := h.Insert(v); err != nil {
			skipped++
			continue
		}
		inserted++
	}
	if err := scanner.Err(); err != nil {
		return fail(err)
	}

	// Everything after the stream answers off one pinned read view:
	// the summary line, every range query and every quantile see the
	// same consistent state. Feedback records tune that view first, so
	// the queries below answer from the adjusted estimates.
	view, err := h.View()
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(out, "algorithm   %s\n", *algo)
	fmt.Fprintf(out, "memory      %d bytes\n", *mem)
	fmt.Fprintf(out, "inserted    %d\n", inserted)
	fmt.Fprintf(out, "deleted     %d\n", deleted)
	if skipped > 0 {
		fmt.Fprintf(out, "skipped     %d (unparseable or failed)\n", skipped)
	}
	fmt.Fprintf(out, "total       %.0f\n", view.Total())
	fmt.Fprintf(out, "buckets     %d\n", view.NumBuckets())

	if len(feedbacks) > 0 {
		view, err = tunedView(view, feedbacks, out)
		if err != nil {
			return fail(err)
		}
	}

	for _, q := range queries {
		lo, hi, err := parseRange(q)
		if err != nil {
			return fail(err)
		}
		est := view.EstimateRange(lo, hi)
		sel := 0.0
		if view.Total() > 0 {
			sel = est / view.Total()
		}
		fmt.Fprintf(out, "query [%g, %g]: estimate %.1f rows (selectivity %.4f)\n", lo, hi, est, sel)
	}

	for _, s := range quantiles {
		q, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fail(fmt.Errorf("bad quantile %q: %v", s, err))
		}
		v, err := view.Quantile(q)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(out, "quantile %g: %.2f\n", q, v)
	}

	if *dump {
		data, err := dynahist.MarshalBuckets(view.Buckets())
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(out, "snapshot    %d bytes\n%s\n", len(data), hex.EncodeToString(data))
	}
	return 0
}

// printStats fetches /v1/stats from a running histserved and renders
// the operator table: the health header, cache and WAL state, the
// anti-entropy counters, and one row per endpoint that has seen
// traffic, with latency quantiles in milliseconds.
func printStats(baseURL string, out io.Writer) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := client.New(baseURL, &http.Client{Timeout: 10 * time.Second})
	st, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("fetching stats (is the server running with -metrics?): %w", err)
	}

	fmt.Fprintf(out, "server      %s\n", baseURL)
	if st.SiteID != "" {
		fmt.Fprintf(out, "site        %s\n", st.SiteID)
	}
	fmt.Fprintf(out, "uptime      %s\n", (time.Duration(st.UptimeSeconds * float64(time.Second))).Round(time.Second))
	fmt.Fprintf(out, "histograms  %d\n", st.Histograms)
	fmt.Fprintf(out, "cache       %d hits, %d misses (hit ratio %.3f), %d stale puts, %d evictions\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.HitRatio, st.Cache.StalePuts, st.Cache.Evictions)
	if st.WAL.Enabled {
		fmt.Fprintf(out, "wal         appended LSN %d, digested LSN %d, digest lag %d, %d fsyncs, %d rotations\n",
			st.WAL.AppendedLSN, st.WAL.DigestedLSN, st.WAL.DigestLag, st.WAL.Fsyncs, st.WAL.Rotations)
	} else {
		fmt.Fprintf(out, "wal         disabled\n")
	}
	if st.AntiEntropy.Rounds > 0 || len(st.AntiEntropy.Peers) > 0 {
		fmt.Fprintf(out, "sync        %d rounds: %d adopted, %d replicated, %d skipped, %d fallback pulls\n",
			st.AntiEntropy.Rounds, st.AntiEntropy.Adopted, st.AntiEntropy.Replicated,
			st.AntiEntropy.Skipped, st.AntiEntropy.FallbackPulls)
		for _, p := range st.AntiEntropy.Peers {
			fmt.Fprintf(out, "peer        %s: %d failures, backoff %.1fs\n", p.Peer, p.Failures, p.BackoffSeconds)
		}
	}
	if st.Tuning.Enabled {
		fmt.Fprintf(out, "tuning      %d feedback records applied, %d clamped\n", st.Tuning.Applied, st.Tuning.Clamped)
	}
	if st.Ingest.Batches > 0 {
		fmt.Fprintf(out, "ingest      %d batches, %.0f values (batch size p50 %.1f, p90 %.1f, p99 %.1f)\n",
			st.Ingest.Batches, st.Ingest.Values, st.Ingest.BatchP50, st.Ingest.BatchP90, st.Ingest.BatchP99)
	}

	names := make([]string, 0, len(st.Endpoints))
	for name, ep := range st.Endpoints {
		if ep.Requests > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(out, "\n%-14s %10s %12s %12s %12s\n", "endpoint", "requests", "p50 ms", "p90 ms", "p99 ms")
		for _, name := range names {
			ep := st.Endpoints[name]
			fmt.Fprintf(out, "%-14s %10d %12.3f %12.3f %12.3f\n",
				name, ep.Requests, ep.LatencyP50*1e3, ep.LatencyP90*1e3, ep.LatencyP99*1e3)
		}
	}
	return nil
}

// tunedView replays the -feedback records through one tuner pass over
// the pinned view and returns the adjusted view, printing per-record
// before/after estimates.
func tunedView(v *dynahist.View, specs []string, out io.Writer) (*dynahist.View, error) {
	recs := make([]tuner.Record, len(specs))
	for i, s := range specs {
		lo, hi, obs, err := parseFeedback(s)
		if err != nil {
			return nil, err
		}
		recs[i] = tuner.Record{Lo: lo, Hi: hi, Observed: obs}
	}

	pb := v.Buckets()
	if len(pb) == 0 {
		return nil, fmt.Errorf("feedback needs a non-empty histogram")
	}
	k := len(pb[0].Counters)
	ib := make([]histogram.Bucket, len(pb))
	for i, b := range pb {
		if len(b.Counters) != k {
			return nil, fmt.Errorf("feedback needs uniform bucket resolution")
		}
		ib[i] = histogram.Bucket{Left: b.Left, Right: b.Right, Subs: b.Counters}
	}
	st, err := histogram.StoreOfBuckets(ib, k)
	if err != nil {
		return nil, err
	}

	t := tuner.New(tuner.Config{})
	for i := range recs {
		recs[i].Estimated = tuner.EstimateRange(st, recs[i].Lo, recs[i].Hi)
		if err := t.Observe(recs[i]); err != nil {
			return nil, fmt.Errorf("bad feedback %q: %v", specs[i], err)
		}
	}
	t.ApplyTo(st)
	for _, r := range recs {
		fmt.Fprintf(out, "feedback [%g, %g]: estimated %.1f observed %.0f tuned %.1f\n",
			r.Lo, r.Hi, r.Estimated, r.Observed, tuner.EstimateRange(st, r.Lo, r.Hi))
	}

	tuned := st.Buckets()
	outB := make([]dynahist.Bucket, len(tuned))
	for i, b := range tuned {
		outB[i] = dynahist.Bucket{Left: b.Left, Right: b.Right, Counters: b.Subs}
	}
	h, err := dynahist.NewStaticFromBuckets(outB)
	if err != nil {
		return nil, err
	}
	return h.View()
}

func buildHistogram(algo string, mem int, seed int64) (dynahist.Estimator, error) {
	kind, err := dynahist.ParseKind(algo)
	if err != nil || !kind.Maintained() {
		return nil, fmt.Errorf("unknown algorithm %q (want dado, dvo, dc or ac)", algo)
	}
	opts := []dynahist.Option{dynahist.WithMemory(mem)}
	if kind == dynahist.KindAC {
		opts = append(opts, dynahist.WithSeed(seed))
	}
	h, err := dynahist.New(kind, opts...)
	if err != nil {
		return nil, err
	}
	// Every kind New builds implements the read plane.
	return h.(dynahist.Estimator), nil
}

func parseRange(s string) (lo, hi float64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad query %q, want lo:hi", s)
	}
	if lo, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return 0, 0, fmt.Errorf("bad query %q: %v", s, err)
	}
	if hi, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return 0, 0, fmt.Errorf("bad query %q: %v", s, err)
	}
	return lo, hi, nil
}

// parseFeedback parses a -feedback spec "lo,hi,observed".
func parseFeedback(s string) (lo, hi, observed float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad feedback %q, want lo,hi,observed", s)
	}
	fields := [3]*float64{&lo, &hi, &observed}
	for i, p := range parts {
		if *fields[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64); err != nil {
			return 0, 0, 0, fmt.Errorf("bad feedback %q: %v", s, err)
		}
	}
	return lo, hi, observed, nil
}
