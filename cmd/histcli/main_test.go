package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"

	"dynahist/client"
	"dynahist/internal/server"
)

func TestParseRange(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi float64
		ok     bool
	}{
		{"100:500", 100, 500, true},
		{"0:0", 0, 0, true},
		{"-5:5", -5, 5, true},
		{"1.5:2.5", 1.5, 2.5, true},
		{"100", 0, 0, false},
		{"a:b", 0, 0, false},
		{"1:b", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, err := parseRange(c.in)
		if c.ok && err != nil {
			t.Errorf("parseRange(%q): %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("parseRange(%q): want error", c.in)
			}
			continue
		}
		if lo != c.lo || hi != c.hi {
			t.Errorf("parseRange(%q) = %v,%v want %v,%v", c.in, lo, hi, c.lo, c.hi)
		}
	}
}

func TestBuildHistogram(t *testing.T) {
	for _, algo := range []string{"dado", "dvo", "dc", "ac"} {
		h, err := buildHistogram(algo, 1024, 1)
		if err != nil {
			t.Errorf("buildHistogram(%q): %v", algo, err)
			continue
		}
		if err := h.Insert(42); err != nil {
			t.Errorf("%q: insert failed: %v", algo, err)
		}
	}
	if _, err := buildHistogram("nope", 1024, 1); err == nil {
		t.Error("unknown algo: want error")
	}
	if _, err := buildHistogram("dado", 2, 1); err == nil {
		t.Error("tiny memory: want error")
	}
}

func TestParseFeedback(t *testing.T) {
	cases := []struct {
		in          string
		lo, hi, obs float64
		ok          bool
	}{
		{"10,20,500", 10, 20, 500, true},
		{" 1.5 , 2.5 , 0 ", 1.5, 2.5, 0, true},
		{"-5,5,3", -5, 5, 3, true},
		{"10,20", 0, 0, 0, false},
		{"10,20,500,9", 0, 0, 0, false},
		{"a,20,500", 0, 0, 0, false},
		{"", 0, 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, obs, err := parseFeedback(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseFeedback(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (lo != c.lo || hi != c.hi || obs != c.obs) {
			t.Errorf("parseFeedback(%q) = %v,%v,%v want %v,%v,%v", c.in, lo, hi, obs, c.lo, c.hi, c.obs)
		}
	}
}

// TestRunFeedbackTunesQueries drives run() end to end: a uniform
// stream, one feedback record claiming far more mass in a range than
// uniform suggests, and a query over that range — the query must
// answer from the tuned view, i.e. land nearer the observed count than
// the untuned estimate did.
func TestRunFeedbackTunesQueries(t *testing.T) {
	var input strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&input, "%d\n", i%100)
	}

	runOnce := func(args []string) string {
		t.Helper()
		var out, errOut bytes.Buffer
		if code := run(args, strings.NewReader(input.String()), &out, &errOut); code != 0 {
			t.Fatalf("run(%v) = %d, stderr: %s", args, code, errOut.String())
		}
		return out.String()
	}
	estimate := func(output string) float64 {
		t.Helper()
		for _, line := range strings.Split(output, "\n") {
			if strings.HasPrefix(line, "query ") {
				var lo, hi, est, sel float64
				if _, err := fmt.Sscanf(line, "query [%g, %g]: estimate %g rows (selectivity %g)", &lo, &hi, &est, &sel); err != nil {
					t.Fatalf("unparseable query line %q: %v", line, err)
				}
				return est
			}
		}
		t.Fatalf("no query line in output:\n%s", output)
		return 0
	}

	untuned := estimate(runOnce([]string{"-query", "10:29"}))
	tunedOut := runOnce([]string{"-feedback", "10,29,600", "-query", "10:29"})
	if !strings.Contains(tunedOut, "feedback [10, 29]") {
		t.Fatalf("no feedback line in output:\n%s", tunedOut)
	}
	tuned := estimate(tunedOut)
	const observed = 600.0
	if !(abs(tuned-observed) < abs(untuned-observed)) {
		t.Fatalf("tuned estimate %v is no closer to observed %v than untuned %v", tuned, observed, untuned)
	}
}

func TestRunBadFeedbackFails(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-feedback", "10,20"}, strings.NewReader("1\n2\n3\n"), &out, &errOut)
	if code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "bad feedback") {
		t.Fatalf("stderr %q does not mention bad feedback", errOut.String())
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	if code := run([]string{"-nope"}, strings.NewReader(""), io.Discard, io.Discard); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
}

func TestRunStatsNeedsServer(t *testing.T) {
	var errOut bytes.Buffer
	if code := run([]string{"-stats"}, strings.NewReader(""), io.Discard, &errOut); code != 2 {
		t.Fatalf("run(-stats) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-server") {
		t.Fatalf("stderr %q does not mention -server", errOut.String())
	}
}

// TestRunStatsTable drives the remote form end to end: a metrics-
// enabled in-process histserved, real traffic through the HTTP client,
// then `histcli -server URL -stats` rendering the operator table.
func TestRunStatsTable(t *testing.T) {
	s, err := server.New(server.Config{Logger: log.New(io.Discard, "", 0), Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	ctx := context.Background()
	c := client.New(ts.URL, ts.Client())
	if _, err := c.Create(ctx, client.CreateOptions{Name: "h", Family: client.FamilyDADO, MemBytes: 1024}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InsertBinary(ctx, "h", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Query(ctx, "h", client.QuerySpec{Quantiles: []float64{0.5}}); err != nil {
			t.Fatal(err)
		}
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"-server", ts.URL, "-stats"}, strings.NewReader(""), &out, &errOut); code != 0 {
		t.Fatalf("run(-stats) = %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"histograms  1",
		"cache       1 hits, 1 misses (hit ratio 0.500)",
		"wal         disabled",
		"ingest      1 batches, 3 values",
		"endpoint",
		"query",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("stats table missing %q:\n%s", want, text)
		}
	}

	// Against a server without -metrics the fetch fails with a hint.
	s2, err := server.New(server.Config{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s2.Close() })
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	errOut.Reset()
	if code := run([]string{"-server", ts2.URL, "-stats"}, strings.NewReader(""), io.Discard, &errOut); code != 1 {
		t.Fatalf("run(-stats) against metrics-less server = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "-metrics") {
		t.Fatalf("stderr %q does not hint at -metrics", errOut.String())
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestQueryListFlag(t *testing.T) {
	var q queryList
	if err := q.Set("1:2"); err != nil {
		t.Fatal(err)
	}
	if err := q.Set("3:4"); err != nil {
		t.Fatal(err)
	}
	if got := q.String(); !strings.Contains(got, "1:2") || !strings.Contains(got, "3:4") {
		t.Errorf("String() = %q", got)
	}
}
