package main

import (
	"strings"
	"testing"
)

func TestParseRange(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi float64
		ok     bool
	}{
		{"100:500", 100, 500, true},
		{"0:0", 0, 0, true},
		{"-5:5", -5, 5, true},
		{"1.5:2.5", 1.5, 2.5, true},
		{"100", 0, 0, false},
		{"a:b", 0, 0, false},
		{"1:b", 0, 0, false},
		{"", 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, err := parseRange(c.in)
		if c.ok && err != nil {
			t.Errorf("parseRange(%q): %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("parseRange(%q): want error", c.in)
			}
			continue
		}
		if lo != c.lo || hi != c.hi {
			t.Errorf("parseRange(%q) = %v,%v want %v,%v", c.in, lo, hi, c.lo, c.hi)
		}
	}
}

func TestBuildHistogram(t *testing.T) {
	for _, algo := range []string{"dado", "dvo", "dc", "ac"} {
		h, err := buildHistogram(algo, 1024, 1)
		if err != nil {
			t.Errorf("buildHistogram(%q): %v", algo, err)
			continue
		}
		if err := h.Insert(42); err != nil {
			t.Errorf("%q: insert failed: %v", algo, err)
		}
	}
	if _, err := buildHistogram("nope", 1024, 1); err == nil {
		t.Error("unknown algo: want error")
	}
	if _, err := buildHistogram("dado", 2, 1); err == nil {
		t.Error("tiny memory: want error")
	}
}

func TestQueryListFlag(t *testing.T) {
	var q queryList
	if err := q.Set("1:2"); err != nil {
		t.Fatal(err)
	}
	if err := q.Set("3:4"); err != nil {
		t.Fatal(err)
	}
	if got := q.String(); !strings.Contains(got, "1:2") || !strings.Contains(got, "3:4") {
		t.Errorf("String() = %q", got)
	}
}
