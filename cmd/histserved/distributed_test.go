package main

// The multi-node e2e: three real histserved processes, each owning one
// keyspace slice (value mod 3), full-mesh anti-entropy between them,
// and a client-side Fanout answering global reads by superposing one
// snapshot envelope per site — the paper's §8 union as a serving
// architecture. The drill: ingest across all three, kill one with
// SIGKILL and assert global reads degrade to a flagged partial result
// (never an error), then restart the dead node on EMPTY directories —
// simulated total disk loss — and assert it converges back to its full
// pre-kill state purely via snapshot anti-entropy from the survivors,
// without re-ingesting a single raw value. The recovered global
// distribution is audited against an exact internal/dist tracker.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"dynahist/client"
	"dynahist/internal/dist"
	"dynahist/internal/wire"
)

// freePort reserves an ephemeral port and releases it for a child to
// bind. Peers must be named in every node's flags before any of them
// is up, so dynamic :0 addresses cannot work here.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// siteCatalog fetches one node's anti-entropy catalog.
func siteCatalog(base string) (wire.SiteCatalogResponse, error) {
	var cat wire.SiteCatalogResponse
	resp, err := http.Get(base + "/v1/sites/catalog")
	if err != nil {
		return cat, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cat, fmt.Errorf("status %d", resp.StatusCode)
	}
	return cat, json.NewDecoder(resp.Body).Decode(&cat)
}

// scrapeMetrics fetches one node's Prometheus exposition.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scraping %s: %v", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scraping %s: status %d", base, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scraping %s: %v", base, err)
	}
	return string(body)
}

// ownWatermark returns the watermark a node advertises for its own
// site.
func ownWatermark(base, site string) (uint64, error) {
	cat, err := siteCatalog(base)
	if err != nil {
		return 0, err
	}
	for _, row := range cat.Entries {
		if row.Site == site {
			return row.Watermark, nil
		}
	}
	return 0, nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() (bool, error)) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		ok, err := cond()
		if ok {
			return
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (last error: %v)", what, lastErr)
}

func TestDistributedKillAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node e2e skipped in -short mode")
	}
	seed := time.Now().UnixNano()
	t.Logf("seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()

	// Full mesh: every node names the other two as peers.
	const n = 3
	ports := make([]int, n)
	urls := make([]string, n)
	sites := make([]string, n)
	for i := range ports {
		ports[i] = freePort(t)
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", ports[i])
		sites[i] = fmt.Sprintf("s%d", i)
	}
	nodeArgs := func(i int, catDir, walDir string) []string {
		var peers string
		for j, u := range urls {
			if j != i {
				if peers != "" {
					peers += ","
				}
				peers += u
			}
		}
		return []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-catalog", catDir,
			"-checkpoint", "100ms",
			"-wal-dir", walDir,
			"-wal-sync", "always",
			"-site-id", sites[i],
			"-peers", peers,
			"-anti-entropy", "50ms",
			"-peer-timeout", "1s",
			"-metrics",
		}
	}
	cmds := make([]*exec.Cmd, n)
	for i := range cmds {
		cmd, addr := startServed(t, nodeArgs(i, t.TempDir(), t.TempDir()))
		if addr != fmt.Sprintf("127.0.0.1:%d", ports[i]) {
			t.Fatalf("node %d bound %s, want port %d", i, addr, ports[i])
		}
		cmds[i] = cmd
	}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			if cmd != nil && cmd.ProcessState == nil {
				_ = cmd.Process.Kill()
				_, _ = cmd.Process.Wait()
			}
		}
	})

	f := client.NewFanout(urls, nil)
	if err := f.CreateAll(ctx, client.CreateOptions{Name: "lat", Family: client.FamilyDADO, MemBytes: 4096, Shards: 2}); err != nil {
		t.Fatal(err)
	}

	// Ingest: each value goes to the site owning its keyspace slice
	// (value mod 3), with an exact tracker alongside.
	const maxV = 899
	tracker := dist.New(maxV)
	clients := make([]*client.Client, n)
	for i, u := range urls {
		clients[i] = client.New(u, nil)
	}
	ingest := func(count int, allowedSites func(int) bool) {
		t.Helper()
		batches := make([][]float64, n)
		for k := 0; k < count; k++ {
			v := rng.Intn(maxV + 1)
			if !allowedSites(v % n) {
				continue
			}
			batches[v%n] = append(batches[v%n], float64(v))
		}
		acked := make([]uint64, n)
		for i, vs := range batches {
			if len(vs) == 0 {
				continue
			}
			ack, err := clients[i].InsertBinaryAck(ctx, "lat", vs)
			if err != nil {
				t.Fatalf("ingest to site %d: %v", i, err)
			}
			acked[i] = ack.LSN
			for _, v := range vs {
				if err := tracker.Insert(int(v)); err != nil {
					t.Fatal(err)
				}
			}
		}
		// An ack means durable, not yet readable: the WAL digester folds
		// batches in asynchronously. Audits below compare global reads
		// against the exact tracker, so wait for read-your-writes the
		// documented way — poll until each site's digested position
		// passes its acked LSN.
		for i, lsn := range acked {
			if lsn == 0 {
				continue
			}
			waitFor(t, fmt.Sprintf("site %d to digest LSN %d", i, lsn), func() (bool, error) {
				ws, err := clients[i].WALStatus(ctx)
				return err == nil && ws.DigestedLSN >= lsn, err
			})
		}
	}
	ingest(3000, func(int) bool { return true })

	// A healthy global read: all sites contribute, nothing partial, and
	// the union's CDF tracks the exact distribution.
	spec := client.QuerySpec{CDF: []float64{200, 450, 700}, Quantiles: []float64{0.5, 0.99}}
	audit := func(g client.GlobalSummary) {
		t.Helper()
		if int64(g.Total) != tracker.Total() {
			t.Fatalf("global total = %v, exact tracker says %d", g.Total, tracker.Total())
		}
		const tol = 0.15
		for i, x := range spec.CDF {
			want := float64(tracker.RangeCount(0, int(x))) / float64(tracker.Total())
			if diff := g.CDF[i] - want; diff < -tol || diff > tol {
				t.Errorf("global CDF(%v) = %.3f, exact tracker says %.3f (|diff| > %v)", x, g.CDF[i], want, tol)
			}
		}
	}
	g, err := f.Describe(ctx, "lat", spec, client.DescribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Partial {
		t.Fatalf("healthy read flagged partial: %+v", g.Sites)
	}
	audit(g)

	// Metrics smoke: scrape every live node mid-test and assert the
	// observability plane saw the anti-entropy traffic — the rounds
	// counter must leave zero once the 50ms sync loop has fired.
	for i, u := range urls {
		waitFor(t, fmt.Sprintf("node %d anti-entropy rounds counter", i), func() (bool, error) {
			text := scrapeMetrics(t, u)
			for _, line := range strings.Split(text, "\n") {
				var rounds uint64
				if _, err := fmt.Sscanf(line, "dynahist_antientropy_rounds_total %d", &rounds); err == nil {
					return rounds > 0, nil
				}
			}
			return false, fmt.Errorf("no dynahist_antientropy_rounds_total sample")
		})
		text := scrapeMetrics(t, u)
		for _, want := range []string{
			"# TYPE dynahist_http_request_seconds summary",
			"dynahist_query_cache_hit_ratio",
			"dynahist_wal_digest_lag",
		} {
			if !strings.Contains(text, want) {
				t.Fatalf("node %d: scrape missing %q", i, want)
			}
		}
	}

	// Wait until a survivor's replica of the victim's site has caught
	// up to the victim's own watermark, so the coming disk loss loses
	// nothing.
	const victim = 2
	waitFor(t, "survivor replica to catch up", func() (bool, error) {
		want, err := ownWatermark(urls[victim], sites[victim])
		if err != nil || want == 0 {
			return false, err
		}
		got, err := ownWatermark(urls[0], sites[victim])
		return got >= want, err
	})
	victimTotal, err := clients[victim].Total(ctx, "lat")
	if err != nil {
		t.Fatal(err)
	}

	// SIGKILL the victim. Global reads must degrade, not fail: the
	// fanout answers from the survivors and flags the result.
	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmds[victim].Wait()
	gp, err := f.Describe(ctx, "lat", spec, client.DescribeOptions{})
	if err != nil {
		t.Fatalf("read with a dead site: %v", err)
	}
	if !gp.Partial {
		t.Fatal("read with a dead site not flagged partial")
	}
	if gp.Sites[victim].Err == nil {
		t.Fatalf("dead site's result has no error: %+v", gp.Sites[victim])
	}
	if int64(gp.Total) != tracker.Total()-int64(victimTotal) {
		t.Fatalf("partial total = %v, want %d (full %d minus victim %v)",
			gp.Total, tracker.Total()-int64(victimTotal), tracker.Total(), victimTotal)
	}

	// The surviving sites keep ingesting their slices while the victim
	// is down.
	ingest(600, func(site int) bool { return site != victim })

	// Rejoin on empty directories — total disk loss. The node must
	// converge back to its full pre-kill state purely by adopting the
	// survivors' replica of its site.
	cmd, _ := startServed(t, nodeArgs(victim, t.TempDir(), t.TempDir()))
	cmds[victim] = cmd
	waitFor(t, "rejoined node to adopt its state", func() (bool, error) {
		total, err := clients[victim].Total(ctx, "lat")
		return err == nil && total == victimTotal, err
	})

	// Whole cluster healthy again: global reads are complete and match
	// the exact tracker.
	g2, err := f.Describe(ctx, "lat", spec, client.DescribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Partial {
		t.Fatalf("post-rejoin read flagged partial: %+v", g2.Sites)
	}
	audit(g2)

	// And the rejoined node serves fresh ingest on top of the adopted
	// snapshot.
	ingest(300, func(int) bool { return true })
	g3, err := f.Describe(ctx, "lat", spec, client.DescribeOptions{MaxBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	if g3.Partial {
		t.Fatal("final read flagged partial")
	}
	audit(g3)

	// Graceful shutdown everywhere: final checkpoints must succeed.
	for i, cmd := range cmds {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	for i, cmd := range cmds {
		waitErr := make(chan error, 1)
		go func() { waitErr <- cmd.Wait() }()
		select {
		case err := <-waitErr:
			if err != nil {
				t.Fatalf("node %d graceful shutdown: %v", i, err)
			}
		case <-time.After(20 * time.Second):
			_ = cmd.Process.Kill()
			t.Fatalf("node %d did not shut down", i)
		}
	}
	cmds = nil
}
