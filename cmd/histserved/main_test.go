package main

import (
	"context"
	"io"
	"syscall"
	"testing"
	"time"

	"dynahist/client"
)

// TestServeIngestRestart boots the real binary body on a loopback
// port, drives it with the public client, kills it with SIGTERM, and
// restarts it against the same catalog to assert recovery — the whole
// zero-to-recovered lifecycle in one smoke test.
func TestServeIngestRestart(t *testing.T) {
	dir := t.TempDir()

	start := func() (addr string, done chan int) {
		ready := make(chan string, 1)
		done = make(chan int, 1)
		go func() {
			done <- run([]string{"-addr", "127.0.0.1:0", "-catalog", dir, "-checkpoint", "50ms"}, io.Discard, ready)
		}()
		select {
		case addr = <-ready:
		case code := <-done:
			t.Fatalf("server exited early with code %d", code)
		case <-time.After(5 * time.Second):
			t.Fatal("server did not become ready")
		}
		return addr, done
	}

	stop := func(done chan int) {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("exit code %d", code)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server did not shut down")
		}
	}

	ctx := context.Background()
	addr, done := start()
	c := client.New("http://"+addr, nil)
	if err := c.Healthy(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(ctx, client.CreateOptions{Name: "smoke", Family: client.FamilyDADO, MemBytes: 1024, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	vs := make([]float64, 2000)
	for i := range vs {
		vs[i] = float64(i % 500)
	}
	if _, err := c.InsertBinary(ctx, "smoke", vs); err != nil {
		t.Fatal(err)
	}
	wantTotal, err := c.Total(ctx, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	wantCDF, err := c.CDF(ctx, "smoke", 250)
	if err != nil {
		t.Fatal(err)
	}
	stop(done)

	addr, done = start()
	defer stop(done)
	c = client.New("http://"+addr, nil)
	gotTotal, err := c.Total(ctx, "smoke")
	if err != nil {
		t.Fatal(err)
	}
	if gotTotal != wantTotal {
		t.Fatalf("recovered Total = %v, want %v", gotTotal, wantTotal)
	}
	gotCDF, err := c.CDF(ctx, "smoke", 250)
	if err != nil {
		t.Fatal(err)
	}
	if gotCDF != wantCDF {
		t.Fatalf("recovered CDF(250) = %v, want %v", gotCDF, wantCDF)
	}
}

// TestTuningFeedbackSurvivesRestart boots with -tuning, journals
// feedback through the public client, restarts against the same
// catalog, and asserts the journal (and the tuned estimate it implies)
// came back — the flag-to-catalog persistence path end to end.
func TestTuningFeedbackSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	start := func() (addr string, done chan int) {
		ready := make(chan string, 1)
		done = make(chan int, 1)
		go func() {
			done <- run([]string{"-addr", "127.0.0.1:0", "-catalog", dir, "-checkpoint", "50ms", "-tuning"}, io.Discard, ready)
		}()
		select {
		case addr = <-ready:
		case code := <-done:
			t.Fatalf("server exited early with code %d", code)
		case <-time.After(5 * time.Second):
			t.Fatal("server did not become ready")
		}
		return addr, done
	}
	stop := func(done chan int) {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("exit code %d", code)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server did not shut down")
		}
	}

	ctx := context.Background()
	addr, done := start()
	c := client.New("http://"+addr, nil)
	if _, err := c.Create(ctx, client.CreateOptions{Name: "tuned", Family: client.FamilyDADO, MemBytes: 1024, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	vs := make([]float64, 1000)
	for i := range vs {
		vs[i] = float64(i % 100)
	}
	if _, err := c.InsertBinary(ctx, "tuned", vs); err != nil {
		t.Fatal(err)
	}
	// The workload "observes" far more mass in [10,29] than uniform
	// spread suggests; the journal should record it and the tuned
	// estimate should move toward the observation.
	fb, err := c.Feedback(ctx, "tuned", 10, 29, 600)
	if err != nil {
		t.Fatal(err)
	}
	if fb.JournalLen != 1 {
		t.Fatalf("JournalLen = %d, want 1", fb.JournalLen)
	}
	if !(fb.TunedEstimate > fb.Estimated) {
		t.Fatalf("tuned estimate %v did not move toward observed 600 from %v", fb.TunedEstimate, fb.Estimated)
	}
	stop(done)

	addr, done = start()
	defer stop(done)
	c = client.New("http://"+addr, nil)
	fb2, err := c.Feedback(ctx, "tuned", 10, 29, 600)
	if err != nil {
		t.Fatal(err)
	}
	if fb2.JournalLen != 2 {
		t.Fatalf("restored JournalLen = %d, want 2 (journal lost across restart?)", fb2.JournalLen)
	}
	if fb2.Rounds != 2 {
		t.Fatalf("restored Rounds = %d, want 2", fb2.Rounds)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}, io.Discard, nil); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	if code := run([]string{"-h"}, io.Discard, nil); code != 0 {
		t.Fatalf("run(-h) = %d, want 0", code)
	}
}
