package main

// The kill-and-replay matrix: a real histserved process per family,
// SIGKILLed mid-ingest at a randomized point, restarted against the
// same catalog and WAL directories, and audited against an exact
// internal/dist tracker. The durability contract under test is the
// batch-ack boundary: every acknowledged batch survives the kill
// (totals are exact counts, so loss shows up exactly), while batches
// in flight at the kill may or may not land. The process is this test
// binary re-executing itself in a child mode wired up by TestMain.

import (
	"context"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dynahist/client"
	"dynahist/internal/dist"
)

const (
	childEnv     = "HISTSERVED_CHILD"
	childArgsEnv = "HISTSERVED_ARGS"
	childAddrEnv = "HISTSERVED_ADDR_FILE"
	// argSep joins child args in the environment; no flag value
	// contains it.
	argSep = "\x1f"
)

// TestMain re-executes this test binary as a real histserved process
// when the child environment is set: the parent test SIGKILLs it, which
// an in-process goroutine could never survive realistically.
func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		ready := make(chan string, 1)
		go func() {
			// The bound address reaches the parent through a file; the
			// child's stdout belongs to the test framework.
			_ = os.WriteFile(os.Getenv(childAddrEnv), []byte(<-ready), 0o644)
		}()
		os.Exit(run(strings.Split(os.Getenv(childArgsEnv), argSep), os.Stderr, ready))
	}
	os.Exit(m.Run())
}

// startServed boots a child histserved with args and waits for its
// address.
func startServed(t *testing.T, args []string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		childEnv+"=1",
		childArgsEnv+"="+strings.Join(args, argSep),
		childAddrEnv+"="+addrFile,
	)
	if testing.Verbose() {
		cmd.Stderr = os.Stderr
	} else {
		cmd.Stderr = io.Discard
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil && len(data) > 0 {
			return cmd, string(data)
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("child server never reported its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKillAndReplayMatrix runs the kill-and-replay audit for every
// maintained family.
func TestKillAndReplayMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("process kill matrix skipped in -short mode")
	}
	for _, family := range []string{client.FamilyDADO, client.FamilyDVO, client.FamilyDC, client.FamilyAC} {
		t.Run(family, func(t *testing.T) {
			t.Parallel()
			runKillAndReplay(t, family)
		})
	}
}

func runKillAndReplay(t *testing.T, family string) {
	seed := time.Now().UnixNano()
	t.Logf("seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	catDir, walDir := t.TempDir(), t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-catalog", catDir,
		"-checkpoint", "75ms", // live checkpoints race the ingest and the kill
		"-wal-dir", walDir,
		"-wal-sync", "always",
	}

	cmd, addr := startServed(t, args)
	c := client.New("http://"+addr, nil)
	const maxV, batches, per = 499, 40, 64
	if _, err := c.Create(ctx, client.CreateOptions{
		Name: "kill", Family: family, MemBytes: 4096, Shards: 2, Seed: seed,
	}); err != nil {
		t.Fatal(err)
	}

	// Serial ingest with an exact tracker of the acked batches. The kill
	// fires from a goroutine at a randomized point, so some trailing
	// requests race it: only error-free acks count.
	tracker := dist.New(maxV)
	sent := int64(0)
	killAfter := 3 + rng.Intn(batches-8)
	killDelay := time.Duration(rng.Intn(4)) * time.Millisecond
	killed := make(chan struct{})
	for i := 0; i < batches; i++ {
		vs := make([]float64, per)
		for j := range vs {
			vs[j] = float64(rng.Intn(maxV + 1))
		}
		if i == killAfter {
			go func() {
				time.Sleep(killDelay)
				_ = cmd.Process.Kill()
				close(killed)
			}()
		}
		sent += per
		if _, err := c.InsertBinary(ctx, "kill", vs); err != nil {
			break // unacked: the kill landed under this request
		}
		for _, v := range vs {
			if err := tracker.Insert(int(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	<-killed
	if err := cmd.Wait(); err == nil {
		t.Fatal("child exited cleanly despite SIGKILL")
	}
	if tracker.Total() == 0 {
		t.Fatalf("kill landed before any ack (killAfter=%d); nothing to audit", killAfter)
	}

	// Restart on the same directories: recovery restores the catalog and
	// replays the WAL tail.
	cmd2, addr2 := startServed(t, args)
	c2 := client.New("http://"+addr2, nil)
	total, err := c2.Total(ctx, "kill")
	if err != nil {
		t.Fatal(err)
	}
	// Zero acked-batch loss, and nothing invented: the recovered count
	// sits between the acked floor and everything ever sent (in-flight
	// unacked batches may legitimately have landed).
	if int64(total) < tracker.Total() {
		t.Fatalf("recovered total %v < acked total %d: an acknowledged batch was lost", total, tracker.Total())
	}
	if int64(total) > sent {
		t.Fatalf("recovered total %v > %d values ever sent: replay double-applied", total, sent)
	}

	// Distribution audit: the recovered CDF must track the exact
	// distribution of the acked data. The tolerance covers the paper
	// families' bucket approximation, AC's sampling error, and the few
	// unacked in-flight values (drawn from the same distribution).
	const tol = 0.15
	for _, x := range []int{100, 250, 400} {
		got, err := c2.CDF(ctx, "kill", float64(x))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(tracker.RangeCount(0, x)) / float64(tracker.Total())
		if diff := got - want; diff < -tol || diff > tol {
			t.Errorf("recovered CDF(%d) = %.3f, exact tracker says %.3f (|diff| > %v)", x, got, want, tol)
		}
	}

	// The recovered server must serve ingest and survive a graceful
	// shutdown (final checkpoint + WAL truncation) with exit code 0.
	if _, err := c2.InsertBinary(ctx, "kill", []float64{1, 2, 3}); err != nil {
		t.Fatalf("post-recovery ingest: %v", err)
	}
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd2.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("graceful shutdown after recovery: %v", err)
		}
	case <-time.After(20 * time.Second):
		_ = cmd2.Process.Kill()
		t.Fatal("recovered server did not shut down")
	}

	// Third boot: the graceful shutdown's checkpoint must hold the full
	// state (replay after truncation finds nothing missing).
	cmd3, addr3 := startServed(t, args)
	defer func() {
		_ = cmd3.Process.Signal(syscall.SIGTERM)
		_, _ = cmd3.Process.Wait()
	}()
	c3 := client.New("http://"+addr3, nil)
	total3, err := c3.Total(ctx, "kill")
	if err != nil {
		t.Fatal(err)
	}
	if total3 != total+3 {
		t.Fatalf("post-checkpoint total = %v, want %v", total3, total+3)
	}
}
