// Command histserved serves this repository's dynamic histograms over
// HTTP: a named-histogram registry (DADO/DVO/DC/AC families, each
// backed by the sharded concurrent ingest engine), batched JSON and
// binary ingest, query endpoints, and snapshot-backed recovery — with
// a catalog directory configured, the registry is checkpointed
// periodically and restored on startup, so a restarted server keeps
// maintaining where it left off.
//
// Usage:
//
//	histserved [-addr :8080] [-catalog DIR] [-checkpoint 30s] [-pprof]
//	           [-metrics] [-wal-dir DIR] [-wal-sync always|interval|none]
//	           [-wal-sync-interval 100ms] [-wal-segment-bytes N]
//	           [-site-id ID] [-peers URL,URL,...]
//	           [-anti-entropy 1s] [-peer-timeout 2s] [-tuning]
//
// With -metrics set, the observability plane is exposed: GET /metrics
// serves Prometheus text exposition (request/latency/cache/WAL/
// anti-entropy metrics, with latency and batch-size distributions
// summarised by the same dynamic histograms the server serves) and
// GET /v1/stats serves the same state as structured JSON. Collection
// is always on; the flag only gates the two endpoints.
//
// With -wal-dir set, ingest is durable: every mutating request is
// appended to a segmented write-ahead log and acknowledged once the
// append is durable per -wal-sync, a background digester folds the
// batches into the histograms, and startup recovery replays the log
// tail past the last checkpoint (tolerating a torn final record from
// a crash mid-append). GET /v1/wal/status reports the watermarks.
//
// With -site-id and -peers set, the node takes the peer role in a
// multi-node deployment: each node ingests its own slice of the
// keyspace, serves its local snapshot envelope on
// GET /v1/h/{name}/envelope (the client-side Fanout superposes one
// envelope per site into the global answer — the paper's §8 union),
// and runs snapshot anti-entropy against its peers so every node holds
// replicas of the others' histograms and a rejoining node catches up
// from a surviving peer without re-ingesting raw data.
//
// API sketch (see docs/ARCHITECTURE.md for the full contract):
//
//	POST   /v1/h                    create  {"name","family","mem_bytes","shards"}
//	GET    /v1/h                    list
//	GET    /v1/h/{name}             info
//	DELETE /v1/h/{name}             drop
//	POST   /v1/h/{name}/insert      {"values":[...]} or binary batch
//	POST   /v1/h/{name}/delete      same bodies as insert
//	POST   /v1/h/{name}/query       batch: {"quantiles":[...],"cdf":[...],
//	                                "pdf":[...],"ranges":[{"lo","hi"}...],
//	                                "buckets":bool} — every statistic
//	                                answered from one pinned view
//	GET    /v1/h/{name}/total       point count
//	GET    /v1/h/{name}/cdf?x=      fraction of points ≤ x
//	GET    /v1/h/{name}/quantile?q= smallest x with CDF(x) ≥ q
//	POST   /v1/h/{name}/feedback    {"lo","hi","observed"} true count
//	                                (requires -tuning; nudges estimates)
//	GET    /v1/h/{name}/range?lo=&hi= count of points in [lo,hi]
//	GET    /v1/h/{name}/buckets     merged bucket list
//	GET    /healthz                 liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dynahist/internal/server"
	"dynahist/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is main's testable body: it parses args, serves until the
// process is signalled or ready is closed-over externally, and returns
// the exit code. When ready is non-nil it receives the bound address
// once the listener is up.
func run(args []string, errOut io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("histserved", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		catalog    = fs.String("catalog", "", "catalog directory for snapshot-backed recovery (empty: no persistence)")
		checkpoint = fs.Duration("checkpoint", 30*time.Second, "checkpoint period (requires -catalog)")
		pprofOn    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiling the live ingest path)")
		metricsOn  = fs.Bool("metrics", false, "expose GET /metrics (Prometheus text) and GET /v1/stats (JSON)")
		walDir     = fs.String("wal-dir", "", "write-ahead log directory for durable ingest (empty: ingest applies in-memory only)")
		walSync    = fs.String("wal-sync", "always", "WAL durability policy: always (fsync per append), interval, none")
		walEvery   = fs.Duration("wal-sync-interval", 100*time.Millisecond, "fsync period under -wal-sync interval")
		walSegment = fs.Int64("wal-segment-bytes", 4<<20, "WAL segment rotation threshold in bytes")
		siteID     = fs.String("site-id", "", "this node's site identity in a multi-node deployment (required with -peers)")
		peers      = fs.String("peers", "", "comma-separated peer base URLs for snapshot anti-entropy (e.g. http://host:8081,http://host:8082)")
		antiEvery  = fs.Duration("anti-entropy", time.Second, "anti-entropy sync period (requires -peers)")
		peerTO     = fs.Duration("peer-timeout", 2*time.Second, "per-peer request timeout during anti-entropy")
		tuning     = fs.Bool("tuning", false, "enable feedback-driven self-tuning (POST /v1/h/{name}/feedback adjusts served estimates)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	logger := log.New(errOut, "histserved: ", log.LstdFlags)
	cfg := server.Config{
		CatalogDir:       *catalog,
		CheckpointEvery:  *checkpoint,
		Logger:           logger,
		SiteID:           *siteID,
		AntiEntropyEvery: *antiEvery,
		PeerTimeout:      *peerTO,
		Tuning:           server.TuningConfig{Enabled: *tuning},
		Metrics:          *metricsOn,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, strings.TrimRight(p, "/"))
			}
		}
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fmt.Fprintf(errOut, "histserved: %v\n", err)
			return 2
		}
		cfg.WAL = wal.Options{
			Dir:          *walDir,
			Sync:         policy,
			SyncEvery:    *walEvery,
			SegmentBytes: *walSegment,
		}
		if *catalog == "" {
			// Legal but worth flagging: without catalog checkpoints the
			// log is never truncated and every restart replays it all.
			logger.Printf("warning: -wal-dir without -catalog never truncates the log")
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "histserved: %v\n", err)
		return 1
	}

	handler := srv.Handler()
	if *pprofOn {
		// The profiler shares the serving mux-tree but is mounted on a
		// wrapper, so the API handler itself stays profiler-free when
		// the flag is off.
		root := http.NewServeMux()
		root.Handle("/", handler)
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = root
	}
	hs := &http.Server{Addr: *addr, Handler: handler}
	ln, err := newListener(*addr)
	if err != nil {
		fmt.Fprintf(errOut, "histserved: %v\n", err)
		return 1
	}
	logger.Printf("listening on %s (catalog: %s, wal: %s)", ln.Addr(), orNone(*catalog), orNone(*walDir))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case <-ctx.Done():
		logger.Printf("shutting down")
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(errOut, "histserved: %v\n", err)
			_ = srv.Close()
			return 1
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(shutdownCtx)
	if err := srv.Close(); err != nil {
		fmt.Fprintf(errOut, "histserved: final checkpoint: %v\n", err)
		return 1
	}
	return 0
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
