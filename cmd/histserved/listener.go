package main

import "net"

// newListener binds the serve address up front so run can report the
// bound address (and tests can use ":0") before traffic arrives.
func newListener(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}
