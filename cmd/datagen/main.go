// Command datagen emits the paper's synthetic workloads as text for
// use with histcli or external tools: one operation per line, a bare
// integer for an insert and "-<value>" for a delete.
//
// Usage:
//
//	datagen [-points n] [-domain n] [-clusters n] [-s skew] [-z skew]
//	        [-sd dev] [-shape normal|uniform|exponential]
//	        [-pattern name] [-delete-rate r] [-delete-fraction f]
//	        [-seed n] [-mailorder]
//
// -pattern selects one of the paper's §7 update patterns:
// random-inserts (default), sorted-inserts, mixed-insert-delete,
// inserts-then-deletes, sorted-then-sorted-deletes.
// -mailorder ignores the cluster parameters and emits the synthetic
// mail-order trace of Fig. 19 instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"dynahist/internal/distgen"
	"dynahist/internal/workload"
)

func main() {
	var (
		points    = flag.Int("points", 100000, "number of data points")
		domain    = flag.Int("domain", 5000, "largest attribute value")
		clusters  = flag.Int("clusters", 2000, "number of clusters (C)")
		s         = flag.Float64("s", 1, "Zipf skew of cluster-center spreads (S)")
		z         = flag.Float64("z", 1, "Zipf skew of cluster sizes (Z)")
		sd        = flag.Float64("sd", 2, "standard deviation within clusters (SD)")
		shapeName = flag.String("shape", "normal", "cluster shape: normal, uniform or exponential")
		pattern   = flag.String("pattern", "random-inserts", "update pattern (see package doc)")
		delRate   = flag.Float64("delete-rate", 0.25, "per-insert delete probability for mixed-insert-delete")
		delFrac   = flag.Float64("delete-fraction", 0.5, "fraction deleted for *-then-deletes patterns")
		seed      = flag.Int64("seed", 1, "generator seed")
		mailorder = flag.Bool("mailorder", false, "emit the synthetic mail-order trace instead")
	)
	flag.Parse()

	var values []int
	if *mailorder {
		values = distgen.MailOrder(*seed)
	} else {
		shape, err := parseShape(*shapeName)
		if err != nil {
			fatal(err)
		}
		cfg := distgen.Config{
			Points:     *points,
			Domain:     *domain,
			Clusters:   *clusters,
			SpreadSkew: *s,
			SizeSkew:   *z,
			SD:         *sd,
			Shape:      shape,
			Seed:       *seed,
		}
		values, err = distgen.Generate(cfg)
		if err != nil {
			fatal(err)
		}
	}

	p, err := workload.ParsePattern(*pattern)
	if err != nil {
		fatal(err)
	}
	ops, err := workload.Build(values, workload.Config{
		Pattern:        p,
		DeleteRate:     *delRate,
		DeleteFraction: *delFrac,
		Seed:           *seed,
	})
	if err != nil {
		fatal(err)
	}
	if err := workload.Write(os.Stdout, ops); err != nil {
		fatal(err)
	}
}

func parseShape(name string) (distgen.Shape, error) {
	switch name {
	case "normal":
		return distgen.Normal, nil
	case "uniform":
		return distgen.Uniform, nil
	case "exponential":
		return distgen.Exponential, nil
	default:
		return 0, fmt.Errorf("unknown shape %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
