package main

import (
	"testing"

	"dynahist/internal/distgen"
)

func TestParseShape(t *testing.T) {
	cases := []struct {
		in   string
		want distgen.Shape
		ok   bool
	}{
		{"normal", distgen.Normal, true},
		{"uniform", distgen.Uniform, true},
		{"exponential", distgen.Exponential, true},
		{"gauss", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseShape(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseShape(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("parseShape(%q): want error", c.in)
		}
	}
}
