package dynahist

import (
	"fmt"
	"strings"
)

// Kind names every histogram this package can construct or restore —
// the four maintained families of the paper (DADO, DVO, DC, AC), the
// sharded concurrent engine over them, and the static constructions.
// A Kind is the tag of the self-describing snapshot envelope, so its
// numeric values are part of the serialization format and must never
// be renumbered.
type Kind uint8

const (
	// KindUnknown is the zero Kind; no histogram has it.
	KindUnknown Kind = 0

	// KindDADO is the Dynamic Average-Deviation Optimal histogram —
	// the paper's best performer and the recommended default.
	KindDADO Kind = 1
	// KindDVO is the Dynamic V-Optimal histogram, the variance-driven
	// variant of the same split-merge machinery.
	KindDVO Kind = 2
	// KindDC is the Dynamic Compressed histogram with its chi-square
	// repartitioning trigger.
	KindDC Kind = 3
	// KindAC is the Approximate Compressed histogram of Gibbons,
	// Matias and Poosala, backed by a reservoir sample.
	KindAC Kind = 4
	// KindSharded is the sharded concurrent engine: P shared-nothing
	// member histograms merged losslessly on read. It cannot be built
	// with New (use NewSharded, which needs a member factory), but its
	// snapshots travel through the same envelope and Restore door.
	KindSharded Kind = 5

	// KindStatic is a piecewise histogram with no recorded
	// construction — one wrapped from an explicit bucket list by
	// NewStaticFromBuckets, or the result of Superpose/Reduce.
	KindStatic Kind = 8
	// KindEquiWidth is the static equal-width-bucket construction.
	KindEquiWidth Kind = 9
	// KindEquiDepth is the static equal-count-bucket construction.
	KindEquiDepth Kind = 10
	// KindCompressed is the static compressed (SC) construction.
	KindCompressed Kind = 11
	// KindVOptimal is the static V-optimal (SVO) construction by exact
	// dynamic programming.
	KindVOptimal Kind = 12
	// KindSADO is the static average-deviation-optimal construction
	// the paper introduces.
	KindSADO Kind = 13
	// KindSSBM is Successive Similar Bucket Merge (paper §5).
	KindSSBM Kind = 14
)

// kindNames is the canonical Kind → string mapping; the maintained
// families use the same short names the serving layer's wire API has
// always used.
var kindNames = map[Kind]string{
	KindDADO:       "dado",
	KindDVO:        "dvo",
	KindDC:         "dc",
	KindAC:         "ac",
	KindSharded:    "sharded",
	KindStatic:     "static",
	KindEquiWidth:  "equi-width",
	KindEquiDepth:  "equi-depth",
	KindCompressed: "compressed",
	KindVOptimal:   "v-optimal",
	KindSADO:       "sado",
	KindSSBM:       "ssbm",
}

// String returns the kind's canonical lower-case name, or "unknown".
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Valid reports whether k names an actual kind.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// Maintained reports whether k is one of the incrementally maintained
// families (DADO, DVO, DC, AC) — the kinds the serving layer accepts.
func (k Kind) Maintained() bool {
	switch k {
	case KindDADO, KindDVO, KindDC, KindAC:
		return true
	}
	return false
}

// staticKind maps a static-construction Kind onto the legacy
// StaticKind enum of BuildStatic.
func (k Kind) staticKind() (StaticKind, bool) {
	switch k {
	case KindEquiWidth:
		return EquiWidth, true
	case KindEquiDepth:
		return EquiDepth, true
	case KindCompressed:
		return Compressed, true
	case KindVOptimal:
		return VOptimal, true
	case KindSADO:
		return SADO, true
	case KindSSBM:
		return SSBM, true
	}
	return 0, false
}

// kindOfStatic is the inverse of staticKind.
var kindOfStatic = map[StaticKind]Kind{
	EquiWidth:  KindEquiWidth,
	EquiDepth:  KindEquiDepth,
	Compressed: KindCompressed,
	VOptimal:   KindVOptimal,
	SADO:       KindSADO,
	SSBM:       KindSSBM,
}

// ParseKind returns the Kind with the given canonical name (as printed
// by Kind.String, case-insensitive), or ErrBadKind.
func ParseKind(name string) (Kind, error) {
	want := strings.ToLower(name)
	for k, s := range kindNames {
		if s == want {
			return k, nil
		}
	}
	return KindUnknown, fmt.Errorf("%w: %q", ErrBadKind, name)
}

// KindOf reports the kind of a histogram built or restored by this
// package: the deviation measure distinguishes KindDADO from KindDVO,
// a Static remembers the construction that built it, and a Concurrent
// reports its wrapped histogram's kind. Histograms from outside the
// package report KindUnknown.
func KindOf(h Histogram) Kind {
	switch t := h.(type) {
	case *Dynamic:
		if t.Kind() == Variance {
			return KindDVO
		}
		return KindDADO
	case *DC:
		return KindDC
	case *AC:
		return KindAC
	case *Sharded:
		return KindSharded
	case *Static:
		return t.kind
	case *Concurrent:
		return KindOf(t.h)
	}
	return KindUnknown
}
