package dynahist_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dynahist"
)

// kindValues builds the workload the matrix tests feed every kind.
func kindValues(n int) ([]float64, []int) {
	rng := rand.New(rand.NewSource(77))
	fs := make([]float64, n)
	is := make([]int, n)
	for i := range fs {
		v := rng.Intn(2000)
		fs[i] = float64(v)
		is[i] = v
	}
	return fs, is
}

// newOfKind constructs one histogram of every constructible kind with
// the options the kind needs, mirroring what a caller of the front
// door would write.
func newOfKind(t *testing.T, kind dynahist.Kind, values []int) dynahist.Histogram {
	t.Helper()
	opts := []dynahist.Option{dynahist.WithMemory(1024)}
	switch {
	case kind == dynahist.KindAC:
		opts = append(opts, dynahist.WithSeed(7))
	case !kind.Maintained():
		opts = append(opts, dynahist.WithValues(values))
	}
	h, err := dynahist.New(kind, opts...)
	if err != nil {
		t.Fatalf("New(%v): %v", kind, err)
	}
	return h
}

var matrixKinds = []dynahist.Kind{
	dynahist.KindDADO, dynahist.KindDVO, dynahist.KindDC, dynahist.KindAC,
	dynahist.KindEquiWidth, dynahist.KindEquiDepth, dynahist.KindCompressed,
	dynahist.KindVOptimal, dynahist.KindSADO, dynahist.KindSSBM,
}

// TestNewKindMatrix checks that the front door constructs every kind
// and that KindOf attributes the result correctly — including the
// DVO/DADO distinction that the old NewDVO naming wart blurred.
func TestNewKindMatrix(t *testing.T) {
	fs, is := kindValues(5000)
	for _, kind := range matrixKinds {
		h := newOfKind(t, kind, is)
		if got := dynahist.KindOf(h); got != kind {
			t.Errorf("KindOf(New(%v)) = %v", kind, got)
		}
		if kind.Maintained() {
			if err := dynahist.InsertAll(h, fs); err != nil {
				t.Fatalf("%v: InsertAll: %v", kind, err)
			}
		}
		if got, want := h.Total(), float64(len(fs)); math.Abs(got-want) > 0.5 {
			t.Errorf("%v: Total = %v, want %v", kind, got, want)
		}
		if cdf := h.CDF(1999); cdf < 0.99 {
			t.Errorf("%v: CDF(max) = %v, want ≈1", kind, cdf)
		}
	}
}

// TestRoundTripMatrix is the acceptance matrix: for every kind,
// New → insert → Snapshot → Restore must reproduce the identical
// bucket list and CDF without the caller ever naming the family to
// Restore.
func TestRoundTripMatrix(t *testing.T) {
	fs, is := kindValues(5000)
	for _, kind := range matrixKinds {
		h := newOfKind(t, kind, is)
		if kind.Maintained() {
			if err := dynahist.InsertAll(h, fs); err != nil {
				t.Fatalf("%v: InsertAll: %v", kind, err)
			}
		}
		blob, err := h.(dynahist.Snapshotter).Snapshot()
		if err != nil {
			t.Fatalf("%v: Snapshot: %v", kind, err)
		}
		r, err := dynahist.Restore(blob)
		if err != nil {
			t.Fatalf("%v: Restore: %v", kind, err)
		}
		if got := dynahist.KindOf(r); got != kind {
			t.Errorf("%v: restored kind = %v", kind, got)
		}
		assertSameHistogram(t, kind.String(), h, r)
	}
}

// TestRoundTripSharded round-trips the sharded engine through the same
// single door: one blob, no restorer argument, configuration intact.
func TestRoundTripSharded(t *testing.T) {
	fs, _ := kindValues(4000)
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(512))
	}, dynahist.WithShards(4), dynahist.WithMergeBudget(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InsertBatch(fs); err != nil {
		t.Fatal(err)
	}
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := dynahist.Restore(blob)
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := r.(*dynahist.Sharded)
	if !ok {
		t.Fatalf("Restore returned %T, want *Sharded", r)
	}
	if rs.NumShards() != 4 {
		t.Errorf("restored shard count = %d, want 4", rs.NumShards())
	}
	if got := rs.MemberKind(); got != dynahist.KindDADO {
		t.Errorf("restored MemberKind = %v, want dado", got)
	}
	assertSameHistogram(t, "sharded", s, rs)
	// The restored engine keeps maintaining.
	if err := rs.InsertBatch(fs[:100]); err != nil {
		t.Fatalf("restored engine InsertBatch: %v", err)
	}
	if got, want := rs.Total(), float64(len(fs)+100); math.Abs(got-want) > 0.5 {
		t.Errorf("restored engine Total = %v, want %v", got, want)
	}
}

// assertSameHistogram compares bucket lists exactly and the CDF at a
// grid of points.
func assertSameHistogram(t *testing.T, label string, a, b dynahist.Histogram) {
	t.Helper()
	ab, bb := a.Buckets(), b.Buckets()
	if len(ab) != len(bb) {
		t.Errorf("%s: bucket count %d vs %d after round trip", label, len(ab), len(bb))
		return
	}
	for i := range ab {
		if ab[i].Left != bb[i].Left || ab[i].Right != bb[i].Right {
			t.Errorf("%s: bucket %d borders [%v,%v) vs [%v,%v)",
				label, i, ab[i].Left, ab[i].Right, bb[i].Left, bb[i].Right)
		}
		if len(ab[i].Counters) != len(bb[i].Counters) {
			t.Errorf("%s: bucket %d counter count differs", label, i)
			continue
		}
		for j := range ab[i].Counters {
			if ab[i].Counters[j] != bb[i].Counters[j] {
				t.Errorf("%s: bucket %d counter %d: %v vs %v",
					label, i, j, ab[i].Counters[j], bb[i].Counters[j])
			}
		}
	}
	for x := 0.0; x <= 2000; x += 125 {
		if ac, bc := a.CDF(x), b.CDF(x); math.Abs(ac-bc) > 1e-12 {
			t.Errorf("%s: CDF(%v) %v vs %v after round trip", label, x, ac, bc)
		}
	}
}

// TestRestoreWithoutNamingFamily feeds Restore a shuffled bag of blobs
// from different families and checks each comes back as itself — the
// "caller never records the family out of band" property.
func TestRestoreWithoutNamingFamily(t *testing.T) {
	fs, is := kindValues(2000)
	blobs := map[dynahist.Kind][]byte{}
	for _, kind := range matrixKinds {
		h := newOfKind(t, kind, is)
		if kind.Maintained() {
			if err := dynahist.InsertAll(h, fs); err != nil {
				t.Fatal(err)
			}
		}
		blob, err := h.(dynahist.Snapshotter).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		blobs[kind] = blob
	}
	for kind, blob := range blobs {
		r, err := dynahist.Restore(blob)
		if err != nil {
			t.Fatalf("Restore(%v blob): %v", kind, err)
		}
		if got := dynahist.KindOf(r); got != kind {
			t.Errorf("blob of %v restored as %v", kind, got)
		}
	}
}

// TestDeprecatedRestoresStillWork exercises the thin wrappers over the
// new door, including their kind checks.
func TestDeprecatedRestoresStillWork(t *testing.T) {
	fs, _ := kindValues(1000)

	dado, _ := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	_ = dynahist.InsertAll(dado, fs)
	dadoBlob, err := dado.(dynahist.Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dynahist.RestoreDADO(dadoBlob); err != nil {
		t.Errorf("RestoreDADO on envelope blob: %v", err)
	}
	if _, err := dynahist.RestoreDC(dadoBlob); !errors.Is(err, dynahist.ErrBadSnapshot) {
		t.Errorf("RestoreDC(dado blob) = %v, want ErrBadSnapshot", err)
	}
	if _, err := dynahist.RestoreAC(dadoBlob); !errors.Is(err, dynahist.ErrBadSnapshot) {
		t.Errorf("RestoreAC(dado blob) = %v, want ErrBadSnapshot", err)
	}
}

// TestNewOptionValidation checks that the builder rejects misuse with
// the typed sentinels instead of silently ignoring knobs.
func TestNewOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		kind dynahist.Kind
		opts []dynahist.Option
		want error
	}{
		{"no budget", dynahist.KindDADO, nil, dynahist.ErrBadBudget},
		{"both budgets", dynahist.KindDADO,
			[]dynahist.Option{dynahist.WithBuckets(8), dynahist.WithMemory(1024)},
			dynahist.ErrBadBudget},
		{"tiny memory", dynahist.KindDC,
			[]dynahist.Option{dynahist.WithMemory(3)}, dynahist.ErrBadBudget},
		{"gamma on dc", dynahist.KindDC,
			[]dynahist.Option{dynahist.WithMemory(1024), dynahist.WithGamma(1)},
			dynahist.ErrBadOption},
		{"alpha on ac", dynahist.KindAC,
			[]dynahist.Option{dynahist.WithMemory(1024), dynahist.WithAlphaMin(0.5)},
			dynahist.ErrBadOption},
		{"seed on dado", dynahist.KindDADO,
			[]dynahist.Option{dynahist.WithMemory(1024), dynahist.WithSeed(1)},
			dynahist.ErrBadOption},
		{"subbuckets on dc", dynahist.KindDC,
			[]dynahist.Option{dynahist.WithMemory(1024), dynahist.WithSubBuckets(3)},
			dynahist.ErrBadOption},
		{"values on maintained", dynahist.KindDVO,
			[]dynahist.Option{dynahist.WithMemory(1024), dynahist.WithValues([]int{1})},
			dynahist.ErrBadOption},
		{"static without values", dynahist.KindSADO,
			[]dynahist.Option{dynahist.WithBuckets(8)}, dynahist.ErrBadOption},
		{"bad alpha", dynahist.KindDC,
			[]dynahist.Option{dynahist.WithMemory(1024), dynahist.WithAlphaMin(2)},
			dynahist.ErrBadOption},
		{"negative disk factor with buckets", dynahist.KindAC,
			[]dynahist.Option{dynahist.WithBuckets(8), dynahist.WithDiskFactor(-5)},
			dynahist.ErrBadOption},
		{"negative disk factor with memory", dynahist.KindAC,
			[]dynahist.Option{dynahist.WithMemory(1024), dynahist.WithDiskFactor(-5)},
			dynahist.ErrBadOption},
		{"disk factor with sample capacity", dynahist.KindAC,
			[]dynahist.Option{dynahist.WithBuckets(8), dynahist.WithDiskFactor(10), dynahist.WithSampleCapacity(50)},
			dynahist.ErrBadOption},
		{"negative sample capacity", dynahist.KindAC,
			[]dynahist.Option{dynahist.WithBuckets(8), dynahist.WithSampleCapacity(-1)},
			dynahist.ErrBadOption},
		{"unknown kind", dynahist.Kind(200), nil, dynahist.ErrBadKind},
		{"sharded via new", dynahist.KindSharded, nil, dynahist.ErrBadKind},
		{"generic static via new", dynahist.KindStatic, nil, dynahist.ErrBadKind},
	}
	for _, tc := range cases {
		if _, err := dynahist.New(tc.kind, tc.opts...); !errors.Is(err, tc.want) {
			t.Errorf("%s: New = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestNewHonoursOptions spot-checks that options actually reach the
// built histogram.
func TestNewHonoursOptions(t *testing.T) {
	h, err := dynahist.New(dynahist.KindDVO,
		dynahist.WithBuckets(10), dynahist.WithSubBuckets(3))
	if err != nil {
		t.Fatal(err)
	}
	d := h.(*dynahist.Dynamic)
	if d.Kind() != dynahist.Variance {
		t.Errorf("KindDVO built deviation %v, want Variance", d.Kind())
	}
	if d.MaxBuckets() != 10 {
		t.Errorf("MaxBuckets = %d, want 10", d.MaxBuckets())
	}
	for i := range 300 {
		if err := d.Insert(float64(i % 50)); err != nil {
			t.Fatal(err)
		}
	}
	if bs := d.Buckets(); len(bs) > 0 && len(bs[0].Counters) != 3 {
		t.Errorf("sub-buckets = %d, want 3", len(bs[0].Counters))
	}

	ac, err := dynahist.New(dynahist.KindAC,
		dynahist.WithBuckets(16), dynahist.WithSampleCapacity(99), dynahist.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := ac.(*dynahist.AC).SampleCapacity(); got != 99 {
		t.Errorf("SampleCapacity = %d, want 99", got)
	}
}

// TestParseKind round-trips every kind name and rejects garbage.
func TestParseKind(t *testing.T) {
	for _, kind := range append(append([]dynahist.Kind{}, matrixKinds...),
		dynahist.KindSharded, dynahist.KindStatic) {
		got, err := dynahist.ParseKind(kind.String())
		if err != nil || got != kind {
			t.Errorf("ParseKind(%q) = %v, %v", kind.String(), got, err)
		}
	}
	if _, err := dynahist.ParseKind("splines"); !errors.Is(err, dynahist.ErrBadKind) {
		t.Errorf("ParseKind(splines) = %v, want ErrBadKind", err)
	}
	if _, err := dynahist.ParseKind("unknown"); !errors.Is(err, dynahist.ErrBadKind) {
		t.Errorf(`ParseKind("unknown") = %v, want ErrBadKind`, err)
	}
}

// TestTypedSentinels checks that failures deep in the internal layers
// surface as the public sentinels.
func TestTypedSentinels(t *testing.T) {
	h, err := dynahist.New(dynahist.KindDC, dynahist.WithMemory(1024))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(1); !errors.Is(err, dynahist.ErrEmptyHistogram) {
		t.Errorf("Delete on empty DC = %v, want ErrEmptyHistogram", err)
	}
	if _, err := dynahist.Quantile(h, 0.5); !errors.Is(err, dynahist.ErrEmptyHistogram) {
		t.Errorf("Quantile on empty = %v, want ErrEmptyHistogram", err)
	}
	if _, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(2)); !errors.Is(err, dynahist.ErrBadBudget) {
		t.Errorf("2-byte DADO = want ErrBadBudget")
	}
	if _, err := dynahist.Restore([]byte("garbage")); !errors.Is(err, dynahist.ErrBadSnapshot) {
		t.Errorf("Restore(garbage) want ErrBadSnapshot")
	}
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(512))
	}, dynahist.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(1); !errors.Is(err, dynahist.ErrEmptyHistogram) {
		t.Errorf("Delete on empty Sharded = %v, want ErrEmptyHistogram", err)
	}
}
