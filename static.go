package dynahist

import (
	"errors"
	"fmt"
	"math"

	"dynahist/internal/dist"
	"dynahist/internal/histogram"
	"dynahist/internal/static"
)

// StaticKind names a static histogram construction.
type StaticKind int

const (
	// EquiWidth partitions the value range into equal-width buckets.
	EquiWidth StaticKind = iota
	// EquiDepth partitions the values into equal-count buckets.
	EquiDepth
	// Compressed gives heavy values singleton buckets and splits the
	// rest equi-depth (the SC histogram).
	Compressed
	// VOptimal minimises within-bucket frequency variance by exact
	// dynamic programming (the SVO histogram).
	VOptimal
	// SADO minimises within-bucket absolute deviation by exact dynamic
	// programming — the static histogram the paper introduces.
	SADO
	// SSBM is Successive Similar Bucket Merge (paper §5): near-SVO
	// quality at a fraction of the construction cost.
	SSBM
)

var staticKinds = map[StaticKind]static.Kind{
	EquiWidth:  static.KindEquiWidth,
	EquiDepth:  static.KindEquiDepth,
	Compressed: static.KindCompressed,
	VOptimal:   static.KindVOptimal,
	SADO:       static.KindSADO,
	SSBM:       static.KindSSBM,
}

// Static is an immutable-borders histogram produced by one of the
// static constructions (or restored from a serialized bucket list).
// Insert and Delete adjust counters without moving borders. It
// remembers which construction built it (KindOf reports it, and its
// Snapshot carries it), defaulting to the generic KindStatic when
// wrapped from an explicit bucket list.
type Static struct {
	inner *histogram.Piecewise
	kind  Kind
	// rv is the cached read view; nil after any write. All reads go
	// through it, so repeated statistics pay the pin once.
	rv *View
}

// BuildStatic constructs a static histogram of the given kind over the
// complete data set with at most n buckets. Values must be
// non-negative integers (the paper's workloads are integer-valued;
// real-valued data should be quantised first).
//
// Deprecated: use New with the matching static Kind, e.g.
// New(KindSADO, WithValues(values), WithBuckets(n)).
func BuildStatic(kind StaticKind, values []int, n int) (*Static, error) {
	tr, err := trackerOf(values)
	if err != nil {
		return nil, err
	}
	ik, ok := staticKinds[kind]
	if !ok {
		return nil, fmt.Errorf("dynahist: unknown static kind %d", int(kind))
	}
	h, err := static.Build(ik, tr, n)
	if err != nil {
		return nil, err
	}
	return &Static{inner: h, kind: kindOfStatic[kind]}, nil
}

// BuildStaticMemory is BuildStatic with a byte budget instead of a
// bucket count.
//
// Deprecated: use New with the matching static Kind, e.g.
// New(KindSADO, WithValues(values), WithMemory(memBytes)).
func BuildStaticMemory(kind StaticKind, values []int, memBytes int) (*Static, error) {
	n, err := histogram.BucketsForMemory(memBytes, 1)
	if err != nil {
		return nil, err
	}
	return BuildStatic(kind, values, n)
}

// NewStaticFromBuckets wraps an explicit bucket list (for example one
// produced by UnmarshalBuckets or Superpose) as a histogram.
func NewStaticFromBuckets(buckets []Bucket) (*Static, error) {
	p, err := histogram.NewPiecewise(toInternal(buckets))
	if err != nil {
		return nil, err
	}
	return &Static{inner: p, kind: KindStatic}, nil
}

func trackerOf(values []int) (*dist.Tracker, error) {
	if len(values) == 0 {
		return nil, errors.New("dynahist: no values")
	}
	maxV := 0
	for _, v := range values {
		if v < 0 {
			return nil, fmt.Errorf("dynahist: negative value %d", v)
		}
		if v > maxV {
			maxV = v
		}
	}
	tr := dist.New(maxV)
	for _, v := range values {
		if err := tr.Insert(v); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// Insert adds one occurrence of v to the containing (or nearest)
// bucket without moving borders.
func (h *Static) Insert(v float64) error { h.rv = nil; return h.inner.Insert(v) }

// Delete removes one occurrence of v.
func (h *Static) Delete(v float64) error { h.rv = nil; return h.inner.Delete(v) }

// Total returns the number of points currently summarised.
func (h *Static) Total() float64 { return h.inner.Total() }

// View pins the current state as an immutable snapshot; see Estimator.
func (h *Static) View() (*View, error) {
	if h.rv == nil {
		v, err := newViewOwned(h.inner.Buckets(), h.inner.Total())
		if err != nil {
			return nil, err
		}
		h.rv = v
	}
	return h.rv, nil
}

// Quantile returns the smallest x with CDF(x) ≥ q, q in (0, 1].
func (h *Static) Quantile(q float64) (float64, error) { return quantileOf(h, q) }

// CDF returns the approximate fraction of points ≤ x.
func (h *Static) CDF(x float64) float64 { return readView(h).CDF(x) }

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *Static) EstimateRange(lo, hi float64) float64 { return readView(h).EstimateRange(lo, hi) }

// Buckets returns a copy of the bucket list, straight off the
// maintained state (see Dynamic.Buckets).
func (h *Static) Buckets() []Bucket { return toPublic(h.inner.Buckets()) }

// NumBuckets returns the number of buckets.
func (h *Static) NumBuckets() int { return h.inner.NumBuckets() }

// KS returns the Kolmogorov–Smirnov distance between the histogram and
// the exact distribution of the given values — the paper's quality
// metric (§6.2). It is exported so applications can measure how well a
// summary tracks a known data set.
func KS(h Histogram, values []int) (float64, error) {
	tr, err := trackerOf(values)
	if err != nil {
		return 0, err
	}
	cum := tr.Cumulative()
	total := float64(tr.Total())
	d := 0.0
	prev := 0.0
	for v := 0; v < len(cum); v++ {
		exact := float64(cum[v]) / total
		if diff := math.Abs(h.CDF(float64(v)+1) - exact); diff > d {
			d = diff
		}
		if diff := math.Abs(h.CDF(float64(v)) - prev); diff > d {
			d = diff
		}
		prev = exact
	}
	return d, nil
}
