package dynahist_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"dynahist"
)

func TestConcurrentDelegates(t *testing.T) {
	plain, err := dynahist.NewDCMemory(512)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := dynahist.NewDCMemory(512)
	if err != nil {
		t.Fatal(err)
	}
	c := dynahist.NewConcurrent(inner)
	rng := rand.New(rand.NewSource(9))
	for range 5000 {
		v := float64(rng.Intn(1000))
		if err := plain.Insert(v); err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := c.Total(), plain.Total(); got != want {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	for x := 0.0; x <= 1000; x += 50 {
		if got, want := c.CDF(x), plain.CDF(x); got != want {
			t.Fatalf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
	if got, want := c.EstimateRange(100, 500), plain.EstimateRange(100, 500); got != want {
		t.Fatalf("EstimateRange = %v, want %v", got, want)
	}
	if got, want := len(c.Buckets()), len(plain.Buckets()); got != want {
		t.Fatalf("Buckets len = %d, want %d", got, want)
	}
	if err := c.Delete(plain.Buckets()[0].Left); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Total(), plain.Total()-1; got != want {
		t.Fatalf("Total after delete = %v, want %v", got, want)
	}
}

// TestConcurrentRace drives the wrapper from parallel writers,
// deleters and readers; under -race it verifies the locking covers
// every method, including the "reads" that may mutate lazily-cached
// state (AC), and afterwards the total must balance exactly.
func TestConcurrentRace(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() (dynahist.Histogram, error)
	}{
		{"DC", func() (dynahist.Histogram, error) { return dynahist.NewDCMemory(512) }},
		{"DADO", func() (dynahist.Histogram, error) { return dynahist.NewDADOMemory(512) }},
		{"AC", func() (dynahist.Histogram, error) { return dynahist.NewAC(512, 20, 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			c := dynahist.NewConcurrent(h)
			const (
				writers   = 4
				perWriter = 2000
				deletes   = 500
			)
			// Pre-load so deleters always find mass to remove.
			for i := range writers * deletes {
				if err := c.Insert(float64(i % 1000)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for w := range writers {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for range perWriter {
						if err := c.Insert(float64(rng.Intn(1000))); err != nil {
							t.Error(err)
							return
						}
					}
				}()
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(50 + w)))
					for range deletes {
						if err := c.Delete(float64(rng.Intn(1000))); err != nil {
							t.Error(err)
							return
						}
					}
				}()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range perWriter {
						if tot := c.Total(); tot < 0 {
							t.Error("negative total")
							return
						}
						if cdf := c.CDF(500); cdf < 0 || cdf > 1+1e-9 {
							t.Errorf("CDF out of range: %v", cdf)
							return
						}
						_ = c.EstimateRange(100, 900)
						_ = c.Buckets()
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			want := float64(writers*deletes + writers*perWriter - writers*deletes)
			if got := c.Total(); math.Abs(got-want) > 1e-3 {
				t.Fatalf("Total after race = %v, want %v", got, want)
			}
		})
	}
}
