package dynahist_test

// The API-surface snapshot: a golden file of every exported
// declaration of the public packages — dynahist itself and the HTTP
// client — so a PR that changes the public surface (adds, removes or
// re-signatures anything) has to commit the diff visibly in
// testdata/api_surface.txt. Regenerate with
//
//	go test -run TestAPISurface -update .

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPISurface = flag.Bool("update", false, "rewrite testdata/api_surface.txt")

const apiSurfaceFile = "testdata/api_surface.txt"

func TestAPISurface(t *testing.T) {
	got := "# package dynahist\n" + exportedSurface(t, ".", "dynahist") +
		"\n# package dynahist/client\n" + exportedSurface(t, "client", "client")
	if *updateAPISurface {
		if err := os.MkdirAll(filepath.Dir(apiSurfaceFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiSurfaceFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", apiSurfaceFile)
		return
	}
	wantBytes, err := os.ReadFile(apiSurfaceFile)
	if err != nil {
		t.Fatalf("no API surface snapshot (run with -update to create): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(want, "\n")
	seen := map[string]bool{}
	for _, l := range gotLines {
		seen[l] = true
	}
	for _, l := range wantLines {
		if l != "" && !seen[l] {
			t.Errorf("removed from API surface: %s", l)
		}
	}
	wanted := map[string]bool{}
	for _, l := range wantLines {
		wanted[l] = true
	}
	for _, l := range gotLines {
		if l != "" && !wanted[l] {
			t.Errorf("added to API surface:   %s", l)
		}
	}
	if t.Failed() {
		t.Log("intentional change? regenerate with: go test -run TestAPISurface -update .")
	}
}

// exportedSurface renders every exported declaration of the named
// package in dir as one sorted line-per-declaration string.
func exportedSurface(t *testing.T, dir, pkgName string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs[pkgName]
	if !ok {
		t.Fatalf("package %s not found in %s", pkgName, dir)
	}
	var lines []string
	add := func(node any) {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, strings.Join(strings.Fields(buf.String()), " "))
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				d.Body = nil
				d.Doc = nil
				add(d)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						stripUnexportedMembers(sp)
						add(&ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{sp}})
					case *ast.ValueSpec:
						names := exportedNames(sp.Names)
						if len(names) == 0 {
							continue
						}
						kind := "const"
						if d.Tok == token.VAR {
							kind = "var"
						}
						typ := ""
						if sp.Type != nil {
							var buf bytes.Buffer
							if err := printer.Fprint(&buf, fset, sp.Type); err != nil {
								t.Fatal(err)
							}
							typ = " " + buf.String()
						}
						lines = append(lines, fmt.Sprintf("%s %s%s", kind, strings.Join(names, ", "), typ))
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// exportedReceiver reports whether a method's receiver type is
// exported (free functions count as exported receivers).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}

// stripUnexportedMembers removes unexported fields from struct types
// and unexported methods from interface types, so internals can move
// without churning the surface file.
func stripUnexportedMembers(sp *ast.TypeSpec) {
	switch t := sp.Type.(type) {
	case *ast.StructType:
		t.Fields.List = exportedFields(t.Fields.List)
	case *ast.InterfaceType:
		t.Methods.List = exportedFields(t.Methods.List)
	}
	sp.Comment = nil
}

func exportedFields(fields []*ast.Field) []*ast.Field {
	var out []*ast.Field
	for _, f := range fields {
		f.Doc, f.Comment = nil, nil
		if len(f.Names) == 0 {
			out = append(out, f) // embedded
			continue
		}
		names := make([]*ast.Ident, 0, len(f.Names))
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			f.Names = names
			out = append(out, f)
		}
	}
	return out
}

func exportedNames(ids []*ast.Ident) []string {
	var out []string
	for _, id := range ids {
		if id.IsExported() {
			out = append(out, id.Name)
		}
	}
	return out
}
