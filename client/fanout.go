// Scatter-gather reads over a multi-node histserved deployment.
//
// The paper's §8 superposition result is what makes this work: a union
// histogram with a border wherever any member has one represents the
// combined distribution exactly — merging loses nothing — so a global
// answer needs only one snapshot envelope per site, not the data. The
// Fanout fetches every site's envelope concurrently, superposes them
// into the lossless union, optionally reduces back to a bucket budget
// with the paper's SSBM pass, and answers the whole QuerySpec from the
// merged result. A site that cannot be reached degrades the answer to
// the reachable sites and flags it Partial rather than failing the
// read.
package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"

	"dynahist"
	"dynahist/internal/wire"
)

// Envelope is one site's snapshot envelope for a histogram: a
// restorable blob (dynahist.Restore accepts it) plus the site identity
// and watermark it was served under.
type Envelope struct {
	// Site is the serving node's site ID.
	Site string
	// Watermark is the site's ingest watermark the snapshot covers.
	Watermark uint64
	// Total is the histogram's point count at snapshot time.
	Total float64
	// Data is the self-describing snapshot envelope.
	Data []byte
}

// Envelope fetches the server's snapshot envelope for name — the
// scatter-gather read unit, also useful on its own for backup or
// offline analysis.
func (c *Client) Envelope(ctx context.Context, name string) (Envelope, error) {
	data, hdr, err := c.getRaw(ctx, "/v1/h/"+url.PathEscape(name)+"/envelope")
	if err != nil {
		return Envelope{}, err
	}
	env := Envelope{Site: hdr.Get(wire.HeaderSite), Data: data}
	if v, err := strconv.ParseUint(hdr.Get(wire.HeaderWatermark), 10, 64); err == nil {
		env.Watermark = v
	}
	if v, err := strconv.ParseFloat(hdr.Get(wire.HeaderTotal), 64); err == nil {
		env.Total = v
	}
	return env, nil
}

// SiteResult is one site's contribution to a global read.
type SiteResult struct {
	// BaseURL is the site's server address.
	BaseURL string
	// Site is the node's site ID (empty when the fetch failed).
	Site string
	// Watermark is the site ingest watermark the snapshot covers.
	Watermark uint64
	// Total is the site's local point count.
	Total float64
	// Err is the fetch failure, nil on success. A failed site is
	// excluded from the global answer and flips Partial.
	Err error
}

// GlobalSummary is a scatter-gather read result: the Summary computed
// over the superposed union of every reachable site, plus per-site
// provenance. Partial reads are answers, not errors — a dashboard
// would rather show the surviving sites' latency distribution flagged
// as partial than nothing.
type GlobalSummary struct {
	Summary
	// Sites holds one entry per fanned-out site, in Fanout order.
	Sites []SiteResult
	// Partial is true when at least one site failed and the Summary
	// covers only the rest.
	Partial bool
}

// Fanout reads one logical histogram that is sharded by keyspace
// across several histserved nodes. It is safe for concurrent use.
type Fanout struct {
	clients []*Client
	urls    []string
}

// NewFanout returns a Fanout over the sites at baseURLs. A nil
// httpClient uses the package default (30-second timeout); the same
// client is shared across sites.
func NewFanout(baseURLs []string, httpClient *http.Client) *Fanout {
	f := &Fanout{
		clients: make([]*Client, len(baseURLs)),
		urls:    make([]string, len(baseURLs)),
	}
	for i, u := range baseURLs {
		f.clients[i] = New(u, httpClient)
		f.urls[i] = u
	}
	return f
}

// Sites returns the base URLs the Fanout spans, in fan-out order.
func (f *Fanout) Sites() []string {
	out := make([]string, len(f.urls))
	copy(out, f.urls)
	return out
}

// CreateAll registers the histogram on every site concurrently. A site
// that already has it counts as success (CreateAll is idempotent);
// any other failure is returned, one error per failed site.
func (f *Fanout) CreateAll(ctx context.Context, opts CreateOptions) error {
	errs := make([]error, len(f.clients))
	var wg sync.WaitGroup
	for i, c := range f.clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Create(ctx, opts)
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusConflict {
				err = nil
			}
			if err != nil {
				errs[i] = fmt.Errorf("site %s: %w", f.urls[i], err)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// DescribeOptions parameterise a global Describe.
type DescribeOptions struct {
	// MaxBuckets reduces the superposed union back to at most this many
	// buckets (the paper's SSBM pass) before answering — bounding the
	// merged histogram's size regardless of how many sites contributed.
	// 0 keeps the lossless union.
	MaxBuckets int
}

// Describe answers the spec over the global distribution: every
// site's envelope is fetched concurrently, the snapshots are
// superposed into the lossless §8 union (reduced to opts.MaxBuckets
// when set), and the whole spec is evaluated against the merged
// histogram. Sites that fail are skipped and flagged — the answer is
// Partial, not an error — but a read where every site fails, or the
// spec itself is unanswerable, errors.
func (f *Fanout) Describe(ctx context.Context, name string, spec QuerySpec, opts DescribeOptions) (GlobalSummary, error) {
	g := GlobalSummary{Sites: make([]SiteResult, len(f.clients))}
	hists := make([]dynahist.Histogram, len(f.clients))
	var wg sync.WaitGroup
	for i, c := range f.clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr := &g.Sites[i]
			sr.BaseURL = f.urls[i]
			env, err := c.Envelope(ctx, name)
			if err != nil {
				sr.Err = err
				return
			}
			h, err := dynahist.Restore(env.Data)
			if err != nil {
				sr.Err = fmt.Errorf("restoring envelope: %w", err)
				return
			}
			sr.Site, sr.Watermark, sr.Total = env.Site, env.Watermark, h.Total()
			hists[i] = h
		}()
	}
	wg.Wait()

	members := make([]dynahist.Histogram, 0, len(hists))
	for i, h := range hists {
		if h != nil {
			members = append(members, h)
		} else {
			g.Partial = true
			if g.Sites[i].Err == nil {
				g.Sites[i].Err = errors.New("no envelope")
			}
		}
	}
	if len(members) == 0 {
		errs := make([]error, 0, len(g.Sites))
		for _, sr := range g.Sites {
			errs = append(errs, fmt.Errorf("site %s: %w", sr.BaseURL, sr.Err))
		}
		return g, fmt.Errorf("histserved: all %d sites failed: %w", len(g.Sites), errors.Join(errs...))
	}

	buckets, err := dynahist.Superpose(members...)
	if err != nil {
		return g, fmt.Errorf("histserved: superposing %d sites: %w", len(members), err)
	}
	if opts.MaxBuckets > 0 && len(buckets) > opts.MaxBuckets {
		if buckets, err = dynahist.Reduce(buckets, opts.MaxBuckets); err != nil {
			return g, fmt.Errorf("histserved: reducing union to %d buckets: %w", opts.MaxBuckets, err)
		}
	}
	global, err := dynahist.NewStaticFromBuckets(buckets)
	if err != nil {
		return g, fmt.Errorf("histserved: building union histogram: %w", err)
	}
	sum, err := dynahist.Describe(global, dynahist.QuerySpec{
		Quantiles: spec.Quantiles,
		CDF:       spec.CDF,
		PDF:       spec.PDF,
		Ranges:    toDynaRanges(spec.Ranges),
		Buckets:   spec.Buckets,
	})
	if err != nil {
		return g, err
	}
	g.Summary = Summary{
		Total:     sum.Total,
		Quantiles: sum.Quantiles,
		CDF:       sum.CDF,
		PDF:       sum.PDF,
		Ranges:    sum.Ranges,
	}
	if len(sum.Buckets) > 0 {
		g.Buckets = make([]Bucket, len(sum.Buckets))
		for i, b := range sum.Buckets {
			g.Buckets[i] = Bucket{Left: b.Left, Right: b.Right, Counters: b.Counters}
		}
	}
	return g, nil
}

func toDynaRanges(rs []Range) []dynahist.Range {
	if len(rs) == 0 {
		return nil
	}
	out := make([]dynahist.Range, len(rs))
	for i, r := range rs {
		out[i] = dynahist.Range{Lo: r.Lo, Hi: r.Hi}
	}
	return out
}
