// Package client is the Go client for histserved, the HTTP serving
// layer over this repository's dynamic histograms (cmd/histserved).
// It covers the full /v1 API: histogram lifecycle (create, delete,
// list, info), batched ingest — JSON for convenience, the
// length-prefixed binary format for high-volume writers — the batched
// Query endpoint (many statistics from one pinned server-side view in
// one round trip) and the per-statistic GET endpoints (total, cdf,
// quantile, range, buckets).
//
//	c := client.New("http://localhost:8080", nil)
//	_ = c.Create(ctx, client.CreateOptions{Name: "latency", Family: client.FamilyDADO})
//	_ = c.InsertBinary(ctx, "latency", samples)
//	sum, _ := c.Query(ctx, "latency", client.QuerySpec{Quantiles: []float64{0.5, 0.99}})
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"dynahist/internal/wire"
)

// Histogram families understood by the server.
const (
	FamilyDADO = "dado"
	FamilyDVO  = "dvo"
	FamilyDC   = "dc"
	FamilyAC   = "ac"
)

// APIError is a non-2xx response from the server.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error string.
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("histserved: %d: %s", e.StatusCode, e.Message)
}

// Retry policy for idempotent reads: a GET that dies on the wire or
// bounces off a gateway (502/503/504) is retried up to retryAttempts
// times total, with doubling backoff starting at retryBaseDelay.
// Mutating requests are never retried — an insert whose ack was lost
// may still have landed, and replaying it would double-count.
//
// Retries are also budget-capped (see shouldRetry): an attempt that
// burned most of the HTTP client's per-attempt timeout means a dead or
// hung server, and repeating it would only multiply the latency of the
// same answer — one timeout, not three, is what a fan-out caller waits
// before flagging a site Partial. A caller context deadline likewise
// cuts the backoff short.
const (
	retryAttempts  = 3
	retryBaseDelay = 100 * time.Millisecond
)

// defaultHTTPClient backs New(url, nil). Unlike http.DefaultClient it
// has a timeout, so a hung server cannot wedge a caller that passed no
// context deadline of its own.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

// Client talks to one histserved server. It is safe for concurrent
// use.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080"). A nil httpClient uses a shared default
// with a 30-second timeout; pass your own *http.Client to control
// timeouts, transport or proxies — caller-supplied clients are used
// exactly as given.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = defaultHTTPClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// CreateOptions parameterise Create.
type CreateOptions struct {
	// Name identifies the histogram: letters, digits, '_', '-', '.'.
	Name string
	// Family is one of the Family constants.
	Family string
	// MemBytes is the per-shard memory budget; 0 defaults server-side
	// to 1024.
	MemBytes int
	// Shards is the write-striping factor; 0 defaults server-side to
	// GOMAXPROCS.
	Shards int
	// Seed seeds the FamilyAC reservoir; ignored otherwise.
	Seed int64
}

// Info describes one registered histogram.
type Info struct {
	Name     string
	Family   string
	MemBytes int
	Shards   int
	Total    float64
}

// Bucket is one bucket of a histogram's merged view.
type Bucket struct {
	Left, Right float64
	Counters    []float64
}

func infoFromWire(w wire.Info) Info {
	return Info{Name: w.Name, Family: w.Family, MemBytes: w.MemBytes, Shards: w.Shards, Total: w.Total}
}

// nextRetryDelay is the backoff that would precede the attempt after
// the given 0-based one.
func nextRetryDelay(attempt int) time.Duration {
	return retryBaseDelay << attempt
}

// shouldRetry reports whether another attempt after a retryable GET
// failure is worth its cost. It is false when the caller's context
// deadline would expire before the backoff ends (the retry could never
// complete anyway), and when the failed attempt already consumed most
// of the HTTP client's per-attempt timeout — that signature is a dead
// or hung server, not a flaky hop, and repeating the attempt would
// multiply the caller's wait (a scatter-gather read should degrade to
// Partial within roughly one timeout) for the same answer.
func (c *Client) shouldRetry(ctx context.Context, attemptStart time.Time, delay time.Duration) bool {
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= delay {
		return false
	}
	if t := c.http.Timeout; t > 0 && time.Since(attemptStart) >= t*3/4 {
		return false
	}
	return true
}

// do issues one request and decodes the JSON response into out when
// out is non-nil. GETs are retried per the package retry policy;
// everything else gets exactly one attempt.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	attempts := 1
	if method == http.MethodGet {
		attempts = retryAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(nextRetryDelay(attempt - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		attemptStart := time.Now()
		data, status, _, err := c.doOnce(ctx, method, path, contentType, body)
		switch {
		case err != nil:
			// Transport-level failure. Retryable for a GET — unless the
			// caller's context is what killed it.
			lastErr = err
			if ctx.Err() != nil {
				return err
			}
			if !c.shouldRetry(ctx, attemptStart, nextRetryDelay(attempt)) {
				return lastErr
			}
			continue
		case status == http.StatusBadGateway || status == http.StatusServiceUnavailable || status == http.StatusGatewayTimeout:
			lastErr = apiError(status, data)
			if !c.shouldRetry(ctx, attemptStart, nextRetryDelay(attempt)) {
				return lastErr
			}
			continue
		case status < 200 || status > 299:
			return apiError(status, data)
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("histserved: decoding response: %w", err)
			}
		}
		return nil
	}
	return lastErr
}

// doOnce is one request/response exchange: the body bytes, status and
// headers, or a transport error.
func (c *Client) doOnce(ctx context.Context, method, path, contentType string, body []byte) ([]byte, int, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, 0, nil, err
	}
	return data, resp.StatusCode, resp.Header, nil
}

// getRaw is a retrying GET that returns the raw response body and
// headers — the envelope fetch path, whose payload is a binary
// snapshot envelope rather than JSON.
func (c *Client) getRaw(ctx context.Context, path string) ([]byte, http.Header, error) {
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(nextRetryDelay(attempt - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, nil, ctx.Err()
			case <-t.C:
			}
		}
		attemptStart := time.Now()
		data, status, hdr, err := c.doOnce(ctx, http.MethodGet, path, "", nil)
		switch {
		case err != nil:
			lastErr = err
			if ctx.Err() != nil {
				return nil, nil, err
			}
			if !c.shouldRetry(ctx, attemptStart, nextRetryDelay(attempt)) {
				return nil, nil, lastErr
			}
			continue
		case status == http.StatusBadGateway || status == http.StatusServiceUnavailable || status == http.StatusGatewayTimeout:
			lastErr = apiError(status, data)
			if !c.shouldRetry(ctx, attemptStart, nextRetryDelay(attempt)) {
				return nil, nil, lastErr
			}
			continue
		case status < 200 || status > 299:
			return nil, nil, apiError(status, data)
		}
		return data, hdr, nil
	}
	return nil, nil, lastErr
}

// apiError shapes a non-2xx body into an APIError.
func apiError(status int, data []byte) error {
	var e wire.ErrorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return &APIError{StatusCode: status, Message: e.Error}
	}
	return &APIError{StatusCode: status, Message: strings.TrimSpace(string(data))}
}

// Create registers a new histogram and returns its info.
func (c *Client) Create(ctx context.Context, opts CreateOptions) (Info, error) {
	body, err := json.Marshal(wire.CreateRequest{
		Name:     opts.Name,
		Family:   opts.Family,
		MemBytes: opts.MemBytes,
		Shards:   opts.Shards,
		Seed:     opts.Seed,
	})
	if err != nil {
		return Info{}, err
	}
	var w wire.Info
	if err := c.do(ctx, "POST", "/v1/h", "application/json", body, &w); err != nil {
		return Info{}, err
	}
	return infoFromWire(w), nil
}

// Delete removes a histogram (and its catalog file, when the server
// persists).
func (c *Client) Delete(ctx context.Context, name string) error {
	return c.do(ctx, "DELETE", "/v1/h/"+url.PathEscape(name), "", nil, nil)
}

// List returns every registered histogram, sorted by name.
func (c *Client) List(ctx context.Context) ([]Info, error) {
	var w wire.ListResponse
	if err := c.do(ctx, "GET", "/v1/h", "", nil, &w); err != nil {
		return nil, err
	}
	out := make([]Info, len(w.Histograms))
	for i, h := range w.Histograms {
		out[i] = infoFromWire(h)
	}
	return out, nil
}

// Info returns one histogram's info.
func (c *Client) Info(ctx context.Context, name string) (Info, error) {
	var w wire.Info
	if err := c.do(ctx, "GET", "/v1/h/"+url.PathEscape(name), "", nil, &w); err != nil {
		return Info{}, err
	}
	return infoFromWire(w), nil
}

// Ack is the server's acknowledgement of one ingest batch.
type Ack struct {
	// Total is the histogram's point count after the batch.
	Total float64
	// LSN is the write-ahead-log position the batch was logged at. Zero
	// when the server runs without a WAL.
	LSN uint64
	// DigestedLSN is how far the server's write-ahead-log digester had
	// folded records into the in-memory histograms when the batch was
	// acknowledged. The batch itself is durable at ack time but becomes
	// readable only once DigestedLSN reaches LSN — writers that need
	// read-your-writes poll WALStatus until its DigestedLSN passes the
	// ack's LSN. Zero when the server runs without a WAL (then the
	// batch is readable immediately).
	DigestedLSN uint64
}

// Insert adds the values via the JSON ingest body and returns the
// histogram's new total.
func (c *Client) Insert(ctx context.Context, name string, values []float64) (float64, error) {
	ack, err := c.update(ctx, name, "insert", values, false)
	return ack.Total, err
}

// InsertAck is Insert returning the full acknowledgement, including
// the server's digested WAL watermark.
func (c *Client) InsertAck(ctx context.Context, name string, values []float64) (Ack, error) {
	return c.update(ctx, name, "insert", values, false)
}

// InsertBinary adds the values via the length-prefixed binary batch
// format — roughly 3× denser on the wire than JSON and parsed with a
// single bounds check, the fast path for high-volume writers.
func (c *Client) InsertBinary(ctx context.Context, name string, values []float64) (float64, error) {
	ack, err := c.update(ctx, name, "insert", values, true)
	return ack.Total, err
}

// InsertBinaryAck is InsertBinary returning the full acknowledgement,
// including the server's digested WAL watermark.
func (c *Client) InsertBinaryAck(ctx context.Context, name string, values []float64) (Ack, error) {
	return c.update(ctx, name, "insert", values, true)
}

// DeleteValues removes the values from the histogram.
func (c *Client) DeleteValues(ctx context.Context, name string, values []float64) (float64, error) {
	ack, err := c.update(ctx, name, "delete", values, false)
	return ack.Total, err
}

func (c *Client) update(ctx context.Context, name, op string, values []float64, binary bool) (Ack, error) {
	var (
		body []byte
		ct   string
		err  error
	)
	if binary {
		body, err = wire.EncodeBatch(values)
		ct = wire.BatchContentType
		if err != nil {
			return Ack{}, err
		}
	} else {
		body, err = json.Marshal(wire.ValuesRequest{Values: values})
		ct = "application/json"
		if err != nil {
			return Ack{}, err
		}
	}
	var resp wire.UpdateResponse
	if err := c.do(ctx, "POST", "/v1/h/"+url.PathEscape(name)+"/"+op, ct, body, &resp); err != nil {
		return Ack{}, err
	}
	return Ack{Total: resp.Total, LSN: resp.LSN, DigestedLSN: resp.DigestedLSN}, nil
}

// Total returns the histogram's current point count.
func (c *Client) Total(ctx context.Context, name string) (float64, error) {
	var resp wire.TotalResponse
	if err := c.do(ctx, "GET", "/v1/h/"+url.PathEscape(name)+"/total", "", nil, &resp); err != nil {
		return 0, err
	}
	return resp.Total, nil
}

// CDF returns the approximate fraction of points ≤ x.
func (c *Client) CDF(ctx context.Context, name string, x float64) (float64, error) {
	var resp wire.CDFResponse
	path := "/v1/h/" + url.PathEscape(name) + "/cdf?x=" + formatFloat(x)
	if err := c.do(ctx, "GET", path, "", nil, &resp); err != nil {
		return 0, err
	}
	return resp.CDF, nil
}

// Quantile returns the approximate q-quantile, q in (0, 1].
func (c *Client) Quantile(ctx context.Context, name string, q float64) (float64, error) {
	var resp wire.QuantileResponse
	path := "/v1/h/" + url.PathEscape(name) + "/quantile?q=" + formatFloat(q)
	if err := c.do(ctx, "GET", path, "", nil, &resp); err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// Range returns the approximate number of points with integer value in
// [lo, hi] inclusive.
func (c *Client) Range(ctx context.Context, name string, lo, hi float64) (float64, error) {
	var resp wire.RangeResponse
	path := "/v1/h/" + url.PathEscape(name) + "/range?lo=" + formatFloat(lo) + "&hi=" + formatFloat(hi)
	if err := c.do(ctx, "GET", path, "", nil, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Range is one inclusive integer-value range query [Lo, Hi].
type Range struct {
	Lo, Hi float64
}

// QuerySpec names the statistics one batched Query answers — many
// questions, one pinned server-side view, one round trip. Every field
// is optional; the Summary always carries the total.
type QuerySpec struct {
	// Quantiles are q arguments, each in (0, 1].
	Quantiles []float64
	// CDF are x arguments of CDF curve points.
	CDF []float64
	// PDF are x arguments of density points.
	PDF []float64
	// Ranges are inclusive integer-value range-count queries.
	Ranges []Range
	// Buckets asks for the pinned bucket list itself.
	Buckets bool
}

// Summary is a batched Query result: one answer per corresponding
// QuerySpec argument, in order, all evaluated against the same pinned
// view — no write lands between the total and the statistics it
// normalises.
type Summary struct {
	Total     float64
	Quantiles []float64
	CDF       []float64
	PDF       []float64
	Ranges    []float64
	Buckets   []Bucket
}

// Query answers a whole batch of statistics from one pinned view of
// the histogram in one round trip — the read-side analogue of the
// batched ingest path. A dashboard wanting 10 quantiles, a CDF curve
// and a few range counts asks once instead of once per statistic.
func (c *Client) Query(ctx context.Context, name string, spec QuerySpec) (Summary, error) {
	req := wire.QueryRequest{
		Quantiles: spec.Quantiles,
		CDF:       spec.CDF,
		PDF:       spec.PDF,
		Buckets:   spec.Buckets,
	}
	if len(spec.Ranges) > 0 {
		req.Ranges = make([]wire.RangeQuery, len(spec.Ranges))
		for i, r := range spec.Ranges {
			req.Ranges[i] = wire.RangeQuery{Lo: r.Lo, Hi: r.Hi}
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return Summary{}, err
	}
	var resp wire.QueryResponse
	path := "/v1/h/" + url.PathEscape(name) + "/query"
	if err := c.do(ctx, "POST", path, "application/json", body, &resp); err != nil {
		return Summary{}, err
	}
	sum := Summary{
		Total:     resp.Total,
		Quantiles: resp.Quantiles,
		CDF:       resp.CDF,
		PDF:       resp.PDF,
		Ranges:    resp.Ranges,
	}
	if len(resp.Buckets) > 0 {
		sum.Buckets = make([]Bucket, len(resp.Buckets))
		for i, b := range resp.Buckets {
			sum.Buckets[i] = Bucket{Left: b.Left, Right: b.Right, Counters: b.Counters}
		}
	}
	return sum, nil
}

// FeedbackResult reports what one feedback record did on the server:
// the estimate the serving view gave for the range before the record
// (Estimated), the estimate after it applied (TunedEstimate — the
// answer the next query gets), and the state of the histogram's
// feedback journal.
type FeedbackResult struct {
	Estimated     float64
	TunedEstimate float64
	JournalLen    int
	Rounds        uint64
}

// Feedback reports one executed range predicate's true result count to
// the server's self-tuning loop: the query covered the inclusive
// integer range [lo, hi] (the Range/EstimateRange convention) and
// actually matched observed points. The server journals the record and
// nudges its served estimates toward the observation. Requires the
// server to run with tuning enabled (histserved -tuning); otherwise it
// fails with an APIError.
func (c *Client) Feedback(ctx context.Context, name string, lo, hi, observed float64) (FeedbackResult, error) {
	body, err := json.Marshal(wire.FeedbackRequest{Lo: lo, Hi: hi, Observed: observed})
	if err != nil {
		return FeedbackResult{}, err
	}
	var resp wire.FeedbackResponse
	path := "/v1/h/" + url.PathEscape(name) + "/feedback"
	if err := c.do(ctx, "POST", path, "application/json", body, &resp); err != nil {
		return FeedbackResult{}, err
	}
	return FeedbackResult{
		Estimated:     resp.Estimated,
		TunedEstimate: resp.TunedEstimate,
		JournalLen:    resp.JournalLen,
		Rounds:        resp.Rounds,
	}, nil
}

// Buckets returns the histogram's merged bucket list.
func (c *Client) Buckets(ctx context.Context, name string) ([]Bucket, error) {
	var resp wire.BucketsResponse
	if err := c.do(ctx, "GET", "/v1/h/"+url.PathEscape(name)+"/buckets", "", nil, &resp); err != nil {
		return nil, err
	}
	out := make([]Bucket, len(resp.Buckets))
	for i, b := range resp.Buckets {
		out[i] = Bucket{Left: b.Left, Right: b.Right, Counters: b.Counters}
	}
	return out, nil
}

// WALStatus describes the server's durable-ingest state. When Enabled
// is false the server runs without a write-ahead log and every other
// field is zero. AppendedLSN counts acknowledged records, DigestedLSN
// those folded into the in-memory histograms (reads lag ingest by the
// difference), CheckpointLSN those covered by the last catalog
// snapshot; everything past CheckpointLSN replays on restart.
type WALStatus struct {
	Enabled       bool
	Dir           string
	SyncPolicy    string
	AppendedLSN   uint64
	DigestedLSN   uint64
	CheckpointLSN uint64
	LagRecords    uint64
	// DigestLag is AppendedLSN − DigestedLSN as computed by the server:
	// acknowledged records not yet folded into reads. A read-your-writes
	// poller waits for it to reach zero instead of diffing the LSNs
	// itself.
	DigestLag          uint64
	Segments           int
	ActiveSegmentBytes int64
	TotalBytes         int64
}

// WALStatus reports the server's write-ahead-log watermarks — how far
// ingest, digestion and checkpointing have each advanced.
func (c *Client) WALStatus(ctx context.Context) (WALStatus, error) {
	var resp wire.WALStatusResponse
	if err := c.do(ctx, "GET", "/v1/wal/status", "", nil, &resp); err != nil {
		return WALStatus{}, err
	}
	return WALStatus{
		Enabled:            resp.Enabled,
		Dir:                resp.Dir,
		SyncPolicy:         resp.SyncPolicy,
		AppendedLSN:        resp.AppendedLSN,
		DigestedLSN:        resp.DigestedLSN,
		CheckpointLSN:      resp.CheckpointLSN,
		LagRecords:         resp.LagRecords,
		DigestLag:          resp.DigestLag,
		Segments:           resp.Segments,
		ActiveSegmentBytes: resp.ActiveSegmentBytes,
		TotalBytes:         resp.TotalBytes,
	}, nil
}

// EndpointStats is one route's HTTP serving statistics: request and
// in-flight counts, latency quantiles in seconds (estimated by the
// server's own DADO histograms), and response counts by status class.
type EndpointStats struct {
	Requests   uint64
	InFlight   int64
	LatencyP50 float64
	LatencyP90 float64
	LatencyP99 float64
	Status     map[string]uint64
}

// CacheStats describes the server's epoch-keyed query cache. HitRatio
// is Hits / (Hits + Misses), 0 before any lookup.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	StalePuts uint64
	Evictions uint64
	HitRatio  float64
}

// WALObsStats is the WAL block of a stats snapshot. DigestLag is the
// number of acknowledged records not yet folded into reads.
type WALObsStats struct {
	Enabled     bool
	AppendedLSN uint64
	DigestedLSN uint64
	DigestLag   uint64
	Fsyncs      uint64
	Rotations   uint64
}

// PeerSyncStats is one peer's anti-entropy health: failed rounds and
// the current backoff delay (0 when healthy).
type PeerSyncStats struct {
	Peer           string
	Failures       uint64
	BackoffSeconds float64
}

// AntiEntropyStats describes the server's peer-sync loop.
type AntiEntropyStats struct {
	Rounds        uint64
	Adopted       uint64
	Replicated    uint64
	Skipped       uint64
	FallbackPulls uint64
	Peers         []PeerSyncStats
}

// TuningStats describes the feedback plane: records journaled, and
// records whose bounded adjustment could not fully absorb the observed
// count.
type TuningStats struct {
	Enabled bool
	Applied uint64
	Clamped uint64
}

// IngestStats describes the ingest batch-size distribution.
type IngestStats struct {
	Batches  uint64
	Values   float64
	BatchP50 float64
	BatchP90 float64
	BatchP99 float64
}

// Stats is the server's observability snapshot (GET /v1/stats): the
// structured-JSON face of the same state /metrics exposes in
// Prometheus text format. Requires the server to run with -metrics.
type Stats struct {
	SiteID        string
	UptimeSeconds float64
	Histograms    int
	Endpoints     map[string]EndpointStats
	Cache         CacheStats
	WAL           WALObsStats
	AntiEntropy   AntiEntropyStats
	Tuning        TuningStats
	Ingest        IngestStats
}

// Stats fetches the server's observability snapshot. Servers started
// without -metrics answer 404, surfaced as an *APIError.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var resp wire.StatsResponse
	if err := c.do(ctx, "GET", "/v1/stats", "", nil, &resp); err != nil {
		return Stats{}, err
	}
	out := Stats{
		SiteID:        resp.SiteID,
		UptimeSeconds: resp.UptimeSeconds,
		Histograms:    resp.Histograms,
		Cache: CacheStats{
			Hits:      resp.Cache.Hits,
			Misses:    resp.Cache.Misses,
			StalePuts: resp.Cache.StalePuts,
			Evictions: resp.Cache.Evictions,
			HitRatio:  resp.Cache.HitRatio,
		},
		WAL: WALObsStats{
			Enabled:     resp.WAL.Enabled,
			AppendedLSN: resp.WAL.AppendedLSN,
			DigestedLSN: resp.WAL.DigestedLSN,
			DigestLag:   resp.WAL.DigestLag,
			Fsyncs:      resp.WAL.Fsyncs,
			Rotations:   resp.WAL.Rotations,
		},
		AntiEntropy: AntiEntropyStats{
			Rounds:        resp.AntiEntropy.Rounds,
			Adopted:       resp.AntiEntropy.Adopted,
			Replicated:    resp.AntiEntropy.Replicated,
			Skipped:       resp.AntiEntropy.Skipped,
			FallbackPulls: resp.AntiEntropy.FallbackPulls,
		},
		Tuning: TuningStats{
			Enabled: resp.Tuning.Enabled,
			Applied: resp.Tuning.Applied,
			Clamped: resp.Tuning.Clamped,
		},
		Ingest: IngestStats{
			Batches:  resp.Ingest.Batches,
			Values:   resp.Ingest.Values,
			BatchP50: resp.Ingest.BatchP50,
			BatchP90: resp.Ingest.BatchP90,
			BatchP99: resp.Ingest.BatchP99,
		},
	}
	for _, p := range resp.AntiEntropy.Peers {
		out.AntiEntropy.Peers = append(out.AntiEntropy.Peers, PeerSyncStats{
			Peer: p.Peer, Failures: p.Failures, BackoffSeconds: p.BackoffSeconds,
		})
	}
	if len(resp.Endpoints) > 0 {
		out.Endpoints = make(map[string]EndpointStats, len(resp.Endpoints))
		for name, ep := range resp.Endpoints {
			out.Endpoints[name] = EndpointStats{
				Requests:   ep.Requests,
				InFlight:   ep.InFlight,
				LatencyP50: ep.LatencyP50,
				LatencyP90: ep.LatencyP90,
				LatencyP99: ep.LatencyP99,
				Status:     ep.Status,
			}
		}
	}
	return out, nil
}

// Healthy reports whether the server answers its health check.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, "GET", "/healthz", "", nil, nil)
}

func formatFloat(v float64) string {
	return url.QueryEscape(strconv.FormatFloat(v, 'g', -1, 64))
}
