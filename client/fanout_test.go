package client

import (
	"context"
	"errors"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dynahist/internal/server"
)

// newSite spins up one in-process peer-role histserved node.
func newSite(t *testing.T, siteID string) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(server.Config{SiteID: siteID, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = s.Close() })
	return s, ts
}

// TestDefaultClientHasTimeout pins the nil-client hardening: New(url,
// nil) must not hand out http.DefaultClient, whose zero timeout hangs
// forever on a wedged server.
func TestDefaultClientHasTimeout(t *testing.T) {
	c := New("http://localhost:1", nil)
	if c.http == http.DefaultClient {
		t.Fatal("New(url, nil) uses http.DefaultClient (no timeout)")
	}
	if c.http.Timeout == 0 {
		t.Fatal("default client has no timeout")
	}
	// A caller-supplied client is used exactly as given.
	own := &http.Client{}
	if got := New("http://localhost:1", own).http; got != own {
		t.Fatal("caller-supplied client was replaced")
	}
}

// TestGetRetriesTransientFailures pins the read retry policy: a GET
// that bounces off a 503 twice succeeds on the third attempt, and a
// POST is never replayed.
func TestGetRetriesTransientFailures(t *testing.T) {
	var gets, posts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			if gets.Add(1) < 3 {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			w.Write([]byte(`{"total":42}`))
			return
		}
		posts.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL, nil)
	total, err := c.Total(context.Background(), "x")
	if err != nil {
		t.Fatalf("GET after transient 503s: %v", err)
	}
	if total != 42 || gets.Load() != 3 {
		t.Fatalf("total = %v after %d attempts, want 42 after 3", total, gets.Load())
	}

	if _, err := c.Insert(context.Background(), "x", []float64{1}); err == nil {
		t.Fatal("POST through a 502: want error")
	}
	if posts.Load() != 1 {
		t.Fatalf("POST attempted %d times, want exactly 1 (mutations must not be replayed)", posts.Load())
	}
}

// TestGetRetryHonoursContext pins that a cancelled context cuts the
// retry loop short instead of sleeping through the backoff.
func TestGetRetryHonoursContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New(ts.URL, nil).Total(ctx, "x")
	if err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v past a 50ms context", elapsed)
	}
}

// TestGetRetrySkipsAfterTimeoutBurn pins the retry budget: an attempt
// that burns the HTTP client's whole per-attempt timeout signals a dead
// or hung server, and the remaining retries are skipped — a fan-out
// caller degrades to Partial within roughly one timeout, not three
// timeouts plus backoff.
func TestGetRetrySkipsAfterTimeoutBurn(t *testing.T) {
	var gets atomic.Int64
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		select {
		case <-hang:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(ts.Close)

	const timeout = 100 * time.Millisecond
	c := New(ts.URL, &http.Client{Timeout: timeout})
	start := time.Now()
	_, err := c.Total(context.Background(), "x")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("GET against a hung server: want error")
	}
	if gets.Load() != 1 {
		t.Fatalf("hung server was attempted %d times, want 1 (retrying a timeout only multiplies the wait)", gets.Load())
	}
	if elapsed > 3*timeout {
		t.Fatalf("GET took %v against a hung server, want about one %v timeout", elapsed, timeout)
	}
}

// TestGetRetryRespectsDeadline pins the deadline cap: when the
// caller's context cannot outlive the next backoff, the retry loop
// returns the last real failure instead of sleeping into the deadline
// and surfacing context.DeadlineExceeded.
func TestGetRetryRespectsDeadline(t *testing.T) {
	var gets atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)

	// Attempts land at ~0ms and ~100ms; the next backoff (200ms) cannot
	// fit before the 250ms deadline, so the loop must stop there.
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	_, err := New(ts.URL, nil).Total(ctx, "x")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the server's 503 (not a deadline error from sleeping out the budget)", err)
	}
	if n := gets.Load(); n != 2 {
		t.Fatalf("server saw %d attempts, want 2 (third backoff exceeds the deadline)", n)
	}
}

// TestInsertAckCarriesDigestedLSN pins the ack watermark satellite on
// a non-WAL server: the ack decodes (DigestedLSN 0 means immediately
// readable) and the total is right.
func TestInsertAckCarriesDigestedLSN(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()
	if _, err := c.Create(ctx, CreateOptions{Name: "h", Family: FamilyDADO}); err != nil {
		t.Fatal(err)
	}
	ack, err := c.InsertAck(ctx, "h", []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Total != 3 || ack.DigestedLSN != 0 {
		t.Fatalf("ack = %+v, want Total 3 DigestedLSN 0", ack)
	}
	ack, err = c.InsertBinaryAck(ctx, "h", []float64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Total != 5 {
		t.Fatalf("binary ack total = %v, want 5", ack.Total)
	}
}

// TestFanoutDescribe drives the whole scatter-gather read path over
// three in-process sites: each ingests one slice of the keyspace, and
// the global Describe must agree with the exact union of the slices.
func TestFanoutDescribe(t *testing.T) {
	var urls []string
	for _, site := range []string{"s0", "s1", "s2"} {
		_, ts := newSite(t, site)
		urls = append(urls, ts.URL)
	}
	f := NewFanout(urls, nil)
	ctx := context.Background()

	if err := f.CreateAll(ctx, CreateOptions{Name: "lat", Family: FamilyDADO, MemBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	// CreateAll is idempotent: a second pass hits 409s everywhere and
	// still succeeds.
	if err := f.CreateAll(ctx, CreateOptions{Name: "lat", Family: FamilyDADO, MemBytes: 2048}); err != nil {
		t.Fatalf("second CreateAll: %v", err)
	}

	// Site i holds keys congruent to i mod 3 of 0..2999.
	perSite := make([][]float64, 3)
	for v := 0; v < 3000; v++ {
		perSite[v%3] = append(perSite[v%3], float64(v))
	}
	for i, u := range urls {
		if _, err := New(u, nil).InsertBinary(ctx, "lat", perSite[i]); err != nil {
			t.Fatal(err)
		}
	}

	g, err := f.Describe(ctx, "lat", QuerySpec{
		Quantiles: []float64{0.5},
		CDF:       []float64{1499.5, 2999},
	}, DescribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Partial {
		t.Fatalf("Partial = true with all sites up: %+v", g.Sites)
	}
	if g.Total != 3000 {
		t.Fatalf("global total = %v, want 3000", g.Total)
	}
	if math.Abs(g.CDF[0]-0.5) > 0.05 {
		t.Fatalf("global CDF(1499.5) = %v, want ≈0.5", g.CDF[0])
	}
	if g.CDF[1] < 0.99 {
		t.Fatalf("global CDF(2999) = %v, want ≈1", g.CDF[1])
	}
	if math.Abs(g.Quantiles[0]-1500) > 150 {
		t.Fatalf("global median = %v, want ≈1500", g.Quantiles[0])
	}
	for i, sr := range g.Sites {
		if sr.Err != nil || sr.Total != 1000 {
			t.Fatalf("site %d result %+v, want Total 1000", i, sr)
		}
	}

	// A bucket budget reduces the union without breaking the answer.
	g2, err := f.Describe(ctx, "lat", QuerySpec{Buckets: true, CDF: []float64{1499.5}}, DescribeOptions{MaxBuckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Buckets) == 0 || len(g2.Buckets) > 16 {
		t.Fatalf("reduced union has %d buckets, want 1..16", len(g2.Buckets))
	}
	if math.Abs(g2.CDF[0]-0.5) > 0.1 {
		t.Fatalf("reduced CDF(1499.5) = %v, want ≈0.5", g2.CDF[0])
	}
}

// TestFanoutPartialAndTotalFailure pins graceful degradation: one dead
// site flags the answer Partial but still answers from the rest; all
// sites dead is an error.
func TestFanoutPartialAndTotalFailure(t *testing.T) {
	_, live := newSite(t, "s0")
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(dead.Close)

	ctx := context.Background()
	if _, err := New(live.URL, nil).Create(ctx, CreateOptions{Name: "lat", Family: FamilyDADO}); err != nil {
		t.Fatal(err)
	}
	if _, err := New(live.URL, nil).Insert(ctx, "lat", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}

	f := NewFanout([]string{live.URL, dead.URL}, nil)
	g, err := f.Describe(ctx, "lat", QuerySpec{}, DescribeOptions{})
	if err != nil {
		t.Fatalf("partial read: %v", err)
	}
	if !g.Partial {
		t.Fatal("Partial = false with a dead site")
	}
	if g.Total != 4 {
		t.Fatalf("partial total = %v, want 4 (the live site)", g.Total)
	}
	if g.Sites[0].Err != nil || g.Sites[1].Err == nil {
		t.Fatalf("site errors = [%v, %v], want [nil, non-nil]", g.Sites[0].Err, g.Sites[1].Err)
	}

	all := NewFanout([]string{dead.URL}, nil)
	if _, err := all.Describe(ctx, "lat", QuerySpec{}, DescribeOptions{}); err == nil {
		t.Fatal("all-sites-dead read: want error")
	}
}
