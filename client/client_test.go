package client

import (
	"context"
	"errors"
	"io"
	"log"
	"math"
	"net/http/httptest"
	"testing"

	"dynahist/internal/server"
	"dynahist/internal/wal"
)

// newPair wires a Client to a real in-process histserved handler.
func newPair(t *testing.T) (*Client, *server.Server) {
	t.Helper()
	s, err := server.New(server.Config{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = s.Close() })
	return New(ts.URL, ts.Client()), s
}

func TestClientLifecycle(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()

	if err := c.Healthy(ctx); err != nil {
		t.Fatal(err)
	}

	info, err := c.Create(ctx, CreateOptions{Name: "latency", Family: FamilyDADO, MemBytes: 2048, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "latency" || info.Shards != 4 {
		t.Fatalf("create info = %+v", info)
	}

	vs := make([]float64, 10000)
	for i := range vs {
		vs[i] = float64(i % 1000)
	}
	total, err := c.Insert(ctx, "latency", vs[:5000])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-5000) > 1e-6 {
		t.Fatalf("total after JSON insert = %v", total)
	}
	total, err = c.InsertBinary(ctx, "latency", vs[5000:])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-10000) > 1e-6 {
		t.Fatalf("total after binary insert = %v", total)
	}

	got, err := c.Total(ctx, "latency")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10000) > 1e-6 {
		t.Fatalf("Total = %v", got)
	}

	cdf, err := c.CDF(ctx, "latency", 499.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdf-0.5) > 0.05 {
		t.Fatalf("CDF(499.5) = %v", cdf)
	}

	median, err := c.Quantile(ctx, "latency", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(median-500) > 50 {
		t.Fatalf("median = %v", median)
	}

	count, err := c.Range(ctx, "latency", 0, 999)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(count-10000) > 100 {
		t.Fatalf("range count = %v", count)
	}

	buckets, err := c.Buckets(ctx, "latency")
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}

	// The batched query answers the same questions in one round trip,
	// off one pinned view — cross-check against the singles above.
	sum, err := c.Query(ctx, "latency", QuerySpec{
		Quantiles: []float64{0.5},
		CDF:       []float64{499.5},
		PDF:       []float64{500},
		Ranges:    []Range{{Lo: 0, Hi: 999}},
		Buckets:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Total-10000) > 1e-6 {
		t.Fatalf("Query total = %v", sum.Total)
	}
	if sum.Quantiles[0] != median || sum.CDF[0] != cdf || sum.Ranges[0] != count {
		t.Fatalf("Query answers %v/%v/%v diverge from single calls %v/%v/%v",
			sum.Quantiles[0], sum.CDF[0], sum.Ranges[0], median, cdf, count)
	}
	if len(sum.Buckets) != len(buckets) {
		t.Fatalf("Query buckets = %d, Buckets = %d", len(sum.Buckets), len(buckets))
	}
	if sum.PDF[0] <= 0 {
		t.Fatalf("PDF(500) = %v, want > 0", sum.PDF[0])
	}

	if _, err := c.Query(ctx, "latency", QuerySpec{Quantiles: []float64{2}}); err == nil {
		t.Fatal("Query with quantile 2: want error")
	}

	total, err = c.DeleteValues(ctx, "latency", vs[:100])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-9900) > 1e-6 {
		t.Fatalf("total after delete = %v", total)
	}

	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "latency" {
		t.Fatalf("list = %+v", list)
	}

	if err := c.Delete(ctx, "latency"); err != nil {
		t.Fatal(err)
	}
	list, err = c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("list after delete = %+v", list)
	}
}

func TestClientAPIErrors(t *testing.T) {
	c, _ := newPair(t)
	ctx := context.Background()

	_, err := c.Total(ctx, "ghost")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.StatusCode != 404 || apiErr.Message == "" {
		t.Fatalf("APIError = %+v", apiErr)
	}

	if _, err := c.Create(ctx, CreateOptions{Name: "h", Family: "nope"}); err == nil {
		t.Fatal("unsupported family: want error")
	}
	if _, err := c.Create(ctx, CreateOptions{Name: "ok", Family: FamilyDC}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(ctx, CreateOptions{Name: "ok", Family: FamilyDC}); err == nil {
		t.Fatal("duplicate create: want error")
	}
	if _, err := c.Quantile(ctx, "ok", 0.5); err == nil {
		t.Fatal("empty-histogram quantile: want error")
	}
	if _, err := c.Quantile(ctx, "ok", 2); err == nil {
		t.Fatal("out-of-range quantile: want error")
	}
}

func TestClientWALStatus(t *testing.T) {
	ctx := context.Background()

	// Without a WAL the endpoint still answers, with Enabled false.
	c, _ := newPair(t)
	st, err := c.WALStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatalf("WALStatus on a WAL-less server = %+v", st)
	}

	walDir := t.TempDir()
	s, err := server.New(server.Config{
		Logger:     log.New(io.Discard, "", 0),
		CatalogDir: t.TempDir(),
		WAL:        wal.Options{Dir: walDir, Sync: wal.SyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = s.Close() })
	cw := New(ts.URL, ts.Client())

	if _, err := cw.Create(ctx, CreateOptions{Name: "w", Family: FamilyDVO, MemBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	if _, err := cw.InsertBinary(ctx, "w", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	st, err = cw.WALStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Dir != walDir || st.SyncPolicy != "always" {
		t.Fatalf("WALStatus = %+v", st)
	}
	// The create and the insert were both logged; watermarks must be
	// internally consistent whatever the digester has reached.
	if st.AppendedLSN < 2 || st.Segments < 1 || st.TotalBytes <= 0 {
		t.Fatalf("WALStatus watermarks = %+v", st)
	}
	if st.DigestedLSN > st.AppendedLSN || st.LagRecords != st.AppendedLSN-st.DigestedLSN {
		t.Fatalf("WALStatus lag inconsistent: %+v", st)
	}
	if st.DigestLag != st.LagRecords {
		t.Fatalf("WALStatus DigestLag = %d, LagRecords = %d, want equal", st.DigestLag, st.LagRecords)
	}
}

func TestClientStats(t *testing.T) {
	ctx := context.Background()

	// Without -metrics the stats plane is not mounted: a 404 APIError.
	c, _ := newPair(t)
	if _, err := c.Stats(ctx); err == nil {
		t.Fatal("Stats on a metrics-less server: want error")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
			t.Fatalf("Stats on a metrics-less server: err = %v, want 404 *APIError", err)
		}
	}

	s, err := server.New(server.Config{
		Logger:  log.New(io.Discard, "", 0),
		Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = s.Close() })
	cm := New(ts.URL, ts.Client())

	if _, err := cm.Create(ctx, CreateOptions{Name: "s", Family: FamilyDADO, MemBytes: 1024}); err != nil {
		t.Fatal(err)
	}
	if _, err := cm.InsertBinary(ctx, "s", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// Same query twice: one cache miss, one hit.
	for i := 0; i < 2; i++ {
		if _, err := cm.Query(ctx, "s", QuerySpec{Quantiles: []float64{0.5}}); err != nil {
			t.Fatal(err)
		}
	}

	st, err := cm.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds <= 0 || st.Histograms != 1 {
		t.Fatalf("Stats header = %+v", st)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.HitRatio != 0.5 {
		t.Fatalf("Stats cache = %+v, want 1 hit / 1 miss / ratio 0.5", st.Cache)
	}
	if st.WAL.Enabled {
		t.Fatalf("Stats WAL = %+v, want disabled", st.WAL)
	}
	if st.Ingest.Batches != 1 || st.Ingest.Values != 4 {
		t.Fatalf("Stats ingest = %+v, want 1 batch of 4 values", st.Ingest)
	}
	ep, ok := st.Endpoints["query"]
	if !ok {
		t.Fatalf("Stats missing query endpoint: %v", st.Endpoints)
	}
	if ep.Requests != 2 || ep.Status["2xx"] != 2 || ep.LatencyP50 <= 0 {
		t.Fatalf("Stats query endpoint = %+v, want 2 requests, 2 2xx, positive latency", ep)
	}
}

func TestClientContextCancellation(t *testing.T) {
	c, _ := newPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.List(ctx); err == nil {
		t.Fatal("cancelled context: want error")
	}
}
