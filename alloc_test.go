package dynahist_test

// Allocation gates on the ingest spine. The flat-storage rewrite's
// contract is that steady-state ingest — once every arena and scratch
// buffer has grown to its working size — allocates nothing per value:
// binary decode into a warm buffer, shard routing through pooled
// groups, and the DVO/DADO batch maintenance all run on reused memory.
// These tests pin that with testing.AllocsPerRun so a future change
// that quietly puts an allocation back on the per-value path fails
// loudly instead of showing up as a GC regression in production.

import (
	"math/rand"
	"testing"

	"dynahist"
	"dynahist/internal/wire"
)

// warmDADO returns a DADO that has already ingested enough data for
// its arenas to be at their steady-state size.
func warmDADO(t testing.TB) dynahist.BatchWriter {
	t.Helper()
	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	if err != nil {
		t.Fatal(err)
	}
	bw := h.(dynahist.BatchWriter)
	rng := rand.New(rand.NewSource(7))
	batch := make([]float64, 256)
	for r := 0; r < 40; r++ {
		for j := range batch {
			batch[j] = float64(rng.Intn(5001))
		}
		if err := bw.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	return bw
}

// TestInsertBatchAllocs gates the core batch path: after warm-up,
// DVO.InsertBatch must not allocate. The bound is exact zero — the
// flat store's split/merge shuffles within grown capacity and the
// deferred pair cache reuses its arrays.
func TestInsertBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector's own bookkeeping allocates")
	}
	bw := warmDADO(t)
	rng := rand.New(rand.NewSource(8))
	batch := make([]float64, 256)
	allocs := testing.AllocsPerRun(50, func() {
		for j := range batch {
			batch[j] = float64(rng.Intn(5001))
		}
		if err := bw.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DADO InsertBatch allocated %.1f times per batch after warm-up, want 0", allocs)
	}
}

// TestBinaryIngestSpineAllocs gates the decode→route→apply chain that
// backs the server's binary ingest endpoint: wire.DecodeBatchInto into
// a warm buffer, then the sharded engine's batch path over pooled
// per-shard groups. Allowed allocations per batch: zero, amortised —
// the shard scratch lives in a sync.Pool whose entries the GC may
// reclaim between runs, so the gate tolerates a small fractional
// residue rather than flaking on a collection landing mid-measurement.
func TestBinaryIngestSpineAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector's own bookkeeping allocates")
	}
	eng, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	}, dynahist.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	vs := make([]float64, 256)
	for j := range vs {
		vs[j] = float64(rng.Intn(5001))
	}
	data, err := wire.EncodeBatch(vs)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 0, len(vs))

	// Warm up arenas, pools and pair caches.
	for r := 0; r < 40; r++ {
		out, err := wire.DecodeBatchInto(buf, data)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.InsertBatch(out); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(50, func() {
		out, err := wire.DecodeBatchInto(buf, data)
		if err != nil || len(out) != len(vs) {
			t.Fatalf("decode: len %d err %v", len(out), err)
		}
		if err := eng.InsertBatch(out); err != nil {
			t.Fatal(err)
		}
	})
	// 256 values per batch: anything at or above one alloc per batch is
	// a real per-batch allocation; below that is pool-reclaim residue.
	if allocs >= 1 {
		t.Errorf("binary ingest spine allocated %.2f times per batch after warm-up, want ~0", allocs)
	}
}
