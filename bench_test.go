package dynahist_test

// One testing.B benchmark per paper figure (the full-fidelity tables
// are produced by cmd/histbench; these benches run the same runners in
// quick mode so `go test -bench=.` exercises every experiment), plus
// micro-benchmarks for the per-update cost of each histogram — the §3.1
// and §4.4 cost analyses.

import (
	"context"
	"io"
	"log"
	"math/rand"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"dynahist"
	"dynahist/client"
	"dynahist/internal/experiments"
	"dynahist/internal/server"
	"dynahist/internal/wire"
)

func benchFigure(b *testing.B, id string) {
	runner, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("no runner for %s", id)
	}
	opts := experiments.Options{Seeds: 1, Points: 10000, Quick: true}
	b.ReportAllocs()
	for b.Loop() {
		if _, err := runner(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B)  { benchFigure(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchFigure(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchFigure(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchFigure(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchFigure(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchFigure(b, "fig17") }
func BenchmarkFig18(b *testing.B) { benchFigure(b, "fig18") }
func BenchmarkFig19(b *testing.B) { benchFigure(b, "fig19") }
func BenchmarkFig20(b *testing.B) { benchFigure(b, "fig20") }
func BenchmarkFig21(b *testing.B) { benchFigure(b, "fig21") }
func BenchmarkFig22(b *testing.B) { benchFigure(b, "fig22") }
func BenchmarkFig23(b *testing.B) { benchFigure(b, "fig23") }

func BenchmarkSec731(b *testing.B)             { benchFigure(b, "sec731") }
func BenchmarkAblationSubBuckets(b *testing.B) { benchFigure(b, "ablation-subbucket") }
func BenchmarkAblationAlphaMin(b *testing.B)   { benchFigure(b, "ablation-alphamin") }

// Micro-benchmarks: per-update cost of each maintained histogram at a
// 1KB budget over a 100k-value random stream (the paper's §3.1/§4.4
// cost comparison: DC is O(log n) per point, DVO/DADO O(n)).

func benchInsert(b *testing.B, build func() (dynahist.Histogram, error)) {
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 1<<16)
	for i := range values {
		values[i] = float64(rng.Intn(5001))
	}
	h, err := build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for b.Loop() {
		if err := h.Insert(values[i&(len(values)-1)]); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

func BenchmarkInsertDC(b *testing.B) {
	benchInsert(b, func() (dynahist.Histogram, error) { return dynahist.NewDCMemory(1024) })
}

func BenchmarkInsertDADO(b *testing.B) {
	benchInsert(b, func() (dynahist.Histogram, error) { return dynahist.NewDADOMemory(1024) })
}

func BenchmarkInsertDVO(b *testing.B) {
	benchInsert(b, func() (dynahist.Histogram, error) { return dynahist.NewDVOMemory(1024) })
}

func BenchmarkInsertAC(b *testing.B) {
	benchInsert(b, func() (dynahist.Histogram, error) { return dynahist.NewAC(1024, 20, 1) })
}

func BenchmarkEstimateRangeDADO(b *testing.B) {
	h, err := dynahist.NewDADOMemory(1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for range 100000 {
		if err := h.Insert(float64(rng.Intn(5001))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		_ = h.EstimateRange(1000, 2000)
	}
}

func BenchmarkStaticSSBMConstruction(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	values := make([]int, 100000)
	for i := range values {
		values[i] = rng.Intn(5001)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := dynahist.BuildStaticMemory(dynahist.SSBM, values, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStaticVOptimalConstruction(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	values := make([]int, 20000)
	for i := range values {
		values[i] = rng.Intn(1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := dynahist.BuildStatic(dynahist.VOptimal, values, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSubdivision(b *testing.B) { benchFigure(b, "ablation-subdivision") }
func BenchmarkMetricComparison(b *testing.B)    { benchFigure(b, "metric-comparison") }

func BenchmarkAblation2D(b *testing.B) { benchFigure(b, "ablation-2d") }

func BenchmarkConcurrency(b *testing.B) { benchFigure(b, "concurrency") }

// Concurrent-ingest benchmarks: the single-mutex Concurrent wrapper
// against the sharded engine at 8 writer goroutines and equal total
// memory (8 KB as one histogram vs 8 shards of 1 KB). RunParallel with
// SetParallelism(8) gives 8·GOMAXPROCS writer goroutines; b.N inserts
// are spread across them, so ns/op is comparable across the three.

const benchShardWriters = 8

func benchParallelIngest(b *testing.B, ins func(v float64) error) {
	values := make([]float64, 1<<16)
	rng := rand.New(rand.NewSource(6))
	for i := range values {
		values[i] = float64(rng.Intn(5001))
	}
	var goroutineSeed atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(benchShardWriters)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(goroutineSeed.Add(1)) * 7919
		for pb.Next() {
			if err := ins(values[i&(len(values)-1)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

func BenchmarkIngest8WritersConcurrent(b *testing.B) {
	h, err := dynahist.NewDADOMemory(8192)
	if err != nil {
		b.Fatal(err)
	}
	benchParallelIngest(b, dynahist.NewConcurrent(h).Insert)
}

func BenchmarkIngest8WritersSharded(b *testing.B) {
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.NewDADOMemory(8192 / benchShardWriters)
	}, dynahist.WithShards(benchShardWriters))
	if err != nil {
		b.Fatal(err)
	}
	benchParallelIngest(b, s.Insert)
}

// BenchmarkInsertBatchDADO measures the native batch write path of a
// single DADO: counter increments applied per value, the split-merge
// settle once per 256-value batch. One op is one batch; compare
// ns/op ÷ 256 against BenchmarkInsertDADO's ns/op to read the
// deferred-maintenance win (the "value/ns" metric reports throughput
// directly).
func BenchmarkInsertBatchDADO(b *testing.B) {
	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	if err != nil {
		b.Fatal(err)
	}
	bw := h.(dynahist.BatchWriter)
	values := make([]float64, 1<<16)
	rng := rand.New(rand.NewSource(5))
	for i := range values {
		values[i] = float64(rng.Intn(5001))
	}
	const batch = 256
	off := 0
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if err := bw.InsertBatch(values[off : off+batch]); err != nil {
			b.Fatal(err)
		}
		off = (off + batch) & (len(values) - 1)
	}
	b.ReportMetric(float64(batch)*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "value/ns")
}

// BenchmarkInsertBatchSharded is the batch-first acceptance benchmark:
// the 8-writer sharded engine fed 256-value batches, each batch one
// striping pass, at most one lock hold per shard, and the members' own
// deferred-maintenance batch path. One op is one batch; compare
// ns/op ÷ 256 against BenchmarkIngest8WritersSharded's per-value
// ns/op.
func BenchmarkInsertBatchSharded(b *testing.B) {
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(8192/benchShardWriters))
	}, dynahist.WithShards(benchShardWriters))
	if err != nil {
		b.Fatal(err)
	}
	values := make([]float64, 1<<16)
	rng := rand.New(rand.NewSource(7))
	for i := range values {
		values[i] = float64(rng.Intn(5001))
	}
	const batch = 256
	var goroutineSeed atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(benchShardWriters)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		off := (int(goroutineSeed.Add(1)) * 7919) % (len(values) - batch)
		for pb.Next() {
			// One batched call counts as `batch` inserts' worth of work;
			// ns/op here is per batch, not per value.
			if err := s.InsertBatch(values[off : off+batch]); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(batch)*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "value/ns")
}

// Ingest-over-HTTP benchmarks: the full serving stack — client
// encoding, loopback HTTP, server decoding, registry lookup, sharded
// InsertBatch — at 8 concurrent clients, for both wire encodings. One
// op is one batchSize-value request, so compare ns/op ÷ batchSize
// against the in-process 8-writer benchmarks above to read the
// network+codec tax, and the PerValue variant (batchSize 1) against
// the batched ones to read why the serving path is batch-first: every
// value shipped alone pays the whole HTTP round trip.

const benchHTTPBatch = 512

func benchHTTPIngest(b *testing.B, binary bool, batchSize int) {
	srv, err := server.New(server.Config{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := srv.Registry().Create(wire.CreateRequest{
		Name: "bench", Family: server.FamilyDC, MemBytes: 1024, Shards: benchShardWriters,
	}); err != nil {
		b.Fatal(err)
	}

	values := make([]float64, 1<<16)
	rng := rand.New(rand.NewSource(9))
	for i := range values {
		values[i] = float64(rng.Intn(5001))
	}
	ctx := context.Background()
	var goroutineSeed atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(benchShardWriters)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := client.New(ts.URL, ts.Client())
		off := (int(goroutineSeed.Add(1)) * 7919) % (len(values) - batchSize)
		for pb.Next() {
			chunk := values[off : off+batchSize]
			var err error
			if binary {
				_, err = c.InsertBinary(ctx, "bench", chunk)
			} else {
				_, err = c.Insert(ctx, "bench", chunk)
			}
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(batchSize)*float64(b.N)/float64(b.Elapsed().Nanoseconds()), "value/ns")
}

func BenchmarkHTTPIngest8ClientsBinary(b *testing.B) { benchHTTPIngest(b, true, benchHTTPBatch) }
func BenchmarkHTTPIngest8ClientsJSON(b *testing.B)   { benchHTTPIngest(b, false, benchHTTPBatch) }

// BenchmarkHTTPIngest8ClientsPerValue ships one value per request —
// what a non-batching client costs on the serving path. Its value/ns
// throughput sits orders of magnitude under the batched variants.
func BenchmarkHTTPIngest8ClientsPerValue(b *testing.B) { benchHTTPIngest(b, true, 1) }

func BenchmarkServing(b *testing.B) { benchFigure(b, "serving") }

// Read-plane benchmarks: 10 quantiles per op against a warm 8-shard
// engine with a ≥64-bucket merged view. ViewQuantiles pins one View
// (an epoch-cache hit) and answers off its prefix sums in O(log n)
// each; DirectQuantiles is the pre-redesign path — every call clones
// the merged bucket list and walks it linearly. Their ratio is what
// the TestPinnedViewSpeedupGate acceptance gate (≥3×) protects.

func benchQuantileEngine(b *testing.B) *dynahist.Sharded {
	b.Helper()
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	}, dynahist.WithShards(benchShardWriters))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = float64(rng.Intn(5001))
	}
	if err := s.InsertBatch(vals); err != nil {
		b.Fatal(err)
	}
	return s
}

var benchQuantileArgs = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.9, 0.99}

func BenchmarkViewQuantiles(b *testing.B) {
	s := benchQuantileEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		v, err := s.View()
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range benchQuantileArgs {
			if _, err := v.Quantile(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDirectQuantiles(b *testing.B) {
	s := benchQuantileEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		for _, q := range benchQuantileArgs {
			if _, err := dynahist.Quantile(s, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkHTTPBatchQuery measures the serving read path end to end:
// one POST /v1/h/{name}/query answering a mixed batch (total + 10
// quantiles + 5 CDF points + 2 ranges) from one pinned view, at 8
// concurrent clients. Compare one op here against 18 round trips of
// the per-statistic GETs to read the batch win.
func BenchmarkHTTPBatchQuery(b *testing.B) {
	srv, err := server.New(server.Config{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := srv.Registry().Create(wire.CreateRequest{
		Name: "bench", Family: server.FamilyDADO, MemBytes: 1024, Shards: benchShardWriters,
	}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = float64(rng.Intn(5001))
	}
	seed := client.New(ts.URL, ts.Client())
	if _, err := seed.InsertBinary(context.Background(), "bench", vals); err != nil {
		b.Fatal(err)
	}
	spec := client.QuerySpec{
		Quantiles: benchQuantileArgs,
		CDF:       []float64{500, 1500, 2500, 3500, 4500},
		Ranges:    []client.Range{{Lo: 1000, Hi: 2000}, {Lo: 4000, Hi: 5000}},
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.SetParallelism(benchShardWriters)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := client.New(ts.URL, ts.Client())
		for pb.Next() {
			if _, err := c.Query(ctx, "bench", spec); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkShardedRead measures the epoch-cached read path: after a
// write-heavy warmup, every CDF call but the first is served from the
// cached merged snapshot without touching any shard lock.
func BenchmarkShardedRead(b *testing.B) {
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.NewDADOMemory(1024)
	}, dynahist.WithShards(benchShardWriters))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for range 100000 {
		if err := s.Insert(float64(rng.Intn(5001))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		_ = s.CDF(2500)
	}
}
