package dynahist_test

import (
	"math"
	"math/rand"
	"testing"

	"dynahist"
)

func TestEDDadoPublic(t *testing.T) {
	h, err := dynahist.NewEDDadoMemory(dynahist.AbsDeviation, 1024)
	if err != nil {
		t.Fatal(err)
	}
	values := randomValues(11, 8000, 800)
	for _, v := range values {
		if err := h.Insert(float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Total() != 8000 {
		t.Fatalf("Total = %v", h.Total())
	}
	if got := h.EstimateRange(0, 800); math.Abs(got-8000) > 1e-6 {
		t.Fatalf("whole-range estimate %v", got)
	}
	ks, err := dynahist.KS(h, values)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 0.1 {
		t.Fatalf("ED-DADO KS %v implausibly bad", ks)
	}
	if err := h.Delete(float64(values[0])); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 7999 {
		t.Fatalf("Total after delete = %v", h.Total())
	}
	if _, err := dynahist.NewEDDado(dynahist.AbsDeviation, 1); err == nil {
		t.Error("1 bucket: want error")
	}
	var _ dynahist.Histogram = h // interface compliance
}

func TestHistogram2DPublic(t *testing.T) {
	domain := dynahist.Rect2D{X0: 0, X1: 500, Y0: 0, Y1: 500}
	h, err := dynahist.New2D(domain, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for range 20000 {
		p := dynahist.Point2D{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		if err := h.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if h.Total() != 20000 {
		t.Fatalf("Total = %v", h.Total())
	}
	if h.NumLeaves() > h.MaxLeaves() {
		t.Fatalf("leaves %d over budget %d", h.NumLeaves(), h.MaxLeaves())
	}
	// Uniform data: a quarter-domain query holds ≈ a quarter of rows.
	q := dynahist.Rect2D{X0: 0, X1: 250, Y0: 0, Y1: 250}
	if sel := h.Selectivity(q); math.Abs(sel-0.25) > 0.05 {
		t.Errorf("quarter-domain selectivity %v, want ≈0.25", sel)
	}
	if err := h.Delete(dynahist.Point2D{X: 10, Y: 10}); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 19999 {
		t.Fatalf("Total after delete = %v", h.Total())
	}
	leaves := h.Leaves()
	mass := 0.0
	for _, l := range leaves {
		mass += l.Count
	}
	if math.Abs(mass-19999) > 1e-6 {
		t.Fatalf("leaf mass %v", mass)
	}
	if _, err := dynahist.New2DMemory(domain, 10); err == nil {
		t.Error("10 bytes: want error")
	}
}
