package dynahist_test

import (
	"errors"
	"math/rand"
	"testing"

	"dynahist"
	"dynahist/internal/approx"
	"dynahist/internal/core"
)

// envelopeBlobs builds one valid snapshot envelope per kind for the
// decoder tests and the fuzzer's seed corpus.
func envelopeBlobs(t testing.TB) map[dynahist.Kind][]byte {
	fs, is := kindValues(600)
	out := map[dynahist.Kind][]byte{}
	for _, kind := range matrixKinds {
		opts := []dynahist.Option{dynahist.WithMemory(512)}
		switch {
		case kind == dynahist.KindAC:
			opts = append(opts, dynahist.WithSeed(3))
		case !kind.Maintained():
			opts = append(opts, dynahist.WithValues(is))
		}
		h, err := dynahist.New(kind, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if kind.Maintained() {
			if err := dynahist.InsertAll(h, fs); err != nil {
				t.Fatal(err)
			}
		}
		blob, err := h.(dynahist.Snapshotter).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		out[kind] = blob
	}
	s, err := dynahist.NewSharded(func() (dynahist.Histogram, error) {
		return dynahist.New(dynahist.KindDC, dynahist.WithMemory(256))
	}, dynahist.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InsertBatch(fs); err != nil {
		t.Fatal(err)
	}
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	out[dynahist.KindSharded] = blob
	return out
}

// TestRestoreRejectsTruncation slices every valid envelope short at
// several points; each prefix must fail cleanly with ErrBadSnapshot,
// never panic or succeed.
func TestRestoreRejectsTruncation(t *testing.T) {
	for kind, blob := range envelopeBlobs(t) {
		for _, n := range []int{0, 1, 4, 6, 7, len(blob) / 2, len(blob) - 1} {
			if n >= len(blob) {
				continue
			}
			if _, err := dynahist.Restore(blob[:n]); err == nil {
				t.Errorf("%v: Restore of %d/%d-byte prefix succeeded", kind, n, len(blob))
			}
		}
	}
}

// TestRestoreRejectsForeignKind rewrites each envelope's kind tag to
// every other kind; the payload no longer matches the tag, so Restore
// must reject (or, where the payload happens to parse under a sibling
// static kind, at minimum not panic and not misreport).
func TestRestoreRejectsForeignKind(t *testing.T) {
	blobs := envelopeBlobs(t)
	staticOf := func(k dynahist.Kind) bool { return !k.Maintained() && k != dynahist.KindSharded }
	for kind, blob := range blobs {
		for _, foreign := range []dynahist.Kind{
			dynahist.KindDADO, dynahist.KindDC, dynahist.KindAC,
			dynahist.KindSharded, dynahist.KindSSBM, dynahist.Kind(99),
		} {
			if foreign == kind {
				continue
			}
			// The static kinds share one payload format by design: a
			// retagged static envelope legitimately restores under the
			// foreign static tag.
			if staticOf(kind) && staticOf(foreign) {
				continue
			}
			mutated := append([]byte(nil), blob...)
			mutated[6] = byte(foreign)
			if h, err := dynahist.Restore(mutated); err == nil {
				t.Errorf("%v envelope retagged %v restored as %v", kind, foreign, dynahist.KindOf(h))
			}
		}
	}
}

// TestRestoreRejectsDeepNesting wraps a valid envelope in sharded
// framing far past the nesting cap; the decoder must reject it
// cleanly instead of recursing into a stack overflow.
func TestRestoreRejectsDeepNesting(t *testing.T) {
	h, err := dynahist.New(dynahist.KindDC, dynahist.WithMemory(256))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := h.(dynahist.Snapshotter).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wrap := func(inner []byte) []byte {
		out := []byte{0x44, 0x48, 0x45, 0x56, 1, 0, byte(dynahist.KindSharded)}
		out = append(out, 0)          // policy
		out = append(out, 0, 0, 0, 0) // merge budget
		out = append(out, 1, 0, 0, 0) // one shard
		n := uint32(len(inner))
		out = append(out, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		return append(out, inner...)
	}
	for range 64 {
		blob = wrap(blob)
	}
	if _, err := dynahist.Restore(blob); !errors.Is(err, dynahist.ErrBadSnapshot) {
		t.Fatalf("64-deep sharded nesting: %v, want ErrBadSnapshot", err)
	}
}

// TestRestoreRejectsTrailingGarbage appends bytes to a sharded
// envelope, whose framed payload must notice.
func TestRestoreRejectsTrailingGarbage(t *testing.T) {
	blob := envelopeBlobs(t)[dynahist.KindSharded]
	if _, err := dynahist.Restore(append(append([]byte(nil), blob...), 0xEE)); !errors.Is(err, dynahist.ErrBadSnapshot) {
		t.Errorf("trailing garbage on sharded envelope: %v, want ErrBadSnapshot", err)
	}
}

// TestRestoreLegacyBlobs feeds Restore the raw pre-envelope snapshot
// blobs of internal/core and internal/approx — the format the PR-3
// catalogs stored — and checks they still come back as the right
// types.
func TestRestoreLegacyBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))

	dc, err := core.NewDCMemory(512)
	if err != nil {
		t.Fatal(err)
	}
	dvo, err := core.NewDVOMemory(512)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := approx.New(512, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	for range 2000 {
		v := float64(rng.Intn(1000))
		if err := dc.Insert(v); err != nil {
			t.Fatal(err)
		}
		if err := dvo.Insert(v); err != nil {
			t.Fatal(err)
		}
		if err := ac.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		name string
		blob func() ([]byte, error)
		want dynahist.Kind
	}{
		{"dc", dc.Snapshot, dynahist.KindDC},
		{"dvo", dvo.Snapshot, dynahist.KindDVO},
		{"ac", ac.Snapshot, dynahist.KindAC},
	} {
		raw, err := tc.blob()
		if err != nil {
			t.Fatal(err)
		}
		h, err := dynahist.Restore(raw)
		if err != nil {
			t.Fatalf("%s: Restore of legacy blob: %v", tc.name, err)
		}
		if got := dynahist.KindOf(h); got != tc.want {
			t.Errorf("%s: legacy blob restored as %v, want %v", tc.name, got, tc.want)
		}
	}
}

// FuzzRestore is the envelope decoder fuzzer: any input must either
// fail cleanly or produce a histogram whose own Snapshot round-trips
// back through Restore at the same kind.
func FuzzRestore(f *testing.F) {
	for _, blob := range envelopeBlobs(f) {
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte("DHEV"))
	f.Add([]byte{0x44, 0x48, 0x45, 0x56, 1, 0, 5, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := dynahist.Restore(data)
		if err != nil {
			return
		}
		s, ok := h.(dynahist.Snapshotter)
		if !ok {
			t.Fatalf("restored %T does not snapshot", h)
		}
		blob, err := s.Snapshot()
		if err != nil {
			t.Fatalf("re-snapshot of restored histogram: %v", err)
		}
		h2, err := dynahist.Restore(blob)
		if err != nil {
			t.Fatalf("re-restore: %v", err)
		}
		if dynahist.KindOf(h2) != dynahist.KindOf(h) {
			t.Fatalf("kind drift across round trip: %v → %v", dynahist.KindOf(h), dynahist.KindOf(h2))
		}
		if a, b := h.Total(), h2.Total(); a != b {
			t.Fatalf("total drift across round trip: %v → %v", a, b)
		}
	})
}
