package dynahist_test

// Flat-vs-reference equivalence: the goldens under
// testdata/flat_equiv were produced by replaying these exact
// workloads through the pre-rewrite per-bucket storage implementation
// (the tree as of the commit before the flat-arena Store landed). The
// rewrite moved every histogram family onto contiguous arrays but was
// required to preserve the maintenance semantics bit-for-bit up to
// float reassociation, so the current implementation must reproduce
// the same bucket lists and CDF curves within 1e-9.
//
// The workload generation here must stay byte-identical to the
// generator that produced the goldens; changing it (or the golden
// files) silently voids the equivalence claim. Regenerate goldens only
// from a known-good reference build.

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dynahist"
)

type equivDump struct {
	Family   string      `json:"family"`
	Workload string      `json:"workload"`
	Total    float64     `json:"total"`
	Buckets  [][]float64 `json:"buckets"`
	Probes   []float64   `json:"probes"`
	CDF      []float64   `json:"cdf"`
}

func equivValues(wl string, n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	vs := make([]float64, n)
	switch wl {
	case "uniform":
		for i := range vs {
			vs[i] = float64(rng.Intn(5001))
		}
	case "normal":
		for i := range vs {
			vs[i] = math.Round(2500 + 400*rng.NormFloat64())
		}
	case "zipf":
		z := rand.NewZipf(rng, 1.3, 1, 4000)
		for i := range vs {
			vs[i] = float64(z.Uint64())
		}
	case "drift":
		for i := range vs {
			vs[i] = math.Round(float64(i)/4 + 200*rng.NormFloat64())
		}
	default:
		panic("unknown workload " + wl)
	}
	return vs
}

func equivBuild(f string) (dynahist.Histogram, error) {
	switch f {
	case "dado":
		return dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	case "dvo":
		return dynahist.New(dynahist.KindDVO, dynahist.WithMemory(1024))
	case "dc":
		return dynahist.New(dynahist.KindDC, dynahist.WithMemory(1024))
	case "eddado":
		return dynahist.NewEDDado(dynahist.AbsDeviation, 40)
	}
	return nil, fmt.Errorf("unknown family %s", f)
}

func equivReplay(h dynahist.Histogram, vs []float64) error {
	i := 0
	for ; i < 1000 && i < len(vs); i++ {
		if err := h.Insert(vs[i]); err != nil {
			return err
		}
	}
	for ; i < len(vs); i += 137 {
		end := i + 137
		if end > len(vs) {
			end = len(vs)
		}
		if err := dynahist.InsertAll(h, vs[i:end]); err != nil {
			return err
		}
	}
	for j := 0; j < 500; j += 2 {
		if err := h.Delete(vs[j]); err != nil {
			return err
		}
	}
	return nil
}

func TestFlatStoreMatchesReference(t *testing.T) {
	const tol = 1e-9
	for _, f := range []string{"dado", "dvo", "dc", "eddado"} {
		for _, wl := range []string{"uniform", "normal", "zipf", "drift"} {
			t.Run(f+"/"+wl, func(t *testing.T) {
				raw, err := os.ReadFile(filepath.Join("testdata", "flat_equiv", f+"_"+wl+".json"))
				if err != nil {
					t.Fatalf("reading golden: %v", err)
				}
				var want equivDump
				if err := json.Unmarshal(raw, &want); err != nil {
					t.Fatalf("parsing golden: %v", err)
				}

				h, err := equivBuild(f)
				if err != nil {
					t.Fatal(err)
				}
				if err := equivReplay(h, equivValues(wl, 20000)); err != nil {
					t.Fatal(err)
				}

				if got := h.Total(); math.Abs(got-want.Total) > tol {
					t.Errorf("total = %v, reference %v", got, want.Total)
				}
				bs := h.Buckets()
				if len(bs) != len(want.Buckets) {
					t.Fatalf("%d buckets, reference has %d", len(bs), len(want.Buckets))
				}
				for i, b := range bs {
					ref := want.Buckets[i]
					if len(ref) != 2+len(b.Counters) {
						t.Fatalf("bucket %d: %d counters, reference row has %d fields", i, len(b.Counters), len(ref))
					}
					if math.Abs(b.Left-ref[0]) > tol || math.Abs(b.Right-ref[1]) > tol {
						t.Errorf("bucket %d range [%v,%v), reference [%v,%v)", i, b.Left, b.Right, ref[0], ref[1])
					}
					for j, c := range b.Counters {
						if math.Abs(c-ref[2+j]) > tol {
							t.Errorf("bucket %d counter %d = %v, reference %v", i, j, c, ref[2+j])
						}
					}
				}
				for i, x := range want.Probes {
					if got := h.CDF(x); math.Abs(got-want.CDF[i]) > tol {
						t.Errorf("CDF(%v) = %v, reference %v", x, got, want.CDF[i])
					}
				}
			})
		}
	}
}
