package tuner

import (
	"math"
	"testing"

	"dynahist/internal/histogram"
)

// uniformStore builds n contiguous unit-count buckets of width w
// starting at lo, k sub-counters each.
func uniformStore(t *testing.T, lo, w float64, n, k int, perBucket float64) *histogram.Store {
	t.Helper()
	buckets := make([]histogram.Bucket, n)
	for i := range buckets {
		subs := make([]float64, k)
		for j := range subs {
			subs[j] = perBucket / float64(k)
		}
		buckets[i] = histogram.Bucket{
			Left:  lo + float64(i)*w,
			Right: lo + float64(i+1)*w,
			Subs:  subs,
		}
	}
	st, err := histogram.StoreOfBuckets(buckets, k)
	if err != nil {
		t.Fatalf("StoreOfBuckets: %v", err)
	}
	return st
}

func TestObserveValidation(t *testing.T) {
	tu := New(Config{})
	bad := []Record{
		{Lo: math.NaN(), Hi: 1, Observed: 1},
		{Lo: 0, Hi: math.Inf(1), Observed: 1},
		{Lo: 5, Hi: 1, Observed: 1},
		{Lo: 0, Hi: 1, Observed: -3},
		{Lo: 0, Hi: 1, Observed: math.NaN()},
		{Lo: 0, Hi: 1, Observed: 1, Estimated: math.Inf(-1)},
	}
	for i, rec := range bad {
		if err := tu.Observe(rec); err == nil {
			t.Errorf("record %d: want validation error, got nil", i)
		}
	}
	if tu.Len() != 0 {
		t.Fatalf("invalid records journaled: len=%d", tu.Len())
	}
	if err := tu.Observe(Record{Lo: 0, Hi: 10, Estimated: 5, Observed: 8}); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	if tu.Len() != 1 || tu.Rounds() != 1 {
		t.Fatalf("len=%d rounds=%d, want 1/1", tu.Len(), tu.Rounds())
	}
}

func TestJournalBound(t *testing.T) {
	tu := New(Config{MaxJournal: 4})
	for i := 0; i < 10; i++ {
		if err := tu.Observe(Record{Lo: float64(i), Hi: float64(i), Observed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if tu.Len() != 4 {
		t.Fatalf("journal len %d, want 4", tu.Len())
	}
	if tu.Rounds() != 10 {
		t.Fatalf("rounds %d, want 10", tu.Rounds())
	}
	// The survivors are the newest four: Lo 6..9.
	tu.mu.Lock()
	for i, rec := range tu.journal {
		if want := float64(6 + i); rec.Lo != want {
			t.Errorf("journal[%d].Lo = %v, want %v", i, rec.Lo, want)
		}
	}
	tu.mu.Unlock()
}

func TestSnapshotRoundTrip(t *testing.T) {
	tu := New(Config{MaxJournal: 8})
	recs := []Record{
		{Lo: 0, Hi: 9, Estimated: 50, Observed: 80},
		{Lo: 10, Hi: 19, Estimated: 50, Observed: 20},
		{Lo: 2.5, Hi: 2.5, Estimated: 5, Observed: 0},
	}
	for _, rec := range recs {
		if err := tu.Observe(rec); err != nil {
			t.Fatal(err)
		}
	}
	blob := tu.Snapshot()
	got, err := FromSnapshot(blob, Config{MaxJournal: 8})
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	if got.Len() != len(recs) || got.Rounds() != tu.Rounds() {
		t.Fatalf("restored len=%d rounds=%d, want %d/%d",
			got.Len(), got.Rounds(), len(recs), tu.Rounds())
	}
	got.mu.Lock()
	for i, rec := range got.journal {
		if rec != recs[i] {
			t.Errorf("journal[%d] = %+v, want %+v", i, rec, recs[i])
		}
	}
	got.mu.Unlock()

	// Corrupt blobs fail soft-but-loud.
	for _, bad := range [][]byte{nil, blob[:3], append([]byte("XXXX"), blob[4:]...), blob[:len(blob)-1]} {
		if _, err := FromSnapshot(bad, Config{}); err == nil {
			t.Errorf("FromSnapshot(%d bytes): want error", len(bad))
		}
	}
}

// TestAdjustReducesError: a uniform overlay told repeatedly that a
// sub-range holds far more mass than estimated must shrink its
// absolute estimation error on that range, without going negative
// anywhere or breaking the store invariants.
func TestAdjustReducesError(t *testing.T) {
	st := uniformStore(t, 0, 10, 10, 2, 100) // [0,100), 1000 points uniform
	tu := New(Config{})

	lo, hi := 20.0, 39.0 // inclusive ints → mass over [20, 40)
	observed := 600.0
	before := math.Abs(EstimateRange(st, lo, hi) - observed)
	for round := 0; round < 5; round++ {
		est := EstimateRange(st, lo, hi)
		if err := tu.Observe(Record{Lo: lo, Hi: hi, Estimated: est, Observed: observed}); err != nil {
			t.Fatal(err)
		}
	}
	fresh := uniformStore(t, 0, 10, 10, 2, 100)
	tu.ApplyTo(fresh)
	after := math.Abs(EstimateRange(fresh, lo, hi) - observed)
	if after >= before {
		t.Fatalf("error did not shrink: before=%v after=%v", before, after)
	}
	if err := fresh.Validate(); err != nil {
		t.Fatalf("store invalid after tuning: %v", err)
	}
}

// TestBorderNudgeConvergence: feedback whose endpoints sit mid-bucket
// must pull shared borders toward them, bounded so no bucket
// collapses and the store stays valid over many rounds.
func TestBorderNudgeConvergence(t *testing.T) {
	tu := New(Config{})
	lo, hi := 14.0, 25.0
	for i := 0; i < 50; i++ {
		if err := tu.Observe(Record{Lo: lo, Hi: hi, Estimated: 100, Observed: 400}); err != nil {
			t.Fatal(err)
		}
	}
	st := uniformStore(t, 0, 10, 10, 2, 100)
	tu.ApplyTo(st)
	if err := st.Validate(); err != nil {
		t.Fatalf("store invalid after 50 rounds: %v", err)
	}
	for i := 0; i < st.Len(); i++ {
		if st.Width(i) <= 0 {
			t.Fatalf("bucket %d collapsed to width %v", i, st.Width(i))
		}
	}
	// Some border should have moved toward the endpoint at 14.
	movedToward := false
	for i := 0; i < st.Len(); i++ {
		if d := math.Abs(st.Left(i) - lo); d < 6-1e-9 { // started ≥ 4 away (10 or 20)
			movedToward = true
		}
	}
	if !movedToward {
		t.Fatalf("no border moved toward endpoint %v", lo)
	}
}

// TestGapSkipsBorderMove: a border facing a gap between buckets must
// not move (that would fabricate or discard coverage), and feedback
// landing wholly inside a gap is a no-op.
func TestGapSkipsBorderMove(t *testing.T) {
	buckets := []histogram.Bucket{
		{Left: 0, Right: 10, Subs: []float64{50, 50}},
		{Left: 20, Right: 30, Subs: []float64{50, 50}}, // gap [10,20)
	}
	st, err := histogram.StoreOfBuckets(buckets, 2)
	if err != nil {
		t.Fatal(err)
	}
	tu := New(Config{})
	// Endpoint at 8 is nearer bucket 0's right border, which faces the
	// gap: the border must stay at 10.
	for i := 0; i < 10; i++ {
		if err := tu.Observe(Record{Lo: 8, Hi: 8, Estimated: 10, Observed: 40}); err != nil {
			t.Fatal(err)
		}
	}
	tu.ApplyTo(st)
	if st.Right(0) != 10 || st.Left(1) != 20 {
		t.Fatalf("gap-facing borders moved: [%v, %v]", st.Right(0), st.Left(1))
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}

	// Feedback wholly inside the gap leaves the store untouched.
	before := st.TotalMass()
	gap := New(Config{})
	if err := gap.Observe(Record{Lo: 12, Hi: 18, Estimated: 0, Observed: 99}); err != nil {
		t.Fatal(err)
	}
	gap.ApplyTo(st)
	if st.TotalMass() != before {
		t.Fatalf("gap feedback changed mass: %v → %v", before, st.TotalMass())
	}
}

// TestZeroMassRangeGrows: feedback on a range the overlay holds no
// mass in must still be able to add mass (width-proportional
// fallback), capped so counters never go negative.
func TestZeroMassRangeGrows(t *testing.T) {
	buckets := []histogram.Bucket{
		{Left: 0, Right: 10, Subs: []float64{0, 0}},
		{Left: 10, Right: 20, Subs: []float64{100, 100}},
	}
	st, err := histogram.StoreOfBuckets(buckets, 2)
	if err != nil {
		t.Fatal(err)
	}
	tu := New(Config{})
	if err := tu.Observe(Record{Lo: 0, Hi: 9, Estimated: 0, Observed: 40}); err != nil {
		t.Fatal(err)
	}
	tu.ApplyTo(st)
	got := EstimateRange(st, 0, 9)
	if !(got > 0) {
		t.Fatalf("zero-mass range did not grow: estimate %v", got)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestOverestimateClampsAtZero: shrinking feedback can at most empty
// the overlapping counters, never drive them negative.
func TestOverestimateClampsAtZero(t *testing.T) {
	st := uniformStore(t, 0, 10, 4, 2, 10) // 40 points over [0,40)
	tu := New(Config{Alpha: 1})
	for i := 0; i < 20; i++ {
		if err := tu.Observe(Record{Lo: 0, Hi: 39, Estimated: 40, Observed: 0}); err != nil {
			t.Fatal(err)
		}
	}
	tu.ApplyTo(st)
	if err := st.Validate(); err != nil {
		t.Fatalf("negative counters after shrink: %v", err)
	}
	if m := st.TotalMass(); m < 0 || m > 40 {
		t.Fatalf("total mass %v out of [0, 40]", m)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.normalized()
	if c.Alpha != DefaultAlpha || c.BorderStep != DefaultBorderStep ||
		c.MaxBorderFrac != DefaultMaxBorderFrac || c.MaxScale != DefaultMaxScale ||
		c.MaxJournal != DefaultMaxJournal {
		t.Fatalf("zero config did not normalize to defaults: %+v", c)
	}
	bad := Config{Alpha: -1, BorderStep: 7, MaxBorderFrac: 1, MaxScale: 0.5, MaxJournal: -2}.normalized()
	if bad != c {
		t.Fatalf("out-of-range config did not normalize: %+v", bad)
	}
}
