// Package tuner implements query-feedback-driven self-tuning for the
// served histograms, after the ST-histogram learning loop: each
// executed range predicate reports the count the histogram *estimated*
// and the count the execution actually *observed*, and the tuner nudges
// bucket counts and borders so the next estimate lands closer.
//
// The tuner never touches the live maintained histogram. It keeps a
// bounded journal of feedback records and replays them onto an overlay
// — a flat histogram.Store built from the merged view's buckets — so
// tuning composes with, rather than fights, the engine's own
// split/merge maintenance: every new view epoch starts from the
// freshly maintained buckets and re-applies the journal on top.
//
// Adjustments are bounded per record: count changes are damped by
// Alpha and capped at a MaxScale factor per bucket, border moves cover
// at most BorderStep of the distance to the predicate endpoint and
// never more than MaxBorderFrac of the narrower adjacent bucket. A
// replayed record recomputes its error against the *current* overlay
// (the recorded estimate is provenance only), so replaying the journal
// onto different starting buckets stays meaningful.
package tuner

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"dynahist/internal/histerr"
	"dynahist/internal/histogram"
)

// Record is one unit of query feedback: the histogram estimated
// Estimated points in the inclusive integer range [Lo, Hi] (mass over
// [Lo, Hi+1), the View.EstimateRange convention), and the executed
// query observed Observed.
type Record struct {
	Lo        float64
	Hi        float64
	Estimated float64
	Observed  float64
}

// Config bounds how far one feedback record may move the overlay.
// Zero fields take the defaults below.
type Config struct {
	// Alpha is the fraction of the estimation error absorbed per
	// record (0 < Alpha ≤ 1). Default 0.5.
	Alpha float64
	// BorderStep is the fraction of the distance between a predicate
	// endpoint and the nearest shared border that one record moves
	// that border. Default 0.25.
	BorderStep float64
	// MaxBorderFrac caps any single border move at this fraction of
	// the narrower adjacent bucket's width, so a move can never
	// collapse a bucket. Default 0.4.
	MaxBorderFrac float64
	// MaxScale caps the per-record change of one bucket's count at a
	// factor of MaxScale growth (or 1/MaxScale shrink). Default 2.
	MaxScale float64
	// MaxJournal bounds the journal length; the oldest records are
	// evicted first. Default 256.
	MaxJournal int
}

// Defaults for zero Config fields.
const (
	DefaultAlpha         = 0.5
	DefaultBorderStep    = 0.25
	DefaultMaxBorderFrac = 0.4
	DefaultMaxScale      = 2.0
	DefaultMaxJournal    = 256
)

// massEps is the threshold below which a mass is treated as zero when
// choosing proportional weights.
const massEps = 1e-9

func (c Config) normalized() Config {
	if !(c.Alpha > 0) || c.Alpha > 1 || math.IsNaN(c.Alpha) {
		c.Alpha = DefaultAlpha
	}
	if !(c.BorderStep > 0) || c.BorderStep > 1 || math.IsNaN(c.BorderStep) {
		c.BorderStep = DefaultBorderStep
	}
	if !(c.MaxBorderFrac > 0) || c.MaxBorderFrac >= 1 || math.IsNaN(c.MaxBorderFrac) {
		c.MaxBorderFrac = DefaultMaxBorderFrac
	}
	if !(c.MaxScale > 1) || math.IsInf(c.MaxScale, 0) || math.IsNaN(c.MaxScale) {
		c.MaxScale = DefaultMaxScale
	}
	if c.MaxJournal <= 0 {
		c.MaxJournal = DefaultMaxJournal
	}
	return c
}

// Tuner holds one histogram's feedback journal. All methods are safe
// for concurrent use.
type Tuner struct {
	mu      sync.Mutex
	cfg     Config
	journal []Record
	rounds  uint64
}

// New returns an empty tuner with cfg's bounds (zero fields take the
// package defaults).
func New(cfg Config) *Tuner {
	return &Tuner{cfg: cfg.normalized()}
}

// Observe validates and journals one feedback record. The journal is
// bounded: beyond MaxJournal records the oldest are dropped, keeping
// the most recent feedback — the workload the estimates should track.
func (t *Tuner) Observe(rec Record) error {
	if math.IsNaN(rec.Lo) || math.IsNaN(rec.Hi) ||
		math.IsInf(rec.Lo, 0) || math.IsInf(rec.Hi, 0) {
		return fmt.Errorf("tuner: non-finite range [%v, %v]", rec.Lo, rec.Hi)
	}
	if rec.Hi < rec.Lo {
		return fmt.Errorf("tuner: inverted range [%v, %v]", rec.Lo, rec.Hi)
	}
	if math.IsNaN(rec.Observed) || math.IsInf(rec.Observed, 0) || rec.Observed < 0 {
		return fmt.Errorf("tuner: bad observed count %v", rec.Observed)
	}
	if math.IsNaN(rec.Estimated) || math.IsInf(rec.Estimated, 0) {
		return fmt.Errorf("tuner: bad estimated count %v", rec.Estimated)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.journal = append(t.journal, rec)
	if n := len(t.journal) - t.cfg.MaxJournal; n > 0 {
		copy(t.journal, t.journal[n:])
		t.journal = t.journal[:t.cfg.MaxJournal]
	}
	t.rounds++
	return nil
}

// Len returns the journal length.
func (t *Tuner) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.journal)
}

// Rounds returns the total number of records ever observed, including
// evicted ones.
func (t *Tuner) Rounds() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rounds
}

// ApplyTo replays the journal onto st, oldest record first. Each
// record's error is recomputed against the store as it stands when the
// record replays, so the journal composes across checkpoint/restore
// and across view epochs with different starting buckets.
func (t *Tuner) ApplyTo(st *histogram.Store) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, rec := range t.journal {
		adjust(st, rec, t.cfg)
	}
}

// EstimateRange returns st's mass over the inclusive integer range
// [lo, hi] — mass in [lo, hi+1), matching View.EstimateRange.
func EstimateRange(st *histogram.Store, lo, hi float64) float64 {
	return st.MassBelowAll(hi+1) - st.MassBelowAll(lo)
}

// adjust applies one feedback record to the overlay: an error-weighted
// count redistribution over the buckets the predicate overlaps,
// followed by a bounded border nudge toward each predicate endpoint.
func adjust(st *histogram.Store, rec Record, cfg Config) {
	lo, hi := rec.Lo, rec.Hi+1
	est := st.MassBelowAll(hi) - st.MassBelowAll(lo)
	errv := rec.Observed - est
	if math.Abs(errv) <= 1e-9*(1+rec.Observed) {
		return
	}
	n := st.Len()
	first, last := -1, -1
	sumContM, sumContW, sumAllM, sumAllW := 0.0, 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		if st.Right(i) <= lo {
			continue
		}
		if st.Left(i) >= hi {
			break
		}
		if first < 0 {
			first = i
		}
		last = i
		m, w := containedSpan(st, i, lo, hi)
		sumContM += m
		sumContW += w
		sumAllM += st.Mass(i, lo, hi)
		sumAllW += math.Min(st.Right(i), hi) - math.Max(st.Left(i), lo)
	}
	if first < 0 {
		// The predicate lies outside every bucket (or in a gap): there
		// is no overlay state to correct, so the record is a no-op.
		return
	}
	// Scheme selection. A delta on a sub-counter fully inside the
	// predicate lands entirely in range; a delta on a partially
	// overlapping counter leaks its out-of-range fraction into
	// neighbouring predicates' estimates. So whenever the range
	// contains whole counters anywhere, only those receive mass
	// (weighted by their mass, or width when empty) and the record is
	// leak-free; the partial-overlap schemes serve only predicates
	// narrower than every counter they touch.
	containedOnly, useMass, sumw := true, true, sumContM
	switch {
	case sumContM > massEps:
	case sumContW > massEps:
		useMass, sumw = false, sumContW
	case sumAllM > massEps:
		containedOnly, sumw = false, sumAllM
	case sumAllW > massEps:
		containedOnly, useMass, sumw = false, false, sumAllW
	default:
		return
	}
	delta := cfg.Alpha * errv
	for i := first; i <= last; i++ {
		var w float64
		switch {
		case containedOnly && useMass:
			w, _ = containedSpan(st, i, lo, hi)
		case containedOnly:
			_, w = containedSpan(st, i, lo, hi)
		case useMass:
			w = st.Mass(i, lo, hi)
		default:
			w = math.Min(st.Right(i), hi) - math.Max(st.Left(i), lo)
		}
		if share := delta * w / sumw; share != 0 {
			applyShare(st, i, lo, hi, share, containedOnly, cfg)
		}
	}
	nudgeBorder(st, lo, cfg)
	nudgeBorder(st, hi, cfg)
}

// containedSpan returns the mass and total width of bucket i's
// sub-counters lying entirely inside [lo, hi).
func containedSpan(st *histogram.Store, i int, lo, hi float64) (m, w float64) {
	left, right := st.Left(i), st.Right(i)
	k := st.K()
	subW := (right - left) / float64(k)
	row := st.Row(i)
	for j := 0; j < k; j++ {
		slo := left + float64(j)*subW
		if ow := math.Min(slo+subW, hi) - math.Max(slo, lo); ow >= subW-1e-9*(1+subW) {
			m += row[j]
			w += subW
		}
	}
	return m, w
}

// applyShare adds share points to bucket i's mass inside [lo, hi),
// distributed over the candidate sub-bucket counters — only the
// fully-contained ones when containedOnly is set, every overlapping
// one otherwise — proportional to their in-range mass (overlap width
// when that mass is zero). The whole-bucket change is capped at a
// MaxScale factor and no counter goes negative.
func applyShare(st *histogram.Store, i int, lo, hi, share float64, containedOnly bool, cfg Config) {
	total := st.Count(i)
	if total > massEps {
		if up := (cfg.MaxScale - 1) * total; share > up {
			share = up
		}
		if down := -(1 - 1/cfg.MaxScale) * total; share < down {
			share = down
		}
	}
	left, right := st.Left(i), st.Right(i)
	k := st.K()
	subW := (right - left) / float64(k)
	row := st.Row(i)
	candidateW := func(j int) float64 {
		slo := left + float64(j)*subW
		ow := math.Min(slo+subW, hi) - math.Max(slo, lo)
		if ow <= 0 || (containedOnly && ow < subW-1e-9*(1+subW)) {
			return 0
		}
		return ow
	}

	// First pass: total weight over the candidate counters.
	sumM, sumW := 0.0, 0.0
	for j := 0; j < k; j++ {
		if ow := candidateW(j); ow > 0 {
			sumM += row[j] * ow / subW
			sumW += ow
		}
	}
	useMass, sumw := true, sumM
	if sumM <= massEps {
		if sumW <= massEps {
			return
		}
		useMass, sumw = false, sumW
	}
	// Second pass: each counter's weight is read before its own Add,
	// so the pass-one sum stays consistent.
	for j := 0; j < k; j++ {
		ow := candidateW(j)
		if ow <= 0 {
			continue
		}
		w := ow
		if useMass {
			w = row[j] * ow / subW
		}
		d := share * w / sumw
		if row[j]+d < 0 {
			d = -row[j]
		}
		st.Add(i, j, d)
	}
}

// nudgeBorder moves the bucket border nearest to predicate endpoint b
// a bounded step toward it, so repeated feedback at the same endpoint
// converges a border onto it and partial-overlap interpolation error
// vanishes there. Only a border *shared* with the adjacent bucket
// moves — mass in the ceded strip transfers to the neighbour under the
// uniform assumption — and a border facing a gap stays put, because
// moving it would manufacture or discard coverage.
func nudgeBorder(st *histogram.Store, b float64, cfg Config) {
	i := st.Find(b)
	if i < 0 {
		return
	}
	left, right := st.Left(i), st.Right(i)
	if !(b > left && b < right) {
		return
	}
	if b-left <= right-b {
		// Pull the left border right, toward b; bucket i-1 absorbs the
		// ceded strip.
		if i == 0 || math.Abs(st.Right(i-1)-left) > 1e-9 {
			return
		}
		step := cfg.BorderStep * (b - left)
		if lim := cfg.MaxBorderFrac * math.Min(st.Width(i-1), st.Width(i)); step > lim {
			step = lim
		}
		if step <= 0 {
			return
		}
		rebinPair(st, i-1, i, left+step)
		return
	}
	// Pull the right border left, toward b; bucket i+1 absorbs.
	if i+1 >= st.Len() || math.Abs(st.Left(i+1)-right) > 1e-9 {
		return
	}
	step := cfg.BorderStep * (right - b)
	if lim := cfg.MaxBorderFrac * math.Min(st.Width(i), st.Width(i+1)); step > lim {
		step = lim
	}
	if step <= 0 {
		return
	}
	rebinPair(st, i, i+1, right-step)
}

// rebinPair moves the shared border of adjacent buckets (p, q) to nb
// and re-bins both rows onto the new geometry: each new sub-counter
// takes the mass the old piecewise-uniform layout held over its span.
// Unlike a flat refill, this preserves the sub-counter detail feedback
// has already built up — only the strip that changed buckets is
// re-interpolated.
func rebinPair(st *histogram.Store, p, q int, nb float64) {
	pLeft, qRight := st.Left(p), st.Right(q)
	if nb <= pLeft || nb >= qRight {
		return
	}
	mid := st.Right(p) // == st.Left(q), the border being moved
	k := st.K()
	newP := make([]float64, k)
	newQ := make([]float64, k)
	pw := (nb - pLeft) / float64(k)
	qw := (qRight - nb) / float64(k)
	for j := 0; j < k; j++ {
		slo, shi := pLeft+float64(j)*pw, pLeft+float64(j+1)*pw
		// A new p sub-span may straddle the old border: its mass is
		// whatever both old buckets held over it.
		newP[j] = st.Mass(p, slo, math.Min(shi, mid)) + st.Mass(q, math.Max(slo, mid), shi)
		slo, shi = nb+float64(j)*qw, nb+float64(j+1)*qw
		newQ[j] = st.Mass(p, slo, math.Min(shi, mid)) + st.Mass(q, math.Max(slo, mid), shi)
	}
	st.SetBorders(p, pLeft, nb)
	st.SetBorders(q, nb, qRight)
	setRow(st, p, newP)
	setRow(st, q, newQ)
}

// setRow overwrites bucket i's sub-counters through Add, so the
// per-bucket count stays consistent with the arena.
func setRow(st *histogram.Store, i int, row []float64) {
	old := st.Row(i)
	for j, v := range row {
		st.Add(i, j, v-old[j])
	}
}

// Journal snapshot codec: "DHTJ" magic, a version byte, the lifetime
// round counter, then the records. Little-endian throughout, like the
// repository's other binary formats.
const (
	journalMagic   = "DHTJ"
	journalVersion = 1
	recordSize     = 4 * 8
	headerSize     = 4 + 1 + 8 + 4
)

// Snapshot serialises the journal for the catalog.
func (t *Tuner) Snapshot() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	buf := make([]byte, headerSize+recordSize*len(t.journal))
	copy(buf, journalMagic)
	buf[4] = journalVersion
	binary.LittleEndian.PutUint64(buf[5:], t.rounds)
	binary.LittleEndian.PutUint32(buf[13:], uint32(len(t.journal)))
	off := headerSize
	for _, rec := range t.journal {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(rec.Lo))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(rec.Hi))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(rec.Estimated))
		binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(rec.Observed))
		off += recordSize
	}
	return buf
}

// FromSnapshot restores a tuner from a Snapshot blob under cfg's
// bounds. Records that fail Observe's validation (a corrupt or
// hand-edited blob) are dropped rather than failing the restore.
func FromSnapshot(blob []byte, cfg Config) (*Tuner, error) {
	if len(blob) < headerSize || string(blob[:4]) != journalMagic {
		return nil, fmt.Errorf("%w: tuner journal missing magic", histerr.ErrSnapshot)
	}
	if blob[4] != journalVersion {
		return nil, fmt.Errorf("%w: tuner journal version %d", histerr.ErrSnapshot, blob[4])
	}
	rounds := binary.LittleEndian.Uint64(blob[5:])
	n := int(binary.LittleEndian.Uint32(blob[13:]))
	if len(blob) != headerSize+recordSize*n {
		return nil, fmt.Errorf("%w: tuner journal length %d for %d record(s)",
			histerr.ErrSnapshot, len(blob), n)
	}
	t := New(cfg)
	off := headerSize
	for i := 0; i < n; i++ {
		rec := Record{
			Lo:        math.Float64frombits(binary.LittleEndian.Uint64(blob[off:])),
			Hi:        math.Float64frombits(binary.LittleEndian.Uint64(blob[off+8:])),
			Estimated: math.Float64frombits(binary.LittleEndian.Uint64(blob[off+16:])),
			Observed:  math.Float64frombits(binary.LittleEndian.Uint64(blob[off+24:])),
		}
		off += recordSize
		_ = t.Observe(rec)
	}
	t.rounds = rounds
	return t, nil
}
