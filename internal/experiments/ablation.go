package experiments

import (
	"fmt"

	"dynahist/internal/core"
	"dynahist/internal/dist"
	"dynahist/internal/distgen"
	"dynahist/internal/histogram"
)

// AblationSubBuckets reproduces the §4 design discussion: "dividing
// each bucket into more than two parts … experimentation has shown that
// all alternatives with a small number of sub-buckets (two or three)
// have comparable performance, with finer subdivisions being worse."
// The sweep varies the per-bucket sub-bucket count K of the DADO
// algorithm at a fixed 1KB memory budget — more sub-buckets mean fewer
// buckets, shifting resolution from borders to interiors.
func AblationSubBuckets(o Options) (Figure, error) {
	o = o.normalized()
	fig := Figure{
		ID:     "ablation-subbucket",
		Title:  "DADO sub-bucket count ablation (reference distribution, M=1KB)",
		XLabel: "sub-buckets K",
		YLabel: "KS statistic",
	}
	xs := []float64{2, 3, 4, 6, 8}
	ys := make([]float64, len(xs))
	mem := histogram.KB(1)
	for xi, x := range xs {
		k := int(x)
		var kss []float64
		for seed := range o.Seeds {
			cfg := distgen.Reference(int64(seed + 1))
			cfg.Points = o.Points
			values, err := distgen.Generate(cfg)
			if err != nil {
				return fig, err
			}
			values = distgen.Shuffled(values, int64(seed+1))
			h, err := core.NewDynamicMemory(core.AbsDeviation, mem, k)
			if err != nil {
				return fig, fmt.Errorf("K=%d: %w", k, err)
			}
			truth := dist.New(cfg.Domain)
			if err := insertAll(h, truth, values); err != nil {
				return fig, err
			}
			ks, err := ksOf(h, truth)
			if err != nil {
				return fig, err
			}
			kss = append(kss, ks)
		}
		ys[xi] = mean(kss)
	}
	fig.Series = append(fig.Series, Series{Label: "DADO-K", X: xs, Y: ys})
	return fig, nil
}

// AblationAlphaMin reproduces the §3 sensitivity claim: "the algorithm
// is quite insensitive to the value of αmin, as long as it is much less
// than 1." It sweeps the DC chi-square threshold and reports both the
// final KS and the border-relocation count (scaled by 1/1000), whose
// explosion at large αmin is the paper's explanation for DC's errors.
func AblationAlphaMin(o Options) (Figure, error) {
	o = o.normalized()
	fig := Figure{
		ID:     "ablation-alphamin",
		Title:  "DC αmin sensitivity (reference distribution, M=1KB)",
		XLabel: "alphaMin",
		YLabel: "KS statistic / relocations·10⁻³",
	}
	xs := []float64{1e-12, 1e-9, 1e-6, 1e-3, 1e-1, 0.5}
	ksY := make([]float64, len(xs))
	relocY := make([]float64, len(xs))
	mem := histogram.KB(1)
	for xi, alpha := range xs {
		var kss, relocs []float64
		for seed := range o.Seeds {
			cfg := distgen.Reference(int64(seed + 1))
			cfg.Points = o.Points
			values, err := distgen.Generate(cfg)
			if err != nil {
				return fig, err
			}
			values = distgen.Shuffled(values, int64(seed+1))
			h, err := core.NewDCMemory(mem)
			if err != nil {
				return fig, err
			}
			if err := h.SetAlphaMin(alpha); err != nil {
				return fig, err
			}
			truth := dist.New(cfg.Domain)
			if err := insertAll(h, truth, values); err != nil {
				return fig, err
			}
			ks, err := ksOf(h, truth)
			if err != nil {
				return fig, err
			}
			kss = append(kss, ks)
			relocs = append(relocs, float64(h.Repartitions())/1000)
		}
		ksY[xi] = mean(kss)
		relocY[xi] = mean(relocs)
	}
	fig.Series = append(fig.Series,
		Series{Label: "DC KS", X: xs, Y: ksY},
		Series{Label: "relocs/1000", X: xs, Y: relocY},
	)
	return fig, nil
}
