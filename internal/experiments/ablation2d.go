package experiments

import (
	"math"
	"math/rand"

	"dynahist/internal/multidim"
)

// Ablation2D evaluates the multidimensional extension (the paper's
// future-work direction): the adaptive BSP 2D histogram against a fixed
// equal-area grid with the same bucket budget, on a clustered 2D
// workload, across bucket budgets. The metric is the average relative
// error of rectangle-query counts (the 2D analogue of the Eq. (7)
// metric, since a 2D KS statistic has no canonical definition).
func Ablation2D(o Options) (Figure, error) {
	o = o.normalized()
	fig := Figure{
		ID:     "ablation-2d",
		Title:  "2D extension: adaptive BSP vs fixed grid (clustered data)",
		XLabel: "buckets",
		YLabel: "avg relative query error",
	}
	xs := []float64{16, 32, 64, 128, 256}
	labels := []string{"adaptive 2D", "fixed grid"}
	results := make([][]float64, len(labels))
	for i := range results {
		results[i] = make([]float64, len(xs))
	}
	domain := multidim.Rect{X0: 0, X1: 1000, Y0: 0, Y1: 1000}
	for xi, x := range xs {
		budget := int(x)
		perSeed := make([][]float64, len(labels))
		for seed := range o.Seeds {
			points := clustered2D(o.Points, int64(seed+1))
			adaptive, err := multidim.New2D(domain, budget)
			if err != nil {
				return fig, err
			}
			grid, err := multidim.NewGrid2DBudget(domain, budget)
			if err != nil {
				return fig, err
			}
			for _, p := range points {
				if err := adaptive.Insert(p); err != nil {
					return fig, err
				}
				if err := grid.Insert(p); err != nil {
					return fig, err
				}
			}
			queries := queryRects2D(domain, 50, int64(seed+100))
			errA := avgRelErr2D(adaptive.EstimateRect, points, queries)
			errG := avgRelErr2D(grid.EstimateRect, points, queries)
			perSeed[0] = append(perSeed[0], errA)
			perSeed[1] = append(perSeed[1], errG)
		}
		for ai := range labels {
			results[ai][xi] = mean(perSeed[ai])
		}
	}
	for ai, label := range labels {
		fig.Series = append(fig.Series, Series{Label: label, X: xs, Y: results[ai]})
	}
	return fig, nil
}

// clustered2D draws n points from a five-cluster Gaussian mixture.
func clustered2D(n int, seed int64) []multidim.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{{150, 200}, {700, 150}, {400, 600}, {850, 800}, {200, 850}}
	out := make([]multidim.Point, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = multidim.Point{
			X: math.Min(math.Max(c[0]+rng.NormFloat64()*60, 0), 999.99),
			Y: math.Min(math.Max(c[1]+rng.NormFloat64()*60, 0), 999.99),
		}
	}
	return out
}

// queryRects2D returns q random query rectangles of varied sizes.
func queryRects2D(domain multidim.Rect, q int, seed int64) []multidim.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]multidim.Rect, q)
	for i := range out {
		w := 50 + rng.Float64()*300
		h := 50 + rng.Float64()*300
		x0 := domain.X0 + rng.Float64()*(domain.Width()-w)
		y0 := domain.Y0 + rng.Float64()*(domain.Height()-h)
		out[i] = multidim.Rect{X0: x0, X1: x0 + w, Y0: y0, Y1: y0 + h}
	}
	return out
}

// avgRelErr2D measures Σ|est−exact|/exact over queries with non-empty
// exact answers.
func avgRelErr2D(estimate func(multidim.Rect) float64, points []multidim.Point, queries []multidim.Rect) float64 {
	sum, used := 0.0, 0
	for _, q := range queries {
		exact := 0
		for _, p := range points {
			if q.Contains(p) {
				exact++
			}
		}
		if exact == 0 {
			continue
		}
		sum += math.Abs(estimate(q)-float64(exact)) / float64(exact)
		used++
	}
	if used == 0 {
		return 0
	}
	return sum / float64(used)
}
