// Package experiments reproduces every figure in the paper's
// evaluation (§7 and §8): one runner per figure, each sweeping the
// paper's parameter, averaging the KS statistic over multiple seeded
// runs, and returning the same series the paper plots. The cmd/histbench
// binary prints them as tables; bench_test.go wires each runner to a
// testing.B benchmark.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"dynahist/internal/dist"
	"dynahist/internal/metric"
)

// Options control the fidelity of an experiment run.
type Options struct {
	// Seeds is the number of independent data sets averaged per point
	// (paper: 10).
	Seeds int
	// Points is the data volume per run (paper: 100,000).
	Points int
	// Quick caps Seeds and Points for tests and benchmarks.
	Quick bool
}

// DefaultOptions returns the paper's full-fidelity settings.
func DefaultOptions() Options { return Options{Seeds: 10, Points: 100000} }

// QuickOptions returns reduced settings for tests and benches.
func QuickOptions() Options { return Options{Seeds: 2, Points: 20000, Quick: true} }

func (o Options) normalized() Options {
	if o.Seeds <= 0 {
		o.Seeds = 10
	}
	if o.Points <= 0 {
		o.Points = 100000
	}
	if o.Quick {
		if o.Seeds > 2 {
			o.Seeds = 2
		}
		if o.Points > 20000 {
			o.Points = 20000
		}
	}
	return o
}

// Series is one labelled line of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is the reproduced form of one paper figure.
type Figure struct {
	ID     string // e.g. "fig5"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Runner regenerates one figure.
type Runner func(Options) (Figure, error)

// Registry maps figure IDs to their runners. The IDs match the paper's
// figure numbers plus the §7.3.1 experiment and the two ablations the
// paper discusses in prose.
var Registry = map[string]Runner{
	"fig5":                 Fig5,
	"fig6":                 Fig6,
	"fig7":                 Fig7,
	"fig8":                 Fig8,
	"fig9":                 Fig9,
	"fig10":                Fig10,
	"fig11":                Fig11,
	"fig12":                Fig12,
	"fig13":                Fig13,
	"fig14":                Fig14,
	"fig15":                Fig15,
	"fig16":                Fig16,
	"fig17":                Fig17,
	"fig18":                Fig18,
	"fig19":                Fig19,
	"fig20":                Fig20,
	"fig21":                Fig21,
	"fig22":                Fig22,
	"fig23":                Fig23,
	"sec731":               Sec731,
	"ablation-subbucket":   AblationSubBuckets,
	"ablation-alphamin":    AblationAlphaMin,
	"ablation-subdivision": AblationSubdivision,
	"ablation-2d":          Ablation2D,
	"metric-comparison":    MetricComparison,
	"concurrency":          Concurrency,
	"serving":              Serving,
	"selftune":             SelfTune,
}

// IDs returns the registry keys in stable order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// WriteTable renders the figure as an aligned text table: one row per X
// value, one column per series.
func (f Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# x = %s, y = %s\n", f.XLabel, f.YLabel); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		_, err := fmt.Fprintln(w, "(no series)")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s", f.XLabel); err != nil {
		return err
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, " %14s", s.Label); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := range f.Series[0].X {
		if _, err := fmt.Fprintf(w, "%-12.4g", f.Series[0].X[i]); err != nil {
			return err
		}
		for _, s := range f.Series {
			if i < len(s.Y) {
				if _, err := fmt.Fprintf(w, " %14.6g", s.Y[i]); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(w, " %14s", "-"); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// updater is the common mutation surface of every maintained histogram
// in this repository.
type updater interface {
	Insert(v float64) error
	Delete(v float64) error
	CDF(x float64) float64
}

// algoSpec names one algorithm under test and knows how to build a
// fresh instance for a given seed.
type algoSpec struct {
	name  string
	build func(seed int64) (updater, error)
}

// insertAll streams values into the histogram and the ground-truth
// tracker.
func insertAll(h updater, truth *dist.Tracker, values []int) error {
	for _, v := range values {
		if err := h.Insert(float64(v)); err != nil {
			return err
		}
		if err := truth.Insert(v); err != nil {
			return err
		}
	}
	return nil
}

// ksOf evaluates the KS statistic of the histogram against the truth.
func ksOf(h updater, truth *dist.Tracker) (float64, error) {
	return metric.KS(h.CDF, truth)
}

// mean averages a slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WriteCSV renders the figure as CSV: header row "x,<label>,...", one
// data row per X value. Labels are quoted via encoding/csv so commas
// and spaces in series names are safe.
func (f Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{f.XLabel}, make([]string, 0, len(f.Series))...)
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			row := make([]string, 0, len(f.Series)+1)
			row = append(row, strconv.FormatFloat(f.Series[0].X[i], 'g', -1, 64))
			for _, s := range f.Series {
				if i < len(s.Y) {
					row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
				} else {
					row = append(row, "")
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
