package experiments

import (
	"fmt"
	"math/rand"

	"dynahist/internal/approx"
	"dynahist/internal/core"
	"dynahist/internal/dist"
	"dynahist/internal/distgen"
	"dynahist/internal/histogram"
)

// checkpointFractions are the data fractions at which Figs. 16–18
// sample the error.
var checkpointFractions = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Fig16 reproduces Figure 16: error vs the fraction of data inserted,
// with sorted insertions, for DADO, AC and SC on the reference
// distribution.
func Fig16(o Options) (Figure, error) {
	o = o.normalized()
	fig := Figure{
		ID:     "fig16",
		Title:  "Error vs volume of inserts (sorted order, S=1 Z=1 SD=2)",
		XLabel: "fraction inserted",
		YLabel: "KS statistic",
	}
	mem := histogram.KB(1)
	labels := []string{"DADO", "AC", "SC"}
	results := make([][]float64, len(labels))
	for i := range results {
		results[i] = make([]float64, len(checkpointFractions))
	}
	for seed := range o.Seeds {
		cfg := distgen.Reference(int64(seed + 1))
		cfg.Points = o.Points
		values, err := distgen.Generate(cfg)
		if err != nil {
			return fig, err
		}
		values = distgen.Sorted(values)
		hists := make([]updater, 3)
		if hists[0], err = core.NewDADOMemory(mem); err != nil {
			return fig, err
		}
		if hists[1], err = approx.New(mem, approx.DefaultDiskFactor, int64(seed+1)); err != nil {
			return fig, err
		}
		if hists[2], err = newDeferredStatic(mem); err != nil {
			return fig, err
		}
		truth := dist.New(cfg.Domain)
		next := 0
		for ci, frac := range checkpointFractions {
			upto := int(frac * float64(len(values)))
			for ; next < upto; next++ {
				v := values[next]
				if err := truth.Insert(v); err != nil {
					return fig, err
				}
				for _, h := range hists {
					if err := h.Insert(float64(v)); err != nil {
						return fig, err
					}
				}
			}
			for ai, h := range hists {
				ks, err := ksOf(h, truth)
				if err != nil {
					return fig, err
				}
				results[ai][ci] += ks / float64(o.Seeds)
			}
		}
	}
	for ai, label := range labels {
		fig.Series = append(fig.Series, Series{Label: label, X: checkpointFractions, Y: results[ai]})
	}
	return fig, nil
}

// deleteFractions are the deleted-data fractions of Figs. 17–18.
var deleteFractions = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

// deletionSweep drives Figs. 17 and 18: load the full data set (in the
// given order), then delete random points, sampling the error of DADO
// and AC at each deleted fraction.
func deletionSweep(o Options, id, title string, sorted bool) (Figure, error) {
	o = o.normalized()
	fig := Figure{ID: id, Title: title, XLabel: "fraction deleted", YLabel: "KS statistic"}
	mem := histogram.KB(1)
	labels := []string{"DADO", "AC"}
	results := make([][]float64, len(labels))
	for i := range results {
		results[i] = make([]float64, len(deleteFractions))
	}
	for seed := range o.Seeds {
		cfg := distgen.Reference(int64(seed + 1))
		cfg.Clusters = 1000
		cfg.Points = o.Points
		values, err := distgen.Generate(cfg)
		if err != nil {
			return fig, err
		}
		if sorted {
			values = distgen.Sorted(values)
		} else {
			values = distgen.Shuffled(values, int64(seed+1))
		}
		hists := make([]updater, 2)
		if hists[0], err = core.NewDADOMemory(mem); err != nil {
			return fig, err
		}
		if hists[1], err = approx.New(mem, approx.DefaultDiskFactor, int64(seed+1)); err != nil {
			return fig, err
		}
		truth := dist.New(cfg.Domain)
		for _, v := range values {
			if err := truth.Insert(v); err != nil {
				return fig, err
			}
			for _, h := range hists {
				if err := h.Insert(float64(v)); err != nil {
					return fig, err
				}
			}
		}
		// Delete in uniformly random order of the inserted points.
		order := distgen.Shuffled(values, int64(seed+1000))
		next := 0
		for ci, frac := range deleteFractions {
			upto := int(frac * float64(len(order)))
			for ; next < upto; next++ {
				v := order[next]
				if err := truth.Delete(v); err != nil {
					return fig, err
				}
				for _, h := range hists {
					if err := h.Delete(float64(v)); err != nil {
						return fig, err
					}
				}
			}
			for ai, h := range hists {
				ks, err := ksOf(h, truth)
				if err != nil {
					return fig, err
				}
				results[ai][ci] += ks / float64(o.Seeds)
			}
		}
	}
	for ai, label := range labels {
		fig.Series = append(fig.Series, Series{Label: label, X: deleteFractions, Y: results[ai]})
	}
	return fig, nil
}

// Fig17 reproduces Figure 17: error vs the fraction of data deleted,
// after random insertions (C=1000, M=1KB).
func Fig17(o Options) (Figure, error) {
	return deletionSweep(o, "fig17", "Error vs volume of random deletes (S=1 Z=1 SD=2 C=1000 M=1KB)", false)
}

// Fig18 reproduces Figure 18: random deletes after sorted inserts —
// the regime where DADO's spill policy struggles (§7.3).
func Fig18(o Options) (Figure, error) {
	return deletionSweep(o, "fig18", "Random deletes after sorted inserts (S=1 Z=1 SD=2 C=1000 M=1KB)", true)
}

// Sec731 reproduces the §7.3.1 experiment the paper describes but omits
// for space: sorted insertions with a 25% random-deletion rate, error
// tracked against the fraction of the stream processed; the paper
// reports results "similar to the experiments without deletions"
// (Fig. 16).
func Sec731(o Options) (Figure, error) {
	o = o.normalized()
	fig := Figure{
		ID:     "sec731",
		Title:  "Sorted inserts with 25% delete rate (S=1 Z=1 SD=2 M=1KB)",
		XLabel: "fraction processed",
		YLabel: "KS statistic",
	}
	mem := histogram.KB(1)
	ys := make([]float64, len(checkpointFractions))
	for seed := range o.Seeds {
		cfg := distgen.Reference(int64(seed + 1))
		cfg.Points = o.Points
		values, err := distgen.Generate(cfg)
		if err != nil {
			return fig, err
		}
		values = distgen.Sorted(values)
		h, err := core.NewDADOMemory(mem)
		if err != nil {
			return fig, err
		}
		truth := dist.New(cfg.Domain)
		rng := rand.New(rand.NewSource(int64(seed + 1)))
		var live []int
		next := 0
		for ci, frac := range checkpointFractions {
			upto := int(frac * float64(len(values)))
			for ; next < upto; next++ {
				v := values[next]
				if err := truth.Insert(v); err != nil {
					return fig, err
				}
				if err := h.Insert(float64(v)); err != nil {
					return fig, err
				}
				live = append(live, v)
				// After every insertion one random live tuple is deleted
				// with probability 25%.
				if len(live) > 1 && rng.Float64() < 0.25 {
					pick := rng.Intn(len(live))
					dv := live[pick]
					live[pick] = live[len(live)-1]
					live = live[:len(live)-1]
					if err := truth.Delete(dv); err != nil {
						return fig, err
					}
					if err := h.Delete(float64(dv)); err != nil {
						return fig, err
					}
				}
			}
			ks, err := ksOf(h, truth)
			if err != nil {
				return fig, fmt.Errorf("sec731: %w", err)
			}
			ys[ci] += ks / float64(o.Seeds)
		}
	}
	fig.Series = append(fig.Series, Series{Label: "DADO", X: checkpointFractions, Y: ys})
	return fig, nil
}
