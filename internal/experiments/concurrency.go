package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"dynahist/internal/core"
	"dynahist/internal/shard"
)

// Concurrency measures ingest throughput (million inserts/sec) versus
// writer-goroutine count for three maintenance strategies over the
// same DC histogram configuration:
//
//   - single-thread: one bare histogram, one writer — the upper bound
//     a lone core can reach with no synchronisation at all (plotted
//     as a constant reference line).
//   - mutex: one histogram behind a single mutex, the Concurrent
//     wrapper's strategy — every writer serialises.
//   - sharded: the §8-superposition shard engine with GOMAXPROCS
//     shards — writers contend only per stripe.
//   - sharded-batch: the same engine fed through InsertBatch in
//     chunks of 256, amortising lock acquisition.
//
// Unlike the paper-figure runners this measures wall-clock throughput
// rather than estimation quality, so absolute numbers vary by
// machine; the shape (mutex flat or falling, sharded rising with
// writers) is the reproducible part.
func Concurrency(o Options) (Figure, error) {
	o = o.normalized()
	writerCounts := []float64{1, 2, 4, 8}

	fig := Figure{
		ID:     "concurrency",
		Title:  "Concurrent ingest throughput: sharded vs mutex-wrapped",
		XLabel: "writers",
		YLabel: "Minserts/sec",
	}

	values := make([]float64, o.Points)
	rng := rand.New(rand.NewSource(42))
	for i := range values {
		values[i] = float64(rng.Intn(5001))
	}

	// Single-thread reference: measured once, repeated across X.
	bare, err := core.NewDCMemory(1024)
	if err != nil {
		return fig, err
	}
	start := time.Now()
	for _, v := range values {
		if err := bare.Insert(v); err != nil {
			return fig, err
		}
	}
	single := mops(len(values), time.Since(start))

	var mutexY, shardY, batchY []float64
	for _, wf := range writerCounts {
		w := int(wf)

		m, err := ingestMutex(values, w)
		if err != nil {
			return fig, fmt.Errorf("concurrency: mutex %d writers: %w", w, err)
		}
		mutexY = append(mutexY, m)

		s, err := ingestSharded(values, w, 1)
		if err != nil {
			return fig, fmt.Errorf("concurrency: sharded %d writers: %w", w, err)
		}
		shardY = append(shardY, s)

		b, err := ingestSharded(values, w, 256)
		if err != nil {
			return fig, fmt.Errorf("concurrency: sharded-batch %d writers: %w", w, err)
		}
		batchY = append(batchY, b)
	}

	constant := make([]float64, len(writerCounts))
	for i := range constant {
		constant[i] = single
	}
	fig.Series = []Series{
		{Label: "single-thread", X: writerCounts, Y: constant},
		{Label: "mutex", X: writerCounts, Y: mutexY},
		{Label: "sharded", X: writerCounts, Y: shardY},
		{Label: "sharded-batch", X: writerCounts, Y: batchY},
	}
	return fig, nil
}

// lockedDC is the single-mutex baseline: the strategy of the public
// Concurrent wrapper, reproduced here over the internal type.
type lockedDC struct {
	mu sync.Mutex
	h  *core.DC
}

func (l *lockedDC) Insert(v float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Insert(v)
}

func ingestMutex(values []float64, writers int) (float64, error) {
	h, err := core.NewDCMemory(1024)
	if err != nil {
		return 0, err
	}
	l := &lockedDC{h: h}
	return timedFanOut(values, writers, func(chunk []float64) error {
		for _, v := range chunk {
			if err := l.Insert(v); err != nil {
				return err
			}
		}
		return nil
	})
}

func ingestSharded(values []float64, writers, batch int) (float64, error) {
	e, err := shard.New(shard.Config{Shards: runtime.GOMAXPROCS(0)}, func() (shard.Member, error) {
		return core.NewDCMemory(1024)
	})
	if err != nil {
		return 0, err
	}
	return timedFanOut(values, writers, func(chunk []float64) error {
		if batch <= 1 {
			for _, v := range chunk {
				if err := e.Insert(v); err != nil {
					return err
				}
			}
			return nil
		}
		for len(chunk) > 0 {
			n := min(batch, len(chunk))
			if err := e.InsertBatch(chunk[:n]); err != nil {
				return err
			}
			chunk = chunk[n:]
		}
		return nil
	})
}

// timedFanOut splits values into one contiguous chunk per writer,
// runs the chunks concurrently, and returns million ops/sec.
func timedFanOut(values []float64, writers int, run func([]float64) error) (float64, error) {
	chunks := make([][]float64, 0, writers)
	per := (len(values) + writers - 1) / writers
	for off := 0; off < len(values); off += per {
		end := min(off+per, len(values))
		chunks = append(chunks, values[off:end])
	}
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	start := time.Now()
	for i, c := range chunks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = run(c)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return mops(len(values), elapsed), nil
}

func mops(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds() / 1e6
}
