package experiments

import (
	"fmt"

	"dynahist/internal/core"
	"dynahist/internal/dist"
	"dynahist/internal/distgen"
	"dynahist/internal/histogram"
	"dynahist/internal/metric"
)

// AblationSubdivision reproduces the other §4 design alternative the
// paper explored: "using equi-depth divisions instead of equi-width
// divisions" inside each bucket. It compares the standard DADO
// (equi-width sub-buckets) against the equi-depth-subdivision variant
// across the spread-skew sweep, at matched memory.
func AblationSubdivision(o Options) (Figure, error) {
	o = o.normalized()
	fig := Figure{
		ID:     "ablation-subdivision",
		Title:  "Sub-bucket division ablation: equi-width vs equi-depth (M=1KB)",
		XLabel: "S",
		YLabel: "KS statistic",
	}
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3}
	mem := histogram.KB(1)
	labels := []string{"DADO (equi-width)", "DADO (equi-depth)"}
	results := make([][]float64, len(labels))
	for i := range results {
		results[i] = make([]float64, len(xs))
	}
	for xi, x := range xs {
		perSeed := make([][]float64, len(labels))
		for seed := range o.Seeds {
			cfg := distgen.Reference(int64(seed + 1))
			cfg.SpreadSkew = x
			cfg.Points = o.Points
			values, err := distgen.Generate(cfg)
			if err != nil {
				return fig, err
			}
			values = distgen.Shuffled(values, int64(seed+1))
			hists := make([]updater, 2)
			if hists[0], err = core.NewDADOMemory(mem); err != nil {
				return fig, err
			}
			if hists[1], err = core.NewEDDadoMemory(core.AbsDeviation, mem); err != nil {
				return fig, err
			}
			truth := dist.New(cfg.Domain)
			for _, v := range values {
				if err := truth.Insert(v); err != nil {
					return fig, err
				}
				for _, h := range hists {
					if err := h.Insert(float64(v)); err != nil {
						return fig, err
					}
				}
			}
			for ai, h := range hists {
				ks, err := ksOf(h, truth)
				if err != nil {
					return fig, err
				}
				perSeed[ai] = append(perSeed[ai], ks)
			}
		}
		for ai := range labels {
			results[ai][xi] = mean(perSeed[ai])
		}
	}
	for ai, label := range labels {
		fig.Series = append(fig.Series, Series{Label: label, X: xs, Y: results[ai]})
	}
	return fig, nil
}

// MetricComparison validates the paper's §6.2 claim that the Eq. (7)
// average-relative-error metric, "although different from KS, gave
// similar results in terms of relative performance": it scores the four
// dynamic algorithms on the reference distribution under both metrics
// and reports them side by side (series come in KS / Eq.7 pairs; the
// orderings should agree).
func MetricComparison(o Options) (Figure, error) {
	o = o.normalized()
	fig := Figure{
		ID:     "metric-comparison",
		Title:  "KS vs Eq.(7) avg-relative-error orderings (reference distribution)",
		XLabel: "S",
		YLabel: "KS / (Eq.7 ÷ 1000)",
	}
	xs := []float64{0, 1, 2, 3}
	specs := dynamicAlgos(histogram.KB(1))
	nAlg := len(specs)
	ksResults := make([][]float64, nAlg)
	reResults := make([][]float64, nAlg)
	for i := range ksResults {
		ksResults[i] = make([]float64, len(xs))
		reResults[i] = make([]float64, len(xs))
	}
	for xi, x := range xs {
		ksSeed := make([][]float64, nAlg)
		reSeed := make([][]float64, nAlg)
		for seed := range o.Seeds {
			cfg := distgen.Reference(int64(seed + 1))
			cfg.SpreadSkew = x
			cfg.Points = o.Points
			values, err := distgen.Generate(cfg)
			if err != nil {
				return fig, err
			}
			values = distgen.Shuffled(values, int64(seed+1))
			queries := metric.UniformQueries(cfg.Domain, 100)
			for ai, spec := range specs {
				h, err := spec.build(int64(seed + 1))
				if err != nil {
					return fig, fmt.Errorf("%s: %w", spec.name, err)
				}
				truth := dist.New(cfg.Domain)
				if err := insertAll(h, truth, values); err != nil {
					return fig, err
				}
				ks, err := ksOf(h, truth)
				if err != nil {
					return fig, err
				}
				estimator := func(lo, hi float64) float64 {
					return (h.CDF(hi+1) - h.CDF(lo)) * float64(truth.Total())
				}
				re, err := metric.AvgRelativeError(estimator, truth, queries)
				if err != nil {
					return fig, err
				}
				ksSeed[ai] = append(ksSeed[ai], ks)
				reSeed[ai] = append(reSeed[ai], re)
			}
		}
		for ai := range specs {
			ksResults[ai][xi] = mean(ksSeed[ai])
			reResults[ai][xi] = mean(reSeed[ai])
		}
	}
	for ai, spec := range specs {
		fig.Series = append(fig.Series, Series{Label: spec.name + " KS", X: xs, Y: ksResults[ai]})
	}
	for ai, spec := range specs {
		// Scale Eq.7 percentages down so both metrics share one table.
		scaled := make([]float64, len(xs))
		for i, v := range reResults[ai] {
			scaled[i] = v / 1000
		}
		fig.Series = append(fig.Series, Series{Label: spec.name + " Eq7", X: xs, Y: scaled})
	}
	return fig, nil
}
