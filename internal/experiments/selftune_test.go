package experiments

import "testing"

// TestSelfTuneMonotone is the acceptance gate for the feedback loop:
// on the skew-shift workload, with truth from the exact dist.Tracker,
// the estimation error must be monotonically non-increasing over
// feedback rounds and must end well below the untuned baseline.
func TestSelfTuneMonotone(t *testing.T) {
	for _, opts := range []struct {
		name string
		o    Options
	}{
		{"tiny", tinyOptions()},
		{"quick", QuickOptions()},
	} {
		fig, err := SelfTune(opts.o)
		if err != nil {
			t.Fatalf("%s: %v", opts.name, err)
		}
		s := seriesByLabel(t, fig, "DADO+feedback")
		if len(s.Y) < 2 {
			t.Fatalf("%s: error series too short: %v", opts.name, s.Y)
		}
		for i := 1; i < len(s.Y); i++ {
			// The float tolerance admits rounding noise, not regressions.
			if s.Y[i] > s.Y[i-1]*(1+1e-9) {
				t.Errorf("%s: error rose at round %d: %v -> %v (series %v)",
					opts.name, i, s.Y[i-1], s.Y[i], s.Y)
			}
		}
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if !(last < first/2) {
			t.Errorf("%s: final error %v not under half the untuned %v", opts.name, last, first)
		}
		if first <= 0 {
			t.Errorf("%s: untuned error %v not positive — skew shift opened no gap", opts.name, first)
		}
	}
}

// TestSelfTuneRegistered pins the registry entry the tooling shells
// out to.
func TestSelfTuneRegistered(t *testing.T) {
	fig := runFig(t, "selftune")
	if fig.XLabel != "feedback round" {
		t.Fatalf("XLabel = %q", fig.XLabel)
	}
}
