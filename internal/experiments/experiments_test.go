package experiments

import (
	"strings"
	"testing"
)

// tinyOptions keeps each figure runner fast enough for unit tests.
func tinyOptions() Options {
	return Options{Seeds: 1, Points: 6000, Quick: true}
}

func runFig(t *testing.T, id string) Figure {
	t.Helper()
	runner, ok := Registry[id]
	if !ok {
		t.Fatalf("no runner for %s", id)
	}
	fig, err := runner(tinyOptions())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if fig.ID != id {
		t.Fatalf("runner %s returned figure %s", id, fig.ID)
	}
	if len(fig.Series) == 0 {
		t.Fatalf("%s: no series", id)
	}
	for _, s := range fig.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("%s series %s: X/Y length mismatch (%d/%d)", id, s.Label, len(s.X), len(s.Y))
		}
	}
	return fig
}

func seriesByLabel(t *testing.T, fig Figure, label string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("%s: no series %q", fig.ID, label)
	return Series{}
}

func meanY(s Series) float64 {
	sum := 0.0
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}

func assertAllFinitePositiveKS(t *testing.T, fig Figure) {
	t.Helper()
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y < 0 || y > 1 {
				t.Errorf("%s/%s[%d]: KS %v outside [0,1]", fig.ID, s.Label, i, y)
			}
		}
	}
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(Registry))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs() not sorted")
		}
	}
}

func TestWriteTable(t *testing.T) {
	fig := Figure{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}},
	}
	var sb strings.Builder
	if err := fig.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"figX", "demo", "a", "0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFig5DynamicComparison(t *testing.T) {
	fig := runFig(t, "fig5")
	assertAllFinitePositiveKS(t, fig)
	dado := seriesByLabel(t, fig, "DADO")
	dc := seriesByLabel(t, fig, "DC")
	// Paper: DADO is the best dynamic histogram on average.
	if meanY(dado) > meanY(dc) {
		t.Errorf("DADO (%.4f) should beat DC (%.4f) on average", meanY(dado), meanY(dc))
	}
}

func TestFig6Ordering(t *testing.T) {
	fig := runFig(t, "fig6")
	assertAllFinitePositiveKS(t, fig)
	dado := seriesByLabel(t, fig, "DADO")
	ac := seriesByLabel(t, fig, "AC")
	if meanY(dado) > meanY(ac) {
		t.Errorf("DADO (%.4f) should beat AC (%.4f) on average (paper Figs. 5-8)", meanY(dado), meanY(ac))
	}
}

func TestFig7Runs(t *testing.T) { assertAllFinitePositiveKS(t, runFig(t, "fig7")) }
func TestFig8MemoryTrend(t *testing.T) {
	fig := runFig(t, "fig8")
	assertAllFinitePositiveKS(t, fig)
	// More memory must help DADO: last point better than first.
	dado := seriesByLabel(t, fig, "DADO")
	if dado.Y[len(dado.Y)-1] > dado.Y[0] {
		t.Errorf("DADO KS should fall with memory: %v -> %v", dado.Y[0], dado.Y[len(dado.Y)-1])
	}
}

func TestFig9StaticsComparable(t *testing.T) {
	fig := runFig(t, "fig9")
	assertAllFinitePositiveKS(t, fig)
	svo := seriesByLabel(t, fig, "SVO")
	sado := seriesByLabel(t, fig, "SADO")
	// Paper: optimising variance or average deviation makes essentially
	// no difference in the static case.
	if d := meanY(svo) - meanY(sado); d > 0.05 || d < -0.05 {
		t.Errorf("SVO (%.4f) and SADO (%.4f) should be close", meanY(svo), meanY(sado))
	}
	// DADO comes close to the statics: within a generous factor.
	dado := seriesByLabel(t, fig, "DADO")
	if meanY(dado) > 6*meanY(svo)+0.06 {
		t.Errorf("DADO (%.4f) too far from SVO (%.4f)", meanY(dado), meanY(svo))
	}
}

func TestFig10Runs(t *testing.T) { assertAllFinitePositiveKS(t, runFig(t, "fig10")) }
func TestFig11Runs(t *testing.T) { assertAllFinitePositiveKS(t, runFig(t, "fig11")) }
func TestFig12Runs(t *testing.T) { assertAllFinitePositiveKS(t, runFig(t, "fig12")) }

func TestFig13TimingOrder(t *testing.T) {
	fig := runFig(t, "fig13")
	svo := seriesByLabel(t, fig, "SVO")
	ssbm := seriesByLabel(t, fig, "SSBM")
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y < 0 {
				t.Errorf("%s[%d]: negative time %v", s.Label, i, y)
			}
		}
	}
	// Paper Fig. 13: SVO construction is far more expensive than SSBM.
	if meanY(svo) < meanY(ssbm) {
		t.Errorf("SVO (%.4fs) should cost more than SSBM (%.4fs)", meanY(svo), meanY(ssbm))
	}
}

func TestFig14DiskFactors(t *testing.T) {
	fig := runFig(t, "fig14")
	assertAllFinitePositiveKS(t, fig)
	ac20 := seriesByLabel(t, fig, "AC20X")
	ac60 := seriesByLabel(t, fig, "AC60X")
	// More disk helps AC. (The paper's second claim — DADO beats even
	// AC60X — only holds when the data volume dwarfs the backing
	// sample, i.e. at full 100k-point fidelity; at this test's tiny
	// scale the sample holds nearly the whole data set, so that
	// ordering is checked by the full harness, not here.)
	if meanY(ac60) > meanY(ac20)+0.01 {
		t.Errorf("AC60X (%.4f) should not be worse than AC20X (%.4f)", meanY(ac60), meanY(ac20))
	}
}

func TestFig15SortedInserts(t *testing.T) {
	fig := runFig(t, "fig15")
	assertAllFinitePositiveKS(t, fig)
	dado := seriesByLabel(t, fig, "DADO")
	ac := seriesByLabel(t, fig, "AC20X")
	// Paper: DADO under sorted input is "comparable or better" than AC.
	if meanY(dado) > 2*meanY(ac)+0.02 {
		t.Errorf("DADO (%.4f) should stay comparable to AC (%.4f) under sorted inserts", meanY(dado), meanY(ac))
	}
}

func TestFig16Stabilises(t *testing.T) {
	fig := runFig(t, "fig16")
	assertAllFinitePositiveKS(t, fig)
	dado := seriesByLabel(t, fig, "DADO")
	// Paper Fig. 16: the DADO error reaches a stable point — the last
	// value must not be dramatically above the middle of the curve.
	midIdx := len(dado.Y) / 2
	last := dado.Y[len(dado.Y)-1]
	if last > 3*dado.Y[midIdx]+0.03 {
		t.Errorf("DADO error still growing at the end: mid %.4f -> last %.4f", dado.Y[midIdx], last)
	}
}

func TestFig17ACDegrades(t *testing.T) {
	fig := runFig(t, "fig17")
	assertAllFinitePositiveKS(t, fig)
	ac := seriesByLabel(t, fig, "AC")
	dado := seriesByLabel(t, fig, "DADO")
	// Paper Fig. 17: deletions hurt AC (shrinking sample) more than
	// DADO by the end of the sweep.
	lastAC, lastDADO := ac.Y[len(ac.Y)-1], dado.Y[len(dado.Y)-1]
	if lastDADO > lastAC {
		t.Errorf("after heavy random deletion DADO (%.4f) should beat AC (%.4f)", lastDADO, lastAC)
	}
}

func TestFig18Runs(t *testing.T) { assertAllFinitePositiveKS(t, runFig(t, "fig18")) }
func TestFig19Runs(t *testing.T) {
	fig := runFig(t, "fig19")
	assertAllFinitePositiveKS(t, fig)
	dado := seriesByLabel(t, fig, "DADO")
	// More memory helps on the spiky trace too.
	if dado.Y[len(dado.Y)-1] > dado.Y[0] {
		t.Errorf("DADO KS should fall with memory on the mail-order trace")
	}
}

func TestFig20UnionStrategies(t *testing.T) {
	fig := runFig(t, "fig20")
	assertAllFinitePositiveKS(t, fig)
	a := seriesByLabel(t, fig, "histogram + union")
	b := seriesByLabel(t, fig, "union + histogram")
	// Paper §8: the strategies are approximately of the same quality.
	if d := meanY(a) - meanY(b); d > 0.05 || d < -0.05 {
		t.Errorf("union strategies diverge: %.4f vs %.4f", meanY(a), meanY(b))
	}
}

func TestFig21Runs(t *testing.T) { assertAllFinitePositiveKS(t, runFig(t, "fig21")) }
func TestFig22Runs(t *testing.T) { assertAllFinitePositiveKS(t, runFig(t, "fig22")) }
func TestFig23Runs(t *testing.T) { assertAllFinitePositiveKS(t, runFig(t, "fig23")) }

func TestSec731Stable(t *testing.T) {
	fig := runFig(t, "sec731")
	assertAllFinitePositiveKS(t, fig)
}

func TestAblationSubBuckets(t *testing.T) {
	fig := runFig(t, "ablation-subbucket")
	assertAllFinitePositiveKS(t, fig)
	s := fig.Series[0]
	// Paper §4: finer subdivisions are worse — K=8 should not beat K=2
	// decisively.
	if s.Y[len(s.Y)-1]+0.005 < s.Y[0]/2 {
		t.Errorf("K=8 (%v) dramatically better than K=2 (%v), contradicting the paper", s.Y[len(s.Y)-1], s.Y[0])
	}
}

func TestAblationAlphaMin(t *testing.T) {
	fig := runFig(t, "ablation-alphamin")
	ks := seriesByLabel(t, fig, "DC KS")
	relocs := seriesByLabel(t, fig, "relocs/1000")
	for i, y := range ks.Y {
		if y < 0 || y > 1 {
			t.Errorf("KS[%d] = %v outside [0,1]", i, y)
		}
	}
	// Larger αmin must not reduce the number of relocations.
	if relocs.Y[len(relocs.Y)-1] < relocs.Y[0] {
		t.Errorf("relocations should grow with αmin: %v -> %v", relocs.Y[0], relocs.Y[len(relocs.Y)-1])
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.Seeds != 10 || o.Points != 100000 {
		t.Errorf("zero options should default to paper settings: %+v", o)
	}
	q := Options{Seeds: 50, Points: 500000, Quick: true}.normalized()
	if q.Seeds > 2 || q.Points > 20000 {
		t.Errorf("quick mode should cap settings: %+v", q)
	}
}

func TestAblationSubdivision(t *testing.T) {
	fig := runFig(t, "ablation-subdivision")
	assertAllFinitePositiveKS(t, fig)
	ew := seriesByLabel(t, fig, "DADO (equi-width)")
	ed := seriesByLabel(t, fig, "DADO (equi-depth)")
	// Paper §4: the alternatives "have comparable performance" — the
	// variants must stay within a loose factor of each other.
	if meanY(ed) > 5*meanY(ew)+0.05 || meanY(ew) > 5*meanY(ed)+0.05 {
		t.Errorf("subdivision variants diverge: EW %.4f vs ED %.4f", meanY(ew), meanY(ed))
	}
}

func TestMetricComparisonOrderings(t *testing.T) {
	fig := runFig(t, "metric-comparison")
	// §6.2 claim: the Eq. (7) metric "gave similar results in terms of
	// relative performance" as KS. For every pair of algorithms whose
	// KS scores are decisively separated (>2.5x apart — at this test's
	// tiny scale closer calls are noise), the Eq. (7) metric must agree
	// on the winner.
	algos := []string{"DC", "DADO", "AC", "DVO"}
	for i := range algos {
		for j := i + 1; j < len(algos); j++ {
			ksI := meanY(seriesByLabel(t, fig, algos[i]+" KS"))
			ksJ := meanY(seriesByLabel(t, fig, algos[j]+" KS"))
			reI := meanY(seriesByLabel(t, fig, algos[i]+" Eq7"))
			reJ := meanY(seriesByLabel(t, fig, algos[j]+" Eq7"))
			lo, hi := ksI, ksJ
			if lo > hi {
				lo, hi = hi, lo
			}
			if hi < 2.5*lo {
				continue // too close to call — no ordering to agree on
			}
			if (ksI < ksJ) != (reI < reJ) {
				t.Errorf("metrics disagree on %s vs %s: KS %.4f/%.4f, Eq7 %.4f/%.4f",
					algos[i], algos[j], ksI, ksJ, reI, reJ)
			}
		}
	}
}

func TestAblation2D(t *testing.T) {
	fig := runFig(t, "ablation-2d")
	adaptive := seriesByLabel(t, fig, "adaptive 2D")
	grid := seriesByLabel(t, fig, "fixed grid")
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y < 0 {
				t.Errorf("%s[%d]: negative error %v", s.Label, i, y)
			}
		}
	}
	// The adaptive partition must beat the fixed grid on clustered data
	// on average across budgets.
	if meanY(adaptive) > meanY(grid) {
		t.Errorf("adaptive (%.4f) should beat fixed grid (%.4f) on clustered data",
			meanY(adaptive), meanY(grid))
	}
	// More buckets must help the adaptive histogram.
	if adaptive.Y[len(adaptive.Y)-1] > adaptive.Y[0] {
		t.Errorf("adaptive error should fall with budget: %v -> %v",
			adaptive.Y[0], adaptive.Y[len(adaptive.Y)-1])
	}
}

func TestWriteCSV(t *testing.T) {
	fig := Figure{
		ID: "figX", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a,b", X: []float64{1, 2}, Y: []float64{0.5, 0.25}},
			{Label: "c", X: []float64{1, 2}, Y: []float64{0.125}},
		},
	}
	var sb strings.Builder
	if err := fig.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], `"a,b"`) {
		t.Errorf("comma-bearing label must be quoted: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,0.5") {
		t.Errorf("row 1 = %s", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",") {
		t.Errorf("short series should leave an empty cell: %s", lines[2])
	}
}
