package experiments

import (
	"fmt"

	"dynahist/internal/histogram"
	"dynahist/internal/metric"
	"dynahist/internal/static"
	"dynahist/internal/union"
)

// unionSweep drives Figs. 20–23: for each x it builds the site
// population, then compares the two global-histogram strategies of §8
// ("histogram + union" vs "union + histogram") against the exact union
// distribution.
func unionSweep(o Options, id, title, xLabel string, xs []float64,
	makeCfg func(x float64, seed int64) union.SitesConfig,
	memOf func(x float64) int,
) (Figure, error) {
	o = o.normalized()
	fig := Figure{ID: id, Title: title, XLabel: xLabel, YLabel: "KS statistic"}
	labels := []string{"histogram + union", "union + histogram"}
	results := make([][]float64, len(labels))
	for i := range results {
		results[i] = make([]float64, len(xs))
	}
	for xi, x := range xs {
		mem := memOf(x)
		perSeed := make([][]float64, len(labels))
		for seed := range o.Seeds {
			cfg := makeCfg(x, int64(seed+1))
			if o.Quick && cfg.TotalPoints > o.Points {
				cfg.TotalPoints = o.Points
			}
			sites, all, err := union.GenerateSites(cfg)
			if err != nil {
				return fig, fmt.Errorf("%s x=%v: %w", id, x, err)
			}
			// Strategy A: per-site SSBM histograms, superposed, reduced.
			var members [][]histogram.Bucket
			for _, s := range sites {
				h, err := static.SSBMMemory(s, mem)
				if err != nil {
					return fig, err
				}
				members = append(members, h.Buckets())
			}
			super, err := union.Superpose(members...)
			if err != nil {
				return fig, err
			}
			n, err := histogram.BucketsForMemory(mem, 1)
			if err != nil {
				return fig, err
			}
			reduced, err := union.Reduce(super, n)
			if err != nil {
				return fig, err
			}
			ksA, err := metric.KS(union.CDFOf(reduced), all)
			if err != nil {
				return fig, err
			}
			// Strategy B: pool the data, then build one SSBM histogram.
			direct, err := static.SSBMMemory(all, mem)
			if err != nil {
				return fig, err
			}
			ksB, err := metric.KS(direct.CDF, all)
			if err != nil {
				return fig, err
			}
			perSeed[0] = append(perSeed[0], ksA)
			perSeed[1] = append(perSeed[1], ksB)
		}
		for ai := range labels {
			results[ai][xi] = mean(perSeed[ai])
		}
	}
	for ai, label := range labels {
		fig.Series = append(fig.Series, Series{Label: label, X: xs, Y: results[ai]})
	}
	return fig, nil
}

// unionDefaultMem is the paper's default per-histogram memory in §8
// (250 bytes).
const unionDefaultMem = 250

// Fig20 reproduces Figure 20: union strategies vs histogram memory.
func Fig20(o Options) (Figure, error) {
	return unionSweep(o, "fig20", "Union strategies: error vs histogram size", "memory KB",
		[]float64{0.1, 0.25, 0.5, 0.75, 1.0},
		func(x float64, seed int64) union.SitesConfig { return union.DefaultSites(seed) },
		func(x float64) int { return histogram.KB(x) },
	)
}

// Fig21 reproduces Figure 21: union strategies vs intrasite data skew
// Z_Freq.
func Fig21(o Options) (Figure, error) {
	return unionSweep(o, "fig21", "Union strategies: error vs Z_Freq (skew within members)", "Z_Freq",
		[]float64{0, 0.5, 1, 1.5, 2, 2.5, 3},
		func(x float64, seed int64) union.SitesConfig {
			cfg := union.DefaultSites(seed)
			cfg.ZFreq = x
			return cfg
		},
		func(float64) int { return unionDefaultMem },
	)
}

// Fig22 reproduces Figure 22: union strategies vs the number of sites.
func Fig22(o Options) (Figure, error) {
	return unionSweep(o, "fig22", "Union strategies: error vs number of sites", "sites",
		[]float64{1, 2, 5, 10, 15, 20},
		func(x float64, seed int64) union.SitesConfig {
			cfg := union.DefaultSites(seed)
			cfg.Sites = int(x)
			return cfg
		},
		func(float64) int { return unionDefaultMem },
	)
}

// Fig23 reproduces Figure 23: union strategies vs the skew in member
// sizes Z_Site.
func Fig23(o Options) (Figure, error) {
	return unionSweep(o, "fig23", "Union strategies: error vs Z_Site (skew in member sizes)", "Z_Site",
		[]float64{0, 0.5, 1, 1.5, 2, 2.5, 3},
		func(x float64, seed int64) union.SitesConfig {
			cfg := union.DefaultSites(seed)
			cfg.ZSite = x
			return cfg
		},
		func(float64) int { return unionDefaultMem },
	)
}
