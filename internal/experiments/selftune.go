package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dynahist"
	"dynahist/internal/dist"
	"dynahist/internal/histogram"
	"dynahist/internal/tuner"
)

// SelfTune measures the internal/tuner feedback loop closing the
// estimation gap a skew shift opens: a maintained DADO ingests a
// workload whose hot region jumps mid-stream (so its borders lag the
// final distribution), then a fixed range-query workload replays for
// several feedback rounds. Each round reports every query's true count
// (from the exact dist.Tracker) back to the tuner, which nudges the
// overlay's counts and borders; the figure records the normalized
// estimation error after each round.
//
// Round 0 is the untuned baseline. The reproducible shape — and the
// gate the tests enforce — is a monotonically non-increasing error
// series: bounded feedback absorption (Alpha of the residual per
// record) may converge slowly, but never moves estimates away from
// the observed truth on a replayed workload.
func SelfTune(o Options) (Figure, error) {
	o = o.normalized()
	const (
		domain = 1000
		rounds = 8
		qWidth = 100
	)

	fig := Figure{
		ID:     "selftune",
		Title:  "Self-tuning feedback: estimation error per round (skew shift)",
		XLabel: "feedback round",
		YLabel: "sum |est-true| / total",
	}

	perRound := make([]float64, rounds+1)
	for seed := 0; seed < o.Seeds; seed++ {
		series, err := selfTuneRun(int64(seed+1), o.Points, domain, rounds, qWidth)
		if err != nil {
			return fig, fmt.Errorf("selftune: seed %d: %w", seed, err)
		}
		for r, e := range series {
			perRound[r] += e
		}
	}
	x := make([]float64, rounds+1)
	y := make([]float64, rounds+1)
	for r := range perRound {
		x[r] = float64(r)
		y[r] = perRound[r] / float64(o.Seeds)
	}
	fig.Series = []Series{{Label: "DADO+feedback", X: x, Y: y}}
	return fig, nil
}

// selfTuneRun executes one seeded workload and returns the error
// series: element r is the normalized error after r feedback rounds
// (element 0 untuned).
func selfTuneRun(seed int64, points, domain, rounds, qWidth int) ([]float64, error) {
	rng := rand.New(rand.NewSource(seed))
	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithMemory(1024))
	if err != nil {
		return nil, err
	}
	est := h.(dynahist.Estimator)
	truth := dist.New(domain)

	// Skew shift: the first 60% of the stream concentrates low, the
	// rest jumps high — the maintained borders spent most of their
	// maintenance budget on a region that has gone cold.
	shift := points * 3 / 5
	for i := 0; i < points; i++ {
		center := 0.25 * float64(domain)
		if i >= shift {
			center = 0.75 * float64(domain)
		}
		v := int(math.Round(rng.NormFloat64()*0.05*float64(domain) + center))
		if v < 0 {
			v = 0
		}
		if v > domain {
			v = domain
		}
		if err := est.Insert(float64(v)); err != nil {
			return nil, err
		}
		if err := truth.Insert(v); err != nil {
			return nil, err
		}
	}

	view, err := est.View()
	if err != nil {
		return nil, err
	}
	st, err := storeOfBuckets(view.Buckets())
	if err != nil {
		return nil, err
	}

	// The replayed workload: disjoint tiles over the whole domain, so
	// every region — hot, cooled, and empty — reports feedback.
	type rangeQ struct{ lo, hi int }
	var qs []rangeQ
	for lo := 0; lo+qWidth-1 <= domain; lo += qWidth {
		qs = append(qs, rangeQ{lo, lo + qWidth - 1})
	}
	errNow := func() float64 {
		s := 0.0
		for _, q := range qs {
			got := tuner.EstimateRange(st, float64(q.lo), float64(q.hi))
			s += math.Abs(got - float64(truth.RangeCount(q.lo, q.hi)))
		}
		return s / float64(truth.Total())
	}

	series := make([]float64, 0, rounds+1)
	series = append(series, errNow())
	for r := 0; r < rounds; r++ {
		// One round = one pass of the workload, each query journaling
		// its feedback and the batch applying onto the evolving
		// overlay — the same per-record bounded adjustment the server
		// applies online.
		t := tuner.New(tuner.Config{})
		for _, q := range qs {
			rec := tuner.Record{
				Lo:        float64(q.lo),
				Hi:        float64(q.hi),
				Estimated: tuner.EstimateRange(st, float64(q.lo), float64(q.hi)),
				Observed:  float64(truth.RangeCount(q.lo, q.hi)),
			}
			if err := t.Observe(rec); err != nil {
				return nil, err
			}
		}
		t.ApplyTo(st)
		series = append(series, errNow())
	}
	return series, nil
}

// storeOfBuckets flattens a served bucket list into a mutable Store —
// the same overlay construction the serving layer uses.
func storeOfBuckets(pb []dynahist.Bucket) (*histogram.Store, error) {
	if len(pb) == 0 {
		return nil, fmt.Errorf("empty bucket list")
	}
	k := len(pb[0].Counters)
	ib := make([]histogram.Bucket, len(pb))
	for i, b := range pb {
		if len(b.Counters) != k {
			return nil, fmt.Errorf("mixed bucket resolution")
		}
		ib[i] = histogram.Bucket{Left: b.Left, Right: b.Right, Subs: b.Counters}
	}
	return histogram.StoreOfBuckets(ib, k)
}
