package experiments

import (
	"fmt"

	"dynahist/internal/approx"
	"dynahist/internal/core"
	"dynahist/internal/dist"
	"dynahist/internal/distgen"
	"dynahist/internal/histogram"
)

// dynamicAlgos returns the four algorithms of Figs. 5–8 at the given
// memory budget: DC, DADO, AC (20× disk) and DVO.
func dynamicAlgos(memBytes int) []algoSpec {
	return []algoSpec{
		{name: "DC", build: func(seed int64) (updater, error) { return core.NewDCMemory(memBytes) }},
		{name: "DADO", build: func(seed int64) (updater, error) { return core.NewDADOMemory(memBytes) }},
		{name: "AC", build: func(seed int64) (updater, error) {
			return approx.New(memBytes, approx.DefaultDiskFactor, seed)
		}},
		{name: "DVO", build: func(seed int64) (updater, error) { return core.NewDVOMemory(memBytes) }},
	}
}

// sweepKS runs one parameter sweep: for every x it builds the data set
// per seed (via makeCfg), streams it in the order orderValues returns,
// and records the seed-averaged KS per algorithm.
func sweepKS(o Options, id, title, xLabel string, xs []float64,
	makeCfg func(x float64, seed int64) distgen.Config,
	algos func(x float64) []algoSpec,
	orderValues func(values []int, seed int64) []int,
) (Figure, error) {
	o = o.normalized()
	fig := Figure{ID: id, Title: title, XLabel: xLabel, YLabel: "KS statistic"}
	if len(xs) == 0 {
		return fig, fmt.Errorf("experiments: %s has no sweep values", id)
	}
	specs := algos(xs[0])
	results := make([][]float64, len(specs)) // per algo, per x
	for i := range results {
		results[i] = make([]float64, len(xs))
	}
	for xi, x := range xs {
		specs := algos(x)
		perSeed := make([][]float64, len(specs))
		for seed := range o.Seeds {
			cfg := makeCfg(x, int64(seed+1))
			cfg.Points = o.Points
			values, err := distgen.Generate(cfg)
			if err != nil {
				return fig, fmt.Errorf("%s x=%v seed=%d: %w", id, x, seed, err)
			}
			values = orderValues(values, int64(seed+1))
			for ai, spec := range specs {
				h, err := spec.build(int64(seed + 1))
				if err != nil {
					return fig, fmt.Errorf("%s %s: %w", id, spec.name, err)
				}
				truth := dist.New(cfg.Domain)
				if err := insertAll(h, truth, values); err != nil {
					return fig, fmt.Errorf("%s %s: %w", id, spec.name, err)
				}
				ks, err := ksOf(h, truth)
				if err != nil {
					return fig, fmt.Errorf("%s %s: %w", id, spec.name, err)
				}
				perSeed[ai] = append(perSeed[ai], ks)
			}
		}
		for ai := range specs {
			results[ai][xi] = mean(perSeed[ai])
		}
	}
	for ai, spec := range specs {
		fig.Series = append(fig.Series, Series{Label: spec.name, X: xs, Y: results[ai]})
	}
	return fig, nil
}

// referenceCfg is the paper's reference distribution (§7: S=1, Z=1,
// SD=2, C=2000) with the given overrides applied by the callers.
func referenceCfg(seed int64) distgen.Config {
	cfg := distgen.Reference(seed)
	return cfg
}

// Fig5 reproduces Figure 5: KS vs the cluster-center spread skew S
// under random insertions (fixed Z=1, SD=2, M=1KB).
func Fig5(o Options) (Figure, error) {
	return sweepKS(o, "fig5", "KS vs spread skew S (random inserts, Z=1 SD=2 M=1KB)", "S",
		[]float64{0, 0.5, 1, 1.5, 2, 2.5, 3},
		func(x float64, seed int64) distgen.Config {
			cfg := referenceCfg(seed)
			cfg.SpreadSkew = x
			return cfg
		},
		func(float64) []algoSpec { return dynamicAlgos(histogram.KB(1)) },
		distgen.Shuffled,
	)
}

// Fig6 reproduces Figure 6: KS vs the cluster-size skew Z under random
// insertions (fixed S=1, SD=2, M=1KB).
func Fig6(o Options) (Figure, error) {
	return sweepKS(o, "fig6", "KS vs size skew Z (random inserts, S=1 SD=2 M=1KB)", "Z",
		[]float64{0, 0.5, 1, 1.5, 2, 2.5, 3},
		func(x float64, seed int64) distgen.Config {
			cfg := referenceCfg(seed)
			cfg.SizeSkew = x
			return cfg
		},
		func(float64) []algoSpec { return dynamicAlgos(histogram.KB(1)) },
		distgen.Shuffled,
	)
}

// Fig7 reproduces Figure 7: KS vs the within-cluster standard
// deviation SD under random insertions (fixed S=1, Z=1, M=1KB).
func Fig7(o Options) (Figure, error) {
	return sweepKS(o, "fig7", "KS vs cluster SD (random inserts, S=1 Z=1 M=1KB)", "SD",
		[]float64{0, 2, 5, 10, 15, 20},
		func(x float64, seed int64) distgen.Config {
			cfg := referenceCfg(seed)
			cfg.SD = x
			return cfg
		},
		func(float64) []algoSpec { return dynamicAlgos(histogram.KB(1)) },
		distgen.Shuffled,
	)
}

// Fig8 reproduces Figure 8: KS vs available memory under random
// insertions (fixed S=1, Z=1, SD=2).
func Fig8(o Options) (Figure, error) {
	return sweepKS(o, "fig8", "KS vs memory (random inserts, S=1 Z=1 SD=2)", "memory KB",
		[]float64{0.25, 0.5, 1, 2, 3, 4},
		func(x float64, seed int64) distgen.Config { return referenceCfg(seed) },
		func(x float64) []algoSpec { return dynamicAlgos(histogram.KB(x)) },
		distgen.Shuffled,
	)
}

// Fig14 reproduces Figure 14: the AC histogram's sensitivity to its
// backing-sample disk budget, against SC and DADO (fixed Z=1, SD=2,
// C=1000, M=1KB).
func Fig14(o Options) (Figure, error) {
	mem := histogram.KB(1)
	algos := func(float64) []algoSpec {
		specs := []algoSpec{}
		for _, factor := range []int{20, 40, 60} {
			f := factor
			specs = append(specs, algoSpec{
				name:  fmt.Sprintf("AC%dX", f),
				build: func(seed int64) (updater, error) { return approx.New(mem, f, seed) },
			})
		}
		specs = append(specs,
			algoSpec{name: "SC", build: func(seed int64) (updater, error) { return newDeferredStatic(mem) }},
			algoSpec{name: "DADO", build: func(seed int64) (updater, error) { return core.NewDADOMemory(mem) }},
		)
		return specs
	}
	return sweepKS(o, "fig14", "AC disk-space sensitivity (Z=1 SD=2 C=1000 M=1KB)", "S",
		[]float64{0, 0.5, 1, 1.5, 2, 2.5, 3},
		func(x float64, seed int64) distgen.Config {
			cfg := referenceCfg(seed)
			cfg.SpreadSkew = x
			cfg.Clusters = 1000
			return cfg
		},
		algos,
		distgen.Shuffled,
	)
}

// Fig15 reproduces Figure 15: sorted insertions (fixed S=1, SD=2,
// C=2000, M=1KB), sweeping Z.
func Fig15(o Options) (Figure, error) {
	mem := histogram.KB(1)
	algos := func(float64) []algoSpec {
		return []algoSpec{
			{name: "DADO", build: func(seed int64) (updater, error) { return core.NewDADOMemory(mem) }},
			{name: "AC20X", build: func(seed int64) (updater, error) { return approx.New(mem, 20, seed) }},
			{name: "DC", build: func(seed int64) (updater, error) { return core.NewDCMemory(mem) }},
			{name: "DVO", build: func(seed int64) (updater, error) { return core.NewDVOMemory(mem) }},
		}
	}
	return sweepKS(o, "fig15", "Sorted insertions (S=1 SD=2 C=2000 M=1KB)", "Z",
		[]float64{0, 0.5, 1, 1.5, 2, 2.5, 3},
		func(x float64, seed int64) distgen.Config {
			cfg := referenceCfg(seed)
			cfg.SizeSkew = x
			return cfg
		},
		algos,
		func(values []int, seed int64) []int { return distgen.Sorted(values) },
	)
}

// Fig19 reproduces Figure 19: the real-world mail-order trace
// (substituted by the synthetic spiky trace, see DESIGN.md §4), KS vs
// memory for AC, DC and DADO.
func Fig19(o Options) (Figure, error) {
	o = o.normalized()
	fig := Figure{
		ID:     "fig19",
		Title:  "Mail-order trace (synthetic substitute): KS vs memory",
		XLabel: "memory KB",
		YLabel: "KS statistic",
	}
	xs := []float64{0.25, 0.5, 1, 2, 3, 4}
	labels := []string{"AC", "DC", "DADO"}
	results := make([][]float64, len(labels))
	for i := range results {
		results[i] = make([]float64, len(xs))
	}
	for xi, x := range xs {
		mem := histogram.KB(x)
		perSeed := make([][]float64, len(labels))
		for seed := range o.Seeds {
			values := distgen.MailOrder(int64(seed + 1))
			if o.Quick && len(values) > o.Points {
				values = values[:o.Points]
			}
			builders := []func() (updater, error){
				func() (updater, error) { return approx.New(mem, approx.DefaultDiskFactor, int64(seed+1)) },
				func() (updater, error) { return core.NewDCMemory(mem) },
				func() (updater, error) { return core.NewDADOMemory(mem) },
			}
			for ai, build := range builders {
				h, err := build()
				if err != nil {
					return fig, err
				}
				truth := dist.New(distgen.MailOrderDomain)
				if err := insertAll(h, truth, values); err != nil {
					return fig, err
				}
				ks, err := ksOf(h, truth)
				if err != nil {
					return fig, err
				}
				perSeed[ai] = append(perSeed[ai], ks)
			}
		}
		for ai := range labels {
			results[ai][xi] = mean(perSeed[ai])
		}
	}
	for ai, label := range labels {
		fig.Series = append(fig.Series, Series{Label: label, X: xs, Y: results[ai]})
	}
	return fig, nil
}
