package experiments

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"dynahist/client"
	"dynahist/internal/server"
	"dynahist/internal/wire"
)

// servingCreateRequest is the histogram configuration every serving
// run uses: a DC (cheapest per update) over the engine's default
// GOMAXPROCS shards.
func servingCreateRequest() wire.CreateRequest {
	return wire.CreateRequest{Name: "bench", Family: server.FamilyDC, MemBytes: 1024}
}

// Serving measures end-to-end HTTP ingest throughput (million
// inserts/sec) versus concurrent client count against one histserved
// registry entry, for the two wire encodings:
//
//   - http-json: batches in the JSON request body — the convenient
//     path, dominated by encoding and parsing cost.
//   - http-binary: the length-prefixed binary batch format — ~3×
//     denser and parsed with a bounds check, the intended high-volume
//     path.
//   - in-process: the same Sharded engine driven directly through
//     InsertBatch, as the no-network upper bound (constant across X).
//
// Like the concurrency experiment this measures wall-clock throughput,
// so absolute numbers vary by machine; the reproducible shape is
// binary ≥ json and both scaling with clients until the registry's
// shard locks (or the loopback stack) saturate.
func Serving(o Options) (Figure, error) {
	o = o.normalized()
	clientCounts := []float64{1, 2, 4, 8}
	const batchSize = 512

	fig := Figure{
		ID:     "serving",
		Title:  "HTTP ingest throughput: binary vs JSON batches",
		XLabel: "clients",
		YLabel: "Minserts/sec",
	}

	values := make([]float64, o.Points)
	rng := rand.New(rand.NewSource(99))
	for i := range values {
		values[i] = float64(rng.Intn(5001))
	}

	// In-process reference: one registry-shaped Sharded engine fed
	// directly.
	direct, err := newServingEngine()
	if err != nil {
		return fig, err
	}
	start := time.Now()
	for off := 0; off < len(values); off += batchSize {
		end := min(off+batchSize, len(values))
		if err := direct.InsertBatch(values[off:end]); err != nil {
			return fig, err
		}
	}
	inProcess := mops(len(values), time.Since(start))

	var jsonY, binY []float64
	for _, cf := range clientCounts {
		n := int(cf)
		j, err := ingestHTTP(values, n, batchSize, false)
		if err != nil {
			return fig, fmt.Errorf("serving: json %d clients: %w", n, err)
		}
		jsonY = append(jsonY, j)
		b, err := ingestHTTP(values, n, batchSize, true)
		if err != nil {
			return fig, fmt.Errorf("serving: binary %d clients: %w", n, err)
		}
		binY = append(binY, b)
	}

	constant := make([]float64, len(clientCounts))
	for i := range constant {
		constant[i] = inProcess
	}
	fig.Series = []Series{
		{Label: "in-process", X: clientCounts, Y: constant},
		{Label: "http-json", X: clientCounts, Y: jsonY},
		{Label: "http-binary", X: clientCounts, Y: binY},
	}
	return fig, nil
}

// servingEngine is the minimal mutation surface the experiment needs.
type servingEngine interface {
	InsertBatch(vs []float64) error
}

// newServingEngine builds the same histogram configuration the HTTP
// runs use, directly.
func newServingEngine() (servingEngine, error) {
	reg := server.NewRegistry()
	if _, err := reg.Create(servingCreateRequest()); err != nil {
		return nil, err
	}
	return reg.Histogram("bench")
}

// ingestHTTP spins up an in-process serving layer and fans the values
// out over `clients` concurrent HTTP writers in batches, returning
// million inserts/sec.
func ingestHTTP(values []float64, clients, batchSize int, binary bool) (float64, error) {
	srv, err := server.New(server.Config{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := srv.Registry().Create(servingCreateRequest()); err != nil {
		return 0, err
	}

	ctx := context.Background()
	return timedFanOut(values, clients, func(chunk []float64) error {
		c := client.New(ts.URL, &http.Client{})
		for len(chunk) > 0 {
			n := min(batchSize, len(chunk))
			var err error
			if binary {
				_, err = c.InsertBinary(ctx, "bench", chunk[:n])
			} else {
				_, err = c.Insert(ctx, "bench", chunk[:n])
			}
			if err != nil {
				return err
			}
			chunk = chunk[n:]
		}
		return nil
	})
}
