package experiments

import (
	"fmt"
	"time"

	"dynahist/internal/core"
	"dynahist/internal/dist"
	"dynahist/internal/distgen"
	"dynahist/internal/histogram"
	"dynahist/internal/metric"
	"dynahist/internal/static"
)

// staticComparisonMem is the paper's memory budget for Figs. 9–12
// (0.14 KB).
const staticComparisonMemKB = 0.14

// staticSweep runs the Figs. 9–12 comparison: SADO, SVO, SC, DADO and
// SSBM on a C=50 workload, sweeping one parameter. The static
// histograms are built from the complete exact distribution; DADO sees
// the data as a random insertion stream.
func staticSweep(o Options, id, title, xLabel string, xs []float64,
	makeCfg func(x float64, seed int64) distgen.Config,
	memOf func(x float64) float64,
) (Figure, error) {
	o = o.normalized()
	fig := Figure{ID: id, Title: title, XLabel: xLabel, YLabel: "KS statistic"}
	labels := []string{"SADO", "SVO", "SC", "DADO", "SSBM"}
	results := make([][]float64, len(labels))
	for i := range results {
		results[i] = make([]float64, len(xs))
	}
	for xi, x := range xs {
		mem := histogram.KB(memOf(x))
		perSeed := make([][]float64, len(labels))
		for seed := range o.Seeds {
			cfg := makeCfg(x, int64(seed+1))
			cfg.Points = o.Points
			values, err := distgen.Generate(cfg)
			if err != nil {
				return fig, fmt.Errorf("%s: %w", id, err)
			}
			truth := dist.New(cfg.Domain)
			for _, v := range values {
				if err := truth.Insert(v); err != nil {
					return fig, err
				}
			}
			kss, err := staticComparisonKS(values, truth, mem, int64(seed+1))
			if err != nil {
				return fig, fmt.Errorf("%s x=%v: %w", id, x, err)
			}
			for ai := range labels {
				perSeed[ai] = append(perSeed[ai], kss[ai])
			}
		}
		for ai := range labels {
			results[ai][xi] = mean(perSeed[ai])
		}
	}
	for ai, label := range labels {
		fig.Series = append(fig.Series, Series{Label: label, X: xs, Y: results[ai]})
	}
	return fig, nil
}

// staticComparisonKS returns the KS of SADO, SVO, SC, DADO, SSBM (in
// that order) on the given data at the given memory budget.
func staticComparisonKS(values []int, truth *dist.Tracker, mem int, seed int64) ([5]float64, error) {
	var out [5]float64
	builders := []static.Kind{static.KindSADO, static.KindVOptimal, static.KindCompressed}
	for i, kind := range builders {
		h, err := static.BuildMemory(kind, truth, mem)
		if err != nil {
			return out, fmt.Errorf("%v: %w", kind, err)
		}
		ks, err := metric.KS(h.CDF, truth)
		if err != nil {
			return out, err
		}
		out[i] = ks
	}
	// DADO consumes the stream in random order.
	dado, err := core.NewDADOMemory(mem)
	if err != nil {
		return out, err
	}
	for _, v := range distgen.Shuffled(values, seed) {
		if err := dado.Insert(float64(v)); err != nil {
			return out, err
		}
	}
	ks, err := metric.KS(dado.CDF, truth)
	if err != nil {
		return out, err
	}
	out[3] = ks
	// SSBM.
	ssbm, err := static.SSBMMemory(truth, mem)
	if err != nil {
		return out, err
	}
	ks, err = metric.KS(ssbm.CDF, truth)
	if err != nil {
		return out, err
	}
	out[4] = ks
	return out, nil
}

// fig9Cfg is the Figs. 9–12 base configuration: C=50, SD=1.
func fig9Cfg(seed int64) distgen.Config {
	cfg := distgen.Reference(seed)
	cfg.Clusters = 50
	cfg.SD = 1
	return cfg
}

// Fig9 reproduces Figure 9: static comparison, KS vs spread skew S
// (fixed Z=1, SD=1, C=50, M=0.14KB).
func Fig9(o Options) (Figure, error) {
	return staticSweep(o, "fig9", "Static comparison: KS vs S (Z=1 SD=1 C=50 M=0.14KB)", "S",
		[]float64{0, 0.5, 1, 1.5, 2, 2.5, 3},
		func(x float64, seed int64) distgen.Config {
			cfg := fig9Cfg(seed)
			cfg.SpreadSkew = x
			return cfg
		},
		func(float64) float64 { return staticComparisonMemKB },
	)
}

// Fig10 reproduces Figure 10: static comparison, KS vs size skew Z.
func Fig10(o Options) (Figure, error) {
	return staticSweep(o, "fig10", "Static comparison: KS vs Z (S=1 SD=1 C=50 M=0.14KB)", "Z",
		[]float64{0, 0.5, 1, 1.5, 2, 2.5, 3},
		func(x float64, seed int64) distgen.Config {
			cfg := fig9Cfg(seed)
			cfg.SizeSkew = x
			return cfg
		},
		func(float64) float64 { return staticComparisonMemKB },
	)
}

// Fig11 reproduces Figure 11: static comparison, KS vs cluster SD.
func Fig11(o Options) (Figure, error) {
	return staticSweep(o, "fig11", "Static comparison: KS vs SD (S=1 Z=1 C=50 M=0.14KB)", "SD",
		[]float64{0, 1, 2, 3, 4, 5},
		func(x float64, seed int64) distgen.Config {
			cfg := fig9Cfg(seed)
			cfg.SD = x
			return cfg
		},
		func(float64) float64 { return staticComparisonMemKB },
	)
}

// Fig12 reproduces Figure 12: static comparison, KS vs memory.
func Fig12(o Options) (Figure, error) {
	return staticSweep(o, "fig12", "Static comparison: KS vs memory (S=1 Z=1 SD=1 C=50)", "memory KB",
		[]float64{0.11, 0.12, 0.13, 0.14, 0.15, 0.16, 0.17},
		func(x float64, seed int64) distgen.Config { return fig9Cfg(seed) },
		func(x float64) float64 { return x },
	)
}

// Fig13 reproduces Figure 13: construction wall-time vs memory for
// SVO, SSBM, SC and DADO on the C=200 workload. Absolute times depend
// on the host; the paper's point is the ordering (SVO far slower) and
// the growth with memory.
func Fig13(o Options) (Figure, error) {
	o = o.normalized()
	fig := Figure{
		ID:     "fig13",
		Title:  "Construction time vs memory (S=1 Z=1 SD=1 C=200)",
		XLabel: "memory KB",
		YLabel: "seconds",
	}
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	labels := []string{"SVO", "SSBM", "SC", "DADO"}
	results := make([][]float64, len(labels))
	for i := range results {
		results[i] = make([]float64, len(xs))
	}
	for xi, x := range xs {
		mem := histogram.KB(x)
		perSeed := make([][]float64, len(labels))
		for seed := range o.Seeds {
			cfg := distgen.Reference(int64(seed + 1))
			cfg.Clusters = 200
			cfg.SD = 1
			cfg.Points = o.Points
			values, err := distgen.Generate(cfg)
			if err != nil {
				return fig, err
			}
			truth := dist.New(cfg.Domain)
			for _, v := range values {
				if err := truth.Insert(v); err != nil {
					return fig, err
				}
			}
			shuffled := distgen.Shuffled(values, int64(seed+1))

			timeOf := func(f func() error) (float64, error) {
				start := time.Now()
				if err := f(); err != nil {
					return 0, err
				}
				return time.Since(start).Seconds(), nil
			}
			timings := []func() error{
				func() error { _, err := static.BuildMemory(static.KindVOptimal, truth, mem); return err },
				func() error { _, err := static.SSBMMemory(truth, mem); return err },
				func() error { _, err := static.BuildMemory(static.KindCompressed, truth, mem); return err },
				func() error {
					h, err := core.NewDADOMemory(mem)
					if err != nil {
						return err
					}
					for _, v := range shuffled {
						if err := h.Insert(float64(v)); err != nil {
							return err
						}
					}
					return nil
				},
			}
			for ai, f := range timings {
				sec, err := timeOf(f)
				if err != nil {
					return fig, fmt.Errorf("fig13 %s: %w", labels[ai], err)
				}
				perSeed[ai] = append(perSeed[ai], sec)
			}
		}
		for ai := range labels {
			results[ai][xi] = mean(perSeed[ai])
		}
	}
	for ai, label := range labels {
		fig.Series = append(fig.Series, Series{Label: label, X: xs, Y: results[ai]})
	}
	return fig, nil
}
