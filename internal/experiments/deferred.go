package experiments

import (
	"errors"
	"math"

	"dynahist/internal/dist"
	"dynahist/internal/histogram"
	"dynahist/internal/static"
)

// deferredStatic adapts a static constructor to the streaming updater
// interface used by the sweeps: it accumulates the exact multiset and
// (re)builds the static histogram lazily at evaluation time. This is
// how the paper treats SC in the dynamic comparisons — the static
// algorithm is given the whole data set ("construction of a SC
// histogram requires sorting of the input data set and for this purpose
// it was given as much memory as needed").
type deferredStatic struct {
	kind     static.Kind
	memBytes int

	counts map[int]int64
	total  int64
	maxV   int

	dirty  bool
	cached *histogram.Piecewise
}

func newDeferredStatic(memBytes int) (updater, error) {
	return newDeferredStaticKind(static.KindCompressed, memBytes)
}

func newDeferredStaticKind(kind static.Kind, memBytes int) (updater, error) {
	if memBytes < 1 {
		return nil, errors.New("experiments: static memory budget < 1")
	}
	return &deferredStatic{kind: kind, memBytes: memBytes, counts: map[int]int64{}, dirty: true}, nil
}

func (d *deferredStatic) Insert(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	iv := int(math.Round(v))
	if iv < 0 {
		iv = 0
	}
	d.counts[iv]++
	d.total++
	if iv > d.maxV {
		d.maxV = iv
	}
	d.dirty = true
	return nil
}

func (d *deferredStatic) Delete(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	iv := int(math.Round(v))
	if d.counts[iv] == 0 {
		return errors.New("experiments: delete of absent value from static multiset")
	}
	d.counts[iv]--
	if d.counts[iv] == 0 {
		delete(d.counts, iv)
	}
	d.total--
	d.dirty = true
	return nil
}

func (d *deferredStatic) CDF(x float64) float64 {
	h := d.current()
	if h == nil {
		return 0
	}
	return h.CDF(x)
}

func (d *deferredStatic) current() *histogram.Piecewise {
	if !d.dirty {
		return d.cached
	}
	d.dirty = false
	d.cached = nil
	if d.total == 0 {
		return nil
	}
	tr := dist.New(d.maxV)
	for v, c := range d.counts {
		if err := tr.InsertN(v, c); err != nil {
			return nil
		}
	}
	h, err := static.BuildMemory(d.kind, tr, d.memBytes)
	if err != nil {
		return nil
	}
	d.cached = h
	return h
}
