package experiments

import (
	"math"
	"testing"

	"dynahist/internal/static"
)

func TestDeferredStaticBasics(t *testing.T) {
	d, err := newDeferredStatic(256)
	if err != nil {
		t.Fatal(err)
	}
	if d.CDF(10) != 0 {
		t.Error("empty deferred static should have zero CDF")
	}
	for v := range 100 {
		for range 3 {
			if err := d.Insert(float64(v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// CDF rebuilt lazily and normalised.
	if got := d.CDF(100); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(max) = %v, want 1", got)
	}
	if got := d.CDF(49); math.Abs(got-0.5) > 0.1 {
		t.Errorf("CDF(49) = %v, want ≈0.5", got)
	}
	// Delete updates the underlying multiset.
	if err := d.Delete(50); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(50); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(50); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(50); err == nil {
		t.Error("deleting a 4th copy of 50: want error")
	}
	if err := d.Insert(math.NaN()); err == nil {
		t.Error("Insert(NaN): want error")
	}
	if err := d.Delete(math.Inf(1)); err == nil {
		t.Error("Delete(Inf): want error")
	}
}

func TestDeferredStaticKinds(t *testing.T) {
	for _, kind := range []static.Kind{static.KindCompressed, static.KindEquiDepth, static.KindSSBM} {
		d, err := newDeferredStaticKind(kind, 256)
		if err != nil {
			t.Fatal(err)
		}
		for v := range 200 {
			if err := d.Insert(float64(v % 50)); err != nil {
				t.Fatal(err)
			}
		}
		prev := 0.0
		for x := -1.0; x <= 51; x += 1 {
			c := d.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
				t.Fatalf("%v: CDF not monotone at %v", kind, x)
			}
			prev = c
		}
	}
	if _, err := newDeferredStaticKind(static.KindSSBM, 0); err == nil {
		t.Error("0 bytes: want error")
	}
}

func TestDeferredStaticCaches(t *testing.T) {
	d, err := newDeferredStatic(256)
	if err != nil {
		t.Fatal(err)
	}
	for v := range 50 {
		if err := d.Insert(float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	ds := d.(*deferredStatic)
	_ = d.CDF(25)
	first := ds.cached
	_ = d.CDF(30)
	if ds.cached != first {
		t.Error("CDF without intervening update must reuse the cache")
	}
	if err := d.Insert(1); err != nil {
		t.Fatal(err)
	}
	_ = d.CDF(25)
	if ds.cached == first {
		t.Error("update must invalidate the cache")
	}
}
