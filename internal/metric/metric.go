// Package metric implements the histogram quality metrics of paper
// §6.2: the Kolmogorov-Smirnov statistic (the paper's primary metric),
// the chi-square statistic over value bins, and the average relative
// range-query error of Eq. (7). Only the statistics themselves are
// computed, never their significance — the paper compares algorithms by
// relative goodness-of-fit.
package metric

import (
	"errors"
	"math"

	"dynahist/internal/dist"
)

// ErrEmpty is returned when a metric is requested against an empty
// ground-truth distribution.
var ErrEmpty = errors.New("metric: empty ground-truth distribution")

// CDF is any cumulative distribution function; histogram CDFs satisfy
// it directly.
type CDF func(x float64) float64

// KS returns the Kolmogorov-Smirnov statistic between the approximate
// distribution given by approx and the exact distribution in truth:
//
//	D = max over x of |F_approx(x) − F_truth(x)|
//
// The exact CDF is a step function over the integer domain, so the
// supremum is attained at a step point, approached from the left or the
// right; the piecewise-linear histogram CDF is monotone between integer
// points. Evaluating both one-sided differences at every integer value
// therefore yields the exact supremum.
//
// Integer convention: the histogram attributes the mass of integer
// value v to the interval [v, v+1), so the histogram CDF is sampled at
// v+1 when compared against the exact "count of points ≤ v".
func KS(approx CDF, truth *dist.Tracker) (float64, error) {
	if truth.Total() == 0 {
		return 0, ErrEmpty
	}
	cum := truth.Cumulative()
	total := float64(truth.Total())
	d := 0.0
	prevExact := 0.0
	for v := 0; v < len(cum); v++ {
		exact := float64(cum[v]) / total
		a := approx(float64(v) + 1)
		// Right limit at the step: both CDFs include value v.
		if diff := math.Abs(a - exact); diff > d {
			d = diff
		}
		// Left limit: the exact CDF has not yet jumped.
		al := approx(float64(v))
		if diff := math.Abs(al - prevExact); diff > d {
			d = diff
		}
		prevExact = exact
	}
	return d, nil
}

// KSBetween returns the KS statistic between two arbitrary CDFs,
// evaluated on the integer grid [0, domain] plus half-points. It is
// used where both distributions are approximations (e.g. comparing two
// union-construction strategies against each other).
func KSBetween(a, b CDF, domain int) float64 {
	d := 0.0
	for v := 0; v <= domain+1; v++ {
		x := float64(v)
		if diff := math.Abs(a(x) - b(x)); diff > d {
			d = diff
		}
		if diff := math.Abs(a(x+0.5) - b(x+0.5)); diff > d {
			d = diff
		}
	}
	return d
}

// ChiSquare returns the chi-square statistic between the histogram's
// estimated per-bin counts and the exact counts, over nbins equal-width
// bins spanning the domain. estimator must return the approximate count
// of points with integer value in [lo, hi]. Bins whose exact count is
// zero contribute (est)²/1 to avoid division by zero, following the
// usual small-expectation guard.
func ChiSquare(estimator func(lo, hi float64) float64, truth *dist.Tracker, nbins int) (float64, error) {
	if truth.Total() == 0 {
		return 0, ErrEmpty
	}
	if nbins < 1 {
		return 0, errors.New("metric: nbins < 1")
	}
	domain := truth.Domain()
	chi2 := 0.0
	for b := range nbins {
		lo := b * (domain + 1) / nbins
		hi := (b+1)*(domain+1)/nbins - 1
		if hi < lo {
			continue
		}
		exact := float64(truth.RangeCount(lo, hi))
		est := estimator(float64(lo), float64(hi))
		denom := exact
		if denom < 1 {
			denom = 1
		}
		chi2 += (est - exact) * (est - exact) / denom
	}
	return chi2, nil
}

// RangeQuery is one closed range predicate lo ≤ X ≤ hi over integer
// values.
type RangeQuery struct {
	Lo, Hi int
}

// AvgRelativeError returns the paper's Eq. (7) error metric over the
// given query set:
//
//	E = 100/Q · Σ_q |S_q − S'_q| / S_q
//
// where S_q is the exact result size and S'_q the estimate. Queries
// with S_q = 0 are skipped (the metric is undefined for them); if every
// query is skipped the function returns an error.
func AvgRelativeError(estimator func(lo, hi float64) float64, truth *dist.Tracker, queries []RangeQuery) (float64, error) {
	if truth.Total() == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	used := 0
	for _, q := range queries {
		exact := float64(truth.RangeCount(q.Lo, q.Hi))
		if exact == 0 {
			continue
		}
		est := estimator(float64(q.Lo), float64(q.Hi))
		sum += math.Abs(est-exact) / exact
		used++
	}
	if used == 0 {
		return 0, errors.New("metric: no query had a non-empty exact answer")
	}
	return 100 * sum / float64(used), nil
}

// UniformQueries generates q closed range queries whose endpoints are
// spread deterministically over the domain: query i covers
// [i·step, i·step + width]. It provides the unbiased fixed query set the
// paper discusses when motivating KS over Eq. (7).
func UniformQueries(domain, q int) []RangeQuery {
	if q < 1 || domain < 0 {
		return nil
	}
	queries := make([]RangeQuery, 0, q)
	for i := range q {
		lo := i * (domain + 1) / q
		hi := lo + (domain+1)/4
		if hi > domain {
			hi = domain
		}
		queries = append(queries, RangeQuery{Lo: lo, Hi: hi})
	}
	return queries
}
