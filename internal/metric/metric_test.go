package metric

import (
	"math"
	"testing"

	"dynahist/internal/dist"
	"dynahist/internal/histogram"
)

// exactHistogram builds a piecewise histogram with one bucket per
// domain value, i.e. a perfect approximation of the tracker.
func exactHistogram(t *testing.T, tr *dist.Tracker) *histogram.Piecewise {
	t.Helper()
	var buckets []histogram.Bucket
	values, counts := tr.NonZero()
	for i, v := range values {
		buckets = append(buckets, histogram.Bucket{
			Left:  float64(v),
			Right: float64(v) + 1,
			Subs:  []float64{float64(counts[i])},
		})
	}
	p, err := histogram.NewPiecewise(buckets)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func populated(t *testing.T, domain int, values ...int) *dist.Tracker {
	t.Helper()
	tr := dist.New(domain)
	for _, v := range values {
		if err := tr.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestKSPerfectApproximationIsZero(t *testing.T) {
	tr := populated(t, 20, 3, 3, 7, 12, 12, 12, 19)
	p := exactHistogram(t, tr)
	d, err := KS(p.CDF, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Errorf("KS of exact histogram = %v, want 0", d)
	}
}

func TestKSEmptyTruth(t *testing.T) {
	tr := dist.New(5)
	if _, err := KS(func(float64) float64 { return 0 }, tr); err == nil {
		t.Error("want error for empty truth")
	}
}

func TestKSDetectsShift(t *testing.T) {
	// All mass at 0 in truth; approximation puts all mass at 10.
	tr := populated(t, 10, 0, 0, 0, 0)
	p, err := histogram.NewPiecewise([]histogram.Bucket{
		{Left: 10, Right: 11, Subs: []float64{4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := KS(p.CDF, tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("KS of maximally-shifted histogram = %v, want 1", d)
	}
}

func TestKSHalfMassOff(t *testing.T) {
	// Truth: 2 points at 0, 2 at 10. Approx: 4 points at 0.
	tr := populated(t, 10, 0, 0, 10, 10)
	p, err := histogram.NewPiecewise([]histogram.Bucket{
		{Left: 0, Right: 1, Subs: []float64{4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := KS(p.CDF, tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("KS = %v, want 0.5", d)
	}
}

func TestKSInUnitInterval(t *testing.T) {
	tr := populated(t, 50, 1, 5, 5, 20, 33, 33, 33, 49)
	p, err := histogram.NewPiecewise([]histogram.Bucket{
		{Left: 0, Right: 51, Subs: []float64{8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := KS(p.CDF, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 || d > 1 {
		t.Errorf("KS = %v outside [0,1]", d)
	}
	if d == 0 {
		t.Error("uniform bucket over spiky data should have positive KS")
	}
}

func TestKSBetween(t *testing.T) {
	a := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 10 {
			return 1
		}
		return x / 10
	}
	b := func(x float64) float64 {
		if x < 5 {
			return 0
		}
		return 1
	}
	d := KSBetween(a, b, 10)
	if math.Abs(d-0.5) > 0.06 {
		t.Errorf("KSBetween = %v, want ≈0.5", d)
	}
	if KSBetween(a, a, 10) != 0 {
		t.Error("KSBetween(a,a) must be 0")
	}
}

func TestChiSquareZeroForPerfect(t *testing.T) {
	tr := populated(t, 20, 1, 1, 5, 9, 14, 14)
	p := exactHistogram(t, tr)
	chi2, err := ChiSquare(p.EstimateRange, tr, 7)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 > 1e-9 {
		t.Errorf("chi2 of exact = %v, want 0", chi2)
	}
}

func TestChiSquarePositiveForBad(t *testing.T) {
	tr := populated(t, 20, 0, 0, 0, 0, 0)
	p, err := histogram.NewPiecewise([]histogram.Bucket{
		{Left: 15, Right: 21, Subs: []float64{5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	chi2, err := ChiSquare(p.EstimateRange, tr, 7)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 <= 0 {
		t.Errorf("chi2 = %v, want > 0", chi2)
	}
}

func TestChiSquareErrors(t *testing.T) {
	tr := dist.New(5)
	if _, err := ChiSquare(func(lo, hi float64) float64 { return 0 }, tr, 3); err == nil {
		t.Error("empty truth: want error")
	}
	tr2 := populated(t, 5, 1)
	if _, err := ChiSquare(func(lo, hi float64) float64 { return 0 }, tr2, 0); err == nil {
		t.Error("nbins=0: want error")
	}
}

func TestAvgRelativeError(t *testing.T) {
	tr := populated(t, 10, 2, 2, 8, 8)
	p := exactHistogram(t, tr)
	queries := []RangeQuery{{0, 5}, {6, 10}, {0, 10}}
	e, err := AvgRelativeError(p.EstimateRange, tr, queries)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-9 {
		t.Errorf("error of exact = %v, want 0", e)
	}
	// Estimator that always doubles: relative error 100%.
	double := func(lo, hi float64) float64 { return 2 * float64(tr.RangeCount(int(lo), int(hi))) }
	e, err = AvgRelativeError(double, tr, queries)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-100) > 1e-9 {
		t.Errorf("error of doubling estimator = %v, want 100", e)
	}
}

func TestAvgRelativeErrorSkipsEmpty(t *testing.T) {
	tr := populated(t, 10, 2)
	queries := []RangeQuery{{5, 9}} // exact answer 0 — skipped
	if _, err := AvgRelativeError(func(lo, hi float64) float64 { return 0 }, tr, queries); err == nil {
		t.Error("all-empty queries: want error")
	}
}

func TestUniformQueries(t *testing.T) {
	qs := UniformQueries(100, 10)
	if len(qs) != 10 {
		t.Fatalf("got %d queries, want 10", len(qs))
	}
	for _, q := range qs {
		if q.Lo < 0 || q.Hi > 100 || q.Hi < q.Lo {
			t.Errorf("bad query %+v", q)
		}
	}
	if UniformQueries(100, 0) != nil {
		t.Error("q=0 should return nil")
	}
}
