package metric

import (
	"math/rand"
	"testing"

	"dynahist/internal/dist"
)

func BenchmarkKS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := dist.New(5000)
	for range 100000 {
		if err := tr.Insert(rng.Intn(5001)); err != nil {
			b.Fatal(err)
		}
	}
	cdf := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 5000 {
			return 1
		}
		return x / 5000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := KS(cdf, tr); err != nil {
			b.Fatal(err)
		}
	}
}
