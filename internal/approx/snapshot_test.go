package approx

import (
	"math"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	h, err := NewBuckets(8, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	for v := range 500 {
		if err := h.Insert(float64(v % 97)); err != nil {
			t.Fatal(err)
		}
	}
	for v := range 20 {
		if err := h.Delete(float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != h.Total() {
		t.Errorf("Total = %v, want %v", r.Total(), h.Total())
	}
	if r.SampleSize() != h.SampleSize() {
		t.Errorf("SampleSize = %d, want %d", r.SampleSize(), h.SampleSize())
	}
	if r.SampleCapacity() != h.SampleCapacity() {
		t.Errorf("SampleCapacity = %d, want %d", r.SampleCapacity(), h.SampleCapacity())
	}
	if r.MaxBuckets() != h.MaxBuckets() {
		t.Errorf("MaxBuckets = %d, want %d", r.MaxBuckets(), h.MaxBuckets())
	}
	// The histogram is recomputed from the identical restored sample, so
	// reads agree exactly.
	for _, x := range []float64{0, 10, 48.5, 96, 1000} {
		if got, want := r.CDF(x), h.CDF(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
	// The restored histogram keeps maintaining.
	if err := r.Insert(3); err != nil {
		t.Fatal(err)
	}
	if r.Total() != h.Total()+1 {
		t.Errorf("Total after insert = %v, want %v", r.Total(), h.Total()+1)
	}
}

func TestSnapshotRoundTripIncremental(t *testing.T) {
	h, err := NewBuckets(8, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetGamma(0.5); err != nil {
		t.Fatal(err)
	}
	for v := range 300 {
		if err := h.Insert(float64(v % 53)); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Restore(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.gamma != 0.5 {
		t.Errorf("gamma = %v, want 0.5", r.gamma)
	}
	if r.Total() != h.Total() {
		t.Errorf("Total = %v, want %v", r.Total(), h.Total())
	}
	if c := r.CDF(26); c <= 0 || c >= 1 {
		t.Errorf("CDF(26) = %v, want in (0,1)", c)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	h, err := NewBuckets(4, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range 100 {
		if err := h.Insert(float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": blob[:len(blob)/2],
		"bad magic": append([]byte{0, 0, 0, 0}, blob[4:]...),
		"trailing":  append(append([]byte{}, blob...), 0xff),
	}
	for name, data := range cases {
		if _, err := Restore(data); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func FuzzRestoreAC(f *testing.F) {
	h, err := NewBuckets(8, 100, 3)
	if err != nil {
		f.Fatal(err)
	}
	for v := range 200 {
		if err := h.Insert(float64(v % 31)); err != nil {
			f.Fatal(err)
		}
	}
	blob, err := h.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add(blob[:len(blob)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Restore(data)
		if err != nil {
			return
		}
		if err := r.Insert(42); err != nil {
			t.Fatalf("restored histogram rejects inserts: %v", err)
		}
		if c := r.CDF(1e9); c < 0 || c > 1+1e-9 {
			t.Fatalf("restored CDF out of range: %v", c)
		}
	})
}
