// Package approx implements the Approximate Compressed (AC) histogram
// of Gibbons, Matias and Poosala (VLDB'97), the main competitor the
// paper evaluates dynamic histograms against (§2, §7).
//
// AC keeps a small compressed histogram in memory and a large reservoir
// "backing sample" on disk (here: in the Reservoir type, charged
// diskFactor × memory bytes). In the paper's experiments the
// performance parameter γ is set to −1, which recomputes the histogram
// from the backing sample at every update — the best-quality, worst-
// speed setting. This implementation realises γ = −1 lazily: the
// histogram is rebuilt from the sample on the first read after any
// update, which is observationally identical and keeps the experiments
// tractable. A γ > 0 incremental mode with split/merge maintenance and
// recompute fallback is also provided.
package approx

import (
	"fmt"
	"math"
	"sort"

	"dynahist/internal/dist"
	"dynahist/internal/histerr"
	"dynahist/internal/histogram"
	"dynahist/internal/sample"
	"dynahist/internal/static"
)

// DefaultDiskFactor is the backing-sample disk budget relative to the
// in-memory histogram, following the suggestion of the AC authors the
// paper adopts ("disk space equal to twenty times the main memory").
const DefaultDiskFactor = 20

// RecomputeAlways is the γ value (−1) that recomputes the histogram on
// every update — the setting used throughout the paper's evaluation.
const RecomputeAlways = -1.0

// ErrEmpty is returned when deleting from an empty histogram.
var ErrEmpty = fmt.Errorf("approx: %w", histerr.ErrEmpty)

// AC is an Approximate Compressed histogram backed by a reservoir
// sample.
type AC struct {
	nBuckets int
	gamma    float64
	seed     int64
	res      *sample.Reservoir
	total    float64

	dirty  bool
	cached *histogram.Piecewise

	// Incremental mode state (γ > 0).
	live       *histogram.Piecewise
	recomputes int
}

// New returns an AC histogram given the in-memory byte budget, the
// disk-space factor for the backing sample, and a seed for the
// reservoir. γ defaults to RecomputeAlways.
func New(memBytes, diskFactor int, seed int64) (*AC, error) {
	n, err := histogram.BucketsForMemory(memBytes, 1)
	if err != nil {
		return nil, err
	}
	if diskFactor < 1 {
		return nil, fmt.Errorf("approx: %w: disk factor %d < 1", histerr.ErrOption, diskFactor)
	}
	sampleCap := diskFactor * memBytes / 4 // one 4-byte value per slot
	if sampleCap < 1 {
		sampleCap = 1
	}
	return NewBuckets(n, sampleCap, seed)
}

// NewBuckets returns an AC histogram with explicit bucket and sample
// capacities.
func NewBuckets(nBuckets, sampleCap int, seed int64) (*AC, error) {
	if nBuckets < 1 {
		return nil, fmt.Errorf("approx: %w: nBuckets %d < 1", histerr.ErrBudget, nBuckets)
	}
	res, err := sample.NewReservoir(sampleCap, seed)
	if err != nil {
		return nil, err
	}
	return &AC{nBuckets: nBuckets, gamma: RecomputeAlways, seed: seed, res: res, dirty: true}, nil
}

// SetGamma sets the maintenance threshold: RecomputeAlways (−1)
// recomputes per update; γ > 0 maintains the histogram incrementally,
// splitting overflowing buckets and recomputing only when a cheap
// split-merge cannot restore the constraint.
func (a *AC) SetGamma(g float64) error {
	if math.IsNaN(g) || (g != RecomputeAlways && g < 0) {
		return fmt.Errorf("approx: %w: gamma %v must be -1 or ≥ 0", histerr.ErrOption, g)
	}
	a.gamma = g
	a.dirty = true
	a.live = nil
	return nil
}

// MaxBuckets returns the in-memory bucket budget.
func (a *AC) MaxBuckets() int { return a.nBuckets }

// SampleSize returns the current backing-sample size.
func (a *AC) SampleSize() int { return a.res.Len() }

// SampleCapacity returns the backing-sample capacity.
func (a *AC) SampleCapacity() int { return a.res.Capacity() }

// Recomputes returns how many full recomputations the incremental mode
// has performed (always 0 in γ = −1 mode, which recomputes lazily).
func (a *AC) Recomputes() int { return a.recomputes }

// Total returns the live data count.
func (a *AC) Total() float64 { return a.total }

// Insert adds one occurrence of v.
func (a *AC) Insert(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	if err := a.res.Insert(v); err != nil {
		return err
	}
	a.total++
	if a.gamma == RecomputeAlways {
		a.dirty = true
		return nil
	}
	a.incrementalInsert(v)
	return nil
}

// Delete removes one occurrence of v. The value is also removed from
// the backing sample when present; the sample is not refilled, which is
// what degrades AC under heavy deletion (paper Fig. 17).
func (a *AC) Delete(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	if a.total < 1 {
		return ErrEmpty
	}
	a.res.Delete(v)
	a.total--
	if a.gamma == RecomputeAlways {
		a.dirty = true
		return nil
	}
	a.incrementalDelete(v)
	return nil
}

// CDF returns the approximate fraction of mass in (-∞, x].
func (a *AC) CDF(x float64) float64 {
	h := a.current()
	if h == nil {
		return 0
	}
	return h.CDF(x)
}

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (a *AC) EstimateRange(lo, hi float64) float64 {
	h := a.current()
	if h == nil {
		return 0
	}
	return h.EstimateRange(lo, hi)
}

// Buckets returns the current bucket list (possibly rebuilding from
// the sample first).
func (a *AC) Buckets() []histogram.Bucket {
	h := a.current()
	if h == nil {
		return nil
	}
	return h.Buckets()
}

// current returns the up-to-date histogram for reads.
func (a *AC) current() *histogram.Piecewise {
	if a.gamma != RecomputeAlways && a.live != nil {
		return a.live
	}
	if a.dirty {
		a.cached = a.rebuild()
		a.dirty = false
	}
	return a.cached
}

// rebuild constructs a compressed histogram from the backing sample,
// scaled to the live data count.
func (a *AC) rebuild() *histogram.Piecewise {
	vals := a.res.Values()
	if len(vals) == 0 || a.total <= 0 {
		return nil
	}
	maxV := 0
	for _, v := range vals {
		if iv := int(math.Round(v)); iv > maxV {
			maxV = iv
		}
	}
	tr := dist.New(maxV)
	for _, v := range vals {
		iv := int(math.Round(v))
		if iv < 0 {
			iv = 0
		}
		_ = tr.Insert(iv)
	}
	p, err := static.Compressed(tr, a.nBuckets)
	if err != nil {
		return nil
	}
	// Scale sample counts up to the live population.
	ratio := a.total / float64(len(vals))
	buckets := p.Buckets()
	for i := range buckets {
		for j := range buckets[i].Subs {
			buckets[i].Subs[j] *= ratio
		}
	}
	scaled, err := histogram.NewPiecewise(buckets)
	if err != nil {
		return nil
	}
	return scaled
}

// incrementalInsert maintains the γ > 0 mode: bump the containing
// bucket; if its count exceeds the (1+γ)·N/B threshold, try a
// split-merge; if no merge fits under the threshold, recompute from the
// backing sample (the GMP'97 procedure).
func (a *AC) incrementalInsert(v float64) {
	if a.live == nil {
		a.live = a.rebuild()
		if a.live == nil {
			return
		}
		return
	}
	_ = a.live.Insert(v)
	threshold := (1 + a.gamma) * a.total / float64(a.nBuckets)
	buckets := a.live.Buckets()
	over := -1
	for i := range buckets {
		if buckets[i].Count() > threshold {
			over = i
			break
		}
	}
	if over < 0 {
		return
	}
	// Find the lightest adjacent pair not involving the overflowing
	// bucket.
	bestPair, bestSum := -1, math.Inf(1)
	for i := 0; i+1 < len(buckets); i++ {
		if i == over || i+1 == over {
			continue
		}
		s := buckets[i].Count() + buckets[i+1].Count()
		if s < bestSum {
			bestPair, bestSum = i, s
		}
	}
	if bestPair < 0 || bestSum > threshold {
		a.recomputes++
		a.live = a.rebuild()
		return
	}
	// GMP'97 split the overflowing bucket at the approximate median of
	// the backing sample within its range, falling back to the midpoint
	// when the sample is too thin there.
	splitAt := a.sampleMedianIn(buckets[over].Left, buckets[over].Right)
	a.live = splitMerge(buckets, over, bestPair, splitAt)
	if a.live == nil {
		a.recomputes++
		a.live = a.rebuild()
	}
}

// sampleMedianIn returns the median backing-sample value inside
// [lo, hi), or NaN when fewer than two sample points fall there.
func (a *AC) sampleMedianIn(lo, hi float64) float64 {
	var inside []float64
	for _, v := range a.res.Values() {
		if v >= lo && v < hi {
			inside = append(inside, v)
		}
	}
	if len(inside) < 2 {
		return math.NaN()
	}
	sort.Float64s(inside)
	return inside[len(inside)/2]
}

// incrementalDelete decrements the bucket containing v (or the nearest
// non-empty one).
func (a *AC) incrementalDelete(v float64) {
	if a.live == nil {
		a.live = a.rebuild()
		return
	}
	_ = a.live.Delete(v)
}

// splitMerge splits bucket `over` at splitAt (falling back to its
// midpoint when splitAt is NaN or outside the bucket) and merges the
// pair at `pair`, preserving bucket count. Returns nil if the indices
// collide in a way that cannot be honoured.
func splitMerge(buckets []histogram.Bucket, over, pair int, splitAt float64) *histogram.Piecewise {
	if over == pair || over == pair+1 {
		return nil
	}
	b := buckets[over]
	mid := splitAt
	if math.IsNaN(mid) || mid <= b.Left || mid >= b.Right {
		mid = (b.Left + b.Right) / 2
	}
	if mid <= b.Left || mid >= b.Right {
		return nil
	}
	left := histogram.Bucket{Left: b.Left, Right: mid, Subs: []float64{b.Count() / 2}}
	right := histogram.Bucket{Left: mid, Right: b.Right, Subs: []float64{b.Count() / 2}}
	merged := histogram.Bucket{
		Left:  buckets[pair].Left,
		Right: buckets[pair+1].Right,
		Subs:  []float64{buckets[pair].Count() + buckets[pair+1].Count()},
	}
	out := make([]histogram.Bucket, 0, len(buckets))
	for i := range buckets {
		switch i {
		case over:
			out = append(out, left, right)
		case pair:
			out = append(out, merged)
		case pair + 1:
			// consumed by merge
		default:
			out = append(out, buckets[i])
		}
	}
	p, err := histogram.NewPiecewise(out)
	if err != nil {
		return nil
	}
	return p
}
