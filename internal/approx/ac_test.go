package approx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynahist/internal/dist"
	"dynahist/internal/distgen"
	"dynahist/internal/histogram"
	"dynahist/internal/metric"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 20, 1); err == nil {
		t.Error("2 bytes: want error")
	}
	if _, err := New(1024, 0, 1); err == nil {
		t.Error("disk factor 0: want error")
	}
	if _, err := NewBuckets(0, 10, 1); err == nil {
		t.Error("0 buckets: want error")
	}
	if _, err := NewBuckets(5, 0, 1); err == nil {
		t.Error("0 sample: want error")
	}
	a, err := New(1024, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxBuckets() != 127 {
		t.Errorf("1KB AC = %d buckets, want 127", a.MaxBuckets())
	}
	if a.SampleCapacity() != 20*1024/4 {
		t.Errorf("sample capacity %d, want %d", a.SampleCapacity(), 20*1024/4)
	}
}

func TestSetGamma(t *testing.T) {
	a, err := NewBuckets(4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetGamma(0.5); err != nil {
		t.Fatal(err)
	}
	if err := a.SetGamma(RecomputeAlways); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.5, math.NaN()} {
		if err := a.SetGamma(bad); err == nil {
			t.Errorf("SetGamma(%v): want error", bad)
		}
	}
}

func TestEmptyReads(t *testing.T) {
	a, err := NewBuckets(4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.CDF(10) != 0 || a.EstimateRange(0, 10) != 0 {
		t.Error("empty AC should estimate 0 everywhere")
	}
	if a.Buckets() != nil {
		t.Error("empty AC should have no buckets")
	}
	if err := a.Delete(3); err == nil {
		t.Error("delete from empty: want error")
	}
}

func TestInsertAndScale(t *testing.T) {
	// Sample smaller than the stream: estimates must be scaled to the
	// live total.
	a, err := NewBuckets(8, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 5000 {
		if err := a.Insert(float64(i % 100)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Total() != 5000 {
		t.Fatalf("Total = %v", a.Total())
	}
	if a.SampleSize() != 50 {
		t.Fatalf("sample size %d, want 50", a.SampleSize())
	}
	est := a.EstimateRange(0, 99)
	if math.Abs(est-5000) > 1e-6 {
		t.Errorf("whole-domain estimate %v, want 5000 (scaling broken)", est)
	}
	if got := len(a.Buckets()); got > 8 {
		t.Errorf("%d buckets over budget", got)
	}
	if err := histogram.Validate(a.Buckets()); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsNonFinite(t *testing.T) {
	a, err := NewBuckets(4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(math.NaN()); err == nil {
		t.Error("Insert(NaN): want error")
	}
	if err := a.Delete(math.Inf(1)); err == nil {
		t.Error("Delete(Inf): want error")
	}
}

func TestDeleteShrinksSample(t *testing.T) {
	a, err := NewBuckets(8, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 1000 {
		if err := a.Insert(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := a.SampleSize()
	for i := range 500 {
		if err := a.Delete(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if a.SampleSize() >= before {
		t.Errorf("sample did not shrink under deletion: %d -> %d", before, a.SampleSize())
	}
	if a.Total() != 500 {
		t.Fatalf("Total = %v", a.Total())
	}
	// Estimates still scale to the live total.
	if got := a.EstimateRange(0, 999); math.Abs(got-500) > 1e-6 {
		t.Errorf("estimate %v, want 500", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	a, err := NewBuckets(16, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for range 4000 {
		if err := a.Insert(float64(rng.Intn(300))); err != nil {
			t.Fatal(err)
		}
	}
	prev := 0.0
	for x := -2.0; x <= 305; x += 1 {
		c := a.CDF(x)
		if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
			t.Fatalf("CDF not monotone/bounded at %v: %v", x, c)
		}
		prev = c
	}
}

func TestIncrementalModeStructure(t *testing.T) {
	a, err := NewBuckets(8, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetGamma(0.5); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for range 3000 {
		if err := a.Insert(float64(rng.Intn(400))); err != nil {
			t.Fatal(err)
		}
	}
	for range 500 {
		if err := a.Delete(float64(rng.Intn(400))); err != nil {
			t.Fatal(err)
		}
	}
	if a.Total() != 2500 {
		t.Fatalf("Total = %v", a.Total())
	}
	bs := a.Buckets()
	if len(bs) == 0 || len(bs) > 9 {
		t.Fatalf("incremental mode bucket count %d", len(bs))
	}
	if err := histogram.Validate(bs); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalSkewForcesMaintenance(t *testing.T) {
	a, err := NewBuckets(6, 300, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetGamma(0.25); err != nil {
		t.Fatal(err)
	}
	// Spread first, then hammer one value so a bucket overflows.
	for i := range 600 {
		if err := a.Insert(float64(i % 200)); err != nil {
			t.Fatal(err)
		}
	}
	for range 3000 {
		if err := a.Insert(42); err != nil {
			t.Fatal(err)
		}
	}
	bs := a.Buckets()
	if err := histogram.Validate(bs); err != nil {
		t.Fatal(err)
	}
	if math.Abs(histogram.TotalCount(bs)-a.Total()) > a.Total()*0.25 {
		t.Errorf("mass drifted: buckets %v vs total %v", histogram.TotalCount(bs), a.Total())
	}
}

// Integration: AC approximates the reference distribution reasonably
// but (paper Figs. 5-8) worse than the sample-free exact statics given
// the sampling error floor.
func TestACQualityOnReference(t *testing.T) {
	cfg := distgen.Reference(3)
	cfg.Points = 20000
	cfg.Clusters = 200
	values, err := distgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	values = distgen.Shuffled(values, 3)
	a, err := New(1024, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	truth := dist.New(cfg.Domain)
	for _, v := range values {
		if err := a.Insert(float64(v)); err != nil {
			t.Fatal(err)
		}
		if err := truth.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	ks, err := metric.KS(a.CDF, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 0.06 {
		t.Errorf("AC KS = %v, want < 0.06", ks)
	}
	if ks == 0 {
		t.Error("AC cannot be exact from a sub-sample")
	}
}

func TestIncrementalRecomputeFallback(t *testing.T) {
	// γ very small: the threshold is tight, splits can rarely restore
	// the constraint, so the recompute fallback must fire.
	a, err := NewBuckets(4, 100, 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetGamma(0.01); err != nil {
		t.Fatal(err)
	}
	for i := range 2000 {
		if err := a.Insert(float64(i % 37)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Recomputes() == 0 {
		t.Error("tight gamma should have forced recomputations")
	}
	if err := histogram.Validate(a.Buckets()); err != nil {
		t.Fatal(err)
	}
}

func TestScalingAfterDeletesProperty(t *testing.T) {
	// Whatever the insert/delete mix, the whole-domain estimate equals
	// the live total (the scaling invariant).
	f := func(ops []int16) bool {
		a, err := NewBuckets(8, 64, 23)
		if err != nil {
			return false
		}
		for _, op := range ops {
			v := float64(int(op) % 100)
			if v < 0 {
				v = -v
			}
			if op%4 == 0 {
				_ = a.Delete(v)
			} else if a.Insert(v) != nil {
				return false
			}
		}
		if a.Total() == 0 || a.SampleSize() == 0 {
			return true
		}
		got := a.EstimateRange(0, 100)
		return math.Abs(got-a.Total()) < 1e-6*(1+a.Total())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
