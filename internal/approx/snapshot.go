package approx

import (
	"encoding/binary"
	"fmt"
	"math"

	"dynahist/internal/binenc"
	"dynahist/internal/histerr"
	"dynahist/internal/sample"
)

// Full-state snapshot for the AC histogram, mirroring the envelope used
// by internal/core for the dynamic histograms (same magic and version,
// its own kind byte). The maintainable state of an AC is its backing
// sample plus the live count and the maintenance parameters; the
// in-memory histogram itself is always recomputable from the sample, so
// the snapshot does not carry it and a restore rebuilds lazily on the
// first read.
//
// The reservoir's RNG stream cannot be captured (math/rand exposes no
// state), so a restore re-seeds it from the original seed mixed with
// the seen count. Algorithm R's acceptance probability depends only on
// the capacity and the seen count, both restored exactly, so the
// restored AC is a statistically equivalent continuation of the
// original rather than a bit-identical replay.

const (
	snapMagic   = 0x44594e53 // "DYNS", shared with internal/core
	snapVersion = 1
	snapKindAC  = 3
)

// ErrSnapshot reports a malformed AC snapshot blob.
var ErrSnapshot = fmt.Errorf("approx: %w", histerr.ErrSnapshot)

// Snapshot serializes the AC histogram's complete maintainable state.
func (a *AC) Snapshot() ([]byte, error) {
	vals := a.res.Values()
	out := make([]byte, 0, 64+8*len(vals))
	out = binary.LittleEndian.AppendUint32(out, snapMagic)
	out = binary.LittleEndian.AppendUint16(out, snapVersion)
	out = append(out, snapKindAC)
	out = binary.LittleEndian.AppendUint32(out, uint32(a.nBuckets))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(a.gamma))
	out = binary.LittleEndian.AppendUint64(out, uint64(a.seed))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(a.total))
	out = binary.LittleEndian.AppendUint32(out, uint32(a.recomputes))
	out = binary.LittleEndian.AppendUint32(out, uint32(a.res.Capacity()))
	out = binary.LittleEndian.AppendUint64(out, uint64(a.res.Seen()))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(vals)))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out, nil
}

// Restore rebuilds an AC histogram from a Snapshot blob.
func Restore(data []byte) (*AC, error) {
	r := binenc.Reader{Data: data, Err: ErrSnapshot}
	magic, err := r.U32()
	if err != nil {
		return nil, err
	}
	if magic != snapMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrSnapshot, magic)
	}
	version, err := r.U16()
	if err != nil {
		return nil, err
	}
	if version != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrSnapshot, version)
	}
	kind, err := r.U8()
	if err != nil {
		return nil, err
	}
	if kind != snapKindAC {
		return nil, fmt.Errorf("%w: snapshot kind %d, want %d", ErrSnapshot, kind, snapKindAC)
	}
	nBuckets, err := r.U32()
	if err != nil {
		return nil, err
	}
	gamma, err := r.F64()
	if err != nil {
		return nil, err
	}
	seed, err := r.U64()
	if err != nil {
		return nil, err
	}
	total, err := r.F64()
	if err != nil {
		return nil, err
	}
	recomputes, err := r.U32()
	if err != nil {
		return nil, err
	}
	sampleCap, err := r.U32()
	if err != nil {
		return nil, err
	}
	seen, err := r.U64()
	if err != nil {
		return nil, err
	}
	nVals, err := r.U32()
	if err != nil {
		return nil, err
	}
	if uint64(nVals)*8 > uint64(len(data)) {
		return nil, fmt.Errorf("%w: implausible sample size %d", ErrSnapshot, nVals)
	}
	vals := make([]float64, nVals)
	for i := range vals {
		v, err := r.F64()
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshot, r.Remaining())
	}
	if total < 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return nil, fmt.Errorf("%w: bad total %v", ErrSnapshot, total)
	}
	if nBuckets < 1 {
		return nil, fmt.Errorf("%w: nBuckets %d < 1", ErrSnapshot, nBuckets)
	}
	// Mix the seen count into the restore seed so the continued stream
	// does not replay the RNG prefix the original already consumed.
	res, err := sample.RestoreReservoir(int(sampleCap), int64(seed)^int64(seen), vals, int64(seen))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	a := &AC{
		nBuckets:   int(nBuckets),
		seed:       int64(seed),
		res:        res,
		total:      total,
		recomputes: int(recomputes),
		dirty:      true,
	}
	if err := a.SetGamma(gamma); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	return a, nil
}
