package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "help")
	b := r.Counter("requests_total", "help")
	if a != b {
		t.Fatal("re-registering a counter must return the same handle")
	}
	a.Inc()
	if got := b.Value(); got != 1 {
		t.Fatalf("shared handle value = %d, want 1", got)
	}

	g := r.Gauge("inflight", "help")
	if g2 := r.Gauge("inflight", "other help"); g2 != g {
		t.Fatal("re-registering a gauge must return the same handle")
	}

	tr := r.Tracker("latency_seconds", "help")
	if tr2 := r.Tracker("latency_seconds", "help"); tr2 != tr {
		t.Fatal("re-registering a tracker must return the same handle")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name must panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("g", "")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestTrackerQuantiles(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracker("lat", "")
	for i := 1; i <= 1000; i++ {
		tr.Observe(float64(i))
	}
	if got := tr.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	if got, want := tr.Sum(), 500500.0; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	qs := tr.Quantiles(0.5, 0.9, 0.99)
	if qs[0] <= 0 || qs[1] < qs[0] || qs[2] < qs[1] {
		t.Fatalf("quantiles not ordered: %v", qs)
	}
	// Uniform 1..1000: the DADO estimate should place the median well
	// inside the middle of the range.
	if qs[0] < 300 || qs[0] > 700 {
		t.Fatalf("median estimate %v implausible for uniform 1..1000", qs[0])
	}
	if qs[2] > 1000.0001 {
		t.Fatalf("p99 estimate %v above max observation", qs[2])
	}
}

// TestScaledTrackerQuantiles checks sub-unit distributions: latencies
// in seconds must be scaled into the histogram's unit-resolution
// domain or every observation shares one bucket.
func TestScaledTrackerQuantiles(t *testing.T) {
	r := NewRegistry()
	tr := r.ScaledTracker("lat_seconds", "", 1e6)
	// Uniform 1ms..1000ms, observed in seconds.
	for i := 1; i <= 1000; i++ {
		tr.Observe(float64(i) / 1000)
	}
	if got, want := tr.Sum(), 500.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v (caller units)", got, want)
	}
	qs := tr.Quantiles(0.5, 0.9, 0.99)
	if qs[0] < 0.3 || qs[0] > 0.7 {
		t.Fatalf("median estimate %v implausible for uniform 1ms..1s", qs[0])
	}
	if qs[1] < qs[0] || qs[2] < qs[1] || qs[2] > 1.0001 {
		t.Fatalf("quantiles implausible: %v", qs)
	}
}

func TestScaledTrackerRejectsBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScaledTracker with scale 0: want panic")
		}
	}()
	NewRegistry().ScaledTracker("bad", "", 0)
}

func TestTrackerDropsNonFinite(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracker("lat", "")
	tr.Observe(nan())
	tr.Observe(inf())
	tr.Observe(1)
	if got := tr.Count(); got != 1 {
		t.Fatalf("count = %d, want 1 (non-finite dropped)", got)
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

// TestConcurrentHammer drives one registry from 8 writer goroutines
// while a scraper renders /metrics-style exposition concurrently. Run
// under -race (CI does) this proves the hot path and the scrape path
// are safe against each other; the final counts prove no increment was
// lost.
func TestConcurrentHammer(t *testing.T) {
	const (
		writers = 8
		perG    = 5000
	)
	r := NewRegistry()
	c := r.Counter("hammer_total", "events")
	g := r.Gauge("hammer_inflight", "in flight")
	tr := r.Tracker("hammer_seconds", "latency")
	r.GaugeFunc("hammer_derived", "derived", func() float64 {
		return float64(c.Value()) / 2
	})
	r.CounterFunc("hammer_external_total", "external", func() uint64 {
		return c.Value()
	})

	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		var buf bytes.Buffer
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			buf.Reset()
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				g.Add(1)
				c.Inc()
				tr.Observe(float64(i%100) + 0.5)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	close(stopScrape)
	scrapeWG.Wait()

	if got, want := c.Value(), uint64(writers*perG); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0 after balanced add/sub", got)
	}
	if got, want := tr.Count(), uint64(writers*perG); got != want {
		t.Fatalf("tracker count = %d, want %d", got, want)
	}
}

// TestHotPathAllocs gates the instrumentation cost: counter and gauge
// updates must be allocation-free, and tracker observation must stay
// allocation-free amortised across its batch folds.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("allocs_total", "")
	g := r.Gauge("allocs_inflight", "")
	tr := r.Tracker("allocs_seconds", "")

	if avg := testing.AllocsPerRun(1000, func() { c.Inc() }); avg != 0 {
		t.Fatalf("Counter.Inc allocates %.2f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { g.Add(1); g.Add(-1) }); avg != 0 {
		t.Fatalf("Gauge.Add allocates %.2f/op, want 0", avg)
	}

	// Warm the tracker's histogram past its settling phase so the
	// amortised measurement sees steady state, as the serving path does.
	for i := 0; i < 10*trackerBufCap; i++ {
		tr.Observe(float64(i % 128))
	}
	v := 0.0
	if avg := testing.AllocsPerRun(2000, func() {
		tr.Observe(v)
		v += 0.25
		if v >= 128 {
			v = 0
		}
	}); avg > 0.05 {
		t.Fatalf("Tracker.Observe allocates %.3f/op amortised, want ~0", avg)
	}
}

// TestExpositionGolden locks the exposition format: family grouping,
// HELP/TYPE lines, label merging, and summary rendering. Regenerate
// with `go test ./internal/obs -run TestExpositionGolden -update`.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	reqQ := r.Counter(`demo_requests_total{endpoint="query"}`, "Requests served, by endpoint.")
	reqU := r.Counter(`demo_requests_total{endpoint="update"}`, "Requests served, by endpoint.")
	inflight := r.Gauge("demo_in_flight", "Requests currently in flight.")
	r.GaugeFunc("demo_hit_ratio", "Cache hit ratio.", func() float64 { return 0.75 })
	r.CounterFunc("demo_appended_total", "Externally owned count.", func() uint64 { return 9001 })
	lat := r.Tracker(`demo_latency_seconds{endpoint="query"}`, "Request latency, by endpoint.")

	reqQ.Add(120)
	reqU.Add(30)
	inflight.Set(3)
	for i := 1; i <= 1000; i++ {
		lat.Observe(float64(i) / 1000)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := buf.Bytes()

	goldenPath := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Structural sanity independent of the exact quantile values.
	text := buf.String()
	for _, wantLine := range []string{
		"# TYPE demo_requests_total counter",
		"# TYPE demo_latency_seconds summary",
		`demo_requests_total{endpoint="query"} 120`,
		`demo_latency_seconds{endpoint="query",quantile="0.5"}`,
		`demo_latency_seconds_sum{endpoint="query"}`,
		`demo_latency_seconds_count{endpoint="query"} 1000`,
		"demo_hit_ratio 0.75",
		"demo_appended_total 9001",
	} {
		if !strings.Contains(text, wantLine) {
			t.Fatalf("exposition missing %q:\n%s", wantLine, text)
		}
	}
}
