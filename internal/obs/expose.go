package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): one `# HELP` / `# TYPE` pair per
// metric family, then one sample line per series, with trackers
// rendered as summaries (quantile series plus `_sum` and `_count`).
// Families are emitted in sorted order so output is stable for golden
// tests and diff-friendly for humans.
func (r *Registry) WritePrometheus(w io.Writer) error {
	metrics := r.snapshot()
	// Group series by family: the metric name with any fixed label set
	// stripped. Series within a family share HELP and TYPE.
	type familyGroup struct {
		help, typ string
		members   []metric
	}
	families := make(map[string]*familyGroup, len(metrics))
	order := make([]string, 0, len(metrics))
	for _, m := range metrics {
		fam, _ := splitName(m.metricName())
		g, ok := families[fam]
		if !ok {
			g = &familyGroup{help: m.helpText(), typ: m.promType()}
			families[fam] = g
			order = append(order, fam)
		}
		g.members = append(g.members, m)
	}
	sort.Strings(order)

	bw := bufio.NewWriter(w)
	for _, fam := range order {
		g := families[fam]
		if g.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(fam)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(g.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(fam)
		bw.WriteByte(' ')
		bw.WriteString(g.typ)
		bw.WriteByte('\n')
		// Series order inside a family follows the sorted full names so
		// label permutations don't reorder between scrapes.
		members := g.members
		sort.Slice(members, func(i, j int) bool {
			return members[i].metricName() < members[j].metricName()
		})
		for _, m := range members {
			writeMetric(bw, m)
		}
	}
	return bw.Flush()
}

// writeMetric renders one metric's sample line(s).
func writeMetric(bw *bufio.Writer, m metric) {
	name := m.metricName()
	switch v := m.(type) {
	case *Counter:
		writeSample(bw, name, "", strconv.FormatUint(v.Value(), 10))
	case *CounterFunc:
		writeSample(bw, name, "", strconv.FormatUint(v.fn(), 10))
	case *Gauge:
		writeSample(bw, name, "", strconv.FormatInt(v.Value(), 10))
	case *GaugeFunc:
		writeSample(bw, name, "", formatFloat(v.fn()))
	case *Tracker:
		count, sum, qs := v.summarySnapshot()
		for i, q := range TrackerQuantiles {
			writeSample(bw, name, `quantile="`+formatFloat(q)+`"`, formatFloat(qs[i]))
		}
		base, labels := splitName(name)
		writeSample(bw, base+"_sum{"+labels+"}", "", formatFloat(sum))
		writeSample(bw, base+"_count{"+labels+"}", "", strconv.FormatUint(count, 10))
	}
}

// writeSample emits one exposition line, merging an extra label (e.g.
// quantile) into the metric's fixed label set.
func writeSample(bw *bufio.Writer, name, extraLabel, value string) {
	base, labels := splitName(name)
	bw.WriteString(base)
	if labels != "" || extraLabel != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extraLabel != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extraLabel)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// splitName separates `family{a="b"}` into `family` and `a="b"`. A
// name without labels returns an empty label string. An empty label
// set `family{}` normalises to no labels.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	base = name[:i]
	labels = strings.TrimSuffix(name[i+1:], "}")
	return base, labels
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest round-trip representation.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text per the
// exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
