// Package obs is histserved's observability plane: a dependency-free
// metrics subsystem over atomic counters, gauges, and distribution
// trackers backed by this repository's own dynamic histograms — the
// server's latency distributions are summarised by the same DADO
// engine the server exists to serve (the HistogramTools argument:
// fleet-scale systems should expose their own distributions as
// first-class monitoring artifacts, and this repo can dogfood that).
//
// The hot path is lock-free for counters and gauges (one atomic op per
// event) and allocation-free end to end: trackers buffer observations
// in a fixed ring under a short mutex and fold them into their DADO
// histogram one batch at a time, so instrumenting the serving paths
// does not regress the server's zero-allocation gates.
//
// Metrics are registered once, up front, in a named Registry; the
// handles returned by Counter/Gauge/Tracker are then used directly, so
// no request ever pays for a registry lookup. The registry renders two
// ways: Prometheus text exposition (WritePrometheus — counters,
// gauges, and trackers as summaries with 0.5/0.9/0.99 quantiles) and
// structured access through the typed handles themselves.
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"dynahist"
)

// A metric is anything the registry can expose. The name may carry a
// fixed Prometheus label set: `requests_total{endpoint="query"}`.
type metric interface {
	metricName() string
	helpText() string
	// promType is the exposition TYPE: "counter", "gauge" or "summary".
	promType() string
}

// Registry is a named collection of metrics. Registration (Counter,
// Gauge, …) is safe for concurrent use but meant for wiring time;
// the returned handles are the hot-path API and never touch the
// registry again. Re-registering a name returns the existing handle,
// so idempotent wiring (middleware installed per route) is safe;
// re-registering a name as a different metric type panics — that is a
// wiring bug, not a runtime condition.
type Registry struct {
	mu      sync.RWMutex
	metrics []metric
	byName  map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// register installs m under its name, or returns the already-installed
// metric of the same name.
func (r *Registry) register(m metric) metric {
	name := m.metricName()
	if name == "" {
		panic("obs: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[name]; ok {
		return existing
	}
	r.byName[name] = m
	r.metrics = append(r.metrics, m)
	return m
}

// snapshot returns a stable copy of the registered metrics.
func (r *Registry) snapshot() []metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// Counter is a monotonically increasing event count. Inc/Add are one
// atomic instruction: lock-free, allocation-free.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Counter registers (or returns) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&Counter{name: name, help: help})
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %s", name, m.promType()))
	}
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) helpText() string   { return c.help }
func (c *Counter) promType() string   { return "counter" }

// CounterFunc is a counter whose value lives elsewhere (e.g. the WAL's
// appended LSN): the function is consulted only at exposition time, so
// the owning subsystem keeps its own representation and pays nothing
// per event. The function must be monotone and safe for concurrent
// use.
type CounterFunc struct {
	name, help string
	fn         func() uint64
}

// CounterFunc registers the named function-backed counter.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	m := r.register(&CounterFunc{name: name, help: help, fn: fn})
	if _, ok := m.(*CounterFunc); !ok {
		panic(fmt.Sprintf("obs: %q already registered as %s", name, m.promType()))
	}
}

func (c *CounterFunc) metricName() string { return c.name }
func (c *CounterFunc) helpText() string   { return c.help }
func (c *CounterFunc) promType() string   { return "counter" }

// Gauge is a settable instantaneous value (in-flight requests, queue
// depth). Set/Add are one atomic instruction.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Gauge registers (or returns) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(&Gauge{name: name, help: help})
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %s", name, m.promType()))
	}
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) helpText() string   { return g.help }
func (g *Gauge) promType() string   { return "gauge" }

// GaugeFunc is a gauge computed at exposition time — the shape for
// derived values (cache hit ratio, WAL digest lag) that would be racy
// or redundant to maintain eagerly. The function must be safe for
// concurrent use.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// GaugeFunc registers the named function-backed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(&GaugeFunc{name: name, help: help, fn: fn})
	if _, ok := m.(*GaugeFunc); !ok {
		panic(fmt.Sprintf("obs: %q already registered as %s", name, m.promType()))
	}
}

func (g *GaugeFunc) metricName() string { return g.name }
func (g *GaugeFunc) helpText() string   { return g.help }
func (g *GaugeFunc) promType() string   { return "gauge" }

// trackerBufCap is the tracker's observation ring: observations are
// buffered and folded into the DADO histogram one InsertBatch at a
// time, so the per-observation cost is an append into preallocated
// space and the (rare, deferred) split-merge settling amortises across
// the batch. 256 keeps the buffer hot in cache and the fold far off
// any per-request path.
const trackerBufCap = 256

// trackerBuckets is the DADO bucket budget per tracker. Latency and
// size distributions are low-modality; a small budget keeps a tracker
// ~1 KiB while the dynamic borders still place quantile resolution
// where the mass is.
const trackerBuckets = 64

// TrackerQuantiles are the quantiles a tracker exposes in Prometheus
// summaries and stats snapshots.
var TrackerQuantiles = [3]float64{0.5, 0.9, 0.99}

// Tracker summarises a value distribution (request latency, batch
// size) with one of this repository's own DADO dynamic histograms
// under a small bucket budget. Observe is allocation-free: values
// buffer in a fixed ring under a short mutex and fold into the
// histogram in batches. Quantiles are answered at scrape time from a
// pinned view.
type Tracker struct {
	name, help string
	// scale maps observed values into the histogram's domain (and back
	// out for quantile answers). The dynamic histograms resolve at unit
	// granularity, so sub-unit distributions — request latencies in
	// seconds — must be scaled up or every observation lands in one
	// bucket and the quantiles are interpolation noise. Count and sum
	// are kept in the caller's units; only the histogram sees scaled
	// values.
	scale float64

	mu    sync.Mutex
	buf   []float64
	h     dynahist.BatchWriter
	est   dynahist.Estimator
	count uint64
	sum   float64
}

// Tracker registers (or returns) the named distribution tracker with
// unit resolution — right for integer-like distributions (batch
// sizes). For sub-unit domains use ScaledTracker.
func (r *Registry) Tracker(name, help string) *Tracker {
	return r.ScaledTracker(name, help, 1)
}

// ScaledTracker registers (or returns) the named tracker whose
// histogram resolves at 1/scale granularity: a latency tracker
// observing seconds with scale 1e6 buckets at microsecond resolution.
// Quantile answers come back in the caller's units.
func (r *Registry) ScaledTracker(name, help string, scale float64) *Tracker {
	if !(scale > 0) || math.IsInf(scale, 0) {
		panic(fmt.Sprintf("obs: tracker %q: scale %v must be a positive finite number", name, scale))
	}
	t := &Tracker{name: name, help: help, scale: scale, buf: make([]float64, 0, trackerBufCap)}
	h, err := dynahist.New(dynahist.KindDADO, dynahist.WithBuckets(trackerBuckets))
	if err != nil {
		// Unreachable for a fixed valid budget; a tracker without a
		// histogram still counts and sums, it just answers no quantiles.
		panic(fmt.Sprintf("obs: building tracker histogram: %v", err))
	}
	t.h = h.(dynahist.BatchWriter)
	t.est = h.(dynahist.Estimator)
	m := r.register(t)
	tt, ok := m.(*Tracker)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %s", name, m.promType()))
	}
	return tt
}

// Observe records one value. Non-finite values are dropped.
func (t *Tracker) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	t.mu.Lock()
	t.count++
	t.sum += v
	t.buf = append(t.buf, v*t.scale)
	if len(t.buf) == cap(t.buf) {
		t.flushLocked()
	}
	t.mu.Unlock()
}

// flushLocked folds the buffered observations into the histogram.
// Callers hold t.mu.
func (t *Tracker) flushLocked() {
	if len(t.buf) == 0 {
		return
	}
	// InsertBatch on a valid finite batch only errors on pathological
	// states; a tracker must never take the serving path down with it.
	_ = t.h.InsertBatch(t.buf)
	t.buf = t.buf[:0]
}

// Count returns how many values were observed.
func (t *Tracker) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Sum returns the sum of all observed values.
func (t *Tracker) Sum() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sum
}

// Quantiles answers the given quantiles from a pinned view of the
// tracker's histogram, flushing buffered observations first. With no
// observations every answer is 0.
func (t *Tracker) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocked()
	if t.count == 0 {
		return out
	}
	v, err := t.est.View()
	if err != nil {
		return out
	}
	for i, q := range qs {
		if x, err := v.Quantile(q); err == nil {
			out[i] = x / t.scale
		}
	}
	return out
}

// summarySnapshot is one consistent cut of the tracker's state for
// exposition: count, sum and the standard quantiles.
func (t *Tracker) summarySnapshot() (count uint64, sum float64, quantiles [3]float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocked()
	count, sum = t.count, t.sum
	if count == 0 {
		return count, sum, quantiles
	}
	v, err := t.est.View()
	if err != nil {
		return count, sum, quantiles
	}
	for i, q := range TrackerQuantiles {
		if x, err := v.Quantile(q); err == nil {
			quantiles[i] = x / t.scale
		}
	}
	return count, sum, quantiles
}

func (t *Tracker) metricName() string { return t.name }
func (t *Tracker) helpText() string   { return t.help }
func (t *Tracker) promType() string   { return "summary" }
