// Package binenc provides the little-endian cursor reader shared by
// the binary decoders in this repository — the core and AC snapshot
// formats and the serving layer's catalog format. Each decoder embeds
// Reader and supplies its own sentinel error, so truncation failures
// carry the right package's error identity.
package binenc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Reader is a bounds-checked cursor over a byte slice. The zero Pos
// starts at the beginning; every accessor advances it or fails with
// an error wrapping Err.
type Reader struct {
	Data []byte
	Pos  int
	// Err is the sentinel wrapped into truncation errors (e.g. a
	// package's ErrSnapshot).
	Err error
}

// Need fails unless n more bytes are available.
func (r *Reader) Need(n int) error {
	if n < 0 || r.Pos+n > len(r.Data) {
		return fmt.Errorf("%w: truncated at byte %d", r.Err, r.Pos)
	}
	return nil
}

// Remaining returns how many bytes are left.
func (r *Reader) Remaining() int { return len(r.Data) - r.Pos }

// U8 reads one byte.
func (r *Reader) U8() (byte, error) {
	if err := r.Need(1); err != nil {
		return 0, err
	}
	v := r.Data[r.Pos]
	r.Pos++
	return v, nil
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() (uint16, error) {
	if err := r.Need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.Data[r.Pos:])
	r.Pos += 2
	return v, nil
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() (uint32, error) {
	if err := r.Need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.Data[r.Pos:])
	r.Pos += 4
	return v, nil
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() (uint64, error) {
	if err := r.Need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.Data[r.Pos:])
	r.Pos += 8
	return v, nil
}

// F64 reads a little-endian IEEE-754 double.
func (r *Reader) F64() (float64, error) {
	v, err := r.U64()
	return math.Float64frombits(v), err
}

// Bytes reads n raw bytes (a sub-slice of Data, not a copy).
func (r *Reader) Bytes(n int) ([]byte, error) {
	if err := r.Need(n); err != nil {
		return nil, err
	}
	out := r.Data[r.Pos : r.Pos+n]
	r.Pos += n
	return out, nil
}
