package binenc

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

var errTest = errors.New("binenc test sentinel")

// TestReadBackInOrder round-trips every accessor: a buffer written
// with the standard little-endian encoders reads back value for value,
// with the cursor landing exactly at the end.
func TestReadBackInOrder(t *testing.T) {
	var buf []byte
	buf = append(buf, 0xAB)
	buf = binary.LittleEndian.AppendUint16(buf, 0xBEEF)
	buf = binary.LittleEndian.AppendUint32(buf, 0xDEADBEEF)
	buf = binary.LittleEndian.AppendUint64(buf, 0x0123456789ABCDEF)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(-273.15))
	buf = append(buf, 'r', 'a', 'w')

	r := Reader{Data: buf, Err: errTest}
	if v, err := r.U8(); err != nil || v != 0xAB {
		t.Fatalf("U8 = %#x, %v", v, err)
	}
	if v, err := r.U16(); err != nil || v != 0xBEEF {
		t.Fatalf("U16 = %#x, %v", v, err)
	}
	if v, err := r.U32(); err != nil || v != 0xDEADBEEF {
		t.Fatalf("U32 = %#x, %v", v, err)
	}
	if v, err := r.U64(); err != nil || v != 0x0123456789ABCDEF {
		t.Fatalf("U64 = %#x, %v", v, err)
	}
	if v, err := r.F64(); err != nil || v != -273.15 {
		t.Fatalf("F64 = %v, %v", v, err)
	}
	raw, err := r.Bytes(3)
	if err != nil || string(raw) != "raw" {
		t.Fatalf("Bytes(3) = %q, %v", raw, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d after draining, want 0", r.Remaining())
	}
	if r.Pos != len(buf) {
		t.Fatalf("Pos = %d, want %d", r.Pos, len(buf))
	}
}

// TestTruncationWrapsSentinel pins the error contract: every accessor
// that runs off the end fails with an error classifiable as the
// embedding decoder's sentinel via errors.Is, and the cursor does not
// advance past the failure.
func TestTruncationWrapsSentinel(t *testing.T) {
	tries := []struct {
		name string
		read func(r *Reader) error
	}{
		{"U8", func(r *Reader) error { _, err := r.U8(); return err }},
		{"U16", func(r *Reader) error { _, err := r.U16(); return err }},
		{"U32", func(r *Reader) error { _, err := r.U32(); return err }},
		{"U64", func(r *Reader) error { _, err := r.U64(); return err }},
		{"F64", func(r *Reader) error { _, err := r.F64(); return err }},
		{"Bytes", func(r *Reader) error { _, err := r.Bytes(4); return err }},
	}
	for _, tc := range tries {
		t.Run(tc.name, func(t *testing.T) {
			// One byte short of what the accessor needs (Bytes asks for 4).
			short := map[string]int{"U8": 0, "U16": 1, "U32": 3, "U64": 7, "F64": 7, "Bytes": 3}[tc.name]
			r := Reader{Data: make([]byte, short), Err: errTest}
			err := tc.read(&r)
			if err == nil {
				t.Fatalf("%s on %d bytes: want error", tc.name, short)
			}
			if !errors.Is(err, errTest) {
				t.Fatalf("%s error %v does not wrap the sentinel", tc.name, err)
			}
			if r.Pos != 0 {
				t.Fatalf("%s advanced Pos to %d on failure", tc.name, r.Pos)
			}
		})
	}
}

// TestNeedRejectsNegative pins that a hostile negative length cannot
// wrap the bounds check around.
func TestNeedRejectsNegative(t *testing.T) {
	r := Reader{Data: make([]byte, 8), Err: errTest}
	if err := r.Need(-1); !errors.Is(err, errTest) {
		t.Fatalf("Need(-1) = %v, want the sentinel", err)
	}
	if _, err := r.Bytes(-1); !errors.Is(err, errTest) {
		t.Fatalf("Bytes(-1) = %v, want the sentinel", err)
	}
}

// TestBytesAliasesData pins the documented no-copy contract: Bytes
// returns a window into Data, not a copy — decoders that keep the
// slice must copy it themselves.
func TestBytesAliasesData(t *testing.T) {
	data := []byte{1, 2, 3, 4}
	r := Reader{Data: data, Err: errTest}
	got, err := r.Bytes(4)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	if got[0] != 99 {
		t.Fatal("Bytes returned a copy; the contract is a no-copy sub-slice")
	}
}
