package distgen

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 0)
	for _, x := range w {
		if math.Abs(x-0.25) > 1e-12 {
			t.Fatalf("z=0 weights not uniform: %v", w)
		}
	}
	w = ZipfWeights(3, 1)
	// 1, 1/2, 1/3 normalised by 11/6.
	want := []float64{6.0 / 11, 3.0 / 11, 2.0 / 11}
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("z=1 weights = %v, want %v", w, want)
		}
	}
	// Higher skew concentrates more mass on the first element.
	if ZipfWeights(10, 2)[0] <= ZipfWeights(10, 1)[0] {
		t.Error("higher z must increase first weight")
	}
}

func TestApportionExact(t *testing.T) {
	f := func(total uint16, n uint8) bool {
		if n == 0 {
			return true
		}
		w := ZipfWeights(int(n), 1.3)
		shares := apportion(int(total), w)
		sum := 0
		for _, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == int(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGenerateBasics(t *testing.T) {
	cfg := Config{Points: 5000, Domain: 1000, Clusters: 50, SizeSkew: 1, SpreadSkew: 1, SD: 2, Seed: 7}
	values, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != cfg.Points {
		t.Fatalf("got %d points, want %d", len(values), cfg.Points)
	}
	for _, v := range values {
		if v < 0 || v > cfg.Domain {
			t.Fatalf("value %d outside domain", v)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Reference(42)
	cfg.Points = 2000
	cfg.Clusters = 100
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateSDZeroCollapses(t *testing.T) {
	cfg := Config{Points: 1000, Domain: 500, Clusters: 10, SizeSkew: 1, SpreadSkew: 1, SD: 0, Seed: 3}
	values, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]bool{}
	for _, v := range values {
		distinct[v] = true
	}
	if len(distinct) > cfg.Clusters {
		t.Errorf("SD=0: %d distinct values for %d clusters", len(distinct), cfg.Clusters)
	}
}

func TestGenerateSizeSkew(t *testing.T) {
	// With very high Z, one cluster dominates.
	cfg := Config{Points: 10000, Domain: 1000, Clusters: 20, SizeSkew: 3, SpreadSkew: 0, SD: 0, Seed: 5}
	values, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, v := range values {
		counts[v]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 0.5*float64(cfg.Points) {
		t.Errorf("Z=3: dominant cluster holds %d of %d points, want > half", max, cfg.Points)
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, shape := range []Shape{Normal, Uniform, Exponential} {
		cfg := Config{Points: 20000, Domain: 2000, Clusters: 1, SizeSkew: 0, SpreadSkew: 0,
			SD: 10, Shape: shape, Seed: 11}
		values, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		mean, sd := meanSD(values)
		if sd < 5 || sd > 15 {
			t.Errorf("%v: sample SD %v, want ≈10", shape, sd)
		}
		_ = mean
	}
}

func meanSD(values []int) (mean, sd float64) {
	for _, v := range values {
		mean += float64(v)
	}
	mean /= float64(len(values))
	for _, v := range values {
		d := float64(v) - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(values)))
	return mean, sd
}

func TestGenerateCorrelations(t *testing.T) {
	for _, corr := range []Correlation{RandomCorrelation, PositiveCorrelation, NegativeCorrelation} {
		cfg := Config{Points: 5000, Domain: 1000, Clusters: 20, SizeSkew: 1.5, SpreadSkew: 1.5,
			SD: 1, Correlation: corr, Seed: 13}
		values, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%v: %v", corr, err)
		}
		if len(values) != cfg.Points {
			t.Fatalf("%v: wrong count", corr)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Points: 0, Domain: 10, Clusters: 1},
		{Points: 10, Domain: 0, Clusters: 1},
		{Points: 10, Domain: 10, Clusters: 0},
		{Points: 10, Domain: 10, Clusters: 100},
		{Points: 10, Domain: 10, Clusters: 2, SizeSkew: -1},
		{Points: 10, Domain: 10, Clusters: 2, SD: math.NaN()},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func TestShuffledAndSorted(t *testing.T) {
	values := []int{5, 3, 9, 1, 1, 7}
	s := Sorted(values)
	if !sort.IntsAreSorted(s) {
		t.Error("Sorted output not sorted")
	}
	if values[0] != 5 {
		t.Error("Sorted must not mutate input")
	}
	sh := Shuffled(values, 1)
	if len(sh) != len(values) {
		t.Fatal("Shuffled changed length")
	}
	// Multiset preserved.
	a, b := Sorted(values), Sorted(sh)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffled changed multiset")
		}
	}
	// Deterministic per seed.
	sh2 := Shuffled(values, 1)
	for i := range sh {
		if sh[i] != sh2[i] {
			t.Fatal("Shuffled not deterministic")
		}
	}
}

func TestMailOrder(t *testing.T) {
	values := MailOrder(1)
	if len(values) != MailOrderRecords {
		t.Fatalf("got %d records, want %d", len(values), MailOrderRecords)
	}
	counts := map[int]int{}
	for _, v := range values {
		if v < 0 || v > MailOrderDomain {
			t.Fatalf("value %d outside [0,%d]", v, MailOrderDomain)
		}
		counts[v]++
	}
	// "Spiky": many distinct values and a heavy top spike.
	if len(counts) < 100 {
		t.Errorf("only %d distinct values; trace should be spiky across the domain", len(counts))
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) < 0.02*MailOrderRecords {
		t.Errorf("largest spike %d too small for a spiky trace", max)
	}
	// Deterministic.
	again := MailOrder(1)
	for i := range values {
		if values[i] != again[i] {
			t.Fatal("MailOrder not deterministic")
		}
	}
}

func TestClusterCentersInsideDomain(t *testing.T) {
	f := func(seed int64, s uint8) bool {
		cfg := Config{Points: 100, Domain: 1000, Clusters: 30,
			SpreadSkew: float64(s%4) * 0.75, SizeSkew: 1, SD: 0, Seed: seed}
		values, err := Generate(cfg)
		if err != nil {
			return false
		}
		for _, v := range values {
			if v < 0 || v > cfg.Domain {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
