package distgen

import "testing"

func BenchmarkGenerateReference(b *testing.B) {
	cfg := Reference(1)
	b.ReportAllocs()
	for b.Loop() {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMailOrder(b *testing.B) {
	b.ReportAllocs()
	for b.Loop() {
		_ = MailOrder(1)
	}
}
