package distgen

import (
	"math"
	"math/rand"
)

// MailOrderRecords matches the size of the paper's proprietary trace:
// 61,105 order amounts.
const MailOrderRecords = 61105

// MailOrderDomain matches the trace's dollar-amount domain [0, 500].
const MailOrderDomain = 500

// MailOrder generates the stand-in for the paper's §7.4 real-world
// trace (dollar amounts collected by a mail order company), which is
// proprietary and unavailable. The paper describes the data as "very
// spiky": far more distinct modes than any affordable histogram has
// buckets, which is what makes the measured KS decline slower than 1/n.
//
// The substitute reproduces that regime: Zipf-weighted point masses at
// psychologically-priced dollar amounts (x9, x5 and round values — the
// classic retail price points) over a log-normal background of odd
// amounts, 61,105 records over [0, 500].
func MailOrder(seed int64) []int {
	rng := rand.New(rand.NewSource(seed))

	// Price points: every $9.xx-style amount (9, 19, 29, …), every $5
	// multiple, and a few dominant catalog staples near the low end.
	var spikes []int
	for v := 9; v <= MailOrderDomain; v += 10 {
		spikes = append(spikes, v)
	}
	for v := 5; v <= MailOrderDomain; v += 5 {
		spikes = append(spikes, v)
	}
	for _, v := range []int{12, 15, 20, 25, 35, 40, 60, 75, 100, 120, 150, 200, 250} {
		spikes = append(spikes, v)
	}
	// Zipf weights over the spikes, shuffled so the heavy spikes land at
	// scattered price points rather than monotonically.
	weights := ZipfWeights(len(spikes), 1.0)
	rng.Shuffle(len(spikes), func(i, j int) { spikes[i], spikes[j] = spikes[j], spikes[i] })

	spikeFraction := 0.7 // 70% of orders hit a price point exactly
	spikeCounts := apportion(int(spikeFraction*MailOrderRecords), weights)

	values := make([]int, 0, MailOrderRecords)
	for i, n := range spikeCounts {
		for range n {
			values = append(values, spikes[i])
		}
	}
	// Log-normal background for the remaining odd amounts: median ≈ $33,
	// long right tail clipped to the domain.
	for len(values) < MailOrderRecords {
		x := math.Exp(rng.NormFloat64()*0.9 + 3.5)
		v := int(math.Round(x))
		if v < 0 {
			v = 0
		}
		if v > MailOrderDomain {
			v = MailOrderDomain
		}
		values = append(values, v)
	}
	rng.Shuffle(len(values), func(i, j int) { values[i], values[j] = values[j], values[i] })
	return values
}
