// Package distgen generates the parameterised synthetic workloads of
// paper §6.1 and the stand-in for the §7.4 mail-order trace.
//
// The generator creates C clusters of integer values over the domain
// [0, Domain]. Cluster sizes follow a Zipf law with parameter Z; the
// spreads (separations) between consecutive cluster centers follow a
// Zipf law with parameter S; the within-cluster shape is Normal (the
// paper's fixed choice), Uniform, or Exponential (two-sided), with
// standard deviation SD. The correlation between cluster sizes and
// separations is Random (the paper's fixed choice), Positive, or
// Negative. Everything is deterministic given a seed.
package distgen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Shape selects the within-cluster value distribution.
type Shape int

const (
	// Normal clusters are Gaussian around the center (the paper's fixed
	// choice).
	Normal Shape = iota
	// Uniform clusters spread values evenly over center ± SD·√3.
	Uniform
	// Exponential clusters are two-sided exponential (Laplace) around
	// the center with standard deviation SD.
	Exponential
)

func (s Shape) String() string {
	switch s {
	case Normal:
		return "normal"
	case Uniform:
		return "uniform"
	case Exponential:
		return "exponential"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Correlation selects how cluster sizes relate to the separations
// around the cluster.
type Correlation int

const (
	// RandomCorrelation pairs sizes and separations randomly (the
	// paper's fixed choice).
	RandomCorrelation Correlation = iota
	// PositiveCorrelation gives the largest clusters the widest
	// separations.
	PositiveCorrelation
	// NegativeCorrelation gives the largest clusters the narrowest
	// separations.
	NegativeCorrelation
)

func (c Correlation) String() string {
	switch c {
	case RandomCorrelation:
		return "random"
	case PositiveCorrelation:
		return "positive"
	case NegativeCorrelation:
		return "negative"
	default:
		return fmt.Sprintf("Correlation(%d)", int(c))
	}
}

// Config parameterises one synthetic data set. The field names follow
// the paper's notation.
type Config struct {
	// Points is the number of data points (paper default 100,000).
	Points int
	// Domain is the largest attribute value (paper default 5000).
	Domain int
	// Clusters is C, the number of clusters (paper: 2000 or 50).
	Clusters int
	// SizeSkew is Z, the Zipf parameter of cluster sizes.
	SizeSkew float64
	// SpreadSkew is S, the Zipf parameter of cluster-center spreads.
	SpreadSkew float64
	// SD is the standard deviation within a cluster; 0 collapses each
	// cluster to a single value.
	SD float64
	// Shape is the within-cluster distribution (default Normal).
	Shape Shape
	// Correlation pairs sizes with separations (default Random).
	Correlation Correlation
	// Seed drives the deterministic generator.
	Seed int64
}

// Reference returns the paper's reference configuration (§7: S=1, Z=1,
// SD=2, C=2000, 100,000 points over [0..5000]) with the given seed.
func Reference(seed int64) Config {
	return Config{
		Points:     100000,
		Domain:     5000,
		Clusters:   2000,
		SizeSkew:   1,
		SpreadSkew: 1,
		SD:         2,
		Seed:       seed,
	}
}

func (c Config) validate() error {
	if c.Points < 1 {
		return errors.New("distgen: Points < 1")
	}
	if c.Domain < 1 {
		return errors.New("distgen: Domain < 1")
	}
	if c.Clusters < 1 {
		return errors.New("distgen: Clusters < 1")
	}
	if c.Clusters > c.Domain+1 {
		return fmt.Errorf("distgen: %d clusters cannot fit in domain [0,%d]", c.Clusters, c.Domain)
	}
	if c.SizeSkew < 0 || c.SpreadSkew < 0 || c.SD < 0 {
		return errors.New("distgen: negative skew or SD")
	}
	if math.IsNaN(c.SizeSkew) || math.IsNaN(c.SpreadSkew) || math.IsNaN(c.SD) {
		return errors.New("distgen: NaN parameter")
	}
	return nil
}

// ZipfWeights returns n weights proportional to 1/i^z (i = 1..n),
// normalised to sum to 1. z = 0 yields uniform weights.
func ZipfWeights(n int, z float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -z)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// apportion distributes total into len(weights) non-negative integer
// shares proportional to the weights, using largest-remainder rounding
// so the shares sum exactly to total.
func apportion(total int, weights []float64) []int {
	type rem struct {
		idx  int
		frac float64
	}
	shares := make([]int, len(weights))
	rems := make([]rem, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := w * float64(total)
		shares[i] = int(exact)
		assigned += shares[i]
		rems[i] = rem{idx: i, frac: exact - float64(shares[i])}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; assigned < total; i++ {
		shares[rems[i%len(rems)].idx]++
		assigned++
	}
	return shares
}

// Generate produces the data set: a slice of Points integer values in
// cluster order (all points of cluster 1, then cluster 2, …). Use
// Shuffled or Sorted to impose the insertion orders of §7.1/§7.2.
func Generate(cfg Config) ([]int, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centers := clusterCenters(cfg, rng)
	sizes := clusterSizes(cfg, rng, centers)

	values := make([]int, 0, cfg.Points)
	for c, size := range sizes {
		for range size {
			values = append(values, drawValue(cfg, rng, centers[c]))
		}
	}
	return values, nil
}

// clusterCenters places C cluster centers: the spreads between
// consecutive centers are Zipf(SpreadSkew) magnitudes scaled to fill the
// domain, assigned to positions in random order.
func clusterCenters(cfg Config, rng *rand.Rand) []float64 {
	c := cfg.Clusters
	spreads := ZipfWeights(c, cfg.SpreadSkew)
	// Shuffle the spread magnitudes so the wide and narrow gaps are
	// interleaved across the domain rather than sorted.
	rng.Shuffle(len(spreads), func(i, j int) { spreads[i], spreads[j] = spreads[j], spreads[i] })
	centers := make([]float64, c)
	pos := 0.0
	for i, s := range spreads {
		pos += s * float64(cfg.Domain)
		centers[i] = pos * float64(c) / float64(c+1) // keep the last center inside the domain
	}
	return centers
}

// clusterSizes apportions the point budget across clusters by
// Zipf(SizeSkew), pairing sizes with cluster positions according to the
// configured correlation: random pairing, positive (largest cluster in
// the widest gap) or negative (largest cluster in the narrowest gap).
func clusterSizes(cfg Config, rng *rand.Rand, centers []float64) []int {
	weights := ZipfWeights(cfg.Clusters, cfg.SizeSkew)
	sizes := apportion(cfg.Points, weights)

	switch cfg.Correlation {
	case RandomCorrelation:
		rng.Shuffle(len(sizes), func(i, j int) { sizes[i], sizes[j] = sizes[j], sizes[i] })
	case PositiveCorrelation, NegativeCorrelation:
		// Order clusters by the width of the gap they sit in.
		gap := make([]float64, len(centers))
		for i := range centers {
			switch i {
			case 0:
				gap[i] = centers[i]
			default:
				gap[i] = centers[i] - centers[i-1]
			}
		}
		idx := make([]int, len(centers))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return gap[idx[a]] > gap[idx[b]] })
		ordered := make([]int, len(sizes))
		for rank, clusterIdx := range idx {
			if cfg.Correlation == PositiveCorrelation {
				ordered[clusterIdx] = sizes[rank] // biggest size → widest gap
			} else {
				ordered[clusterIdx] = sizes[len(sizes)-1-rank]
			}
		}
		sizes = ordered
	}
	return sizes
}

// drawValue samples one integer value for a cluster centered at center.
func drawValue(cfg Config, rng *rand.Rand, center float64) int {
	x := center
	if cfg.SD > 0 {
		switch cfg.Shape {
		case Normal:
			x += rng.NormFloat64() * cfg.SD
		case Uniform:
			half := cfg.SD * math.Sqrt(3)
			x += (rng.Float64()*2 - 1) * half
		case Exponential:
			// Two-sided exponential with std dev SD: scale b = SD/√2.
			mag := rng.ExpFloat64() * cfg.SD / math.Sqrt2
			if rng.Intn(2) == 0 {
				mag = -mag
			}
			x += mag
		}
	}
	v := int(math.Round(x))
	if v < 0 {
		v = 0
	}
	if v > cfg.Domain {
		v = cfg.Domain
	}
	return v
}

// Shuffled returns a copy of values in uniformly random order — the
// "random insertions" workload of §7.1.
func Shuffled(values []int, seed int64) []int {
	out := make([]int, len(values))
	copy(out, values)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Sorted returns a copy of values in increasing value order — the
// "sorted insertions" workload of §7.2.
func Sorted(values []int) []int {
	out := make([]int, len(values))
	copy(out, values)
	sort.Ints(out)
	return out
}
