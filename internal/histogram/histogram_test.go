package histogram

import (
	"math"
	"testing"
	"testing/quick"
)

func bucketsFixture() []Bucket {
	// Three buckets over [0,10), [10,20), [25,30) — deliberate gap.
	return []Bucket{
		{Left: 0, Right: 10, Subs: []float64{4, 6}},
		{Left: 10, Right: 20, Subs: []float64{10}},
		{Left: 25, Right: 30, Subs: []float64{2, 0}},
	}
}

func TestBucketCountWidth(t *testing.T) {
	b := Bucket{Left: 2, Right: 6, Subs: []float64{1.5, 2.5}}
	if got := b.Count(); got != 4 {
		t.Errorf("Count = %v, want 4", got)
	}
	if got := b.Width(); got != 4 {
		t.Errorf("Width = %v, want 4", got)
	}
	if !b.Contains(2) || b.Contains(6) || b.Contains(1.99) {
		t.Error("Contains half-open semantics violated")
	}
}

func TestSubIndex(t *testing.T) {
	b := Bucket{Left: 0, Right: 8, Subs: []float64{0, 0, 0, 0}}
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {1.9, 0}, {2, 1}, {3.9, 1}, {4, 2}, {7.9, 3},
	}
	for _, c := range cases {
		if got := b.SubIndex(c.x); got != c.want {
			t.Errorf("SubIndex(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	single := Bucket{Left: 0, Right: 8, Subs: []float64{0}}
	if single.SubIndex(5) != 0 {
		t.Error("single sub-bucket must index 0")
	}
}

func TestBucketMassBelow(t *testing.T) {
	b := Bucket{Left: 0, Right: 10, Subs: []float64{4, 6}}
	cases := []struct {
		x    float64
		want float64
	}{
		{-1, 0}, {0, 0}, {2.5, 2}, {5, 4}, {7.5, 7}, {10, 10}, {11, 10},
	}
	for _, c := range cases {
		if got := b.MassBelow(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MassBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := b.Mass(2.5, 7.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mass(2.5,7.5) = %v, want 5", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(bucketsFixture()); err != nil {
		t.Fatalf("fixture should validate: %v", err)
	}
	bad := []struct {
		name    string
		buckets []Bucket
	}{
		{"no subs", []Bucket{{Left: 0, Right: 1, Subs: nil}}},
		{"zero width", []Bucket{{Left: 1, Right: 1, Subs: []float64{1}}}},
		{"inverted", []Bucket{{Left: 2, Right: 1, Subs: []float64{1}}}},
		{"nan border", []Bucket{{Left: math.NaN(), Right: 1, Subs: []float64{1}}}},
		{"inf border", []Bucket{{Left: 0, Right: math.Inf(1), Subs: []float64{1}}}},
		{"negative count", []Bucket{{Left: 0, Right: 1, Subs: []float64{-2}}}},
		{"nan count", []Bucket{{Left: 0, Right: 1, Subs: []float64{math.NaN()}}}},
		{"overlap", []Bucket{
			{Left: 0, Right: 5, Subs: []float64{1}},
			{Left: 4, Right: 8, Subs: []float64{1}},
		}},
	}
	for _, c := range bad {
		if err := Validate(c.buckets); err == nil {
			t.Errorf("%s: want validation error", c.name)
		}
	}
}

func TestFindAndNearestBucket(t *testing.T) {
	bs := bucketsFixture()
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {9.99, 0}, {10, 1}, {19.99, 1}, {25, 2}, {29.99, 2},
		{-1, -1}, {20, -1}, {22, -1}, {30, -1}, {100, -1},
	}
	for _, c := range cases {
		if got := FindBucket(bs, c.x); got != c.want {
			t.Errorf("FindBucket(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	nearest := []struct {
		x    float64
		want int
	}{
		{-5, 0}, {5, 0}, {21, 1}, {24.9, 2}, {50, 2},
	}
	for _, c := range nearest {
		if got := NearestBucket(bs, c.x); got != c.want {
			t.Errorf("NearestBucket(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if NearestBucket(nil, 3) != -1 {
		t.Error("NearestBucket(nil) should be -1")
	}
}

func TestMassBelowList(t *testing.T) {
	bs := bucketsFixture()
	cases := []struct {
		x    float64
		want float64
	}{
		{-1, 0}, {0, 0}, {5, 4}, {10, 10}, {15, 15}, {20, 20},
		{22, 20},   // in the gap: flat
		{27.5, 22}, // sub-bucket {2,0}: all mass in the left half
		{26.25, 21}, {30, 22}, {99, 22},
	}
	for _, c := range cases {
		if got := MassBelow(bs, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MassBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPiecewiseCDFAndRange(t *testing.T) {
	p, err := NewPiecewise(bucketsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != 22 {
		t.Fatalf("Total = %v, want 22", p.Total())
	}
	if got := p.CDF(20); math.Abs(got-20.0/22) > 1e-12 {
		t.Errorf("CDF(20) = %v", got)
	}
	// Integer range [10,19] corresponds to mass over [10,20).
	if got := p.EstimateRange(10, 19); math.Abs(got-10) > 1e-12 {
		t.Errorf("EstimateRange(10,19) = %v, want 10", got)
	}
	if got := p.EstimateRange(19, 10); got != 0 {
		t.Errorf("EstimateRange inverted = %v, want 0", got)
	}
}

func TestPiecewiseInsertDelete(t *testing.T) {
	p, err := NewPiecewise(bucketsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(5); err != nil {
		t.Fatal(err)
	}
	if p.Total() != 23 {
		t.Fatalf("Total after insert = %v", p.Total())
	}
	// Out-of-range insert lands in the nearest bucket.
	if err := p.Insert(100); err != nil {
		t.Fatal(err)
	}
	bs := p.Buckets()
	if got := bs[2].Count(); got != 3 {
		t.Fatalf("out-of-range insert: bucket 2 count = %v, want 3", got)
	}
	if err := p.Delete(5); err != nil {
		t.Fatal(err)
	}
	if p.Total() != 23 {
		t.Fatalf("Total after delete = %v", p.Total())
	}
	if err := p.Insert(math.NaN()); err == nil {
		t.Error("Insert(NaN): want error")
	}
	if err := p.Delete(math.Inf(1)); err == nil {
		t.Error("Delete(Inf): want error")
	}
}

func TestPiecewiseDeleteSpill(t *testing.T) {
	// Bucket 2 is empty in one sub; deleting there must spill.
	bs := []Bucket{
		{Left: 0, Right: 10, Subs: []float64{5}},
		{Left: 10, Right: 20, Subs: []float64{0}},
	}
	p, err := NewPiecewise(bs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(15); err != nil {
		t.Fatal(err)
	}
	got := p.Buckets()
	if got[0].Count() != 4 || got[1].Count() != 0 {
		t.Fatalf("spill delete: counts %v %v, want 4 0", got[0].Count(), got[1].Count())
	}
	// Exhaust everything, then one more delete must fail.
	for range 4 {
		if err := p.Delete(3); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Delete(3); err == nil {
		t.Error("delete from empty: want error")
	}
}

func TestNewPiecewiseRejectsInvalid(t *testing.T) {
	if _, err := NewPiecewise([]Bucket{{Left: 3, Right: 1, Subs: []float64{1}}}); err == nil {
		t.Error("want validation error")
	}
}

func TestPiecewiseBucketsIsCopy(t *testing.T) {
	p, err := NewPiecewise(bucketsFixture())
	if err != nil {
		t.Fatal(err)
	}
	bs := p.Buckets()
	bs[0].Subs[0] = 999
	if p.Buckets()[0].Subs[0] == 999 {
		t.Error("Buckets() must return a deep copy")
	}
}

func TestBucketsForMemory(t *testing.T) {
	cases := []struct {
		mem, subs, want int
	}{
		{1024, 1, 127}, // DC at 1KB: (1024-4)/8
		{1024, 2, 85},  // DADO at 1KB: (1024-4)/12
		{144, 1, 17},   // 0.14 KB ≈ 143B... 144 used here
		{16, 1, 1},
	}
	for _, c := range cases {
		got, err := BucketsForMemory(c.mem, c.subs)
		if err != nil {
			t.Fatalf("BucketsForMemory(%d,%d): %v", c.mem, c.subs, err)
		}
		if got != c.want {
			t.Errorf("BucketsForMemory(%d,%d) = %d, want %d", c.mem, c.subs, got, c.want)
		}
		if m := MemoryForBuckets(got, c.subs); m > c.mem {
			t.Errorf("MemoryForBuckets(%d,%d) = %d exceeds budget %d", got, c.subs, m, c.mem)
		}
	}
	if _, err := BucketsForMemory(4, 1); err == nil {
		t.Error("4 bytes: want error")
	}
	if _, err := BucketsForMemory(0, 1); err == nil {
		t.Error("0 bytes: want error")
	}
	if _, err := BucketsForMemory(100, 0); err == nil {
		t.Error("0 subs: want error")
	}
}

func TestKB(t *testing.T) {
	if KB(1) != 1024 || KB(0.5) != 512 {
		t.Errorf("KB conversion wrong: %d %d", KB(1), KB(0.5))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	bs := bucketsFixture()
	data, err := MarshalBuckets(bs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBuckets(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(bs) {
		t.Fatalf("round trip length %d, want %d", len(got), len(bs))
	}
	for i := range bs {
		if got[i].Left != bs[i].Left || got[i].Right != bs[i].Right {
			t.Errorf("bucket %d borders differ", i)
		}
		for j := range bs[i].Subs {
			if got[i].Subs[j] != bs[i].Subs[j] {
				t.Errorf("bucket %d sub %d differs", i, j)
			}
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	data, err := MarshalBuckets(bucketsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBuckets(data[:len(data)-3]); err == nil {
		t.Error("truncated: want error")
	}
	if _, err := UnmarshalBuckets(append(data, 0)); err == nil {
		t.Error("trailing bytes: want error")
	}
	bad := make([]byte, len(data))
	copy(bad, data)
	bad[0] ^= 0xff
	if _, err := UnmarshalBuckets(bad); err == nil {
		t.Error("bad magic: want error")
	}
	if _, err := UnmarshalBuckets(nil); err == nil {
		t.Error("empty: want error")
	}
}

// Property: piecewise CDF is monotone, bounded, and consistent with
// EstimateRange.
func TestPiecewiseCDFProperty(t *testing.T) {
	f := func(c1, c2, c3, c4 uint8) bool {
		bs := []Bucket{
			{Left: 0, Right: 10, Subs: []float64{float64(c1), float64(c2)}},
			{Left: 10, Right: 20, Subs: []float64{float64(c3), float64(c4)}},
		}
		total := float64(c1) + float64(c2) + float64(c3) + float64(c4)
		if total == 0 {
			return true
		}
		p, err := NewPiecewise(bs)
		if err != nil {
			return false
		}
		prev := 0.0
		for x := -2.0; x <= 22; x += 0.5 {
			c := p.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
				return false
			}
			prev = c
		}
		// Range estimate over the whole domain recovers the total.
		return math.Abs(p.EstimateRange(0, 19)-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: serialization round-trips arbitrary valid bucket lists.
func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(counts []uint16) bool {
		if len(counts) == 0 {
			counts = []uint16{1}
		}
		if len(counts) > 64 {
			counts = counts[:64]
		}
		bs := make([]Bucket, len(counts))
		for i, c := range counts {
			bs[i] = Bucket{
				Left:  float64(i * 10),
				Right: float64(i*10 + 10),
				Subs:  []float64{float64(c), float64(c) / 2},
			}
		}
		data, err := MarshalBuckets(bs)
		if err != nil {
			return false
		}
		got, err := UnmarshalBuckets(data)
		if err != nil {
			return false
		}
		if len(got) != len(bs) {
			return false
		}
		for i := range bs {
			if got[i].Left != bs[i].Left || got[i].Right != bs[i].Right ||
				got[i].Subs[0] != bs[i].Subs[0] || got[i].Subs[1] != bs[i].Subs[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	bs := []Bucket{
		{Left: 0, Right: 10, Subs: []float64{5, 5}},
		{Left: 10, Right: 20, Subs: []float64{10}},
	}
	cases := []struct{ q, want float64 }{
		{0.25, 5},
		{0.5, 10},
		{0.75, 15},
		{1.0, 20},
		{0.125, 2.5},
	}
	for _, c := range cases {
		got, err := Quantile(bs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	for _, bad := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := Quantile(bs, bad); err == nil {
			t.Errorf("Quantile(%v): want error", bad)
		}
	}
	if _, err := Quantile([]Bucket{{Left: 0, Right: 1, Subs: []float64{0}}}, 0.5); err == nil {
		t.Error("empty mass: want error")
	}
}

// Property: Quantile inverts the CDF — CDF(Quantile(q)) ≈ q for every
// valid q on a random histogram, and Quantile is monotone in q.
func TestQuantileInvertsCDFProperty(t *testing.T) {
	f := func(c1, c2, c3 uint8) bool {
		bs := []Bucket{
			{Left: 0, Right: 8, Subs: []float64{float64(c1) + 1, float64(c2) + 1}},
			{Left: 12, Right: 20, Subs: []float64{float64(c3) + 1}},
		}
		total := TotalCount(bs)
		prev := -1.0
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
			x, err := Quantile(bs, q)
			if err != nil {
				return false
			}
			if x < prev {
				return false
			}
			prev = x
			cdf := MassBelow(bs, x) / total
			if math.Abs(cdf-q) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
