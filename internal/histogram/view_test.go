package histogram

import (
	"math"
	"math/rand"
	"testing"
)

// randomBuckets builds a contiguous random bucket list with k subs per
// bucket and counts scaled by mag (so extreme magnitudes can be
// exercised).
func randomBuckets(rng *rand.Rand, n, k int, mag float64) []Bucket {
	bs := make([]Bucket, n)
	left := 0.0
	for i := range bs {
		width := 1 + rng.Float64()*10
		b := NewBucket(left, left+width, k)
		for s := range b.Subs {
			b.Subs[s] = rng.Float64() * mag
		}
		bs[i] = b
		left += width
	}
	return bs
}

// TestViewMatchesLinearWalks pins views over random bucket lists and
// checks every statistic against the linear-walk implementations it
// replaces. The prefix sums accumulate in the same order as MassBelow,
// so the agreement is exact, not approximate.
func TestViewMatchesLinearWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(80)
		k := 1 + rng.Intn(3)
		mag := math.Pow(10, float64(rng.Intn(7)-3))
		bs := randomBuckets(rng, n, k, mag)
		total := TotalCount(bs)
		v, err := NewView(CloneBuckets(bs), total)
		if err != nil {
			t.Fatal(err)
		}
		if got := v.Total(); got != total {
			t.Fatalf("Total = %v, want %v", got, total)
		}
		if got := v.Mass(); math.Abs(got-total) > 1e-9*total {
			t.Fatalf("Mass = %v, want %v", got, total)
		}
		span := bs[n-1].Right - bs[0].Left
		for probe := 0; probe < 40; probe++ {
			x := bs[0].Left - 1 + rng.Float64()*(span+2)
			if got, want := v.MassBelow(x), MassBelow(bs, x); got != want {
				t.Fatalf("MassBelow(%v) = %v, want %v", x, got, want)
			}
			lo := bs[0].Left + rng.Float64()*span
			hi := lo + rng.Float64()*span/2
			want := MassBelow(bs, hi+1) - MassBelow(bs, lo)
			if got := v.EstimateRange(lo, hi); got != want {
				t.Fatalf("EstimateRange(%v,%v) = %v, want %v", lo, hi, got, want)
			}
			q := rng.Float64()
			if q == 0 {
				q = 0.5
			}
			gotQ, err1 := v.Quantile(q)
			wantQ, err2 := Quantile(bs, q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("Quantile(%v) err mismatch: %v vs %v", q, err1, err2)
			}
			if err1 == nil && gotQ != wantQ {
				t.Fatalf("Quantile(%v) = %v, want %v", q, gotQ, wantQ)
			}
		}
	}
}

func TestViewEmpty(t *testing.T) {
	for _, v := range []*View{EmptyView(), mustView(t, nil, 0)} {
		if got := v.Total(); got != 0 {
			t.Errorf("Total = %v, want 0", got)
		}
		if got := v.CDF(10); got != 0 {
			t.Errorf("CDF = %v, want 0", got)
		}
		if got := v.PDF(10); got != 0 {
			t.Errorf("PDF = %v, want 0", got)
		}
		if got := v.EstimateRange(0, 10); got != 0 {
			t.Errorf("EstimateRange = %v, want 0", got)
		}
		if _, err := v.Quantile(0.5); err == nil {
			t.Error("Quantile on empty view: want error")
		}
		if got := v.NumBuckets(); got != 0 {
			t.Errorf("NumBuckets = %v, want 0", got)
		}
	}
}

func mustView(t *testing.T, bs []Bucket, total float64) *View {
	t.Helper()
	v, err := NewView(bs, total)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestViewRejectsInvalid(t *testing.T) {
	bad := []Bucket{{Left: 1, Right: 0, Subs: []float64{1}}}
	if _, err := NewView(bad, 1); err == nil {
		t.Fatal("NewView(invalid): want error")
	}
}

// TestViewPDF checks the density definition: sub-bucket count over
// sub-width over total, zero outside every bucket.
func TestViewPDF(t *testing.T) {
	bs := []Bucket{
		{Left: 0, Right: 10, Subs: []float64{4, 6}},
		{Left: 20, Right: 30, Subs: []float64{10}},
	}
	v := mustView(t, bs, 20)
	cases := []struct {
		x    float64
		want float64
	}{
		{2, 4.0 / 5 / 20},
		{7, 6.0 / 5 / 20},
		{25, 10.0 / 10 / 20},
		{15, 0}, // gap
		{-1, 0}, // before
		{40, 0}, // after
		{30, 0}, // right border exclusive
	}
	for _, c := range cases {
		if got := v.PDF(c.x); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("PDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

// TestViewBucketsIsolated checks Buckets returns a deep copy: mutating
// it must not affect the pinned state.
func TestViewBucketsIsolated(t *testing.T) {
	v := mustView(t, []Bucket{{Left: 0, Right: 1, Subs: []float64{5}}}, 5)
	got := v.Buckets()
	got[0].Subs[0] = 999
	if mass := v.MassBelow(2); mass != 5 {
		t.Fatalf("pinned mass changed to %v after mutating Buckets() copy", mass)
	}
}

// TestQuantileTinyCounts is the regression test for the
// scale-dependent epsilon: with counts of ~1e-13 the old absolute
// 1e-12 tolerance exceeded the whole bucket masses, so the walk never
// advanced past the first bucket and q=1 answered from the wrong end
// of the domain.
func TestQuantileTinyCounts(t *testing.T) {
	bs := []Bucket{
		{Left: 0, Right: 1, Subs: []float64{1e-13}},
		{Left: 5, Right: 6, Subs: []float64{1e-13}},
	}
	got, err := Quantile(bs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("Quantile(1) over tiny counts = %v, want 6 (right edge of last bucket)", got)
	}
	// The median must land in the first bucket, not be dragged right.
	got, err = Quantile(bs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || got > 1 {
		t.Fatalf("Quantile(0.5) over tiny counts = %v, want inside [0,1]", got)
	}
	v := mustView(t, CloneBuckets(bs), TotalCount(bs))
	if gotV, err := v.Quantile(1); err != nil || gotV != 6 {
		t.Fatalf("View.Quantile(1) = %v, %v; want 6, nil", gotV, err)
	}
}

// TestQuantileExtremeTotals checks that at very large totals (where an
// absolute epsilon is below one ulp of the target) quantiles stay
// monotone and inside the domain, and boundary targets resolve to the
// bucket border.
func TestQuantileExtremeTotals(t *testing.T) {
	bs := []Bucket{
		{Left: 0, Right: 100, Subs: []float64{1e15}},
		{Left: 100, Right: 200, Subs: []float64{1e15}},
		{Left: 200, Right: 300, Subs: []float64{2e15}},
	}
	prev := math.Inf(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		got, err := Quantile(bs, q)
		if err != nil {
			t.Fatal(err)
		}
		if got < 0 || got > 300 {
			t.Fatalf("Quantile(%v) = %v outside domain", q, got)
		}
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v: not monotone", q, got, prev)
		}
		prev = got
	}
	// q = 0.25 is exactly the first bucket's share: the smallest x with
	// CDF(x) ≥ 0.25 is its right border.
	got, err := Quantile(bs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 1e-6 {
		t.Fatalf("Quantile(0.25) = %v, want 100", got)
	}
}
