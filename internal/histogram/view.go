package histogram

import (
	"math"
	"sort"
)

// View is an immutable, query-optimised snapshot of a bucket list —
// the one read plane every histogram in this repository answers
// statistics from. Pinning a view costs one O(n) pass (validation plus
// a prefix-sum table over the bucket counts); after that every
// statistic is answered lock-free off the pinned state, with CDF and
// Quantile running in O(log n) binary searches instead of the linear
// bucket walks of the pre-view read path.
//
// A View never mutates its bucket list, so constructors may hand it a
// list they promise not to touch again (NewView takes ownership) and
// several views or readers may safely alias one list.
type View struct {
	buckets []Bucket
	// prefix[i] is the total mass of buckets[0:i], accumulated in
	// bucket order with the same left-to-right additions MassBelow
	// performs, so view answers are bitwise identical to the linear
	// walks they replace. len(prefix) == len(buckets)+1.
	prefix []float64
	// total is the normalisation constant for CDF and Quantile — the
	// histogram's own live count when it tracks one (it can drift from
	// the bucket mass by float error), otherwise the bucket mass.
	total float64
}

// NewView validates the bucket list and wraps it as a View, taking
// ownership of the slice: the caller must not modify buckets (or any
// Subs slice inside it) afterwards. total is the point count CDF and
// Quantile normalise by; pass TotalCount(buckets) when no separately
// maintained count exists. An empty list is a valid (empty) view.
func NewView(buckets []Bucket, total float64) (*View, error) {
	if err := Validate(buckets); err != nil {
		return nil, err
	}
	prefix := make([]float64, len(buckets)+1)
	acc := 0.0
	for i := range buckets {
		acc += buckets[i].Count()
		prefix[i+1] = acc
	}
	return &View{buckets: buckets, prefix: prefix, total: total}, nil
}

// ViewOfStore pins a snapshot of a flat bucket arena as a View. The
// store maintains the view invariants (sorted non-overlapping borders,
// running totals consistent with the rows) incrementally, so no O(n·K)
// re-validation runs, and the prefix-sum table is built straight off
// the store's running totals instead of re-summing every row. The
// bucket list is materialised once (flat, two allocations) so the view
// stays immutable while the source store keeps mutating.
func ViewOfStore(s *Store, total float64) *View {
	n := s.Len()
	prefix := make([]float64, n+1)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += s.Count(i)
		prefix[i+1] = acc
	}
	return &View{buckets: s.Buckets(), prefix: prefix, total: total}
}

// EmptyView returns the canonical zero-mass view: every statistic on
// it answers as an empty histogram does.
func EmptyView() *View {
	return &View{prefix: []float64{0}}
}

// Total returns the point count the view was pinned with.
func (v *View) Total() float64 { return v.total }

// Mass returns the total bucket mass of the pinned list (equal to
// Total up to float drift when the source histogram keeps a separate
// live counter).
func (v *View) Mass() float64 { return v.prefix[len(v.buckets)] }

// NumBuckets returns the number of buckets.
func (v *View) NumBuckets() int { return len(v.buckets) }

// Buckets returns a deep copy of the pinned bucket list.
func (v *View) Buckets() []Bucket { return CloneBuckets(v.buckets) }

// RawBuckets returns the pinned bucket list without copying, for
// callers that only convert or read it; it must not be modified.
func (v *View) RawBuckets() []Bucket { return v.buckets }

// MassBelow returns the pinned mass in (-∞, x] in O(log n): a binary
// search for the bucket whose right border exceeds x, the prefix sum
// of everything before it, and that bucket's own partial mass.
func (v *View) MassBelow(x float64) float64 {
	i := sort.Search(len(v.buckets), func(j int) bool { return v.buckets[j].Right > x })
	if i == len(v.buckets) {
		return v.prefix[i]
	}
	if x <= v.buckets[i].Left {
		return v.prefix[i]
	}
	return v.prefix[i] + v.buckets[i].MassBelow(x)
}

// CDF returns the approximate fraction of points ≤ x, 0 for an empty
// view.
func (v *View) CDF(x float64) float64 {
	if v.total <= 0 {
		return 0
	}
	return v.MassBelow(x) / v.total
}

// PDF returns the approximate probability density at x under the
// paper's uniform-within-sub-bucket assumption: the density of the
// sub-bucket containing x divided by the total count. It is 0 outside
// every bucket and on an empty view.
func (v *View) PDF(x float64) float64 {
	if v.total <= 0 || math.IsNaN(x) {
		return 0
	}
	i := FindBucket(v.buckets, x)
	if i < 0 {
		return 0
	}
	b := &v.buckets[i]
	subW := b.Width() / float64(len(b.Subs))
	return b.Subs[b.SubIndex(x)] / subW / v.total
}

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive (mass over [lo, hi+1) by the integer
// convention).
func (v *View) EstimateRange(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	return v.MassBelow(hi+1) - v.MassBelow(lo)
}

// Quantile returns the smallest x such that the pinned CDF at x is at
// least q, for q in (0, 1], locating the target bucket by binary
// search over the prefix sums. The view must hold positive mass.
func (v *View) Quantile(q float64) (float64, error) {
	if err := checkQuantileArg(q); err != nil {
		return 0, err
	}
	if v.total <= 0 {
		return 0, errNoMass()
	}
	target := q * v.total
	eps := quantileEps(v.total)
	n := len(v.buckets)
	i := sort.Search(n, func(j int) bool { return v.prefix[j+1] >= target-eps })
	if i == n {
		// q·total exceeds the pinned bucket mass (the live counter can
		// sit a hair above it); the quantile saturates at the right edge.
		if n == 0 {
			return 0, errNoMass()
		}
		return v.buckets[n-1].Right, nil
	}
	return quantileInBucket(&v.buckets[i], v.prefix[i], target, eps), nil
}
