package histogram

import (
	"fmt"

	"dynahist/internal/histerr"
)

// The paper charges every histogram the same main-memory budget and
// derives the affordable bucket count from the per-bucket footprint
// (§3.1 and §4.4): (n+1) borders of 4 bytes each plus, per bucket, one
// 4-byte counter per sub-bucket.
const (
	// BorderBytes is the size of one stored bucket border.
	BorderBytes = 4
	// CounterBytes is the size of one stored point counter.
	CounterBytes = 4
)

// BucketsForMemory returns the number of buckets a histogram with
// subsPerBucket counters per bucket can afford within memBytes:
//
//	(n+1)·BorderBytes + n·subsPerBucket·CounterBytes ≤ memBytes
//
// It returns an error if even one bucket does not fit.
func BucketsForMemory(memBytes, subsPerBucket int) (int, error) {
	if subsPerBucket < 1 {
		return 0, fmt.Errorf("histogram: %w: subsPerBucket %d < 1", histerr.ErrOption, subsPerBucket)
	}
	if memBytes <= 0 {
		return 0, fmt.Errorf("histogram: %w: memory budget %dB is not positive", histerr.ErrBudget, memBytes)
	}
	perBucket := BorderBytes + subsPerBucket*CounterBytes
	n := (memBytes - BorderBytes) / perBucket
	if n < 1 {
		return 0, fmt.Errorf("histogram: %w: %dB cannot hold a single bucket (%dB needed)",
			histerr.ErrBudget, memBytes, 2*BorderBytes+subsPerBucket*CounterBytes)
	}
	return n, nil
}

// MemoryForBuckets is the inverse of BucketsForMemory: the number of
// bytes n buckets with subsPerBucket counters each occupy.
func MemoryForBuckets(n, subsPerBucket int) int {
	return (n+1)*BorderBytes + n*subsPerBucket*CounterBytes
}

// KB converts a kilobyte figure (the unit the paper's plots use) to
// bytes.
func KB(kb float64) int { return int(kb * 1024) }
