package histogram

import (
	"fmt"

	"dynahist/internal/histerr"
)

// Piecewise is a read-mostly histogram over a fixed bucket list. Static
// constructors (Equi-Width, Equi-Depth, SC, SVO, SADO, SSBM) return
// their result as a Piecewise; it also backs the superposed histograms
// of the shared-nothing union (paper §8).
//
// Insert and Delete adjust the counter of the containing (or nearest)
// bucket without ever moving borders, which is exactly the "static
// histogram that is incrementally counted but never reorganised"
// behaviour the paper contrasts the dynamic histograms against.
type Piecewise struct {
	buckets []Bucket
	total   float64
}

// NewPiecewise wraps a bucket list. The list is validated and deep
// copied; the histogram owns its copy.
func NewPiecewise(buckets []Bucket) (*Piecewise, error) {
	if err := Validate(buckets); err != nil {
		return nil, err
	}
	cp := CloneBuckets(buckets)
	return &Piecewise{buckets: cp, total: TotalCount(cp)}, nil
}

// CloneBuckets deep-copies a bucket list. The Subs slices of the copy
// share one flat backing array (two allocations regardless of bucket
// count), matching the arena layout of histogram.Store: cloned lists
// read with the same cache behaviour as the stores they came from.
// Each Subs slice is capacity-limited to its own row, so an append on
// one bucket can never bleed into its neighbour.
func CloneBuckets(buckets []Bucket) []Bucket {
	out := make([]Bucket, len(buckets))
	nSubs := 0
	for i := range buckets {
		nSubs += len(buckets[i].Subs)
	}
	flat := make([]float64, 0, nSubs)
	for i := range buckets {
		start := len(flat)
		flat = append(flat, buckets[i].Subs...)
		out[i] = Bucket{
			Left:  buckets[i].Left,
			Right: buckets[i].Right,
			Subs:  flat[start:len(flat):len(flat)],
		}
	}
	return out
}

// Total returns the total point count.
func (p *Piecewise) Total() float64 { return p.total }

// Buckets returns a deep copy of the bucket list.
func (p *Piecewise) Buckets() []Bucket { return CloneBuckets(p.buckets) }

// NumBuckets returns the number of buckets.
func (p *Piecewise) NumBuckets() int { return len(p.buckets) }

// CDF returns the fraction of mass in (-∞, x]. An empty histogram
// returns 0 everywhere.
func (p *Piecewise) CDF(x float64) float64 {
	if p.total <= 0 {
		return 0
	}
	return MassBelow(p.buckets, x) / p.total
}

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive (mass over [lo, hi+1) by the integer
// convention).
func (p *Piecewise) EstimateRange(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	return MassBelow(p.buckets, hi+1) - MassBelow(p.buckets, lo)
}

// Insert adds one occurrence of v to the containing bucket, or to the
// nearest bucket if v lies outside every bucket.
func (p *Piecewise) Insert(v float64) error {
	if err := CheckFinite(v); err != nil {
		return err
	}
	i := NearestBucket(p.buckets, v)
	if i < 0 {
		return fmt.Errorf("histogram: %w: insert into bucketless piecewise histogram", histerr.ErrEmpty)
	}
	b := &p.buckets[i]
	x := v
	if !b.Contains(x) {
		// Out of range: attribute to the nearest sub-bucket.
		if x < b.Left {
			x = b.Left
		} else {
			x = b.Right - 1e-9
		}
	}
	b.Subs[b.SubIndex(x)]++
	p.total++
	return nil
}

// Delete removes one occurrence of v, spilling to the nearest bucket
// with positive count when the containing sub-bucket is empty (the
// paper's §7.3 policy).
func (p *Piecewise) Delete(v float64) error {
	if err := CheckFinite(v); err != nil {
		return err
	}
	if p.total <= 0 {
		return fmt.Errorf("histogram: %w: delete from empty histogram", histerr.ErrEmpty)
	}
	i := NearestBucket(p.buckets, v)
	if i < 0 {
		return fmt.Errorf("histogram: %w: delete from bucketless piecewise histogram", histerr.ErrEmpty)
	}
	if !p.decrementAt(i, v) {
		if j := nearestPositive(p.buckets, v); j >= 0 {
			p.decrementAnySub(j)
		} else {
			return fmt.Errorf("histogram: %w: no positive bucket to delete from", histerr.ErrEmpty)
		}
	}
	p.total--
	return nil
}

// decrementAt decrements the sub-bucket of bucket i containing v if it
// is positive; otherwise tries the other sub-buckets of the same
// bucket. Reports whether a decrement happened.
func (p *Piecewise) decrementAt(i int, v float64) bool {
	b := &p.buckets[i]
	x := v
	if !b.Contains(x) {
		if x < b.Left {
			x = b.Left
		} else {
			x = b.Right - 1e-9
		}
	}
	s := b.SubIndex(x)
	if b.Subs[s] >= 1 {
		b.Subs[s]--
		return true
	}
	for j := range b.Subs {
		if b.Subs[j] >= 1 {
			b.Subs[j]--
			return true
		}
	}
	// Fractional counters (from merged/static construction) may hold a
	// whole point collectively without any single counter reaching 1.
	if c := b.Count(); c >= 1 {
		scale := (c - 1) / c
		for j := range b.Subs {
			b.Subs[j] *= scale
		}
		return true
	}
	return false
}

// decrementAnySub removes one point from bucket j proportionally
// across its sub-buckets.
func (p *Piecewise) decrementAnySub(j int) {
	b := &p.buckets[j]
	c := b.Count()
	if c < 1 {
		return
	}
	scale := (c - 1) / c
	for s := range b.Subs {
		b.Subs[s] *= scale
	}
}

// nearestPositive returns the index of the bucket with count ≥ 1 whose
// range is closest to v, or -1.
func nearestPositive(buckets []Bucket, v float64) int {
	best, bestDist := -1, 0.0
	for i := range buckets {
		if buckets[i].Count() < 1 {
			continue
		}
		d := 0.0
		switch {
		case v < buckets[i].Left:
			d = buckets[i].Left - v
		case v >= buckets[i].Right:
			d = v - buckets[i].Right
		}
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
