// Package histogram provides the bucket model shared by every histogram
// in this repository: static (Equi-Width/Equi-Depth/Compressed/
// V-Optimal/SADO/SSBM), dynamic (DC/DVO/DADO) and approximate (AC).
//
// A histogram is an ordered list of non-overlapping buckets. Each bucket
// covers the half-open value interval [Left, Right) and holds one or
// more sub-bucket counters over equal-width slices of that interval
// (paper §4: the DVO/DADO internal bucket structure; plain histograms
// use a single counter). Following the paper's uniform-distribution and
// continuous-value assumptions (§2.1), mass is spread uniformly within
// each sub-bucket, which makes the cumulative distribution piecewise
// linear.
//
// Integer convention: all the workloads in the paper draw integer
// attribute values. A bucket that covers the integer values a..b spans
// the real interval [a, b+1), so the mass attributed to value v is the
// density integral over [v, v+1).
package histogram

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInvalid reports a structurally invalid bucket list.
var ErrInvalid = errors.New("histogram: invalid bucket list")

// ErrValue reports a non-finite value passed to Insert/Delete/CDF.
var ErrValue = errors.New("histogram: non-finite value")

// Bucket is one histogram bucket: the half-open interval [Left, Right)
// with len(Subs) equal-width sub-bucket counters. Counts are float64
// because repartitioning and merging produce fractional counts.
type Bucket struct {
	Left  float64
	Right float64
	Subs  []float64
}

// NewBucket returns a bucket over [left, right) with k zeroed
// sub-buckets.
func NewBucket(left, right float64, k int) Bucket {
	return Bucket{Left: left, Right: right, Subs: make([]float64, k)}
}

// Count returns the total number of points in the bucket.
func (b *Bucket) Count() float64 {
	s := 0.0
	for _, c := range b.Subs {
		s += c
	}
	return s
}

// Width returns the value-range width of the bucket.
func (b *Bucket) Width() float64 { return b.Right - b.Left }

// Contains reports whether x falls inside [Left, Right).
func (b *Bucket) Contains(x float64) bool { return x >= b.Left && x < b.Right }

// SubIndex returns the index of the sub-bucket containing x. x must be
// inside the bucket.
func (b *Bucket) SubIndex(x float64) int {
	k := len(b.Subs)
	if k == 1 {
		return 0
	}
	i := int(float64(k) * (x - b.Left) / b.Width())
	if i < 0 {
		i = 0
	}
	if i >= k {
		i = k - 1
	}
	return i
}

// MassBelow returns the bucket mass in (-∞, x]: zero if x ≤ Left, the
// full count if x ≥ Right, linear interpolation through the sub-bucket
// densities otherwise.
func (b *Bucket) MassBelow(x float64) float64 {
	if x <= b.Left {
		return 0
	}
	if x >= b.Right {
		return b.Count()
	}
	k := len(b.Subs)
	subW := b.Width() / float64(k)
	mass := 0.0
	for i, c := range b.Subs {
		lo := b.Left + float64(i)*subW
		hi := lo + subW
		switch {
		case x >= hi:
			mass += c
		case x > lo:
			mass += c * (x - lo) / subW
		}
	}
	return mass
}

// Mass returns the bucket mass inside [lo, hi).
func (b *Bucket) Mass(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return b.MassBelow(hi) - b.MassBelow(lo)
}

// Clone returns a deep copy of the bucket.
func (b *Bucket) Clone() Bucket {
	c := Bucket{Left: b.Left, Right: b.Right, Subs: make([]float64, len(b.Subs))}
	copy(c.Subs, b.Subs)
	return c
}

// Histogram is the behaviour every maintained histogram exposes. Static
// histograms implement it with no-op maintenance via *Piecewise.
type Histogram interface {
	// Insert adds one occurrence of the value.
	Insert(v float64) error
	// Delete removes one occurrence of the value.
	Delete(v float64) error
	// Total returns the current total point count.
	Total() float64
	// Buckets returns a copy of the current bucket list, sorted by Left.
	Buckets() []Bucket
	// CDF returns the approximate fraction of mass in (-∞, x].
	CDF(x float64) float64
	// EstimateRange returns the approximate number of points with
	// integer value in [lo, hi] (inclusive).
	EstimateRange(lo, hi float64) float64
}

// Validate checks that buckets are sorted, non-overlapping, have
// positive width, non-negative finite counts, and at least one
// sub-bucket each. Gaps between buckets are allowed (the DVO/DADO
// out-of-range borrow can create them).
func Validate(buckets []Bucket) error {
	for i := range buckets {
		b := &buckets[i]
		if len(b.Subs) == 0 {
			return fmt.Errorf("%w: bucket %d has no sub-buckets", ErrInvalid, i)
		}
		if !(b.Right > b.Left) || math.IsInf(b.Left, 0) || math.IsInf(b.Right, 0) ||
			math.IsNaN(b.Left) || math.IsNaN(b.Right) {
			return fmt.Errorf("%w: bucket %d has bad range [%v,%v)", ErrInvalid, i, b.Left, b.Right)
		}
		for j, c := range b.Subs {
			if math.IsNaN(c) || math.IsInf(c, 0) || c < -1e-6 {
				return fmt.Errorf("%w: bucket %d sub %d count %v", ErrInvalid, i, j, c)
			}
		}
		if i > 0 && b.Left < buckets[i-1].Right-1e-9 {
			return fmt.Errorf("%w: bucket %d overlaps predecessor", ErrInvalid, i)
		}
	}
	return nil
}

// TotalCount sums the counts of all buckets.
func TotalCount(buckets []Bucket) float64 {
	s := 0.0
	for i := range buckets {
		s += buckets[i].Count()
	}
	return s
}

// FindBucket returns the index of the bucket containing x, or -1 if x
// lies outside every bucket (before the first, after the last, or in a
// gap). buckets must be sorted by Left.
func FindBucket(buckets []Bucket, x float64) int {
	i := sort.Search(len(buckets), func(j int) bool { return buckets[j].Right > x })
	if i < len(buckets) && buckets[i].Contains(x) {
		return i
	}
	return -1
}

// NearestBucket returns the index of the bucket whose range is closest
// to x (the containing bucket if any), or -1 for an empty list.
func NearestBucket(buckets []Bucket, x float64) int {
	if len(buckets) == 0 {
		return -1
	}
	if i := FindBucket(buckets, x); i >= 0 {
		return i
	}
	best, bestDist := -1, math.Inf(1)
	for i := range buckets {
		d := 0.0
		switch {
		case x < buckets[i].Left:
			d = buckets[i].Left - x
		case x >= buckets[i].Right:
			d = x - buckets[i].Right
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// MassBelow returns the total mass of the bucket list in (-∞, x].
func MassBelow(buckets []Bucket, x float64) float64 {
	mass := 0.0
	for i := range buckets {
		if buckets[i].Right <= x {
			mass += buckets[i].Count()
			continue
		}
		if buckets[i].Left >= x {
			break
		}
		mass += buckets[i].MassBelow(x)
	}
	return mass
}

// CheckFinite validates a user-supplied value.
func CheckFinite(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: %v", ErrValue, v)
	}
	return nil
}
