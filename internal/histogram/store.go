package histogram

import (
	"fmt"
	"math"
)

// Store is the flat bucket arena every maintained histogram in this
// repository keeps its state in. Instead of a []Bucket whose every
// element carries its own heap-allocated Subs slice (40-byte headers
// pointing at scattered 16-byte allocations), a Store holds three
// contiguous float64 arrays:
//
//	borders — interleaved bucket ranges: borders[2i] is bucket i's
//	          Left, borders[2i+1] its Right. Buckets are sorted by
//	          Left and non-overlapping; gaps between buckets are
//	          allowed (the DVO/DADO out-of-range borrow and the DC
//	          loading phase both create them).
//	subs    — the sub-bucket counters, K per bucket, row-major:
//	          bucket i's counters are subs[i*K : (i+1)*K].
//	counts  — the per-bucket running totals, maintained incrementally
//	          by every mutation, so Count(i) is O(1) instead of the
//	          O(K) re-sum the old Bucket.Count performed on every
//	          deviation probe.
//
// The layout is cache-friendly (lookups probe one dense borders array
// through a uniform grid index; the hot split-merge loops stream rows
// of adjacent memory) and allocation-free in steady state: once
// the arrays have grown to the histogram's bucket budget, inserting
// and removing buckets only shifts within existing capacity.
//
// A Store imposes no semantics beyond the layout: equal-width
// sub-bucket helpers (SubIndex, MassBelow, Mass) are provided for the
// DVO/DADO/DC families, while the equi-depth family keeps its own
// split-aware math over the same arrays.
type Store struct {
	k       int
	borders []float64
	subs    []float64
	counts  []float64

	// grid is a uniform acceleration index over the border range:
	// grid[c] is the first bucket whose right border maps to cell c or
	// later, so Find starts its scan there instead of binary-searching.
	// A random value stream defeats the branch predictor on a binary
	// search (one mispredict per level); the grid costs one multiply
	// and a short, usually zero-step scan. Borders change only on the
	// rare split/merge/insert paths, so the index is rebuilt lazily:
	// any border mutation clears gridOK and the next Find rebuilds.
	grid    []int32
	gridLo  float64
	gridInv float64
	gridOK  bool
}

// NewStore returns an empty store with k sub-bucket counters per
// bucket. k must be at least 1.
func NewStore(k int) *Store {
	if k < 1 {
		k = 1
	}
	return &Store{k: k}
}

// StoreOfBuckets builds a store from a validated bucket list. Every
// bucket must carry exactly k sub-bucket counters.
func StoreOfBuckets(buckets []Bucket, k int) (*Store, error) {
	if err := Validate(buckets); err != nil {
		return nil, err
	}
	s := &Store{
		k:       k,
		borders: make([]float64, 0, 2*len(buckets)),
		subs:    make([]float64, 0, k*len(buckets)),
		counts:  make([]float64, 0, len(buckets)),
	}
	for i := range buckets {
		b := &buckets[i]
		if len(b.Subs) != k {
			return nil, fmt.Errorf("%w: bucket %d has %d sub-buckets, store wants %d",
				ErrInvalid, i, len(b.Subs), k)
		}
		s.borders = append(s.borders, b.Left, b.Right)
		s.subs = append(s.subs, b.Subs...)
		c := 0.0
		for _, v := range b.Subs {
			c += v
		}
		s.counts = append(s.counts, c)
	}
	return s, nil
}

// K returns the number of sub-bucket counters per bucket.
func (s *Store) K() int { return s.k }

// Len returns the number of buckets.
func (s *Store) Len() int { return len(s.counts) }

// Left returns bucket i's left border.
func (s *Store) Left(i int) float64 { return s.borders[2*i] }

// Right returns bucket i's right border.
func (s *Store) Right(i int) float64 { return s.borders[2*i+1] }

// Width returns bucket i's value-range width.
func (s *Store) Width(i int) float64 { return s.borders[2*i+1] - s.borders[2*i] }

// Count returns bucket i's total point count in O(1) off the
// incrementally maintained running total.
func (s *Store) Count(i int) float64 { return s.counts[i] }

// Contains reports whether x falls inside bucket i's [Left, Right).
func (s *Store) Contains(i int, x float64) bool {
	return x >= s.borders[2*i] && x < s.borders[2*i+1]
}

// Row returns bucket i's sub-bucket counters as a sub-slice of the
// arena. The caller must not grow it; writes must go through Add,
// Scale or SetRow so the running total stays maintained.
func (s *Store) Row(i int) []float64 { return s.subs[i*s.k : (i+1)*s.k] }

// SubIndex returns the index of the equal-width sub-bucket of bucket i
// containing x; x should lie inside the bucket. The K=1 and K=2 cases
// (every histogram family in this repository) avoid the division.
func (s *Store) SubIndex(i int, x float64) int {
	switch s.k {
	case 1:
		return 0
	case 2:
		if x >= (s.borders[2*i]+s.borders[2*i+1])/2 {
			return 1
		}
		return 0
	}
	j := int(float64(s.k) * (x - s.borders[2*i]) / s.Width(i))
	if j < 0 {
		j = 0
	}
	if j >= s.k {
		j = s.k - 1
	}
	return j
}

// Add adjusts sub-counter sub of bucket i by delta, maintaining the
// running total.
func (s *Store) Add(i, sub int, delta float64) {
	s.subs[i*s.k+sub] += delta
	s.counts[i] += delta
}

// AddAt adds delta to the sub-counter of bucket i covering x. The K=2
// hot path (the DVO/DADO default) is inlined division-free.
func (s *Store) AddAt(i int, x, delta float64) {
	if s.k == 2 {
		j := 2 * i
		if x >= (s.borders[2*i]+s.borders[2*i+1])/2 {
			j++
		}
		s.subs[j] += delta
		s.counts[i] += delta
		return
	}
	s.Add(i, s.SubIndex(i, x), delta)
}

// Scale multiplies every counter of bucket i by factor.
func (s *Store) Scale(i int, factor float64) {
	row := s.Row(i)
	for j := range row {
		row[j] *= factor
	}
	s.counts[i] *= factor
}

// SetRow overwrites bucket i's counters (len(vals) must be K) and
// recomputes its running total.
func (s *Store) SetRow(i int, vals []float64) {
	row := s.Row(i)
	c := 0.0
	for j := range row {
		row[j] = vals[j]
		c += vals[j]
	}
	s.counts[i] = c
}

// FillUniform spreads total evenly across bucket i's counters.
func (s *Store) FillUniform(i int, total float64) {
	row := s.Row(i)
	per := total / float64(s.k)
	for j := range row {
		row[j] = per
	}
	s.counts[i] = total
}

// SetBorders moves bucket i's range. The caller is responsible for
// keeping the list sorted and non-overlapping.
func (s *Store) SetBorders(i int, left, right float64) {
	s.borders[2*i] = left
	s.borders[2*i+1] = right
	s.gridOK = false
}

// Find returns the index of the bucket containing x, or -1 when x lies
// outside every bucket (before the first, after the last, or in a
// gap) — the flat-layout form of FindBucket. It answers from the grid
// index: one multiply locates the cell, grid[cell] gives the first
// candidate bucket, and a short forward scan (usually zero or one
// step) lands on the first bucket whose right border exceeds x. This
// sits on the per-value hot path of every insert.
func (s *Store) Find(x float64) int {
	n := s.Len()
	if n == 0 {
		return -1
	}
	if !s.gridOK {
		s.rebuildGrid()
	}
	i := int(s.grid[s.cellOf(x)])
	b := s.borders
	for i < n && b[2*i+1] <= x {
		i++
	}
	if i < n && x >= b[2*i] {
		return i
	}
	return -1
}

// cellOf maps a value to its grid cell, clamped to the index range.
// The clamp also absorbs NaN (whose int conversion is platform
// dependent but always lands outside the range after clamping the
// negative side first), so a NaN probe scans from bucket 0 and fails
// the containment check like any out-of-range value.
func (s *Store) cellOf(v float64) int {
	c := int((v - s.gridLo) * s.gridInv)
	if c < 0 {
		return 0
	}
	if c >= len(s.grid) {
		return len(s.grid) - 1
	}
	return c
}

// rebuildGrid recomputes the acceleration index from the current
// borders: grid[c] is the first bucket i with cellOf(Right(i)) ≥ c.
// Because cellOf is weakly monotone and the build uses the same cell
// function as the query, every bucket before grid[cellOf(x)] has a
// right border strictly below x — float rounding at cell edges can
// only make the start conservative (earlier), never skip the answer.
func (s *Store) rebuildGrid() {
	n := s.Len()
	cells := 4 * n
	if cells < 64 {
		cells = 64
	}
	if cells > 4096 {
		cells = 4096
	}
	lo, hi := s.borders[0], s.borders[2*n-1]
	w := hi - lo
	if !(w > 0) {
		w = 1 // unreachable for a valid store; keeps the index safe
	}
	s.gridLo = lo
	s.gridInv = float64(cells) / w
	if cap(s.grid) < cells {
		s.grid = make([]int32, cells)
	} else {
		s.grid = s.grid[:cells]
	}
	i := 0
	for c := range s.grid {
		for i < n && s.cellOf(s.borders[2*i+1]) < c {
			i++
		}
		s.grid[c] = int32(i)
	}
	s.gridOK = true
}

// MassBelow returns bucket i's mass in (-∞, x] under the equal-width
// sub-bucket uniform assumption. The full-bucket case re-sums the row
// instead of returning the maintained running total: split/merge
// reconstruction reads counter rows through this method, and the
// running total drifts from the fresh sum by ulps.
func (s *Store) MassBelow(i int, x float64) float64 {
	left, right := s.borders[2*i], s.borders[2*i+1]
	if x <= left {
		return 0
	}
	if x >= right {
		c := 0.0
		for _, v := range s.Row(i) {
			c += v
		}
		return c
	}
	subW := (right - left) / float64(s.k)
	row := s.Row(i)
	mass := 0.0
	for j, c := range row {
		lo := left + float64(j)*subW
		hi := lo + subW
		switch {
		case x >= hi:
			mass += c
		case x > lo:
			mass += c * (x - lo) / subW
		}
	}
	return mass
}

// Mass returns bucket i's mass inside [lo, hi).
func (s *Store) Mass(i int, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	return s.MassBelow(i, hi) - s.MassBelow(i, lo)
}

// MassBelowAll returns the total mass of the whole store in (-∞, x] —
// the flat-layout form of the package-level MassBelow walk.
func (s *Store) MassBelowAll(x float64) float64 {
	mass := 0.0
	for i := 0; i < s.Len(); i++ {
		if s.borders[2*i+1] <= x {
			mass += s.counts[i]
			continue
		}
		if s.borders[2*i] >= x {
			break
		}
		mass += s.MassBelow(i, x)
	}
	return mass
}

// TotalMass sums every bucket's running total.
func (s *Store) TotalMass() float64 {
	t := 0.0
	for _, c := range s.counts {
		t += c
	}
	return t
}

// Insert makes room for a new zero-count bucket [left, right) at
// position pos, shifting later buckets right. In steady state (arrays
// already grown to the histogram's budget) it allocates nothing.
func (s *Store) Insert(pos int, left, right float64) {
	s.gridOK = false
	s.borders = append(s.borders, 0, 0)
	copy(s.borders[2*pos+2:], s.borders[2*pos:])
	s.borders[2*pos] = left
	s.borders[2*pos+1] = right

	k := s.k
	s.subs = append(s.subs, make([]float64, k)...)
	copy(s.subs[(pos+1)*k:], s.subs[pos*k:])
	row := s.subs[pos*k : (pos+1)*k]
	for j := range row {
		row[j] = 0
	}

	s.counts = append(s.counts, 0)
	copy(s.counts[pos+1:], s.counts[pos:])
	s.counts[pos] = 0
}

// Remove deletes the bucket at position pos, shifting later buckets
// left. It never allocates.
func (s *Store) Remove(pos int) {
	s.gridOK = false
	copy(s.borders[2*pos:], s.borders[2*pos+2:])
	s.borders = s.borders[:len(s.borders)-2]
	k := s.k
	copy(s.subs[pos*k:], s.subs[(pos+1)*k:])
	s.subs = s.subs[:len(s.subs)-k]
	copy(s.counts[pos:], s.counts[pos+1:])
	s.counts = s.counts[:len(s.counts)-1]
}

// Reset empties the store, keeping capacity.
func (s *Store) Reset() {
	s.borders = s.borders[:0]
	s.subs = s.subs[:0]
	s.counts = s.counts[:0]
	s.gridOK = false
}

// Clone deep-copies the store.
func (s *Store) Clone() *Store {
	c := &Store{
		k:       s.k,
		borders: append([]float64(nil), s.borders...),
		subs:    append([]float64(nil), s.subs...),
		counts:  append([]float64(nil), s.counts...),
	}
	return c
}

// Buckets materialises the store as a classic bucket list. The Subs
// slices of all returned buckets share one freshly allocated backing
// array (two allocations total), so the result is itself flat in
// memory; callers own it.
func (s *Store) Buckets() []Bucket {
	n := s.Len()
	out := make([]Bucket, n)
	flat := append([]float64(nil), s.subs...)
	for i := 0; i < n; i++ {
		out[i] = Bucket{
			Left:  s.borders[2*i],
			Right: s.borders[2*i+1],
			Subs:  flat[i*s.k : (i+1)*s.k : (i+1)*s.k],
		}
	}
	return out
}

// Validate checks the store's structural invariants directly on the
// flat arrays: sorted non-overlapping positive-width ranges, finite
// non-negative counters, and running totals consistent with the rows.
func (s *Store) Validate() error {
	n := s.Len()
	if len(s.borders) != 2*n || len(s.subs) != n*s.k {
		return fmt.Errorf("%w: inconsistent arena lengths", ErrInvalid)
	}
	for i := 0; i < n; i++ {
		left, right := s.borders[2*i], s.borders[2*i+1]
		if !(right > left) || math.IsInf(left, 0) || math.IsInf(right, 0) ||
			math.IsNaN(left) || math.IsNaN(right) {
			return fmt.Errorf("%w: bucket %d has bad range [%v,%v)", ErrInvalid, i, left, right)
		}
		if i > 0 && left < s.borders[2*i-1]-1e-9 {
			return fmt.Errorf("%w: bucket %d overlaps predecessor", ErrInvalid, i)
		}
		sum := 0.0
		for j, c := range s.Row(i) {
			if math.IsNaN(c) || math.IsInf(c, 0) || c < -1e-6 {
				return fmt.Errorf("%w: bucket %d sub %d count %v", ErrInvalid, i, j, c)
			}
			sum += c
		}
		if math.Abs(sum-s.counts[i]) > 1e-6*(1+math.Abs(sum)) {
			return fmt.Errorf("%w: bucket %d running total %v drifted from row sum %v",
				ErrInvalid, i, s.counts[i], sum)
		}
	}
	return nil
}
