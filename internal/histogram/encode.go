package histogram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary serialization of bucket lists. A database system persists its
// statistics in the catalog; this is the catalog wire format:
//
//	magic   uint32  "DYNH"
//	version uint16  1
//	nbucket uint32
//	per bucket:
//	  left  float64
//	  right float64
//	  nsubs uint16
//	  subs  nsubs × float64
//
// All integers are little-endian.

const (
	encodeMagic   = 0x44594e48 // "DYNH"
	encodeVersion = 1
)

// ErrDecode reports a malformed serialized histogram.
var ErrDecode = errors.New("histogram: malformed encoding")

// MarshalBuckets serializes a bucket list.
func MarshalBuckets(buckets []Bucket) ([]byte, error) {
	if err := Validate(buckets); err != nil {
		return nil, err
	}
	size := 4 + 2 + 4
	for i := range buckets {
		size += 8 + 8 + 2 + 8*len(buckets[i].Subs)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, encodeMagic)
	out = binary.LittleEndian.AppendUint16(out, encodeVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(buckets)))
	for i := range buckets {
		b := &buckets[i]
		if len(b.Subs) > math.MaxUint16 {
			return nil, fmt.Errorf("histogram: bucket %d has %d sub-buckets, limit %d",
				i, len(b.Subs), math.MaxUint16)
		}
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(b.Left))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(b.Right))
		out = binary.LittleEndian.AppendUint16(out, uint16(len(b.Subs)))
		for _, c := range b.Subs {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(c))
		}
	}
	return out, nil
}

// UnmarshalBuckets parses a bucket list serialized by MarshalBuckets
// and validates it.
func UnmarshalBuckets(data []byte) ([]Bucket, error) {
	r := reader{data: data}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != encodeMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrDecode, magic)
	}
	version, err := r.u16()
	if err != nil {
		return nil, err
	}
	if version != encodeVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrDecode, version)
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(len(data)) { // cheap sanity bound before allocating
		return nil, fmt.Errorf("%w: implausible bucket count %d", ErrDecode, n)
	}
	buckets := make([]Bucket, 0, n)
	for i := uint32(0); i < n; i++ {
		var b Bucket
		if b.Left, err = r.f64(); err != nil {
			return nil, err
		}
		if b.Right, err = r.f64(); err != nil {
			return nil, err
		}
		nsubs, err := r.u16()
		if err != nil {
			return nil, err
		}
		b.Subs = make([]float64, nsubs)
		for j := range b.Subs {
			if b.Subs[j], err = r.f64(); err != nil {
				return nil, err
			}
		}
		buckets = append(buckets, b)
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(data)-r.pos)
	}
	if err := Validate(buckets); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return buckets, nil
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) need(n int) error {
	if r.pos+n > len(r.data) {
		return fmt.Errorf("%w: truncated at byte %d", ErrDecode, r.pos)
	}
	return nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) f64() (float64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v, nil
}
