package histogram

import (
	"fmt"
	"math"

	"dynahist/internal/histerr"
)

// quantileEps returns the tolerance used when matching the cumulative
// mass against the quantile target. It is relative to the total mass:
// an absolute epsilon either vanishes at large totals (at 1e15 points
// the old 1e-12 was below one ulp, so boundary targets tie-broke on
// rounding noise) or dominates at tiny fractional totals (merged and
// scaled histograms can hold e-13-sized counts, where 1e-12 swallowed
// whole buckets).
func quantileEps(total float64) float64 {
	return total * 1e-12
}

// checkQuantileArg validates q in (0, 1].
func checkQuantileArg(q float64) error {
	if math.IsNaN(q) || q <= 0 || q > 1 {
		return fmt.Errorf("histogram: quantile %v outside (0,1]", q)
	}
	return nil
}

// errNoMass is the empty-histogram quantile error.
func errNoMass() error {
	return fmt.Errorf("histogram: %w: no mass to take a quantile of", histerr.ErrEmpty)
}

// quantileInBucket walks the sub-buckets of b for the smallest x whose
// cumulative mass (starting from acc, the mass before b) reaches
// target, linearly interpolating within the matching sub-bucket
// (uniform assumption).
func quantileInBucket(b *Bucket, acc, target, eps float64) float64 {
	k := len(b.Subs)
	subW := b.Width() / float64(k)
	for s, sc := range b.Subs {
		if acc+sc < target-eps {
			acc += sc
			continue
		}
		lo := b.Left + float64(s)*subW
		if sc <= 0 {
			return lo
		}
		frac := (target - acc) / sc
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + frac*subW
	}
	return b.Right
}

// Quantile returns the smallest x such that the bucket list's CDF at x
// is at least q, for q in (0, 1]. Within a sub-bucket the position is
// linearly interpolated (uniform assumption). The bucket list must hold
// positive mass.
//
// Quantiles are the building block of equi-depth repartitioning and a
// useful API in their own right: a query optimizer uses them for
// percentile statistics and histogram-based sampling. This is the
// linear-walk form for ad-hoc bucket lists; a pinned View answers the
// same question in O(log n) off its prefix sums.
func Quantile(buckets []Bucket, q float64) (float64, error) {
	if err := checkQuantileArg(q); err != nil {
		return 0, err
	}
	total := TotalCount(buckets)
	if total <= 0 {
		return 0, errNoMass()
	}
	target := q * total
	eps := quantileEps(total)
	acc := 0.0
	for i := range buckets {
		b := &buckets[i]
		c := b.Count()
		if acc+c < target-eps {
			acc += c
			continue
		}
		return quantileInBucket(b, acc, target, eps), nil
	}
	return buckets[len(buckets)-1].Right, nil
}
