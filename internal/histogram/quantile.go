package histogram

import (
	"fmt"
	"math"

	"dynahist/internal/histerr"
)

// Quantile returns the smallest x such that the bucket list's CDF at x
// is at least q, for q in (0, 1]. Within a sub-bucket the position is
// linearly interpolated (uniform assumption). The bucket list must hold
// positive mass.
//
// Quantiles are the building block of equi-depth repartitioning and a
// useful API in their own right: a query optimizer uses them for
// percentile statistics and histogram-based sampling.
func Quantile(buckets []Bucket, q float64) (float64, error) {
	if math.IsNaN(q) || q <= 0 || q > 1 {
		return 0, fmt.Errorf("histogram: quantile %v outside (0,1]", q)
	}
	total := TotalCount(buckets)
	if total <= 0 {
		return 0, fmt.Errorf("histogram: %w: no mass to take a quantile of", histerr.ErrEmpty)
	}
	target := q * total
	acc := 0.0
	for i := range buckets {
		b := &buckets[i]
		c := b.Count()
		if acc+c < target-1e-12 {
			acc += c
			continue
		}
		// The target falls inside this bucket; walk its sub-buckets.
		k := len(b.Subs)
		subW := b.Width() / float64(k)
		for s, sc := range b.Subs {
			if acc+sc < target-1e-12 {
				acc += sc
				continue
			}
			lo := b.Left + float64(s)*subW
			if sc <= 0 {
				return lo, nil
			}
			frac := (target - acc) / sc
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*subW, nil
		}
		return b.Right, nil
	}
	return buckets[len(buckets)-1].Right, nil
}
