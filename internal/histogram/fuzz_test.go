package histogram

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalBuckets checks that the decoder never panics on
// arbitrary input and that every successfully decoded bucket list
// re-encodes to an equivalent blob.
func FuzzUnmarshalBuckets(f *testing.F) {
	good, err := MarshalBuckets(bucketsFixture())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x48, 0x4e, 0x59, 0x44}) // magic only
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		buckets, err := UnmarshalBuckets(data)
		if err != nil {
			return
		}
		if err := Validate(buckets); err != nil {
			t.Fatalf("decoder accepted invalid buckets: %v", err)
		}
		re, err := MarshalBuckets(buckets)
		if err != nil {
			t.Fatalf("re-encode of decoded buckets failed: %v", err)
		}
		round, err := UnmarshalBuckets(re)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(round) != len(buckets) {
			t.Fatalf("round trip changed bucket count: %d vs %d", len(round), len(buckets))
		}
	})
}
