package static

import (
	"container/heap"

	"dynahist/internal/dist"
	"dynahist/internal/histogram"
)

// SSBM builds the Successive Similar Bucket Merge histogram (paper §5):
// load every distinct value into its own bucket, then repeatedly merge
// the adjacent pair whose merged bucket has the smallest deviation V_M
// (Eq. 4) until n buckets remain.
//
// The merged deviation of a candidate is computed exactly over all
// integer domain values the merged bucket would span — including the
// zero-frequency values between populated ones, which is what makes
// merging across wide empty gaps expensive and keeps bucket borders at
// the edges of the populated regions.
//
// The paper quotes the cost as quadratic in the number of distinct
// values for the naive re-scan; this implementation reproduces the
// identical merge sequence with a lazy-deletion min-heap over adjacent
// pairs in O(D log D).
func SSBM(tr *dist.Tracker, n int) (*histogram.Piecewise, error) {
	values, counts, err := checkInput(tr, n)
	if err != nil {
		return nil, err
	}
	d := len(values)
	if n >= d {
		return Exact(tr)
	}

	// Segment state: doubly-linked list over initial singletons.
	segs := make([]ssbmSegment, d)
	for i, v := range values {
		f := float64(counts[i])
		segs[i] = ssbmSegment{
			lo: v, hi: v, // inclusive value range
			sum: f, sum2: f * f,
			prev: i - 1, next: i + 1,
			version: 0, alive: true,
		}
	}
	segs[d-1].next = -1

	h := &pairHeap{}
	heap.Init(h)
	for i := 0; i+1 < d; i++ {
		heap.Push(h, pairEntry{
			cost: mergedCost(&segs[i], &segs[i+1]),
			left: i, lv: 0, rv: 0,
		})
	}

	alive := d
	for alive > n && h.Len() > 0 {
		e := heap.Pop(h).(pairEntry)
		l := e.left
		if !segs[l].alive || segs[l].version != e.lv {
			continue
		}
		r := segs[l].next
		if r < 0 || segs[r].version != e.rv {
			continue
		}
		// Merge r into l.
		segs[l].hi = segs[r].hi
		segs[l].sum += segs[r].sum
		segs[l].sum2 += segs[r].sum2
		segs[l].version++
		segs[r].alive = false
		segs[l].next = segs[r].next
		if segs[l].next >= 0 {
			segs[segs[l].next].prev = l
		}
		alive--
		if p := segs[l].prev; p >= 0 {
			heap.Push(h, pairEntry{
				cost: mergedCost(&segs[p], &segs[l]),
				left: p, lv: segs[p].version, rv: segs[l].version,
			})
		}
		if nx := segs[l].next; nx >= 0 {
			heap.Push(h, pairEntry{
				cost: mergedCost(&segs[l], &segs[nx]),
				left: l, lv: segs[l].version, rv: segs[nx].version,
			})
		}
	}

	buckets := make([]histogram.Bucket, 0, n)
	for i := 0; i >= 0; i = segs[i].next {
		s := &segs[i]
		buckets = append(buckets, histogram.Bucket{
			Left:  float64(s.lo),
			Right: float64(s.hi + 1),
			Subs:  []float64{s.sum},
		})
	}
	return histogram.NewPiecewise(buckets)
}

// SSBMMemory builds an SSBM histogram sized for a byte budget.
func SSBMMemory(tr *dist.Tracker, memBytes int) (*histogram.Piecewise, error) {
	n, err := histogram.BucketsForMemory(memBytes, 1)
	if err != nil {
		return nil, err
	}
	return SSBM(tr, n)
}

type ssbmSegment struct {
	lo, hi     int     // inclusive integer value range
	sum, sum2  float64 // Σf and Σf² over the populated values inside
	prev, next int
	version    int
	alive      bool
}

// mergedCost is the deviation V_M of the bucket that would result from
// merging a and b: the sum of squared deviations of the per-value
// frequencies (zeros included) from the merged mean frequency, over the
// merged span.
func mergedCost(a, b *ssbmSegment) float64 {
	m := float64(b.hi - a.lo + 1) // domain values spanned, zeros included
	sum := a.sum + b.sum
	sum2 := a.sum2 + b.sum2
	mean := sum / m
	c := sum2 - m*mean*mean // Σ(f−μ)² = Σf² − m·μ²  (zeros add 0 to Σf²)
	if c < 0 {
		return 0
	}
	return c
}

type pairEntry struct {
	cost   float64
	left   int
	lv, rv int
}

type pairHeap []pairEntry

func (h pairHeap) Len() int           { return len(h) }
func (h pairHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h pairHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)        { *h = append(*h, x.(pairEntry)) }
func (h *pairHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
