package static

import (
	"fmt"
	"math"
	"sort"

	"dynahist/internal/dist"
	"dynahist/internal/histogram"
)

// maxDPElements bounds the number of distinct values the exact dynamic
// programs accept. The SADO cost table is O(D²) floats; beyond this the
// table would dominate memory and the caller should coarsen the data
// first. (The paper's static comparisons, Figs. 9-13, use C=50 and
// C=200 cluster workloads that stay far below the bound.)
const maxDPElements = 6000

// VOptimal builds the SVO histogram: the partition of the distinct
// values into at most n groups minimising the summed within-group
// variance of frequencies, Eq. (2)/(3), found by exact dynamic
// programming. The paper quotes the naive construction as exponential
// in the number of buckets; the classic DP is O(D²·n) with O(1) segment
// costs from prefix sums of f and f².
func VOptimal(tr *dist.Tracker, n int) (*histogram.Piecewise, error) {
	values, counts, err := checkInput(tr, n)
	if err != nil {
		return nil, err
	}
	d := len(values)
	if n >= d {
		return Exact(tr)
	}
	// Prefix sums over frequencies.
	sum := make([]float64, d+1)
	sum2 := make([]float64, d+1)
	for i, c := range counts {
		f := float64(c)
		sum[i+1] = sum[i] + f
		sum2[i+1] = sum2[i] + f*f
	}
	// Cost of grouping elements [i, j): the SSE of the per-value
	// frequencies over the bucket's whole integer span — Eq. (3)'s "j
	// ranges over all possible domain values within the bucket", so
	// zero-frequency values inside the span count too. This is what
	// makes merging across wide empty gaps expensive and keeps bucket
	// borders at the edges of populated regions.
	cost := func(i, j int) float64 {
		m := float64(values[j-1] - values[i] + 1) // span incl. zeros
		s := sum[j] - sum[i]
		s2 := sum2[j] - sum2[i]
		c := s2 - s*s/m
		if c < 0 {
			return 0
		}
		return c
	}
	groups := partitionDP(d, n, cost)
	return bucketsFromGroups(values, counts, groups)
}

// SADO builds the Static Average-Deviation Optimal histogram the paper
// introduces (§4.1): the partition minimising the summed within-group
// absolute deviation of frequencies from the group mean, Eq. (5), by
// the same dynamic program. Absolute deviations have no prefix-sum
// closed form, so the D×D segment-cost table is precomputed with a
// Fenwick tree keyed by compressed frequency in O(D² log D).
func SADO(tr *dist.Tracker, n int) (*histogram.Piecewise, error) {
	values, counts, err := checkInput(tr, n)
	if err != nil {
		return nil, err
	}
	d := len(values)
	if n >= d {
		return Exact(tr)
	}
	if d > maxDPElements {
		return nil, fmt.Errorf("static: SADO over %d distinct values exceeds the %d-element DP bound", d, maxDPElements)
	}
	table := adCostTable(values, counts)
	cost := func(i, j int) float64 { return float64(table[i*d+j-1]) }
	groups := partitionDP(d, n, cost)
	return bucketsFromGroups(values, counts, groups)
}

// adCostTable returns the packed table t[i*d + j] = Σ_v |f_v − μ| for
// all element ranges [i, j], where v runs over every integer domain
// value in the span [values[i], values[j]] (zeros included, per
// Eq. (5)) and μ is the mean frequency over that span. For each fixed
// left endpoint i the right endpoint j sweeps upward while a Fenwick
// tree over compressed frequency values answers "count and sum of
// frequencies ≤ μ" in O(log D); the zero-frequency values contribute
// μ each.
func adCostTable(values []int, counts []int64) []float32 {
	d := len(counts)
	freqs := make([]float64, d)
	for i, c := range counts {
		freqs[i] = float64(c)
	}
	ranks, sorted := compressRanks(freqs)

	table := make([]float32, d*d)
	bit := newFenwick(len(sorted))
	for i := 0; i < d; i++ {
		bit.reset()
		sum := 0.0
		for j := i; j < d; j++ {
			bit.add(ranks[j], freqs[j])
			sum += freqs[j]
			nonzero := float64(j - i + 1)
			span := float64(values[j] - values[i] + 1)
			mean := sum / span
			// Populated values with frequency ≤ mean: count nLo, sum sLo.
			nLo, sLo := bit.prefix(upperRank(sorted, mean))
			dev := (mean*float64(nLo) - sLo) + ((sum - sLo) - mean*(nonzero-float64(nLo)))
			dev += (span - nonzero) * mean // zero-frequency values
			if dev < 0 {
				dev = 0
			}
			table[i*d+j] = float32(dev)
		}
	}
	return table
}

// compressRanks maps each frequency to its rank among the distinct
// sorted frequencies.
func compressRanks(freqs []float64) (ranks []int, sorted []float64) {
	sorted = append(sorted, freqs...)
	sort.Float64s(sorted)
	sorted = dedupFloat64s(sorted)
	ranks = make([]int, len(freqs))
	for i, f := range freqs {
		ranks[i] = lowerBound(sorted, f)
	}
	return ranks, sorted
}

// upperRank returns the number of distinct sorted frequencies ≤ x.
func upperRank(sorted []float64, x float64) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func lowerBound(sorted []float64, x float64) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func dedupFloat64s(s []float64) []float64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// fenwick is a Fenwick (binary indexed) tree tracking, per frequency
// rank, the count of elements and the sum of their frequencies.
type fenwick struct {
	n     int
	count []int
	sum   []float64
}

func newFenwick(n int) *fenwick {
	return &fenwick{n: n, count: make([]int, n+1), sum: make([]float64, n+1)}
}

func (f *fenwick) reset() {
	for i := range f.count {
		f.count[i] = 0
		f.sum[i] = 0
	}
}

func (f *fenwick) add(rank int, freq float64) {
	for i := rank + 1; i <= f.n; i += i & (-i) {
		f.count[i]++
		f.sum[i] += freq
	}
}

// prefix returns the count and frequency-sum of the first k ranks.
func (f *fenwick) prefix(k int) (int, float64) {
	if k > f.n {
		k = f.n
	}
	n, s := 0, 0.0
	for i := k; i > 0; i -= i & (-i) {
		n += f.count[i]
		s += f.sum[i]
	}
	return n, s
}

// partitionDP computes the optimal partition of d elements into at most
// n contiguous groups under the given segment cost, and returns the
// group index ranges. Standard O(d²·n) histogram DP.
func partitionDP(d, n int, cost func(i, j int) float64) [][2]int {
	if n > d {
		n = d
	}
	const inf = math.MaxFloat64
	// dp[j] = best cost of first j elements with the current number of
	// groups; parent[k][j] = split point.
	prev := make([]float64, d+1)
	cur := make([]float64, d+1)
	parent := make([][]int32, n+1)
	for j := 1; j <= d; j++ {
		prev[j] = cost(0, j)
	}
	parent[1] = make([]int32, d+1)
	for k := 2; k <= n; k++ {
		parent[k] = make([]int32, d+1)
		for j := 0; j <= d; j++ {
			cur[j] = inf
		}
		for j := k; j <= d; j++ {
			best, bestI := inf, k-1
			for i := k - 1; i < j; i++ {
				if prev[i] >= best {
					continue
				}
				c := prev[i] + cost(i, j)
				if c < best {
					best, bestI = c, i
				}
			}
			cur[j] = best
			parent[k][j] = int32(bestI)
		}
		prev, cur = cur, prev
	}
	// Walk back from dp[n][d].
	groups := make([][2]int, 0, n)
	j := d
	for k := n; k >= 1 && j > 0; k-- {
		i := 0
		if k > 1 {
			i = int(parent[k][j])
		}
		groups = append(groups, [2]int{i, j})
		j = i
	}
	// Reverse into left-to-right order.
	for a, b := 0, len(groups)-1; a < b; a, b = a+1, b-1 {
		groups[a], groups[b] = groups[b], groups[a]
	}
	return groups
}
