// Package static implements the static histogram constructors the
// paper evaluates against: Equi-Width and Equi-Depth (the framework
// baselines of Appendix A), the Static Compressed (SC) histogram, the
// Static V-Optimal (SVO) histogram via dynamic programming, the Static
// Average-Deviation Optimal (SADO) histogram the paper introduces, and
// the Successive Similar Bucket Merge (SSBM) histogram of §5, the
// paper's second contribution.
//
// All constructors consume an exact distribution (a *dist.Tracker) and
// return an immutable *histogram.Piecewise. Buckets span [first,
// last+1) of the distinct values they group; value-free space between
// buckets is left as zero-density gaps, which a construction with full
// knowledge of the data can represent exactly.
package static

import (
	"errors"
	"fmt"
	"sort"

	"dynahist/internal/dist"
	"dynahist/internal/histogram"
)

// ErrEmpty is returned when building a histogram over an empty
// distribution.
var ErrEmpty = errors.New("static: empty distribution")

// ErrBuckets is returned for a non-positive bucket budget.
var ErrBuckets = errors.New("static: bucket budget < 1")

// Kind names a static histogram class, in the paper's terminology.
type Kind int

const (
	// KindEquiWidth is Equi-Sum(V,S): equal value ranges per bucket.
	KindEquiWidth Kind = iota
	// KindEquiDepth is Equi-Sum(V,F): equal counts per bucket.
	KindEquiDepth
	// KindCompressed is Compressed(V,F): heavy values in singleton
	// buckets, the rest equi-depth (SC).
	KindCompressed
	// KindVOptimal is V-Optimal(V,F) by exact dynamic programming (SVO).
	KindVOptimal
	// KindSADO is Average-Deviation Optimal(V,F) by exact dynamic
	// programming (SADO, introduced by the paper).
	KindSADO
	// KindSSBM is Successive Similar Bucket Merge (§5).
	KindSSBM
	// KindExact keeps one bucket per distinct value (no compression);
	// it is the loading state every construction starts from.
	KindExact
)

func (k Kind) String() string {
	switch k {
	case KindEquiWidth:
		return "equi-width"
	case KindEquiDepth:
		return "equi-depth"
	case KindCompressed:
		return "compressed"
	case KindVOptimal:
		return "v-optimal"
	case KindSADO:
		return "sado"
	case KindSSBM:
		return "ssbm"
	case KindExact:
		return "exact"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Build constructs a static histogram of the given kind with at most n
// buckets.
func Build(kind Kind, tr *dist.Tracker, n int) (*histogram.Piecewise, error) {
	switch kind {
	case KindEquiWidth:
		return EquiWidth(tr, n)
	case KindEquiDepth:
		return EquiDepth(tr, n)
	case KindCompressed:
		return Compressed(tr, n)
	case KindVOptimal:
		return VOptimal(tr, n)
	case KindSADO:
		return SADO(tr, n)
	case KindSSBM:
		return SSBM(tr, n)
	case KindExact:
		return Exact(tr)
	default:
		return nil, fmt.Errorf("static: unknown kind %d", int(k(kind)))
	}
}

func k(kd Kind) int { return int(kd) }

// BuildMemory constructs a static histogram sized for a byte budget
// using the paper's accounting (one border + one counter per bucket).
func BuildMemory(kind Kind, tr *dist.Tracker, memBytes int) (*histogram.Piecewise, error) {
	n, err := histogram.BucketsForMemory(memBytes, 1)
	if err != nil {
		return nil, err
	}
	return Build(kind, tr, n)
}

// checkInput validates the common constructor arguments and extracts
// the distinct values.
func checkInput(tr *dist.Tracker, n int) (values []int, counts []int64, err error) {
	if n < 1 {
		return nil, nil, ErrBuckets
	}
	if tr == nil || tr.Total() == 0 {
		return nil, nil, ErrEmpty
	}
	values, counts = tr.NonZero()
	return values, counts, nil
}

// Exact returns one bucket per distinct value — the lossless
// representation every other construction compresses.
func Exact(tr *dist.Tracker) (*histogram.Piecewise, error) {
	values, counts, err := checkInput(tr, 1)
	if err != nil {
		return nil, err
	}
	buckets := make([]histogram.Bucket, len(values))
	for i, v := range values {
		buckets[i] = histogram.Bucket{Left: float64(v), Right: float64(v + 1), Subs: []float64{float64(counts[i])}}
	}
	return histogram.NewPiecewise(buckets)
}

// EquiWidth partitions the populated value range into n equal-width
// buckets (Equi-Sum(V,S)).
func EquiWidth(tr *dist.Tracker, n int) (*histogram.Piecewise, error) {
	values, _, err := checkInput(tr, n)
	if err != nil {
		return nil, err
	}
	lo := values[0]
	hi := values[len(values)-1] + 1
	width := float64(hi-lo) / float64(n)
	if width < 1 {
		width = 1
		n = hi - lo // fewer, unit-width buckets
	}
	buckets := make([]histogram.Bucket, 0, n)
	for b := range n {
		l := float64(lo) + float64(b)*width
		r := float64(lo) + float64(b+1)*width
		if b == n-1 {
			r = float64(hi)
		}
		// Exact count of integer values whose [v, v+1) interval starts
		// inside [l, r).
		cnt := int64(0)
		for v := ceilInt(l); float64(v) < r && v <= values[len(values)-1]; v++ {
			cnt += tr.Count(v)
		}
		buckets = append(buckets, histogram.Bucket{Left: l, Right: r, Subs: []float64{float64(cnt)}})
	}
	return histogram.NewPiecewise(buckets)
}

func ceilInt(x float64) int {
	i := int(x)
	if float64(i) < x {
		i++
	}
	return i
}

// EquiDepth groups the distinct values into n buckets of approximately
// equal counts (Equi-Sum(V,F)), closing each bucket as soon as it
// reaches the adaptive target remaining/(buckets left).
func EquiDepth(tr *dist.Tracker, n int) (*histogram.Piecewise, error) {
	values, counts, err := checkInput(tr, n)
	if err != nil {
		return nil, err
	}
	groups := equiDepthGroups(counts, n)
	return bucketsFromGroups(values, counts, groups)
}

// equiDepthGroups returns the [start, end) index ranges of an
// equi-depth grouping of counts into at most n groups.
func equiDepthGroups(counts []int64, n int) [][2]int {
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	var groups [][2]int
	start := 0
	acc := int64(0)
	remaining := total
	for i, c := range counts {
		acc += c
		left := n - len(groups)
		target := float64(remaining) / float64(left)
		if float64(acc) >= target || left == 1 || i == len(counts)-1 {
			groups = append(groups, [2]int{start, i + 1})
			remaining -= acc
			start = i + 1
			acc = 0
			if len(groups) == n {
				break
			}
		}
	}
	if start < len(counts) { // spill anything the break left behind
		groups[len(groups)-1][1] = len(counts)
	}
	return groups
}

// bucketsFromGroups materialises index groups over the distinct values
// as buckets spanning [firstValue, lastValue+1).
func bucketsFromGroups(values []int, counts []int64, groups [][2]int) (*histogram.Piecewise, error) {
	buckets := make([]histogram.Bucket, 0, len(groups))
	for _, g := range groups {
		if g[0] >= g[1] {
			continue
		}
		sum := int64(0)
		for i := g[0]; i < g[1]; i++ {
			sum += counts[i]
		}
		buckets = append(buckets, histogram.Bucket{
			Left:  float64(values[g[0]]),
			Right: float64(values[g[1]-1] + 1),
			Subs:  []float64{float64(sum)},
		})
	}
	return histogram.NewPiecewise(buckets)
}

// Compressed builds the SC histogram: values whose frequency exceeds
// T/n get singleton buckets; the remaining values are grouped
// equi-depth over the remaining budget (Compressed(V,F), §2 and
// Appendix A).
func Compressed(tr *dist.Tracker, n int) (*histogram.Piecewise, error) {
	values, counts, err := checkInput(tr, n)
	if err != nil {
		return nil, err
	}
	total := tr.Total()
	threshold := float64(total) / float64(n)

	var heavies []int // indices into values/counts
	for i, c := range counts {
		if float64(c) > threshold {
			heavies = append(heavies, i)
		}
	}
	// Keep at least one equi-depth bucket if any light values exist;
	// when everything is heavy, the heaviest n values win singletons.
	maxSingles := n
	if len(heavies) < len(values) {
		maxSingles = n - 1
	}
	if len(heavies) > maxSingles {
		// Retain the heaviest ones only.
		sortByCountDesc(heavies, counts)
		heavies = heavies[:maxSingles]
	}
	isHeavy := make(map[int]bool, len(heavies))
	for _, h := range heavies {
		isHeavy[h] = true
	}

	var buckets []histogram.Bucket
	for _, h := range heavies {
		v := values[h]
		buckets = append(buckets, histogram.Bucket{
			Left: float64(v), Right: float64(v + 1),
			Subs: []float64{float64(counts[h])},
		})
	}

	// Equi-depth over the light values, region by region: a bucket
	// cannot span a singleton, so each maximal run of light values is
	// partitioned separately with a budget proportional to its mass.
	var lightValues []int
	var lightCounts []int64
	var runs [][2]int // index ranges into lightValues of maximal runs
	runStart := -1
	for i := range values {
		if isHeavy[i] {
			if runStart >= 0 {
				runs = append(runs, [2]int{runStart, len(lightValues)})
				runStart = -1
			}
			continue
		}
		if runStart < 0 {
			runStart = len(lightValues)
		}
		lightValues = append(lightValues, values[i])
		lightCounts = append(lightCounts, counts[i])
	}
	if runStart >= 0 {
		runs = append(runs, [2]int{runStart, len(lightValues)})
	}
	budget := n - len(heavies)
	if len(runs) > 0 && budget > 0 {
		masses := make([]float64, len(runs))
		var totalLight float64
		for r, run := range runs {
			for i := run[0]; i < run[1]; i++ {
				masses[r] += float64(lightCounts[i])
			}
			totalLight += masses[r]
		}
		perRun := apportionAtLeastOne(masses, totalLight, budget, runs)
		for r, run := range runs {
			sub := lightCounts[run[0]:run[1]]
			groups := equiDepthGroups(sub, perRun[r])
			for _, g := range groups {
				lo, hi := run[0]+g[0], run[0]+g[1]
				if lo >= hi {
					continue
				}
				sum := int64(0)
				for i := lo; i < hi; i++ {
					sum += lightCounts[i]
				}
				buckets = append(buckets, histogram.Bucket{
					Left:  float64(lightValues[lo]),
					Right: float64(lightValues[hi-1] + 1),
					Subs:  []float64{float64(sum)},
				})
			}
		}
	}
	sortBuckets(buckets)
	return histogram.NewPiecewise(buckets)
}

// apportionAtLeastOne distributes budget units over runs proportional
// to mass with a minimum of one per run; if the budget cannot cover one
// per run, later (lighter) runs get folded into a single bucket anyway
// since equiDepthGroups(·, 1) returns one group — so each run receives
// at least one here by capping at the number of runs.
func apportionAtLeastOne(masses []float64, total float64, budget int, runs [][2]int) []int {
	out := make([]int, len(masses))
	for i := range out {
		out[i] = 1
	}
	extra := budget - len(masses)
	if extra <= 0 || total <= 0 {
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(masses))
	given := 0
	for i, m := range masses {
		exact := m / total * float64(extra)
		w := int(exact)
		out[i] += w
		given += w
		rems[i] = rem{i, exact - float64(w)}
	}
	for given < extra {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i].frac > rems[best].frac {
				best = i
			}
		}
		out[rems[best].idx]++
		rems[best].frac = -1
		given++
	}
	return out
}

func sortByCountDesc(heavies []int, counts []int64) {
	sort.Slice(heavies, func(a, b int) bool { return counts[heavies[a]] > counts[heavies[b]] })
}

func sortBuckets(buckets []histogram.Bucket) {
	sort.Slice(buckets, func(a, b int) bool { return buckets[a].Left < buckets[b].Left })
}
