package static

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynahist/internal/dist"
	"dynahist/internal/distgen"
	"dynahist/internal/histogram"
	"dynahist/internal/metric"
)

func trackerFrom(t testing.TB, domain int, values ...int) *dist.Tracker {
	t.Helper()
	tr := dist.New(domain)
	for _, v := range values {
		if err := tr.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func loadTracker(t testing.TB, domain int, values []int) *dist.Tracker {
	t.Helper()
	tr := dist.New(domain)
	for _, v := range values {
		if err := tr.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func allKinds() []Kind {
	return []Kind{KindEquiWidth, KindEquiDepth, KindCompressed, KindVOptimal, KindSADO, KindSSBM, KindExact}
}

func TestBuildErrors(t *testing.T) {
	tr := trackerFrom(t, 10, 1, 2, 3)
	for _, kind := range allKinds() {
		if kind == KindExact {
			continue
		}
		if _, err := Build(kind, tr, 0); err == nil {
			t.Errorf("%v with n=0: want error", kind)
		}
		if _, err := Build(kind, dist.New(10), 3); err == nil {
			t.Errorf("%v with empty tracker: want error", kind)
		}
	}
	if _, err := Build(Kind(99), tr, 3); err == nil {
		t.Error("unknown kind: want error")
	}
}

func TestAllKindsPreserveMass(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	values := make([]int, 5000)
	for i := range values {
		values[i] = rng.Intn(300)
	}
	tr := loadTracker(t, 300, values)
	for _, kind := range allKinds() {
		for _, n := range []int{1, 2, 5, 17, 63} {
			p, err := Build(kind, tr, n)
			if err != nil {
				t.Fatalf("%v n=%d: %v", kind, n, err)
			}
			if math.Abs(p.Total()-5000) > 1e-6 {
				t.Errorf("%v n=%d: mass %v, want 5000", kind, n, p.Total())
			}
			if kind != KindExact && p.NumBuckets() > n {
				t.Errorf("%v n=%d: %d buckets over budget", kind, n, p.NumBuckets())
			}
			if err := histogram.Validate(p.Buckets()); err != nil {
				t.Errorf("%v n=%d: %v", kind, n, err)
			}
		}
	}
}

func TestExactIsLossless(t *testing.T) {
	tr := trackerFrom(t, 50, 3, 3, 17, 17, 17, 42)
	p, err := Exact(tr)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := metric.KS(p.CDF, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 1e-12 {
		t.Errorf("exact histogram KS = %v, want 0", ks)
	}
}

func TestEquiDepthBalance(t *testing.T) {
	// 100 distinct values of equal frequency into 10 buckets: each
	// bucket must hold exactly 10% of the mass.
	var values []int
	for v := range 100 {
		values = append(values, v, v)
	}
	tr := loadTracker(t, 100, values)
	p, err := EquiDepth(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBuckets() != 10 {
		t.Fatalf("got %d buckets, want 10", p.NumBuckets())
	}
	for i, b := range p.Buckets() {
		if math.Abs(b.Count()-20) > 1e-9 {
			t.Errorf("bucket %d count %v, want 20", i, b.Count())
		}
	}
}

func TestEquiWidthRanges(t *testing.T) {
	tr := trackerFrom(t, 100, 0, 10, 20, 30, 39)
	p, err := EquiWidth(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	bs := p.Buckets()
	if len(bs) != 4 {
		t.Fatalf("got %d buckets", len(bs))
	}
	w := bs[0].Width()
	for i, b := range bs {
		if math.Abs(b.Width()-w) > 1e-9 {
			t.Errorf("bucket %d width %v differs from %v", i, b.Width(), w)
		}
	}
	if bs[0].Left != 0 || bs[3].Right != 40 {
		t.Errorf("coverage [%v,%v), want [0,40)", bs[0].Left, bs[3].Right)
	}
}

func TestCompressedSingletons(t *testing.T) {
	// One heavy value among light ones must get a singleton bucket.
	var values []int
	for range 1000 {
		values = append(values, 50)
	}
	for v := range 40 {
		values = append(values, v)
	}
	tr := loadTracker(t, 100, values)
	p, err := Compressed(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range p.Buckets() {
		if b.Left == 50 && b.Right == 51 && math.Abs(b.Count()-1000) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Error("heavy value 50 should sit in a singleton bucket with its exact count")
	}
	// The singleton makes the heavy value's estimate exact.
	if got := p.EstimateRange(50, 50); math.Abs(got-1000) > 1e-9 {
		t.Errorf("estimate(50) = %v, want 1000", got)
	}
}

func TestVOptimalBeatsEquiWidthOnSteps(t *testing.T) {
	// Step distribution: V-Optimal should place borders at the steps
	// and achieve (near-)zero error with 3 buckets.
	var values []int
	for v := 0; v < 10; v++ {
		values = append(values, v) // freq 1
	}
	for v := 10; v < 20; v++ {
		for range 10 {
			values = append(values, v) // freq 10
		}
	}
	for v := 20; v < 30; v++ {
		for range 3 {
			values = append(values, v) // freq 3
		}
	}
	tr := loadTracker(t, 30, values)
	vo, err := VOptimal(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	ksVO, err := metric.KS(vo.CDF, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ksVO > 1e-9 {
		t.Errorf("V-Optimal on 3-step data: KS = %v, want 0", ksVO)
	}
	ew, err := EquiWidth(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	ksEW, err := metric.KS(ew.CDF, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ksVO > ksEW {
		t.Errorf("V-Optimal (%v) worse than Equi-Width (%v)", ksVO, ksEW)
	}
}

func TestSADOMatchesVOOnSteps(t *testing.T) {
	// On clean step data both DPs find the perfect partition (paper:
	// "essentially no difference between the static V-optimal and the
	// static Average-Deviation optimal").
	var values []int
	for v := 0; v < 8; v++ {
		values = append(values, v)
	}
	for v := 8; v < 16; v++ {
		for range 7 {
			values = append(values, v)
		}
	}
	tr := loadTracker(t, 16, values)
	sado, err := SADO(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := metric.KS(sado.CDF, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 1e-9 {
		t.Errorf("SADO on 2-step data: KS = %v, want 0", ks)
	}
}

func TestSSBMStopsAtBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	values := make([]int, 3000)
	for i := range values {
		values[i] = rng.Intn(500)
	}
	tr := loadTracker(t, 500, values)
	for _, n := range []int{1, 7, 31, 100} {
		p, err := SSBM(tr, n)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumBuckets() != n {
			t.Errorf("SSBM(n=%d) = %d buckets", n, p.NumBuckets())
		}
	}
}

func TestSSBMKeepsGapBordersOnClusters(t *testing.T) {
	// Two tight clusters far apart: with 2 buckets, SSBM must not merge
	// across the gap.
	var values []int
	for v := 0; v < 5; v++ {
		for range 10 {
			values = append(values, v, 400+v)
		}
	}
	tr := loadTracker(t, 500, values)
	p, err := SSBM(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	bs := p.Buckets()
	if len(bs) != 2 {
		t.Fatalf("got %d buckets", len(bs))
	}
	if bs[0].Right > 5+1e-9 && bs[0].Right != 5 {
		t.Errorf("first bucket right %v, want 5 (gap preserved)", bs[0].Right)
	}
	if bs[1].Left != 400 {
		t.Errorf("second bucket left %v, want 400", bs[1].Left)
	}
}

func TestSSBMCloseToVOptimal(t *testing.T) {
	// Paper §5/Figs. 9-12: SSBM is comparable in quality to SVO.
	cfg := distgen.Config{Points: 20000, Domain: 2000, Clusters: 50,
		SizeSkew: 1, SpreadSkew: 1, SD: 1, Seed: 11}
	values, err := distgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := loadTracker(t, cfg.Domain, values)
	n := 17
	vo, err := VOptimal(tr, n)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := SSBM(tr, n)
	if err != nil {
		t.Fatal(err)
	}
	ksVO, err := metric.KS(vo.CDF, tr)
	if err != nil {
		t.Fatal(err)
	}
	ksSB, err := metric.KS(sb.CDF, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ksSB > 3*ksVO+0.01 {
		t.Errorf("SSBM KS %v much worse than SVO KS %v", ksSB, ksVO)
	}
}

func TestSADODPBoundError(t *testing.T) {
	tr := dist.New(10000)
	for v := 0; v <= 6500; v++ {
		if err := tr.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := SADO(tr, 10); err == nil {
		t.Error("SADO beyond DP bound: want error")
	}
}

func TestBuildMemorySizing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	values := make([]int, 2000)
	for i := range values {
		values[i] = rng.Intn(400)
	}
	tr := loadTracker(t, 400, values)
	p, err := BuildMemory(KindEquiDepth, tr, 144)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBuckets() > 17 {
		t.Errorf("0.14KB equi-depth: %d buckets, want ≤ 17", p.NumBuckets())
	}
	if _, err := BuildMemory(KindEquiDepth, tr, 2); err == nil {
		t.Error("2 bytes: want error")
	}
}

// Property: every kind yields a monotone CDF ending at 1.
func TestStaticCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64, kindPick uint8) bool {
		kind := allKinds()[int(kindPick)%len(allKinds())]
		rng := rand.New(rand.NewSource(seed))
		tr := dist.New(200)
		for range 500 {
			if tr.Insert(rng.Intn(201)) != nil {
				return false
			}
		}
		p, err := Build(kind, tr, 9)
		if err != nil {
			return false
		}
		prev := 0.0
		for x := -2.0; x <= 203; x += 1.0 {
			c := p.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
				return false
			}
			prev = c
		}
		return math.Abs(prev-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the DP partition is optimal — no exhaustive 2-bucket split
// beats it.
func TestVOptimalDPOptimality(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		tr := dist.New(len(raw))
		for v, c := range raw {
			for range int(c%7) + 1 {
				if tr.Insert(v) != nil {
					return false
				}
			}
		}
		values, counts := tr.NonZero()
		p, err := VOptimal(tr, 2)
		if err != nil {
			return false
		}
		dpCost := sseOfPartition(values, counts, p.Buckets())
		// Exhaustive best 2-way split.
		best := math.Inf(1)
		for cut := 1; cut < len(values); cut++ {
			c := sse(counts[:cut]) + sse(counts[cut:])
			if c < best {
				best = c
			}
		}
		return dpCost <= best+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sse(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var s, s2 float64
	for _, c := range counts {
		f := float64(c)
		s += f
		s2 += f * f
	}
	return s2 - s*s/float64(len(counts))
}

func sseOfPartition(values []int, counts []int64, buckets []histogram.Bucket) float64 {
	total := 0.0
	for _, b := range buckets {
		var group []int64
		for i, v := range values {
			if float64(v) >= b.Left && float64(v) < b.Right {
				group = append(group, counts[i])
			}
		}
		total += sse(group)
	}
	return total
}

// Property: SADO cost table entries equal the brute-force deviation.
func TestADCostTableCorrect(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		counts := make([]int64, len(raw))
		values := make([]int, len(raw))
		for i, c := range raw {
			counts[i] = int64(c) + 1
			values[i] = i * 3 // deliberate gaps: two zero values between elements
		}
		d := len(counts)
		table := adCostTable(values, counts)
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				span := values[j] - values[i] + 1
				mean := 0.0
				for k := i; k <= j; k++ {
					mean += float64(counts[k])
				}
				mean /= float64(span)
				want := 0.0
				for k := i; k <= j; k++ {
					want += math.Abs(float64(counts[k]) - mean)
				}
				want += float64(span-(j-i+1)) * mean // zero-frequency values
				if math.Abs(float64(table[i*d+j])-want) > 1e-3*(1+want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
