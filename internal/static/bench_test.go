package static

import (
	"math/rand"
	"testing"

	"dynahist/internal/dist"
)

func benchTracker(b *testing.B, n, domain int) *dist.Tracker {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tr := dist.New(domain)
	for range n {
		if err := tr.Insert(rng.Intn(domain + 1)); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

func benchKind(b *testing.B, kind Kind) {
	tr := benchTracker(b, 100000, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := Build(kind, tr, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEquiWidth(b *testing.B)  { benchKind(b, KindEquiWidth) }
func BenchmarkEquiDepth(b *testing.B)  { benchKind(b, KindEquiDepth) }
func BenchmarkCompressed(b *testing.B) { benchKind(b, KindCompressed) }
func BenchmarkSSBM(b *testing.B)       { benchKind(b, KindSSBM) }
func BenchmarkVOptimal(b *testing.B)   { benchKind(b, KindVOptimal) }
func BenchmarkSADO(b *testing.B)       { benchKind(b, KindSADO) }
