package dist

import "testing"

func TestInsertCountTotal(t *testing.T) {
	tr := New(10)
	if tr.Domain() != 10 {
		t.Fatalf("Domain = %d, want 10", tr.Domain())
	}
	for v := 0; v <= 10; v++ {
		for range v {
			if err := tr.Insert(v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := tr.Total(), int64(55); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	for v := 0; v <= 10; v++ {
		if got := tr.Count(v); got != int64(v) {
			t.Fatalf("Count(%d) = %d, want %d", v, got, v)
		}
	}
	if tr.Count(-1) != 0 || tr.Count(11) != 0 {
		t.Error("out-of-domain Count not zero")
	}
}

func TestDomainErrors(t *testing.T) {
	tr := New(5)
	if err := tr.Insert(6); err == nil {
		t.Error("insert above domain accepted")
	}
	if err := tr.Insert(-1); err == nil {
		t.Error("negative insert accepted")
	}
	if err := tr.Delete(0); err == nil {
		t.Error("delete of absent value accepted")
	}
	if err := tr.InsertN(1, -2); err == nil {
		t.Error("negative InsertN count accepted")
	}
}

func TestDeleteBalances(t *testing.T) {
	tr := New(3)
	if err := tr.InsertN(2, 4); err != nil {
		t.Fatal(err)
	}
	for range 4 {
		if err := tr.Delete(2); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Total() != 0 {
		t.Fatalf("Total = %d after balanced deletes", tr.Total())
	}
	if err := tr.Delete(2); err == nil {
		t.Error("delete below zero accepted")
	}
}

func TestCumulativeAndRange(t *testing.T) {
	tr := New(4)
	counts := []int64{1, 0, 3, 2, 5}
	for v, c := range counts {
		if err := tr.InsertN(v, c); err != nil {
			t.Fatal(err)
		}
	}
	cum := tr.Cumulative()
	if len(cum) != 5 {
		t.Fatalf("len(Cumulative) = %d, want 5", len(cum))
	}
	want := []int64{1, 1, 4, 6, 11}
	for v := range want {
		if cum[v] != want[v] {
			t.Fatalf("Cumulative[%d] = %d, want %d", v, cum[v], want[v])
		}
	}
	if got := tr.RangeCount(1, 3); got != 5 {
		t.Fatalf("RangeCount(1,3) = %d, want 5", got)
	}
	if got := tr.RangeCount(-10, 100); got != 11 {
		t.Fatalf("clamped RangeCount = %d, want 11", got)
	}
}

func TestNonZero(t *testing.T) {
	tr := New(9)
	for _, v := range []int{3, 3, 7, 9} {
		if err := tr.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	values, counts := tr.NonZero()
	wantV := []int{3, 7, 9}
	wantC := []int64{2, 1, 1}
	if len(values) != len(wantV) {
		t.Fatalf("NonZero values = %v, want %v", values, wantV)
	}
	for i := range wantV {
		if values[i] != wantV[i] || counts[i] != wantC[i] {
			t.Fatalf("NonZero = %v/%v, want %v/%v", values, counts, wantV, wantC)
		}
	}
}

func TestClone(t *testing.T) {
	tr := New(3)
	if err := tr.InsertN(1, 2); err != nil {
		t.Fatal(err)
	}
	c := tr.Clone()
	if err := c.Insert(2); err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 2 || c.Total() != 3 {
		t.Fatalf("clone not independent: %d vs %d", tr.Total(), c.Total())
	}
}

func TestNegativeDomainClamped(t *testing.T) {
	tr := New(-3)
	if tr.Domain() != 0 {
		t.Fatalf("Domain = %d, want 0", tr.Domain())
	}
	if err := tr.Insert(0); err != nil {
		t.Fatal(err)
	}
}
