// Package dist tracks the exact distribution of an integer-valued data
// set over a fixed domain [0, maxV]. It is the ground truth that every
// static construction consumes and every quality metric compares
// against: histograms approximate, the Tracker remembers.
package dist

import (
	"errors"
	"fmt"
)

// ErrDomain is returned when a value falls outside the tracker's
// domain.
var ErrDomain = errors.New("dist: value outside domain")

// ErrAbsent is returned when deleting a value with a zero count.
var ErrAbsent = errors.New("dist: delete of absent value")

// Tracker is an exact frequency table over the integer domain
// [0, Domain()]. The zero value is not usable; construct with New.
type Tracker struct {
	counts []int64
	total  int64
}

// New returns an empty tracker over the domain [0, maxV]. A negative
// maxV is clamped to 0 (a single-value domain).
func New(maxV int) *Tracker {
	if maxV < 0 {
		maxV = 0
	}
	return &Tracker{counts: make([]int64, maxV+1)}
}

// Domain returns the largest representable value maxV.
func (t *Tracker) Domain() int { return len(t.counts) - 1 }

// Total returns the number of points currently tracked.
func (t *Tracker) Total() int64 { return t.total }

// Insert adds one occurrence of v.
func (t *Tracker) Insert(v int) error { return t.InsertN(v, 1) }

// InsertN adds n occurrences of v. n must be non-negative.
func (t *Tracker) InsertN(v int, n int64) error {
	if v < 0 || v >= len(t.counts) {
		return fmt.Errorf("%w: %d not in [0, %d]", ErrDomain, v, t.Domain())
	}
	if n < 0 {
		return fmt.Errorf("dist: negative insert count %d", n)
	}
	t.counts[v] += n
	t.total += n
	return nil
}

// Delete removes one occurrence of v.
func (t *Tracker) Delete(v int) error {
	if v < 0 || v >= len(t.counts) {
		return fmt.Errorf("%w: %d not in [0, %d]", ErrDomain, v, t.Domain())
	}
	if t.counts[v] == 0 {
		return fmt.Errorf("%w: %d", ErrAbsent, v)
	}
	t.counts[v]--
	t.total--
	return nil
}

// Count returns the exact frequency of v (zero outside the domain).
func (t *Tracker) Count(v int) int64 {
	if v < 0 || v >= len(t.counts) {
		return 0
	}
	return t.counts[v]
}

// RangeCount returns the exact number of points with value in the
// closed range [lo, hi]. Out-of-domain portions contribute nothing.
func (t *Tracker) RangeCount(lo, hi int) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi >= len(t.counts) {
		hi = len(t.counts) - 1
	}
	s := int64(0)
	for v := lo; v <= hi; v++ {
		s += t.counts[v]
	}
	return s
}

// Cumulative returns the exact cumulative counts: element v is the
// number of points with value ≤ v. The slice has Domain()+1 elements
// and is freshly allocated on each call.
func (t *Tracker) Cumulative() []int64 {
	cum := make([]int64, len(t.counts))
	run := int64(0)
	for v, c := range t.counts {
		run += c
		cum[v] = run
	}
	return cum
}

// NonZero returns the distinct values with non-zero counts in
// ascending order, alongside their counts.
func (t *Tracker) NonZero() (values []int, counts []int64) {
	for v, c := range t.counts {
		if c != 0 {
			values = append(values, v)
			counts = append(counts, c)
		}
	}
	return values, counts
}

// Clone returns an independent copy of the tracker.
func (t *Tracker) Clone() *Tracker {
	c := &Tracker{counts: make([]int64, len(t.counts)), total: t.total}
	copy(c.counts, t.counts)
	return c
}
