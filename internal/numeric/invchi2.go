package numeric

import "math"

// ChiSquareInvSurvival returns the chi-square value x such that
// ChiSquareSurvival(x, df) = p, i.e. the (1−p) quantile of the
// chi-square distribution with df degrees of freedom.
//
// The DC histogram uses it to turn its αmin significance threshold into
// a plain chi-square threshold once per bucket-count change, so the
// per-insertion trigger test is a single float comparison instead of an
// incomplete-gamma evaluation (paper §3: the test runs on every point).
//
// p = 1 maps to 0 (always trigger) and p = 0 maps to +Inf (never
// trigger), matching the paper's description of the αmin extremes.
func ChiSquareInvSurvival(p float64, df int) (float64, error) {
	if df <= 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return 0, ErrDomain
	}
	if p >= 1 {
		return 0, nil
	}
	if p <= 0 {
		return math.Inf(1), nil
	}
	// Bracket the root: survival is continuous and strictly decreasing.
	lo, hi := 0.0, float64(df)+10
	for {
		q, err := ChiSquareSurvival(hi, df)
		if err != nil {
			return 0, err
		}
		if q <= p {
			break
		}
		hi *= 2
		if hi > 1e12 {
			return hi, nil // p is astronomically small; any practical chi2 is below
		}
	}
	for range 200 {
		mid := (lo + hi) / 2
		q, err := ChiSquareSurvival(mid, df)
		if err != nil {
			return 0, err
		}
		if q > p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-9*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}
