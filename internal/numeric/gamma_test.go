package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestLogGamma(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
		{10, math.Log(362880)},
	}
	for _, c := range cases {
		if got := LogGamma(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("LogGamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x) (exponential CDF).
	for _, x := range []float64{0, 0.1, 0.5, 1, 2, 5, 10} {
		got, err := GammaP(1, x)
		if err != nil {
			t.Fatalf("GammaP(1,%v): %v", x, err)
		}
		want := 1 - math.Exp(-x)
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("GammaP(1,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPHalfIsErf(t *testing.T) {
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.01, 0.25, 1, 2.25, 4, 9} {
		got, err := GammaP(0.5, x)
		if err != nil {
			t.Fatalf("GammaP(0.5,%v): %v", x, err)
		}
		want := math.Erf(math.Sqrt(x))
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("GammaP(0.5,%v) = %v, want erf=%v", x, got, want)
		}
	}
}

func TestGammaPQComplementary(t *testing.T) {
	f := func(a, x float64) bool {
		a = 0.1 + math.Abs(math.Mod(a, 50))
		x = math.Abs(math.Mod(x, 100))
		p, err1 := GammaP(a, x)
		q, err2 := GammaQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(p+q, 1, 1e-9) && p >= 0 && p <= 1+1e-12 && q >= 0 && q <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGammaPMonotoneInX(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2, 5, 20} {
		prev := -1.0
		for x := 0.0; x <= 60; x += 0.5 {
			p, err := GammaP(a, x)
			if err != nil {
				t.Fatalf("GammaP(%v,%v): %v", a, x, err)
			}
			if p < prev-1e-12 {
				t.Fatalf("GammaP(%v,·) not monotone at x=%v: %v < %v", a, x, p, prev)
			}
			prev = p
		}
	}
}

func TestGammaDomainErrors(t *testing.T) {
	cases := []struct{ a, x float64 }{
		{0, 1}, {-1, 1}, {1, -0.5}, {math.NaN(), 1}, {1, math.NaN()},
	}
	for _, c := range cases {
		if _, err := GammaP(c.a, c.x); err == nil {
			t.Errorf("GammaP(%v,%v): want domain error", c.a, c.x)
		}
		if _, err := GammaQ(c.a, c.x); err == nil {
			t.Errorf("GammaQ(%v,%v): want domain error", c.a, c.x)
		}
	}
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// For df=2 the chi-square survival is exp(-x/2).
	for _, x := range []float64{0, 1, 2, 5, 10, 20} {
		got, err := ChiSquareSurvival(x, 2)
		if err != nil {
			t.Fatalf("ChiSquareSurvival(%v,2): %v", x, err)
		}
		want := math.Exp(-x / 2)
		if !almostEqual(got, want, 1e-10) {
			t.Errorf("ChiSquareSurvival(%v,2) = %v, want %v", x, got, want)
		}
	}
	// Median of chi-square with df=1 is ~0.4549.
	got, err := ChiSquareSurvival(0.454936, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.5, 1e-4) {
		t.Errorf("ChiSquareSurvival(median,1) = %v, want 0.5", got)
	}
}

func TestChiSquareSurvivalBounds(t *testing.T) {
	f := func(chi2 float64, df uint8) bool {
		c := math.Abs(math.Mod(chi2, 1000))
		d := int(df%64) + 1
		q, err := ChiSquareSurvival(c, d)
		if err != nil {
			return false
		}
		return q >= 0 && q <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareSurvivalDecreasing(t *testing.T) {
	prev := 2.0
	for x := 0.0; x < 100; x += 1 {
		q, err := ChiSquareSurvival(x, 10)
		if err != nil {
			t.Fatal(err)
		}
		if q > prev+1e-12 {
			t.Fatalf("survival increased at x=%v: %v > %v", x, q, prev)
		}
		prev = q
	}
}

func TestChiSquareSurvivalErrors(t *testing.T) {
	if _, err := ChiSquareSurvival(1, 0); err == nil {
		t.Error("df=0: want error")
	}
	if _, err := ChiSquareSurvival(-1, 3); err == nil {
		t.Error("chi2<0: want error")
	}
	if _, err := ChiSquareSurvival(math.NaN(), 3); err == nil {
		t.Error("NaN: want error")
	}
}

func TestChiSquareExtremeTail(t *testing.T) {
	// Very large chi-square must give a tiny but non-negative survival
	// probability without overflow; this is the regime the DC trigger
	// operates in (αmin = 1e-6).
	q, err := ChiSquareSurvival(500, 10)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0 || q > 1e-60 {
		t.Errorf("ChiSquareSurvival(500,10) = %v, want tiny positive", q)
	}
}
