package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChiSquareInvSurvivalRoundTrip(t *testing.T) {
	for _, df := range []int{1, 2, 5, 20, 126} {
		for _, p := range []float64{1e-9, 1e-6, 1e-3, 0.05, 0.5, 0.95} {
			x, err := ChiSquareInvSurvival(p, df)
			if err != nil {
				t.Fatalf("inv(%v,%d): %v", p, df, err)
			}
			q, err := ChiSquareSurvival(x, df)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(q-p) > 1e-6*(1+p) && math.Abs(q-p) > 1e-9 {
				t.Errorf("df=%d p=%v: survival(inv) = %v", df, p, q)
			}
		}
	}
}

func TestChiSquareInvSurvivalEdges(t *testing.T) {
	x, err := ChiSquareInvSurvival(1, 5)
	if err != nil || x != 0 {
		t.Errorf("p=1: got %v, %v, want 0", x, err)
	}
	x, err = ChiSquareInvSurvival(0, 5)
	if err != nil || !math.IsInf(x, 1) {
		t.Errorf("p=0: got %v, %v, want +Inf", x, err)
	}
	for _, bad := range []struct {
		p  float64
		df int
	}{{-0.1, 5}, {1.1, 5}, {0.5, 0}, {math.NaN(), 5}} {
		if _, err := ChiSquareInvSurvival(bad.p, bad.df); err == nil {
			t.Errorf("inv(%v,%d): want error", bad.p, bad.df)
		}
	}
}

func TestChiSquareInvSurvivalKnownValues(t *testing.T) {
	// Chi-square upper critical values from standard tables.
	cases := []struct {
		p    float64
		df   int
		want float64
	}{
		{0.05, 1, 3.841},
		{0.05, 10, 18.307},
		{0.01, 5, 15.086},
		{0.5, 2, 1.386},
	}
	for _, c := range cases {
		x, err := ChiSquareInvSurvival(c.p, c.df)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(x-c.want) > 0.01 {
			t.Errorf("inv(%v,%d) = %v, want %v", c.p, c.df, x, c.want)
		}
	}
}

// Property: the inverse is decreasing in p.
func TestChiSquareInvSurvivalMonotone(t *testing.T) {
	f := func(df uint8) bool {
		d := int(df%100) + 1
		prev := math.Inf(1)
		for _, p := range []float64{1e-8, 1e-4, 0.01, 0.1, 0.5, 0.9, 0.999} {
			x, err := ChiSquareInvSurvival(p, d)
			if err != nil {
				return false
			}
			if x > prev+1e-6 {
				return false
			}
			prev = x
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
