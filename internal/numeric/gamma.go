// Package numeric provides the special functions needed by the dynamic
// histogram algorithms: the log-gamma function, the regularised
// incomplete gamma functions P and Q, and the chi-square survival
// function used as the repartitioning trigger of the Dynamic Compressed
// histogram (paper §3). The implementations follow the classical series
// and continued-fraction expansions (Numerical Recipes in C, ch. 6),
// which is the reference the paper itself cites for the chi-square
// probability function.
package numeric

import (
	"errors"
	"math"
)

// ErrDomain is returned by functions in this package when an argument is
// outside the mathematical domain of the function.
var ErrDomain = errors.New("numeric: argument out of domain")

// maxIterations bounds the series / continued-fraction loops. The
// expansions converge in a few dozen iterations for all arguments we
// ever pass; hitting the bound indicates a caller bug (NaN propagation).
const maxIterations = 500

// eps is the relative accuracy target of the expansions.
const eps = 3e-14

// fpMin is a tiny number used to prevent division by zero in the Lentz
// continued fraction algorithm.
const fpMin = 1e-300

// LogGamma returns ln Γ(x) for x > 0.
//
// It wraps math.Lgamma and discards the sign, which is always +1 for
// positive arguments.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// GammaP returns the regularised lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x ≥ 0.
func GammaP(a, x float64) (float64, error) {
	if err := checkGammaArgs(a, x); err != nil {
		return 0, err
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		// Series representation converges fastest here.
		return gammaSeries(a, x), nil
	}
	return 1 - gammaContinuedFraction(a, x), nil
}

// GammaQ returns the regularised upper incomplete gamma function
// Q(a, x) = 1 − P(a, x) for a > 0, x ≥ 0.
func GammaQ(a, x float64) (float64, error) {
	if err := checkGammaArgs(a, x); err != nil {
		return 0, err
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x), nil
	}
	return gammaContinuedFraction(a, x), nil
}

func checkGammaArgs(a, x float64) error {
	if math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0 {
		return ErrDomain
	}
	return nil
}

// gammaSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for range maxIterations {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LogGamma(a))
}

// gammaContinuedFraction evaluates Q(a,x) by the modified Lentz
// continued fraction, valid for x ≥ a+1.
func gammaContinuedFraction(a, x float64) float64 {
	b := x + 1 - a
	c := 1 / fpMin
	d := 1 / b
	h := d
	for i := 1; i <= maxIterations; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = b + an/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-LogGamma(a)) * h
}

// ChiSquareSurvival returns the probability that a chi-square
// distributed random variable with df degrees of freedom exceeds chi2,
// i.e. Q(df/2, chi2/2). This is the "Chi-square probability function"
// the DC histogram compares against its αmin threshold: a small survival
// probability means the observed bucket counts are very unlikely under
// the uniform null hypothesis, so the histogram should repartition.
func ChiSquareSurvival(chi2 float64, df int) (float64, error) {
	if df <= 0 || math.IsNaN(chi2) || chi2 < 0 {
		return 0, ErrDomain
	}
	return GammaQ(float64(df)/2, chi2/2)
}
