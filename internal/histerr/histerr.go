// Package histerr defines the sentinel errors shared by every layer of
// the repository. The internal packages wrap these with their own
// context (fmt.Errorf("core: %w: ...", histerr.ErrBudget)), and the
// public dynahist package re-exports them under API names
// (dynahist.ErrBadBudget = histerr.ErrBudget), so a caller can classify
// any failure with errors.Is regardless of which layer produced it.
package histerr

import "errors"

var (
	// ErrEmpty reports an operation that needs at least one summarised
	// point — deleting from or taking a quantile of an empty histogram.
	ErrEmpty = errors.New("histogram is empty")

	// ErrBudget reports an unusable bucket or memory budget: too small
	// to hold a single bucket, negative, or over/under-specified.
	ErrBudget = errors.New("invalid histogram budget")

	// ErrKind reports an unknown or unusable histogram kind.
	ErrKind = errors.New("unknown histogram kind")

	// ErrOption reports a construction option that is invalid or does
	// not apply to the kind being built.
	ErrOption = errors.New("invalid option")

	// ErrSnapshot reports a malformed snapshot or envelope blob.
	ErrSnapshot = errors.New("malformed snapshot")

	// ErrWALCorrupt reports a corrupt, torn or otherwise unreadable
	// write-ahead-log record or segment. Replay treats it as the end of
	// the readable prefix, never as a fatal condition.
	ErrWALCorrupt = errors.New("write-ahead log corrupt")
)
