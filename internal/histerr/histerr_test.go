package histerr

import (
	"errors"
	"fmt"
	"testing"
)

// sentinels lists every shared error identity, by the name callers
// classify on.
var sentinels = map[string]error{
	"ErrEmpty":      ErrEmpty,
	"ErrBudget":     ErrBudget,
	"ErrKind":       ErrKind,
	"ErrOption":     ErrOption,
	"ErrSnapshot":   ErrSnapshot,
	"ErrWALCorrupt": ErrWALCorrupt,
}

// TestClassificationMatrix pins the whole point of the package: a
// sentinel wrapped with layer context (the way internal packages
// produce errors) classifies as itself and as nothing else, so
// errors.Is dispatch can never confuse failure categories.
func TestClassificationMatrix(t *testing.T) {
	for wrapName, wrapErr := range sentinels {
		wrapped := fmt.Errorf("core: %w: extra context", wrapErr)
		for isName, isErr := range sentinels {
			got := errors.Is(wrapped, isErr)
			want := wrapName == isName
			if got != want {
				t.Errorf("errors.Is(wrapped %s, %s) = %v, want %v", wrapName, isName, got, want)
			}
		}
	}
}

// TestDoubleWrapStillClassifies pins multi-layer wrapping: an error
// that crossed two layers (internal package, then serving layer) still
// classifies at the top.
func TestDoubleWrapStillClassifies(t *testing.T) {
	inner := fmt.Errorf("core: %w: bucket 3", ErrSnapshot)
	outer := fmt.Errorf("server: catalog entry %q: %w", "lat", inner)
	if !errors.Is(outer, ErrSnapshot) {
		t.Fatalf("double-wrapped error %v lost its ErrSnapshot identity", outer)
	}
	if errors.Is(outer, ErrBudget) {
		t.Fatalf("double-wrapped error %v gained a foreign identity", outer)
	}
}

// TestMessagesDistinct pins that the sentinel messages stay distinct —
// log lines must say which category fired without a stack trace.
func TestMessagesDistinct(t *testing.T) {
	seen := map[string]string{}
	for name, err := range sentinels {
		msg := err.Error()
		if msg == "" {
			t.Errorf("%s has an empty message", name)
		}
		if prev, dup := seen[msg]; dup {
			t.Errorf("%s and %s share the message %q", name, prev, msg)
		}
		seen[msg] = name
	}
}
