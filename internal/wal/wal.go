// Package wal implements histserved's segmented write-ahead log: the
// durability layer that lets ingest be acknowledged the moment a batch
// is appended (and, per policy, fsynced), with the expensive fold into
// the histograms happening asynchronously. Records are length-prefixed
// and CRC-framed; payloads reuse internal/wire's batch codec, so an
// ingest request's binary body is logged byte-for-byte.
//
// Segment file layout (all integers little-endian):
//
//	u32  magic 0x48574C31 ("HWL1")
//	u16  version (1)
//	u64  first LSN of the segment
//	then records, each:
//	u32  payload length
//	u32  CRC-32 (IEEE) of the payload
//	     payload bytes
//
// A record's payload is
//
//	u8   op (OpInsert, OpDelete, OpCreate, OpDrop)
//	u16  name length, then name bytes
//	     body: a wire batch for OpInsert/OpDelete, the create request
//	     JSON for OpCreate, empty for OpDrop
//
// LSNs are implicit: a segment's n-th record has LSN firstLSN+n. The
// log rolls to a new segment when the active one passes SegmentBytes,
// always starts a fresh segment on Open (so recovery never appends
// after a possibly-torn tail), and truncates fully-digested sealed
// segments when Checkpoint records the position a catalog snapshot
// covers. Replay verifies every CRC and treats the first bad frame of
// a segment as its end — a torn tail is skipped with a logged offset,
// never a panic and never an error that blocks the records before it.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynahist/internal/binenc"
	"dynahist/internal/fsfault"
	"dynahist/internal/histerr"
)

const (
	segMagic   = 0x48574C31 // "HWL1"
	segVersion = 1

	// SegmentExt is the segment file suffix; the stem is the 20-digit
	// zero-padded first LSN, so lexical order is LSN order.
	SegmentExt = ".wal"

	// posFile records the checkpoint LSN (the position the last catalog
	// snapshot covers); replay starts after it.
	posFile = "wal.pos"

	posMagic = 0x48504F53 // "HPOS"

	segHeaderSize   = 14
	frameHeaderSize = 8

	// maxRecordBytes bounds a replayed payload length; anything larger
	// is treated as corruption rather than allocated.
	maxRecordBytes = 1 << 28
)

// Record operations.
const (
	// OpInsert's body is a wire batch of values to insert.
	OpInsert byte = 1
	// OpDelete's body is a wire batch of values to delete.
	OpDelete byte = 2
	// OpCreate's body is the JSON wire.CreateRequest that registered
	// the histogram.
	OpCreate byte = 3
	// OpDrop has no body; the named histogram was deleted.
	OpDrop byte = 4
)

// ErrCorrupt reports a corrupt, torn or unreadable record or segment.
// It is histerr.ErrWALCorrupt, so errors.Is classification works
// across layers per the internal/histerr convention.
var ErrCorrupt = histerr.ErrWALCorrupt

// maxNameLen mirrors the server's histogram-name bound.
const maxNameLen = 128

// Record is one logged operation.
type Record struct {
	// LSN is the record's log sequence number (1-based, monotonic).
	LSN uint64
	// Op is one of the Op constants.
	Op byte
	// Name is the histogram the operation targets.
	Name string
	// Payload is the op-specific body. During replay it aliases the
	// segment read buffer: copy it before retaining.
	Payload []byte
}

// SyncPolicy says when Append makes records durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every append acknowledges — no acked
	// record is ever lost to a crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.SyncEvery);
	// a crash can lose up to one interval of acked records.
	SyncInterval
	// SyncNone never fsyncs explicitly; durability is whatever the OS
	// page cache provides. (Process kills still lose nothing — the
	// page cache survives them — only machine crashes lose data.)
	SyncNone
)

// String returns the flag spelling of p.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return SyncAlways, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
	}
}

// Options parameterise Open.
type Options struct {
	// Dir holds the segments and the position file; created if absent.
	Dir string
	// FS is the filesystem to run on; nil means the real one. Tests
	// inject faults through an fsfault.Injector here.
	FS fsfault.FS
	// SegmentBytes is the rotation threshold; zero defaults to 4 MiB.
	SegmentBytes int64
	// Sync is the durability policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval flush period; zero defaults to
	// 100ms.
	SyncEvery time.Duration
	// Logger receives replay-corruption and rotation diagnostics; nil
	// discards them.
	Logger *log.Logger
}

// Status is a point-in-time description of the log, served by
// /v1/wal/status.
type Status struct {
	Dir           string
	SyncPolicy    string
	AppendedLSN   uint64
	DigestedLSN   uint64
	CheckpointLSN uint64
	// Segments counts segment files on disk, the active one included.
	Segments int
	// ActiveSegmentBytes is the size of the segment being appended to.
	ActiveSegmentBytes int64
	// TotalBytes sums every segment file.
	TotalBytes int64
}

type segmentInfo struct {
	name     string // base name
	firstLSN uint64
	size     int64
}

// Log is a segmented write-ahead log. Append/MarkDigested/Checkpoint
// are safe for concurrent use; Replay is meant for recovery, before
// concurrent appends start.
type Log struct {
	dir  string
	fs   fsfault.FS
	opts Options
	logf *log.Logger

	mu         sync.Mutex
	segs       []segmentInfo // sorted by firstLSN; last entry is active
	active     fsfault.File
	activeSize int64
	dirty      bool // unsynced bytes in active (SyncInterval bookkeeping)
	lastLSN    uint64
	checkpoint uint64
	torn       bool // active tail is torn; rotate before the next append
	closed     bool
	buf        []byte // frame scratch, reused across appends

	digested atomic.Uint64

	// Observability counters: successful segment-file fsyncs and segment
	// rotations, exposed through Fsyncs/Rotations for the metrics plane.
	fsyncs    atomic.Uint64
	rotations atomic.Uint64

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open scans dir for existing segments, determines the last LSN ever
// appended, and starts a fresh active segment after it (recovery never
// appends into a segment with a possibly-torn tail). The existing
// records stay replayable via Replay until Checkpoint truncates them.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: no directory configured")
	}
	l := &Log{
		dir:  opts.Dir,
		fs:   opts.FS,
		opts: opts,
		logf: opts.Logger,
	}
	if l.fs == nil {
		l.fs = fsfault.OS{}
	}
	if l.logf == nil {
		l.logf = log.New(io.Discard, "", 0)
	}
	if l.opts.SegmentBytes <= 0 {
		l.opts.SegmentBytes = 4 << 20
	}
	if l.opts.SyncEvery <= 0 {
		l.opts.SyncEvery = 100 * time.Millisecond
	}
	if err := l.fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: dir: %w", err)
	}
	l.checkpoint = l.readPos()
	l.digested.Store(l.checkpoint)
	if err := l.scanSegments(); err != nil {
		return nil, err
	}
	if err := l.openSegment(l.lastLSN + 1); err != nil {
		return nil, fmt.Errorf("wal: opening active segment: %w", err)
	}
	if l.opts.Sync == SyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// readPos loads the checkpoint position; a missing or corrupt file
// means replay-from-zero (fail-soft, logged).
func (l *Log) readPos() uint64 {
	data, err := l.fs.ReadFile(filepath.Join(l.dir, posFile))
	if err != nil {
		return 0
	}
	if len(data) != 16 || binary.LittleEndian.Uint32(data) != posMagic {
		l.logf.Printf("wal: %s malformed, replaying from the beginning", posFile)
		return 0
	}
	lsn := binary.LittleEndian.Uint64(data[4:])
	if crc := binary.LittleEndian.Uint32(data[12:]); crc != crc32.ChecksumIEEE(data[:12]) {
		l.logf.Printf("wal: %s CRC mismatch, replaying from the beginning", posFile)
		return 0
	}
	return lsn
}

// scanSegments lists dir, sweeps stale temp files, and derives lastLSN
// from the newest segment's valid-record count.
func (l *Log) scanSegments() error {
	des, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: listing %s: %w", l.dir, err)
	}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.Contains(name, ".tmp") {
			if err := l.fs.Remove(filepath.Join(l.dir, name)); err != nil {
				l.logf.Printf("wal: removing stale temp %s: %v", name, err)
			}
			continue
		}
		if !strings.HasSuffix(name, SegmentExt) {
			continue
		}
		first, perr := strconv.ParseUint(strings.TrimSuffix(name, SegmentExt), 10, 64)
		if perr != nil || first == 0 {
			l.logf.Printf("wal: ignoring unparseable segment name %s", name)
			continue
		}
		info, ierr := de.Info()
		size := int64(0)
		if ierr == nil {
			size = info.Size()
		}
		l.segs = append(l.segs, segmentInfo{name: name, firstLSN: first, size: size})
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].firstLSN < l.segs[j].firstLSN })
	l.lastLSN = l.checkpoint
	if n := len(l.segs); n > 0 {
		last := l.segs[n-1]
		count, _ := l.countRecords(last)
		if end := last.firstLSN - 1 + count; end > l.lastLSN {
			l.lastLSN = end
		}
		if last.firstLSN-1 > l.lastLSN {
			// Empty or unreadable newest segment: its name still proves
			// every earlier LSN was handed out.
			l.lastLSN = last.firstLSN - 1
		}
	}
	return nil
}

// countRecords walks one segment's frames, stopping at the first bad
// one, and returns how many valid records it holds.
func (l *Log) countRecords(seg segmentInfo) (uint64, error) {
	data, err := l.fs.ReadFile(filepath.Join(l.dir, seg.name))
	if err != nil {
		return 0, err
	}
	n := uint64(0)
	walkSegment(data, seg.firstLSN, func(Record) error { n++; return nil }, func(off int, why error) {
		l.logf.Printf("wal: %s: scan stopped at offset %d: %v", seg.name, off, why)
	})
	return n, nil
}

// segName returns the base file name of the segment starting at lsn.
func segName(lsn uint64) string {
	return fmt.Sprintf("%020d%s", lsn, SegmentExt)
}

// openSegment creates and headers a fresh active segment whose first
// record will be firstLSN. Callers hold no lock during Open; Append
// holds l.mu.
func (l *Log) openSegment(firstLSN uint64) error {
	name := segName(firstLSN)
	f, err := l.fs.Create(filepath.Join(l.dir, name))
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, segHeaderSize)
	hdr = binary.LittleEndian.AppendUint32(hdr, segMagic)
	hdr = binary.LittleEndian.AppendUint16(hdr, segVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, firstLSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if l.opts.Sync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		l.fsyncs.Add(1)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		l.logf.Printf("wal: dir sync: %v", err)
	}
	l.active = f
	l.activeSize = segHeaderSize
	l.torn = false
	l.dirty = false
	// A predecessor with the same first LSN holds no complete record
	// (empty, or fully torn) — Create just truncated its file, so
	// replace its entry rather than tracking one file twice. A
	// duplicate entry would make Replay walk the file twice and could
	// let Checkpoint remove the active segment's own file.
	if n := len(l.segs); n > 0 && l.segs[n-1].firstLSN == firstLSN {
		l.segs = l.segs[:n-1]
	}
	l.segs = append(l.segs, segmentInfo{name: name, firstLSN: firstLSN, size: segHeaderSize})
	return nil
}

// rotate seals the active segment and opens the next one. Callers hold
// l.mu.
func (l *Log) rotate() error {
	if l.active != nil {
		if l.opts.Sync != SyncNone && !l.torn {
			if err := l.active.Sync(); err != nil {
				l.logf.Printf("wal: seal sync: %v", err)
			} else {
				l.fsyncs.Add(1)
			}
		}
		if err := l.active.Close(); err != nil {
			l.logf.Printf("wal: seal close: %v", err)
		}
		l.active = nil
		if n := len(l.segs); n > 0 {
			l.segs[n-1].size = l.activeSize
		}
	}
	if err := l.openSegment(l.lastLSN + 1); err != nil {
		return err
	}
	l.rotations.Add(1)
	return nil
}

// EncodePayload builds a record payload from its parts. For
// OpInsert/OpDelete, body is the wire batch encoding of the values —
// an ingest request's binary body can be logged without re-encoding.
func EncodePayload(dst []byte, op byte, name string, body []byte) []byte {
	dst = append(dst, op)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(name)))
	dst = append(dst, name...)
	return append(dst, body...)
}

// decodePayload splits a CRC-valid payload back into its parts.
func decodePayload(data []byte) (op byte, name string, body []byte, err error) {
	r := binenc.Reader{Data: data, Err: ErrCorrupt}
	if op, err = r.U8(); err != nil {
		return 0, "", nil, err
	}
	nameLen, err := r.U16()
	if err != nil {
		return 0, "", nil, err
	}
	if int(nameLen) > maxNameLen {
		return 0, "", nil, fmt.Errorf("%w: record name length %d", ErrCorrupt, nameLen)
	}
	nameBytes, err := r.Bytes(int(nameLen))
	if err != nil {
		return 0, "", nil, err
	}
	return op, string(nameBytes), data[r.Pos:], nil
}

// Append frames one record, writes it to the active segment and (per
// policy) fsyncs before returning its LSN — the moment Append returns
// nil the record is safe to acknowledge. A write or sync failure
// returns an error wrapping ErrCorrupt (the active tail may be torn);
// the log stays replayable up to the last good record, and the next
// Append seals the damaged segment and starts a fresh one. A rotation
// failure (e.g. disk full while creating the next segment) surfaces
// the underlying error — fsfault.ErrNoSpace stays classifiable — and
// leaves the log untouched.
func (l *Log) Append(op byte, name string, body []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: append on closed log")
	}
	// active can be nil after a failed rotation (the old segment is
	// sealed, the new one never opened); retrying the rotation is what
	// heals it.
	if l.torn || l.active == nil || l.activeSize >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			if l.torn {
				return 0, fmt.Errorf("wal: rotating away from torn segment: %w: %w", ErrCorrupt, err)
			}
			return 0, fmt.Errorf("wal: rotating segment: %w", err)
		}
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	l.buf = EncodePayload(l.buf, op, name, body)
	payload := l.buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(l.buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:], crc32.ChecksumIEEE(payload))
	n, err := l.active.Write(l.buf)
	l.activeSize += int64(n)
	if err != nil || n < len(l.buf) {
		// A zero-progress write leaves the tail clean; any partial
		// frame tears it, and the next append must roll past.
		l.torn = n > 0
		if err == nil {
			err = io.ErrShortWrite
		}
		return 0, fmt.Errorf("wal: append: %w: %w", ErrCorrupt, err)
	}
	l.dirty = true
	if l.opts.Sync == SyncAlways {
		if err := l.active.Sync(); err != nil {
			// The frame is fully written but its durability is unknown:
			// it may replay after a crash even though it was never acked
			// (at-least-once past the ack boundary). Burn its LSN so no
			// later append can collide with the on-disk frame, and treat
			// the segment as damaged so the next append rolls past it.
			l.lastLSN++
			l.torn = true
			return 0, fmt.Errorf("wal: sync: %w: %w", ErrCorrupt, err)
		}
		l.fsyncs.Add(1)
		l.dirty = false
	}
	l.lastLSN++
	if n := len(l.segs); n > 0 {
		l.segs[n-1].size = l.activeSize
	}
	return l.lastLSN, nil
}

// flushLoop is the SyncInterval background fsync.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && l.active != nil && !l.torn {
				if err := l.active.Sync(); err != nil {
					l.logf.Printf("wal: interval sync: %v", err)
				} else {
					l.fsyncs.Add(1)
					l.dirty = false
				}
			}
			l.mu.Unlock()
		}
	}
}

// MarkDigested records that every record up to lsn has been folded
// into the in-memory histograms. It only ever advances.
func (l *Log) MarkDigested(lsn uint64) {
	for {
		cur := l.digested.Load()
		if lsn <= cur || l.digested.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// DigestedLSN returns the newest digested position.
func (l *Log) DigestedLSN() uint64 { return l.digested.Load() }

// Fsyncs returns how many segment-file fsyncs have succeeded since the
// log was opened (appends under SyncAlways, interval flushes, segment
// seals and the close sync).
func (l *Log) Fsyncs() uint64 { return l.fsyncs.Load() }

// Rotations returns how many times the log sealed a segment and opened
// the next one since it was opened.
func (l *Log) Rotations() uint64 { return l.rotations.Load() }

// LastLSN returns the newest appended position.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// Checkpoint durably records that a catalog snapshot covers every
// record up to lsn (write-temp, fsync, rename — like the catalog
// itself) and then removes sealed segments that hold no later record.
// After a crash, replay resumes right after lsn.
func (l *Log) Checkpoint(lsn uint64) error {
	pos := make([]byte, 0, 16)
	pos = binary.LittleEndian.AppendUint32(pos, posMagic)
	pos = binary.LittleEndian.AppendUint64(pos, lsn)
	pos = binary.LittleEndian.AppendUint32(pos, crc32.ChecksumIEEE(pos))
	tmpPath := filepath.Join(l.dir, posFile+".tmp")
	f, err := l.fs.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := f.Write(pos); err != nil {
		f.Close()
		l.removeQuiet(tmpPath)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		l.removeQuiet(tmpPath)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		l.removeQuiet(tmpPath)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := l.fs.Rename(tmpPath, filepath.Join(l.dir, posFile)); err != nil {
		l.removeQuiet(tmpPath)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		l.logf.Printf("wal: dir sync: %v", err)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.checkpoint {
		l.checkpoint = lsn
	}
	// A sealed segment is fully covered when its successor starts at or
	// before lsn+1; the active (last) segment is never removed.
	var firstErr error
	kept := l.segs[:0]
	for i, seg := range l.segs {
		if i+1 < len(l.segs) && l.segs[i+1].firstLSN <= lsn+1 {
			if err := l.fs.Remove(filepath.Join(l.dir, seg.name)); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("wal: truncate %s: %w", seg.name, err)
				}
				kept = append(kept, seg)
				continue
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return firstErr
}

// CheckpointLSN returns the position the last checkpoint recorded.
func (l *Log) CheckpointLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpoint
}

// Status reports the log's current shape.
func (l *Log) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Status{
		Dir:           l.dir,
		SyncPolicy:    l.opts.Sync.String(),
		AppendedLSN:   l.lastLSN,
		DigestedLSN:   l.digested.Load(),
		CheckpointLSN: l.checkpoint,
		Segments:      len(l.segs),
	}
	for i, seg := range l.segs {
		size := seg.size
		if i == len(l.segs)-1 {
			size = l.activeSize
			st.ActiveSegmentBytes = l.activeSize
		}
		st.TotalBytes += size
	}
	return st
}

// Close seals the active segment. It does not checkpoint — that is the
// server's job, after the digester drains.
func (l *Log) Close() error {
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	var firstErr error
	if l.opts.Sync != SyncNone && !l.torn {
		if err := l.active.Sync(); err != nil {
			firstErr = fmt.Errorf("wal: close sync: %w", err)
		} else {
			l.fsyncs.Add(1)
		}
	}
	if err := l.active.Close(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("wal: close: %w", err)
	}
	l.active = nil
	return firstErr
}

func (l *Log) removeQuiet(path string) {
	if err := l.fs.Remove(path); err != nil {
		l.logf.Printf("wal: removing %s: %v", path, err)
	}
}

// ReplayStats summarises one Replay pass.
type ReplayStats struct {
	// Records is how many records fn was called with.
	Records int
	// Skipped is how many records replay passed over because their LSN
	// was at or below the replay start position.
	Skipped int
	// CorruptSegments counts segments whose scan stopped early at a
	// bad frame (torn tail, CRC mismatch, implausible length).
	CorruptSegments int
}

// Replay walks every segment in LSN order and calls fn for each
// CRC-valid record with LSN > after. Corruption ends the affected
// segment's scan (logged with its byte offset) and replay continues
// with the next segment; a torn final record after a crash is the
// normal case, not an error. Replay never panics on arbitrary segment
// bytes. An fn error aborts and is returned.
func (l *Log) Replay(after uint64, fn func(Record) error) (ReplayStats, error) {
	l.mu.Lock()
	segs := make([]segmentInfo, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()
	var st ReplayStats
	for _, seg := range segs {
		data, err := l.fs.ReadFile(filepath.Join(l.dir, seg.name))
		if err != nil {
			l.logf.Printf("wal: replay: reading %s: %v", seg.name, err)
			st.CorruptSegments++
			continue
		}
		corrupt := false
		err = walkSegment(data, seg.firstLSN, func(rec Record) error {
			if rec.LSN <= after {
				st.Skipped++
				return nil
			}
			st.Records++
			return fn(rec)
		}, func(off int, why error) {
			l.logf.Printf("wal: replay: %s: stopped at offset %d: %v", seg.name, off, why)
			corrupt = true
		})
		if corrupt {
			st.CorruptSegments++
		}
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// walkSegment iterates a segment image's valid record prefix, calling
// fn per record. The first framing problem stops the walk and is
// reported to bad with its byte offset; fn errors abort the walk and
// are returned. It tolerates arbitrary input without panicking.
func walkSegment(data []byte, wantFirstLSN uint64, fn func(Record) error, bad func(off int, why error)) error {
	if len(data) < segHeaderSize {
		bad(0, fmt.Errorf("%w: segment shorter than header", ErrCorrupt))
		return nil
	}
	if magic := binary.LittleEndian.Uint32(data); magic != segMagic {
		bad(0, fmt.Errorf("%w: bad segment magic %#x", ErrCorrupt, magic))
		return nil
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != segVersion {
		bad(4, fmt.Errorf("%w: unsupported segment version %d", ErrCorrupt, v))
		return nil
	}
	firstLSN := binary.LittleEndian.Uint64(data[6:])
	if wantFirstLSN != 0 && firstLSN != wantFirstLSN {
		bad(6, fmt.Errorf("%w: header says first LSN %d, file name says %d", ErrCorrupt, firstLSN, wantFirstLSN))
		return nil
	}
	off := segHeaderSize
	lsn := firstLSN
	for off < len(data) {
		if len(data)-off < frameHeaderSize {
			bad(off, fmt.Errorf("%w: truncated frame header", ErrCorrupt))
			return nil
		}
		plen := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen > maxRecordBytes {
			bad(off, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, plen))
			return nil
		}
		if uint64(len(data)-off-frameHeaderSize) < uint64(plen) {
			bad(off, fmt.Errorf("%w: torn record (%d payload bytes, %d available)",
				ErrCorrupt, plen, len(data)-off-frameHeaderSize))
			return nil
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int(plen)]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			bad(off, fmt.Errorf("%w: CRC mismatch (stored %#x, computed %#x)", ErrCorrupt, crc, got))
			return nil
		}
		op, name, body, err := decodePayload(payload)
		if err != nil {
			bad(off, err)
			return nil
		}
		if err := fn(Record{LSN: lsn, Op: op, Name: name, Payload: body}); err != nil {
			return err
		}
		lsn++
		off += frameHeaderSize + int(plen)
	}
	return nil
}
