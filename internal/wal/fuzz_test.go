package wal

import (
	"os"
	"path/filepath"
	"testing"

	"dynahist/internal/wire"
)

// fuzzSeedSegment builds a real segment image (header + a few framed
// records) for the seed corpus.
func fuzzSeedSegment(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	l := openLog(f, dir, nil)
	b, err := wire.EncodeBatch([]float64{1, 2, 3, 4})
	if err != nil {
		f.Fatal(err)
	}
	ops := []struct {
		op   byte
		name string
		body []byte
	}{
		{OpCreate, "fz", []byte(`{"name":"fz","family":"dvo"}`)},
		{OpInsert, "fz", b},
		{OpDelete, "fz", b},
		{OpDrop, "fz", nil},
	}
	for _, o := range ops {
		if _, err := l.Append(o.op, o.name, o.body); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzWALReplay is the recovery fuzzer: a segment file holding
// arbitrary bytes — truncated tails, flipped bits, hostile lengths,
// pure garbage — must never panic Open or Replay. Corrupt tails are
// detected via CRC/framing and skipped; whatever records do come out
// must be well-formed (bounded names, intact payload slices).
func FuzzWALReplay(f *testing.F) {
	seg := fuzzSeedSegment(f)
	f.Add(seg)
	f.Add(seg[:len(seg)/2])
	f.Add(seg[:len(seg)-3])
	for _, off := range []int{0, 5, 9, segHeaderSize, segHeaderSize + 2, len(seg) - 1} {
		flipped := append([]byte(nil), seg...)
		flipped[off] ^= 0x20
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("HWL1"))
	f.Add(make([]byte, segHeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Open scans (and counts) the hostile segment; Replay walks it.
		// Neither may panic, whatever the bytes.
		l, err := Open(Options{Dir: dir, Sync: SyncNone})
		if err != nil {
			return
		}
		defer l.Close()
		var lastLSN uint64
		_, err = l.Replay(0, func(rec Record) error {
			if rec.LSN == 0 || (lastLSN != 0 && rec.LSN <= lastLSN) {
				t.Fatalf("replay emitted non-monotonic LSN %d after %d", rec.LSN, lastLSN)
			}
			lastLSN = rec.LSN
			if len(rec.Name) > maxNameLen {
				t.Fatalf("replay emitted oversized name (%d bytes)", len(rec.Name))
			}
			if len(rec.Payload) > maxRecordBytes {
				t.Fatalf("replay emitted oversized payload (%d bytes)", len(rec.Payload))
			}
			// Touch the payload: a mis-sliced record would fault here
			// under the race/asan builders.
			for _, b := range rec.Payload {
				_ = b
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Replay returned %v for a nil-error callback", err)
		}
		// The accepted-record count feeds LSN continuation; appending
		// after hostile input must still work and stay monotonic.
		lsn, err := l.Append(OpInsert, "h", []byte{1})
		if err != nil {
			t.Fatalf("Append after hostile replay: %v", err)
		}
		if lsn <= lastLSN {
			t.Fatalf("post-replay append LSN %d not past replayed %d", lsn, lastLSN)
		}
	})
}
