package wal

// Disk-fault tests: the write-ahead log driven over internal/fsfault's
// Injector, proving the behaviours a real broken disk demands — short
// writes tear the tail but never the acked prefix, ENOSPC during
// rotation surfaces classifiably and harmlessly, failed fsyncs refuse
// the ack — all without a real broken disk.

import (
	"errors"
	"testing"

	"dynahist/internal/fsfault"
	"dynahist/internal/histerr"
)

// TestShortWriteTearsTailOnly arms a byte budget so an append's frame
// write lands partially (a torn record). The append must fail with an
// error classifiable as both ErrCorrupt and the injected cause, every
// previously acked record must still replay, and once the fault clears
// the log must seal the damaged segment and keep going.
func TestShortWriteTearsTailOnly(t *testing.T) {
	dir := t.TempDir()
	inj := fsfault.NewInjector(nil)
	l := openLog(t, dir, func(o *Options) {
		o.FS = inj
		o.Sync = SyncAlways
	})
	defer l.Close()

	var acked []uint64
	for i := 1; i <= 3; i++ {
		lsn, err := l.Append(OpInsert, "h", batch(t, float64(i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		acked = append(acked, lsn)
	}

	// Allow 5 more bytes: the next frame is written partially.
	inj.LimitWrites(5, nil)
	_, err := l.Append(OpInsert, "h", batch(t, 99))
	if err == nil {
		t.Fatal("short-written append returned nil")
	}
	if !errors.Is(err, ErrCorrupt) || !errors.Is(err, histerr.ErrWALCorrupt) {
		t.Fatalf("short-write error %v is not classifiable as ErrCorrupt", err)
	}
	if !errors.Is(err, fsfault.ErrNoSpace) {
		t.Fatalf("short-write error %v lost the underlying cause", err)
	}
	if got := l.LastLSN(); got != 3 {
		t.Fatalf("LastLSN after failed append = %d, want 3 (no phantom ack)", got)
	}

	// The log stays replayable to the last good record: the torn frame
	// ends its segment's scan, the acked records all survive.
	recs, st := collect(t, l, 0)
	if len(recs) != len(acked) {
		t.Fatalf("replayed %d records, want the %d acked ones", len(recs), len(acked))
	}
	if st.CorruptSegments != 1 {
		t.Fatalf("CorruptSegments = %d, want 1 (the torn tail)", st.CorruptSegments)
	}

	// Fault cleared: the next append rotates away from the torn segment
	// and continues the LSN sequence.
	inj.Reset()
	lsn, err := l.Append(OpInsert, "h", batch(t, 4))
	if err != nil || lsn != 4 {
		t.Fatalf("append after fault cleared = %d, %v; want LSN 4", lsn, err)
	}
	recs, _ = collect(t, l, 0)
	if len(recs) != 4 || recs[3].LSN != 4 {
		t.Fatalf("replay after recovery = %d records, want 4", len(recs))
	}
}

// TestRotationNoSpace fails segment creation (disk full while rotating)
// and checks the error stays classifiable, nothing acked is lost, and
// the log resumes once space returns.
func TestRotationNoSpace(t *testing.T) {
	dir := t.TempDir()
	inj := fsfault.NewInjector(nil)
	// One record per segment, so every append needs a rotation.
	l := openLog(t, dir, func(o *Options) {
		o.FS = inj
		o.SegmentBytes = 1
	})
	defer l.Close()
	if _, err := l.Append(OpInsert, "h", batch(t, 1)); err != nil {
		t.Fatal(err)
	}

	inj.FailCreates(fsfault.ErrNoSpace)
	_, err := l.Append(OpInsert, "h", batch(t, 2))
	if !errors.Is(err, fsfault.ErrNoSpace) {
		t.Fatalf("rotation failure = %v, want ErrNoSpace classifiable", err)
	}
	// A failed size-rotation is not corruption: the sealed data is
	// intact and the error should not claim otherwise.
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("size-rotation failure %v wrongly claims corruption", err)
	}
	if got := l.LastLSN(); got != 1 {
		t.Fatalf("LastLSN after failed rotation = %d, want 1", got)
	}

	inj.Reset()
	if lsn, err := l.Append(OpInsert, "h", batch(t, 2)); err != nil || lsn != 2 {
		t.Fatalf("append after space returned = %d, %v; want LSN 2", lsn, err)
	}
	recs, _ := collect(t, l, 0)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
}

// TestSyncFailureRefusesAck: under SyncAlways a failed fsync means the
// record's durability is unknown — the append must error (no ack) and
// the segment must be treated as damaged. The record bytes may still be
// on disk; replaying them is allowed (at-least-once past the ack
// boundary), losing an acked record is not.
func TestSyncFailureRefusesAck(t *testing.T) {
	dir := t.TempDir()
	inj := fsfault.NewInjector(nil)
	l := openLog(t, dir, func(o *Options) {
		o.FS = inj
		o.Sync = SyncAlways
	})
	defer l.Close()
	if _, err := l.Append(OpInsert, "h", batch(t, 1)); err != nil {
		t.Fatal(err)
	}

	inj.FailSyncs(errors.New("medium error"))
	_, err := l.Append(OpInsert, "h", batch(t, 2))
	if err == nil {
		t.Fatal("append with failed fsync returned nil")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sync-failure error %v not classifiable as ErrCorrupt", err)
	}
	// The unacked frame is complete on disk, so its LSN is burned: no
	// later append may collide with it.
	if got := l.LastLSN(); got != 2 {
		t.Fatalf("LastLSN after refused ack = %d, want 2 (burned)", got)
	}

	// Recovery path: clear the fault, append again (rotates away), and
	// confirm every acked record replays under its own LSN. The unacked
	// record may or may not appear; assert only the acked ones.
	inj.Reset()
	if lsn, err := l.Append(OpInsert, "h", batch(t, 3)); err != nil || lsn != 3 {
		t.Fatalf("append after fault = %d, %v; want LSN 3", lsn, err)
	}
	seen := map[uint64][]byte{}
	if _, err := l.Replay(0, func(rec Record) error {
		if prev, dup := seen[rec.LSN]; dup && string(prev) != string(rec.Payload) {
			t.Fatalf("LSN %d replayed twice with different payloads", rec.LSN)
		}
		seen[rec.LSN] = append([]byte(nil), rec.Payload...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen[1] == nil || seen[3] == nil {
		t.Fatalf("acked records missing from replay: %v", seen)
	}
}

// TestCheckpointFaults: a failed position write must leave the old
// checkpoint standing and remove nothing; a failed segment removal must
// surface but keep the position advanced.
func TestCheckpointFaults(t *testing.T) {
	dir := t.TempDir()
	inj := fsfault.NewInjector(nil)
	l := openLog(t, dir, func(o *Options) {
		o.FS = inj
		o.SegmentBytes = 1
	})
	defer l.Close()
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(OpInsert, "h", batch(t, float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	inj.FailCreates(fsfault.ErrNoSpace)
	if err := l.Checkpoint(2); !errors.Is(err, fsfault.ErrNoSpace) {
		t.Fatalf("checkpoint with failed pos write = %v, want ErrNoSpace", err)
	}
	if got := l.CheckpointLSN(); got != 0 {
		t.Fatalf("failed checkpoint advanced the position to %d", got)
	}
	recs, _ := collect(t, l, 0)
	if len(recs) != 3 {
		t.Fatalf("failed checkpoint truncated records: %d left, want 3", len(recs))
	}

	inj.Reset()
	inj.FailRemoves(errors.New("busy"))
	if err := l.Checkpoint(2); err == nil {
		t.Fatal("checkpoint with failed truncation reported nil")
	}
	if got := l.CheckpointLSN(); got != 2 {
		t.Fatalf("checkpoint position = %d, want 2 (position advances even when truncation lags)", got)
	}
	// Truncation failure keeps the files; replay past the checkpoint
	// still yields exactly the uncovered records.
	recs, _ = collect(t, l, 2)
	if len(recs) != 1 || recs[0].LSN != 3 {
		t.Fatalf("replay after partial truncation = %+v, want LSN 3 only", recs)
	}

	// Next healthy checkpoint sweeps what the failed one could not.
	inj.Reset()
	if err := l.Checkpoint(2); err != nil {
		t.Fatalf("retry checkpoint: %v", err)
	}
}
