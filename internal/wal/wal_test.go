package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dynahist/internal/fsfault"
	"dynahist/internal/histerr"
	"dynahist/internal/wire"
)

// openLog opens a log in dir with test-friendly defaults; mod tweaks
// the options before Open.
func openLog(t testing.TB, dir string, mod func(*Options)) *Log {
	t.Helper()
	opts := Options{Dir: dir, Sync: SyncNone}
	if mod != nil {
		mod(&opts)
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

// batch encodes values into the wire batch format records carry.
func batch(t testing.TB, vs ...float64) []byte {
	t.Helper()
	b, err := wire.EncodeBatch(vs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// collect replays the log from after and returns records with copied
// payloads (Replay's payloads alias the read buffer).
func collect(t testing.TB, l *Log, after uint64) ([]Record, ReplayStats) {
	t.Helper()
	var out []Record
	st, err := l.Replay(after, func(rec Record) error {
		cp := rec
		cp.Payload = append([]byte(nil), rec.Payload...)
		out = append(out, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out, st
}

// segFiles lists the segment files in dir, sorted by name (= LSN
// order).
func segFiles(t testing.TB, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range des {
		if strings.HasSuffix(de.Name(), SegmentExt) {
			out = append(out, de.Name())
		}
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, nil)
	defer l.Close()

	ins := batch(t, 1, 2, 3)
	del := batch(t, 2)
	appends := []struct {
		op   byte
		name string
		body []byte
	}{
		{OpCreate, "lat", []byte(`{"name":"lat","family":"dado"}`)},
		{OpInsert, "lat", ins},
		{OpDelete, "lat", del},
		{OpDrop, "lat", nil},
	}
	for i, a := range appends {
		lsn, err := l.Append(a.op, a.name, a.body)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if want := uint64(i + 1); lsn != want {
			t.Fatalf("Append %d returned LSN %d, want %d", i, lsn, want)
		}
	}
	if got := l.LastLSN(); got != 4 {
		t.Fatalf("LastLSN = %d, want 4", got)
	}

	recs, st := collect(t, l, 0)
	if st.Records != 4 || st.Skipped != 0 || st.CorruptSegments != 0 {
		t.Fatalf("ReplayStats = %+v", st)
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		want := appends[i]
		if rec.LSN != uint64(i+1) || rec.Op != want.op || rec.Name != want.name {
			t.Fatalf("record %d = {LSN:%d Op:%d Name:%q}, want {%d %d %q}",
				i, rec.LSN, rec.Op, rec.Name, i+1, want.op, want.name)
		}
		if string(rec.Payload) != string(want.body) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
	// The insert batch decodes back through the wire codec.
	vs, err := wire.DecodeBatch(recs[1].Payload)
	if err != nil || len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("decoded batch = %v, %v", vs, err)
	}

	// Replay-after skips digested records.
	recs, st = collect(t, l, 2)
	if len(recs) != 2 || st.Skipped != 2 || recs[0].LSN != 3 {
		t.Fatalf("Replay(2) = %d records (first LSN %d), skipped %d", len(recs), recs[0].LSN, st.Skipped)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, nil)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(OpInsert, "h", batch(t, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery starts a fresh segment, never appending into an
	// old tail, and the next LSN continues where the log left off.
	l2 := openLog(t, dir, nil)
	defer l2.Close()
	if got := l2.LastLSN(); got != 3 {
		t.Fatalf("LastLSN after reopen = %d, want 3", got)
	}
	lsn, err := l2.Append(OpInsert, "h", batch(t, 9))
	if err != nil || lsn != 4 {
		t.Fatalf("Append after reopen = %d, %v; want 4", lsn, err)
	}
	recs, _ := collect(t, l2, 0)
	if len(recs) != 4 || recs[3].LSN != 4 {
		t.Fatalf("replayed %d records after reopen, want 4", len(recs))
	}
	if files := segFiles(t, dir); len(files) < 2 {
		t.Fatalf("reopen did not start a fresh segment: %v", files)
	}
}

// TestReopenAfterEmptyActive crashes (reopens) right after a rotation,
// when the newest segment holds a header and nothing else. The reopen
// re-creates that same segment name; the log must track one file, not
// two, and a checkpoint must never remove the active segment.
func TestReopenAfterEmptyActive(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, nil)
	if _, err := l.Append(OpInsert, "h", batch(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The reopened log's fresh active segment (first LSN 2) is empty;
	// reopening again re-creates 00000000000000000002.wal.
	l2 := openLog(t, dir, nil)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openLog(t, dir, nil)
	defer l3.Close()
	if got := l3.Status().Segments; got != 2 {
		t.Fatalf("Segments = %d, want 2 (no duplicate tracking of the re-created segment)", got)
	}
	if _, err := l3.Append(OpInsert, "h", batch(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l3.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	recs, _ := collect(t, l3, 1)
	if len(recs) != 1 || recs[0].LSN != 2 {
		t.Fatalf("replay after checkpoint = %d records, want the single LSN-2 record", len(recs))
	}
}

func TestRotationAndCheckpointTruncation(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every append rotates, one record per segment.
	l := openLog(t, dir, func(o *Options) { o.SegmentBytes = 1 })
	defer l.Close()
	for i := 1; i <= 6; i++ {
		if _, err := l.Append(OpInsert, "h", batch(t, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Status()
	if st.Segments < 6 {
		t.Fatalf("Segments = %d, want >= 6 after forced rotations", st.Segments)
	}

	if err := l.Checkpoint(4); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := l.CheckpointLSN(); got != 4 {
		t.Fatalf("CheckpointLSN = %d, want 4", got)
	}
	// Segments fully covered by the checkpoint are gone; records past
	// it still replay.
	recs, _ := collect(t, l, l.CheckpointLSN())
	if len(recs) != 2 || recs[0].LSN != 5 || recs[1].LSN != 6 {
		t.Fatalf("post-truncation replay = %+v, want LSNs 5,6", recs)
	}
	// With one record per segment, every sealed segment starting at or
	// below LSN 4 is fully covered and must be gone; only segments
	// holding records 5+ (and the fresh active one) survive.
	files := segFiles(t, dir)
	for _, f := range files[:len(files)-1] {
		first, err := strconv.ParseUint(strings.TrimSuffix(f, SegmentExt), 10, 64)
		if err != nil {
			t.Fatalf("segment name %q: %v", f, err)
		}
		if first < 5 {
			t.Fatalf("segment %s should have been truncated by Checkpoint(4)", f)
		}
	}

	// The position survives a reopen: replay resumes after it.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, nil)
	defer l2.Close()
	if got := l2.CheckpointLSN(); got != 4 {
		t.Fatalf("CheckpointLSN after reopen = %d, want 4", got)
	}
	if got := l2.LastLSN(); got != 6 {
		t.Fatalf("LastLSN after reopen = %d, want 6", got)
	}
}

func TestTornTailSkippedOnReplay(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, nil)
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(OpInsert, "h", batch(t, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop a few bytes off the segment, the way a
	// crash mid-write does.
	seg := filepath.Join(dir, segFiles(t, dir)[0])
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, dir, nil)
	defer l2.Close()
	// The torn record never made it; LSN 3 is reusable.
	if got := l2.LastLSN(); got != 2 {
		t.Fatalf("LastLSN after torn tail = %d, want 2", got)
	}
	recs, st := collect(t, l2, 0)
	if len(recs) != 2 || recs[1].LSN != 2 {
		t.Fatalf("replayed %d records, want the 2 intact ones", len(recs))
	}
	if st.CorruptSegments != 1 {
		t.Fatalf("CorruptSegments = %d, want 1", st.CorruptSegments)
	}
	// New appends continue cleanly after the torn point.
	if lsn, err := l2.Append(OpInsert, "h", batch(t, 9)); err != nil || lsn != 3 {
		t.Fatalf("Append after torn recovery = %d, %v; want LSN 3", lsn, err)
	}
}

func TestBitFlipDetectedByCRC(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, nil)
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(OpInsert, "h", batch(t, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segFiles(t, dir)[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the second record. Record 1 starts at the
	// segment header's end; its frame is header+payload.
	plen1 := binary.LittleEndian.Uint32(data[segHeaderSize:])
	rec2 := segHeaderSize + frameHeaderSize + int(plen1)
	data[rec2+frameHeaderSize+2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, dir, nil)
	defer l2.Close()
	recs, st := collect(t, l2, 0)
	// The scan stops at the flipped record: only record 1 survives.
	if len(recs) != 1 || recs[0].LSN != 1 {
		t.Fatalf("replayed %v, want only LSN 1", recs)
	}
	if st.CorruptSegments != 1 {
		t.Fatalf("CorruptSegments = %d, want 1", st.CorruptSegments)
	}
}

// TestCorruptionLoggedWithOffset pins the diagnosability contract: a
// skipped tail names the segment and the byte offset it died at.
func TestCorruptionLoggedWithOffset(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, nil)
	if _, err := l.Append(OpInsert, "h", batch(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segFiles(t, dir)[0])
	fi, _ := os.Stat(seg)
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	l2 := openLog(t, dir, func(o *Options) { o.Logger = log.New(&buf, "", 0) })
	defer l2.Close()
	if _, err := l2.Replay(0, func(Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	logged := buf.String()
	if !strings.Contains(logged, segFiles(t, dir)[0]) || !strings.Contains(logged, fmt.Sprintf("offset %d", segHeaderSize)) {
		t.Fatalf("corruption log lacks segment name or offset:\n%s", logged)
	}
}

func TestPosFileCorruptionFailSoft(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, nil)
	if _, err := l.Append(OpInsert, "h", batch(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for _, garbage := range [][]byte{nil, []byte("HPOS"), make([]byte, 16)} {
		if err := os.WriteFile(filepath.Join(dir, posFile), garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		l2 := openLog(t, dir, nil)
		if got := l2.CheckpointLSN(); got != 0 {
			t.Fatalf("corrupt pos file (%d bytes) yielded checkpoint %d, want 0 (replay everything)", len(garbage), got)
		}
		l2.Close()
	}
}

func TestSyncPolicyBehaviour(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		inj := fsfault.NewInjector(nil)
		l := openLog(t, t.TempDir(), func(o *Options) {
			o.FS = inj
			o.Sync = SyncAlways
		})
		defer l.Close()
		before := inj.Stats().Syncs
		for i := 0; i < 3; i++ {
			if _, err := l.Append(OpInsert, "h", batch(t, 1)); err != nil {
				t.Fatal(err)
			}
		}
		if got := inj.Stats().Syncs - before; got < 3 {
			t.Fatalf("SyncAlways issued %d syncs across 3 appends, want >= 3", got)
		}
	})
	t.Run("none", func(t *testing.T) {
		inj := fsfault.NewInjector(nil)
		l := openLog(t, t.TempDir(), func(o *Options) {
			o.FS = inj
			o.Sync = SyncNone
		})
		for i := 0; i < 3; i++ {
			if _, err := l.Append(OpInsert, "h", batch(t, 1)); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		if got := inj.Stats().Syncs; got != 0 {
			t.Fatalf("SyncNone issued %d file syncs, want 0", got)
		}
	})
	t.Run("interval", func(t *testing.T) {
		inj := fsfault.NewInjector(nil)
		l := openLog(t, t.TempDir(), func(o *Options) {
			o.FS = inj
			o.Sync = SyncInterval
			o.SyncEvery = time.Millisecond
		})
		if _, err := l.Append(OpInsert, "h", batch(t, 1)); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for inj.Stats().Syncs == 0 {
			if time.Now().After(deadline) {
				t.Fatal("interval flusher never synced")
			}
			time.Sleep(time.Millisecond)
		}
		l.Close()
	})
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"none", SyncNone}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("SyncPolicy.String round trip: %q != %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

func TestAppendOnClosedLog(t *testing.T) {
	l := openLog(t, t.TempDir(), nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(OpInsert, "h", batch(t, 1)); err == nil {
		t.Fatal("Append on closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestMarkDigestedOnlyAdvances(t *testing.T) {
	l := openLog(t, t.TempDir(), nil)
	defer l.Close()
	l.MarkDigested(5)
	l.MarkDigested(3)
	if got := l.DigestedLSN(); got != 5 {
		t.Fatalf("DigestedLSN = %d, want 5 (never regresses)", got)
	}
}

func TestStatusShape(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, func(o *Options) { o.Sync = SyncAlways })
	defer l.Close()
	if _, err := l.Append(OpInsert, "h", batch(t, 1, 2)); err != nil {
		t.Fatal(err)
	}
	l.MarkDigested(1)
	st := l.Status()
	if st.Dir != dir || st.SyncPolicy != "always" {
		t.Fatalf("Status identity = %q/%q", st.Dir, st.SyncPolicy)
	}
	if st.AppendedLSN != 1 || st.DigestedLSN != 1 || st.CheckpointLSN != 0 {
		t.Fatalf("Status watermarks = %d/%d/%d", st.AppendedLSN, st.DigestedLSN, st.CheckpointLSN)
	}
	if st.Segments != 1 || st.ActiveSegmentBytes <= segHeaderSize || st.TotalBytes != st.ActiveSegmentBytes {
		t.Fatalf("Status shape = %+v", st)
	}
}

// BenchmarkWALAppend measures the durable ingest hot path: framing one
// 256-value batch and appending it, without (none) and with (always)
// the per-append fsync.
func BenchmarkWALAppend(b *testing.B) {
	vs := make([]float64, 256)
	for i := range vs {
		vs[i] = float64(i)
	}
	body, err := wire.EncodeBatch(vs)
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []SyncPolicy{SyncNone, SyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			l := openLog(b, b.TempDir(), func(o *Options) {
				o.Sync = pol
				o.SegmentBytes = 1 << 30 // no rotation inside the loop
			})
			defer l.Close()
			b.SetBytes(int64(len(body)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(OpInsert, "bench", body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var errSentinel = errors.New("sentinel")

// TestReplayCallbackErrorAborts checks an fn error stops replay and
// surfaces.
func TestReplayCallbackErrorAborts(t *testing.T) {
	l := openLog(t, t.TempDir(), nil)
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append(OpInsert, "h", batch(t, 1)); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	_, err := l.Replay(0, func(Record) error {
		calls++
		return errSentinel
	})
	if !errors.Is(err, errSentinel) || calls != 1 {
		t.Fatalf("Replay = %v after %d calls, want sentinel after 1", err, calls)
	}
}

// TestErrCorruptIsHisterr pins the cross-layer error identity.
func TestErrCorruptIsHisterr(t *testing.T) {
	if !errors.Is(ErrCorrupt, histerr.ErrWALCorrupt) {
		t.Fatal("wal.ErrCorrupt is not histerr.ErrWALCorrupt")
	}
}
