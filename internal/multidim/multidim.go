// Package multidim implements a two-dimensional dynamic histogram —
// the paper's stated future work ("the most important direction of our
// future work is the extension of the DC and DADO algorithms to more
// than one dimension").
//
// The design transplants the DADO machinery to 2D: the domain rectangle
// is partitioned by a binary space partition (BSP) tree whose leaves
// are the buckets. Each leaf keeps four quadrant counters (the 2D
// analogue of the two sub-buckets), its deviation integrates
// |density − mean| over the quadrants, and after every update the
// histogram considers one split-merge pair: split the leaf with the
// largest deviation along its more imbalanced axis, and merge the
// sibling pair whose recombination costs the least. Sibling-only
// merging keeps the partition a set of disjoint rectangles that tile
// the domain exactly.
package multidim

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmpty is returned when deleting from an empty histogram.
var ErrEmpty = errors.New("multidim: histogram is empty")

// Point is one two-dimensional data point.
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned rectangle [X0, X1) × [Y0, Y1).
type Rect struct {
	X0, X1, Y0, Y1 float64
}

// Width returns the X extent.
func (r Rect) Width() float64 { return r.X1 - r.X0 }

// Height returns the Y extent.
func (r Rect) Height() float64 { return r.Y1 - r.Y0 }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside the half-open rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// Intersect returns the overlap of two rectangles (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		X0: math.Max(r.X0, o.X0), X1: math.Min(r.X1, o.X1),
		Y0: math.Max(r.Y0, o.Y0), Y1: math.Min(r.Y1, o.Y1),
	}
	if out.X1 < out.X0 {
		out.X1 = out.X0
	}
	if out.Y1 < out.Y0 {
		out.Y1 = out.Y0
	}
	return out
}

// node is one BSP node. Leaves carry the quadrant counters; interior
// nodes carry the split axis and position.
type node struct {
	rect Rect

	// Leaf state: counts of the four quadrants, indexed qx + 2*qy
	// (qx: 0 left / 1 right of the X midpoint; qy likewise for Y).
	quads [4]float64
	dev   float64

	// Tree links; children == nil means leaf.
	parent      *node
	left, right *node
}

func (n *node) isLeaf() bool { return n.left == nil }

func (n *node) count() float64 {
	return n.quads[0] + n.quads[1] + n.quads[2] + n.quads[3]
}

// quadrant returns the index of the quadrant containing p.
func (n *node) quadrant(p Point) int {
	q := 0
	if p.X >= (n.rect.X0+n.rect.X1)/2 {
		q |= 1
	}
	if p.Y >= (n.rect.Y0+n.rect.Y1)/2 {
		q |= 2
	}
	return q
}

// quadRect returns the rectangle of quadrant q.
func (n *node) quadRect(q int) Rect {
	mx := (n.rect.X0 + n.rect.X1) / 2
	my := (n.rect.Y0 + n.rect.Y1) / 2
	r := n.rect
	if q&1 == 0 {
		r.X1 = mx
	} else {
		r.X0 = mx
	}
	if q&2 == 0 {
		r.Y1 = my
	} else {
		r.Y0 = my
	}
	return r
}

// massIn returns the leaf's estimated mass inside query, assuming
// uniform density within each quadrant.
func (n *node) massIn(query Rect) float64 {
	mass := 0.0
	for q := range 4 {
		c := n.quads[q]
		if c == 0 {
			continue
		}
		qr := n.quadRect(q)
		overlap := qr.Intersect(query).Area()
		if a := qr.Area(); a > 0 && overlap > 0 {
			mass += c * overlap / a
		}
	}
	return mass
}

// Histogram2D is the dynamic 2D histogram. It is not safe for
// concurrent use.
type Histogram2D struct {
	root      *node
	leaves    []*node
	maxLeaves int
	total     float64

	reorganisations int
}

// minExtent is the smallest leaf side length; leaves at this size are
// not split further (the 2D analogue of the unit-width bucket).
const minExtent = 1.0

// New2D returns a dynamic 2D histogram over the domain rectangle with
// at most maxLeaves leaf buckets.
func New2D(domain Rect, maxLeaves int) (*Histogram2D, error) {
	if maxLeaves < 2 {
		return nil, fmt.Errorf("multidim: maxLeaves %d < 2", maxLeaves)
	}
	if !(domain.X1 > domain.X0) || !(domain.Y1 > domain.Y0) {
		return nil, fmt.Errorf("multidim: empty domain %+v", domain)
	}
	for _, v := range []float64{domain.X0, domain.X1, domain.Y0, domain.Y1} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("multidim: non-finite domain bound %v", v)
		}
	}
	root := &node{rect: domain}
	return &Histogram2D{root: root, leaves: []*node{root}, maxLeaves: maxLeaves}, nil
}

// New2DMemory sizes the histogram for a byte budget: each leaf costs
// four 4-byte counters plus two 4-byte split coordinates of the tree
// path amortised per leaf (24 bytes per leaf).
func New2DMemory(domain Rect, memBytes int) (*Histogram2D, error) {
	n := memBytes / 24
	if n < 2 {
		return nil, fmt.Errorf("multidim: %dB cannot hold two leaves", memBytes)
	}
	return New2D(domain, n)
}

// MaxLeaves returns the leaf budget.
func (h *Histogram2D) MaxLeaves() int { return h.maxLeaves }

// NumLeaves returns the current number of leaf buckets.
func (h *Histogram2D) NumLeaves() int { return len(h.leaves) }

// Total returns the number of points currently summarised.
func (h *Histogram2D) Total() float64 { return h.total }

// Reorganisations returns how many split-merge pairs have been
// performed.
func (h *Histogram2D) Reorganisations() int { return h.reorganisations }

// Domain returns the histogram's domain rectangle.
func (h *Histogram2D) Domain() Rect { return h.root.rect }

// Leaves returns the current leaf rectangles and their counts.
func (h *Histogram2D) Leaves() []LeafInfo {
	out := make([]LeafInfo, 0, len(h.leaves))
	for _, l := range h.leaves {
		out = append(out, LeafInfo{Rect: l.rect, Count: l.count()})
	}
	return out
}

// LeafInfo describes one leaf bucket.
type LeafInfo struct {
	Rect  Rect
	Count float64
}

// clamp forces p into the domain (boundary-inclusive points are nudged
// inside, mirroring the 1D end-bucket extension policy without moving
// borders).
func (h *Histogram2D) clamp(p Point) (Point, error) {
	if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
		return p, fmt.Errorf("multidim: non-finite point (%v, %v)", p.X, p.Y)
	}
	d := h.root.rect
	p.X = math.Min(math.Max(p.X, d.X0), math.Nextafter(d.X1, math.Inf(-1)))
	p.Y = math.Min(math.Max(p.Y, d.Y0), math.Nextafter(d.Y1, math.Inf(-1)))
	return p, nil
}

// leafFor descends to the leaf containing p.
func (h *Histogram2D) leafFor(p Point) *node {
	n := h.root
	for !n.isLeaf() {
		if n.left.rect.Contains(p) {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// Insert adds one occurrence of p (clamped into the domain).
func (h *Histogram2D) Insert(p Point) error {
	p, err := h.clamp(p)
	if err != nil {
		return err
	}
	leaf := h.leafFor(p)
	leaf.quads[leaf.quadrant(p)]++
	leaf.dev = deviation(leaf)
	h.total++
	h.maybeSplitMerge()
	return nil
}

// Delete removes one occurrence of p, spilling to the nearest leaf with
// positive count when the containing leaf is empty.
func (h *Histogram2D) Delete(p Point) error {
	p, err := h.clamp(p)
	if err != nil {
		return err
	}
	if h.total < 1 {
		return ErrEmpty
	}
	leaf := h.leafFor(p)
	if !decrement(leaf, p) {
		leaf = h.nearestPositive(p)
		if leaf == nil || !decrement(leaf, p) {
			return ErrEmpty
		}
	}
	h.total--
	h.maybeSplitMerge()
	return nil
}

func decrement(n *node, p Point) bool {
	q := n.quadrant(p)
	if n.quads[q] >= 1 {
		n.quads[q]--
		n.dev = deviation(n)
		return true
	}
	for i := range n.quads {
		if n.quads[i] >= 1 {
			n.quads[i]--
			n.dev = deviation(n)
			return true
		}
	}
	if c := n.count(); c >= 1 {
		scale := (c - 1) / c
		for i := range n.quads {
			n.quads[i] *= scale
		}
		n.dev = deviation(n)
		return true
	}
	return false
}

func (h *Histogram2D) nearestPositive(p Point) *node {
	var best *node
	bestDist := math.Inf(1)
	for _, l := range h.leaves {
		if l.count() < 1 {
			continue
		}
		dx := math.Max(math.Max(l.rect.X0-p.X, p.X-l.rect.X1), 0)
		dy := math.Max(math.Max(l.rect.Y0-p.Y, p.Y-l.rect.Y1), 0)
		d := dx*dx + dy*dy
		if d < bestDist {
			best, bestDist = l, d
		}
	}
	return best
}

// EstimateRect returns the approximate number of points inside query.
func (h *Histogram2D) EstimateRect(query Rect) float64 {
	if query.X1 <= query.X0 || query.Y1 <= query.Y0 {
		return 0
	}
	mass := 0.0
	var walk func(n *node)
	walk = func(n *node) {
		overlap := n.rect.Intersect(query)
		if overlap.Area() <= 0 {
			// Degenerate overlap: nothing (or a zero-area sliver).
			return
		}
		if n.isLeaf() {
			mass += n.massIn(query)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(h.root)
	return mass
}

// Selectivity returns EstimateRect normalised by the total count.
func (h *Histogram2D) Selectivity(query Rect) float64 {
	if h.total <= 0 {
		return 0
	}
	return h.EstimateRect(query) / h.total
}

// deviation integrates |density − mean| over the four quadrants — the
// 2D AbsDeviation measure.
func deviation(n *node) float64 {
	area := n.rect.Area()
	if area <= 0 {
		return 0
	}
	mean := n.count() / area
	quadArea := area / 4
	dev := 0.0
	for _, c := range n.quads {
		dev += quadArea * math.Abs(c/quadArea-mean)
	}
	return dev
}

// mergedDeviation is the deviation the recombined parent of two sibling
// leaves would carry, measured over the eight child quadrants against
// the merged mean density.
func mergedDeviation(parent *node) float64 {
	area := parent.rect.Area()
	if area <= 0 {
		return 0
	}
	total := parent.left.count() + parent.right.count()
	mean := total / area
	dev := 0.0
	for _, child := range []*node{parent.left, parent.right} {
		quadArea := child.rect.Area() / 4
		for _, c := range child.quads {
			dev += quadArea * math.Abs(c/quadArea-mean)
		}
	}
	return dev
}

// splittable reports whether the leaf can be split further.
func splittable(n *node) bool {
	return n.rect.Width() > minExtent+1e-9 || n.rect.Height() > minExtent+1e-9
}

// maybeSplitMerge performs one split-merge pair when it strictly
// reduces the overall deviation, exactly like the 1D algorithm.
func (h *Histogram2D) maybeSplitMerge() {
	if len(h.leaves) < 3 {
		h.growIfUnderBudget()
		return
	}
	s := h.bestSplit(nil)
	if s == nil {
		return
	}
	m := h.bestMergeParent(s)
	if m == nil {
		// No mergeable pair: grow if the budget allows.
		h.growIfUnderBudget()
		return
	}
	vm := mergedDeviation(m)
	if vm >= s.dev-1e-12 {
		h.growIfUnderBudget()
		return
	}
	h.mergeAt(m)
	h.splitLeaf(s)
	h.reorganisations++
}

// growIfUnderBudget splits the worst leaf for free while the leaf count
// is below budget (the 2D loading phase).
func (h *Histogram2D) growIfUnderBudget() {
	for len(h.leaves) < h.maxLeaves {
		s := h.bestSplit(nil)
		if s == nil || s.dev <= 0 {
			return
		}
		h.splitLeaf(s)
	}
}

// bestSplit returns the splittable leaf with the largest deviation,
// excluding `exclude`.
func (h *Histogram2D) bestSplit(exclude *node) *node {
	var best *node
	bestDev := 0.0
	for _, l := range h.leaves {
		if l == exclude || !splittable(l) {
			continue
		}
		if l.dev > bestDev {
			best, bestDev = l, l.dev
		}
	}
	return best
}

// bestMergeParent returns the interior node, both of whose children are
// leaves (neither being the split candidate), with the smallest merged
// deviation.
func (h *Histogram2D) bestMergeParent(exclude *node) *node {
	var best *node
	bestDev := math.Inf(1)
	seen := map[*node]bool{}
	for _, l := range h.leaves {
		p := l.parent
		if p == nil || seen[p] {
			continue
		}
		seen[p] = true
		if !p.left.isLeaf() || !p.right.isLeaf() {
			continue
		}
		if p.left == exclude || p.right == exclude {
			continue
		}
		d := mergedDeviation(p)
		if d < bestDev {
			best, bestDev = p, d
		}
	}
	return best
}

// splitLeaf splits the leaf along its more imbalanced axis at the
// midpoint; the children's quadrant counters are read off the parent's
// quadrant profile.
func (h *Histogram2D) splitLeaf(n *node) {
	// Axis choice: compare the X-halves imbalance vs the Y-halves
	// imbalance, preferring the axis with the larger difference —
	// splitting there removes the most deviation. Respect minExtent.
	xImb := math.Abs((n.quads[0] + n.quads[2]) - (n.quads[1] + n.quads[3]))
	yImb := math.Abs((n.quads[0] + n.quads[1]) - (n.quads[2] + n.quads[3]))
	splitX := xImb >= yImb
	if n.rect.Width() <= minExtent+1e-9 {
		splitX = false
	}
	if n.rect.Height() <= minExtent+1e-9 {
		splitX = true
	}

	var lRect, rRect Rect
	if splitX {
		mx := (n.rect.X0 + n.rect.X1) / 2
		lRect = Rect{X0: n.rect.X0, X1: mx, Y0: n.rect.Y0, Y1: n.rect.Y1}
		rRect = Rect{X0: mx, X1: n.rect.X1, Y0: n.rect.Y0, Y1: n.rect.Y1}
	} else {
		my := (n.rect.Y0 + n.rect.Y1) / 2
		lRect = Rect{X0: n.rect.X0, X1: n.rect.X1, Y0: n.rect.Y0, Y1: my}
		rRect = Rect{X0: n.rect.X0, X1: n.rect.X1, Y0: my, Y1: n.rect.Y1}
	}
	left := &node{rect: lRect, parent: n}
	right := &node{rect: rRect, parent: n}
	// Children's quadrant counters from the parent's uniform-quadrant
	// profile.
	for q := range 4 {
		qr := n.quadRect(q)
		c := n.quads[q]
		if c == 0 || qr.Area() == 0 {
			continue
		}
		for _, child := range []*node{left, right} {
			for cq := range 4 {
				cr := child.quadRect(cq)
				if overlap := qr.Intersect(cr).Area(); overlap > 0 {
					child.quads[cq] += c * overlap / qr.Area()
				}
			}
		}
	}
	left.dev = deviation(left)
	right.dev = deviation(right)
	n.left, n.right = left, right
	n.dev = 0
	for i := range n.quads {
		n.quads[i] = 0
	}
	h.replaceLeaf(n, left, right)
}

// mergeAt recombines the two leaf children of p into p, reading p's
// quadrant counters off the children's profiles.
func (h *Histogram2D) mergeAt(p *node) {
	for q := range 4 {
		qr := p.quadRect(q)
		mass := 0.0
		for _, child := range []*node{p.left, p.right} {
			mass += child.massIn(qr)
		}
		p.quads[q] = mass
	}
	h.removeLeaves(p.left, p.right)
	p.left, p.right = nil, nil
	p.dev = deviation(p)
	h.leaves = append(h.leaves, p)
}

func (h *Histogram2D) replaceLeaf(old, a, b *node) {
	for i, l := range h.leaves {
		if l == old {
			h.leaves[i] = a
			h.leaves = append(h.leaves, b)
			return
		}
	}
}

func (h *Histogram2D) removeLeaves(a, b *node) {
	out := h.leaves[:0]
	for _, l := range h.leaves {
		if l != a && l != b {
			out = append(out, l)
		}
	}
	h.leaves = out
}

// Validate checks the structural invariants: the leaves tile the
// domain exactly (total area preserved), counts are non-negative, and
// the recorded total matches the leaf mass.
func (h *Histogram2D) Validate() error {
	area := 0.0
	mass := 0.0
	for _, l := range h.leaves {
		if !l.isLeaf() {
			return errors.New("multidim: interior node in leaf list")
		}
		for _, c := range l.quads {
			if c < -1e-6 || math.IsNaN(c) {
				return fmt.Errorf("multidim: bad count %v", c)
			}
		}
		area += l.rect.Area()
		mass += l.count()
	}
	if math.Abs(area-h.root.rect.Area()) > 1e-6*h.root.rect.Area() {
		return fmt.Errorf("multidim: leaves cover %v of domain area %v", area, h.root.rect.Area())
	}
	if math.Abs(mass-h.total) > 1e-6*(1+h.total) {
		return fmt.Errorf("multidim: leaf mass %v != total %v", mass, h.total)
	}
	return nil
}
