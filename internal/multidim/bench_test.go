package multidim

import (
	"math/rand"
	"testing"
)

func BenchmarkInsert2D(b *testing.B) {
	h, err := New2D(Rect{X0: 0, X1: 1000, Y0: 0, Y1: 1000}, 128)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	points := make([]Point, 1<<14)
	for i := range points {
		points[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for b.Loop() {
		if err := h.Insert(points[i&(len(points)-1)]); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

func BenchmarkEstimateRect2D(b *testing.B) {
	h, err := New2D(Rect{X0: 0, X1: 1000, Y0: 0, Y1: 1000}, 128)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for range 50000 {
		if err := h.Insert(Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}); err != nil {
			b.Fatal(err)
		}
	}
	q := Rect{X0: 200, X1: 600, Y0: 300, Y1: 700}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		_ = h.EstimateRect(q)
	}
}
