package multidim

import (
	"fmt"
	"math"
)

// Grid2D is the fixed equal-area baseline — the 2D analogue of an
// Equi-Width histogram. It partitions the domain into an nx × ny grid
// of identical cells and counts points per cell. It exists to quantify
// what the adaptive BSP partition buys (the 2D ablation experiment),
// exactly as the paper uses Equi-Width as the weakest static baseline
// in 1D.
type Grid2D struct {
	domain Rect
	nx, ny int
	cells  []float64
	total  float64
}

// NewGrid2D returns an nx × ny fixed grid over the domain.
func NewGrid2D(domain Rect, nx, ny int) (*Grid2D, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("multidim: grid %dx%d invalid", nx, ny)
	}
	if !(domain.X1 > domain.X0) || !(domain.Y1 > domain.Y0) {
		return nil, fmt.Errorf("multidim: empty domain %+v", domain)
	}
	return &Grid2D{domain: domain, nx: nx, ny: ny, cells: make([]float64, nx*ny)}, nil
}

// NewGrid2DBudget returns the squarest grid with at most cells cells —
// the fair comparison partner for a BSP histogram with the same leaf
// budget.
func NewGrid2DBudget(domain Rect, cells int) (*Grid2D, error) {
	if cells < 1 {
		return nil, fmt.Errorf("multidim: cell budget %d < 1", cells)
	}
	nx := int(math.Sqrt(float64(cells)))
	if nx < 1 {
		nx = 1
	}
	ny := cells / nx
	if ny < 1 {
		ny = 1
	}
	return NewGrid2D(domain, nx, ny)
}

// Cells returns the number of grid cells.
func (g *Grid2D) Cells() int { return g.nx * g.ny }

// Total returns the number of points counted.
func (g *Grid2D) Total() float64 { return g.total }

func (g *Grid2D) cellIndex(p Point) int {
	fx := (p.X - g.domain.X0) / g.domain.Width()
	fy := (p.Y - g.domain.Y0) / g.domain.Height()
	ix := int(fx * float64(g.nx))
	iy := int(fy * float64(g.ny))
	if ix < 0 {
		ix = 0
	}
	if ix >= g.nx {
		ix = g.nx - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= g.ny {
		iy = g.ny - 1
	}
	return iy*g.nx + ix
}

// Insert adds one occurrence of p (clamped into the domain).
func (g *Grid2D) Insert(p Point) error {
	if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("multidim: non-finite point (%v, %v)", p.X, p.Y)
	}
	g.cells[g.cellIndex(p)]++
	g.total++
	return nil
}

// Delete removes one occurrence of p from its cell (or the fullest cell
// when that one is empty).
func (g *Grid2D) Delete(p Point) error {
	if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("multidim: non-finite point (%v, %v)", p.X, p.Y)
	}
	if g.total < 1 {
		return ErrEmpty
	}
	i := g.cellIndex(p)
	if g.cells[i] < 1 {
		best := -1
		for j, c := range g.cells {
			if c >= 1 && (best < 0 || c > g.cells[best]) {
				best = j
			}
		}
		if best < 0 {
			return ErrEmpty
		}
		i = best
	}
	g.cells[i]--
	g.total--
	return nil
}

// EstimateRect returns the approximate number of points in query,
// assuming uniform density within each cell.
func (g *Grid2D) EstimateRect(query Rect) float64 {
	cw := g.domain.Width() / float64(g.nx)
	ch := g.domain.Height() / float64(g.ny)
	mass := 0.0
	for iy := range g.ny {
		for ix := range g.nx {
			c := g.cells[iy*g.nx+ix]
			if c == 0 {
				continue
			}
			cell := Rect{
				X0: g.domain.X0 + float64(ix)*cw,
				X1: g.domain.X0 + float64(ix+1)*cw,
				Y0: g.domain.Y0 + float64(iy)*ch,
				Y1: g.domain.Y0 + float64(iy+1)*ch,
			}
			if overlap := cell.Intersect(query).Area(); overlap > 0 {
				mass += c * overlap / cell.Area()
			}
		}
	}
	return mass
}
