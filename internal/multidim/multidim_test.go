package multidim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func domain1000() Rect { return Rect{X0: 0, X1: 1000, Y0: 0, Y1: 1000} }

func TestNew2DValidation(t *testing.T) {
	if _, err := New2D(domain1000(), 1); err == nil {
		t.Error("maxLeaves 1: want error")
	}
	if _, err := New2D(Rect{X0: 5, X1: 5, Y0: 0, Y1: 1}, 4); err == nil {
		t.Error("empty domain: want error")
	}
	if _, err := New2D(Rect{X0: 0, X1: math.NaN(), Y0: 0, Y1: 1}, 4); err == nil {
		t.Error("NaN domain: want error")
	}
	if _, err := New2DMemory(domain1000(), 10); err == nil {
		t.Error("10 bytes: want error")
	}
	h, err := New2DMemory(domain1000(), 24*64)
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxLeaves() != 64 {
		t.Errorf("budget = %d leaves, want 64", h.MaxLeaves())
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{X0: 0, X1: 10, Y0: 0, Y1: 20}
	if r.Width() != 10 || r.Height() != 20 || r.Area() != 200 {
		t.Error("extent helpers wrong")
	}
	if !r.Contains(Point{5, 5}) || r.Contains(Point{10, 5}) || r.Contains(Point{-1, 5}) {
		t.Error("Contains half-open semantics violated")
	}
	o := r.Intersect(Rect{X0: 5, X1: 15, Y0: 10, Y1: 30})
	if o.X0 != 5 || o.X1 != 10 || o.Y0 != 10 || o.Y1 != 20 {
		t.Errorf("Intersect = %+v", o)
	}
	empty := r.Intersect(Rect{X0: 100, X1: 110, Y0: 0, Y1: 1})
	if empty.Area() != 0 {
		t.Errorf("disjoint intersect area = %v", empty.Area())
	}
}

func TestInsertCountAndBudget(t *testing.T) {
	h, err := New2D(domain1000(), 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for range 10000 {
		p := Point{X: float64(rng.Intn(1000)), Y: float64(rng.Intn(1000))}
		if err := h.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if h.Total() != 10000 {
		t.Fatalf("Total = %v", h.Total())
	}
	if h.NumLeaves() > 32 {
		t.Fatalf("%d leaves over budget", h.NumLeaves())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.EstimateRect(domain1000()); math.Abs(got-10000) > 1e-6 {
		t.Fatalf("whole-domain estimate %v", got)
	}
}

func TestInsertRejectsNonFinite(t *testing.T) {
	h, err := New2D(domain1000(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(Point{math.NaN(), 3}); err == nil {
		t.Error("Insert NaN: want error")
	}
	if err := h.Delete(Point{3, math.Inf(1)}); err == nil {
		t.Error("Delete Inf: want error")
	}
	if err := h.Delete(Point{3, 3}); err == nil {
		t.Error("delete from empty: want error")
	}
}

func TestClampOutOfDomain(t *testing.T) {
	h, err := New2D(domain1000(), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Points outside the domain are clamped in, not lost.
	for _, p := range []Point{{-50, 500}, {2000, 500}, {500, -3}, {500, 5000}} {
		if err := h.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %v", h.Total())
	}
	if got := h.EstimateRect(domain1000()); math.Abs(got-4) > 1e-9 {
		t.Fatalf("clamped mass %v, want 4", got)
	}
}

func TestDeleteAndSpill(t *testing.T) {
	h, err := New2D(domain1000(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for range 100 {
		if err := h.Insert(Point{100, 100}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete far from the data: spills to the populated region.
	if err := h.Delete(Point{900, 900}); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 99 {
		t.Fatalf("Total = %v", h.Total())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredBeatsCoarseUniform(t *testing.T) {
	// Two tight clusters: the adaptive partition should estimate a
	// cluster query far better than a uniform-density assumption over
	// the domain.
	h, err := New2D(domain1000(), 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	n := 20000
	for i := range n {
		var p Point
		if i%2 == 0 {
			p = Point{X: 100 + rng.NormFloat64()*20, Y: 100 + rng.NormFloat64()*20}
		} else {
			p = Point{X: 800 + rng.NormFloat64()*20, Y: 800 + rng.NormFloat64()*20}
		}
		if err := h.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	query := Rect{X0: 50, X1: 150, Y0: 50, Y1: 150} // first cluster
	est := h.EstimateRect(query)
	exact := float64(n) / 2 * 0.95 // nearly all of cluster 1 (±2.5σ)
	if est < exact*0.5 || est > float64(n)*0.75 {
		t.Errorf("cluster estimate %v, want ≈%v", est, exact)
	}
	uniform := float64(n) * query.Area() / domain1000().Area() // = n/100
	if math.Abs(est-exact) > math.Abs(uniform-exact) {
		t.Errorf("adaptive estimate %v no better than uniform %v (exact %v)", est, uniform, exact)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectivity(t *testing.T) {
	h, err := New2D(domain1000(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if h.Selectivity(domain1000()) != 0 {
		t.Error("empty selectivity should be 0")
	}
	for range 100 {
		if err := h.Insert(Point{500, 500}); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Selectivity(domain1000()); math.Abs(got-1) > 1e-9 {
		t.Errorf("whole-domain selectivity %v", got)
	}
	if got := h.EstimateRect(Rect{X0: 10, X1: 5, Y0: 0, Y1: 1}); got != 0 {
		t.Errorf("inverted query = %v", got)
	}
}

func TestLeavesExposed(t *testing.T) {
	h, err := New2D(domain1000(), 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for range 5000 {
		if err := h.Insert(Point{rng.Float64() * 1000, rng.Float64() * 1000}); err != nil {
			t.Fatal(err)
		}
	}
	leaves := h.Leaves()
	if len(leaves) != h.NumLeaves() {
		t.Fatalf("Leaves() length %d != NumLeaves %d", len(leaves), h.NumLeaves())
	}
	mass := 0.0
	for _, l := range leaves {
		mass += l.Count
	}
	if math.Abs(mass-5000) > 1e-6 {
		t.Fatalf("leaf mass %v", mass)
	}
}

// Property: mass conservation and structural validity across arbitrary
// insert/delete workloads.
func TestMassConservationProperty(t *testing.T) {
	f := func(ops []int16) bool {
		h, err := New2D(Rect{X0: 0, X1: 256, Y0: 0, Y1: 256}, 12)
		if err != nil {
			return false
		}
		want := 0.0
		for _, op := range ops {
			v := int(op)
			if v < 0 {
				v = -v
			}
			p := Point{X: float64(v % 256), Y: float64((v / 7) % 256)}
			if op%3 != 0 {
				if h.Insert(p) == nil {
					want++
				}
			} else if h.Delete(p) == nil {
				want--
			}
		}
		if math.Abs(h.Total()-want) > 1e-6 {
			return false
		}
		return h.Validate() == nil && h.NumLeaves() <= h.MaxLeaves()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: estimates are monotone in the query rectangle (a larger
// query never yields a smaller estimate).
func TestEstimateMonotoneProperty(t *testing.T) {
	h, err := New2D(domain1000(), 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for range 8000 {
		if err := h.Insert(Point{rng.Float64() * 1000, rng.Float64() * 1000}); err != nil {
			t.Fatal(err)
		}
	}
	f := func(x0, y0 uint16, w, hgt uint16) bool {
		q := Rect{
			X0: float64(x0 % 900), Y0: float64(y0 % 900),
		}
		q.X1 = q.X0 + float64(w%100) + 1
		q.Y1 = q.Y0 + float64(hgt%100) + 1
		inner := h.EstimateRect(q)
		bigger := Rect{X0: q.X0 - 10, X1: q.X1 + 10, Y0: q.Y0 - 10, Y1: q.Y1 + 10}
		outer := h.EstimateRect(bigger)
		return outer >= inner-1e-9 && inner >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGrid2D(t *testing.T) {
	g, err := NewGrid2D(domain1000(), 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 64 {
		t.Fatalf("Cells = %d", g.Cells())
	}
	rng := rand.New(rand.NewSource(7))
	for range 5000 {
		if err := g.Insert(Point{rng.Float64() * 1000, rng.Float64() * 1000}); err != nil {
			t.Fatal(err)
		}
	}
	if g.Total() != 5000 {
		t.Fatalf("Total = %v", g.Total())
	}
	if got := g.EstimateRect(domain1000()); math.Abs(got-5000) > 1e-6 {
		t.Fatalf("whole-domain estimate %v", got)
	}
	// Uniform data: quarter-domain estimate ≈ quarter of the rows.
	q := Rect{X0: 0, X1: 500, Y0: 0, Y1: 500}
	if got := g.EstimateRect(q); math.Abs(got-1250) > 200 {
		t.Errorf("quarter estimate %v, want ≈1250", got)
	}
	if err := g.Delete(Point{1, 1}); err != nil {
		t.Fatal(err)
	}
	if g.Total() != 4999 {
		t.Fatalf("Total after delete = %v", g.Total())
	}
	if err := g.Insert(Point{math.NaN(), 1}); err == nil {
		t.Error("NaN insert: want error")
	}
	if _, err := NewGrid2D(domain1000(), 0, 3); err == nil {
		t.Error("0 columns: want error")
	}
}

func TestGrid2DBudget(t *testing.T) {
	for _, budget := range []int{1, 2, 16, 63, 100} {
		g, err := NewGrid2DBudget(domain1000(), budget)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if g.Cells() > budget {
			t.Errorf("budget %d: %d cells over budget", budget, g.Cells())
		}
	}
	if _, err := NewGrid2DBudget(domain1000(), 0); err == nil {
		t.Error("budget 0: want error")
	}
}

func TestGrid2DDeleteEmptyAndSpill(t *testing.T) {
	g, err := NewGrid2D(domain1000(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Delete(Point{1, 1}); err == nil {
		t.Error("delete from empty: want error")
	}
	if err := g.Insert(Point{900, 900}); err != nil {
		t.Fatal(err)
	}
	// Delete from an empty cell spills to the fullest cell.
	if err := g.Delete(Point{1, 1}); err != nil {
		t.Fatal(err)
	}
	if g.Total() != 0 {
		t.Fatalf("Total = %v", g.Total())
	}
}
