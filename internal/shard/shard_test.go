package shard

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"dynahist/internal/core"
	"dynahist/internal/histogram"
)

func newMember() (Member, error) { return core.NewDCMemory(512) }

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg, newMember)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewDefaults(t *testing.T) {
	e := mustEngine(t, Config{})
	if got, want := e.NumShards(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("NumShards = %d, want GOMAXPROCS = %d", got, want)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Shards: -1}, newMember); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := New(Config{Policy: Policy(99)}, newMember); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(Config{MergeBudget: -5}, newMember); err == nil {
		t.Error("negative merge budget accepted")
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestSingleShardMatchesMember(t *testing.T) {
	e := mustEngine(t, Config{Shards: 1})
	m, err := newMember()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for range 5000 {
		v := float64(rng.Intn(1000))
		if err := e.Insert(v); err != nil {
			t.Fatal(err)
		}
		if err := m.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := e.Total(), m.Total(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	mb := m.Buckets()
	mt := histogram.TotalCount(mb)
	for x := 0.0; x <= 1000; x += 25 {
		want := histogram.MassBelow(mb, x) / mt
		if got := e.CDF(x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestHashPolicyKeepsValueOnOneShard(t *testing.T) {
	e := mustEngine(t, Config{Shards: 4, Policy: ByValueHash})
	for range 100 {
		if err := e.Insert(42); err != nil {
			t.Fatal(err)
		}
	}
	nonzero := 0
	for _, tot := range e.ShardTotals() {
		if tot > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("value 42 spread over %d shards, want 1", nonzero)
	}
}

func TestRoundRobinBalances(t *testing.T) {
	e := mustEngine(t, Config{Shards: 4, Policy: RoundRobin})
	// A single heavily repeated value: hash striping would pile it on
	// one shard, round-robin must spread it evenly.
	for range 4000 {
		if err := e.Insert(42); err != nil {
			t.Fatal(err)
		}
	}
	for i, tot := range e.ShardTotals() {
		if tot != 1000 {
			t.Fatalf("shard %d holds %v points, want 1000", i, tot)
		}
	}
}

func TestDeleteFallsBackAcrossShards(t *testing.T) {
	// Ingest round-robin, delete under the same engine: the deleted
	// value may live on a different shard than the hash route, and the
	// engine must still find removable mass.
	e := mustEngine(t, Config{Shards: 4, Policy: RoundRobin})
	for range 400 {
		if err := e.Insert(7); err != nil {
			t.Fatal(err)
		}
	}
	for range 400 {
		if err := e.Delete(7); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Total(); got > 1e-6 {
		t.Fatalf("Total after deleting everything = %v, want 0", got)
	}
	if err := e.Delete(7); err == nil {
		t.Error("delete from empty engine succeeded")
	}
}

func TestBatchMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	values := make([]float64, 8000)
	for i := range values {
		values[i] = float64(rng.Intn(500))
	}
	loop := mustEngine(t, Config{Shards: 4})
	batch := mustEngine(t, Config{Shards: 4})
	for _, v := range values {
		if err := loop.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.InsertBatch(values); err != nil {
		t.Fatal(err)
	}
	if lt, bt := loop.Total(), batch.Total(); math.Abs(lt-bt) > 1e-6 {
		t.Fatalf("loop total %v != batch total %v", lt, bt)
	}
	for x := 0.0; x <= 500; x += 10 {
		if l, b := loop.CDF(x), batch.CDF(x); math.Abs(l-b) > 1e-9 {
			t.Fatalf("CDF(%v): loop %v != batch %v", x, l, b)
		}
	}
	if err := batch.DeleteBatch(values[:4000]); err != nil {
		t.Fatal(err)
	}
	if got, want := batch.Total(), float64(len(values)-4000); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Total after DeleteBatch = %v, want %v", got, want)
	}
	if err := batch.InsertBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestSnapshotInvalidation(t *testing.T) {
	e := mustEngine(t, Config{Shards: 2})
	if got := e.Total(); got != 0 {
		t.Fatalf("empty Total = %v", got)
	}
	if got := e.CDF(100); got != 0 {
		t.Fatalf("empty CDF = %v", got)
	}
	if err := e.Insert(10); err != nil {
		t.Fatal(err)
	}
	if got := e.Total(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Total after first insert = %v, want 1", got)
	}
	// Cached: repeated reads agree.
	if a, b := e.CDF(50), e.CDF(50); a != b {
		t.Fatalf("unstable cached CDF: %v vs %v", a, b)
	}
	// A write invalidates the snapshot.
	if err := e.Insert(20); err != nil {
		t.Fatal(err)
	}
	if got := e.Total(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Total after second insert = %v, want 2", got)
	}
}

func TestMergeBudgetCapsView(t *testing.T) {
	e, err := New(Config{Shards: 4, MergeBudget: 8}, newMember)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for range 20000 {
		if err := e.Insert(float64(rng.Intn(5000))); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(e.Buckets()); got > 8 {
		t.Fatalf("merged view has %d buckets, budget 8", got)
	}
	if got, want := e.Total(), 20000.0; math.Abs(got-want) > 1 {
		t.Fatalf("Total after reduce = %v, want ~%v", got, want)
	}
}

func TestEstimateRange(t *testing.T) {
	e := mustEngine(t, Config{Shards: 4})
	for v := 0; v < 1000; v++ {
		if err := e.Insert(float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.EstimateRange(500, 100); got != 0 {
		t.Fatalf("inverted range estimate = %v, want 0", got)
	}
	got := e.EstimateRange(0, 999)
	if math.Abs(got-1000) > 1 {
		t.Fatalf("full-range estimate = %v, want ~1000", got)
	}
}

// badMember returns a structurally invalid bucket list after enough
// inserts, to exercise the degraded merge path.
type badMember struct {
	n int
}

func (m *badMember) Insert(v float64) error { m.n++; return nil }
func (m *badMember) Delete(v float64) error { m.n--; return nil }
func (m *badMember) Total() float64         { return float64(m.n) }
func (m *badMember) Buckets() []histogram.Bucket {
	if m.n > 1 {
		// Overlapping buckets: fails histogram.Validate inside Superpose.
		return []histogram.Bucket{
			{Left: 0, Right: 10, Subs: []float64{1}},
			{Left: 5, Right: 15, Subs: []float64{float64(m.n - 1)}},
		}
	}
	return []histogram.Bucket{{Left: 0, Right: 10, Subs: []float64{float64(m.n)}}}
}

func TestMergeFailureKeepsLastGoodView(t *testing.T) {
	e, err := New(Config{Shards: 1}, func() (Member, error) { return &badMember{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(1); err != nil {
		t.Fatal(err)
	}
	if got := e.Total(); got != 1 {
		t.Fatalf("Total = %v, want 1", got)
	}
	if err := e.MergeErr(); err != nil {
		t.Fatalf("unexpected merge error: %v", err)
	}
	// Second insert makes the member's bucket list invalid: reads must
	// keep the last good snapshot and report the merge error.
	if err := e.Insert(2); err != nil {
		t.Fatal(err)
	}
	if got := e.Total(); got != 1 {
		t.Fatalf("Total after failed merge = %v, want last good 1", got)
	}
	if err := e.MergeErr(); err == nil {
		t.Fatal("MergeErr = nil after failed merge")
	}
	// View surfaces the merge error directly — no side-channel poll.
	if _, err := e.View(); err == nil {
		t.Fatal("View after failed merge: want error")
	}
}

// TestEngineView checks the pinned merged view: consistent statistics
// at pin time, stability under later writes, and cache reuse while no
// write lands.
func TestEngineView(t *testing.T) {
	e := mustEngine(t, Config{Shards: 4})
	for i := range 1000 {
		if err := e.Insert(float64(i % 100)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := e.View()
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Total(); got != 1000 {
		t.Fatalf("view Total = %v, want 1000", got)
	}
	v2, err := e.View()
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v {
		t.Fatal("View while no write landed: want the cached view, got a rebuild")
	}
	for i := range 500 {
		if err := e.Insert(float64(i % 100)); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.Total(); got != 1000 {
		t.Fatalf("pinned view Total moved to %v after writes, want 1000", got)
	}
	v3, err := e.View()
	if err != nil {
		t.Fatal(err)
	}
	if got := v3.Total(); got != 1500 {
		t.Fatalf("fresh view Total = %v, want 1500", got)
	}
}

// TestConcurrentStress hammers the engine with parallel writers,
// batch writers, deleters and readers; run under -race it checks the
// locking discipline, and afterwards the total must balance exactly.
func TestConcurrentStress(t *testing.T) {
	e := mustEngine(t, Config{Shards: 4})
	const (
		writers   = 4
		perWriter = 2000
	)
	var wg sync.WaitGroup
	for w := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for range perWriter {
				if err := e.Insert(float64(rng.Intn(2000))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			chunk := make([]float64, 100)
			for range perWriter / len(chunk) {
				for i := range chunk {
					chunk[i] = float64(rng.Intn(2000))
				}
				if err := e.InsertBatch(chunk); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range perWriter {
				_ = e.Total()
				_ = e.CDF(1000)
				_ = e.EstimateRange(100, 900)
				_ = e.Buckets()
				_ = e.ShardTotals()
			}
		}()
	}
	wg.Wait()
	want := float64(2 * writers * perWriter)
	if got := e.Total(); math.Abs(got-want) > 1e-3 {
		t.Fatalf("Total after stress = %v, want %v", got, want)
	}
}

// noSnapMember is a Member without the Snapshotter capability.
type noSnapMember struct{ Member }

func TestSnapshotShardsRoundTrip(t *testing.T) {
	e := mustEngine(t, Config{Shards: 4})
	rng := rand.New(rand.NewSource(11))
	for range 8000 {
		if err := e.Insert(float64(rng.Intn(1000))); err != nil {
			t.Fatal(err)
		}
	}
	blobs, err := e.SnapshotShards()
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 4 {
		t.Fatalf("got %d blobs, want 4", len(blobs))
	}
	members := make([]Member, len(blobs))
	for i, b := range blobs {
		m, err := core.RestoreDC(b)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		members[i] = m
	}
	r, err := NewFromMembers(Config{}, members)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Total(), e.Total(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("restored Total = %v, want %v", got, want)
	}
	for x := 0.0; x <= 1000; x += 50 {
		if got, want := r.CDF(x), e.CDF(x); math.Abs(got-want) > 1e-9 {
			t.Fatalf("restored CDF(%v) = %v, want %v", x, got, want)
		}
	}
	// The restored engine keeps maintaining.
	if err := r.Insert(500); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Total(), e.Total()+1; math.Abs(got-want) > 1e-6 {
		t.Fatalf("Total after insert = %v, want %v", got, want)
	}
}

func TestSnapshotShardsRequiresCapability(t *testing.T) {
	e, err := New(Config{Shards: 2}, func() (Member, error) {
		m, err := newMember()
		if err != nil {
			return nil, err
		}
		return noSnapMember{m}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SnapshotShards(); err == nil {
		t.Fatal("snapshot of non-snapshottable members accepted")
	}
}

func TestNewFromMembersRejectsBadInput(t *testing.T) {
	if _, err := NewFromMembers(Config{}, nil); err == nil {
		t.Error("empty member list accepted")
	}
	m, err := newMember()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromMembers(Config{}, []Member{m, nil}); err == nil {
		t.Error("nil member accepted")
	}
	if _, err := NewFromMembers(Config{Policy: Policy(9)}, []Member{m}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewFromMembers(Config{MergeBudget: -1}, []Member{m}); err == nil {
		t.Error("negative merge budget accepted")
	}
}
