// Package shard implements a sharded concurrent ingest engine for
// dynamic histograms. The paper's §8 superposition result says the
// union of independently maintained histograms loses no information
// relative to its members, so a histogram can be maintained as P
// shared-nothing shards — each with its own lock and its own member
// histogram — and merged losslessly whenever a read needs the global
// view.
//
// Writes stripe across the shards (by value hash or round-robin) and
// contend only on the chosen shard's lock, so P writer goroutines
// scale to P-way parallelism instead of serialising on a single
// mutex. Reads superpose the per-shard bucket lists with
// union.Superpose into a merged view that is cached under an epoch
// counter: every write bumps the epoch, and a read only pays the
// merge cost when the cached view's epoch is stale. A read-heavy
// phase therefore costs one merge, then runs lock-free off the
// cached snapshot.
package shard

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"dynahist/internal/histerr"
	"dynahist/internal/histogram"
	"dynahist/internal/union"
)

// Member is the per-shard histogram maintained by the engine. Every
// maintained histogram in this repository satisfies it.
type Member interface {
	Insert(v float64) error
	Delete(v float64) error
	Total() float64
	Buckets() []histogram.Bucket
}

// Snapshotter is the optional capability a Member implements when its
// complete maintainable state can be serialized. The engine's
// SnapshotShards uses it to checkpoint every shard.
type Snapshotter interface {
	Snapshot() ([]byte, error)
}

// BatchMember is the optional capability a Member implements when it
// has a native batch write path. InsertBatch/DeleteBatch hand each
// shard's whole group to it under one lock hold, so a member that
// amortises its own maintenance across a batch (the DVO/DADO deferred
// split-merge settle) gets to.
type BatchMember interface {
	InsertBatch(vs []float64) error
	DeleteBatch(vs []float64) error
}

// Policy selects how writes are striped across shards.
type Policy int

const (
	// ByValueHash routes each value to the shard owning its hash, so
	// all occurrences of a value live in one shard and a Delete finds
	// the shard its inserts went to. This is the default.
	ByValueHash Policy = iota
	// RoundRobin spreads writes evenly regardless of value, trading
	// delete locality for perfectly balanced shard sizes under skew.
	RoundRobin
)

// Config parameterises an Engine.
type Config struct {
	// Shards is the number of stripes; 0 defaults to GOMAXPROCS.
	Shards int
	// Policy is the striping policy (default ByValueHash).
	Policy Policy
	// MergeBudget, when positive, reduces the merged read view to at
	// most this many buckets with union.Reduce. Zero keeps the full
	// lossless superposition.
	MergeBudget int
}

// cell is one shard: a lock and its member histogram, padded so
// adjacent cells do not share a cache line and the locks do not
// false-share under write contention.
type cell struct {
	mu sync.Mutex
	m  Member
	_  [64]byte
}

// snapshot is an immutable merged view of all shards at some epoch.
// The merged state is kept as a histogram.View, so the merge pays the
// prefix-sum build once and every read off the snapshot — including
// pinned views handed to callers — runs O(log n) without copying.
type snapshot struct {
	epoch uint64
	view  *histogram.View
}

// Engine stripes writes across per-shard member histograms and serves
// reads from an epoch-cached union of their bucket lists. It is safe
// for concurrent use by any number of goroutines.
type Engine struct {
	cells  []cell
	policy Policy
	budget int

	rr    atomic.Uint64 // round-robin cursor
	epoch atomic.Uint64 // bumped on every write

	snapMu   sync.Mutex // serialises snapshot rebuilds
	snap     atomic.Pointer[snapshot]
	mergeErr atomic.Pointer[error]

	// scratch recycles the per-shard value groups of the batch paths,
	// so steady-state batch ingest routes without allocating: the
	// grouping slices keep their grown capacity between calls.
	scratch sync.Pool
}

// New builds an engine over freshly created members, one per shard.
// factory is called once per shard and must return independent
// instances.
func New(cfg Config, factory func() (Member, error)) (*Engine, error) {
	n := cfg.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", n)
	}
	if cfg.Policy != ByValueHash && cfg.Policy != RoundRobin {
		return nil, fmt.Errorf("shard: unknown policy %d", int(cfg.Policy))
	}
	if cfg.MergeBudget < 0 {
		return nil, fmt.Errorf("shard: negative merge budget %d", cfg.MergeBudget)
	}
	if factory == nil {
		return nil, errors.New("shard: nil member factory")
	}
	e := &Engine{cells: make([]cell, n), policy: cfg.Policy, budget: cfg.MergeBudget}
	for i := range e.cells {
		m, err := factory()
		if err != nil {
			return nil, fmt.Errorf("shard: member %d: %w", i, err)
		}
		if m == nil {
			return nil, fmt.Errorf("shard: member %d: factory returned nil", i)
		}
		e.cells[i].m = m
	}
	return e, nil
}

// NewFromMembers builds an engine over pre-existing members — the
// restore path of a checkpoint/recovery cycle, where each member was
// rebuilt from its own snapshot blob. The shard count is len(members)
// and overrides cfg.Shards; the engine owns the members afterwards.
func NewFromMembers(cfg Config, members []Member) (*Engine, error) {
	if len(members) == 0 {
		return nil, errors.New("shard: no members")
	}
	if cfg.Policy != ByValueHash && cfg.Policy != RoundRobin {
		return nil, fmt.Errorf("shard: unknown policy %d", int(cfg.Policy))
	}
	if cfg.MergeBudget < 0 {
		return nil, fmt.Errorf("shard: negative merge budget %d", cfg.MergeBudget)
	}
	e := &Engine{cells: make([]cell, len(members)), policy: cfg.Policy, budget: cfg.MergeBudget}
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("shard: member %d is nil", i)
		}
		e.cells[i].m = m
	}
	return e, nil
}

// NumShards returns the number of shards.
func (e *Engine) NumShards() int { return len(e.cells) }

// Policy returns the striping policy the engine was built with.
func (e *Engine) Policy() Policy { return e.policy }

// MergeBudget returns the merged-view bucket cap (0 = unlimited).
func (e *Engine) MergeBudget() int { return e.budget }

// shardOf returns the shard index for a write of v.
func (e *Engine) shardOf(v float64) int {
	if len(e.cells) == 1 {
		return 0
	}
	switch e.policy {
	case RoundRobin:
		return int(e.rr.Add(1) % uint64(len(e.cells)))
	default:
		return int(hash64(math.Float64bits(v)) % uint64(len(e.cells)))
	}
}

// hash64 is the SplitMix64 finaliser — a cheap, well-mixed integer
// hash so adjacent float bit patterns land on different shards.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Insert adds one occurrence of v to the owning shard.
func (e *Engine) Insert(v float64) error {
	c := &e.cells[e.shardOf(v)]
	c.mu.Lock()
	err := c.m.Insert(v)
	c.mu.Unlock()
	if err == nil {
		e.epoch.Add(1)
	}
	return err
}

// Delete removes one occurrence of v. Under ByValueHash the owning
// shard is tried first; if its member cannot satisfy the delete (for
// example the engine ingested via InsertBatch under RoundRobin
// earlier, or the member spilled), the remaining shards are tried in
// order so a globally present point is always removable.
func (e *Engine) Delete(v float64) error {
	start := e.shardOf(v)
	var firstErr error
	for i := range e.cells {
		c := &e.cells[(start+i)%len(e.cells)]
		c.mu.Lock()
		canDelete := c.m.Total() >= 1
		var err error
		if canDelete {
			err = c.m.Delete(v)
		}
		c.mu.Unlock()
		if canDelete && err == nil {
			e.epoch.Add(1)
			return nil
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return fmt.Errorf("shard: %w: delete from empty engine", histerr.ErrEmpty)
}

// InsertBatch adds every value in vs, grouping values by shard so
// each shard's lock is taken at most once per call, and handing each
// group to the member's own batch path when it has one. The epoch is
// bumped once for the whole batch. Returns the first member error;
// values after a failing value within the same shard are skipped,
// other shards' values are still applied.
func (e *Engine) InsertBatch(vs []float64) error {
	return e.applyBatch(vs,
		func(m Member, v float64) error { return m.Insert(v) },
		func(bm BatchMember, g []float64) error { return bm.InsertBatch(g) })
}

// DeleteBatch removes every value in vs with the same amortised
// locking as InsertBatch. Unlike Delete it does not retry other
// shards on a member miss; under ByValueHash the owning shard is the
// only shard that ever held the value's inserts.
func (e *Engine) DeleteBatch(vs []float64) error {
	return e.applyBatch(vs,
		func(m Member, v float64) error { return m.Delete(v) },
		func(bm BatchMember, g []float64) error { return bm.DeleteBatch(g) })
}

func (e *Engine) applyBatch(vs []float64, op func(Member, float64) error, batchOp func(BatchMember, []float64) error) error {
	if len(vs) == 0 {
		return nil
	}
	n := len(e.cells)
	// Group values by owning shard through pooled scratch so the
	// routing step allocates nothing once the group slices have grown.
	// The scratch travels as a *[][]float64 so no per-call local has
	// its address taken (that would heap-allocate it every call).
	p, _ := e.scratch.Get().(*[][]float64)
	if p == nil {
		p = new([][]float64)
	}
	if len(*p) != n {
		*p = make([][]float64, n)
	}
	groups := *p
	if n == 1 {
		// Single shard: route the caller's slice directly; it is
		// cleared from the scratch below so the pool never retains it.
		groups[0] = vs
	} else {
		for i := range groups {
			groups[i] = groups[i][:0]
		}
		for _, v := range vs {
			s := e.shardOf(v)
			groups[s] = append(groups[s], v)
		}
	}
	var firstErr error
	applied := false
	for s, g := range groups {
		if len(g) == 0 {
			continue
		}
		c := &e.cells[s]
		c.mu.Lock()
		if bm, ok := c.m.(BatchMember); ok {
			// The member owns the group's loop; on error some prefix of
			// the group is applied, which still invalidates the view.
			if err := batchOp(bm, g); err != nil && firstErr == nil {
				firstErr = err
			}
			applied = true
		} else {
			for _, v := range g {
				if err := op(c.m, v); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					break
				}
				applied = true
			}
		}
		c.mu.Unlock()
	}
	if n == 1 {
		groups[0] = nil
	}
	*p = groups
	e.scratch.Put(p)
	if applied {
		e.epoch.Add(1)
	}
	return firstErr
}

// view returns the current merged snapshot and the error of the merge
// attempt that produced (or failed to refresh) it, rebuilding if any
// write has landed since it was cached. The epoch is sampled before
// the per-shard bucket lists are collected, so a write that races the
// collection leaves the stored snapshot already stale and the next
// read rebuilds — the cache can lag but never sticks. On a merge
// failure the last successfully merged snapshot is returned alongside
// the error (never nil: an empty view stands in before the first
// successful merge), so callers choose between failing soft (the
// legacy read methods) and surfacing the error (View).
func (e *Engine) view() (*snapshot, error) {
	cur := e.epoch.Load()
	if s := e.snap.Load(); s != nil && s.epoch == cur {
		return s, nil
	}
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	cur = e.epoch.Load()
	if s := e.snap.Load(); s != nil && s.epoch == cur {
		return s, nil
	}
	lists := make([][]histogram.Bucket, 0, len(e.cells))
	for i := range e.cells {
		c := &e.cells[i]
		c.mu.Lock()
		bs := c.m.Buckets()
		c.mu.Unlock()
		if histogram.TotalCount(bs) > 0 {
			lists = append(lists, bs)
		}
	}
	var merged []histogram.Bucket
	var err error
	if len(lists) > 0 {
		merged, err = union.Superpose(lists...)
		if err == nil && e.budget > 0 && len(merged) > e.budget {
			merged, err = union.Reduce(merged, e.budget)
		}
	}
	var v *histogram.View
	if err == nil {
		v, err = histogram.NewView(merged, histogram.TotalCount(merged))
	}
	if err != nil {
		// A member produced an unmergeable bucket list (only possible
		// with a misbehaving user-supplied Member). Keep serving the
		// last good view rather than silently reporting an empty
		// histogram; the stale epoch stamp means the next read retries
		// the merge.
		e.mergeErr.Store(&err)
		if prev := e.snap.Load(); prev != nil {
			return prev, err
		}
		return &snapshot{epoch: cur, view: histogram.EmptyView()}, err
	}
	s := &snapshot{epoch: cur, view: v}
	e.mergeErr.Store(nil)
	e.snap.Store(s)
	return s, nil
}

// View pins the current merged state as an immutable histogram.View:
// one merge (cached under the epoch counter, so usually free) and then
// every statistic answered lock-free off the pinned snapshot. Unlike
// the fail-soft read methods it returns the merge error directly —
// callers never have to poll MergeErr after a suspicious zero answer.
func (e *Engine) View() (*histogram.View, error) {
	s, err := e.view()
	if err != nil {
		return nil, err
	}
	return s.view, nil
}

// MergeErr returns the error from the most recent failed merged-view
// rebuild, or nil if the last rebuild succeeded. While non-nil, reads
// serve the last successfully merged snapshot.
//
// Deprecated: pin the merged state with View, which returns the merge
// error directly instead of requiring this side-channel poll.
func (e *Engine) MergeErr() error {
	if p := e.mergeErr.Load(); p != nil {
		return *p
	}
	return nil
}

// read returns the merged view for the fail-soft read methods: the
// freshly merged state normally, the last good (possibly stale) state
// while a misbehaving member keeps the merge failing.
func (e *Engine) read() *histogram.View {
	s, _ := e.view()
	return s.view
}

// Total returns the point count of the merged view.
func (e *Engine) Total() float64 { return e.read().Total() }

// CDF returns the merged view's approximate fraction of mass ≤ x.
func (e *Engine) CDF(x float64) float64 { return e.read().CDF(x) }

// EstimateRange returns the merged view's approximate number of
// points with integer value in [lo, hi] inclusive.
func (e *Engine) EstimateRange(lo, hi float64) float64 {
	return e.read().EstimateRange(lo, hi)
}

// Buckets returns a deep copy of the merged view's bucket list.
func (e *Engine) Buckets() []histogram.Bucket {
	return e.read().Buckets()
}

// SnapshotShards serializes every shard's member via its Snapshotter
// capability and returns one blob per shard, in shard order. It errors
// if any member does not implement Snapshotter. Each shard is locked
// only while its own blob is taken, so the checkpoint is fuzzy under
// concurrent writes: each shard is internally consistent but the blobs
// need not correspond to one global instant — the right trade-off for
// statistics, where a checkpoint a few inserts askew is still a valid
// summary to resume from.
func (e *Engine) SnapshotShards() ([][]byte, error) {
	out := make([][]byte, len(e.cells))
	for i := range e.cells {
		c := &e.cells[i]
		c.mu.Lock()
		s, ok := c.m.(Snapshotter)
		var (
			blob []byte
			err  error
		)
		if ok {
			blob, err = s.Snapshot()
		}
		c.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("shard: member %d does not support snapshots", i)
		}
		if err != nil {
			return nil, fmt.Errorf("shard: member %d: %w", i, err)
		}
		out[i] = blob
	}
	return out, nil
}

// ShardTotals returns each shard's own point count — a balance
// diagnostic. The totals are read per-shard and may not be mutually
// consistent under concurrent writes.
func (e *Engine) ShardTotals() []float64 {
	out := make([]float64, len(e.cells))
	for i := range e.cells {
		c := &e.cells[i]
		c.mu.Lock()
		out[i] = c.m.Total()
		c.mu.Unlock()
	}
	return out
}
