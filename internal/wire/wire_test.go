package wire

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// mustEncode encodes vs, failing the test on the (impossible for
// test-sized inputs) count overflow.
func mustEncode(t *testing.T, vs []float64) []byte {
	t.Helper()
	b, err := EncodeBatch(vs)
	if err != nil {
		t.Fatalf("EncodeBatch(%d values): %v", len(vs), err)
	}
	return b
}

func TestBatchRoundTrip(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0},
		{1.5, -2.25, 3e9, 0.0001},
		make([]float64, 1000),
	}
	for _, vs := range cases {
		got, err := DecodeBatch(mustEncode(t, vs))
		if err != nil {
			t.Fatalf("round trip of %d values: %v", len(vs), err)
		}
		if len(got) != len(vs) {
			t.Fatalf("got %d values, want %d", len(got), len(vs))
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("value %d = %v, want %v", i, got[i], vs[i])
			}
		}
	}
}

func TestDecodeBatchRejectsGarbage(t *testing.T) {
	good := mustEncode(t, []float64{1, 2, 3})
	badMagic := append([]byte{}, good...)
	badMagic[0] ^= 0xff
	overCount := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(overCount[4:], 1<<30)
	nan := mustEncode(t, []float64{1, math.NaN()})
	inf := mustEncode(t, []float64{math.Inf(1)})

	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:6],
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte{}, good...), 0),
		"bad magic":   badMagic,
		"count lies":  overCount,
		"header only": good[:8],
		"NaN":         nan,
		"Inf":         inf,
	}
	for name, data := range cases {
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestAppendBatchReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	out, err := AppendBatch(buf, []float64{7})
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if &out[0] != &buf[:1][0] {
		t.Error("AppendBatch did not reuse the provided buffer")
	}
}

// TestBatchCountBoundary pins the 32-bit count-field guard: exactly
// 2^32-1 values is encodable, one more errors with ErrBatchTooLarge.
// AppendBatch used to truncate the count via uint32(len(vs)) instead,
// silently producing a body whose count field lies about its length.
func TestBatchCountBoundary(t *testing.T) {
	if err := checkBatchCount(math.MaxUint32); err != nil {
		t.Errorf("count 2^32-1: unexpected error %v", err)
	}
	if err := checkBatchCount(math.MaxUint32 + 1); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("count 2^32: got %v, want ErrBatchTooLarge", err)
	}
	// The guard is what AppendBatch actually enforces; prove the wiring
	// with a size the test can afford by checking the error path leaves
	// dst untouched on a direct call.
	dst := []byte{0xaa}
	out, err := AppendBatch(dst, []float64{1})
	if err != nil || len(out) != 1+batchHeaderSize+8 {
		t.Fatalf("AppendBatch small batch: len %d err %v", len(out), err)
	}
}

func TestDecodeBatchInto(t *testing.T) {
	vs := []float64{3, 1, 4, 1, 5}
	data := mustEncode(t, vs)

	// Sufficient capacity: the result must alias the provided buffer.
	buf := make([]float64, 0, 16)
	got, err := DecodeBatchInto(buf, data)
	if err != nil {
		t.Fatalf("DecodeBatchInto: %v", err)
	}
	if len(got) != len(vs) || &got[0] != &buf[:1][0] {
		t.Fatalf("decode did not reuse the provided buffer (len %d)", len(got))
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d = %v, want %v", i, got[i], vs[i])
		}
	}

	// Insufficient capacity: still decodes, into a fresh slice.
	got, err = DecodeBatchInto(make([]float64, 0, 2), data)
	if err != nil || len(got) != len(vs) {
		t.Fatalf("grow path: len %d err %v", len(got), err)
	}

	// Errors surface identically to DecodeBatch.
	if _, err := DecodeBatchInto(buf, data[:len(data)-1]); err == nil {
		t.Error("truncated batch: want error")
	}
}

// TestDecodeBatchIntoAllocs is the allocation gate on the decode half
// of the binary ingest spine: with a warm buffer, decoding must not
// allocate at all.
func TestDecodeBatchIntoAllocs(t *testing.T) {
	vs := make([]float64, 512)
	for i := range vs {
		vs[i] = float64(i)
	}
	data := mustEncode(t, vs)
	buf := make([]float64, 0, len(vs))
	allocs := testing.AllocsPerRun(100, func() {
		out, err := DecodeBatchInto(buf, data)
		if err != nil || len(out) != len(vs) {
			t.Fatalf("decode: len %d err %v", len(out), err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeBatchInto allocated %.1f times per call, want 0", allocs)
	}
}

func FuzzDecodeBatch(f *testing.F) {
	seed1, _ := EncodeBatch(nil)
	seed2, _ := EncodeBatch([]float64{1, 2, 3})
	f.Add(seed1)
	f.Add(seed2)
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x54, 0x42, 0x48, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		vs, err := DecodeBatch(data)
		if err != nil {
			return
		}
		// Accepted batches must round-trip bit-exactly.
		again, err := EncodeBatch(vs)
		if err != nil {
			t.Fatalf("re-encoding accepted batch: %v", err)
		}
		if len(again) != len(data) {
			t.Fatalf("re-encoded %d bytes, decoded from %d", len(again), len(data))
		}
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("decoder let non-finite value through: %v", v)
			}
		}
	})
}
