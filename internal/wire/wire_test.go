package wire

import (
	"encoding/binary"
	"math"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0},
		{1.5, -2.25, 3e9, 0.0001},
		make([]float64, 1000),
	}
	for _, vs := range cases {
		got, err := DecodeBatch(EncodeBatch(vs))
		if err != nil {
			t.Fatalf("round trip of %d values: %v", len(vs), err)
		}
		if len(got) != len(vs) {
			t.Fatalf("got %d values, want %d", len(got), len(vs))
		}
		for i := range vs {
			if got[i] != vs[i] {
				t.Fatalf("value %d = %v, want %v", i, got[i], vs[i])
			}
		}
	}
}

func TestDecodeBatchRejectsGarbage(t *testing.T) {
	good := EncodeBatch([]float64{1, 2, 3})
	badMagic := append([]byte{}, good...)
	badMagic[0] ^= 0xff
	overCount := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(overCount[4:], 1<<30)
	nan := EncodeBatch([]float64{1, math.NaN()})
	inf := EncodeBatch([]float64{math.Inf(1)})

	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:6],
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte{}, good...), 0),
		"bad magic":   badMagic,
		"count lies":  overCount,
		"header only": good[:8],
		"NaN":         nan,
		"Inf":         inf,
	}
	for name, data := range cases {
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestAppendBatchReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	out := AppendBatch(buf, []float64{7})
	if &out[0] != &buf[:1][0] {
		t.Error("AppendBatch did not reuse the provided buffer")
	}
}

func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch(nil))
	f.Add(EncodeBatch([]float64{1, 2, 3}))
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x54, 0x42, 0x48, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		vs, err := DecodeBatch(data)
		if err != nil {
			return
		}
		// Accepted batches must round-trip bit-exactly.
		again := EncodeBatch(vs)
		if len(again) != len(data) {
			t.Fatalf("re-encoded %d bytes, decoded from %d", len(again), len(data))
		}
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("decoder let non-finite value through: %v", v)
			}
		}
	})
}
