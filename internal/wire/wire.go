// Package wire defines the histserved wire formats shared by the
// server (internal/server) and the public Go client (client): the JSON
// request/response bodies of every /v1 endpoint and the length-prefixed
// binary batch format the ingest endpoints accept for high-volume
// writers.
//
// The binary batch format is deliberately minimal — a fixed header and
// a flat array of IEEE-754 doubles:
//
//	offset  size  field
//	0       4     magic 0x48425431 ("HBT1"), little-endian
//	4       4     count n, little-endian uint32
//	8       8·n   n float64 values, little-endian IEEE-754
//
// A batch must be exactly 8+8·n bytes; trailing bytes, short bodies and
// non-finite values are rejected. At ~8 bytes per value it is about 3×
// denser than the JSON encoding and needs no parsing beyond a bounds
// check, which is what makes the binary ingest path the fast one in the
// serving benchmarks.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// BatchMagic identifies a binary insert/delete batch ("HBT1").
const BatchMagic = 0x48425431

// BatchContentType is the Content-Type under which the ingest endpoints
// accept the binary batch format.
const BatchContentType = "application/x-dynahist-batch"

// batchHeaderSize is the fixed prefix: magic + count.
const batchHeaderSize = 8

// ErrBatch reports a malformed binary batch.
var ErrBatch = errors.New("wire: malformed batch")

// ErrBatchTooLarge reports a batch whose value count does not fit the
// format's 32-bit count field. Encoding such a batch used to silently
// truncate the count to uint32 and produce a body the decoder rejects;
// now the encoder refuses it up front.
var ErrBatchTooLarge = errors.New("wire: batch exceeds 2^32-1 values")

// AppendBatch appends the binary batch encoding of vs to dst and
// returns the extended slice. It errors with ErrBatchTooLarge when
// len(vs) does not fit the format's 32-bit count field (in which case
// dst is returned unmodified).
func AppendBatch(dst []byte, vs []float64) ([]byte, error) {
	if err := checkBatchCount(len(vs)); err != nil {
		return dst, err
	}
	dst = binary.LittleEndian.AppendUint32(dst, BatchMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst, nil
}

// checkBatchCount is AppendBatch's count-field guard, factored out so
// the 2^32 boundary is testable without allocating a 32 GiB slice.
func checkBatchCount(n int) error {
	if uint64(n) > math.MaxUint32 {
		return fmt.Errorf("%w: %d values", ErrBatchTooLarge, n)
	}
	return nil
}

// EncodeBatch returns the binary batch encoding of vs; see AppendBatch
// for the count-field limit.
func EncodeBatch(vs []float64) ([]byte, error) {
	return AppendBatch(make([]byte, 0, batchHeaderSize+8*len(vs)), vs)
}

// DecodeBatch parses a binary batch, rejecting bad magic, truncated or
// oversized bodies, count mismatches and non-finite values.
func DecodeBatch(data []byte) ([]float64, error) {
	return DecodeBatchInto(nil, data)
}

// DecodeBatchInto parses a binary batch like DecodeBatch but decodes
// into dst's backing array, growing it only when the batch exceeds its
// capacity — the allocation-free form for callers that recycle their
// decode buffers (the server's binary ingest path). It returns the
// filled slice, which aliases dst when capacity sufficed; dst's
// previous contents are discarded. On error the returned slice is nil.
func DecodeBatchInto(dst []float64, data []byte) ([]float64, error) {
	if len(data) < batchHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrBatch, len(data), batchHeaderSize)
	}
	if magic := binary.LittleEndian.Uint32(data); magic != BatchMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBatch, magic)
	}
	n := binary.LittleEndian.Uint32(data[4:])
	if want := batchHeaderSize + 8*uint64(n); uint64(len(data)) != want {
		return nil, fmt.Errorf("%w: count %d implies %d bytes, got %d", ErrBatch, n, want, len(data))
	}
	var vs []float64
	if uint64(cap(dst)) >= uint64(n) {
		vs = dst[:n]
	} else {
		vs = make([]float64, n)
	}
	for i := range vs {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[batchHeaderSize+8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite value at index %d", ErrBatch, i)
		}
		vs[i] = v
	}
	return vs, nil
}

// CreateRequest is the body of POST /v1/h.
type CreateRequest struct {
	// Name identifies the histogram; letters, digits, '_', '-' and '.',
	// at most 128 bytes.
	Name string `json:"name"`
	// Family is one of "dado", "dvo", "dc" or "ac".
	Family string `json:"family"`
	// MemBytes is the per-shard memory budget under the paper's space
	// accounting. Zero defaults to 1024.
	MemBytes int `json:"mem_bytes,omitempty"`
	// Shards is the write-striping factor. Zero defaults to GOMAXPROCS.
	Shards int `json:"shards,omitempty"`
	// Seed seeds the reservoir of the "ac" family; ignored otherwise.
	Seed int64 `json:"seed,omitempty"`
}

// Info describes one registered histogram; returned by create, get and
// list.
type Info struct {
	Name     string  `json:"name"`
	Family   string  `json:"family"`
	MemBytes int     `json:"mem_bytes"`
	Shards   int     `json:"shards"`
	Total    float64 `json:"total"`
}

// ListResponse is the body of GET /v1/h.
type ListResponse struct {
	Histograms []Info `json:"histograms"`
}

// ValuesRequest is the JSON body of POST /v1/h/{name}/insert and
// /delete.
type ValuesRequest struct {
	Values []float64 `json:"values"`
}

// UpdateResponse reports how many values an ingest call applied.
type UpdateResponse struct {
	Applied int     `json:"applied"`
	Total   float64 `json:"total"`
	// LSN is the write-ahead-log sequence number the batch was logged
	// under — present (non-zero) only when the server runs with durable
	// ingest enabled. When set, Total may lag the batch: the ack means
	// the batch is durable, and the background digester folds it into
	// the histogram asynchronously.
	LSN uint64 `json:"lsn,omitempty"`
	// DigestedLSN is the WAL position the background digester had folded
	// into the in-memory histogram at ack time (durable-ingest servers
	// only). The acked batch is durable at LSN but only reflected in
	// reads once DigestedLSN reaches it, so a caller can distinguish
	// "acked durable" (LSN assigned) from "folded into the histogram"
	// (DigestedLSN ≥ LSN) instead of guessing from a lagging Total.
	DigestedLSN uint64 `json:"digested_lsn,omitempty"`
}

// WALStatusResponse is the body of GET /v1/wal/status: the durable
// ingest watermarks. AppendedLSN counts records acked, DigestedLSN
// records folded into the in-memory histograms, CheckpointLSN records
// covered by the last catalog snapshot (everything past it replays on
// restart). Lag = appended - digested.
type WALStatusResponse struct {
	Enabled       bool   `json:"enabled"`
	Dir           string `json:"dir,omitempty"`
	SyncPolicy    string `json:"sync_policy,omitempty"`
	AppendedLSN   uint64 `json:"appended_lsn"`
	DigestedLSN   uint64 `json:"digested_lsn"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	LagRecords    uint64 `json:"lag_records"`
	// DigestLag duplicates LagRecords under the name the stats plane
	// uses: appended LSN minus digested LSN, the number a
	// read-your-writes poller watches go to zero. Kept alongside
	// LagRecords so existing consumers of that field keep working.
	DigestLag          uint64 `json:"digest_lag"`
	Segments           int    `json:"segments"`
	ActiveSegmentBytes int64  `json:"active_segment_bytes"`
	TotalBytes         int64  `json:"total_bytes"`
}

// TotalResponse is the body of GET /v1/h/{name}/total.
type TotalResponse struct {
	Total float64 `json:"total"`
}

// CDFResponse is the body of GET /v1/h/{name}/cdf.
type CDFResponse struct {
	X   float64 `json:"x"`
	CDF float64 `json:"cdf"`
}

// QuantileResponse is the body of GET /v1/h/{name}/quantile.
type QuantileResponse struct {
	Q     float64 `json:"q"`
	Value float64 `json:"value"`
}

// RangeResponse is the body of GET /v1/h/{name}/range.
type RangeResponse struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count float64 `json:"count"`
}

// RangeQuery is one inclusive integer-value range [lo, hi] inside a
// QueryRequest.
type RangeQuery struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// QueryRequest is the body of POST /v1/h/{name}/query: a batch of
// statistics answered from one pinned view of the histogram, in one
// round trip. Every field is optional; the response always carries the
// total.
type QueryRequest struct {
	// Quantiles are q arguments, each in (0, 1].
	Quantiles []float64 `json:"quantiles,omitempty"`
	// CDF are the x arguments of CDF curve points.
	CDF []float64 `json:"cdf,omitempty"`
	// PDF are the x arguments of density points.
	PDF []float64 `json:"pdf,omitempty"`
	// Ranges are inclusive integer-value range-count queries.
	Ranges []RangeQuery `json:"ranges,omitempty"`
	// Buckets asks for the pinned bucket list itself.
	Buckets bool `json:"buckets,omitempty"`
}

// QueryResponse is the body of POST /v1/h/{name}/query: one answer per
// corresponding request argument, in order, all evaluated against the
// same pinned view (no write lands between the total and the
// statistics it normalises).
type QueryResponse struct {
	Total     float64   `json:"total"`
	Quantiles []float64 `json:"quantiles,omitempty"`
	CDF       []float64 `json:"cdf,omitempty"`
	PDF       []float64 `json:"pdf,omitempty"`
	Ranges    []float64 `json:"ranges,omitempty"`
	Buckets   []Bucket  `json:"buckets,omitempty"`
}

// Bucket is the JSON form of one histogram bucket.
type Bucket struct {
	Left     float64   `json:"left"`
	Right    float64   `json:"right"`
	Counters []float64 `json:"counters"`
}

// BucketsResponse is the body of GET /v1/h/{name}/buckets.
type BucketsResponse struct {
	Buckets []Bucket `json:"buckets"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Multi-node serving (paper §8: any site's histogram unions losslessly
// into a global one). A peer-role server exposes its histograms as
// compact snapshot envelopes instead of raw data; readers scatter-gather
// the envelopes and superpose them, and peers anti-entropy each other's
// catalogs so a rejoining site catches up without re-ingesting.

// EnvelopeContentType is the Content-Type under which the per-histogram
// envelope endpoint (GET /v1/h/{name}/envelope) serves the
// self-describing dynahist snapshot blob.
const EnvelopeContentType = "application/x-dynahist-envelope"

// SiteEntryContentType is the Content-Type under which the anti-entropy
// entry endpoint (GET /v1/sites/entry) serves a catalog-entry blob —
// the server-to-server replication unit (snapshot envelope plus the
// entry's identity and configuration).
const SiteEntryContentType = "application/x-dynahist-catalog-entry"

// Envelope response headers: the metadata riding beside a binary
// envelope or catalog-entry body.
const (
	// HeaderSite is the ID of the site whose data the blob summarises.
	HeaderSite = "X-Dynahist-Site"
	// HeaderWatermark is the origin site's covered watermark at snapshot
	// time: a monotonic per-site counter (the WAL digested LSN on
	// durable servers) saying how much ingest the blob already contains.
	HeaderWatermark = "X-Dynahist-Watermark"
	// HeaderTotal is the summarised point count at snapshot time.
	HeaderTotal = "X-Dynahist-Total"
)

// FeedbackRequest is the body of POST /v1/h/{name}/feedback: one unit
// of query feedback for the self-tuning loop. The executed predicate
// covered the inclusive integer range [lo, hi] (the EstimateRange
// convention) and actually matched observed points; the server pairs
// it with its own current estimate and journals the record.
type FeedbackRequest struct {
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	Observed float64 `json:"observed"`
}

// FeedbackResponse reports what one feedback record did: the estimate
// the serving view gave before the record was journaled, the estimate
// after (the next query's answer), and the journal state.
type FeedbackResponse struct {
	Name     string  `json:"name"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	Observed float64 `json:"observed"`
	// Estimated is the tuned view's range estimate before this record.
	Estimated float64 `json:"estimated"`
	// TunedEstimate is the range estimate after the record applied.
	TunedEstimate float64 `json:"tuned_estimate"`
	// JournalLen and Rounds describe the entry's feedback journal:
	// records currently retained, and records ever observed.
	JournalLen int    `json:"journal_len"`
	Rounds     uint64 `json:"rounds"`
}

// SiteEntriesContentType is the Content-Type under which the batch
// anti-entropy endpoint (GET /v1/sites/entries) serves many
// catalog-entry blobs in one framed body.
const SiteEntriesContentType = "application/x-dynahist-catalog-entries"

// siteEntriesMagic identifies a batched catalog-entry body ("HSE1").
const siteEntriesMagic = 0x48534531

// ErrSiteEntries reports a malformed batched catalog-entry body.
var ErrSiteEntries = errors.New("wire: malformed site-entries batch")

// SiteEntryBlob is one item of a batched catalog-entry response: a
// histogram's catalog-entry blob plus the watermark it was served at.
// The site is constant per response (it rides in HeaderSite).
type SiteEntryBlob struct {
	Name      string
	Watermark uint64
	Data      []byte
}

// EncodeSiteEntries frames many catalog-entry blobs into one body:
//
//	u32 magic "HSE1", u32 count, then per item
//	u16 name length + name bytes, u64 watermark,
//	u32 blob length + blob bytes
//
// — one round trip where the per-entry endpoint needs one per
// histogram.
func EncodeSiteEntries(items []SiteEntryBlob) []byte {
	size := 8
	for _, it := range items {
		size += 2 + len(it.Name) + 8 + 4 + len(it.Data)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, siteEntriesMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(items)))
	for _, it := range items {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(it.Name)))
		out = append(out, it.Name...)
		out = binary.LittleEndian.AppendUint64(out, it.Watermark)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(it.Data)))
		out = append(out, it.Data...)
	}
	return out
}

// DecodeSiteEntries parses an EncodeSiteEntries body, rejecting bad
// magic, truncated items and trailing bytes. The returned Data slices
// alias the input.
func DecodeSiteEntries(data []byte) ([]SiteEntryBlob, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: %d bytes", ErrSiteEntries, len(data))
	}
	if magic := binary.LittleEndian.Uint32(data); magic != siteEntriesMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrSiteEntries, magic)
	}
	n := binary.LittleEndian.Uint32(data[4:])
	// Each item needs at least its fixed 14 bytes of framing.
	if uint64(n) > uint64(len(data))/14 {
		return nil, fmt.Errorf("%w: implausible count %d in %d bytes", ErrSiteEntries, n, len(data))
	}
	items := make([]SiteEntryBlob, 0, n)
	off := 8
	for i := uint32(0); i < n; i++ {
		if off+2 > len(data) {
			return nil, fmt.Errorf("%w: truncated item %d", ErrSiteEntries, i)
		}
		nameLen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+nameLen+12 > len(data) {
			return nil, fmt.Errorf("%w: truncated item %d", ErrSiteEntries, i)
		}
		name := string(data[off : off+nameLen])
		off += nameLen
		wm := binary.LittleEndian.Uint64(data[off:])
		off += 8
		blobLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if blobLen < 0 || off+blobLen > len(data) {
			return nil, fmt.Errorf("%w: truncated blob in item %d", ErrSiteEntries, i)
		}
		items = append(items, SiteEntryBlob{Name: name, Watermark: wm, Data: data[off : off+blobLen]})
		off += blobLen
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSiteEntries, len(data)-off)
	}
	return items, nil
}

// SiteEntry is one row of a peer's anti-entropy catalog: a histogram
// held at the serving node — authoritative when Site is the node's own
// site ID, a replica otherwise — with the covered watermark a puller
// compares against its own copy.
type SiteEntry struct {
	Site      string  `json:"site"`
	Name      string  `json:"name"`
	Watermark uint64  `json:"watermark"`
	Total     float64 `json:"total"`
}

// Observability (GET /v1/stats): the structured-JSON face of the
// metrics plane. The same state is exposed in Prometheus text form at
// GET /metrics; both are enabled by `histserved -metrics`. Latency and
// size quantiles are estimated by internal/obs trackers — DADO dynamic
// histograms under a small bucket budget — at 0.5/0.9/0.99.

// EndpointStats is one route's HTTP serving statistics.
type EndpointStats struct {
	Requests uint64 `json:"requests"`
	InFlight int64  `json:"in_flight"`
	// Latency quantiles in seconds.
	LatencyP50 float64 `json:"latency_p50_seconds"`
	LatencyP90 float64 `json:"latency_p90_seconds"`
	LatencyP99 float64 `json:"latency_p99_seconds"`
	// Status counts responses by class ("2xx", "4xx", …); classes with
	// no responses are absent.
	Status map[string]uint64 `json:"status,omitempty"`
}

// CacheStats describes the epoch-keyed query cache.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	StalePuts uint64 `json:"stale_puts"`
	Evictions uint64 `json:"evictions"`
	// HitRatio is hits / (hits + misses); 0 before any lookup.
	HitRatio float64 `json:"hit_ratio"`
}

// WALStats describes the durable-ingest pipeline; zero-valued with
// Enabled false on servers running without a WAL.
type WALStats struct {
	Enabled     bool   `json:"enabled"`
	AppendedLSN uint64 `json:"appended_lsn"`
	DigestedLSN uint64 `json:"digested_lsn"`
	// DigestLag is appended minus digested: acked records not yet
	// folded into the in-memory histograms.
	DigestLag uint64 `json:"digest_lag"`
	Fsyncs    uint64 `json:"fsyncs"`
	Rotations uint64 `json:"rotations"`
}

// PeerSyncStats is one peer's anti-entropy health.
type PeerSyncStats struct {
	Peer     string `json:"peer"`
	Failures uint64 `json:"failures"`
	// BackoffSeconds is the current retry delay; 0 when the peer is
	// healthy.
	BackoffSeconds float64 `json:"backoff_seconds"`
}

// AntiEntropyStats describes the peer-sync loop.
type AntiEntropyStats struct {
	Rounds     uint64 `json:"rounds"`
	Adopted    uint64 `json:"adopted"`
	Replicated uint64 `json:"replicated"`
	Skipped    uint64 `json:"skipped"`
	// FallbackPulls counts rows pulled one at a time after an
	// incomplete batch fetch.
	FallbackPulls uint64          `json:"fallback_pulls"`
	Peers         []PeerSyncStats `json:"peers,omitempty"`
}

// TuningStats describes the feedback plane.
type TuningStats struct {
	Enabled bool   `json:"enabled"`
	Applied uint64 `json:"applied"`
	// Clamped counts records whose bounded adjustment left the tuned
	// estimate more than max(1, 1% of observed) away from the observed
	// count — feedback the tuner could not fully absorb.
	Clamped uint64 `json:"clamped"`
}

// IngestStats describes the ingest batch-size distribution.
type IngestStats struct {
	Batches uint64 `json:"batches"`
	// Values is the total number of values ingested across batches.
	Values   float64 `json:"values"`
	BatchP50 float64 `json:"batch_p50"`
	BatchP90 float64 `json:"batch_p90"`
	BatchP99 float64 `json:"batch_p99"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	SiteID        string                   `json:"site_id,omitempty"`
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Histograms    int                      `json:"histograms"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	Cache         CacheStats               `json:"cache"`
	WAL           WALStats                 `json:"wal"`
	AntiEntropy   AntiEntropyStats         `json:"anti_entropy"`
	Tuning        TuningStats              `json:"tuning"`
	Ingest        IngestStats              `json:"ingest"`
}

// SiteCatalogResponse is the body of GET /v1/sites/catalog: the serving
// node's site identity and everything it can hand to a peer — its own
// histograms plus the peer replicas it holds. Watermark is the node's
// current own-site watermark; a puller prunes its replicas of this
// site only for entries absent here AND covered by this watermark, so
// a freshly rejoined (empty, watermark-zero) node never triggers
// pruning of the very replicas it is about to adopt.
type SiteCatalogResponse struct {
	SiteID    string      `json:"site_id"`
	Watermark uint64      `json:"watermark"`
	Peers     []string    `json:"peers,omitempty"`
	Entries   []SiteEntry `json:"entries"`
}
