package union

import (
	"testing"

	"dynahist/internal/histogram"
)

func benchMembers(b *testing.B) [][]histogram.Bucket {
	b.Helper()
	var members [][]histogram.Bucket
	for s := range 8 {
		var m []histogram.Bucket
		for i := range 64 {
			l := float64(s*40 + i*10)
			m = append(m, histogram.Bucket{Left: l, Right: l + 10, Subs: []float64{float64(i%7 + 1)}})
		}
		members = append(members, m)
	}
	return members
}

func BenchmarkSuperpose(b *testing.B) {
	members := benchMembers(b)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := Superpose(members...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReduce(b *testing.B) {
	members := benchMembers(b)
	u, err := Superpose(members...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := Reduce(u, 32); err != nil {
			b.Fatal(err)
		}
	}
}
