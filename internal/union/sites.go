package union

import (
	"errors"
	"math/rand"

	"dynahist/internal/dist"
	"dynahist/internal/distgen"
)

// SitesConfig parameterises the shared-nothing population of paper §8:
// NSites union members, each holding Zipf(ZFreq)-distributed data over
// a uniformly random sub-range of the domain, with member sizes drawn
// from Zipf(ZSite).
type SitesConfig struct {
	// Sites is the number of union members (paper default 5).
	Sites int
	// TotalPoints is the total data volume across all members.
	TotalPoints int
	// Domain is the global attribute domain [0, Domain].
	Domain int
	// ZFreq skews the value frequencies within each member (default 1).
	ZFreq float64
	// ZSite skews the data volume across members (default 0 = equal).
	ZSite float64
	// DistinctPerSite bounds the distinct values a member draws inside
	// its sub-range.
	DistinctPerSite int
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultSites returns the paper's default §8 configuration.
func DefaultSites(seed int64) SitesConfig {
	return SitesConfig{
		Sites:           5,
		TotalPoints:     100000,
		Domain:          5000,
		ZFreq:           1,
		ZSite:           0,
		DistinctPerSite: 200,
		Seed:            seed,
	}
}

// GenerateSites returns one exact distribution tracker per site plus
// the union of all of them.
func GenerateSites(cfg SitesConfig) (sites []*dist.Tracker, all *dist.Tracker, err error) {
	if cfg.Sites < 1 {
		return nil, nil, errors.New("union: Sites < 1")
	}
	if cfg.TotalPoints < cfg.Sites {
		return nil, nil, errors.New("union: fewer points than sites")
	}
	if cfg.Domain < 1 {
		return nil, nil, errors.New("union: Domain < 1")
	}
	if cfg.DistinctPerSite < 1 {
		return nil, nil, errors.New("union: DistinctPerSite < 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	siteWeights := distgen.ZipfWeights(cfg.Sites, cfg.ZSite)
	rng.Shuffle(len(siteWeights), func(i, j int) {
		siteWeights[i], siteWeights[j] = siteWeights[j], siteWeights[i]
	})
	siteSizes := apportionInts(cfg.TotalPoints, siteWeights)

	all = dist.New(cfg.Domain)
	for s := range cfg.Sites {
		tr := dist.New(cfg.Domain)
		// Uniformly random sub-range of the domain, at least wide enough
		// for the distinct budget.
		a := rng.Intn(cfg.Domain + 1)
		b := rng.Intn(cfg.Domain + 1)
		if a > b {
			a, b = b, a
		}
		if b-a+1 < cfg.DistinctPerSite {
			b = a + cfg.DistinctPerSite - 1
			if b > cfg.Domain {
				b = cfg.Domain
				a = b - cfg.DistinctPerSite + 1
				if a < 0 {
					a = 0
				}
			}
		}
		width := b - a + 1
		distinct := cfg.DistinctPerSite
		if distinct > width {
			distinct = width
		}
		// Distinct values spread evenly over the sub-range; Zipf(ZFreq)
		// frequencies assigned in shuffled order.
		values := make([]int, distinct)
		for i := range values {
			values[i] = a + i*width/distinct
		}
		weights := distgen.ZipfWeights(distinct, cfg.ZFreq)
		rng.Shuffle(len(weights), func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
		counts := apportionInts(siteSizes[s], weights)
		for i, v := range values {
			for range counts[i] {
				if err := tr.Insert(v); err != nil {
					return nil, nil, err
				}
				if err := all.Insert(v); err != nil {
					return nil, nil, err
				}
			}
		}
		sites = append(sites, tr)
	}
	return sites, all, nil
}

// apportionInts distributes total across weights with largest-remainder
// rounding (shares sum exactly to total).
func apportionInts(total int, weights []float64) []int {
	shares := make([]int, len(weights))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(weights))
	given := 0
	for i, w := range weights {
		exact := w * float64(total)
		shares[i] = int(exact)
		given += shares[i]
		rems[i] = rem{i, exact - float64(shares[i])}
	}
	for given < total {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i].frac > rems[best].frac {
				best = i
			}
		}
		shares[rems[best].idx]++
		rems[best].frac = -1
		given++
	}
	return shares
}
