// Package union implements global histogram construction in a
// shared-nothing environment (paper §8): lossless superposition of
// member histograms, SSBM-style reduction of the superposed histogram
// back to a memory budget, and the site-population generator behind
// Figs. 20–23.
package union

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"dynahist/internal/histogram"
)

// ErrNoMembers is returned when superposing an empty member list.
var ErrNoMembers = errors.New("union: no member histograms")

// Superpose builds the union histogram of the members: the result has
// a bucket border wherever any member has one, and each interval's
// count is the sum of the members' estimated mass inside it. As the
// paper notes, this loses no information relative to the members — the
// union histogram's CDF is the (weighted) sum of the member CDFs.
// Intervals where every member estimates zero mass are dropped,
// preserving empty gaps.
func Superpose(members ...[]histogram.Bucket) ([]histogram.Bucket, error) {
	if len(members) == 0 {
		return nil, ErrNoMembers
	}
	// primary marks borders that are actual bucket edges (Left/Right) as
	// opposed to recomputed sub-bucket borders: when near-equal borders
	// are deduplicated below, a primary border wins, so member bucket
	// edges survive the union bit-exactly.
	borderSet := map[float64]struct{}{}
	primary := map[float64]bool{}
	for _, m := range members {
		if err := histogram.Validate(m); err != nil {
			return nil, fmt.Errorf("union: invalid member: %w", err)
		}
		for i := range m {
			borderSet[m[i].Left] = struct{}{}
			borderSet[m[i].Right] = struct{}{}
			primary[m[i].Left] = true
			primary[m[i].Right] = true
			// Sub-bucket borders carry information too; keep them so the
			// superposition stays lossless for DVO/DADO members.
			k := len(m[i].Subs)
			for j := 1; j < k; j++ {
				borderSet[m[i].Left+m[i].Width()*float64(j)/float64(k)] = struct{}{}
			}
		}
	}
	borders := make([]float64, 0, len(borderSet))
	for b := range borderSet {
		borders = append(borders, b)
	}
	sort.Float64s(borders)
	borders = dedupeBorders(borders, primary)
	if len(borders) < 2 {
		return nil, errors.New("union: members have no extent")
	}

	var out []histogram.Bucket
	for i := 0; i+1 < len(borders); i++ {
		lo, hi := borders[i], borders[i+1]
		mass := 0.0
		for _, m := range members {
			mass += histogram.MassBelow(m, hi) - histogram.MassBelow(m, lo)
		}
		if mass <= 0 {
			continue
		}
		out = append(out, histogram.Bucket{Left: lo, Right: hi, Subs: []float64{mass}})
	}
	if len(out) == 0 {
		return nil, errors.New("union: members are all empty")
	}
	return out, nil
}

// borderEps is the relative tolerance under which two borders are the
// same logical border. Sub-bucket borders are recomputed per member as
// Left + Width·j/k, so the same logical border derived from two members
// can disagree in the last few bits; without deduplication those
// near-duplicates become sliver buckets in the superposed result.
// 1e-12 is ~4 decimal orders above double-precision rounding yet far
// below any genuine sub-bucket width (≥ 1/k of a real bucket).
const borderEps = 1e-12

// dedupeBorders coalesces runs of near-equal sorted borders into one
// representative each, preferring a primary (actual bucket edge) value
// over a recomputed sub-border. Runs are anchored at their first
// element: b joins the run of anchor a when b−a ≤ borderEps·scale(a,b).
func dedupeBorders(borders []float64, primary map[float64]bool) []float64 {
	out := borders[:0]
	for i := 0; i < len(borders); {
		anchor := borders[i]
		rep, haveRep := anchor, primary[anchor]
		j := i + 1
		for j < len(borders) {
			b := borders[j]
			scale := math.Max(math.Abs(anchor), math.Abs(b))
			if b-anchor > borderEps*scale {
				break
			}
			if !haveRep && primary[b] {
				rep, haveRep = b, true
			}
			j++
		}
		out = append(out, rep)
		i = j
	}
	return out
}

// Reduce merges the bucket list down to at most n buckets by repeatedly
// merging the adjacent pair with the smallest merged variance — the
// SSBM technique applied to an already-bucketised distribution ("treat
// the histogram as a data set to be partitioned", §8).
func Reduce(buckets []histogram.Bucket, n int) ([]histogram.Bucket, error) {
	if n < 1 {
		return nil, errors.New("union: reduce budget < 1")
	}
	if err := histogram.Validate(buckets); err != nil {
		return nil, err
	}
	d := len(buckets)
	if d <= n {
		return histogram.CloneBuckets(buckets), nil
	}

	groups := make([]group, d)
	for i := range buckets {
		b := &buckets[i]
		g := group{left: b.Left, right: b.Right, prev: i - 1, next: i + 1, alive: true}
		k := len(b.Subs)
		subW := b.Width() / float64(k)
		for _, c := range b.Subs {
			g.mass += c
			if subW > 0 {
				dens := c / subW
				g.e2 += subW * dens * dens
			}
		}
		groups[i] = g
	}
	groups[d-1].next = -1

	h := &groupHeap{}
	heap.Init(h)
	for i := 0; i+1 < d; i++ {
		heap.Push(h, groupEntry{cost: mergedGroupCost(&groups[i], &groups[i+1]), left: i})
	}
	alive := d
	for alive > n && h.Len() > 0 {
		e := heap.Pop(h).(groupEntry)
		l := e.left
		if !groups[l].alive || groups[l].version != e.lv {
			continue
		}
		r := groups[l].next
		if r < 0 || groups[r].version != e.rv {
			continue
		}
		groups[l].right = groups[r].right
		groups[l].mass += groups[r].mass
		groups[l].e2 += groups[r].e2
		groups[l].version++
		groups[r].alive = false
		groups[l].next = groups[r].next
		if groups[l].next >= 0 {
			groups[groups[l].next].prev = l
		}
		alive--
		if p := groups[l].prev; p >= 0 {
			heap.Push(h, groupEntry{
				cost: mergedGroupCost(&groups[p], &groups[l]),
				left: p, lv: groups[p].version, rv: groups[l].version,
			})
		}
		if nx := groups[l].next; nx >= 0 {
			heap.Push(h, groupEntry{
				cost: mergedGroupCost(&groups[l], &groups[nx]),
				left: l, lv: groups[l].version, rv: groups[nx].version,
			})
		}
	}

	out := make([]histogram.Bucket, 0, n)
	for i := 0; i >= 0; i = groups[i].next {
		g := &groups[i]
		out = append(out, histogram.Bucket{Left: g.left, Right: g.right, Subs: []float64{g.mass}})
	}
	return out, nil
}

// group aggregates a run of merged buckets: its span, its mass, and
// Σ len·density² over the covered intervals (gaps contribute width but
// no density), which is all the merged-variance formula needs.
type group struct {
	left, right float64
	mass        float64
	e2          float64
	prev, next  int
	version     int
	alive       bool
}

// mergedGroupCost is the variance of the merged density profile around
// the merged mean: Σ len·(d − μ)² = e2 − W·μ².
func mergedGroupCost(a, b *group) float64 {
	w := b.right - a.left
	if w <= 0 {
		return 0
	}
	mean := (a.mass + b.mass) / w
	c := a.e2 + b.e2 - w*mean*mean
	if c < 0 {
		return 0
	}
	return c
}

type groupEntry struct {
	cost   float64
	left   int
	lv, rv int
}

type groupHeap []groupEntry

func (h groupHeap) Len() int           { return len(h) }
func (h groupHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h groupHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *groupHeap) Push(x any)        { *h = append(*h, x.(groupEntry)) }
func (h *groupHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// CDFOf returns the normalised CDF of a bucket list.
func CDFOf(buckets []histogram.Bucket) func(float64) float64 {
	total := histogram.TotalCount(buckets)
	return func(x float64) float64 {
		if total <= 0 {
			return 0
		}
		return histogram.MassBelow(buckets, x) / total
	}
}
