package union

import (
	"math"
	"testing"
	"testing/quick"

	"dynahist/internal/histogram"
	"dynahist/internal/metric"
	"dynahist/internal/static"
)

func TestSuperposeErrors(t *testing.T) {
	if _, err := Superpose(); err == nil {
		t.Error("no members: want error")
	}
	bad := []histogram.Bucket{{Left: 5, Right: 1, Subs: []float64{1}}}
	if _, err := Superpose(bad); err == nil {
		t.Error("invalid member: want error")
	}
	empty := []histogram.Bucket{{Left: 0, Right: 1, Subs: []float64{0}}}
	if _, err := Superpose(empty); err == nil {
		t.Error("all-empty members: want error")
	}
}

func TestSuperposeIsLossless(t *testing.T) {
	// The union CDF must equal the weighted sum of member CDFs at every
	// point (paper §8: "this process does not involve any loss of
	// information").
	m1 := []histogram.Bucket{
		{Left: 0, Right: 10, Subs: []float64{4, 6}},
		{Left: 10, Right: 20, Subs: []float64{10}},
	}
	m2 := []histogram.Bucket{
		{Left: 5, Right: 15, Subs: []float64{8}},
		{Left: 30, Right: 40, Subs: []float64{2}},
	}
	u, err := Superpose(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if err := histogram.Validate(u); err != nil {
		t.Fatal(err)
	}
	total := histogram.TotalCount(u)
	if math.Abs(total-30) > 1e-9 {
		t.Fatalf("union mass %v, want 30", total)
	}
	for x := -1.0; x <= 45; x += 0.25 {
		want := histogram.MassBelow(m1, x) + histogram.MassBelow(m2, x)
		got := histogram.MassBelow(u, x)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("superposition lossy at %v: %v vs %v", x, got, want)
		}
	}
}

func TestSuperposePreservesGaps(t *testing.T) {
	m1 := []histogram.Bucket{{Left: 0, Right: 5, Subs: []float64{5}}}
	m2 := []histogram.Bucket{{Left: 100, Right: 105, Subs: []float64{5}}}
	u, err := Superpose(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range u {
		if b.Left >= 5 && b.Right <= 100 {
			t.Errorf("zero-mass gap bucket [%v,%v) should have been dropped", b.Left, b.Right)
		}
	}
}

func TestReduceBudget(t *testing.T) {
	var members [][]histogram.Bucket
	for s := range 4 {
		var m []histogram.Bucket
		for i := range 10 {
			l := float64(s*100 + i*10)
			m = append(m, histogram.Bucket{Left: l, Right: l + 10, Subs: []float64{float64(i + 1)}})
		}
		members = append(members, m)
	}
	u, err := Superpose(members...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Reduce(u, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 8 {
		t.Fatalf("reduced to %d buckets, want 8", len(r))
	}
	if math.Abs(histogram.TotalCount(r)-histogram.TotalCount(u)) > 1e-9 {
		t.Fatal("reduce lost mass")
	}
	if err := histogram.Validate(r); err != nil {
		t.Fatal(err)
	}
	// Reducing to a budget ≥ current count is a no-op copy.
	same, err := Reduce(u, len(u)+5)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != len(u) {
		t.Fatal("over-budget reduce should keep all buckets")
	}
	if _, err := Reduce(u, 0); err == nil {
		t.Error("budget 0: want error")
	}
}

func TestReducePrefersSimilarNeighbours(t *testing.T) {
	// Three buckets: two identical densities and one very different;
	// reducing to 2 must merge the identical pair.
	u := []histogram.Bucket{
		{Left: 0, Right: 10, Subs: []float64{10}},
		{Left: 10, Right: 20, Subs: []float64{10}},
		{Left: 20, Right: 30, Subs: []float64{500}},
	}
	r, err := Reduce(u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 {
		t.Fatalf("got %d buckets", len(r))
	}
	if r[0].Right != 20 || math.Abs(r[0].Count()-20) > 1e-9 {
		t.Errorf("expected [0,20) merged pair, got [%v,%v) count %v", r[0].Left, r[0].Right, r[0].Count())
	}
}

func TestGenerateSitesBasics(t *testing.T) {
	cfg := DefaultSites(1)
	cfg.TotalPoints = 5000
	sites, all, err := GenerateSites(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != cfg.Sites {
		t.Fatalf("got %d sites", len(sites))
	}
	var sum int64
	for _, s := range sites {
		sum += s.Total()
	}
	if sum != int64(cfg.TotalPoints) || all.Total() != int64(cfg.TotalPoints) {
		t.Fatalf("site totals %d / union %d, want %d", sum, all.Total(), cfg.TotalPoints)
	}
}

func TestGenerateSitesValidation(t *testing.T) {
	bad := []SitesConfig{
		{Sites: 0, TotalPoints: 10, Domain: 10, DistinctPerSite: 1},
		{Sites: 5, TotalPoints: 2, Domain: 10, DistinctPerSite: 1},
		{Sites: 2, TotalPoints: 10, Domain: 0, DistinctPerSite: 1},
		{Sites: 2, TotalPoints: 10, Domain: 10, DistinctPerSite: 0},
	}
	for i, cfg := range bad {
		if _, _, err := GenerateSites(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func TestGenerateSitesZSiteSkew(t *testing.T) {
	cfg := DefaultSites(2)
	cfg.TotalPoints = 10000
	cfg.ZSite = 3
	sites, _, err := GenerateSites(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var max int64
	for _, s := range sites {
		if s.Total() > max {
			max = s.Total()
		}
	}
	if float64(max) < 0.5*float64(cfg.TotalPoints) {
		t.Errorf("ZSite=3: largest site %d of %d, want > half", max, cfg.TotalPoints)
	}
}

// Integration: the two §8 strategies produce global histograms of
// similar quality (paper's conclusion from Figs. 20-23).
func TestUnionStrategiesComparable(t *testing.T) {
	cfg := DefaultSites(3)
	cfg.TotalPoints = 20000
	sites, all, err := GenerateSites(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const mem = 250
	// histogram + union.
	var members [][]histogram.Bucket
	for _, s := range sites {
		h, err := static.SSBMMemory(s, mem)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, h.Buckets())
	}
	super, err := Superpose(members...)
	if err != nil {
		t.Fatal(err)
	}
	n, err := histogram.BucketsForMemory(mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := Reduce(super, n)
	if err != nil {
		t.Fatal(err)
	}
	ksHU, err := metric.KS(CDFOf(reduced), all)
	if err != nil {
		t.Fatal(err)
	}
	// union + histogram.
	direct, err := static.SSBMMemory(all, mem)
	if err != nil {
		t.Fatal(err)
	}
	ksUH, err := metric.KS(direct.CDF, all)
	if err != nil {
		t.Fatal(err)
	}
	if ksHU > 5*ksUH+0.05 || ksUH > 5*ksHU+0.05 {
		t.Errorf("strategies should be comparable: hist+union %v vs union+hist %v", ksHU, ksUH)
	}
}

// Property: superposition of arbitrary valid members conserves mass.
func TestSuperposeMassProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) < 2 {
			return true
		}
		if len(counts) > 24 {
			counts = counts[:24]
		}
		half := len(counts) / 2
		mk := func(cs []uint8, offset float64) []histogram.Bucket {
			var m []histogram.Bucket
			for i, c := range cs {
				l := offset + float64(i*7)
				m = append(m, histogram.Bucket{Left: l, Right: l + 7, Subs: []float64{float64(c)}})
			}
			return m
		}
		m1, m2 := mk(counts[:half], 0), mk(counts[half:], 3)
		want := histogram.TotalCount(m1) + histogram.TotalCount(m2)
		if want == 0 {
			return true
		}
		u, err := Superpose(m1, m2)
		if err != nil {
			return false
		}
		return math.Abs(histogram.TotalCount(u)-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Reduce conserves mass for any budget.
func TestReduceMassProperty(t *testing.T) {
	f := func(counts []uint8, budgetPick uint8) bool {
		if len(counts) < 2 {
			return true
		}
		if len(counts) > 40 {
			counts = counts[:40]
		}
		var buckets []histogram.Bucket
		for i, c := range counts {
			l := float64(i * 5)
			buckets = append(buckets, histogram.Bucket{Left: l, Right: l + 5, Subs: []float64{float64(c)}})
		}
		budget := int(budgetPick)%len(counts) + 1
		r, err := Reduce(buckets, budget)
		if err != nil {
			return false
		}
		if len(r) > budget {
			return false
		}
		if histogram.Validate(r) != nil {
			return false
		}
		return math.Abs(histogram.TotalCount(r)-histogram.TotalCount(buckets)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCDFOfEmpty(t *testing.T) {
	cdf := CDFOf(nil)
	if cdf(100) != 0 {
		t.Error("empty CDF should be 0")
	}
	cdf = CDFOf([]histogram.Bucket{{Left: 0, Right: 1, Subs: []float64{0}}})
	if cdf(5) != 0 {
		t.Error("zero-mass CDF should be 0")
	}
}

func TestSuperposeKeepsSubBucketDetail(t *testing.T) {
	// A DADO-style member with an uneven sub-bucket profile must keep
	// that profile through superposition (lossless claim includes
	// sub-bucket borders).
	m := []histogram.Bucket{{Left: 0, Right: 10, Subs: []float64{8, 2}}}
	u, err := Superpose(m)
	if err != nil {
		t.Fatal(err)
	}
	// Mass below the sub-border must be preserved exactly.
	if got := histogram.MassBelow(u, 5); math.Abs(got-8) > 1e-9 {
		t.Errorf("mass below sub-border = %v, want 8", got)
	}
}

func TestSuperposeDedupesULPBorders(t *testing.T) {
	// The same logical border computed from two members can differ in
	// the last bit: member 1's sub-border is exactly 1.0 (computed as
	// Left + Width·1/2), member 2's bucket edge sits one ULP above it.
	// Without relative-epsilon deduplication the superposition keeps
	// both and emits a one-ULP sliver bucket.
	ulpAbove := math.Nextafter(1.0, 2)
	m1 := []histogram.Bucket{{Left: 0, Right: 2, Subs: []float64{3, 5}}}
	m2 := []histogram.Bucket{{Left: ulpAbove, Right: 3, Subs: []float64{4}}}
	u, err := Superpose(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if err := histogram.Validate(u); err != nil {
		t.Fatal(err)
	}
	for i := range u {
		w := u[i].Width()
		scale := math.Max(math.Abs(u[i].Left), math.Abs(u[i].Right))
		if w <= 16*borderEps*scale {
			t.Errorf("bucket %d [%v,%v) is a %.3g-wide sliver", i, u[i].Left, u[i].Right, w)
		}
	}
	// The member's real bucket edge (the primary border) must survive
	// bit-exactly; the recomputed sub-border is the one that yields.
	found := false
	for i := range u {
		if u[i].Left == ulpAbove || u[i].Right == ulpAbove {
			found = true
		}
	}
	if !found {
		t.Errorf("primary border %v did not survive deduplication: %+v", ulpAbove, u)
	}
	// Deduplication must not cost mass: the union still carries the
	// members' combined total.
	if total := histogram.TotalCount(u); math.Abs(total-12) > 1e-9 {
		t.Errorf("union mass %v, want 12", total)
	}
}

func TestDedupeBordersPrefersPrimary(t *testing.T) {
	a := 1000.0
	b := math.Nextafter(a, 2000)
	got := dedupeBorders([]float64{0, a, b, 2000}, map[float64]bool{0: true, b: true, 2000: true})
	want := []float64{0, b, 2000}
	if len(got) != len(want) {
		t.Fatalf("dedupeBorders = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupeBorders = %v, want %v", got, want)
		}
	}
	// Distinct borders far apart are untouched.
	keep := []float64{0, 0.5, 1}
	if got := dedupeBorders(keep, nil); len(got) != 3 {
		t.Fatalf("dedupeBorders merged genuinely distinct borders: %v", got)
	}
}
