package sample

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(0, 1); err == nil {
		t.Error("capacity 0: want error")
	}
	if _, err := NewReservoir(-3, 1); err == nil {
		t.Error("negative capacity: want error")
	}
}

func TestReservoirFillPhase(t *testing.T) {
	r, err := NewReservoir(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 5 {
		if err := r.Insert(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	vals := map[float64]bool{}
	for _, v := range r.Values() {
		vals[v] = true
	}
	for i := range 5 {
		if !vals[float64(i)] {
			t.Errorf("fill phase must keep the first k values; missing %d", i)
		}
	}
}

func TestReservoirCapacityBound(t *testing.T) {
	r, err := NewReservoir(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 10000 {
		if err := r.Insert(float64(i % 100)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r.Len())
	}
	if r.Seen() != 10000 {
		t.Fatalf("Seen = %d", r.Seen())
	}
}

func TestReservoirRejectsNonFinite(t *testing.T) {
	r, err := NewReservoir(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(math.NaN()); err == nil {
		t.Error("Insert(NaN): want error")
	}
	if err := r.Insert(math.Inf(1)); err == nil {
		t.Error("Insert(Inf): want error")
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Statistical check: each of 100 stream values should appear in the
	// sample with roughly equal frequency across many trials.
	hits := make([]int, 100)
	trials := 400
	for trial := range trials {
		r, err := NewReservoir(10, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := range 100 {
			if err := r.Insert(float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		for _, v := range r.Values() {
			hits[int(v)]++
		}
	}
	// Expected hits per value: trials * 10/100 = 40. Allow wide noise.
	for v, h := range hits {
		if h < 10 || h > 90 {
			t.Errorf("value %d sampled %d times, want ≈40 (uniformity broken)", v, h)
		}
	}
}

func TestReservoirDelete(t *testing.T) {
	r, err := NewReservoir(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 2, 2, 3, 4} {
		if err := r.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Delete(2) {
		t.Fatal("Delete(2) should succeed")
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if !r.Delete(2) {
		t.Fatal("second Delete(2) should succeed (two copies inserted)")
	}
	if r.Delete(2) {
		t.Fatal("third Delete(2) should fail")
	}
	if r.Delete(99) {
		t.Fatal("Delete of absent value should fail")
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}

func TestReservoirDeterministicPerSeed(t *testing.T) {
	build := func(seed int64) []float64 {
		r, err := NewReservoir(7, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range 500 {
			if err := r.Insert(float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return r.Values()
	}
	a, b := build(42), build(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same sample")
		}
	}
}

// Property: the index stays consistent with the slice across arbitrary
// insert/delete interleavings — every Delete(v) succeeds iff v is in
// the sample.
func TestReservoirIndexConsistency(t *testing.T) {
	f := func(ops []int16) bool {
		r, err := NewReservoir(8, 9)
		if err != nil {
			return false
		}
		for _, op := range ops {
			v := float64(int(op) % 20)
			if v < 0 {
				v = -v
			}
			if op%4 == 0 {
				present := false
				for _, x := range r.items {
					if x == v {
						present = true
						break
					}
				}
				if r.Delete(v) != present {
					return false
				}
			} else if r.Insert(v) != nil {
				return false
			}
			if r.Len() > r.Capacity() {
				return false
			}
			// Index agrees with the slice.
			n := 0
			for val, positions := range r.byValue {
				for _, p := range positions {
					if p < 0 || p >= len(r.items) || r.items[p] != val {
						return false
					}
					n++
				}
			}
			if n != len(r.items) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
