// Package sample implements reservoir sampling (Vitter's Algorithm R)
// with deletion support — the "backing sample" substrate of the
// Approximate Histograms of Gibbons, Matias and Poosala (VLDB'97) that
// the paper compares against.
//
// Deletions remove the deleted value from the reservoir if present and
// do not refill it: in the stream model there is no way to resample
// already-discarded data. The shrinking sample under heavy deletion is
// precisely the degradation the paper demonstrates in Fig. 17.
package sample

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrCapacity is returned for a non-positive reservoir capacity.
var ErrCapacity = errors.New("sample: capacity < 1")

// Reservoir maintains a uniform random sample of capacity k over an
// insert stream, with best-effort deletion support. It is
// deterministic given the seed.
type Reservoir struct {
	capacity int
	items    []float64
	seen     int64 // inserts observed since creation
	rng      *rand.Rand

	// byValue indexes the positions of each value currently in the
	// reservoir so deletions are O(1) expected.
	byValue map[float64][]int
}

// NewReservoir returns an empty reservoir holding at most capacity
// values.
func NewReservoir(capacity int, seed int64) (*Reservoir, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("%w: %d", ErrCapacity, capacity)
	}
	return &Reservoir{
		capacity: capacity,
		rng:      rand.New(rand.NewSource(seed)),
		byValue:  make(map[float64][]int),
	}, nil
}

// RestoreReservoir rebuilds a reservoir from previously captured state:
// the sample values and the insert count observed when the state was
// taken. The acceptance probability of Algorithm R depends only on the
// capacity and the seen count, both of which are restored exactly; the
// RNG stream itself restarts from seed, so the restored reservoir is a
// statistically equivalent continuation rather than a bit-identical
// replay.
func RestoreReservoir(capacity int, seed int64, values []float64, seen int64) (*Reservoir, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("%w: %d", ErrCapacity, capacity)
	}
	if len(values) > capacity {
		return nil, fmt.Errorf("sample: %d values exceed capacity %d", len(values), capacity)
	}
	if seen < int64(len(values)) {
		return nil, fmt.Errorf("sample: seen %d < sample size %d", seen, len(values))
	}
	r := &Reservoir{
		capacity: capacity,
		rng:      rand.New(rand.NewSource(seed)),
		byValue:  make(map[float64][]int),
		seen:     seen,
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("sample: non-finite value %v at %d", v, i)
		}
		r.indexAdd(v, i)
		r.items = append(r.items, v)
	}
	return r, nil
}

// Capacity returns the maximum sample size.
func (r *Reservoir) Capacity() int { return r.capacity }

// Len returns the current sample size.
func (r *Reservoir) Len() int { return len(r.items) }

// Seen returns the number of inserts observed.
func (r *Reservoir) Seen() int64 { return r.seen }

// Values returns a copy of the current sample.
func (r *Reservoir) Values() []float64 {
	out := make([]float64, len(r.items))
	copy(out, r.items)
	return out
}

// Insert offers one value to the reservoir (Algorithm R): the first k
// values are kept; afterwards the value replaces a uniformly random
// resident with probability k/seen.
func (r *Reservoir) Insert(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("sample: non-finite value %v", v)
	}
	r.seen++
	if len(r.items) < r.capacity {
		r.indexAdd(v, len(r.items))
		r.items = append(r.items, v)
		return nil
	}
	// Standard Algorithm R acceptance test.
	j := r.rng.Int63n(r.seen)
	if j < int64(r.capacity) {
		r.replaceAt(int(j), v)
	}
	return nil
}

// Delete removes one instance of v from the reservoir if present and
// reports whether it did. The slot is not refilled.
func (r *Reservoir) Delete(v float64) bool {
	positions := r.byValue[v]
	if len(positions) == 0 {
		return false
	}
	pos := positions[len(positions)-1]
	r.indexRemove(v, pos)
	last := len(r.items) - 1
	if pos != last {
		moved := r.items[last]
		r.items[pos] = moved
		r.indexRemove(moved, last)
		r.indexAdd(moved, pos)
	}
	r.items = r.items[:last]
	return true
}

func (r *Reservoir) replaceAt(pos int, v float64) {
	old := r.items[pos]
	r.indexRemove(old, pos)
	r.items[pos] = v
	r.indexAdd(v, pos)
}

func (r *Reservoir) indexAdd(v float64, pos int) {
	r.byValue[v] = append(r.byValue[v], pos)
}

func (r *Reservoir) indexRemove(v float64, pos int) {
	positions := r.byValue[v]
	for i, p := range positions {
		if p == pos {
			positions[i] = positions[len(positions)-1]
			positions = positions[:len(positions)-1]
			break
		}
	}
	if len(positions) == 0 {
		delete(r.byValue, v)
	} else {
		r.byValue[v] = positions
	}
}
