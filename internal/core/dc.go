// Package core implements the paper's dynamic histograms: the Dynamic
// Compressed (DC) histogram of §3, driven by a chi-square
// repartitioning trigger, and the Dynamic V-Optimal (DVO) / Dynamic
// Average-Deviation Optimal (DADO) histograms of §4, driven by
// split-merge reorganisation over sub-bucket counters.
package core

import (
	"fmt"
	"math"
	"sort"

	"dynahist/internal/histerr"
	"dynahist/internal/histogram"
	"dynahist/internal/numeric"
)

// DefaultAlphaMin is the chi-square significance threshold below which
// the DC histogram repartitions. The paper reports the algorithm is
// insensitive to the exact value as long as it is much less than 1 and
// uses 1e-6 in all experiments (§3).
const DefaultAlphaMin = 1e-6

// ErrEmpty is returned when deleting from a histogram that holds no
// points.
var ErrEmpty = fmt.Errorf("core: %w", histerr.ErrEmpty)

// DC is a Dynamic Compressed histogram (paper §3). Buckets are
// contiguous and cover [min, max+1) of the values seen so far. Some
// buckets are singular — width one, holding a high-frequency value —
// while the remaining regular buckets aim for equal counts; when the
// chi-square test rejects the equal-count null hypothesis, the
// histogram repartitions using only the counts it already maintains.
//
// The bucket state lives in a flat histogram.Store arena with one
// counter per bucket, so the hot insert path is a binary search over
// one contiguous border array plus one counter bump.
type DC struct {
	maxBuckets int
	alphaMin   float64
	st         *histogram.Store // k=1, contiguous coverage
	singular   []bool
	total      float64

	loadingSeen map[float64]bool // distinct values during the loading phase
	loaded      bool             // loading phase complete (bucket budget reached once)

	// Incrementally maintained chi-square state over regular buckets.
	regSum   float64 // Σ counts of regular buckets
	regSum2  float64 // Σ counts² of regular buckets
	regCount int     // number of regular buckets

	// Chi-square trigger threshold, cached per degrees-of-freedom.
	cachedDF        int
	cachedThreshold float64

	// retriggerFloor guards against futile repartition storms: when a
	// repartition cannot push the statistic below the trigger (the
	// integer-width cut residual dominates at large N, where the
	// chi-square test becomes arbitrarily sensitive), re-triggering is
	// postponed until the statistic grows meaningfully beyond what the
	// last repartition achieved. Disable with SetDamping(false) to get
	// the paper's undamped trigger.
	retriggerFloor float64
	dampingOff     bool

	repartitions int
}

// dcSegment is one uniform-density piece of the histogram's current
// approximation, used during repartitioning.
type dcSegment struct {
	left, right, count float64
}

// NewDC returns a DC histogram that keeps at most maxBuckets buckets.
func NewDC(maxBuckets int) (*DC, error) {
	if maxBuckets < 1 {
		return nil, fmt.Errorf("core: %w: maxBuckets %d < 1", histerr.ErrBudget, maxBuckets)
	}
	return &DC{
		maxBuckets:  maxBuckets,
		alphaMin:    DefaultAlphaMin,
		st:          histogram.NewStore(1),
		loadingSeen: make(map[float64]bool),
		cachedDF:    -1,
	}, nil
}

// NewDCMemory returns a DC histogram sized for a memory budget in bytes
// using the paper's space accounting (§3.1: n+1 borders and n counters).
func NewDCMemory(memBytes int) (*DC, error) {
	n, err := histogram.BucketsForMemory(memBytes, 1)
	if err != nil {
		return nil, err
	}
	return NewDC(n)
}

// SetDamping toggles the futility floor on the repartition trigger
// (default on). The paper's trigger is undamped; with damping off, a
// data set large enough that no integer-border partition passes the
// chi-square test makes DC repartition on nearly every insertion —
// slow, and (as the paper itself observes for border relocations)
// error-inducing. Turn it off only to study that regime.
func (h *DC) SetDamping(on bool) {
	h.dampingOff = !on
	if h.dampingOff {
		h.retriggerFloor = 0
	}
}

// SetAlphaMin overrides the chi-square significance threshold; the
// value must lie in [0, 1]. 0 freezes the partition once loaded, 1
// repartitions after every insertion (§3).
func (h *DC) SetAlphaMin(alpha float64) error {
	if math.IsNaN(alpha) || alpha < 0 || alpha > 1 {
		return fmt.Errorf("core: %w: alphaMin %v outside [0,1]", histerr.ErrOption, alpha)
	}
	h.alphaMin = alpha
	h.cachedDF = -1
	return nil
}

// MaxBuckets returns the bucket budget.
func (h *DC) MaxBuckets() int { return h.maxBuckets }

// Total returns the current total point count.
func (h *DC) Total() float64 { return h.total }

// Repartitions returns how many times the histogram has reorganised
// its borders — the paper's "border relocations" diagnostic (§7.1).
func (h *DC) Repartitions() int { return h.repartitions }

// Loading reports whether the histogram is still in the loading phase
// (fewer distinct values seen than the bucket budget).
func (h *DC) Loading() bool { return !h.loaded }

// Buckets returns a deep copy of the current bucket list.
func (h *DC) Buckets() []histogram.Bucket { return h.st.Buckets() }

// Store exposes the flat bucket arena for read-only consumers; callers
// must not mutate it.
func (h *DC) Store() *histogram.Store { return h.st }

// SingularCount returns the number of buckets currently marked
// singular.
func (h *DC) SingularCount() int {
	n := 0
	for _, s := range h.singular {
		if s {
			n++
		}
	}
	return n
}

// CDF returns the approximate fraction of mass in (-∞, x].
func (h *DC) CDF(x float64) float64 {
	if h.total <= 0 {
		return 0
	}
	return h.st.MassBelowAll(x) / h.total
}

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *DC) EstimateRange(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	return h.st.MassBelowAll(hi+1) - h.st.MassBelowAll(lo)
}

// Insert adds one occurrence of v.
func (h *DC) Insert(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	if !h.loaded && h.loadingInsert(v) {
		return nil
	}
	i := h.st.Find(v)
	if i < 0 {
		i = h.extendRange(v)
	}
	h.addCount(i, 1)
	h.total++
	h.maybeRepartition()
	return nil
}

// Delete removes one occurrence of v, decrementing the containing
// bucket or, when it is empty, the nearest bucket with positive count
// (the §7.3 spill policy).
func (h *DC) Delete(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	if h.total < 1 {
		return ErrEmpty
	}
	i := h.st.Find(v)
	if i < 0 || h.st.Count(i) < 1 {
		i = h.nearestPositive(v)
		if i < 0 {
			return ErrEmpty
		}
	}
	h.addCount(i, -1)
	h.total--
	if h.loaded {
		h.maybeRepartition()
	}
	return nil
}

// loadingInsert handles the loading phase (§3: the first distinct
// values each define a bucket). Every distinct value gets a unit-width
// bucket of its own; the empty space between populated values is kept
// in explicit zero-count gap buckets, so the histogram "has enough
// buckets to represent empty spaces between these points" (§7.2.1) and
// remains near-exact until the budget runs out. Reports whether the
// insert was absorbed; false means the loading phase just ended and
// the caller must run the normal insert path.
func (h *DC) loadingInsert(v float64) bool {
	st := h.st
	if h.loadingSeen[v] {
		i := st.Find(v)
		h.addCount(i, 1)
		h.total++
		return true
	}
	left := math.Floor(v)
	right := left + 1

	// Work out how many new buckets this distinct value needs so we
	// never exceed the budget mid-operation.
	needed := 1
	switch {
	case st.Len() == 0:
	case right <= st.Left(0):
		if right < st.Left(0) {
			needed = 2 // value + leading gap
		}
	case left >= st.Right(st.Len()-1):
		if left > st.Right(st.Len()-1) {
			needed = 2 // trailing gap + value
		}
	default:
		i := st.Find(v)
		if i >= 0 && st.Count(i) > 0 {
			// v falls inside an existing populated unit bucket (a
			// different float rounding to the same integer): no new
			// bucket needed.
			h.loadingSeen[v] = true
			h.addCount(i, 1)
			h.total++
			return true
		}
		needed = 3 // gap may split into gap + value + gap
	}
	if st.Len()+needed > h.maxBuckets {
		h.loaded = true
		h.loadingSeen = nil
		return false // caller runs the normal insert path
	}

	h.loadingSeen[v] = true
	h.total++
	switch {
	case st.Len() == 0:
		h.insertBucketAt(0, left, right, 1)
	case right <= st.Left(0):
		if right < st.Left(0) {
			h.insertBucketAt(0, right, st.Left(0), 0)
		}
		h.insertBucketAt(0, left, right, 1)
	case left >= st.Right(st.Len()-1):
		if prevRight := st.Right(st.Len() - 1); left > prevRight {
			h.insertBucketAt(st.Len(), prevRight, left, 0)
		}
		h.insertBucketAt(st.Len(), left, right, 1)
	default:
		// v sits inside a zero-count gap bucket: carve the unit value
		// bucket out of it.
		i := st.Find(v)
		a, b := st.Left(i), st.Right(i)
		if left < a {
			left = a
		}
		if right > b {
			right = b
		}
		// Replace [a,b) by up to three pieces.
		h.removeBucketAt(i)
		pos := i
		if a < left {
			h.insertBucketAt(pos, a, left, 0)
			pos++
		}
		h.insertBucketAt(pos, left, right, 1)
		pos++
		if right < b {
			h.insertBucketAt(pos, right, b, 0)
		}
	}
	if st.Len() >= h.maxBuckets {
		h.loaded = true
		h.loadingSeen = nil
	}
	h.rebuildChiState()
	return true
}

// insertBucketAt inserts a single-counter bucket at index pos.
func (h *DC) insertBucketAt(pos int, left, right, count float64) {
	h.st.Insert(pos, left, right)
	if count != 0 {
		h.st.Add(pos, 0, count)
	}
	h.singular = append(h.singular, false)
	copy(h.singular[pos+1:], h.singular[pos:])
	h.singular[pos] = false
}

// removeBucketAt deletes the bucket at index pos.
func (h *DC) removeBucketAt(pos int) {
	h.st.Remove(pos)
	h.singular = append(h.singular[:pos], h.singular[pos+1:]...)
}

// extendRange grows an end bucket so that v falls inside the histogram
// (§3: "extend the appropriate regular bucket up to x"). If the end
// bucket was singular it becomes regular, since it no longer has width
// one. Returns the index of the bucket now containing v.
func (h *DC) extendRange(v float64) int {
	st := h.st
	if v < st.Left(0) {
		st.SetBorders(0, v, st.Right(0))
		h.makeRegular(0)
		return 0
	}
	last := st.Len() - 1
	st.SetBorders(last, st.Left(last), v+1)
	h.makeRegular(last)
	return last
}

func (h *DC) makeRegular(i int) {
	if h.singular[i] {
		h.singular[i] = false
		h.rebuildChiState()
	}
}

// addCount adjusts bucket i's counter and the incremental chi-square
// sums.
func (h *DC) addCount(i int, delta float64) {
	old := h.st.Count(i)
	nw := old + delta
	if nw < 0 {
		nw = 0
	}
	h.st.Add(i, 0, nw-old)
	if !h.singular[i] {
		h.regSum += nw - old
		h.regSum2 += nw*nw - old*old
	}
}

// nearestPositive returns the bucket with count ≥ 1 nearest to v, or
// -1 if none exists.
func (h *DC) nearestPositive(v float64) int {
	st := h.st
	best, bestDist := -1, 0.0
	for i := 0; i < st.Len(); i++ {
		if st.Count(i) < 1 {
			continue
		}
		d := 0.0
		switch {
		case v < st.Left(i):
			d = st.Left(i) - v
		case v >= st.Right(i):
			d = v - st.Right(i)
		}
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// rebuildChiState recomputes the chi-square sums from scratch.
func (h *DC) rebuildChiState() {
	h.regSum, h.regSum2, h.regCount = 0, 0, 0
	for i := 0; i < h.st.Len(); i++ {
		if h.singular[i] {
			continue
		}
		c := h.st.Count(i)
		h.regSum += c
		h.regSum2 += c * c
		h.regCount++
	}
}

// chiThreshold returns the chi-square value at which the survival
// probability reaches αmin for the current degrees of freedom, cached
// until the regular bucket count changes.
func (h *DC) chiThreshold(df int) float64 {
	if df != h.cachedDF {
		t, err := numeric.ChiSquareInvSurvival(h.alphaMin, df)
		if err != nil {
			t = math.Inf(1)
		}
		h.cachedDF, h.cachedThreshold = df, t
	}
	return h.cachedThreshold
}

// chiSquare returns the current statistic over the regular buckets, or
// ok=false when there are too few of them.
func (h *DC) chiSquare() (chi2 float64, df int, ok bool) {
	k := h.regCount
	if k < 2 || h.regSum <= 0 {
		return 0, 0, false
	}
	mean := h.regSum / float64(k)
	chi2 = (h.regSum2 - float64(k)*mean*mean) / mean // Σ(c−μ)²/μ
	if chi2 < 0 {
		chi2 = 0
	}
	return chi2, k - 1, true
}

// maybeRepartition applies the chi-square trigger (§3): repartition
// when the probability of the observed regular counts under the
// uniform null hypothesis drops to αmin or below. A futility floor
// prevents the large-N pathology where the test rejects the
// repartitioned histogram too (every repartition then triggers the
// next): after a repartition that could not satisfy the test, the
// statistic must grow 25% beyond that residual before the histogram
// tries again.
func (h *DC) maybeRepartition() {
	chi2, df, ok := h.chiSquare()
	if !ok {
		return
	}
	threshold := h.chiThreshold(df)
	if chi2 < threshold || (!h.dampingOff && chi2 <= h.retriggerFloor) {
		return
	}
	h.repartition()
	// αmin = 1 means "repartition after every insertion" (§3) — the
	// trigger threshold is zero and the futility floor must stay off.
	if after, dfAfter, ok := h.chiSquare(); ok && threshold > 0 && after >= h.chiThreshold(dfAfter) {
		h.retriggerFloor = after * 1.25
	} else {
		h.retriggerFloor = 0
	}
}

// repartition rebuilds the bucket borders from the histogram's own
// piecewise-uniform approximation (§3, Figure 2): demote light singular
// buckets, re-cut the regular regions at equal-count quantiles, then
// promote heavy width-one regular buckets to singular. Total area and
// bucket count are preserved. This is the cold path — it materialises a
// bucket list, rebuilds it, and reloads the arena.
func (h *DC) repartition() {
	st := h.st
	n := st.Len()
	if n < 2 || h.total <= 0 {
		return
	}
	threshold := h.total / float64(n)

	// Step 1: demote singular buckets whose count no longer justifies a
	// singleton.
	for i := range h.singular {
		if h.singular[i] && st.Count(i) <= threshold {
			h.singular[i] = false
		}
	}

	// Collect surviving singular buckets and the maximal runs of
	// regular segments between them.
	var singulars []histogram.Bucket
	var regions [][]dcSegment
	var current []dcSegment
	flush := func() {
		if len(current) > 0 {
			regions = append(regions, current)
			current = nil
		}
	}
	for i := 0; i < n; i++ {
		if h.singular[i] {
			flush()
			singulars = append(singulars, histogram.Bucket{
				Left:  st.Left(i),
				Right: st.Right(i),
				Subs:  []float64{st.Count(i)},
			})
			continue
		}
		current = append(current, dcSegment{left: st.Left(i), right: st.Right(i), count: st.Count(i)})
	}
	flush()

	nRegular := n - len(singulars)
	if nRegular < 1 || len(regions) == 0 {
		return
	}

	// Step 2: allocate the regular budget across regions proportionally
	// to mass (at least one each), then cut each region at equal-count
	// quantiles of its own piecewise-uniform density.
	regionMass := make([]float64, len(regions))
	totalRegular := 0.0
	for r, segs := range regions {
		for _, s := range segs {
			regionMass[r] += s.count
		}
		totalRegular += regionMass[r]
	}
	caps := make([]int, len(regions))
	for r, segs := range regions {
		w := segs[len(segs)-1].right - segs[0].left
		caps[r] = int(w)
		if caps[r] < 1 {
			caps[r] = 1
		}
	}
	perRegion := allocateWithCaps(regionMass, totalRegular, nRegular, caps)

	rebuilt := make([]histogram.Bucket, 0, n)
	rebuiltSingular := make([]bool, 0, n)
	for r, segs := range regions {
		cuts := equiDepthCuts(segs, regionMass[r], perRegion[r])
		for j := 0; j+1 < len(cuts); j++ {
			rebuilt = append(rebuilt, histogram.Bucket{
				Left:  cuts[j],
				Right: cuts[j+1],
				Subs:  []float64{segmentMass(segs, cuts[j], cuts[j+1])},
			})
			rebuiltSingular = append(rebuiltSingular, false)
		}
	}
	for i := range singulars {
		rebuilt = append(rebuilt, singulars[i])
		rebuiltSingular = append(rebuiltSingular, true)
	}
	sortBucketsWith(rebuilt, rebuiltSingular)

	// Step 3: promote heavy width-one regular buckets to singular.
	for i := range rebuilt {
		if !rebuiltSingular[i] && rebuilt[i].Right-rebuilt[i].Left <= 1+1e-9 &&
			rebuilt[i].Subs[0] > threshold {
			rebuiltSingular[i] = true
		}
	}

	ns, err := histogram.StoreOfBuckets(rebuilt, 1)
	if err != nil {
		return // keep the current partition rather than corrupt state
	}
	h.st = ns
	h.singular = rebuiltSingular
	h.rebuildChiState()
	h.repartitions++
}

// loadBuckets replaces the bucket state wholesale — the restore path.
func (h *DC) loadBuckets(buckets []histogram.Bucket, singular []bool) error {
	st, err := histogram.StoreOfBuckets(buckets, 1)
	if err != nil {
		return err
	}
	h.st = st
	h.singular = singular
	h.rebuildChiState()
	return nil
}

// allocateWithCaps distributes budget units across bins in proportion
// to their mass, guaranteeing each bin at least one unit and never
// exceeding its capacity (the number of unit-width buckets its value
// range can hold). Surplus from capped bins is redistributed so the
// budget is fully used whenever total capacity allows — without this,
// narrow heavy regions would silently strand buckets and the histogram
// would drift below its memory budget.
func allocateWithCaps(mass []float64, totalMass float64, budget int, caps []int) []int {
	nBins := len(mass)
	out := make([]int, nBins)
	if nBins == 0 {
		return out
	}
	for i := range out {
		out[i] = 1
	}
	remaining := budget - nBins
	for remaining > 0 {
		// Bins that can still grow, and their mass.
		eligible := make([]int, 0, nBins)
		eligibleMass := 0.0
		for i := range out {
			if out[i] < caps[i] {
				eligible = append(eligible, i)
				eligibleMass += mass[i]
			}
		}
		if len(eligible) == 0 {
			break // every region is at capacity
		}
		given := 0
		type rem struct {
			idx  int
			frac float64
		}
		rems := make([]rem, 0, len(eligible))
		for _, i := range eligible {
			share := float64(remaining) / float64(len(eligible))
			if eligibleMass > 0 {
				share = mass[i] / eligibleMass * float64(remaining)
			}
			whole := int(share)
			if room := caps[i] - out[i]; whole > room {
				whole = room
			}
			out[i] += whole
			given += whole
			rems = append(rems, rem{idx: i, frac: share - float64(whole)})
		}
		if given == 0 {
			// Rounding gave nothing: hand out singles by largest
			// remainder until the pass places at least one.
			sort.Slice(rems, func(a, b int) bool {
				if rems[a].frac != rems[b].frac {
					return rems[a].frac > rems[b].frac
				}
				return rems[a].idx < rems[b].idx
			})
			for _, r := range rems {
				if given == remaining {
					break
				}
				if out[r.idx] < caps[r.idx] {
					out[r.idx]++
					given++
				}
			}
			if given == 0 {
				break
			}
		}
		remaining -= given
	}
	return out
}

// equiDepthCuts returns k+1 border positions splitting the
// piecewise-uniform mass of segs into roughly equal parts. Cut
// positions are snapped to the integer grid and kept at least one value
// apart: a Compressed histogram over an integer domain cannot resolve
// below a single value, and this atomicity is what lets a heavy value
// end up alone in a width-one bucket eligible for singular promotion
// (§3). The caller guarantees k does not exceed the region's unit-width
// capacity, so exactly k buckets are always produced: positions are
// clamped forward (≥ previous+1) and backward (leaving unit room for
// every remaining cut).
func equiDepthCuts(segs []dcSegment, mass float64, k int) []float64 {
	left, right := segs[0].left, segs[len(segs)-1].right
	cuts := []float64{left}
	if k > 1 {
		// Ideal quantile positions.
		ideals := make([]float64, 0, k-1)
		if mass > 0 {
			target := mass / float64(k)
			acc := 0.0
			next := target
			for _, s := range segs {
				for next <= acc+s.count+1e-12 && len(ideals) < k-1 {
					frac := 0.0
					if s.count > 0 {
						frac = (next - acc) / s.count
					}
					ideals = append(ideals, s.left+frac*(s.right-s.left))
					next += target
				}
				acc += s.count
			}
		}
		for len(ideals) < k-1 { // massless region: spread evenly
			j := len(ideals) + 1
			ideals = append(ideals, left+(right-left)*float64(j)/float64(k))
		}
		for c, ideal := range ideals {
			x := math.Round(ideal)
			if min := cuts[len(cuts)-1] + 1; x < min {
				x = min
			}
			if max := right - float64(k-1-c); x > max {
				x = max
			}
			if x <= cuts[len(cuts)-1] {
				continue // capacity exhausted; fewer buckets here
			}
			cuts = append(cuts, x)
		}
	}
	cuts = append(cuts, right)
	return cuts
}

// segmentMass integrates the piecewise-uniform density of segs over
// [lo, hi).
func segmentMass(segs []dcSegment, lo, hi float64) float64 {
	mass := 0.0
	for _, s := range segs {
		a := math.Max(lo, s.left)
		b := math.Min(hi, s.right)
		if b > a && s.right > s.left {
			mass += s.count * (b - a) / (s.right - s.left)
		}
	}
	return mass
}

// sortBucketsWith sorts buckets by left border, keeping the singular
// flags aligned.
func sortBucketsWith(buckets []histogram.Bucket, singular []bool) {
	idx := make([]int, len(buckets))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return buckets[idx[a]].Left < buckets[idx[b]].Left })
	nb := make([]histogram.Bucket, len(buckets))
	ns := make([]bool, len(singular))
	for to, from := range idx {
		nb[to] = buckets[from]
		ns[to] = singular[from]
	}
	copy(buckets, nb)
	copy(singular, ns)
}
