package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynahist/internal/dist"
	"dynahist/internal/distgen"
	"dynahist/internal/histogram"
	"dynahist/internal/metric"
)

func TestNewDCValidation(t *testing.T) {
	if _, err := NewDC(0); err == nil {
		t.Error("NewDC(0): want error")
	}
	if _, err := NewDCMemory(2); err == nil {
		t.Error("NewDCMemory(2B): want error")
	}
	h, err := NewDCMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxBuckets() != 127 {
		t.Errorf("1KB DC = %d buckets, want 127", h.MaxBuckets())
	}
}

func TestDCSetAlphaMin(t *testing.T) {
	h, err := NewDC(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetAlphaMin(0.5); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if err := h.SetAlphaMin(bad); err == nil {
			t.Errorf("SetAlphaMin(%v): want error", bad)
		}
	}
}

func TestDCLoadingPhase(t *testing.T) {
	// With enough budget the loading phase is exact: one unit bucket
	// per distinct value plus explicit zero-count gap buckets for the
	// empty space between them (§7.2.1: "enough buckets to represent
	// empty spaces between these points").
	h, err := NewDC(10)
	if err != nil {
		t.Fatal(err)
	}
	data := []float64{5, 5, 9, 2, 9, 9}
	for _, v := range data {
		if err := h.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if !h.Loading() {
		t.Fatal("should still be loading")
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %v, want 6", h.Total())
	}
	bs := h.Buckets()
	if len(bs) != 5 {
		t.Fatalf("got %d buckets, want 5 (3 values + 2 gaps)", len(bs))
	}
	// Exact per-value counts during loading.
	if got := h.EstimateRange(5, 5); math.Abs(got-2) > 1e-9 {
		t.Errorf("count(5) = %v, want 2", got)
	}
	if got := h.EstimateRange(9, 9); math.Abs(got-3) > 1e-9 {
		t.Errorf("count(9) = %v, want 3", got)
	}
	if got := h.EstimateRange(3, 4); got != 0 {
		t.Errorf("gap count [3,4] = %v, want 0", got)
	}
	if err := histogram.Validate(bs); err != nil {
		t.Fatal(err)
	}
}

func TestDCLoadingContiguous(t *testing.T) {
	h, err := NewDC(5)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order distinct inserts, including below the current min.
	// The third value (30) would need three buckets (gap split) and
	// exceed the budget of five, so it ends the loading phase and goes
	// through the normal insert path instead.
	for _, v := range []float64{50, 10, 30, 70, 20} {
		if err := h.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if h.Loading() {
		t.Fatal("budget pressure should have ended loading")
	}
	bs := h.Buckets()
	if len(bs) > 5 {
		t.Fatalf("got %d buckets, budget 5", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].Left != bs[i-1].Right {
			t.Fatalf("buckets not contiguous at %d: %v vs %v", i, bs[i-1].Right, bs[i].Left)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %v, want 5", h.Total())
	}
	// Coverage must include every value seen (70 arrived after loading
	// ended, extending the right edge).
	if bs[0].Left > 10 || bs[len(bs)-1].Right < 71 {
		t.Fatalf("coverage [%v,%v) must include [10,71)", bs[0].Left, bs[len(bs)-1].Right)
	}
	if err := histogram.Validate(bs); err != nil {
		t.Fatal(err)
	}
}

func TestDCInsertAfterLoading(t *testing.T) {
	h, err := NewDC(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{10, 20, 30} {
		if err := h.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if h.Loading() {
		t.Fatal("loading should be complete")
	}
	// Contained insert.
	if err := h.Insert(15); err != nil {
		t.Fatal(err)
	}
	// Out-of-range inserts extend the end buckets.
	if err := h.Insert(100); err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(1); err != nil {
		t.Fatal(err)
	}
	bs := h.Buckets()
	if bs[0].Left != 1 {
		t.Errorf("left border = %v, want 1", bs[0].Left)
	}
	if bs[len(bs)-1].Right != 101 {
		t.Errorf("right border = %v, want 101", bs[len(bs)-1].Right)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %v, want 6", h.Total())
	}
	if err := histogram.Validate(h.Buckets()); err != nil {
		t.Fatal(err)
	}
}

func TestDCRepartitionTriggers(t *testing.T) {
	h, err := NewDC(8)
	if err != nil {
		t.Fatal(err)
	}
	// Load 8 distinct values, then hammer one bucket: the chi-square
	// test must eventually trigger a repartition.
	for v := 0; v < 8; v++ {
		if err := h.Insert(float64(v * 10)); err != nil {
			t.Fatal(err)
		}
	}
	for range 2000 {
		if err := h.Insert(35); err != nil {
			t.Fatal(err)
		}
	}
	if h.Repartitions() == 0 {
		t.Fatal("chi-square trigger never fired under extreme skew")
	}
	if err := histogram.Validate(h.Buckets()); err != nil {
		t.Fatal(err)
	}
	// Total conserved across repartitions.
	if h.Total() != 2008 {
		t.Fatalf("Total = %v, want 2008", h.Total())
	}
	if got := histogram.TotalCount(h.Buckets()); math.Abs(got-2008) > 1e-6 {
		t.Fatalf("bucket mass = %v, want 2008", got)
	}
}

func TestDCAlphaZeroFreezes(t *testing.T) {
	h, err := NewDC(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetAlphaMin(0); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if err := h.Insert(float64(v * 10)); err != nil {
			t.Fatal(err)
		}
	}
	for range 5000 {
		if err := h.Insert(15); err != nil {
			t.Fatal(err)
		}
	}
	if h.Repartitions() != 0 {
		t.Errorf("αmin=0 must freeze the histogram; got %d repartitions", h.Repartitions())
	}
}

func TestDCAlphaOneAlwaysRepartitions(t *testing.T) {
	h, err := NewDC(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetAlphaMin(1); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if err := h.Insert(float64(v * 10)); err != nil {
			t.Fatal(err)
		}
	}
	for range 50 {
		if err := h.Insert(15); err != nil {
			t.Fatal(err)
		}
	}
	if h.Repartitions() < 40 {
		t.Errorf("αmin=1 should repartition on ~every insert; got %d", h.Repartitions())
	}
}

func TestDCSingularPromotion(t *testing.T) {
	h, err := NewDC(6)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if err := h.Insert(float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	// One enormous spike at a single value: after repartitioning, that
	// value should sit in a singular bucket.
	for range 10000 {
		if err := h.Insert(3); err != nil {
			t.Fatal(err)
		}
	}
	if h.SingularCount() == 0 {
		t.Error("massive spike should be captured by a singular bucket")
	}
	// The spike estimate should be near-exact thanks to the singleton.
	got := h.EstimateRange(3, 3)
	if math.Abs(got-10001)/10001 > 0.15 {
		t.Errorf("spike estimate %v, want ≈10001", got)
	}
}

func TestDCDeleteAndSpill(t *testing.T) {
	h, err := NewDC(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 10, 20, 30} {
		if err := h.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Delete(10); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 3 {
		t.Fatalf("Total = %v, want 3", h.Total())
	}
	// Bucket for 10 is now empty: deleting 10 again spills to the
	// nearest non-empty bucket.
	if err := h.Delete(10); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 2 {
		t.Fatalf("Total = %v, want 2", h.Total())
	}
	// Drain completely, then the next delete errors.
	if err := h.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(30); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(30); err == nil {
		t.Error("delete from empty: want error")
	}
}

func TestDCRejectsNonFinite(t *testing.T) {
	h, err := NewDC(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(math.NaN()); err == nil {
		t.Error("Insert(NaN): want error")
	}
	if err := h.Insert(math.Inf(-1)); err == nil {
		t.Error("Insert(-Inf): want error")
	}
	if err := h.Delete(math.NaN()); err == nil {
		t.Error("Delete(NaN): want error")
	}
}

func TestDCCDFMonotone(t *testing.T) {
	h, err := NewDC(16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for range 3000 {
		if err := h.Insert(float64(rng.Intn(200))); err != nil {
			t.Fatal(err)
		}
	}
	prev := 0.0
	for x := -5.0; x <= 205; x += 0.5 {
		c := h.CDF(x)
		if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
			t.Fatalf("CDF not monotone/bounded at %v: %v (prev %v)", x, c, prev)
		}
		prev = c
	}
	if math.Abs(prev-1) > 1e-9 {
		t.Fatalf("CDF(max) = %v, want 1", prev)
	}
}

// Property: DC conserves total mass under arbitrary insert/delete mixes.
func TestDCMassConservation(t *testing.T) {
	f := func(ops []int16) bool {
		h, err := NewDC(8)
		if err != nil {
			return false
		}
		want := 0.0
		for _, op := range ops {
			v := float64(int(op) % 100)
			if v < 0 {
				v = -v
			}
			if op%3 != 0 {
				if h.Insert(v) == nil {
					want++
				}
			} else if h.Delete(v) == nil {
				want--
			}
		}
		if math.Abs(h.Total()-want) > 1e-6 {
			return false
		}
		return math.Abs(histogram.TotalCount(h.Buckets())-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: after any insert workload, DC buckets validate and stay
// within budget.
func TestDCStructuralInvariants(t *testing.T) {
	f := func(seed int64) bool {
		h, err := NewDC(12)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for range 1000 {
			if err := h.Insert(float64(rng.Intn(500))); err != nil {
				return false
			}
		}
		if len(h.Buckets()) > h.MaxBuckets() {
			return false
		}
		return histogram.Validate(h.Buckets()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Integration: on the paper's reference distribution, a 1KB DC
// histogram must track the data far better than a trivial single-bucket
// approximation.
func TestDCApproximationQuality(t *testing.T) {
	cfg := distgen.Reference(1)
	cfg.Points = 20000
	cfg.Clusters = 200
	values, err := distgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	values = distgen.Shuffled(values, 1)
	h, err := NewDCMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	truth := dist.New(cfg.Domain)
	for _, v := range values {
		if err := h.Insert(float64(v)); err != nil {
			t.Fatal(err)
		}
		if err := truth.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	ks, err := metric.KS(h.CDF, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 0.08 {
		t.Errorf("DC KS = %v, want < 0.08 on the reference distribution", ks)
	}
}

func TestDCDampingPreventsRepartitionStorm(t *testing.T) {
	// Large-N regime: with damping (the default) the trigger stops
	// firing once repartitioning is futile; without it every insert
	// repartitions (the paper's "unnecessary relocations").
	run := func(damping bool) int {
		h, err := NewDC(32)
		if err != nil {
			t.Fatal(err)
		}
		h.SetDamping(damping)
		// Few distinct values under a skewed rate: integer-width buckets
		// cannot equalise the counts, so as N grows no repartition can
		// satisfy the chi-square test and an undamped trigger fires on
		// nearly every insert.
		rng := rand.New(rand.NewSource(5))
		for range 30000 {
			v := int(rng.ExpFloat64() * 8)
			if v > 39 {
				v = 39
			}
			if err := h.Insert(float64(v)); err != nil {
				t.Fatal(err)
			}
		}
		return h.Repartitions()
	}
	damped := run(true)
	undamped := run(false)
	if damped*10 > undamped {
		t.Errorf("damping should cut repartitions drastically: %d vs %d", damped, undamped)
	}
}
