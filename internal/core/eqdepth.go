package core

import (
	"fmt"
	"math"
	"sort"

	"dynahist/internal/histogram"
)

// EDDado is the equi-depth sub-division variant of the DADO histogram —
// the other §4 design alternative the paper explored ("using equi-depth
// divisions instead of equi-width divisions"). Each bucket stores an
// explicit interior split point instead of implicitly halving its
// range: right after a reorganisation the split sits at the bucket's
// mass median (equal counts on both sides, hence "equi-depth"), and the
// bucket's deviation measures how far the two halves' densities stray
// from the bucket mean as inserts and deletes accumulate.
//
// The reorganisation machinery mirrors DVO/DADO: one split-merge pair
// per update when it strictly reduces the total deviation.
//
// State lives in the shared flat histogram.Store arena (K = 2: the two
// half counters) plus a parallel splits array holding each bucket's
// interior split position; the store's equal-width mass helpers do not
// apply here, so the equi-depth math reads the arrays directly.
type EDDado struct {
	kind       Deviation
	maxBuckets int
	st         *histogram.Store // k=2: counters left/right of the split
	splits     []float64        // interior split position per bucket
	devs       []float64
	total      float64

	scratch [2]float64 // row staging for merge/split, alloc-free

	reorganisations int
}

// NewEDDado returns an equi-depth-subdivision dynamic histogram.
func NewEDDado(kind Deviation, maxBuckets int) (*EDDado, error) {
	if maxBuckets < 2 {
		return nil, fmt.Errorf("core: maxBuckets %d < 2", maxBuckets)
	}
	if kind != Variance && kind != AbsDeviation {
		return nil, fmt.Errorf("core: unknown deviation kind %d", int(kind))
	}
	return &EDDado{kind: kind, maxBuckets: maxBuckets, st: histogram.NewStore(2)}, nil
}

// NewEDDadoMemory sizes the histogram for a byte budget. An equi-depth
// bucket stores two borders' worth of interior state (left + split)
// plus two counters, i.e. the same 12-byte footprint as a DADO bucket
// plus one extra 4-byte split position.
func NewEDDadoMemory(kind Deviation, memBytes int) (*EDDado, error) {
	perBucket := 3*histogram.BorderBytes + 2*histogram.CounterBytes
	n := (memBytes - histogram.BorderBytes) / perBucket
	if n < 2 {
		return nil, fmt.Errorf("core: %dB cannot hold two equi-depth buckets", memBytes)
	}
	return NewEDDado(kind, n)
}

// MaxBuckets returns the bucket budget.
func (h *EDDado) MaxBuckets() int { return h.maxBuckets }

// Total returns the current total point count.
func (h *EDDado) Total() float64 { return h.total }

// Reorganisations returns the number of split-merge pairs performed.
func (h *EDDado) Reorganisations() int { return h.reorganisations }

// count returns bucket i's total point count.
func (h *EDDado) count(i int) float64 { return h.st.Count(i) }

// massBelow returns bucket i's mass in (-∞, x] under the
// uniform-within-half assumption around the stored split.
func (h *EDDado) massBelow(i int, x float64) float64 {
	st := h.st
	left, right, split := st.Left(i), st.Right(i), h.splits[i]
	row := st.Row(i)
	switch {
	case x <= left:
		return 0
	case x >= right:
		return st.Count(i)
	case x <= split:
		if split == left {
			return row[0]
		}
		return row[0] * (x - left) / (split - left)
	default:
		if right == split {
			return st.Count(i)
		}
		return row[0] + row[1]*(x-split)/(right-split)
	}
}

// Buckets exposes the state as ordinary histogram buckets: each
// equi-depth bucket appears with its true sub-division by splitting the
// counters at the stored split position (two unequal-width sub-buckets
// are approximated by the matching piecewise densities).
func (h *EDDado) Buckets() []histogram.Bucket {
	st := h.st
	out := make([]histogram.Bucket, 0, st.Len())
	for i := 0; i < st.Len(); i++ {
		left, right, split := st.Left(i), st.Right(i), h.splits[i]
		row := st.Row(i)
		// Represent the two unequal halves exactly as two buckets.
		if split > left && split < right {
			out = append(out,
				histogram.Bucket{Left: left, Right: split, Subs: []float64{row[0]}},
				histogram.Bucket{Left: split, Right: right, Subs: []float64{row[1]}},
			)
			continue
		}
		out = append(out, histogram.Bucket{Left: left, Right: right, Subs: []float64{st.Count(i)}})
	}
	return out
}

// CDF returns the approximate fraction of mass in (-∞, x].
func (h *EDDado) CDF(x float64) float64 {
	if h.total <= 0 {
		return 0
	}
	mass := 0.0
	for i := 0; i < h.st.Len(); i++ {
		if h.st.Left(i) >= x {
			break
		}
		mass += h.massBelow(i, x)
	}
	return mass / h.total
}

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *EDDado) EstimateRange(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	var below, above float64
	for i := 0; i < h.st.Len(); i++ {
		above += h.massBelow(i, hi+1)
		below += h.massBelow(i, lo)
	}
	return above - below
}

// Insert adds one occurrence of v.
func (h *EDDado) Insert(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	h.total++
	if i := h.st.Find(v); i >= 0 {
		if v < h.splits[i] {
			h.st.Add(i, 0, 1)
		} else {
			h.st.Add(i, 1, 1)
		}
		h.devs[i] = h.deviation(i)
		h.maybeSplitMerge()
		return nil
	}
	h.insertSingleton(v, 1)
	if h.st.Len() > h.maxBuckets {
		if m := h.bestMergePair(-1); m >= 0 {
			h.mergeAt(m)
		}
	}
	return nil
}

// Delete removes one occurrence of v, spilling to the nearest bucket
// with positive count when needed (§7.3).
func (h *EDDado) Delete(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	if h.total < 1 {
		return ErrEmpty
	}
	i := h.st.Find(v)
	if i < 0 || !h.decrement(i, v) {
		i = h.nearestPositive(v)
		if i < 0 || !h.decrement(i, v) {
			return ErrEmpty
		}
	}
	h.total--
	h.maybeSplitMerge()
	return nil
}

func (h *EDDado) decrement(i int, v float64) bool {
	st := h.st
	x := math.Min(math.Max(v, st.Left(i)), st.Right(i)-1e-9)
	row := st.Row(i)
	split := h.splits[i]
	switch {
	case x < split && row[0] >= 1:
		st.Add(i, 0, -1)
	case x >= split && row[1] >= 1:
		st.Add(i, 1, -1)
	case row[0] >= 1:
		st.Add(i, 0, -1)
	case row[1] >= 1:
		st.Add(i, 1, -1)
	default:
		c := st.Count(i)
		if c < 1 {
			return false
		}
		st.Scale(i, (c-1)/c)
	}
	h.devs[i] = h.deviation(i)
	return true
}

func (h *EDDado) nearestPositive(v float64) int {
	st := h.st
	best, bestDist := -1, 0.0
	for i := 0; i < st.Len(); i++ {
		if st.Count(i) < 1 {
			continue
		}
		d := 0.0
		switch {
		case v < st.Left(i):
			d = st.Left(i) - v
		case v >= st.Right(i):
			d = v - st.Right(i)
		}
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func (h *EDDado) insertSingleton(v, count float64) {
	st := h.st
	left := math.Floor(v)
	right := left + 1
	pos := sort.Search(st.Len(), func(j int) bool { return st.Left(j) > v })
	if pos > 0 && st.Right(pos-1) > left {
		left = st.Right(pos - 1)
	}
	if pos < st.Len() && st.Left(pos) < right {
		right = st.Left(pos)
	}
	if right <= left {
		if i := h.nearestPositive(v); i >= 0 {
			if v < h.splits[i] {
				st.Add(i, 0, count)
			} else {
				st.Add(i, 1, count)
			}
			h.devs[i] = h.deviation(i)
		}
		return
	}
	st.Insert(pos, left, right)
	st.Add(pos, 0, count/2)
	st.Add(pos, 1, count/2)
	h.splits = append(h.splits, 0)
	copy(h.splits[pos+1:], h.splits[pos:])
	h.splits[pos] = (left + right) / 2
	h.devs = append(h.devs, 0)
	copy(h.devs[pos+1:], h.devs[pos:])
	h.devs[pos] = h.deviation(pos)
}

// deviation integrates |density − mean| (or its square) over the two
// unequal-width halves of bucket i.
func (h *EDDado) deviation(i int) float64 {
	st := h.st
	left, right, split := st.Left(i), st.Right(i), h.splits[i]
	w := right - left
	if w <= 0 {
		return 0
	}
	mean := st.Count(i) / w
	row := st.Row(i)
	dev := 0.0
	for half := 0; half < 2; half++ {
		lo, hi, c := left, split, row[0]
		if half == 1 {
			lo, hi, c = split, right, row[1]
		}
		hw := hi - lo
		if hw <= 0 {
			continue
		}
		d := c/hw - mean
		if h.kind == Variance {
			dev += hw * d * d
		} else {
			dev += hw * math.Abs(d)
		}
	}
	return dev
}

// mergedDeviation is the deviation the merged bucket over the pair
// (a, a+1) would carry, measured over the four original half-segments
// (plus any gap) against the merged mean density.
func (h *EDDado) mergedDeviation(a int) float64 {
	st := h.st
	b := a + 1
	w := st.Right(b) - st.Left(a)
	if w <= 0 {
		return 0
	}
	mean := (st.Count(a) + st.Count(b)) / w
	dev := 0.0
	add := func(lo, hi, c float64) {
		hw := hi - lo
		if hw <= 0 {
			return
		}
		d := c/hw - mean
		if h.kind == Variance {
			dev += hw * d * d
		} else {
			dev += hw * math.Abs(d)
		}
	}
	rowA, rowB := st.Row(a), st.Row(b)
	add(st.Left(a), h.splits[a], rowA[0])
	add(h.splits[a], st.Right(a), rowA[1])
	add(st.Left(b), h.splits[b], rowB[0])
	add(h.splits[b], st.Right(b), rowB[1])
	if gap := st.Left(b) - st.Right(a); gap > 0 {
		if h.kind == Variance {
			dev += gap * mean * mean
		} else {
			dev += gap * mean
		}
	}
	return dev
}

func (h *EDDado) bestSplit() int {
	best, bestDev := -1, 0.0
	for i := 0; i < h.st.Len(); i++ {
		if h.st.Width(i) <= 1+1e-9 {
			continue
		}
		if h.devs[i] > bestDev {
			best, bestDev = i, h.devs[i]
		}
	}
	return best
}

func (h *EDDado) bestMergePair(exclude int) int {
	best, bestDev := -1, math.Inf(1)
	for m := 0; m+1 < h.st.Len(); m++ {
		if m == exclude || m+1 == exclude {
			continue
		}
		d := h.mergedDeviation(m)
		if d < bestDev {
			best, bestDev = m, d
		}
	}
	return best
}

func (h *EDDado) maybeSplitMerge() {
	if h.st.Len() < 3 {
		return
	}
	s := h.bestSplit()
	if s < 0 {
		return
	}
	m := h.bestMergePair(s)
	if m < 0 {
		return
	}
	vm := h.mergedDeviation(m)
	if vm >= h.devs[s]-1e-12 {
		return
	}
	h.mergeAt(m)
	if s > m+1 {
		s--
	}
	h.splitAt(s)
	h.reorganisations++
}

// mergeAt merges buckets m and m+1 into one bucket whose split is the
// mass median of the combined piecewise profile, re-establishing the
// equi-depth sub-division.
func (h *EDDado) mergeAt(m int) {
	st := h.st
	left, right := st.Left(m), st.Right(m+1)
	total := st.Count(m) + st.Count(m+1)
	split := h.massMedian(m, total)
	cl := h.massBelow(m, split) + h.massBelow(m+1, split)
	st.Remove(m + 1)
	st.SetBorders(m, left, right)
	h.scratch[0], h.scratch[1] = cl, total-cl
	st.SetRow(m, h.scratch[:])
	h.splits[m] = split
	h.splits = append(h.splits[:m+1], h.splits[m+2:]...)
	h.devs[m] = h.deviation(m)
	h.devs = append(h.devs[:m+1], h.devs[m+2:]...)
}

// splitAt splits a bucket at its stored split point; each child gets an
// equi-depth interior split of its own (mass median under the uniform
// assumption = geometric midpoint, since each half is uniform).
func (h *EDDado) splitAt(s int) {
	st := h.st
	left, right, split := st.Left(s), st.Right(s), h.splits[s]
	row := st.Row(s)
	cl, cr := row[0], row[1]

	st.SetBorders(s, left, split)
	h.scratch[0], h.scratch[1] = cl/2, cl/2
	st.SetRow(s, h.scratch[:])
	h.splits[s] = (left + split) / 2

	st.Insert(s+1, split, right)
	h.scratch[0], h.scratch[1] = cr/2, cr/2
	st.SetRow(s+1, h.scratch[:])
	h.splits = append(h.splits, 0)
	copy(h.splits[s+2:], h.splits[s+1:])
	h.splits[s+1] = (split + right) / 2

	h.devs[s] = h.deviation(s)
	h.devs = append(h.devs, 0)
	copy(h.devs[s+2:], h.devs[s+1:])
	h.devs[s+1] = h.deviation(s + 1)
}

// massMedian returns the position where half of the combined mass of
// buckets m and m+1 lies.
func (h *EDDado) massMedian(m int, total float64) float64 {
	st := h.st
	target := total / 2
	rowA, rowB := st.Row(m), st.Row(m+1)
	segs := [4][3]float64{
		{st.Left(m), h.splits[m], rowA[0]},
		{h.splits[m], st.Right(m), rowA[1]},
		{st.Left(m + 1), h.splits[m+1], rowB[0]},
		{h.splits[m+1], st.Right(m + 1), rowB[1]},
	}
	first, last := st.Left(m), st.Right(m+1)
	acc := 0.0
	for _, seg := range segs {
		lo, hi, c := seg[0], seg[1], seg[2]
		if acc+c >= target && c > 0 {
			frac := (target - acc) / c
			x := lo + frac*(hi-lo)
			// Keep the split strictly interior.
			if x <= first {
				x = math.Nextafter(first, math.Inf(1))
			}
			if x >= last {
				x = math.Nextafter(last, math.Inf(-1))
			}
			return x
		}
		acc += c
	}
	return (first + last) / 2
}
