package core

import (
	"fmt"
	"math"
	"sort"

	"dynahist/internal/histogram"
)

// EDDado is the equi-depth sub-division variant of the DADO histogram —
// the other §4 design alternative the paper explored ("using equi-depth
// divisions instead of equi-width divisions"). Each bucket stores an
// explicit interior split point instead of implicitly halving its
// range: right after a reorganisation the split sits at the bucket's
// mass median (equal counts on both sides, hence "equi-depth"), and the
// bucket's deviation measures how far the two halves' densities stray
// from the bucket mean as inserts and deletes accumulate.
//
// The reorganisation machinery mirrors DVO/DADO: one split-merge pair
// per update when it strictly reduces the total deviation.
type EDDado struct {
	kind       Deviation
	maxBuckets int
	buckets    []edBucket
	devs       []float64
	total      float64

	reorganisations int
}

// edBucket is [Left, Right) with an interior split at Split and counts
// CL in [Left, Split), CR in [Split, Right).
type edBucket struct {
	Left, Split, Right float64
	CL, CR             float64
}

func (b *edBucket) count() float64 { return b.CL + b.CR }

func (b *edBucket) massBelow(x float64) float64 {
	switch {
	case x <= b.Left:
		return 0
	case x >= b.Right:
		return b.count()
	case x <= b.Split:
		if b.Split == b.Left {
			return b.CL
		}
		return b.CL * (x - b.Left) / (b.Split - b.Left)
	default:
		if b.Right == b.Split {
			return b.CL + b.CR
		}
		return b.CL + b.CR*(x-b.Split)/(b.Right-b.Split)
	}
}

// NewEDDado returns an equi-depth-subdivision dynamic histogram.
func NewEDDado(kind Deviation, maxBuckets int) (*EDDado, error) {
	if maxBuckets < 2 {
		return nil, fmt.Errorf("core: maxBuckets %d < 2", maxBuckets)
	}
	if kind != Variance && kind != AbsDeviation {
		return nil, fmt.Errorf("core: unknown deviation kind %d", int(kind))
	}
	return &EDDado{kind: kind, maxBuckets: maxBuckets}, nil
}

// NewEDDadoMemory sizes the histogram for a byte budget. An equi-depth
// bucket stores two borders' worth of interior state (left + split)
// plus two counters, i.e. the same 12-byte footprint as a DADO bucket
// plus one extra 4-byte split position.
func NewEDDadoMemory(kind Deviation, memBytes int) (*EDDado, error) {
	perBucket := 3*histogram.BorderBytes + 2*histogram.CounterBytes
	n := (memBytes - histogram.BorderBytes) / perBucket
	if n < 2 {
		return nil, fmt.Errorf("core: %dB cannot hold two equi-depth buckets", memBytes)
	}
	return NewEDDado(kind, n)
}

// MaxBuckets returns the bucket budget.
func (h *EDDado) MaxBuckets() int { return h.maxBuckets }

// Total returns the current total point count.
func (h *EDDado) Total() float64 { return h.total }

// Reorganisations returns the number of split-merge pairs performed.
func (h *EDDado) Reorganisations() int { return h.reorganisations }

// Buckets exposes the state as ordinary histogram buckets: each
// equi-depth bucket appears with its true sub-division by splitting the
// counters at the stored split position (two unequal-width sub-buckets
// are approximated by the matching piecewise densities).
func (h *EDDado) Buckets() []histogram.Bucket {
	out := make([]histogram.Bucket, 0, len(h.buckets))
	for i := range h.buckets {
		b := &h.buckets[i]
		// Represent the two unequal halves exactly as two buckets.
		if b.Split > b.Left && b.Split < b.Right {
			out = append(out,
				histogram.Bucket{Left: b.Left, Right: b.Split, Subs: []float64{b.CL}},
				histogram.Bucket{Left: b.Split, Right: b.Right, Subs: []float64{b.CR}},
			)
			continue
		}
		out = append(out, histogram.Bucket{Left: b.Left, Right: b.Right, Subs: []float64{b.count()}})
	}
	return out
}

// CDF returns the approximate fraction of mass in (-∞, x].
func (h *EDDado) CDF(x float64) float64 {
	if h.total <= 0 {
		return 0
	}
	mass := 0.0
	for i := range h.buckets {
		if h.buckets[i].Left >= x {
			break
		}
		mass += h.buckets[i].massBelow(x)
	}
	return mass / h.total
}

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *EDDado) EstimateRange(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	var below, above float64
	for i := range h.buckets {
		b := &h.buckets[i]
		above += b.massBelow(hi + 1)
		below += b.massBelow(lo)
	}
	return above - below
}

// Insert adds one occurrence of v.
func (h *EDDado) Insert(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	h.total++
	if i := h.find(v); i >= 0 {
		b := &h.buckets[i]
		if v < b.Split {
			b.CL++
		} else {
			b.CR++
		}
		h.devs[i] = h.deviation(b)
		h.maybeSplitMerge()
		return nil
	}
	h.insertSingleton(v, 1)
	if len(h.buckets) > h.maxBuckets {
		if m := h.bestMergePair(-1); m >= 0 {
			h.mergeAt(m)
		}
	}
	return nil
}

// Delete removes one occurrence of v, spilling to the nearest bucket
// with positive count when needed (§7.3).
func (h *EDDado) Delete(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	if h.total < 1 {
		return ErrEmpty
	}
	i := h.find(v)
	if i < 0 || !h.decrement(i, v) {
		i = h.nearestPositive(v)
		if i < 0 || !h.decrement(i, v) {
			return ErrEmpty
		}
	}
	h.total--
	h.maybeSplitMerge()
	return nil
}

func (h *EDDado) decrement(i int, v float64) bool {
	b := &h.buckets[i]
	x := math.Min(math.Max(v, b.Left), b.Right-1e-9)
	if x < b.Split && b.CL >= 1 {
		b.CL--
	} else if x >= b.Split && b.CR >= 1 {
		b.CR--
	} else if b.CL >= 1 {
		b.CL--
	} else if b.CR >= 1 {
		b.CR--
	} else if c := b.count(); c >= 1 {
		scale := (c - 1) / c
		b.CL *= scale
		b.CR *= scale
	} else {
		return false
	}
	h.devs[i] = h.deviation(b)
	return true
}

func (h *EDDado) find(v float64) int {
	i := sort.Search(len(h.buckets), func(j int) bool { return h.buckets[j].Right > v })
	if i < len(h.buckets) && v >= h.buckets[i].Left && v < h.buckets[i].Right {
		return i
	}
	return -1
}

func (h *EDDado) nearestPositive(v float64) int {
	best, bestDist := -1, 0.0
	for i := range h.buckets {
		if h.buckets[i].count() < 1 {
			continue
		}
		d := 0.0
		switch {
		case v < h.buckets[i].Left:
			d = h.buckets[i].Left - v
		case v >= h.buckets[i].Right:
			d = v - h.buckets[i].Right
		}
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

func (h *EDDado) insertSingleton(v, count float64) {
	left := math.Floor(v)
	right := left + 1
	pos := sort.Search(len(h.buckets), func(j int) bool { return h.buckets[j].Left > v })
	if pos > 0 && h.buckets[pos-1].Right > left {
		left = h.buckets[pos-1].Right
	}
	if pos < len(h.buckets) && h.buckets[pos].Left < right {
		right = h.buckets[pos].Left
	}
	if right <= left {
		if i := h.nearestPositive(v); i >= 0 {
			b := &h.buckets[i]
			if v < b.Split {
				b.CL += count
			} else {
				b.CR += count
			}
			h.devs[i] = h.deviation(b)
		}
		return
	}
	nb := edBucket{Left: left, Split: (left + right) / 2, Right: right, CL: count / 2, CR: count / 2}
	h.buckets = append(h.buckets, edBucket{})
	copy(h.buckets[pos+1:], h.buckets[pos:])
	h.buckets[pos] = nb
	h.devs = append(h.devs, 0)
	copy(h.devs[pos+1:], h.devs[pos:])
	h.devs[pos] = h.deviation(&h.buckets[pos])
}

// deviation integrates |density − mean| (or its square) over the two
// unequal-width halves.
func (h *EDDado) deviation(b *edBucket) float64 {
	w := b.Right - b.Left
	if w <= 0 {
		return 0
	}
	mean := b.count() / w
	dev := 0.0
	for _, half := range [2][2]float64{{b.Left, b.Split}, {b.Split, b.Right}} {
		hw := half[1] - half[0]
		if hw <= 0 {
			continue
		}
		c := b.CL
		if half[0] == b.Split {
			c = b.CR
		}
		d := c/hw - mean
		if h.kind == Variance {
			dev += hw * d * d
		} else {
			dev += hw * math.Abs(d)
		}
	}
	return dev
}

// mergedDeviation is the deviation the merged bucket would carry,
// measured over the four original half-segments (plus any gap) against
// the merged mean density.
func (h *EDDado) mergedDeviation(a, b *edBucket) float64 {
	w := b.Right - a.Left
	if w <= 0 {
		return 0
	}
	mean := (a.count() + b.count()) / w
	dev := 0.0
	add := func(lo, hi, c float64) {
		hw := hi - lo
		if hw <= 0 {
			return
		}
		d := c/hw - mean
		if h.kind == Variance {
			dev += hw * d * d
		} else {
			dev += hw * math.Abs(d)
		}
	}
	add(a.Left, a.Split, a.CL)
	add(a.Split, a.Right, a.CR)
	add(b.Left, b.Split, b.CL)
	add(b.Split, b.Right, b.CR)
	if gap := b.Left - a.Right; gap > 0 {
		if h.kind == Variance {
			dev += gap * mean * mean
		} else {
			dev += gap * mean
		}
	}
	return dev
}

func (h *EDDado) bestSplit() int {
	best, bestDev := -1, 0.0
	for i := range h.buckets {
		if h.buckets[i].Right-h.buckets[i].Left <= 1+1e-9 {
			continue
		}
		if h.devs[i] > bestDev {
			best, bestDev = i, h.devs[i]
		}
	}
	return best
}

func (h *EDDado) bestMergePair(exclude int) int {
	best, bestDev := -1, math.Inf(1)
	for m := 0; m+1 < len(h.buckets); m++ {
		if m == exclude || m+1 == exclude {
			continue
		}
		d := h.mergedDeviation(&h.buckets[m], &h.buckets[m+1])
		if d < bestDev {
			best, bestDev = m, d
		}
	}
	return best
}

func (h *EDDado) maybeSplitMerge() {
	if len(h.buckets) < 3 {
		return
	}
	s := h.bestSplit()
	if s < 0 {
		return
	}
	m := h.bestMergePair(s)
	if m < 0 {
		return
	}
	vm := h.mergedDeviation(&h.buckets[m], &h.buckets[m+1])
	if vm >= h.devs[s]-1e-12 {
		return
	}
	h.mergeAt(m)
	if s > m+1 {
		s--
	}
	h.splitAt(s)
	h.reorganisations++
}

// mergeAt merges buckets m and m+1 into one bucket whose split is the
// mass median of the combined piecewise profile, re-establishing the
// equi-depth sub-division.
func (h *EDDado) mergeAt(m int) {
	a, b := h.buckets[m], h.buckets[m+1]
	total := a.count() + b.count()
	nb := edBucket{Left: a.Left, Right: b.Right}
	nb.Split = massMedian(&a, &b, total)
	nb.CL = a.massBelow(nb.Split) + b.massBelow(nb.Split)
	nb.CR = total - nb.CL
	h.buckets[m] = nb
	h.buckets = append(h.buckets[:m+1], h.buckets[m+2:]...)
	h.devs[m] = h.deviation(&h.buckets[m])
	h.devs = append(h.devs[:m+1], h.devs[m+2:]...)
}

// splitAt splits a bucket at its stored split point; each child gets an
// equi-depth interior split of its own (mass median under the uniform
// assumption = geometric midpoint, since each half is uniform).
func (h *EDDado) splitAt(s int) {
	old := h.buckets[s]
	left := edBucket{
		Left: old.Left, Right: old.Split,
		Split: (old.Left + old.Split) / 2,
		CL:    old.CL / 2, CR: old.CL / 2,
	}
	right := edBucket{
		Left: old.Split, Right: old.Right,
		Split: (old.Split + old.Right) / 2,
		CL:    old.CR / 2, CR: old.CR / 2,
	}
	h.buckets[s] = left
	h.buckets = append(h.buckets, edBucket{})
	copy(h.buckets[s+2:], h.buckets[s+1:])
	h.buckets[s+1] = right
	h.devs[s] = h.deviation(&h.buckets[s])
	h.devs = append(h.devs, 0)
	copy(h.devs[s+2:], h.devs[s+1:])
	h.devs[s+1] = h.deviation(&h.buckets[s+1])
}

// massMedian returns the position where half of the combined mass of a
// and b lies.
func massMedian(a, b *edBucket, total float64) float64 {
	target := total / 2
	segs := [4][3]float64{
		{a.Left, a.Split, a.CL},
		{a.Split, a.Right, a.CR},
		{b.Left, b.Split, b.CL},
		{b.Split, b.Right, b.CR},
	}
	acc := 0.0
	for _, seg := range segs {
		lo, hi, c := seg[0], seg[1], seg[2]
		if acc+c >= target && c > 0 {
			frac := (target - acc) / c
			x := lo + frac*(hi-lo)
			// Keep the split strictly interior.
			if x <= a.Left {
				x = math.Nextafter(a.Left, math.Inf(1))
			}
			if x >= b.Right {
				x = math.Nextafter(b.Right, math.Inf(-1))
			}
			return x
		}
		acc += c
	}
	return (a.Left + b.Right) / 2
}
