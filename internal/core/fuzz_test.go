package core

import (
	"testing"
)

// FuzzRestoreDVO checks that snapshot restoration never panics and that
// every accepted snapshot yields a histogram that can keep working.
func FuzzRestoreDVO(f *testing.F) {
	h, err := NewDADO(8)
	if err != nil {
		f.Fatal(err)
	}
	for v := range 30 {
		if err := h.Insert(float64(v * 3)); err != nil {
			f.Fatal(err)
		}
	}
	blob, err := h.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add(blob[:len(blob)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := RestoreDVO(data)
		if err != nil {
			return
		}
		// An accepted snapshot must produce a usable histogram.
		if err := r.Insert(42); err != nil {
			t.Fatalf("restored histogram rejects inserts: %v", err)
		}
		if c := r.CDF(1e9); c < 0 || c > 1+1e-9 {
			t.Fatalf("restored CDF out of range: %v", c)
		}
	})
}

// FuzzRestoreDC is the DC counterpart.
func FuzzRestoreDC(f *testing.F) {
	h, err := NewDC(8)
	if err != nil {
		f.Fatal(err)
	}
	for v := range 30 {
		if err := h.Insert(float64(v * 3)); err != nil {
			f.Fatal(err)
		}
	}
	blob, err := h.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := RestoreDC(data)
		if err != nil {
			return
		}
		if err := r.Insert(42); err != nil {
			t.Fatalf("restored histogram rejects inserts: %v", err)
		}
		if c := r.CDF(1e9); c < 0 || c > 1+1e-9 {
			t.Fatalf("restored CDF out of range: %v", c)
		}
	})
}
