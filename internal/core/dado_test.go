package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynahist/internal/dist"
	"dynahist/internal/distgen"
	"dynahist/internal/histogram"
	"dynahist/internal/metric"
)

func TestNewDynamicValidation(t *testing.T) {
	if _, err := NewDVO(1); err == nil {
		t.Error("NewDVO(1): want error")
	}
	if _, err := NewDynamic(Variance, 4, 1); err == nil {
		t.Error("subBuckets=1: want error")
	}
	if _, err := NewDynamic(Deviation(9), 4, 2); err == nil {
		t.Error("unknown kind: want error")
	}
	h, err := NewDADOMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxBuckets() != 85 {
		t.Errorf("1KB DADO = %d buckets, want 85", h.MaxBuckets())
	}
	if h.Kind() != AbsDeviation || h.SubBuckets() != 2 {
		t.Error("NewDADOMemory wrong configuration")
	}
	v, err := NewDVOMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != Variance {
		t.Error("NewDVOMemory must use Variance")
	}
	k4, err := NewDynamicMemory(AbsDeviation, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k4.SubBuckets() != 4 || k4.MaxBuckets() != 51 {
		t.Errorf("K=4 at 1KB: %d subs / %d buckets, want 4 / 51", k4.SubBuckets(), k4.MaxBuckets())
	}
}

func TestDeviationClosedForms(t *testing.T) {
	dado, err := NewDADO(4)
	if err != nil {
		t.Fatal(err)
	}
	dvo, err := NewDVO(4)
	if err != nil {
		t.Fatal(err)
	}
	subs := []float64{6, 2}
	// DADO: |cL − cR| = 4; DVO: (cL−cR)²/W = 16/8 = 2.
	if got := dado.devOf(0, 8, subs); math.Abs(got-4) > 1e-12 {
		t.Errorf("DADO deviation = %v, want 4", got)
	}
	if got := dvo.devOf(0, 8, subs); math.Abs(got-2) > 1e-12 {
		t.Errorf("DVO deviation = %v, want 2", got)
	}
	flat := []float64{3, 3}
	if dado.devOf(0, 8, flat) != 0 || dvo.devOf(0, 8, flat) != 0 {
		t.Error("balanced bucket must have zero deviation")
	}
	// The closed-form hot path (devAt) must agree with the generic form.
	if err := dado.loadBuckets([]histogram.Bucket{{Left: 0, Right: 8, Subs: subs}}); err != nil {
		t.Fatal(err)
	}
	if got := dado.devAt(0); math.Abs(got-4) > 1e-12 {
		t.Errorf("DADO devAt = %v, want 4", got)
	}
	if err := dvo.loadBuckets([]histogram.Bucket{{Left: 0, Right: 8, Subs: subs}}); err != nil {
		t.Fatal(err)
	}
	if got := dvo.devAt(0); math.Abs(got-2) > 1e-12 {
		t.Errorf("DVO devAt = %v, want 2", got)
	}
}

func TestSplitNeverIncreasesDeviation(t *testing.T) {
	// Paper §4: splitting a bucket along the sub-bucket border yields
	// children with zero deviation (for two sub-buckets).
	f := func(cl, cr uint16, kindPick bool) bool {
		kind := Variance
		if kindPick {
			kind = AbsDeviation
		}
		h, err := NewDynamic(kind, 4, 2)
		if err != nil {
			return false
		}
		if err := h.loadBuckets([]histogram.Bucket{
			{Left: 0, Right: 16, Subs: []float64{float64(cl), float64(cr)}},
		}); err != nil {
			return false
		}
		before := h.devs[0]
		h.splitAt(0)
		after := h.devs[0] + h.devs[1]
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeNeverDecreasesDeviation(t *testing.T) {
	// Paper §4: the merged bucket's deviation (vs the merged mean) is ≥
	// the summed deviations of the originals.
	f := func(a1, a2, b1, b2 uint16, kindPick bool) bool {
		kind := Variance
		if kindPick {
			kind = AbsDeviation
		}
		h, err := NewDynamic(kind, 4, 2)
		if err != nil {
			return false
		}
		if err := h.loadBuckets([]histogram.Bucket{
			{Left: 0, Right: 8, Subs: []float64{float64(a1), float64(a2)}},
			{Left: 8, Right: 24, Subs: []float64{float64(b1), float64(b2)}},
		}); err != nil {
			return false
		}
		sum := h.devs[0] + h.devs[1]
		return h.mergedDevAt(0) >= sum-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergePreservesMassAndProfile(t *testing.T) {
	h, err := NewDADO(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.loadBuckets([]histogram.Bucket{
		{Left: 0, Right: 8, Subs: []float64{6, 2}},
		{Left: 8, Right: 16, Subs: []float64{4, 4}},
	}); err != nil {
		t.Fatal(err)
	}
	h.mergeAt(0)
	if h.st.Len() != 1 {
		t.Fatalf("merge left %d buckets", h.st.Len())
	}
	m := h.Buckets()[0]
	if m.Left != 0 || m.Right != 16 {
		t.Fatalf("merged range [%v,%v)", m.Left, m.Right)
	}
	if math.Abs(m.Count()-16) > 1e-9 {
		t.Fatalf("merged count %v, want 16", m.Count())
	}
	// Left half of the merged bucket is exactly the old first bucket.
	if math.Abs(m.Subs[0]-8) > 1e-9 || math.Abs(m.Subs[1]-8) > 1e-9 {
		t.Fatalf("merged subs %v, want {8,8}", m.Subs)
	}
}

func TestMergeAcrossGap(t *testing.T) {
	h, err := NewDADO(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.loadBuckets([]histogram.Bucket{
		{Left: 0, Right: 4, Subs: []float64{2, 2}},
		{Left: 12, Right: 16, Subs: []float64{3, 3}},
	}); err != nil {
		t.Fatal(err)
	}
	h.mergeAt(0)
	m := h.Buckets()[0]
	if m.Left != 0 || m.Right != 16 {
		t.Fatalf("merged range [%v,%v), want [0,16)", m.Left, m.Right)
	}
	if math.Abs(m.Count()-10) > 1e-9 {
		t.Fatalf("merged count %v, want 10", m.Count())
	}
	// Left half [0,8): all of bucket 1's mass (4) — the gap [4,12) has
	// zero density. Right half [8,16): all of bucket 2's mass (6).
	if math.Abs(m.Subs[0]-4) > 1e-9 || math.Abs(m.Subs[1]-6) > 1e-9 {
		t.Fatalf("merged subs %v, want {4,6}", m.Subs)
	}
}

func TestDADOExampleFromPaper(t *testing.T) {
	// Figure 4: a bucket with very different counters has high V; an
	// insertion triggers a split of that bucket and a merge of the
	// adjacent low-variance pair.
	h, err := NewDADO(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.loadBuckets([]histogram.Bucket{
		{Left: 0, Right: 2, Subs: []float64{10, 10}},
		{Left: 2, Right: 4, Subs: []float64{100, 4}}, // high variance
		{Left: 4, Right: 6, Subs: []float64{8, 8}},   // low variance
		{Left: 6, Right: 8, Subs: []float64{8, 8}},   // low variance
		{Left: 8, Right: 10, Subs: []float64{12, 10}},
	}); err != nil {
		t.Fatal(err)
	}
	h.total = h.st.TotalMass()

	before := h.TotalDeviation()
	if err := h.Insert(2.5); err != nil {
		t.Fatal(err)
	}
	if h.Reorganisations() != 1 {
		t.Fatalf("expected one split-merge, got %d", h.Reorganisations())
	}
	if h.st.Len() != 5 {
		t.Fatalf("bucket count changed: %d", h.st.Len())
	}
	if h.TotalDeviation() >= before {
		t.Errorf("split-merge did not reduce deviation: %v -> %v", before, h.TotalDeviation())
	}
	// The high-variance bucket should have been split: there is now a
	// border at its midpoint (3).
	foundBorder := false
	for _, b := range h.Buckets() {
		if math.Abs(b.Left-3) < 1e-9 {
			foundBorder = true
		}
	}
	if !foundBorder {
		t.Error("expected a new border at the split point 3")
	}
	if err := histogram.Validate(h.Buckets()); err != nil {
		t.Fatal(err)
	}
}

func TestDVOInsertOutOfRangeBorrows(t *testing.T) {
	h, err := NewDADO(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{10, 20, 30} {
		if err := h.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if len(h.Buckets()) != 3 {
		t.Fatalf("got %d buckets", len(h.Buckets()))
	}
	// Far outlier: borrow a bucket, then merge back to budget.
	if err := h.Insert(1000); err != nil {
		t.Fatal(err)
	}
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("after borrow-merge: %d buckets, want 3", len(bs))
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %v", h.Total())
	}
	if math.Abs(histogram.TotalCount(bs)-4) > 1e-9 {
		t.Fatalf("mass = %v, want 4", histogram.TotalCount(bs))
	}
	// The outlier is still represented somewhere near 1000.
	if got := h.EstimateRange(990, 1005); got < 0.5 {
		t.Errorf("outlier mass = %v, want ≈1", got)
	}
	if err := histogram.Validate(bs); err != nil {
		t.Fatal(err)
	}
}

func TestDVODeleteSpill(t *testing.T) {
	h, err := NewDADO(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{10, 20, 30} {
		if err := h.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a value in a gap between buckets: spills to nearest.
	if err := h.Delete(15); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 2 {
		t.Fatalf("Total = %v, want 2", h.Total())
	}
	// Drain and verify the empty error.
	if err := h.Delete(10); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(30); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(30); err == nil {
		t.Error("delete from empty: want error")
	}
}

func TestDVORejectsNonFinite(t *testing.T) {
	h, err := NewDADO(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(math.Inf(1)); err == nil {
		t.Error("Insert(Inf): want error")
	}
	if err := h.Delete(math.NaN()); err == nil {
		t.Error("Delete(NaN): want error")
	}
}

func TestDVOCDFMonotone(t *testing.T) {
	for _, kind := range []Deviation{Variance, AbsDeviation} {
		h, err := NewDynamic(kind, 16, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for range 3000 {
			if err := h.Insert(float64(rng.Intn(200))); err != nil {
				t.Fatal(err)
			}
		}
		prev := 0.0
		for x := -5.0; x <= 205; x += 0.5 {
			c := h.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
				t.Fatalf("%v: CDF not monotone/bounded at %v: %v", kind, x, c)
			}
			prev = c
		}
		if math.Abs(prev-1) > 1e-9 {
			t.Fatalf("%v: CDF(max) = %v, want 1", kind, prev)
		}
	}
}

// Property: DADO conserves mass under arbitrary insert/delete mixes and
// never exceeds its bucket budget.
func TestDVOMassConservation(t *testing.T) {
	f := func(ops []int16, kindPick bool) bool {
		kind := Variance
		if kindPick {
			kind = AbsDeviation
		}
		h, err := NewDynamic(kind, 6, 2)
		if err != nil {
			return false
		}
		want := 0.0
		for _, op := range ops {
			v := float64(int(op) % 200)
			if v < 0 {
				v = -v
			}
			if op%3 != 0 {
				if h.Insert(v) == nil {
					want++
				}
			} else if h.Delete(v) == nil {
				want--
			}
		}
		if math.Abs(h.Total()-want) > 1e-6 {
			return false
		}
		if len(h.Buckets()) > h.MaxBuckets() {
			return false
		}
		if histogram.Validate(h.Buckets()) != nil {
			return false
		}
		return math.Abs(histogram.TotalCount(h.Buckets())-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Integration: DADO beats DVO on a skewed reference workload, and both
// approximate well (paper Figs. 5-8 ordering, coarse check).
func TestDADOQualityOnReference(t *testing.T) {
	cfg := distgen.Reference(7)
	cfg.Points = 20000
	cfg.Clusters = 200
	values, err := distgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	values = distgen.Shuffled(values, 7)
	truth := dist.New(cfg.Domain)
	dado, err := NewDADOMemory(1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if err := dado.Insert(float64(v)); err != nil {
			t.Fatal(err)
		}
		if err := truth.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	ks, err := metric.KS(dado.CDF, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 0.03 {
		t.Errorf("DADO KS = %v, want < 0.03 on the reference distribution", ks)
	}
}

func TestKSubBucketVariant(t *testing.T) {
	// The §4 ablation variant with more sub-buckets must behave
	// structurally like the base algorithm.
	h, err := NewDynamic(AbsDeviation, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for range 2000 {
		if err := h.Insert(float64(rng.Intn(300))); err != nil {
			t.Fatal(err)
		}
	}
	if len(h.Buckets()) > 8 {
		t.Fatalf("over budget: %d buckets", len(h.Buckets()))
	}
	if err := histogram.Validate(h.Buckets()); err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Total()-2000) > 1e-6 {
		t.Fatalf("Total = %v", h.Total())
	}
}

// Property: the pair-deviation cache always matches a from-scratch
// recomputation after arbitrary workloads (the cache is pure
// acceleration, never behaviour).
func TestPairCacheConsistency(t *testing.T) {
	f := func(ops []int16, kindPick bool) bool {
		kind := Variance
		if kindPick {
			kind = AbsDeviation
		}
		h, err := NewDynamic(kind, 8, 2)
		if err != nil {
			return false
		}
		for _, op := range ops {
			v := float64(int(op) % 400)
			if v < 0 {
				v = -v
			}
			if op%3 != 0 {
				if h.Insert(v) != nil {
					return false
				}
			} else {
				_ = h.Delete(v)
			}
		}
		h.ensurePairCache()
		for m := 0; m+1 < h.st.Len(); m++ {
			want := h.mergedDevAt(m)
			if math.Abs(h.pairDevs[m]-want) > 1e-9*(1+want) {
				return false
			}
		}
		// Per-bucket deviations too, checked against the generic
		// hypothetical-bucket form (independent of the closed-form hot
		// path and the running totals).
		for i := 0; i < h.st.Len(); i++ {
			want := h.devOf(h.st.Left(i), h.st.Right(i), h.st.Row(i))
			if math.Abs(h.devs[i]-want) > 1e-9*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
