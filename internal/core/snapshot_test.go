package core

import (
	"math"
	"math/rand"
	"testing"

	"dynahist/internal/dist"
	"dynahist/internal/metric"
)

func TestDCSnapshotRoundTrip(t *testing.T) {
	h, err := NewDC(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetAlphaMin(1e-4); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for range 5000 {
		if err := h.Insert(float64(rng.Intn(300))); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreDC(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != h.Total() || r.MaxBuckets() != h.MaxBuckets() ||
		r.Repartitions() != h.Repartitions() || r.SingularCount() != h.SingularCount() ||
		r.Loading() != h.Loading() {
		t.Fatal("restored DC state differs")
	}
	for x := -5.0; x <= 305; x += 1 {
		if math.Abs(r.CDF(x)-h.CDF(x)) > 1e-12 {
			t.Fatalf("restored CDF differs at %v", x)
		}
	}
	// The restored histogram keeps maintaining: identical behaviour on
	// the same continuation stream.
	for range 2000 {
		v := float64(rng.Intn(300))
		if err := h.Insert(v); err != nil {
			t.Fatal(err)
		}
		if err := r.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	for x := -5.0; x <= 305; x += 1 {
		if math.Abs(r.CDF(x)-h.CDF(x)) > 1e-9 {
			t.Fatalf("continued CDF differs at %v", x)
		}
	}
}

func TestDCSnapshotDuringLoading(t *testing.T) {
	h, err := NewDC(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{5, 9, 9, 42} {
		if err := h.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	if !h.Loading() {
		t.Fatal("should be loading")
	}
	blob, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreDC(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Loading() {
		t.Fatal("restored histogram should still be loading")
	}
	if r.Total() != 4 {
		t.Fatalf("Total = %v", r.Total())
	}
	// It can keep loading new distinct values.
	if err := r.Insert(100); err != nil {
		t.Fatal(err)
	}
	if r.Total() != 5 {
		t.Fatalf("Total after continue = %v", r.Total())
	}
}

func TestDVOSnapshotRoundTrip(t *testing.T) {
	for _, kind := range []Deviation{Variance, AbsDeviation} {
		h, err := NewDynamic(kind, 24, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		truth := dist.New(500)
		for range 8000 {
			v := rng.Intn(501)
			if err := h.Insert(float64(v)); err != nil {
				t.Fatal(err)
			}
			if err := truth.Insert(v); err != nil {
				t.Fatal(err)
			}
		}
		blob, err := h.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		r, err := RestoreDVO(blob)
		if err != nil {
			t.Fatal(err)
		}
		if r.Kind() != kind || r.SubBuckets() != 2 || r.MaxBuckets() != 24 ||
			r.Total() != h.Total() || r.Reorganisations() != h.Reorganisations() {
			t.Fatal("restored DVO state differs")
		}
		ksH, err := metric.KS(h.CDF, truth)
		if err != nil {
			t.Fatal(err)
		}
		ksR, err := metric.KS(r.CDF, truth)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ksH-ksR) > 1e-12 {
			t.Fatalf("restored KS %v != %v", ksR, ksH)
		}
		// Continuation equivalence.
		for range 2000 {
			v := float64(rng.Intn(501))
			if err := h.Insert(v); err != nil {
				t.Fatal(err)
			}
			if err := r.Insert(v); err != nil {
				t.Fatal(err)
			}
		}
		for x := 0.0; x <= 501; x += 1 {
			if math.Abs(r.CDF(x)-h.CDF(x)) > 1e-9 {
				t.Fatalf("%v: continued CDF differs at %v", kind, x)
			}
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	h, err := NewDADO(8)
	if err != nil {
		t.Fatal(err)
	}
	for v := range 20 {
		if err := h.Insert(float64(v * 7)); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreDVO(blob[:10]); err == nil {
		t.Error("truncated: want error")
	}
	if _, err := RestoreDVO(append(blob, 1)); err == nil {
		t.Error("trailing: want error")
	}
	bad := make([]byte, len(blob))
	copy(bad, blob)
	bad[0] ^= 0xff
	if _, err := RestoreDVO(bad); err == nil {
		t.Error("bad magic: want error")
	}
	// Wrong kind: a DVO blob fed to RestoreDC.
	if _, err := RestoreDC(blob); err == nil {
		t.Error("kind mismatch: want error")
	}
	if _, err := RestoreDVO(nil); err == nil {
		t.Error("nil: want error")
	}
}
