package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynahist/internal/dist"
	"dynahist/internal/distgen"
	"dynahist/internal/histogram"
	"dynahist/internal/metric"
)

func TestNewEDDadoValidation(t *testing.T) {
	if _, err := NewEDDado(AbsDeviation, 1); err == nil {
		t.Error("maxBuckets 1: want error")
	}
	if _, err := NewEDDado(Deviation(7), 4); err == nil {
		t.Error("bad kind: want error")
	}
	if _, err := NewEDDadoMemory(AbsDeviation, 8); err == nil {
		t.Error("8 bytes: want error")
	}
	h, err := NewEDDadoMemory(AbsDeviation, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// 20 bytes per bucket (left + split + right share + 2 counters):
	// (1024−4)/20 = 51 buckets.
	if h.MaxBuckets() != 51 {
		t.Errorf("1KB ED-DADO = %d buckets, want 51", h.MaxBuckets())
	}
}

// edLoad replaces h's state with the given buckets, each entry being
// (left, split, right, cl, cr) — the tests' state-assembly helper for
// the flat-store layout.
func edLoad(h *EDDado, entries ...[5]float64) {
	h.st.Reset()
	h.splits = h.splits[:0]
	h.devs = h.devs[:0]
	for i, e := range entries {
		h.st.Insert(i, e[0], e[2])
		h.st.Add(i, 0, e[3])
		h.st.Add(i, 1, e[4])
		h.splits = append(h.splits, e[1])
		h.devs = append(h.devs, 0)
	}
	for i := range entries {
		h.devs[i] = h.deviation(i)
	}
}

func TestEDBucketMassBelow(t *testing.T) {
	h, err := NewEDDado(AbsDeviation, 4)
	if err != nil {
		t.Fatal(err)
	}
	edLoad(h, [5]float64{0, 2, 10, 4, 4})
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {1, 2}, {2, 4}, {6, 6}, {10, 8}, {12, 8},
	}
	for _, c := range cases {
		if got := h.massBelow(0, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("massBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestEDDadoDeviation(t *testing.T) {
	h, err := NewEDDado(AbsDeviation, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Split at the geometric midpoint with equal counts: zero deviation.
	edLoad(h, [5]float64{0, 5, 10, 4, 4})
	if got := h.deviation(0); got > 1e-12 {
		t.Errorf("balanced deviation = %v, want 0", got)
	}
	// Split far off-center with equal counts: halves have different
	// densities, so deviation is positive.
	edLoad(h, [5]float64{0, 2, 10, 4, 4})
	if got := h.deviation(0); got <= 0 {
		t.Errorf("skewed deviation = %v, want > 0", got)
	}
}

func TestEDDadoInsertDeleteMass(t *testing.T) {
	h, err := NewEDDado(AbsDeviation, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for range 3000 {
		if err := h.Insert(float64(rng.Intn(400))); err != nil {
			t.Fatal(err)
		}
	}
	if h.Total() != 3000 {
		t.Fatalf("Total = %v", h.Total())
	}
	for range 1000 {
		if err := h.Delete(float64(rng.Intn(400))); err != nil {
			t.Fatal(err)
		}
	}
	if h.Total() != 2000 {
		t.Fatalf("Total after deletes = %v", h.Total())
	}
	if got := h.EstimateRange(0, 400); math.Abs(got-2000) > 1e-6 {
		t.Fatalf("whole-range estimate %v, want 2000", got)
	}
	if err := histogram.Validate(h.Buckets()); err != nil {
		t.Fatal(err)
	}
}

func TestEDDadoCDFMonotone(t *testing.T) {
	for _, kind := range []Deviation{Variance, AbsDeviation} {
		h, err := NewEDDado(kind, 16)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		for range 4000 {
			if err := h.Insert(float64(rng.Intn(300))); err != nil {
				t.Fatal(err)
			}
		}
		prev := 0.0
		for x := -2.0; x <= 305; x += 0.5 {
			c := h.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1+1e-12 {
				t.Fatalf("%v: CDF not monotone at %v: %v", kind, x, c)
			}
			prev = c
		}
		if math.Abs(prev-1) > 1e-9 {
			t.Fatalf("%v: CDF(max) = %v", kind, prev)
		}
	}
}

func TestEDDadoBudget(t *testing.T) {
	h, err := NewEDDado(AbsDeviation, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for range 5000 {
		if err := h.Insert(float64(rng.Intn(2000))); err != nil {
			t.Fatal(err)
		}
	}
	if h.st.Len() > 6 {
		t.Fatalf("%d buckets over budget 6", h.st.Len())
	}
}

func TestEDDadoRejectsNonFinite(t *testing.T) {
	h, err := NewEDDado(AbsDeviation, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Insert(math.NaN()); err == nil {
		t.Error("Insert(NaN): want error")
	}
	if err := h.Delete(math.Inf(1)); err == nil {
		t.Error("Delete(Inf): want error")
	}
	if err := h.Delete(3); err == nil {
		t.Error("delete from empty: want error")
	}
}

func TestEDDadoMergeRestoresEquiDepth(t *testing.T) {
	h, err := NewEDDado(AbsDeviation, 4)
	if err != nil {
		t.Fatal(err)
	}
	edLoad(h,
		[5]float64{0, 5, 10, 2, 2},
		[5]float64{10, 15, 20, 10, 10},
	)
	h.mergeAt(0)
	row := h.st.Row(0)
	if math.Abs(row[0]-row[1]) > 1e-9 {
		t.Errorf("merged counts not equi-depth: %v vs %v", row[0], row[1])
	}
	if math.Abs(h.count(0)-24) > 1e-9 {
		t.Errorf("merged count %v, want 24", h.count(0))
	}
	// Mass median lies inside the heavy second bucket.
	if h.splits[0] <= 10 || h.splits[0] >= 20 {
		t.Errorf("split %v should be inside (10,20)", h.splits[0])
	}
}

func TestEDDadoQuality(t *testing.T) {
	cfg := distgen.Reference(5)
	cfg.Points = 20000
	cfg.Clusters = 200
	values, err := distgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	values = distgen.Shuffled(values, 5)
	h, err := NewEDDadoMemory(AbsDeviation, 1024)
	if err != nil {
		t.Fatal(err)
	}
	truth := dist.New(cfg.Domain)
	for _, v := range values {
		if err := h.Insert(float64(v)); err != nil {
			t.Fatal(err)
		}
		if err := truth.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	ks, err := metric.KS(h.CDF, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 0.05 {
		t.Errorf("ED-DADO KS = %v, want < 0.05", ks)
	}
}

// Property: mass is conserved across arbitrary workloads.
func TestEDDadoMassProperty(t *testing.T) {
	f := func(ops []int16) bool {
		h, err := NewEDDado(AbsDeviation, 6)
		if err != nil {
			return false
		}
		want := 0.0
		for _, op := range ops {
			v := float64(int(op) % 300)
			if v < 0 {
				v = -v
			}
			if op%3 != 0 {
				if h.Insert(v) == nil {
					want++
				}
			} else if h.Delete(v) == nil {
				want--
			}
		}
		if math.Abs(h.Total()-want) > 1e-6 {
			return false
		}
		return math.Abs(histogram.TotalCount(h.Buckets())-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
