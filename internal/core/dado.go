package core

import (
	"fmt"
	"math"
	"sort"

	"dynahist/internal/histerr"
	"dynahist/internal/histogram"
)

// Deviation selects the bucket-deviation measure that drives split and
// merge decisions (paper §4 and §4.1).
type Deviation int

const (
	// Variance minimises Σ (f − f̄)² — the V-Optimal partition
	// constraint; this is the DVO histogram.
	Variance Deviation = iota
	// AbsDeviation minimises Σ |f − f̄| — the Average-Deviation Optimal
	// partition constraint; this is the DADO histogram, the paper's
	// best performer. It is more robust to frequency outliers (§4.1).
	AbsDeviation
)

func (d Deviation) String() string {
	switch d {
	case Variance:
		return "variance"
	case AbsDeviation:
		return "abs-deviation"
	default:
		return fmt.Sprintf("Deviation(%d)", int(d))
	}
}

// DefaultSubBuckets is the number of sub-bucket counters per bucket.
// The paper found two or three comparable and finer subdivisions worse
// (§4); all its experiments use two.
const DefaultSubBuckets = 2

// DVO is a Dynamic V-Optimal (or, with AbsDeviation, Dynamic
// Average-Deviation Optimal) histogram (paper §4). Each bucket carries
// K equal-width sub-bucket counters; after every update the histogram
// considers one split-merge pair: split the bucket with the largest
// internal deviation, merge the adjacent pair with the smallest merged
// deviation, and perform both exactly when that strictly reduces the
// overall deviation (minΔV < 0, the paper's most aggressive upper
// bound of 0).
//
// The bucket state lives in a flat histogram.Store arena — one
// contiguous borders array, one contiguous sub-counter array and an
// incrementally maintained per-bucket count array — so the hot insert
// path does a binary search over one dense array, touches one counter
// row, and updates the cached deviations in O(K) with no Count()
// re-sums and no per-bucket heap allocations.
type DVO struct {
	kind       Deviation
	subBuckets int
	maxBuckets int
	st         *histogram.Store // sorted by Left; gaps allowed
	devs       []float64        // cached per-bucket deviation
	pairDevs   []float64        // cached merged deviation of (i, i+1)
	pairsStale bool             // batch mode defers pair upkeep to settle
	total      float64

	// scratch holds 2·K floats for split/merge row construction, so
	// reorganisations allocate nothing in steady state.
	scratch []float64

	reorganisations int
}

// NewDVO returns a Dynamic V-Optimal histogram with the given bucket
// budget and two sub-buckets per bucket.
func NewDVO(maxBuckets int) (*DVO, error) {
	return NewDynamic(Variance, maxBuckets, DefaultSubBuckets)
}

// NewDADO returns a Dynamic Average-Deviation Optimal histogram with
// the given bucket budget and two sub-buckets per bucket.
func NewDADO(maxBuckets int) (*DVO, error) {
	return NewDynamic(AbsDeviation, maxBuckets, DefaultSubBuckets)
}

// NewDynamic returns a dynamic split-merge histogram with an explicit
// deviation kind and sub-bucket count (the paper's §4 ablation: "we
// have also tried … dividing each bucket into more than two parts").
func NewDynamic(kind Deviation, maxBuckets, subBuckets int) (*DVO, error) {
	if maxBuckets < 2 {
		return nil, fmt.Errorf("core: %w: maxBuckets %d < 2 (split-merge needs at least two buckets)", histerr.ErrBudget, maxBuckets)
	}
	if subBuckets < 2 {
		return nil, fmt.Errorf("core: %w: subBuckets %d < 2 (deviation needs internal structure)", histerr.ErrOption, subBuckets)
	}
	if kind != Variance && kind != AbsDeviation {
		return nil, fmt.Errorf("core: %w: unknown deviation kind %d", histerr.ErrKind, int(kind))
	}
	return &DVO{
		kind:       kind,
		subBuckets: subBuckets,
		maxBuckets: maxBuckets,
		st:         histogram.NewStore(subBuckets),
		scratch:    make([]float64, 2*subBuckets),
	}, nil
}

// NewDVOMemory returns a DVO sized for a byte budget using the paper's
// accounting (§4.4: n+1 borders and 2n counters).
func NewDVOMemory(memBytes int) (*DVO, error) {
	n, err := histogram.BucketsForMemory(memBytes, DefaultSubBuckets)
	if err != nil {
		return nil, err
	}
	return NewDVO(n)
}

// NewDADOMemory returns a DADO sized for a byte budget.
func NewDADOMemory(memBytes int) (*DVO, error) {
	n, err := histogram.BucketsForMemory(memBytes, DefaultSubBuckets)
	if err != nil {
		return nil, err
	}
	return NewDADO(n)
}

// NewDynamicMemory returns a K-sub-bucket dynamic histogram sized for a
// byte budget ((n+1) borders + K·n counters).
func NewDynamicMemory(kind Deviation, memBytes, subBuckets int) (*DVO, error) {
	n, err := histogram.BucketsForMemory(memBytes, subBuckets)
	if err != nil {
		return nil, err
	}
	return NewDynamic(kind, n, subBuckets)
}

// Kind returns the deviation measure in use.
func (h *DVO) Kind() Deviation { return h.kind }

// SubBuckets returns the per-bucket counter count.
func (h *DVO) SubBuckets() int { return h.subBuckets }

// MaxBuckets returns the bucket budget.
func (h *DVO) MaxBuckets() int { return h.maxBuckets }

// Total returns the current total point count.
func (h *DVO) Total() float64 { return h.total }

// Reorganisations returns the number of split-merge pairs performed.
func (h *DVO) Reorganisations() int { return h.reorganisations }

// Buckets returns a deep copy of the current bucket list.
func (h *DVO) Buckets() []histogram.Bucket { return h.st.Buckets() }

// Store exposes the flat bucket arena for read-only consumers (views,
// equivalence tests); callers must not mutate it.
func (h *DVO) Store() *histogram.Store { return h.st }

// TotalDeviation returns the current overall deviation Σ V_i — the
// quantity the split-merge machinery greedily minimises.
func (h *DVO) TotalDeviation() float64 {
	s := 0.0
	for _, d := range h.devs {
		s += d
	}
	return s
}

// CDF returns the approximate fraction of mass in (-∞, x].
func (h *DVO) CDF(x float64) float64 {
	if h.total <= 0 {
		return 0
	}
	return h.st.MassBelowAll(x) / h.total
}

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *DVO) EstimateRange(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	return h.st.MassBelowAll(hi+1) - h.st.MassBelowAll(lo)
}

// Insert adds one occurrence of v. Values inside an existing bucket
// increment a sub-counter and then run the split-merge check; values
// outside every bucket borrow a new singleton bucket and merge the best
// pair to pay for it (paper Figure 3).
func (h *DVO) Insert(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	h.total++
	if i := h.st.Find(v); i >= 0 {
		h.st.AddAt(i, v, 1)
		h.devs[i] = h.devAt(i)
		h.refreshPairsAround(i)
		h.maybeSplitMerge()
		return nil
	}
	h.insertSingleton(v, 1)
	if h.st.Len() > h.maxBuckets {
		m := h.bestMergePair(-1)
		h.mergeAt(m)
	}
	// The borrow-merge may leave a profitable split-merge pair behind
	// (frequent under sorted insertions, where every point lands at the
	// advancing edge); run the regular check as well.
	h.maybeSplitMerge()
	return nil
}

// Delete removes one occurrence of v by decrementing the sub-counter
// that covers it. If that counter is empty the deletion spills: first
// to the other counters of the same bucket, then to the nearest bucket
// with positive count (§7.3). The split-merge check runs afterwards so
// that emptied buckets are reclaimed by zero-cost merges.
func (h *DVO) Delete(v float64) error {
	if err := h.deleteNoSettle(v); err != nil {
		return err
	}
	h.maybeSplitMerge()
	return nil
}

// deleteNoSettle is Delete without the trailing split-merge check —
// the batch path runs the check once per batch instead.
func (h *DVO) deleteNoSettle(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	if h.total < 1 {
		return ErrEmpty
	}
	i := h.st.Find(v)
	if i < 0 {
		i = h.nearestPositive(v)
		if i < 0 {
			return ErrEmpty
		}
	}
	if !h.decrement(i, v) {
		j := h.nearestPositive(v)
		if j < 0 || !h.decrement(j, v) {
			return ErrEmpty
		}
	}
	h.total--
	return nil
}

// InsertBatch adds every value in vs — the native batch write path.
// All counter increments are applied first and the split-merge
// consideration runs once at the end, repeated to quiescence: the
// per-insert trigger is two O(n) scans (bestSplit and bestMergePair)
// that dominate the per-value insert cost, and a batch needs only one
// settled structure, not one per intermediate state. The settle loop
// is capped at one reorganisation per inserted value — exactly the
// reorganisation budget the per-value path would have had — so a
// batch can never churn more than the equivalent insert loop.
//
// A non-finite value stops the batch there; values before it stay
// applied.
func (h *DVO) InsertBatch(vs []float64) error {
	h.pairsStale = true
	for _, v := range vs {
		if err := histogram.CheckFinite(v); err != nil {
			h.settle(len(vs))
			return err
		}
		h.total++
		if i := h.st.Find(v); i >= 0 {
			h.st.AddAt(i, v, 1)
			h.devs[i] = h.devAt(i)
			continue
		}
		h.insertSingleton(v, 1)
		if h.st.Len() > h.maxBuckets {
			// bestMergePair rebuilds the pair cache (clearing the stale
			// mark); re-mark it so the rest of the batch stays deferred.
			m := h.bestMergePair(-1)
			h.mergeAt(m)
			h.pairsStale = true
		}
	}
	h.settle(len(vs))
	return nil
}

// DeleteBatch removes every value in vs with the same deferred
// maintenance as InsertBatch. A value the summary cannot locate stops
// the batch with ErrEmpty; values before it stay applied.
func (h *DVO) DeleteBatch(vs []float64) error {
	h.pairsStale = true
	for _, v := range vs {
		if err := h.deleteNoSettle(v); err != nil {
			h.settle(len(vs))
			return err
		}
	}
	h.settle(len(vs))
	return nil
}

// settle runs the split-merge consideration to quiescence, performing
// at most maxReorgs reorganisations.
func (h *DVO) settle(maxReorgs int) {
	for range maxReorgs {
		before := h.reorganisations
		h.maybeSplitMerge()
		if h.reorganisations == before {
			return
		}
	}
}

// decrement removes one point from bucket i, preferring the sub-counter
// covering v. Reports whether a decrement happened.
func (h *DVO) decrement(i int, v float64) bool {
	st := h.st
	x := v
	if !st.Contains(i, x) {
		if x < st.Left(i) {
			x = st.Left(i)
		} else {
			x = st.Right(i) - 1e-9
		}
	}
	s := st.SubIndex(i, x)
	row := st.Row(i)
	if row[s] >= 1 {
		st.Add(i, s, -1)
		h.devs[i] = h.devAt(i)
		h.refreshPairsAround(i)
		return true
	}
	for j := range row {
		if row[j] >= 1 {
			st.Add(i, j, -1)
			h.devs[i] = h.devAt(i)
			h.refreshPairsAround(i)
			return true
		}
	}
	// Split and merge produce fractional counters, so the bucket may
	// hold ≥ 1 point without any single counter reaching 1; remove the
	// point proportionally.
	if c := st.Count(i); c >= 1 {
		st.Scale(i, (c-1)/c)
		h.devs[i] = h.devAt(i)
		h.refreshPairsAround(i)
		return true
	}
	return false
}

// refreshPairsAround recomputes the cached merged deviation of the
// pairs touching bucket i. While the cache is marked stale (batch
// mode) this is a no-op: settle rebuilds the whole cache once, which
// costs one O(n) pass per batch instead of two merged-deviation
// evaluations per value.
func (h *DVO) refreshPairsAround(i int) {
	if h.pairsStale {
		return
	}
	h.ensurePairCache()
	if i > 0 {
		h.pairDevs[i-1] = h.mergedDevAt(i - 1)
	}
	if i+1 < h.st.Len() {
		h.pairDevs[i] = h.mergedDevAt(i)
	}
}

// ensurePairCache (re)builds the pair-deviation cache when it is stale
// (deferred batch upkeep) or its length no longer matches the bucket
// list — which happens when restore paths assemble bucket state
// directly.
func (h *DVO) ensurePairCache() {
	want := h.st.Len() - 1
	if want < 0 {
		want = 0
	}
	if !h.pairsStale && len(h.pairDevs) == want {
		return
	}
	if cap(h.pairDevs) < want {
		h.pairDevs = make([]float64, want)
	} else {
		h.pairDevs = h.pairDevs[:want]
	}
	for m := range h.pairDevs {
		h.pairDevs[m] = h.mergedDevAt(m)
	}
	h.pairsStale = false
}

// nearestPositive returns the bucket with count ≥ 1 nearest to v.
func (h *DVO) nearestPositive(v float64) int {
	st := h.st
	best, bestDist := -1, 0.0
	for i := 0; i < st.Len(); i++ {
		if st.Count(i) < 1 {
			continue
		}
		d := 0.0
		switch {
		case v < st.Left(i):
			d = st.Left(i) - v
		case v >= st.Right(i):
			d = v - st.Right(i)
		}
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// nearestAny returns the bucket whose range is closest to v (the
// containing bucket if any), or -1 for an empty store.
func (h *DVO) nearestAny(v float64) int {
	st := h.st
	if st.Len() == 0 {
		return -1
	}
	if i := st.Find(v); i >= 0 {
		return i
	}
	best, bestDist := -1, math.Inf(1)
	for i := 0; i < st.Len(); i++ {
		d := 0.0
		switch {
		case v < st.Left(i):
			d = st.Left(i) - v
		case v >= st.Right(i):
			d = v - st.Right(i)
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// insertSingleton adds a width-one bucket [v, v+1) holding count points
// spread across its sub-buckets, keeping the list sorted.
func (h *DVO) insertSingleton(v, count float64) {
	st := h.st
	left := math.Floor(v)
	right := left + 1
	// Clip against neighbours so buckets never overlap (a point can
	// land in a sub-unit gap between buckets).
	pos := sort.Search(st.Len(), func(j int) bool { return st.Left(j) > v })
	if pos > 0 && st.Right(pos-1) > left {
		left = st.Right(pos - 1)
	}
	if pos < st.Len() && st.Left(pos) < right {
		right = st.Left(pos)
	}
	if right <= left {
		// No room: the value sits flush between two buckets; widen
		// nothing and attribute the point to the nearest bucket instead.
		i := h.nearestAny(v)
		x := math.Min(math.Max(v, st.Left(i)), st.Right(i)-1e-9)
		st.AddAt(i, x, count)
		h.devs[i] = h.devAt(i)
		h.refreshPairsAround(i)
		return
	}
	st.Insert(pos, left, right)
	st.FillUniform(pos, count)
	h.devs = append(h.devs, 0)
	copy(h.devs[pos+1:], h.devs[pos:])
	h.devs[pos] = h.devAt(pos)
	// One more pair slot; the new bucket participates in up to two
	// pairs.
	if st.Len() > 1 {
		h.pairDevs = append(h.pairDevs, 0)
		if pos < len(h.pairDevs) {
			copy(h.pairDevs[pos+1:], h.pairDevs[pos:])
		}
	}
	h.refreshPairsAround(pos)
}

// devAt returns bucket i's internal deviation under the
// continuous-value and uniform-within-sub-bucket assumptions: the
// integral over the bucket of |density − mean density| (AbsDeviation)
// or (density − mean density)² (Variance). For two sub-buckets the
// loop is unrolled, preserving the exact operation order (and hence
// bit-identical results — split/merge decisions compare these values
// at near-ties, so the arithmetic is part of the observable
// behaviour). The bucket count is re-summed from the row rather than
// read off the store's running total for the same reason: the
// maintained total drifts from the fresh sum by ulps.
func (h *DVO) devAt(i int) float64 {
	st := h.st
	w := st.Width(i)
	if w <= 0 {
		return 0
	}
	if h.subBuckets == 2 {
		row := st.Row(i)
		subW := w / 2
		mean := (row[0] + row[1]) / w
		d0 := row[0]/subW - mean
		d1 := row[1]/subW - mean
		if h.kind == Variance {
			return subW*d0*d0 + subW*d1*d1
		}
		return subW*math.Abs(d0) + subW*math.Abs(d1)
	}
	row := st.Row(i)
	k := float64(h.subBuckets)
	subW := w / k
	c := 0.0
	for _, v := range row {
		c += v
	}
	mean := c / w
	dev := 0.0
	for _, c := range row {
		d := c/subW - mean
		if h.kind == Variance {
			dev += subW * d * d
		} else {
			dev += subW * math.Abs(d)
		}
	}
	return dev
}

// devOf returns the deviation a hypothetical bucket [left, right) with
// the given counters would carry.
func (h *DVO) devOf(left, right float64, row []float64) float64 {
	w := right - left
	if w <= 0 {
		return 0
	}
	k := float64(len(row))
	subW := w / k
	total := 0.0
	for _, c := range row {
		total += c
	}
	mean := total / w
	dev := 0.0
	for _, c := range row {
		d := c/subW - mean
		if h.kind == Variance {
			dev += subW * d * d
		} else {
			dev += subW * math.Abs(d)
		}
	}
	return dev
}

// mergedDevAt returns the deviation the merged bucket over the pair
// (m, m+1) would have, computed against the full piecewise profile of
// both buckets (and the zero-density gap between them, if any) — the
// V_M of the paper's Eq. (4).
func (h *DVO) mergedDevAt(m int) float64 {
	st := h.st
	la, rb := st.Left(m), st.Right(m+1)
	w := rb - la
	if w <= 0 {
		return 0
	}
	// Fresh row sums, not the maintained running totals: near-tie
	// merge decisions compare these values, so ulp drift matters.
	ca, cb := 0.0, 0.0
	for _, v := range st.Row(m) {
		ca += v
	}
	for _, v := range st.Row(m + 1) {
		cb += v
	}
	mean := (ca + cb) / w
	variance := h.kind == Variance
	dev := 0.0
	for b := m; b <= m+1; b++ {
		subW := st.Width(b) / float64(h.subBuckets)
		for _, c := range st.Row(b) {
			d := c/subW - mean
			if variance {
				dev += subW * d * d
			} else {
				dev += subW * math.Abs(d)
			}
		}
	}
	if gap := st.Left(m+1) - st.Right(m); gap > 0 {
		if variance {
			dev += gap * mean * mean
		} else {
			dev += gap * mean
		}
	}
	return dev
}

// bestSplit returns the index of the bucket with the largest deviation
// (Theorem 4.1: if minΔV < 0 the bucket to split is the one with the
// largest V). Buckets of sub-unit width are not split further — the
// histogram cannot resolve below one integer value.
func (h *DVO) bestSplit() int {
	best, bestDev := -1, 0.0
	for i := 0; i < h.st.Len(); i++ {
		if h.st.Width(i) <= 1+1e-9 {
			continue
		}
		if h.devs[i] > bestDev {
			best, bestDev = i, h.devs[i]
		}
	}
	return best
}

// bestMergePair returns the left index m of the adjacent pair (m, m+1)
// with the smallest merged deviation, excluding pairs that contain the
// bucket at index exclude (pass -1 to consider all pairs). Returns -1
// when no pair exists. Pair costs come from the incrementally
// maintained cache, making the per-update scan O(n) regardless of the
// sub-bucket count.
func (h *DVO) bestMergePair(exclude int) int {
	h.ensurePairCache()
	best, bestDev := -1, math.Inf(1)
	for m := 0; m+1 < h.st.Len(); m++ {
		if m == exclude || m+1 == exclude {
			continue
		}
		if d := h.pairDevs[m]; d < bestDev {
			best, bestDev = m, d
		}
	}
	return best
}

// maybeSplitMerge performs one split-merge pair when it strictly
// reduces the overall deviation (paper Figure 3): ΔV = V_M − V_S < 0.
func (h *DVO) maybeSplitMerge() {
	if h.st.Len() < 3 {
		return
	}
	s := h.bestSplit()
	if s < 0 {
		return
	}
	m := h.bestMergePair(s)
	if m < 0 {
		return
	}
	h.ensurePairCache()
	vm := h.pairDevs[m]
	// ΔV = V_M + V_children − V_S. With two sub-buckets the children
	// have zero deviation and this is exactly the paper's Eq. (4); with
	// more sub-buckets the residual child deviation is charged too.
	if vm+h.splitChildDeviation(s) >= h.devs[s]-1e-12 {
		return // minΔV ≥ 0: the current histogram is already best
	}
	// Order matters only for index bookkeeping: do the merge first and
	// fix up the split index if it sat to the right of the pair.
	h.mergeAt(m)
	if s > m+1 {
		s--
	}
	h.splitAt(s)
	h.reorganisations++
}

// splitChildDeviation returns the summed deviation the two children of
// splitting bucket s at its midpoint would carry. It is zero for two
// sub-buckets (each child's counters come out equal).
func (h *DVO) splitChildDeviation(s int) float64 {
	if h.subBuckets == 2 {
		return 0
	}
	st := h.st
	mid := (st.Left(s) + st.Right(s)) / 2
	k := h.subBuckets
	row := h.scratch[:k]
	dev := 0.0
	for _, half := range [2][2]float64{{st.Left(s), mid}, {mid, st.Right(s)}} {
		subW := (half[1] - half[0]) / float64(k)
		for j := 0; j < k; j++ {
			lo := half[0] + float64(j)*subW
			row[j] = st.Mass(s, lo, lo+subW)
		}
		dev += h.devOf(half[0], half[1], row)
	}
	return dev
}

// mergeAt replaces buckets m and m+1 by their merge. The new bucket's
// sub-counters are read off the old piecewise profile (paper §4:
// "calculated based on the counts and ranges of the original buckets").
func (h *DVO) mergeAt(m int) {
	st := h.st
	left, right := st.Left(m), st.Right(m+1)
	k := h.subBuckets
	subW := (right - left) / float64(k)
	row := h.scratch[:k]
	for j := 0; j < k; j++ {
		lo := left + float64(j)*subW
		hi := lo + subW
		row[j] = st.Mass(m, lo, hi) + st.Mass(m+1, lo, hi)
	}
	st.Remove(m + 1)
	st.SetBorders(m, left, right)
	st.SetRow(m, row)
	h.devs[m] = h.devAt(m)
	h.devs = append(h.devs[:m+1], h.devs[m+2:]...)
	// The pair (m, m+1) disappears; neighbours change.
	if len(h.pairDevs) == st.Len() { // cache was sized pre-merge
		h.pairDevs = append(h.pairDevs[:m], h.pairDevs[m+1:]...)
	}
	h.refreshPairsAround(m)
}

// splitAt replaces bucket s by two buckets split at its midpoint. Each
// half's sub-counters are read off the old profile; with two
// sub-buckets this yields children with equal counters and hence zero
// deviation (paper §4: "splitting never increases V").
func (h *DVO) splitAt(s int) {
	st := h.st
	left, right := st.Left(s), st.Right(s)
	mid := (left + right) / 2
	k := h.subBuckets
	lrow := h.scratch[:k]
	rrow := h.scratch[k : 2*k]
	lsubW := (mid - left) / float64(k)
	rsubW := (right - mid) / float64(k)
	for j := 0; j < k; j++ {
		lo := left + float64(j)*lsubW
		lrow[j] = st.Mass(s, lo, lo+lsubW)
		ro := mid + float64(j)*rsubW
		rrow[j] = st.Mass(s, ro, ro+rsubW)
	}
	st.SetBorders(s, left, mid)
	st.SetRow(s, lrow)
	st.Insert(s+1, mid, right)
	st.SetRow(s+1, rrow)
	h.devs[s] = h.devAt(s)
	h.devs = append(h.devs, 0)
	copy(h.devs[s+2:], h.devs[s+1:])
	h.devs[s+1] = h.devAt(s + 1)
	// One new pair between the children; both edge pairs change.
	if len(h.pairDevs) == st.Len()-2 { // cache was sized pre-split
		h.pairDevs = append(h.pairDevs, 0)
		copy(h.pairDevs[s+1:], h.pairDevs[s:])
	}
	h.refreshPairsAround(s)
	h.refreshPairsAround(s + 1)
}

// loadBuckets replaces the histogram's bucket state wholesale — the
// restore path (and the tests' state-assembly helper). Deviation and
// pair caches are rebuilt from scratch.
func (h *DVO) loadBuckets(buckets []histogram.Bucket) error {
	st, err := histogram.StoreOfBuckets(buckets, h.subBuckets)
	if err != nil {
		return err
	}
	h.st = st
	h.devs = make([]float64, st.Len())
	for i := range h.devs {
		h.devs[i] = h.devAt(i)
	}
	h.pairDevs = nil
	h.ensurePairCache()
	return nil
}
