package core

import (
	"fmt"
	"math"
	"sort"

	"dynahist/internal/histerr"
	"dynahist/internal/histogram"
)

// Deviation selects the bucket-deviation measure that drives split and
// merge decisions (paper §4 and §4.1).
type Deviation int

const (
	// Variance minimises Σ (f − f̄)² — the V-Optimal partition
	// constraint; this is the DVO histogram.
	Variance Deviation = iota
	// AbsDeviation minimises Σ |f − f̄| — the Average-Deviation Optimal
	// partition constraint; this is the DADO histogram, the paper's
	// best performer. It is more robust to frequency outliers (§4.1).
	AbsDeviation
)

func (d Deviation) String() string {
	switch d {
	case Variance:
		return "variance"
	case AbsDeviation:
		return "abs-deviation"
	default:
		return fmt.Sprintf("Deviation(%d)", int(d))
	}
}

// DefaultSubBuckets is the number of sub-bucket counters per bucket.
// The paper found two or three comparable and finer subdivisions worse
// (§4); all its experiments use two.
const DefaultSubBuckets = 2

// DVO is a Dynamic V-Optimal (or, with AbsDeviation, Dynamic
// Average-Deviation Optimal) histogram (paper §4). Each bucket carries
// K equal-width sub-bucket counters; after every update the histogram
// considers one split-merge pair: split the bucket with the largest
// internal deviation, merge the adjacent pair with the smallest merged
// deviation, and perform both exactly when that strictly reduces the
// overall deviation (minΔV < 0, the paper's most aggressive upper
// bound of 0).
type DVO struct {
	kind       Deviation
	subBuckets int
	maxBuckets int
	buckets    []histogram.Bucket // sorted by Left; gaps allowed
	devs       []float64          // cached per-bucket deviation
	pairDevs   []float64          // cached merged deviation of (i, i+1)
	total      float64

	reorganisations int
}

// NewDVO returns a Dynamic V-Optimal histogram with the given bucket
// budget and two sub-buckets per bucket.
func NewDVO(maxBuckets int) (*DVO, error) {
	return NewDynamic(Variance, maxBuckets, DefaultSubBuckets)
}

// NewDADO returns a Dynamic Average-Deviation Optimal histogram with
// the given bucket budget and two sub-buckets per bucket.
func NewDADO(maxBuckets int) (*DVO, error) {
	return NewDynamic(AbsDeviation, maxBuckets, DefaultSubBuckets)
}

// NewDynamic returns a dynamic split-merge histogram with an explicit
// deviation kind and sub-bucket count (the paper's §4 ablation: "we
// have also tried … dividing each bucket into more than two parts").
func NewDynamic(kind Deviation, maxBuckets, subBuckets int) (*DVO, error) {
	if maxBuckets < 2 {
		return nil, fmt.Errorf("core: %w: maxBuckets %d < 2 (split-merge needs at least two buckets)", histerr.ErrBudget, maxBuckets)
	}
	if subBuckets < 2 {
		return nil, fmt.Errorf("core: %w: subBuckets %d < 2 (deviation needs internal structure)", histerr.ErrOption, subBuckets)
	}
	if kind != Variance && kind != AbsDeviation {
		return nil, fmt.Errorf("core: %w: unknown deviation kind %d", histerr.ErrKind, int(kind))
	}
	return &DVO{kind: kind, subBuckets: subBuckets, maxBuckets: maxBuckets}, nil
}

// NewDVOMemory returns a DVO sized for a byte budget using the paper's
// accounting (§4.4: n+1 borders and 2n counters).
func NewDVOMemory(memBytes int) (*DVO, error) {
	n, err := histogram.BucketsForMemory(memBytes, DefaultSubBuckets)
	if err != nil {
		return nil, err
	}
	return NewDVO(n)
}

// NewDADOMemory returns a DADO sized for a byte budget.
func NewDADOMemory(memBytes int) (*DVO, error) {
	n, err := histogram.BucketsForMemory(memBytes, DefaultSubBuckets)
	if err != nil {
		return nil, err
	}
	return NewDADO(n)
}

// NewDynamicMemory returns a K-sub-bucket dynamic histogram sized for a
// byte budget ((n+1) borders + K·n counters).
func NewDynamicMemory(kind Deviation, memBytes, subBuckets int) (*DVO, error) {
	n, err := histogram.BucketsForMemory(memBytes, subBuckets)
	if err != nil {
		return nil, err
	}
	return NewDynamic(kind, n, subBuckets)
}

// Kind returns the deviation measure in use.
func (h *DVO) Kind() Deviation { return h.kind }

// SubBuckets returns the per-bucket counter count.
func (h *DVO) SubBuckets() int { return h.subBuckets }

// MaxBuckets returns the bucket budget.
func (h *DVO) MaxBuckets() int { return h.maxBuckets }

// Total returns the current total point count.
func (h *DVO) Total() float64 { return h.total }

// Reorganisations returns the number of split-merge pairs performed.
func (h *DVO) Reorganisations() int { return h.reorganisations }

// Buckets returns a deep copy of the current bucket list.
func (h *DVO) Buckets() []histogram.Bucket { return histogram.CloneBuckets(h.buckets) }

// TotalDeviation returns the current overall deviation Σ V_i — the
// quantity the split-merge machinery greedily minimises.
func (h *DVO) TotalDeviation() float64 {
	s := 0.0
	for _, d := range h.devs {
		s += d
	}
	return s
}

// CDF returns the approximate fraction of mass in (-∞, x].
func (h *DVO) CDF(x float64) float64 {
	if h.total <= 0 {
		return 0
	}
	return histogram.MassBelow(h.buckets, x) / h.total
}

// EstimateRange returns the approximate number of points with integer
// value in [lo, hi] inclusive.
func (h *DVO) EstimateRange(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	return histogram.MassBelow(h.buckets, hi+1) - histogram.MassBelow(h.buckets, lo)
}

// Insert adds one occurrence of v. Values inside an existing bucket
// increment a sub-counter and then run the split-merge check; values
// outside every bucket borrow a new singleton bucket and merge the best
// pair to pay for it (paper Figure 3).
func (h *DVO) Insert(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	h.total++
	if i := histogram.FindBucket(h.buckets, v); i >= 0 {
		b := &h.buckets[i]
		b.Subs[b.SubIndex(v)]++
		h.devs[i] = h.deviation(b)
		h.refreshPairsAround(i)
		h.maybeSplitMerge()
		return nil
	}
	h.insertSingleton(v, 1)
	if len(h.buckets) > h.maxBuckets {
		m := h.bestMergePair(-1)
		h.mergeAt(m)
	}
	// The borrow-merge may leave a profitable split-merge pair behind
	// (frequent under sorted insertions, where every point lands at the
	// advancing edge); run the regular check as well.
	h.maybeSplitMerge()
	return nil
}

// Delete removes one occurrence of v by decrementing the sub-counter
// that covers it. If that counter is empty the deletion spills: first
// to the other counters of the same bucket, then to the nearest bucket
// with positive count (§7.3). The split-merge check runs afterwards so
// that emptied buckets are reclaimed by zero-cost merges.
func (h *DVO) Delete(v float64) error {
	if err := h.deleteNoSettle(v); err != nil {
		return err
	}
	h.maybeSplitMerge()
	return nil
}

// deleteNoSettle is Delete without the trailing split-merge check —
// the batch path runs the check once per batch instead.
func (h *DVO) deleteNoSettle(v float64) error {
	if err := histogram.CheckFinite(v); err != nil {
		return err
	}
	if h.total < 1 {
		return ErrEmpty
	}
	i := histogram.FindBucket(h.buckets, v)
	if i < 0 {
		i = h.nearestPositive(v)
		if i < 0 {
			return ErrEmpty
		}
	}
	if !h.decrement(i, v) {
		j := h.nearestPositive(v)
		if j < 0 || !h.decrement(j, v) {
			return ErrEmpty
		}
	}
	h.total--
	return nil
}

// InsertBatch adds every value in vs — the native batch write path.
// All counter increments are applied first and the split-merge
// consideration runs once at the end, repeated to quiescence: the
// per-insert trigger is two O(n) scans (bestSplit and bestMergePair)
// that dominate the per-value insert cost, and a batch needs only one
// settled structure, not one per intermediate state. The settle loop
// is capped at one reorganisation per inserted value — exactly the
// reorganisation budget the per-value path would have had — so a
// batch can never churn more than the equivalent insert loop.
//
// A non-finite value stops the batch there; values before it stay
// applied.
func (h *DVO) InsertBatch(vs []float64) error {
	for _, v := range vs {
		if err := histogram.CheckFinite(v); err != nil {
			h.settle(len(vs))
			return err
		}
		h.total++
		if i := histogram.FindBucket(h.buckets, v); i >= 0 {
			b := &h.buckets[i]
			b.Subs[b.SubIndex(v)]++
			h.devs[i] = h.deviation(b)
			h.refreshPairsAround(i)
			continue
		}
		h.insertSingleton(v, 1)
		if len(h.buckets) > h.maxBuckets {
			m := h.bestMergePair(-1)
			h.mergeAt(m)
		}
	}
	h.settle(len(vs))
	return nil
}

// DeleteBatch removes every value in vs with the same deferred
// maintenance as InsertBatch. A value the summary cannot locate stops
// the batch with ErrEmpty; values before it stay applied.
func (h *DVO) DeleteBatch(vs []float64) error {
	for _, v := range vs {
		if err := h.deleteNoSettle(v); err != nil {
			h.settle(len(vs))
			return err
		}
	}
	h.settle(len(vs))
	return nil
}

// settle runs the split-merge consideration to quiescence, performing
// at most maxReorgs reorganisations.
func (h *DVO) settle(maxReorgs int) {
	for range maxReorgs {
		before := h.reorganisations
		h.maybeSplitMerge()
		if h.reorganisations == before {
			return
		}
	}
}

// decrement removes one point from bucket i, preferring the sub-counter
// covering v. Reports whether a decrement happened.
func (h *DVO) decrement(i int, v float64) bool {
	b := &h.buckets[i]
	x := v
	if !b.Contains(x) {
		if x < b.Left {
			x = b.Left
		} else {
			x = b.Right - 1e-9
		}
	}
	s := b.SubIndex(x)
	if b.Subs[s] >= 1 {
		b.Subs[s]--
		h.devs[i] = h.deviation(b)
		h.refreshPairsAround(i)
		return true
	}
	for j := range b.Subs {
		if b.Subs[j] >= 1 {
			b.Subs[j]--
			h.devs[i] = h.deviation(b)
			h.refreshPairsAround(i)
			return true
		}
	}
	// Split and merge produce fractional counters, so the bucket may
	// hold ≥ 1 point without any single counter reaching 1; remove the
	// point proportionally.
	if c := b.Count(); c >= 1 {
		scale := (c - 1) / c
		for j := range b.Subs {
			b.Subs[j] *= scale
		}
		h.devs[i] = h.deviation(b)
		h.refreshPairsAround(i)
		return true
	}
	return false
}

// refreshPairsAround recomputes the cached merged deviation of the
// pairs touching bucket i.
func (h *DVO) refreshPairsAround(i int) {
	h.ensurePairCache()
	if i > 0 {
		h.pairDevs[i-1] = h.mergedDeviation(&h.buckets[i-1], &h.buckets[i])
	}
	if i+1 < len(h.buckets) {
		h.pairDevs[i] = h.mergedDeviation(&h.buckets[i], &h.buckets[i+1])
	}
}

// ensurePairCache (re)builds the pair-deviation cache when its length
// no longer matches the bucket list — which happens when tests or
// restore paths assemble bucket state directly.
func (h *DVO) ensurePairCache() {
	want := len(h.buckets) - 1
	if want < 0 {
		want = 0
	}
	if len(h.pairDevs) == want {
		return
	}
	h.pairDevs = make([]float64, want)
	for m := range h.pairDevs {
		h.pairDevs[m] = h.mergedDeviation(&h.buckets[m], &h.buckets[m+1])
	}
}

// nearestPositive returns the bucket with count ≥ 1 nearest to v.
func (h *DVO) nearestPositive(v float64) int {
	best, bestDist := -1, 0.0
	for i := range h.buckets {
		if h.buckets[i].Count() < 1 {
			continue
		}
		d := 0.0
		switch {
		case v < h.buckets[i].Left:
			d = h.buckets[i].Left - v
		case v >= h.buckets[i].Right:
			d = v - h.buckets[i].Right
		}
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// insertSingleton adds a width-one bucket [v, v+1) holding count points
// spread across its sub-buckets, keeping the list sorted.
func (h *DVO) insertSingleton(v, count float64) {
	left := math.Floor(v)
	right := left + 1
	// Clip against neighbours so buckets never overlap (a point can
	// land in a sub-unit gap between buckets).
	pos := sort.Search(len(h.buckets), func(j int) bool { return h.buckets[j].Left > v })
	if pos > 0 && h.buckets[pos-1].Right > left {
		left = h.buckets[pos-1].Right
	}
	if pos < len(h.buckets) && h.buckets[pos].Left < right {
		right = h.buckets[pos].Left
	}
	if right <= left {
		// No room: the value sits flush between two buckets; widen
		// nothing and attribute the point to the nearest bucket instead.
		i := histogram.NearestBucket(h.buckets, v)
		b := &h.buckets[i]
		x := math.Min(math.Max(v, b.Left), b.Right-1e-9)
		b.Subs[b.SubIndex(x)] += count
		h.devs[i] = h.deviation(b)
		h.refreshPairsAround(i)
		return
	}
	nb := histogram.NewBucket(left, right, h.subBuckets)
	for j := range nb.Subs {
		nb.Subs[j] = count / float64(h.subBuckets)
	}
	h.buckets = append(h.buckets, histogram.Bucket{})
	copy(h.buckets[pos+1:], h.buckets[pos:])
	h.buckets[pos] = nb
	h.devs = append(h.devs, 0)
	copy(h.devs[pos+1:], h.devs[pos:])
	h.devs[pos] = h.deviation(&h.buckets[pos])
	// One more pair slot; the new bucket participates in up to two
	// pairs.
	if len(h.buckets) > 1 {
		h.pairDevs = append(h.pairDevs, 0)
		if pos < len(h.pairDevs) {
			copy(h.pairDevs[pos+1:], h.pairDevs[pos:])
		}
	}
	h.refreshPairsAround(pos)
}

// deviation returns the bucket's internal deviation under the
// continuous-value and uniform-within-sub-bucket assumptions: the
// integral over the bucket of |density − mean density| (AbsDeviation)
// or (density − mean density)² (Variance). For two sub-buckets these
// reduce to |cL − cR| and (cL − cR)²/W, the closed forms behind the
// paper's Figure 4 discussion.
func (h *DVO) deviation(b *histogram.Bucket) float64 {
	w := b.Width()
	if w <= 0 {
		return 0
	}
	k := float64(len(b.Subs))
	subW := w / k
	mean := b.Count() / w
	dev := 0.0
	for _, c := range b.Subs {
		d := c/subW - mean
		if h.kind == Variance {
			dev += subW * d * d
		} else {
			dev += subW * math.Abs(d)
		}
	}
	return dev
}

// mergedDeviation returns the deviation the merged bucket [a.Left,
// b.Right) would have, computed against the full piecewise profile of
// both buckets (and the zero-density gap between them, if any) — the
// V_M of the paper's Eq. (4).
func (h *DVO) mergedDeviation(a, b *histogram.Bucket) float64 {
	w := b.Right - a.Left
	if w <= 0 {
		return 0
	}
	mean := (a.Count() + b.Count()) / w
	dev := 0.0
	addSegs := func(bk *histogram.Bucket) {
		subW := bk.Width() / float64(len(bk.Subs))
		for _, c := range bk.Subs {
			d := c/subW - mean
			if h.kind == Variance {
				dev += subW * d * d
			} else {
				dev += subW * math.Abs(d)
			}
		}
	}
	addSegs(a)
	addSegs(b)
	if gap := b.Left - a.Right; gap > 0 {
		if h.kind == Variance {
			dev += gap * mean * mean
		} else {
			dev += gap * mean
		}
	}
	return dev
}

// bestSplit returns the index of the bucket with the largest deviation
// (Theorem 4.1: if minΔV < 0 the bucket to split is the one with the
// largest V). Buckets of sub-unit width are not split further — the
// histogram cannot resolve below one integer value.
func (h *DVO) bestSplit() int {
	best, bestDev := -1, 0.0
	for i := range h.buckets {
		if h.buckets[i].Width() <= 1+1e-9 {
			continue
		}
		if h.devs[i] > bestDev {
			best, bestDev = i, h.devs[i]
		}
	}
	return best
}

// bestMergePair returns the left index m of the adjacent pair (m, m+1)
// with the smallest merged deviation, excluding pairs that contain the
// bucket at index exclude (pass -1 to consider all pairs). Returns -1
// when no pair exists. Pair costs come from the incrementally
// maintained cache, making the per-update scan O(n) regardless of the
// sub-bucket count.
func (h *DVO) bestMergePair(exclude int) int {
	h.ensurePairCache()
	best, bestDev := -1, math.Inf(1)
	for m := 0; m+1 < len(h.buckets); m++ {
		if m == exclude || m+1 == exclude {
			continue
		}
		if d := h.pairDevs[m]; d < bestDev {
			best, bestDev = m, d
		}
	}
	return best
}

// maybeSplitMerge performs one split-merge pair when it strictly
// reduces the overall deviation (paper Figure 3): ΔV = V_M − V_S < 0.
func (h *DVO) maybeSplitMerge() {
	if len(h.buckets) < 3 {
		return
	}
	s := h.bestSplit()
	if s < 0 {
		return
	}
	m := h.bestMergePair(s)
	if m < 0 {
		return
	}
	h.ensurePairCache()
	vm := h.pairDevs[m]
	// ΔV = V_M + V_children − V_S. With two sub-buckets the children
	// have zero deviation and this is exactly the paper's Eq. (4); with
	// more sub-buckets the residual child deviation is charged too.
	if vm+h.splitChildDeviation(s) >= h.devs[s]-1e-12 {
		return // minΔV ≥ 0: the current histogram is already best
	}
	// Order matters only for index bookkeeping: do the merge first and
	// fix up the split index if it sat to the right of the pair.
	h.mergeAt(m)
	if s > m+1 {
		s--
	}
	h.splitAt(s)
	h.reorganisations++
}

// splitChildDeviation returns the summed deviation the two children of
// splitting bucket s at its midpoint would carry. It is zero for two
// sub-buckets (each child's counters come out equal).
func (h *DVO) splitChildDeviation(s int) float64 {
	if h.subBuckets == 2 {
		return 0
	}
	old := &h.buckets[s]
	mid := (old.Left + old.Right) / 2
	dev := 0.0
	for _, half := range [][2]float64{{old.Left, mid}, {mid, old.Right}} {
		child := histogram.NewBucket(half[0], half[1], h.subBuckets)
		subW := child.Width() / float64(h.subBuckets)
		for j := range child.Subs {
			lo := child.Left + float64(j)*subW
			child.Subs[j] = old.Mass(lo, lo+subW)
		}
		dev += h.deviation(&child)
	}
	return dev
}

// mergeAt replaces buckets m and m+1 by their merge. The new bucket's
// sub-counters are read off the old piecewise profile (paper §4:
// "calculated based on the counts and ranges of the original buckets").
func (h *DVO) mergeAt(m int) {
	a, b := &h.buckets[m], &h.buckets[m+1]
	nb := histogram.NewBucket(a.Left, b.Right, h.subBuckets)
	subW := nb.Width() / float64(h.subBuckets)
	for j := range nb.Subs {
		lo := nb.Left + float64(j)*subW
		hi := lo + subW
		nb.Subs[j] = a.Mass(lo, hi) + b.Mass(lo, hi)
	}
	h.buckets[m] = nb
	h.buckets = append(h.buckets[:m+1], h.buckets[m+2:]...)
	h.devs[m] = h.deviation(&h.buckets[m])
	h.devs = append(h.devs[:m+1], h.devs[m+2:]...)
	// The pair (m, m+1) disappears; neighbours change.
	if len(h.pairDevs) == len(h.buckets) { // cache was sized pre-merge
		h.pairDevs = append(h.pairDevs[:m], h.pairDevs[m+1:]...)
	}
	h.refreshPairsAround(m)
}

// splitAt replaces bucket s by two buckets split at its midpoint. Each
// half's sub-counters are read off the old profile; with two
// sub-buckets this yields children with equal counters and hence zero
// deviation (paper §4: "splitting never increases V").
func (h *DVO) splitAt(s int) {
	old := h.buckets[s].Clone()
	mid := (old.Left + old.Right) / 2
	left := histogram.NewBucket(old.Left, mid, h.subBuckets)
	right := histogram.NewBucket(mid, old.Right, h.subBuckets)
	fill := func(nb *histogram.Bucket) {
		subW := nb.Width() / float64(h.subBuckets)
		for j := range nb.Subs {
			lo := nb.Left + float64(j)*subW
			nb.Subs[j] = old.Mass(lo, lo+subW)
		}
	}
	fill(&left)
	fill(&right)
	h.buckets[s] = left
	h.buckets = append(h.buckets, histogram.Bucket{})
	copy(h.buckets[s+2:], h.buckets[s+1:])
	h.buckets[s+1] = right
	h.devs[s] = h.deviation(&h.buckets[s])
	h.devs = append(h.devs, 0)
	copy(h.devs[s+2:], h.devs[s+1:])
	h.devs[s+1] = h.deviation(&h.buckets[s+1])
	// One new pair between the children; both edge pairs change.
	if len(h.pairDevs) == len(h.buckets)-2 { // cache was sized pre-split
		h.pairDevs = append(h.pairDevs, 0)
		copy(h.pairDevs[s+1:], h.pairDevs[s:])
	}
	h.refreshPairsAround(s)
	h.refreshPairsAround(s + 1)
}
