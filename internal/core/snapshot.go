package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"dynahist/internal/binenc"
	"dynahist/internal/histerr"
	"dynahist/internal/histogram"
)

// Full-state snapshots for the dynamic histograms. Unlike the plain
// bucket serialization in internal/histogram (which captures only the
// approximation), a snapshot carries everything needed to *continue
// maintaining* the histogram after a restart: configuration, counters,
// singular flags and phase. A database stores this blob in its catalog
// on checkpoint and restores it at startup, then keeps feeding the
// histogram the table's update stream.

const (
	snapMagic   = 0x44594e53 // "DYNS"
	snapVersion = 1

	snapKindDC  = 1
	snapKindDVO = 2
)

// ErrSnapshot reports a malformed snapshot blob.
var ErrSnapshot = fmt.Errorf("core: %w", histerr.ErrSnapshot)

// Snapshot serializes the DC histogram's complete maintainable state.
func (h *DC) Snapshot() ([]byte, error) {
	bucketBlob, err := histogram.MarshalBuckets(h.st.Buckets())
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 64+len(bucketBlob)+len(h.singular))
	out = binary.LittleEndian.AppendUint32(out, snapMagic)
	out = binary.LittleEndian.AppendUint16(out, snapVersion)
	out = append(out, snapKindDC)
	out = binary.LittleEndian.AppendUint32(out, uint32(h.maxBuckets))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(h.alphaMin))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(h.total))
	if h.loaded {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(h.repartitions))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(h.singular)))
	for _, s := range h.singular {
		if s {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(bucketBlob)))
	out = append(out, bucketBlob...)
	return out, nil
}

// RestoreDC rebuilds a DC histogram from a Snapshot blob. The restored
// histogram continues exactly where the snapshot left off.
func RestoreDC(data []byte) (*DC, error) {
	r := newSnapReader(data)
	if err := r.header(snapKindDC); err != nil {
		return nil, err
	}
	maxBuckets, err := r.u32()
	if err != nil {
		return nil, err
	}
	alphaMin, err := r.f64()
	if err != nil {
		return nil, err
	}
	total, err := r.f64()
	if err != nil {
		return nil, err
	}
	loadedB, err := r.u8()
	if err != nil {
		return nil, err
	}
	repartitions, err := r.u32()
	if err != nil {
		return nil, err
	}
	nSingular, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(nSingular) > uint64(len(data)) {
		return nil, fmt.Errorf("%w: implausible singular count %d", ErrSnapshot, nSingular)
	}
	singular := make([]bool, nSingular)
	for i := range singular {
		b, err := r.u8()
		if err != nil {
			return nil, err
		}
		singular[i] = b != 0
	}
	buckets, err := r.bucketBlob()
	if err != nil {
		return nil, err
	}
	if len(buckets) != len(singular) {
		return nil, fmt.Errorf("%w: %d buckets but %d singular flags", ErrSnapshot, len(buckets), len(singular))
	}
	h, err := NewDC(int(maxBuckets))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if err := h.SetAlphaMin(alphaMin); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if len(buckets) > int(maxBuckets) {
		return nil, fmt.Errorf("%w: %d buckets exceed budget %d", ErrSnapshot, len(buckets), maxBuckets)
	}
	if total < 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return nil, fmt.Errorf("%w: bad total %v", ErrSnapshot, total)
	}
	if mass := histogram.TotalCount(buckets); math.Abs(mass-total) > 1e-6*(1+total) {
		return nil, fmt.Errorf("%w: bucket mass %v disagrees with total %v", ErrSnapshot, mass, total)
	}
	if err := h.loadBuckets(buckets, singular); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	h.total = total
	h.loaded = loadedB != 0
	h.repartitions = int(repartitions)
	if h.loaded {
		h.loadingSeen = nil
	}
	return h, nil
}

// Snapshot serializes the DVO/DADO histogram's complete maintainable
// state.
func (h *DVO) Snapshot() ([]byte, error) {
	bucketBlob, err := histogram.MarshalBuckets(h.st.Buckets())
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 64+len(bucketBlob))
	out = binary.LittleEndian.AppendUint32(out, snapMagic)
	out = binary.LittleEndian.AppendUint16(out, snapVersion)
	out = append(out, snapKindDVO)
	out = append(out, byte(h.kind))
	out = binary.LittleEndian.AppendUint16(out, uint16(h.subBuckets))
	out = binary.LittleEndian.AppendUint32(out, uint32(h.maxBuckets))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(h.total))
	out = binary.LittleEndian.AppendUint32(out, uint32(h.reorganisations))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(bucketBlob)))
	out = append(out, bucketBlob...)
	return out, nil
}

// RestoreDVO rebuilds a DVO/DADO histogram from a Snapshot blob.
func RestoreDVO(data []byte) (*DVO, error) {
	r := newSnapReader(data)
	if err := r.header(snapKindDVO); err != nil {
		return nil, err
	}
	kindB, err := r.u8()
	if err != nil {
		return nil, err
	}
	subBuckets, err := r.u16()
	if err != nil {
		return nil, err
	}
	maxBuckets, err := r.u32()
	if err != nil {
		return nil, err
	}
	total, err := r.f64()
	if err != nil {
		return nil, err
	}
	reorgs, err := r.u32()
	if err != nil {
		return nil, err
	}
	buckets, err := r.bucketBlob()
	if err != nil {
		return nil, err
	}
	h, err := NewDynamic(Deviation(kindB), int(maxBuckets), int(subBuckets))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if len(buckets) > int(maxBuckets) {
		return nil, fmt.Errorf("%w: %d buckets exceed budget %d", ErrSnapshot, len(buckets), maxBuckets)
	}
	if total < 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return nil, fmt.Errorf("%w: bad total %v", ErrSnapshot, total)
	}
	if mass := histogram.TotalCount(buckets); math.Abs(mass-total) > 1e-6*(1+total) {
		return nil, fmt.Errorf("%w: bucket mass %v disagrees with total %v", ErrSnapshot, mass, total)
	}
	for i := range buckets {
		if len(buckets[i].Subs) != int(subBuckets) {
			return nil, fmt.Errorf("%w: bucket %d has %d sub-buckets, want %d",
				ErrSnapshot, i, len(buckets[i].Subs), subBuckets)
		}
	}
	if err := h.loadBuckets(buckets); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	h.total = total
	h.reorganisations = int(reorgs)
	return h, nil
}

// snapReader parses the snapshot envelope over the shared
// little-endian cursor.
type snapReader struct {
	binenc.Reader
}

func newSnapReader(data []byte) *snapReader {
	return &snapReader{Reader: binenc.Reader{Data: data, Err: ErrSnapshot}}
}

func (r *snapReader) header(wantKind byte) error {
	magic, err := r.u32()
	if err != nil {
		return err
	}
	if magic != snapMagic {
		return fmt.Errorf("%w: bad magic %#x", ErrSnapshot, magic)
	}
	version, err := r.u16()
	if err != nil {
		return err
	}
	if version != snapVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrSnapshot, version)
	}
	kind, err := r.u8()
	if err != nil {
		return err
	}
	if kind != wantKind {
		return fmt.Errorf("%w: snapshot kind %d, want %d", ErrSnapshot, kind, wantKind)
	}
	return nil
}

func (r *snapReader) u8() (byte, error)     { return r.U8() }
func (r *snapReader) u16() (uint16, error)  { return r.U16() }
func (r *snapReader) u32() (uint32, error)  { return r.U32() }
func (r *snapReader) f64() (float64, error) { return r.F64() }

func (r *snapReader) bucketBlob() ([]histogram.Bucket, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	blob, err := r.Bytes(int(n))
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshot, r.Remaining())
	}
	buckets, err := histogram.UnmarshalBuckets(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	return buckets, nil
}
