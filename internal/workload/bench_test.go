package workload

import (
	"math/rand"
	"testing"
)

func BenchmarkBuildMixed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	values := make([]int, 100000)
	for i := range values {
		values[i] = rng.Intn(5001)
	}
	cfg := Config{Pattern: MixedInsertDelete, DeleteRate: 0.25, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := Build(values, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
