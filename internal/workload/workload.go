// Package workload models the paper's update patterns (§7: "we have
// evaluated all algorithms along the three broad classes of tests") as
// first-class operation streams: random insertions, sorted insertions,
// random insertions intermixed with random deletions, insertions
// followed by deletions, and sorted insertions followed by sorted
// deletions. A workload is a replayable sequence of insert/delete
// operations over integer values, with a text encoding shared by the
// command-line tools.
package workload

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// OpKind distinguishes inserts from deletes.
type OpKind int

const (
	// Insert adds one occurrence of the value.
	Insert OpKind = iota
	// Delete removes one occurrence of the value.
	Delete
)

// Op is one update operation.
type Op struct {
	Kind  OpKind
	Value int
}

// Pattern names one of the paper's §7 update patterns.
type Pattern int

const (
	// RandomInserts streams the data set in uniformly random order
	// (§7.1).
	RandomInserts Pattern = iota
	// SortedInserts streams the data set in increasing value order
	// (§7.2).
	SortedInserts
	// MixedInsertDelete interleaves random insertions with random
	// deletions of previously inserted values at the given rate
	// (§7.3.1 uses rate 0.25).
	MixedInsertDelete
	// InsertsThenDeletes inserts everything in random order, then
	// deletes a fraction of the data in random order (Fig. 17).
	InsertsThenDeletes
	// SortedThenSortedDeletes inserts in sorted order, then deletes in
	// sorted order (§7 test class e).
	SortedThenSortedDeletes
)

func (p Pattern) String() string {
	switch p {
	case RandomInserts:
		return "random-inserts"
	case SortedInserts:
		return "sorted-inserts"
	case MixedInsertDelete:
		return "mixed-insert-delete"
	case InsertsThenDeletes:
		return "inserts-then-deletes"
	case SortedThenSortedDeletes:
		return "sorted-then-sorted-deletes"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// ParsePattern maps a pattern name (as printed by String) back to its
// value.
func ParsePattern(name string) (Pattern, error) {
	for _, p := range []Pattern{
		RandomInserts, SortedInserts, MixedInsertDelete,
		InsertsThenDeletes, SortedThenSortedDeletes,
	} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown pattern %q", name)
}

// Config parameterises workload generation from a base data set.
type Config struct {
	// Pattern selects the update pattern.
	Pattern Pattern
	// DeleteRate is the per-insert deletion probability for
	// MixedInsertDelete (paper §7.3.1: 0.25).
	DeleteRate float64
	// DeleteFraction is the fraction of the data deleted afterwards for
	// InsertsThenDeletes and SortedThenSortedDeletes (Figs. 17-18 sweep
	// 0..0.8).
	DeleteFraction float64
	// Seed drives the deterministic ordering choices.
	Seed int64
}

// Build turns a multiset of values into the operation stream the
// configured pattern prescribes.
func Build(values []int, cfg Config) ([]Op, error) {
	if len(values) == 0 {
		return nil, errors.New("workload: no values")
	}
	if cfg.DeleteRate < 0 || cfg.DeleteRate >= 1 {
		if cfg.Pattern == MixedInsertDelete {
			return nil, fmt.Errorf("workload: delete rate %v outside [0,1)", cfg.DeleteRate)
		}
	}
	if cfg.DeleteFraction < 0 || cfg.DeleteFraction > 1 {
		return nil, fmt.Errorf("workload: delete fraction %v outside [0,1]", cfg.DeleteFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Pattern {
	case RandomInserts:
		return insertsOnly(shuffled(values, rng)), nil
	case SortedInserts:
		return insertsOnly(sorted(values)), nil
	case MixedInsertDelete:
		return mixed(shuffled(values, rng), cfg.DeleteRate, rng), nil
	case InsertsThenDeletes:
		return thenDeletes(shuffled(values, rng), cfg.DeleteFraction, rng, false), nil
	case SortedThenSortedDeletes:
		return thenDeletes(sorted(values), cfg.DeleteFraction, rng, true), nil
	default:
		return nil, fmt.Errorf("workload: unknown pattern %d", int(cfg.Pattern))
	}
}

func shuffled(values []int, rng *rand.Rand) []int {
	out := make([]int, len(values))
	copy(out, values)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func sorted(values []int) []int {
	out := make([]int, len(values))
	copy(out, values)
	// Counting sort: the domains are small integers.
	maxV := 0
	for _, v := range out {
		if v > maxV {
			maxV = v
		}
	}
	counts := make([]int, maxV+1)
	for _, v := range out {
		counts[v]++
	}
	i := 0
	for v, c := range counts {
		for range c {
			out[i] = v
			i++
		}
	}
	return out
}

func insertsOnly(values []int) []Op {
	ops := make([]Op, len(values))
	for i, v := range values {
		ops[i] = Op{Kind: Insert, Value: v}
	}
	return ops
}

func mixed(values []int, rate float64, rng *rand.Rand) []Op {
	ops := make([]Op, 0, len(values)+int(rate*float64(len(values)))+1)
	var live []int
	for _, v := range values {
		ops = append(ops, Op{Kind: Insert, Value: v})
		live = append(live, v)
		if len(live) > 1 && rng.Float64() < rate {
			pick := rng.Intn(len(live))
			dv := live[pick]
			live[pick] = live[len(live)-1]
			live = live[:len(live)-1]
			ops = append(ops, Op{Kind: Delete, Value: dv})
		}
	}
	return ops
}

func thenDeletes(values []int, fraction float64, rng *rand.Rand, sortedDeletes bool) []Op {
	ops := insertsOnly(values)
	nDel := int(fraction * float64(len(values)))
	var order []int
	if sortedDeletes {
		order = sorted(values)
	} else {
		order = shuffled(values, rng)
	}
	for _, v := range order[:nDel] {
		ops = append(ops, Op{Kind: Delete, Value: v})
	}
	return ops
}

// Applier is anything that accepts the stream (all histograms and the
// exact tracker adapters qualify).
type Applier interface {
	Insert(v float64) error
	Delete(v float64) error
}

// Replay applies the operations to every target in order. It stops at
// the first error.
func Replay(ops []Op, targets ...Applier) error {
	for i, op := range ops {
		for _, t := range targets {
			var err error
			if op.Kind == Insert {
				err = t.Insert(float64(op.Value))
			} else {
				err = t.Delete(float64(op.Value))
			}
			if err != nil {
				return fmt.Errorf("workload: op %d (%v %d): %w", i, op.Kind, op.Value, err)
			}
		}
	}
	return nil
}

// Write encodes the stream as text: one operation per line, a bare
// integer for an insert and "-<value>" for a delete — the same format
// cmd/histcli consumes.
func Write(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		if op.Kind == Delete {
			if err := bw.WriteByte('-'); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(strconv.Itoa(op.Value)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text encoding produced by Write. Blank lines and
// lines starting with '#' are skipped.
func Read(r io.Reader) ([]Op, error) {
	var ops []Op
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind := Insert
		if strings.HasPrefix(line, "-") {
			kind = Delete
			line = line[1:]
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("workload: line %d: negative value %d", lineNo, v)
		}
		ops = append(ops, Op{Kind: kind, Value: v})
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}
