package workload

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"dynahist/internal/dist"
)

func baseValues() []int { return []int{5, 3, 9, 3, 7, 1, 9, 9} }

func TestPatternRoundTripNames(t *testing.T) {
	for _, p := range []Pattern{
		RandomInserts, SortedInserts, MixedInsertDelete,
		InsertsThenDeletes, SortedThenSortedDeletes,
	} {
		got, err := ParsePattern(p.String())
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got != p {
			t.Errorf("ParsePattern(%q) = %v", p.String(), got)
		}
	}
	if _, err := ParsePattern("nope"); err == nil {
		t.Error("unknown pattern: want error")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Error("no values: want error")
	}
	if _, err := Build(baseValues(), Config{Pattern: MixedInsertDelete, DeleteRate: 1.5}); err == nil {
		t.Error("bad rate: want error")
	}
	if _, err := Build(baseValues(), Config{DeleteFraction: -0.1}); err == nil {
		t.Error("bad fraction: want error")
	}
	if _, err := Build(baseValues(), Config{Pattern: Pattern(99)}); err == nil {
		t.Error("bad pattern: want error")
	}
}

func TestRandomInsertsIsPermutation(t *testing.T) {
	ops, err := Build(baseValues(), Config{Pattern: RandomInserts, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != len(baseValues()) {
		t.Fatalf("got %d ops", len(ops))
	}
	var got []int
	for _, op := range ops {
		if op.Kind != Insert {
			t.Fatal("random-inserts must contain only inserts")
		}
		got = append(got, op.Value)
	}
	want := append([]int(nil), baseValues()...)
	sort.Ints(got)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("multiset changed")
		}
	}
}

func TestSortedInserts(t *testing.T) {
	ops, err := Build(baseValues(), Config{Pattern: SortedInserts})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, op := range ops {
		if op.Value < prev {
			t.Fatal("not sorted")
		}
		prev = op.Value
	}
}

func TestMixedNeverDeletesAbsent(t *testing.T) {
	ops, err := Build(baseValues(), Config{Pattern: MixedInsertDelete, DeleteRate: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	live := map[int]int{}
	for _, op := range ops {
		if op.Kind == Insert {
			live[op.Value]++
			continue
		}
		if live[op.Value] == 0 {
			t.Fatalf("delete of absent value %d", op.Value)
		}
		live[op.Value]--
	}
}

func TestThenDeletesFraction(t *testing.T) {
	values := make([]int, 100)
	for i := range values {
		values[i] = i % 10
	}
	for _, pattern := range []Pattern{InsertsThenDeletes, SortedThenSortedDeletes} {
		ops, err := Build(values, Config{Pattern: pattern, DeleteFraction: 0.3, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		inserts, deletes := 0, 0
		for _, op := range ops {
			if op.Kind == Insert {
				inserts++
			} else {
				deletes++
			}
		}
		if inserts != 100 || deletes != 30 {
			t.Errorf("%v: %d inserts / %d deletes, want 100/30", pattern, inserts, deletes)
		}
		// All inserts precede all deletes.
		seenDelete := false
		for _, op := range ops {
			if op.Kind == Delete {
				seenDelete = true
			} else if seenDelete {
				t.Fatalf("%v: insert after delete", pattern)
			}
		}
	}
}

func TestSortedThenSortedDeletesOrder(t *testing.T) {
	ops, err := Build(baseValues(), Config{Pattern: SortedThenSortedDeletes, DeleteFraction: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, op := range ops {
		if op.Kind != Delete {
			continue
		}
		if op.Value < prev {
			t.Fatal("deletes not sorted")
		}
		prev = op.Value
	}
}

// trackerApplier adapts dist.Tracker to the Applier interface.
type trackerApplier struct{ tr *dist.Tracker }

func (a trackerApplier) Insert(v float64) error { return a.tr.Insert(int(v)) }
func (a trackerApplier) Delete(v float64) error { return a.tr.Delete(int(v)) }

func TestReplay(t *testing.T) {
	ops, err := Build(baseValues(), Config{Pattern: MixedInsertDelete, DeleteRate: 0.4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := dist.New(10)
	if err := Replay(ops, trackerApplier{tr}); err != nil {
		t.Fatal(err)
	}
	inserts, deletes := 0, 0
	for _, op := range ops {
		if op.Kind == Insert {
			inserts++
		} else {
			deletes++
		}
	}
	if tr.Total() != int64(inserts-deletes) {
		t.Fatalf("Total = %d, want %d", tr.Total(), inserts-deletes)
	}
}

func TestReplayStopsOnError(t *testing.T) {
	ops := []Op{{Kind: Delete, Value: 5}} // delete from empty tracker
	tr := dist.New(10)
	if err := Replay(ops, trackerApplier{tr}); err == nil {
		t.Error("want error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ops, err := Build(baseValues(), Config{Pattern: MixedInsertDelete, DeleteRate: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("round trip %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, got[i], ops[i])
		}
	}
}

func TestReadSkipsCommentsAndRejectsGarbage(t *testing.T) {
	ops, err := Read(strings.NewReader("# header\n\n42\n-42\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].Kind != Insert || ops[1].Kind != Delete {
		t.Fatalf("parsed %+v", ops)
	}
	if _, err := Read(strings.NewReader("abc\n")); err == nil {
		t.Error("garbage: want error")
	}
	if _, err := Read(strings.NewReader("--3\n")); err == nil {
		t.Error("double negative: want error")
	}
}

// Property: every pattern preserves the invariant that deletes never
// exceed prior inserts of the same value, and the net count equals
// inserts − deletes.
func TestPatternsWellFormedProperty(t *testing.T) {
	f := func(raw []uint8, patternPick uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]int, len(raw))
		for i, r := range raw {
			values[i] = int(r) % 50
		}
		patterns := []Pattern{
			RandomInserts, SortedInserts, MixedInsertDelete,
			InsertsThenDeletes, SortedThenSortedDeletes,
		}
		cfg := Config{
			Pattern:        patterns[int(patternPick)%len(patterns)],
			DeleteRate:     0.3,
			DeleteFraction: 0.5,
			Seed:           seed,
		}
		ops, err := Build(values, cfg)
		if err != nil {
			return false
		}
		live := map[int]int{}
		for _, op := range ops {
			if op.Kind == Insert {
				live[op.Value]++
			} else {
				if live[op.Value] == 0 {
					return false
				}
				live[op.Value]--
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
