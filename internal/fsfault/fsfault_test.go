package fsfault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOSPassthrough sanity-checks the production FS: create, write,
// sync, rename, read back, remove, and the directory barrier.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := OS{}
	f, err := fs.Create(filepath.Join(dir, "a.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(filepath.Join(dir, "a.tmp"), filepath.Join(dir, "a")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(filepath.Join(dir, "a"))
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	des, err := fs.ReadDir(dir)
	if err != nil || len(des) != 1 || des[0].Name() != "a" {
		t.Fatalf("ReadDir = %v, %v", des, err)
	}
	if err := fs.Remove(filepath.Join(dir, "a")); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll(filepath.Join(dir, "x/y"), 0o755); err != nil {
		t.Fatal(err)
	}
}

// TestInjectorShortWrite proves the write-budget semantics: a write
// crossing the boundary lands its in-budget prefix on disk and returns
// the partial count with the armed error — a torn record, which is what
// the WAL's torn-tail handling is built on.
func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil)
	f, err := inj.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	inj.LimitWrites(3, nil)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 {
		t.Fatalf("short write wrote %d bytes, want 3", n)
	}
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("short write error = %v, want ErrNoSpace", err)
	}
	// The budget is spent: the next write makes no progress at all.
	n, err = f.Write([]byte("gh"))
	if n != 0 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("post-budget write = %d, %v; want 0, ErrNoSpace", n, err)
	}
	data, rerr := os.ReadFile(filepath.Join(dir, "f"))
	if rerr != nil || string(data) != "abc" {
		t.Fatalf("on-disk bytes = %q, %v; want the in-budget prefix \"abc\"", data, rerr)
	}
	// Reset clears the budget; writes flow again.
	inj.Reset()
	if n, err := f.Write([]byte("rest")); err != nil || n != 4 {
		t.Fatalf("post-Reset write = %d, %v", n, err)
	}
}

// TestInjectorCustomWriteError checks LimitWrites with a caller-chosen
// error.
func TestInjectorCustomWriteError(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil)
	f, err := inj.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	inj.LimitWrites(0, boom)
	if _, err := f.Write([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped boom", err)
	}
}

// TestInjectorFaults checks the per-operation fault switches and that
// Reset disarms them.
func TestInjectorFaults(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil)
	boom := errors.New("boom")

	inj.FailCreates(boom)
	if _, err := inj.Create(filepath.Join(dir, "f")); !errors.Is(err, boom) {
		t.Fatalf("Create error = %v, want boom", err)
	}
	inj.Reset()

	f, err := inj.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	inj.FailSyncs(boom)
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync error = %v, want boom", err)
	}
	if err := inj.SyncDir(dir); !errors.Is(err, boom) {
		t.Fatalf("SyncDir error = %v, want boom", err)
	}
	inj.Reset()
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync after Reset: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	inj.FailRenames(boom)
	if err := inj.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); !errors.Is(err, boom) {
		t.Fatalf("Rename error = %v, want boom", err)
	}
	inj.FailRemoves(boom)
	if err := inj.Remove(filepath.Join(dir, "f")); !errors.Is(err, boom) {
		t.Fatalf("Remove error = %v, want boom", err)
	}
	inj.Reset()
	if err := inj.Remove(filepath.Join(dir, "f")); err != nil {
		t.Fatalf("Remove after Reset: %v", err)
	}
}

// TestInjectorStats checks the operation counters tests use to assert
// sync-policy behaviour.
func TestInjectorStats(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(nil)
	f, err := inj.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := inj.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); err != nil {
		t.Fatal(err)
	}
	if err := inj.Remove(filepath.Join(dir, "g")); err != nil {
		t.Fatal(err)
	}
	st := inj.Stats()
	want := Stats{Creates: 1, Writes: 1, BytesWritten: 5, Syncs: 1, Renames: 1, Removes: 1}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
	// Failed operations are not counted as successes.
	inj.FailSyncs(errors.New("x"))
	f2, _ := inj.Create(filepath.Join(dir, "h"))
	_ = f2.Sync()
	_ = f2.Close()
	if got := inj.Stats().Syncs; got != 1 {
		t.Fatalf("failed sync was counted: Syncs = %d, want 1", got)
	}
}
