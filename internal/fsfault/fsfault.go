// Package fsfault abstracts the handful of filesystem operations the
// durability layers need (create, append, sync, rename, remove, list)
// behind an interface with two implementations: OS, the passthrough to
// the real filesystem, and Injector, a wrapper that injects the
// failures disks actually produce — write errors, short writes,
// failed fsyncs, ENOSPC during file creation — so the write-ahead log
// and its tests can prove fail-soft behaviour without a real broken
// disk.
package fsfault

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
)

// ErrNoSpace is the canonical injected "disk full" failure, standing
// in for syscall.ENOSPC in tests.
var ErrNoSpace = errors.New("fsfault: no space left on device")

// File is the writable-file subset the WAL needs: append writes, an
// explicit barrier, and close.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the filesystem surface the durability layers run on. The
// production implementation is OS; tests wrap it in an Injector.
type FS interface {
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// Create creates (truncating) a file for writing.
	Create(name string) (File, error)
	// ReadFile returns a file's full contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// SyncDir fsyncs a directory, making renames and creates in it
	// durable.
	SyncDir(name string) error
}

// OS is the passthrough FS backed by package os.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) Create(name string) (File, error) { return os.Create(name) }

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some filesystems; a sync error
	// still matters (it is the rename barrier), a close error does not.
	serr := d.Sync()
	_ = d.Close()
	return serr
}

// Stats counts the operations that flowed through an Injector, so
// tests can assert how a sync policy actually behaved (e.g. "one Sync
// per Append under SyncAlways, zero under SyncNone").
type Stats struct {
	Creates      int
	Writes       int
	BytesWritten int64
	Syncs        int
	Renames      int
	Removes      int
}

// Injector wraps an FS and injects failures on demand. The zero value
// is not usable; construct with NewInjector. All methods are safe for
// concurrent use; fault arming applies to operations that start after
// the arming call.
type Injector struct {
	inner FS

	mu         sync.Mutex
	stats      Stats
	createErr  error
	renameErr  error
	removeErr  error
	syncErr    error
	writeErr   error
	budget     int64 // bytes writable before writeErr fires; <0 = unlimited
	budgetArm  bool
	syncDirErr error
}

// NewInjector wraps inner (OS when nil) with no faults armed.
func NewInjector(inner FS) *Injector {
	if inner == nil {
		inner = OS{}
	}
	return &Injector{inner: inner, budget: -1}
}

// Stats returns a snapshot of the operation counters.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// Reset clears every armed fault (counters are kept).
func (i *Injector) Reset() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.createErr, i.renameErr, i.removeErr, i.syncErr, i.writeErr, i.syncDirErr = nil, nil, nil, nil, nil, nil
	i.budget, i.budgetArm = -1, false
}

// FailCreates makes every subsequent Create fail with err.
func (i *Injector) FailCreates(err error) { i.set(func() { i.createErr = err }) }

// FailRenames makes every subsequent Rename fail with err.
func (i *Injector) FailRenames(err error) { i.set(func() { i.renameErr = err }) }

// FailRemoves makes every subsequent Remove fail with err.
func (i *Injector) FailRemoves(err error) { i.set(func() { i.removeErr = err }) }

// FailSyncs makes every subsequent File.Sync and SyncDir fail with err.
func (i *Injector) FailSyncs(err error) {
	i.set(func() { i.syncErr, i.syncDirErr = err, err })
}

// LimitWrites allows n more bytes across all open files, then fails
// writes with err (ErrNoSpace when nil). A write that crosses the
// boundary is short: the in-budget prefix is written and the error
// returned with the partial count — a torn record, exactly what a
// full disk produces.
func (i *Injector) LimitWrites(n int64, err error) {
	if err == nil {
		err = ErrNoSpace
	}
	i.set(func() { i.budget, i.budgetArm, i.writeErr = n, true, err })
}

func (i *Injector) set(f func()) {
	i.mu.Lock()
	defer i.mu.Unlock()
	f()
}

func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	return i.inner.MkdirAll(path, perm)
}

func (i *Injector) Create(name string) (File, error) {
	i.mu.Lock()
	err := i.createErr
	if err == nil {
		i.stats.Creates++
	}
	i.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("create %s: %w", name, err)
	}
	f, ferr := i.inner.Create(name)
	if ferr != nil {
		return nil, ferr
	}
	return &faultFile{inj: i, f: f, name: name}, nil
}

func (i *Injector) ReadFile(name string) ([]byte, error) { return i.inner.ReadFile(name) }

func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return i.inner.ReadDir(name) }

func (i *Injector) Rename(oldpath, newpath string) error {
	i.mu.Lock()
	err := i.renameErr
	if err == nil {
		i.stats.Renames++
	}
	i.mu.Unlock()
	if err != nil {
		return fmt.Errorf("rename %s: %w", oldpath, err)
	}
	return i.inner.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	i.mu.Lock()
	err := i.removeErr
	if err == nil {
		i.stats.Removes++
	}
	i.mu.Unlock()
	if err != nil {
		return fmt.Errorf("remove %s: %w", name, err)
	}
	return i.inner.Remove(name)
}

func (i *Injector) SyncDir(name string) error {
	i.mu.Lock()
	err := i.syncDirErr
	i.mu.Unlock()
	if err != nil {
		return fmt.Errorf("syncdir %s: %w", name, err)
	}
	return i.inner.SyncDir(name)
}

// faultFile applies the injector's write budget and sync fault to one
// open file.
type faultFile struct {
	inj  *Injector
	f    File
	name string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	i := ff.inj
	i.mu.Lock()
	allowed := len(p)
	var injected error
	if i.budgetArm {
		if int64(allowed) > i.budget {
			allowed = int(i.budget)
			injected = i.writeErr
		}
		i.budget -= int64(allowed)
	}
	i.stats.Writes++
	i.stats.BytesWritten += int64(allowed)
	i.mu.Unlock()
	n := 0
	var err error
	if allowed > 0 {
		n, err = ff.f.Write(p[:allowed])
	}
	if err != nil {
		return n, err
	}
	if injected != nil {
		return n, fmt.Errorf("write %s: %w", ff.name, injected)
	}
	if n < len(p) {
		return n, fmt.Errorf("write %s: %w", ff.name, ErrNoSpace)
	}
	return n, nil
}

func (ff *faultFile) Sync() error {
	i := ff.inj
	i.mu.Lock()
	err := i.syncErr
	if err == nil {
		i.stats.Syncs++
	}
	i.mu.Unlock()
	if err != nil {
		return fmt.Errorf("sync %s: %w", ff.name, err)
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
