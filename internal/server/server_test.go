package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"dynahist/internal/wire"
)

// newTestServer builds a Server (no checkpoint loop unless cfg says
// otherwise) and an httptest front end, both torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = log.New(io.Discard, "", 0)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		if err := s.Close(); err != nil && cfg.CatalogDir != "" {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

// do issues a request and decodes the JSON response into out (when out
// is non-nil), asserting the status code.
func do(t *testing.T, method, url, contentType string, body []byte, wantStatus int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d (body: %s)", method, url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
}

func mustCreate(t *testing.T, base, name, family string, memBytes, shards int) wire.Info {
	t.Helper()
	body, _ := json.Marshal(wire.CreateRequest{Name: name, Family: family, MemBytes: memBytes, Shards: shards})
	var info wire.Info
	do(t, "POST", base+"/v1/h", "application/json", body, http.StatusCreated, &info)
	return info
}

func mustInsertJSON(t *testing.T, base, name string, vs []float64) wire.UpdateResponse {
	t.Helper()
	body, _ := json.Marshal(wire.ValuesRequest{Values: vs})
	var resp wire.UpdateResponse
	do(t, "POST", base+"/v1/h/"+name+"/insert", "application/json", body, http.StatusOK, &resp)
	return resp
}

// near reports a ≈ b within the merged-view's float accumulation
// noise.
func near(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(b)) }

func seqValues(n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = float64(i % 1000)
	}
	return vs
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestCreateListInfoDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	info := mustCreate(t, ts.URL, "latency", FamilyDADO, 2048, 4)
	if info.Name != "latency" || info.Family != FamilyDADO || info.Shards != 4 || info.MemBytes != 2048 {
		t.Fatalf("create info = %+v", info)
	}
	mustCreate(t, ts.URL, "sizes", FamilyDC, 0, 2) // default mem

	var list wire.ListResponse
	do(t, "GET", ts.URL+"/v1/h", "", nil, http.StatusOK, &list)
	if len(list.Histograms) != 2 {
		t.Fatalf("list has %d entries, want 2", len(list.Histograms))
	}
	if list.Histograms[0].Name != "latency" || list.Histograms[1].Name != "sizes" {
		t.Fatalf("list order: %+v", list.Histograms)
	}

	var got wire.Info
	do(t, "GET", ts.URL+"/v1/h/sizes", "", nil, http.StatusOK, &got)
	if got.Family != FamilyDC || got.MemBytes != 1024 {
		t.Fatalf("info = %+v", got)
	}

	do(t, "DELETE", ts.URL+"/v1/h/sizes", "", nil, http.StatusNoContent, nil)
	do(t, "GET", ts.URL+"/v1/h/sizes", "", nil, http.StatusNotFound, nil)
	do(t, "DELETE", ts.URL+"/v1/h/sizes", "", nil, http.StatusNotFound, nil)
}

func TestCreateErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name string
		req  wire.CreateRequest
		want int
	}{
		{"unsupported family", wire.CreateRequest{Name: "h", Family: "splines"}, http.StatusBadRequest},
		{"empty name", wire.CreateRequest{Name: "", Family: FamilyDADO}, http.StatusBadRequest},
		{"dotfile name", wire.CreateRequest{Name: ".sneaky", Family: FamilyDADO}, http.StatusBadRequest},
		{"path separator", wire.CreateRequest{Name: "a/b", Family: FamilyDADO}, http.StatusBadRequest},
		{"negative mem", wire.CreateRequest{Name: "h", Family: FamilyDADO, MemBytes: -5}, http.StatusBadRequest},
		{"tiny mem", wire.CreateRequest{Name: "h", Family: FamilyDADO, MemBytes: 3}, http.StatusBadRequest},
	}
	for _, c := range cases {
		body, _ := json.Marshal(c.req)
		var e wire.ErrorResponse
		do(t, "POST", ts.URL+"/v1/h", "application/json", body, c.want, &e)
		if e.Error == "" {
			t.Errorf("%s: empty error message", c.name)
		}
	}

	do(t, "POST", ts.URL+"/v1/h", "application/json", []byte("{nope"), http.StatusBadRequest, nil)

	mustCreate(t, ts.URL, "dup", FamilyDC, 1024, 1)
	body, _ := json.Marshal(wire.CreateRequest{Name: "dup", Family: FamilyDC})
	do(t, "POST", ts.URL+"/v1/h", "application/json", body, http.StatusConflict, nil)

	// Case-only variants share a catalog file on case-insensitive
	// filesystems, so they conflict too.
	body, _ = json.Marshal(wire.CreateRequest{Name: "DUP", Family: FamilyDC})
	do(t, "POST", ts.URL+"/v1/h", "application/json", body, http.StatusConflict, nil)
}

func TestInsertAndQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "h", FamilyDADO, 2048, 4)

	vs := seqValues(10000)
	resp := mustInsertJSON(t, ts.URL, "h", vs)
	if resp.Applied != len(vs) || !near(resp.Total, float64(len(vs))) {
		t.Fatalf("insert response = %+v", resp)
	}

	var total wire.TotalResponse
	do(t, "GET", ts.URL+"/v1/h/h/total", "", nil, http.StatusOK, &total)
	if !near(total.Total, float64(len(vs))) {
		t.Fatalf("total = %v, want %d", total.Total, len(vs))
	}

	var cdf wire.CDFResponse
	do(t, "GET", ts.URL+"/v1/h/h/cdf?x=499.5", "", nil, http.StatusOK, &cdf)
	if math.Abs(cdf.CDF-0.5) > 0.05 {
		t.Fatalf("CDF(499.5) = %v, want ≈0.5", cdf.CDF)
	}

	var q wire.QuantileResponse
	do(t, "GET", ts.URL+"/v1/h/h/quantile?q=0.5", "", nil, http.StatusOK, &q)
	if math.Abs(q.Value-500) > 50 {
		t.Fatalf("quantile(0.5) = %v, want ≈500", q.Value)
	}

	var rng wire.RangeResponse
	do(t, "GET", ts.URL+"/v1/h/h/range?lo=0&hi=999", "", nil, http.StatusOK, &rng)
	if math.Abs(rng.Count-float64(len(vs))) > float64(len(vs))/100 {
		t.Fatalf("range count = %v, want ≈%d", rng.Count, len(vs))
	}

	var bk wire.BucketsResponse
	do(t, "GET", ts.URL+"/v1/h/h/buckets", "", nil, http.StatusOK, &bk)
	if len(bk.Buckets) == 0 {
		t.Fatal("no buckets")
	}
	sum := 0.0
	for _, b := range bk.Buckets {
		if b.Right <= b.Left {
			t.Fatalf("degenerate bucket %+v", b)
		}
		for _, c := range b.Counters {
			sum += c
		}
	}
	if math.Abs(sum-float64(len(vs))) > 1e-6 {
		t.Fatalf("bucket mass = %v, want %d", sum, len(vs))
	}

	// Delete endpoint removes mass again.
	body, _ := json.Marshal(wire.ValuesRequest{Values: vs[:100]})
	var del wire.UpdateResponse
	do(t, "POST", ts.URL+"/v1/h/h/delete", "application/json", body, http.StatusOK, &del)
	if !near(del.Total, float64(len(vs)-100)) {
		t.Fatalf("total after delete = %v, want %d", del.Total, len(vs)-100)
	}
}

func TestBinaryIngest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "b", FamilyDC, 1024, 2)

	vs := seqValues(5000)
	var resp wire.UpdateResponse
	batch, err := wire.EncodeBatch(vs)
	if err != nil {
		t.Fatalf("encoding batch: %v", err)
	}
	do(t, "POST", ts.URL+"/v1/h/b/insert", wire.BatchContentType, batch, http.StatusOK, &resp)
	if resp.Applied != len(vs) || !near(resp.Total, float64(len(vs))) {
		t.Fatalf("binary insert response = %+v", resp)
	}
	var total wire.TotalResponse
	do(t, "GET", ts.URL+"/v1/h/b/total", "", nil, http.StatusOK, &total)
	if !near(total.Total, float64(len(vs))) {
		t.Fatalf("total = %v, want %d", total.Total, len(vs))
	}
}

func TestIngestErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "h", FamilyDC, 1024, 1)

	// Unknown histogram.
	do(t, "POST", ts.URL+"/v1/h/ghost/insert", "application/json", []byte(`{"values":[1]}`), http.StatusNotFound, nil)
	do(t, "GET", ts.URL+"/v1/h/ghost/total", "", nil, http.StatusNotFound, nil)

	// Malformed JSON body.
	do(t, "POST", ts.URL+"/v1/h/h/insert", "application/json", []byte(`{"values":[`), http.StatusBadRequest, nil)

	// Malformed binary batches.
	good, err := wire.EncodeBatch([]float64{1, 2, 3})
	if err != nil {
		t.Fatalf("encoding batch: %v", err)
	}
	for name, bad := range map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-2],
		"bad magic": append([]byte{9, 9, 9, 9}, good[4:]...),
		"trailing":  append(append([]byte{}, good...), 1),
	} {
		var e wire.ErrorResponse
		do(t, "POST", ts.URL+"/v1/h/h/insert", wire.BatchContentType, bad, http.StatusBadRequest, &e)
		if e.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
	}

	// A non-batch content type is parsed as JSON, so a CSV body is a
	// JSON error, not a silent drop.
	do(t, "POST", ts.URL+"/v1/h/h/insert", "text/csv", []byte("1,2"), http.StatusBadRequest, nil)

	// Delete from an empty histogram is unprocessable.
	do(t, "POST", ts.URL+"/v1/h/h/delete", "application/json", []byte(`{"values":[5]}`), http.StatusUnprocessableEntity, nil)
}

func TestQueryErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "h", FamilyDADO, 1024, 1)

	// Empty-histogram quantile.
	do(t, "GET", ts.URL+"/v1/h/h/quantile?q=0.5", "", nil, http.StatusUnprocessableEntity, nil)

	mustInsertJSON(t, ts.URL, "h", seqValues(100))

	for _, url := range []string{
		"/v1/h/h/cdf",            // missing x
		"/v1/h/h/cdf?x=banana",   // non-numeric
		"/v1/h/h/quantile?q=0",   // out of (0,1]
		"/v1/h/h/quantile?q=1.5", // out of (0,1]
		"/v1/h/h/quantile?q=x",   // non-numeric
		"/v1/h/h/range?lo=1",     // missing hi
		"/v1/h/ghost/cdf?x=1",    // unknown histogram (404 below)
	} {
		want := http.StatusBadRequest
		if url == "/v1/h/ghost/cdf?x=1" {
			want = http.StatusNotFound
		}
		do(t, "GET", ts.URL+url, "", nil, want, nil)
	}
}

func TestAllFamiliesServe(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, fam := range []string{FamilyDADO, FamilyDVO, FamilyDC, FamilyAC} {
		mustCreate(t, ts.URL, fam, fam, 2048, 2)
		mustInsertJSON(t, ts.URL, fam, seqValues(2000))
		var cdf wire.CDFResponse
		do(t, "GET", ts.URL+"/v1/h/"+fam+"/cdf?x=1000", "", nil, http.StatusOK, &cdf)
		if cdf.CDF < 0.9 {
			t.Errorf("%s: CDF(1000) = %v, want ≈1", fam, cdf.CDF)
		}
	}
}

// TestRestartRecovery is the kill-and-restart test: a server with a
// catalog directory is fed all four families, checkpointed, torn down,
// and a fresh server pointed at the same directory must serve
// identical Total and CDF (snapshot round-trips are exact) and keep
// accepting writes.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	families := []string{FamilyDADO, FamilyDVO, FamilyDC, FamilyAC}

	type probe struct {
		total float64
		cdf   map[float64]float64
	}
	before := make(map[string]probe)

	s1, err := New(Config{CatalogDir: dir, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	for i, fam := range families {
		name := fmt.Sprintf("h%d-%s", i, fam)
		mustCreate(t, ts1.URL, name, fam, 2048, 3)
		mustInsertJSON(t, ts1.URL, name, seqValues(8000))
	}
	// Some writes after an explicit mid-flight checkpoint, so the test
	// also proves Close's final checkpoint captures the newest state.
	if err := s1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	for i, fam := range families {
		name := fmt.Sprintf("h%d-%s", i, fam)
		mustInsertJSON(t, ts1.URL, name, seqValues(500))
		p := probe{cdf: make(map[float64]float64)}
		var total wire.TotalResponse
		do(t, "GET", ts1.URL+"/v1/h/"+name+"/total", "", nil, http.StatusOK, &total)
		p.total = total.Total
		for _, x := range []float64{50, 250, 499.5, 750, 2000} {
			var c wire.CDFResponse
			do(t, "GET", fmt.Sprintf("%s/v1/h/%s/cdf?x=%v", ts1.URL, name, x), "", nil, http.StatusOK, &c)
			p.cdf[x] = c.CDF
		}
		before[name] = p
	}
	ts1.Close()
	if err := s1.Close(); err != nil { // kill: final checkpoint
		t.Fatal(err)
	}

	// Restart from the same catalog.
	s2, err := New(Config{CatalogDir: dir, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	var list wire.ListResponse
	do(t, "GET", ts2.URL+"/v1/h", "", nil, http.StatusOK, &list)
	if len(list.Histograms) != len(families) {
		t.Fatalf("recovered %d histograms, want %d", len(list.Histograms), len(families))
	}
	for name, want := range before {
		var total wire.TotalResponse
		do(t, "GET", ts2.URL+"/v1/h/"+name+"/total", "", nil, http.StatusOK, &total)
		if total.Total != want.total {
			t.Errorf("%s: recovered Total = %v, want %v", name, total.Total, want.total)
		}
		for x, wantCDF := range want.cdf {
			var c wire.CDFResponse
			do(t, "GET", fmt.Sprintf("%s/v1/h/%s/cdf?x=%v", ts2.URL, name, x), "", nil, http.StatusOK, &c)
			if math.Abs(c.CDF-wantCDF) > 1e-9 {
				t.Errorf("%s: recovered CDF(%v) = %v, want %v", name, x, c.CDF, wantCDF)
			}
		}
		// The recovered histogram keeps maintaining.
		resp := mustInsertJSON(t, ts2.URL, name, []float64{42})
		if !near(resp.Total, want.total+1) {
			t.Errorf("%s: Total after post-recovery insert = %v, want %v", name, resp.Total, want.total+1)
		}
	}
}

// TestRecoverySkipsCorruptFiles plants garbage and mismatched catalog
// files next to a good one: startup must recover the good entry,
// ignore the rest, and never panic.
func TestRecoverySkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{CatalogDir: dir, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	mustCreate(t, ts1.URL, "good", FamilyDADO, 1024, 2)
	mustInsertJSON(t, ts1.URL, "good", seqValues(1000))
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	goodData, err := os.ReadFile(catalogPath(dir, "good"))
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"garbage" + CatalogExt:   []byte("not a catalog entry"),
		"truncated" + CatalogExt: goodData[:len(goodData)/2],
		"renamed" + CatalogExt:   goodData, // inner name "good" ≠ file stem
		"noise.txt":              []byte("ignored entirely"),
		"good.tmp12345":          goodData[:8], // orphan from a crashed checkpoint
	} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := New(Config{CatalogDir: dir, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Registry().Len(); got != 1 {
		t.Fatalf("recovered %d entries, want 1", got)
	}
	h, err := s2.Registry().Histogram("good")
	if err != nil {
		t.Fatal(err)
	}
	if !near(h.Total(), 1000) {
		t.Fatalf("recovered Total = %v, want 1000", h.Total())
	}
	// The crashed checkpoint's temp file was swept at startup.
	if _, err := os.Stat(filepath.Join(dir, "good.tmp12345")); !os.IsNotExist(err) {
		t.Fatalf("stale temp file not removed: %v", err)
	}
}

// TestDeleteRemovesCatalogFile asserts a deleted histogram stays dead
// across restart.
func TestDeleteRemovesCatalogFile(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := func() (*Server, *httptest.Server) {
		s, err := New(Config{CatalogDir: dir, Logger: log.New(io.Discard, "", 0)})
		if err != nil {
			t.Fatal(err)
		}
		return s, httptest.NewServer(s.Handler())
	}()
	mustCreate(t, ts1.URL, "doomed", FamilyDC, 1024, 1)
	mustInsertJSON(t, ts1.URL, "doomed", seqValues(100))
	if err := s1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(catalogPath(dir, "doomed")); err != nil {
		t.Fatalf("catalog file missing after checkpoint: %v", err)
	}
	do(t, "DELETE", ts1.URL+"/v1/h/doomed", "", nil, http.StatusNoContent, nil)
	if _, err := os.Stat(catalogPath(dir, "doomed")); !os.IsNotExist(err) {
		t.Fatalf("catalog file still present after delete: %v", err)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{CatalogDir: dir, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Registry().Has("doomed") {
		t.Fatal("deleted histogram resurrected by restart")
	}
}

func TestCheckpointWithoutCatalogDir(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if err := s.CheckpointNow(); err == nil {
		t.Fatal("CheckpointNow without catalog dir: want error")
	}
}
