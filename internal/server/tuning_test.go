package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dynahist/internal/wire"
)

// postFeedback drives POST /v1/h/{name}/feedback and returns status +
// decoded response.
func postFeedback(t *testing.T, base, name string, lo, hi, observed float64) (int, wire.FeedbackResponse) {
	t.Helper()
	body, err := json.Marshal(wire.FeedbackRequest{Lo: lo, Hi: hi, Observed: observed})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/h/"+name+"/feedback", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out wire.FeedbackResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

func TestFeedbackDisabledConflict(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "h", FamilyDADO, 1024, 2)
	if status, _ := postFeedback(t, ts.URL, "h", 0, 10, 5); status != http.StatusConflict {
		t.Fatalf("feedback with tuning disabled: status %d, want %d", status, http.StatusConflict)
	}
}

func TestFeedbackTunesEstimate(t *testing.T) {
	_, ts := newTestServer(t, Config{Tuning: TuningConfig{Enabled: true}})
	mustCreate(t, ts.URL, "h", FamilyDADO, 1024, 2)
	vs := make([]float64, 1000)
	for i := range vs {
		vs[i] = float64(i % 100)
	}
	mustInsertJSON(t, ts.URL, "h", vs)

	status, fb := postFeedback(t, ts.URL, "h", 10, 29, 600)
	if status != http.StatusOK {
		t.Fatalf("feedback: status %d", status)
	}
	if fb.JournalLen != 1 || fb.Rounds != 1 {
		t.Fatalf("JournalLen/Rounds = %d/%d, want 1/1", fb.JournalLen, fb.Rounds)
	}
	wantGap := 600 - fb.Estimated
	gotGap := 600 - fb.TunedEstimate
	if !(gotGap >= 0 && gotGap < wantGap) {
		t.Fatalf("tuned estimate %v did not move toward 600 from %v", fb.TunedEstimate, fb.Estimated)
	}

	// The tuned answer must now be what the query endpoints serve.
	var rr wire.RangeResponse
	do(t, "GET", ts.URL+"/v1/h/h/range?lo=10&hi=29", "", nil, http.StatusOK, &rr)
	if !near(rr.Count, fb.TunedEstimate) {
		t.Fatalf("served range count %v != tuned estimate %v", rr.Count, fb.TunedEstimate)
	}
}

func TestFeedbackRejectsBadRecords(t *testing.T) {
	_, ts := newTestServer(t, Config{Tuning: TuningConfig{Enabled: true}})
	mustCreate(t, ts.URL, "h", FamilyDADO, 1024, 2)
	for _, c := range []struct{ lo, hi, obs float64 }{
		{20, 10, 5}, // hi < lo
		{0, 10, -1}, // negative observed
	} {
		if status, _ := postFeedback(t, ts.URL, "h", c.lo, c.hi, c.obs); status != http.StatusBadRequest {
			t.Errorf("feedback(%v,%v,%v): status %d, want 400", c.lo, c.hi, c.obs, status)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/h/h/feedback", "application/json",
		bytes.NewReader([]byte(`{"lo":"nope"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestFeedbackJournalSurvivesCheckpoint proves the catalog round trip
// at the server layer: feedback journaled, checkpoint taken, registry
// restored into a new server, tuned estimates still served.
func TestFeedbackJournalSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{CatalogDir: dir, Tuning: TuningConfig{Enabled: true}})
	mustCreate(t, ts.URL, "h", FamilyDADO, 1024, 2)
	vs := make([]float64, 1000)
	for i := range vs {
		vs[i] = float64(i % 100)
	}
	mustInsertJSON(t, ts.URL, "h", vs)
	status, fb := postFeedback(t, ts.URL, "h", 10, 29, 600)
	if status != http.StatusOK {
		t.Fatalf("feedback: status %d", status)
	}
	if err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{CatalogDir: dir, Tuning: TuningConfig{Enabled: true}})
	status2, fb2 := postFeedback(t, ts2.URL, "h", 10, 29, 600)
	if status2 != http.StatusOK {
		t.Fatalf("feedback after restore: status %d", status2)
	}
	if fb2.JournalLen != 2 {
		t.Fatalf("restored JournalLen = %d, want 2", fb2.JournalLen)
	}
	if !(fb2.Estimated > fb.Estimated) {
		t.Fatalf("restored estimate %v does not reflect the replayed journal (untuned was %v)",
			fb2.Estimated, fb.Estimated)
	}
}

func TestQueryCacheEpochDiscipline(t *testing.T) {
	var c queryCache
	key := []byte(`{"q":1}`)

	if got := c.get(0, key); got != nil {
		t.Fatalf("empty cache hit: %q", got)
	}
	c.put(3, key, []byte("epoch3"))
	if got := c.get(3, key); string(got) != "epoch3" {
		t.Fatalf("get(3) = %q, want epoch3", got)
	}
	// A reader that observed any other epoch — older or newer — must
	// miss.
	if got := c.get(2, key); got != nil {
		t.Fatalf("older-epoch reader hit: %q", got)
	}
	if got := c.get(4, key); got != nil {
		t.Fatalf("newer-epoch reader hit: %q", got)
	}
	// A put from a racing reader behind the cache's epoch is dropped.
	c.put(2, key, []byte("stale"))
	if got := c.get(3, key); string(got) != "epoch3" {
		t.Fatalf("stale put replaced fresh entry: %q", got)
	}
	// A put ahead of the cache resets the map to the new epoch.
	c.put(5, []byte("other"), []byte("epoch5"))
	if got := c.get(3, key); got != nil {
		t.Fatalf("old-epoch entry survived reset: %q", got)
	}
	if got := c.get(5, []byte("other")); string(got) != "epoch5" {
		t.Fatalf("get(5) = %q, want epoch5", got)
	}

	// The size cap drops new shapes, never corrupts existing ones.
	for i := 0; i < 2*maxCachedQueries; i++ {
		c.put(5, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if got := c.get(5, []byte("other")); string(got) != "epoch5" {
		t.Fatalf("capped cache lost existing entry: %q", got)
	}
}

// TestCachedQueryNeverStale races 8 writers against readers on the
// cached query path. Inserts only ever add mass, so any reader that
// observes the total decrease was served a summary cached under a
// write history it should no longer see.
func TestCachedQueryNeverStale(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustCreate(t, ts.URL, "h", FamilyDADO, 1024, 4)

	const (
		writers       = 8
		readers       = 4
		writesEach    = 40
		batch         = 32
		readsPerState = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			vs := make([]float64, batch)
			for i := 0; i < writesEach; i++ {
				for j := range vs {
					vs[j] = float64(rng.Intn(1000))
				}
				body, err := json.Marshal(wire.ValuesRequest{Values: vs})
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.Post(ts.URL+"/v1/h/h/insert", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("insert: status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}

	queryBody := []byte(`{"ranges":[{"lo":-1e9,"hi":1e9}],"quantiles":[0.5]}`)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1.0
			for i := 0; i < readsPerState; i++ {
				resp, err := http.Post(ts.URL+"/v1/h/h/query", "application/json", bytes.NewReader(queryBody))
				if err != nil {
					t.Error(err)
					return
				}
				var qr wire.QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if qr.Total < last {
					t.Errorf("served total went backwards: %v after %v — stale-epoch cache hit", qr.Total, last)
					return
				}
				last = qr.Total
			}
		}()
	}
	wg.Wait()

	// Post-quiescence, the cached path must serve the exact final
	// state.
	want := float64(writers * writesEach * batch)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/h/h/query", "application/json", bytes.NewReader(queryBody))
		if err != nil {
			t.Fatal(err)
		}
		var qr wire.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !near(qr.Total, want) {
			t.Fatalf("final total = %v, want %v (read %d)", qr.Total, want, i)
		}
	}
}

// nullResponseWriter is an allocation-free http.ResponseWriter for
// measuring the handler's own cost.
type nullResponseWriter struct {
	h http.Header
	n int
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) WriteHeader(int)             {}
func (w *nullResponseWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

// newCachedQueryFixture builds a server (no HTTP listener), one
// populated histogram, and a re-playable request for the cached query
// path.
func newCachedQueryFixture(tb testing.TB) (*Server, *http.Request, *bytes.Reader) {
	tb.Helper()
	s, err := New(Config{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = s.Close() })
	if _, err := s.Registry().Create(wire.CreateRequest{Name: "h", Family: FamilyDADO, MemBytes: 1024, Shards: 2}); err != nil {
		tb.Fatal(err)
	}
	h, err := s.Registry().Histogram("h")
	if err != nil {
		tb.Fatal(err)
	}
	vs := make([]float64, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := range vs {
		vs[i] = float64(rng.Intn(1000))
	}
	if err := h.InsertBatch(vs); err != nil {
		tb.Fatal(err)
	}

	body := bytes.NewReader([]byte(`{"quantiles":[0.5,0.9],"cdf":[250],"ranges":[{"lo":100,"hi":900}]}`))
	req := httptest.NewRequest("POST", "/v1/h/h/query", nil)
	req.SetPathValue("name", "h")
	req.Body = io.NopCloser(body)
	return s, req, body
}

// TestCachedQueryHitAllocs is the steady-state allocation gate: after
// the first miss populates the cache, a repeated hot query must not
// allocate. The measured handler includes the full observability
// middleware (request/in-flight/status counters, pooled status writer,
// latency tracker) — instrumentation is part of the path it gates.
func TestCachedQueryHitAllocs(t *testing.T) {
	s, req, body := newCachedQueryFixture(t)
	w := &nullResponseWriter{h: make(http.Header)}
	handler := s.instrument("query", s.handleQuery)

	// Warm: the first call evaluates and populates the cache, and a few
	// hundred more settle the latency tracker's DADO histogram and the
	// status-writer pool, so the measurement sees steady state.
	for i := 0; i < 600; i++ {
		if _, err := body.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		handler(w, req)
	}
	if w.n == 0 {
		t.Fatal("warm query wrote nothing")
	}

	allocs := testing.AllocsPerRun(200, func() {
		if _, err := body.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		handler(w, req)
	})
	if allocs > 0.5 {
		t.Fatalf("cache-hit path allocates %.1f/op, want ~0", allocs)
	}
	if hits := s.metrics.cacheHits.Value(); hits < 600 {
		t.Fatalf("cache hits = %d, want ≥ 600 (instrumentation should have counted the warm loop)", hits)
	}
}

// BenchmarkCachedQuery measures the hot repeated-query path: pooled
// body read, epoch load, cache lookup, cached bytes written back.
func BenchmarkCachedQuery(b *testing.B) {
	s, req, body := newCachedQueryFixture(b)
	w := &nullResponseWriter{h: make(http.Header)}
	if _, err := body.Seek(0, io.SeekStart); err != nil {
		b.Fatal(err)
	}
	s.handleQuery(w, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := body.Seek(0, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		s.handleQuery(w, req)
	}
}
