package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"dynahist/internal/wire"
)

// TestConcurrentClients drives many concurrent HTTP clients — JSON and
// binary ingesters, query readers, histogram creators/deleters — while
// the checkpoint loop runs at an aggressive period, to pin down the
// registry and checkpoint-loop locking under the race detector.
func TestConcurrentClients(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{CatalogDir: dir, CheckpointEvery: 5 * time.Millisecond})

	for i := range 3 {
		mustCreate(t, ts.URL, fmt.Sprintf("stable%d", i), FamilyDADO, 1024, 4)
	}

	const (
		writers  = 4
		readers  = 4
		churners = 2
		rounds   = 30
	)
	var wg sync.WaitGroup

	for w := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := range rounds {
				name := fmt.Sprintf("stable%d", rng.Intn(3))
				vs := make([]float64, 64)
				for j := range vs {
					vs[j] = float64(rng.Intn(1000))
				}
				var body []byte
				ct := "application/json"
				if i%2 == 0 {
					ct = wire.BatchContentType
					body, _ = wire.EncodeBatch(vs)
				} else {
					body, _ = json.Marshal(wire.ValuesRequest{Values: vs})
				}
				req, err := http.NewRequest("POST", ts.URL+"/v1/h/"+name+"/insert", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", ct)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("insert: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	for r := range readers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for range rounds {
				name := fmt.Sprintf("stable%d", rng.Intn(3))
				for _, path := range []string{
					"/v1/h/" + name + "/total",
					fmt.Sprintf("/v1/h/%s/cdf?x=%d", name, rng.Intn(1000)),
					fmt.Sprintf("/v1/h/%s/range?lo=0&hi=%d", name, rng.Intn(1000)),
					"/v1/h/" + name + "/buckets",
					"/v1/h",
				} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}

	// Churners create, checkpoint and delete their own histograms so the
	// checkpoint loop races registration and file removal.
	for c := range churners {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rounds / 2 {
				name := fmt.Sprintf("churn%d-%d", c, i)
				mustCreate(t, ts.URL, name, FamilyDC, 1024, 2)
				mustInsertJSON(t, ts.URL, name, []float64{1, 2, 3})
				_ = s.CheckpointNow()
				req, _ := http.NewRequest("DELETE", ts.URL+"/v1/h/"+name, nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					t.Errorf("DELETE %s: status %d", name, resp.StatusCode)
					return
				}
			}
		}()
	}

	wg.Wait()

	// Every stable histogram holds exactly the mass the writers pushed.
	var list wire.ListResponse
	do(t, "GET", ts.URL+"/v1/h", "", nil, http.StatusOK, &list)
	var sum float64
	for _, info := range list.Histograms {
		sum += info.Total
	}
	if want := float64(writers * rounds * 64); !near(sum, want) {
		t.Fatalf("total mass across histograms = %v, want %v", sum, want)
	}
}
